module iotmpc

go 1.24
