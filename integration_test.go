package iotmpc_test

import (
	"testing"
	"time"

	"iotmpc/internal/core"
	"iotmpc/internal/experiment"
	"iotmpc/internal/field"
	"iotmpc/internal/hepda"
	"iotmpc/internal/phy"
	"iotmpc/internal/shamir"
	"iotmpc/internal/sim"
	"iotmpc/internal/timesync"
	"iotmpc/internal/topology"
	"iotmpc/internal/trace"
)

// TestEndToEndCampaign exercises the full stack the way a deployment would
// use it: commission once, then run many metering periods with real
// readings, verifiable sharing, and tracing — all on the FlockLab model.
func TestEndToEndCampaign(t *testing.T) {
	testbed := topology.FlockLab()
	n := testbed.NumNodes()
	sources, err := experiment.SpreadSources(n, n)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Topology:    testbed,
		Protocol:    core.S4,
		Sources:     sources,
		NTXSharing:  6,
		DestSlack:   2,
		ChannelSeed: 99,
		Verifiable:  true,
	}
	boot, err := core.RunBootstrap(cfg)
	if err != nil {
		t.Fatal(err)
	}

	rng := sim.NewRNG(99, 0xF00D)
	for period := uint64(0); period < 3; period++ {
		readings := make(map[int]uint64, n)
		var want uint64
		for _, s := range sources {
			v := 100 + uint64(rng.Intn(900))
			readings[s] = v
			want += v
		}
		var rec trace.Recorder
		res, err := core.RunRoundTraced(boot, period, readings, &rec)
		if err != nil {
			t.Fatalf("period %d: %v", period, err)
		}
		if res.Expected != field.New(want) {
			t.Fatalf("period %d: expected sum %v, want %d", period, res.Expected, want)
		}
		if res.CorrectNodes < n-1 {
			t.Errorf("period %d: %d/%d nodes correct", period, res.CorrectNodes, n)
		}
		if res.VerifiedShares == 0 {
			t.Errorf("period %d: nothing verified", period)
		}
		if rec.Len() == 0 {
			t.Errorf("period %d: empty trace", period)
		}
	}
}

// TestEndToEndSSSMatchesHEOnSameWorkload cross-checks the two PPDA families:
// with the same sources, both must compute exact sums of what was delivered.
func TestEndToEndSSSMatchesHEOnSameWorkload(t *testing.T) {
	testbed := topology.FlockLab()
	sources := make([]int, testbed.NumNodes())
	for i := range sources {
		sources[i] = i
	}

	sssCfg := core.Config{
		Topology:    testbed,
		Protocol:    core.S4,
		Sources:     sources,
		NTXSharing:  6,
		DestSlack:   1,
		ChannelSeed: 5,
	}
	boot, err := core.RunBootstrap(sssCfg)
	if err != nil {
		t.Fatal(err)
	}
	sssRes, err := core.RunRound(boot, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sssRes.CorrectNodes == 0 {
		t.Fatal("SSS round failed entirely")
	}

	heRes, err := hepda.RunRound(hepda.Config{
		Topology:    testbed,
		Sources:     sources,
		ChannelSeed: 5,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !heRes.Correct {
		t.Error("HE round decrypted a wrong aggregate")
	}
	// SSS is collector-free and must beat HE's crypto-bound latency.
	if sssRes.MeanLatency >= heRes.MeanLatency {
		t.Errorf("S4 latency %v not below HE %v", sssRes.MeanLatency, heRes.MeanLatency)
	}
}

// TestSlotSyncAssumptionHolds ties internal/timesync to the TDMA abstraction
// used by the CT transport: at per-round resync cadence on both testbeds,
// worst-case sync error must stay within the guard interval.
func TestSlotSyncAssumptionHolds(t *testing.T) {
	for _, tb := range []topology.Topology{topology.FlockLab(), topology.DCube()} {
		ch, err := tb.Channel(phy.DefaultParams(), 1)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := timesync.Simulate(timesync.Config{
			Channel:        ch,
			Initiator:      0,
			NTX:            6,
			ResyncInterval: 2 * time.Second,
			Rounds:         8,
		}, sim.NewRNG(1, 42))
		if err != nil {
			t.Fatal(err)
		}
		if !rep.WithinGuard() {
			t.Errorf("%s: worst sync error %v exceeds guard %v — TDMA abstraction unsound",
				tb.Name, rep.WorstError(), rep.GuardInterval)
		}
	}
}

// TestRefreshedSharesStillAggregate combines proactive refresh with the
// aggregation algebra: refreshing standing shares between epochs must not
// disturb sums.
func TestRefreshedSharesStillAggregate(t *testing.T) {
	rng := sim.NewRNG(7, 1)
	const degree, n = 3, 10
	points := shamir.PublicPoints(n)

	secretA := field.New(1111)
	secretB := field.New(2222)
	sharesA, err := shamir.Split(secretA, degree, points, rng)
	if err != nil {
		t.Fatal(err)
	}
	sharesB, err := shamir.Split(secretB, degree, points, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Epoch rollover on both share sets.
	sharesA, err = shamir.RefreshEpoch(sharesA, degree, rng)
	if err != nil {
		t.Fatal(err)
	}
	sharesB, err = shamir.RefreshEpoch(sharesB, degree, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate post-refresh.
	sums := make([]shamir.Share, degree+1)
	for j := range sums {
		agg, err := shamir.AggregateShares([]shamir.Share{sharesA[j], sharesB[j]})
		if err != nil {
			t.Fatal(err)
		}
		sums[j] = agg
	}
	got, err := shamir.Reconstruct(sums, degree)
	if err != nil {
		t.Fatal(err)
	}
	if got != field.New(3333) {
		t.Errorf("post-refresh aggregate = %v, want 3333", got)
	}
}
