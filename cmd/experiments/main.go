// Command experiments regenerates every figure panel of the paper's
// evaluation (Fig. 1 a–d), the in-text headline gain claims, the MiniCast
// coverage-vs-NTX characterization, and free-form scenario-matrix sweeps
// over network size × threshold × loss rate × protocol.
//
// Examples:
//
//	experiments -panel all -iters 100
//	experiments -panel fig1a -iters 2000        # paper-scale repetitions
//	experiments -panel coverage
//	experiments -panel fig1c -csv > dcube.csv
//	experiments -panel matrix -nodes 15,25,40 -loss 0.0,0.2,0.4 -workers 8
//	experiments -panel matrix -nodes 20 -degrees 4,6,9 -csv > matrix.csv
//	experiments -panel matrix -nodes 20 -phy logdist,unitdisk         # backend axis
//	experiments -panel matrix -nodes 10 -phy trace:testbed10 -loss 0.0
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"iotmpc/internal/experiment"
	"iotmpc/internal/topology"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		panel = fs.String("panel", "all",
			"panel: fig1a, fig1b, fig1c, fig1d, gains, coverage, baseline, scalability, matrix, all")
		iters   = fs.Int("iters", 50, "Monte-Carlo iterations per point (paper: 2000)")
		seed    = fs.Int64("seed", 1, "randomness seed")
		csv     = fs.Bool("csv", false, "emit CSV instead of tables")
		workers = fs.Int("workers", 0, "matrix worker goroutines (0: GOMAXPROCS)")
		nodes   = fs.String("nodes", "15,25,40", "matrix axis: comma-separated network sizes")
		degrees = fs.String("degrees", "0", "matrix axis: polynomial degrees (0: n/3)")
		loss    = fs.String("loss", "0.0,0.2,0.4", "matrix axis: interference burst probabilities")
		phys    = fs.String("phy", "logdist",
			"matrix axis: radio backends (logdist, unitdisk[:R[:G]], trace:<name-or-file>)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *panel == "matrix" {
		return runMatrix(*nodes, *degrees, *loss, *phys, *iters, *seed, *workers, *csv)
	}
	// The matrix-only flags do nothing for the fixed paper panels; reject
	// them rather than let a user believe they took effect.
	var misused []string
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "workers", "nodes", "degrees", "loss", "phy":
			misused = append(misused, "-"+f.Name)
		}
	})
	if len(misused) > 0 {
		return fmt.Errorf("%s only apply to -panel matrix", strings.Join(misused, ", "))
	}

	needFlockLab := *panel == "fig1a" || *panel == "fig1b" || *panel == "gains" || *panel == "all"
	needDCube := *panel == "fig1c" || *panel == "fig1d" || *panel == "gains" || *panel == "all"
	needCoverage := *panel == "coverage" || *panel == "all"
	needBaseline := *panel == "baseline" || *panel == "all"
	needScalability := *panel == "scalability" || *panel == "all"
	if !needFlockLab && !needDCube && !needCoverage && !needBaseline && !needScalability {
		return fmt.Errorf("unknown panel %q", *panel)
	}

	var flockRes, dcubeRes *experiment.SweepResult
	var err error
	if needFlockLab {
		flockRes, err = experiment.RunSweep(experiment.FlockLabSweep(*iters, *seed))
		if err != nil {
			return fmt.Errorf("flocklab sweep: %w", err)
		}
	}
	if needDCube {
		dcubeRes, err = experiment.RunSweep(experiment.DCubeSweep(*iters, *seed))
		if err != nil {
			return fmt.Errorf("dcube sweep: %w", err)
		}
	}

	switch {
	case *csv && flockRes != nil && dcubeRes != nil:
		fmt.Print(flockRes.CSV())
		// Skip the duplicate header on the second sweep.
		csvBody := dcubeRes.CSV()
		if idx := indexAfterFirstLine(csvBody); idx > 0 {
			fmt.Print(csvBody[idx:])
		}
		return nil
	case *csv && flockRes != nil:
		fmt.Print(flockRes.CSV())
		return nil
	case *csv && dcubeRes != nil:
		fmt.Print(dcubeRes.CSV())
		return nil
	}

	printPanel := func(id string, res *experiment.SweepResult, m experiment.Metric) {
		if res == nil {
			return
		}
		if *panel == id || *panel == "all" {
			fmt.Printf("== Fig 1(%s) ==\n%s\n", id[len("fig1"):], res.Table(m))
		}
	}
	printPanel("fig1a", flockRes, experiment.Latency)
	printPanel("fig1b", flockRes, experiment.RadioOn)
	printPanel("fig1c", dcubeRes, experiment.Latency)
	printPanel("fig1d", dcubeRes, experiment.RadioOn)

	if *panel == "gains" || *panel == "all" {
		if err := printGains(flockRes, dcubeRes); err != nil {
			return err
		}
	}
	if needBaseline {
		rows, err := experiment.BaselineComparison(*iters, *seed)
		if err != nil {
			return fmt.Errorf("baseline comparison: %w", err)
		}
		fmt.Println(experiment.BaselineTable(rows))
	}
	if needScalability {
		points, err := experiment.ScalabilitySweep([]int{15, 25, 40, 60}, *iters, *seed)
		if err != nil {
			return fmt.Errorf("scalability sweep: %w", err)
		}
		fmt.Println(experiment.ScalabilityTable(points))
	}
	if needCoverage {
		for _, tb := range []topology.Topology{topology.FlockLab(), topology.DCube()} {
			pts, err := experiment.CoverageCurve(tb, []int{1, 2, 3, 4, 5, 6, 8, 10, 12, 16}, *iters, *seed)
			if err != nil {
				return fmt.Errorf("coverage curve %s: %w", tb.Name, err)
			}
			fmt.Println(experiment.CoverageTable(tb.Name, pts))
		}
	}
	return nil
}

// runMatrix parses the axis flags, fans the scenario matrix across the
// worker pool, and renders the result.
func runMatrix(nodes, degrees, loss, phys string, iters int, seed int64, workers int, csv bool) error {
	nodeCounts, err := parseInts(nodes)
	if err != nil {
		return fmt.Errorf("-nodes: %w", err)
	}
	degreeList, err := parseInts(degrees)
	if err != nil {
		return fmt.Errorf("-degrees: %w", err)
	}
	lossRates, err := parseFloats(loss)
	if err != nil {
		return fmt.Errorf("-loss: %w", err)
	}
	backends := parseList(phys)
	m := experiment.Matrix{
		Backends:   backends,
		NodeCounts: nodeCounts,
		Degrees:    degreeList,
		LossRates:  lossRates,
		Iterations: iters,
		Seed:       seed,
	}
	results, err := experiment.RunMatrix(m, workers)
	if err != nil {
		return fmt.Errorf("matrix sweep: %w", err)
	}
	if csv {
		fmt.Print(experiment.MatrixCSV(results))
		return nil
	}
	fmt.Println(experiment.MatrixTable(results))
	return nil
}

func parseList(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func printGains(flockRes, dcubeRes *experiment.SweepResult) error {
	fmt.Println("== Full-network gains (paper: FlockLab >=6x latency / 7x radio; DCube 9x / 10x) ==")
	for _, entry := range []struct {
		name string
		res  *experiment.SweepResult
	}{
		{"flocklab", flockRes},
		{"dcube", dcubeRes},
	} {
		if entry.res == nil {
			continue
		}
		lat, radio, err := entry.res.FullNetworkGains()
		if err != nil {
			return err
		}
		fmt.Printf("%-10s latency %.2fx   radio-on %.2fx\n", entry.name, lat, radio)
	}
	fmt.Println()
	return nil
}

func indexAfterFirstLine(s string) int {
	for i, c := range s {
		if c == '\n' {
			return i + 1
		}
	}
	return -1
}
