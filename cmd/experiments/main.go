// Command experiments regenerates every figure panel of the paper's
// evaluation (Fig. 1 a–d), the in-text headline gain claims, the MiniCast
// coverage-vs-NTX characterization, and free-form scenario-matrix sweeps
// over backend × network size × threshold × loss rate × NTX × slack ×
// failure rate × verifiable mode × protocol.
//
// Matrix sweeps run on the streaming Runner: results appear (in index
// order) the moment each cell completes, `-cache` makes repeated or
// interrupted sweeps pay only for new cells, and `-out` selects the output
// stream format.
//
// Examples:
//
//	experiments -panel all -iters 100
//	experiments -panel fig1a -iters 2000        # paper-scale repetitions
//	experiments -panel coverage
//	experiments -panel fig1c -csv > dcube.csv
//	experiments -panel matrix -nodes 15,25,40 -loss 0.0,0.2,0.4 -workers 8
//	experiments -panel matrix -nodes 20 -degrees 4,6,9 -out csv > matrix.csv
//	experiments -panel matrix -nodes 20 -phy logdist,unitdisk         # backend axis
//	experiments -panel matrix -nodes 10 -phy trace:testbed10 -loss 0.0
//	experiments -panel matrix -nodes 15,25 -fail 0.0,0.1,0.2          # crash injection axis
//	experiments -panel matrix -nodes 20 -verifiable false,true        # VSS overhead axis
//	experiments -panel matrix -nodes 20 -veclen 0,4,8 -out jsonl      # multi-sensor batched-sealing axis
//	experiments -panel matrix -nodes 15,25,40 -iters 2000 -cache ~/.iotmpc-cache -progress
//	experiments -panel matrix -nodes 20 -out jsonl | jq .successRate
//
// One matrix can be sharded across N processes or machines sharing a cache
// directory, then merged back into the byte-identical unsharded artifact:
//
//	experiments -panel matrix -nodes 15,25,40 -cache /nfs/sweep -shard 0/3 &
//	experiments -panel matrix -nodes 15,25,40 -cache /nfs/sweep -shard 1/3 &
//	experiments -panel matrix -nodes 15,25,40 -cache /nfs/sweep -shard 2/3 -steal
//	experiments merge -nodes 15,25,40 -cache /nfs/sweep -shards 3 -out jsonl
//
// Against a sweepd daemon, -server submits the sweep as a job, and the
// `jobs` and `cancel` subcommands manage the daemon's queue:
//
//	experiments -panel matrix -nodes 15,25 -server http://localhost:8080 -out jsonl
//	experiments jobs -server http://localhost:8080 -state running
//	experiments cancel -server http://localhost:8080 j000003
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"iotmpc/internal/cache"
	"iotmpc/internal/experiment"
	"iotmpc/internal/topology"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// matrixFlags bundles everything -panel matrix (and the merge subcommand)
// consumes.
type matrixFlags struct {
	nodes, degrees, loss, phys   string
	ntx, slack, fail, verifiable string
	veclen                       string
	iters                        int
	seed                         int64
	workers, lanes               int
	csv, progress                bool
	cacheDir, out                string
	outSet                       bool
	shard                        string
	steal                        bool
	shards                       int
	server                       string
	stats                        bool
}

func run(args []string) error {
	// The sweepd-client subcommands have their own tiny flag sets: `jobs`
	// lists the daemon's jobs (filtered, paginated) and `cancel` kills one.
	if len(args) > 0 {
		switch args[0] {
		case "jobs":
			return runJobsCmd(args[1:])
		case "cancel":
			return runCancelCmd(args[1:])
		}
	}
	// `experiments merge ...` assembles a sharded sweep from its cache
	// directory instead of running anything; the matrix axis flags select
	// which sweep to assemble.
	mergeMode := len(args) > 0 && args[0] == "merge"
	if mergeMode {
		args = args[1:]
	}
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var mf matrixFlags
	var (
		panel = fs.String("panel", "all",
			"panel: fig1a, fig1b, fig1c, fig1d, gains, coverage, baseline, scalability, matrix, all")
		iters      = fs.Int("iters", 50, "Monte-Carlo iterations per point (paper: 2000)")
		seed       = fs.Int64("seed", 1, "randomness seed")
		csv        = fs.Bool("csv", false, "emit CSV instead of tables (matrix: alias for -out csv)")
		cpuProfile = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to `file`")
		memProfile = fs.String("memprofile", "", "write a pprof heap profile to `file` at exit")
	)
	fs.IntVar(&mf.workers, "workers", 0, "matrix worker goroutines (0: GOMAXPROCS)")
	fs.IntVar(&mf.lanes, "lanes", 0,
		"matrix: bit-sliced trial batch width 1..64 (0: default 64; 1: scalar reference path; results are identical for any width)")
	fs.StringVar(&mf.nodes, "nodes", "15,25,40", "matrix axis: comma-separated network sizes")
	fs.StringVar(&mf.degrees, "degrees", "0", "matrix axis: polynomial degrees (0: n/3)")
	fs.StringVar(&mf.loss, "loss", "0.0,0.2,0.4", "matrix axis: interference burst probabilities")
	fs.StringVar(&mf.phys, "phy", "logdist",
		"matrix axis: radio backends (logdist, unitdisk[:R[:G]], trace:<name-or-file>)")
	fs.StringVar(&mf.ntx, "ntx", "0", "matrix axis: S4 sharing NTX values (0: protocol default 6)")
	fs.StringVar(&mf.slack, "slack", "0", "matrix axis: extra destinations beyond k+1")
	fs.StringVar(&mf.fail, "fail", "0", "matrix axis: node crash fractions in [0,1)")
	fs.StringVar(&mf.verifiable, "verifiable", "false",
		"matrix axis: Feldman-VSS share verification (comma-separated bools)")
	fs.StringVar(&mf.veclen, "veclen", "0",
		"matrix axis: per-source reading-vector lengths (0: scalar round; L seals one 8·L-byte vector + one MIC per destination)")
	fs.StringVar(&mf.cacheDir, "cache", "",
		"matrix: content-addressed result cache directory (repeated sweeps skip cached cells)")
	fs.BoolVar(&mf.progress, "progress", false, "matrix: narrate per-cell progress on stderr")
	fs.StringVar(&mf.out, "out", "table", "matrix output stream: table, csv, jsonl")
	fs.StringVar(&mf.shard, "shard", "",
		"matrix: run only shard i of N (format i/N); shards share -cache and `experiments merge` reassembles the byte-identical sweep")
	fs.BoolVar(&mf.steal, "steal", false,
		"matrix: after finishing its own shard, compute other shards' missing cells in reverse index order (needs -shard and -cache)")
	fs.IntVar(&mf.shards, "shards", 0,
		"merge: shard count whose completion manifests to consult (0: assemble from per-cell entries only)")
	fs.StringVar(&mf.server, "server", "",
		"matrix: submit the sweep to a sweepd job API at this base URL instead of executing locally")
	fs.BoolVar(&mf.stats, "stats", false,
		"print the -cache directory's footprint (entries, bytes, orphaned temp files) and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mf.iters, mf.seed, mf.csv = *iters, *seed, *csv
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "out" {
			mf.outSet = true
		}
	})

	if mf.stats {
		if mf.cacheDir == "" {
			return fmt.Errorf("-stats needs -cache (the directory to report on)")
		}
		return printCacheStats(mf.cacheDir)
	}

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProfiles()

	if mergeMode {
		// merge is cache assembly, not execution: execution-only flags are
		// meaningless here and -panel selects nothing.
		var misused []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "panel", "workers", "lanes", "shard", "steal", "server":
				misused = append(misused, "-"+f.Name)
			}
		})
		if len(misused) > 0 {
			return fmt.Errorf("%s do not apply to merge (use -shards N for the shard count)", strings.Join(misused, ", "))
		}
		return runMerge(mf)
	}

	if *panel == "matrix" {
		// A matrix sweep can run for hours; SIGINT/SIGTERM cancels the
		// Runner's context so in-flight cells finish, sinks flush every
		// already-emitted row, and the exit line reports how far it got.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		return runMatrix(ctx, mf)
	}
	// The matrix-only flags do nothing for the fixed paper panels; reject
	// them rather than let a user believe they took effect.
	var misused []string
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "workers", "lanes", "nodes", "degrees", "loss", "phy",
			"ntx", "slack", "fail", "verifiable", "veclen", "cache", "progress", "out",
			"shard", "steal", "shards", "server":
			misused = append(misused, "-"+f.Name)
		}
	})
	if len(misused) > 0 {
		return fmt.Errorf("%s only apply to -panel matrix", strings.Join(misused, ", "))
	}

	needFlockLab := *panel == "fig1a" || *panel == "fig1b" || *panel == "gains" || *panel == "all"
	needDCube := *panel == "fig1c" || *panel == "fig1d" || *panel == "gains" || *panel == "all"
	needCoverage := *panel == "coverage" || *panel == "all"
	needBaseline := *panel == "baseline" || *panel == "all"
	needScalability := *panel == "scalability" || *panel == "all"
	if !needFlockLab && !needDCube && !needCoverage && !needBaseline && !needScalability {
		return fmt.Errorf("unknown panel %q", *panel)
	}

	var flockRes, dcubeRes *experiment.SweepResult
	if needFlockLab {
		flockRes, err = experiment.RunSweep(experiment.FlockLabSweep(*iters, *seed))
		if err != nil {
			return fmt.Errorf("flocklab sweep: %w", err)
		}
	}
	if needDCube {
		dcubeRes, err = experiment.RunSweep(experiment.DCubeSweep(*iters, *seed))
		if err != nil {
			return fmt.Errorf("dcube sweep: %w", err)
		}
	}

	switch {
	case *csv && flockRes != nil && dcubeRes != nil:
		fmt.Print(flockRes.CSV())
		// Skip the duplicate header on the second sweep.
		csvBody := dcubeRes.CSV()
		if idx := indexAfterFirstLine(csvBody); idx > 0 {
			fmt.Print(csvBody[idx:])
		}
		return nil
	case *csv && flockRes != nil:
		fmt.Print(flockRes.CSV())
		return nil
	case *csv && dcubeRes != nil:
		fmt.Print(dcubeRes.CSV())
		return nil
	}

	printPanel := func(id string, res *experiment.SweepResult, m experiment.Metric) {
		if res == nil {
			return
		}
		if *panel == id || *panel == "all" {
			fmt.Printf("== Fig 1(%s) ==\n%s\n", id[len("fig1"):], res.Table(m))
		}
	}
	printPanel("fig1a", flockRes, experiment.Latency)
	printPanel("fig1b", flockRes, experiment.RadioOn)
	printPanel("fig1c", dcubeRes, experiment.Latency)
	printPanel("fig1d", dcubeRes, experiment.RadioOn)

	if *panel == "gains" || *panel == "all" {
		if err := printGains(flockRes, dcubeRes); err != nil {
			return err
		}
	}
	if needBaseline {
		rows, err := experiment.BaselineComparison(*iters, *seed)
		if err != nil {
			return fmt.Errorf("baseline comparison: %w", err)
		}
		fmt.Println(experiment.BaselineTable(rows))
	}
	if needScalability {
		points, err := experiment.ScalabilitySweep([]int{15, 25, 40, 60}, *iters, *seed)
		if err != nil {
			return fmt.Errorf("scalability sweep: %w", err)
		}
		fmt.Println(experiment.ScalabilityTable(points))
	}
	if needCoverage {
		for _, tb := range []topology.Topology{topology.FlockLab(), topology.DCube()} {
			pts, err := experiment.CoverageCurve(tb, []int{1, 2, 3, 4, 5, 6, 8, 10, 12, 16}, *iters, *seed)
			if err != nil {
				return fmt.Errorf("coverage curve %s: %w", tb.Name, err)
			}
			fmt.Println(experiment.CoverageTable(tb.Name, pts))
		}
	}
	return nil
}

// outputSink maps an -out format name to its stdout sink.
func outputSink(format string) (experiment.Sink, error) {
	switch format {
	case "", "table":
		return &experiment.TableSink{W: os.Stdout}, nil
	case "csv":
		return &experiment.CSVSink{W: os.Stdout}, nil
	case "jsonl":
		return &experiment.JSONLSink{W: os.Stdout}, nil
	default:
		return nil, fmt.Errorf("unknown -out format %q (want table, csv, jsonl)", format)
	}
}

// buildMatrix parses the axis flags into the sweep spec runMatrix executes
// and runMerge assembles.
func buildMatrix(mf matrixFlags) (experiment.Matrix, error) {
	var zero experiment.Matrix
	nodeCounts, err := parseInts(mf.nodes)
	if err != nil {
		return zero, fmt.Errorf("-nodes: %w", err)
	}
	degreeList, err := parseInts(mf.degrees)
	if err != nil {
		return zero, fmt.Errorf("-degrees: %w", err)
	}
	lossRates, err := parseFloats(mf.loss)
	if err != nil {
		return zero, fmt.Errorf("-loss: %w", err)
	}
	ntxValues, err := parseInts(mf.ntx)
	if err != nil {
		return zero, fmt.Errorf("-ntx: %w", err)
	}
	slacks, err := parseInts(mf.slack)
	if err != nil {
		return zero, fmt.Errorf("-slack: %w", err)
	}
	failureRates, err := parseFloats(mf.fail)
	if err != nil {
		return zero, fmt.Errorf("-fail: %w", err)
	}
	verifiables, err := parseBools(mf.verifiable)
	if err != nil {
		return zero, fmt.Errorf("-verifiable: %w", err)
	}
	vectorLens, err := parseInts(mf.veclen)
	if err != nil {
		return zero, fmt.Errorf("-veclen: %w", err)
	}
	return experiment.Matrix{
		Backends:     parseList(mf.phys),
		NodeCounts:   nodeCounts,
		Degrees:      degreeList,
		LossRates:    lossRates,
		NTXSharings:  ntxValues,
		DestSlacks:   slacks,
		FailureRates: failureRates,
		Verifiable:   verifiables,
		VectorLens:   vectorLens,
		Iterations:   mf.iters,
		Seed:         mf.seed,
	}, nil
}

// outputFormat resolves -out against the legacy -csv alias.
func outputFormat(mf matrixFlags) (string, error) {
	format := mf.out
	if mf.csv {
		// -csv predates -out; honoring it quietly is fine when -out was left
		// at its default, but an explicit conflicting -out must not be
		// clobbered.
		if mf.outSet && format != "csv" {
			return "", fmt.Errorf("-csv conflicts with -out %s; pick one", format)
		}
		format = "csv"
	}
	return format, nil
}

// parseShard parses the -shard flag's "i/N" form; "" is the unsharded spec.
func parseShard(s string, steal bool) (experiment.ShardSpec, error) {
	if s == "" {
		return experiment.ShardSpec{Steal: steal}, nil
	}
	left, right, ok := strings.Cut(s, "/")
	if !ok {
		return experiment.ShardSpec{}, fmt.Errorf("-shard %q: want i/N (e.g. 0/3)", s)
	}
	shard, err := strconv.Atoi(strings.TrimSpace(left))
	if err != nil {
		return experiment.ShardSpec{}, fmt.Errorf("-shard %q: %w", s, err)
	}
	total, err := strconv.Atoi(strings.TrimSpace(right))
	if err != nil {
		return experiment.ShardSpec{}, fmt.Errorf("-shard %q: %w", s, err)
	}
	spec := experiment.ShardSpec{Shard: shard, Total: total, Steal: steal}
	if err := spec.Validate(); err != nil {
		return experiment.ShardSpec{}, err
	}
	return spec, nil
}

// runMatrix parses the axis flags and streams the scenario matrix through
// the Runner: results hit the output sink in index order as cells complete.
// With -server the sweep is submitted to a sweepd job API instead, and the
// results stream back over HTTP — byte-identical (for -out jsonl) to a local
// run of the same matrix.
func runMatrix(ctx context.Context, mf matrixFlags) error {
	m, err := buildMatrix(mf)
	if err != nil {
		return err
	}
	if mf.server != "" {
		// Execution knobs belong to the server's configuration; silently
		// ignoring them would let the user believe they shaped the sweep.
		var misused []string
		for _, f := range []struct {
			name string
			set  bool
		}{
			{"-workers", mf.workers != 0},
			{"-lanes", mf.lanes != 0},
			{"-cache", mf.cacheDir != ""},
			{"-shard", mf.shard != ""},
			{"-steal", mf.steal},
		} {
			if f.set {
				misused = append(misused, f.name)
			}
		}
		if len(misused) > 0 {
			return fmt.Errorf("%s do not apply with -server (the service owns its cache and runner configuration)",
				strings.Join(misused, ", "))
		}
		return runServerMatrix(ctx, mf, m)
	}
	spec, err := parseShard(mf.shard, mf.steal)
	if err != nil {
		return err
	}
	if mf.steal {
		if mf.shard == "" {
			return fmt.Errorf("-steal needs -shard (there is nothing to steal from an unsharded sweep)")
		}
		if mf.cacheDir == "" {
			return fmt.Errorf("-steal needs -cache (stolen results land in the shared cache)")
		}
	}
	format, err := outputFormat(mf)
	if err != nil {
		return err
	}
	sink, err := outputSink(format)
	if err != nil {
		return err
	}
	// The interrupt report needs this process's share of the matrix and how
	// far the sweep got; both are observable from the sink stream itself.
	var completed, cells int
	counter := &experiment.FuncSink{
		Start: func(p experiment.Plan) error {
			cells = len(p.Scenarios)
			if p.Shard.Total > 1 {
				lo, hi := experiment.Partition(cells, p.Shard.Shard, p.Shard.Total)
				cells = hi - lo
			}
			return nil
		},
		Result: func(experiment.ScenarioResult) error {
			completed++
			return nil
		},
	}
	opts := []experiment.Option{
		experiment.WithWorkers(mf.workers),
		experiment.WithLanes(mf.lanes),
		experiment.WithShard(spec),
		experiment.WithSinks(sink, counter),
		experiment.WithContext(ctx),
	}
	if mf.progress {
		opts = append(opts, experiment.WithSinks(&experiment.ProgressSink{W: os.Stderr}))
	}
	if mf.cacheDir != "" {
		opts = append(opts, experiment.WithCache(mf.cacheDir))
	}
	if _, err := experiment.NewRunner(opts...).Run(m); err != nil {
		if ctx.Err() != nil && errors.Is(err, context.Canceled) {
			// Every finished cell already reached the sinks (and the cache,
			// if one is configured): rerunning resumes from there.
			return fmt.Errorf("interrupted: %d/%d cells completed", completed, cells)
		}
		return fmt.Errorf("matrix sweep: %w", err)
	}
	return nil
}

// printCacheStats reports a result cache directory's footprint (-stats).
func printCacheStats(dir string) error {
	c, err := cache.Open(dir)
	if err != nil {
		return err
	}
	st, err := c.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("cache %s: %d entries, %d bytes, %d orphaned temp files\n",
		dir, st.Entries, st.TotalBytes, st.OrphanedTemps)
	return nil
}

// runMerge assembles a sharded sweep from the shards' shared cache
// directory and streams it through the output sink — the merged stream (and
// the matrix manifest the merge writes) is byte-identical to an unsharded
// run's.
func runMerge(mf matrixFlags) error {
	if mf.cacheDir == "" {
		return fmt.Errorf("merge needs -cache (the directory the shards shared)")
	}
	if mf.shards < 0 {
		return fmt.Errorf("-shards %d: want >= 0", mf.shards)
	}
	m, err := buildMatrix(mf)
	if err != nil {
		return err
	}
	scenarios, err := m.Scenarios()
	if err != nil {
		return err
	}
	results, err := experiment.MergeShards(mf.cacheDir, scenarios, mf.shards)
	if err != nil {
		return fmt.Errorf("merge: %w", err)
	}
	format, err := outputFormat(mf)
	if err != nil {
		return err
	}
	sink, err := outputSink(format)
	if err != nil {
		return err
	}
	sinks := []experiment.Sink{sink}
	if mf.progress {
		sinks = append(sinks, &experiment.ProgressSink{W: os.Stderr})
	}
	plan := experiment.Plan{Scenarios: scenarios, CacheDir: mf.cacheDir,
		CacheHits: len(results), ManifestHit: true}
	sum := experiment.RunSummary{Cells: len(results), CacheHits: len(results)}
	for _, s := range sinks {
		if err := s.OnStart(plan); err != nil {
			return err
		}
	}
	for _, r := range results {
		for _, s := range sinks {
			if err := s.OnResult(r); err != nil {
				return err
			}
		}
	}
	for _, s := range sinks {
		if err := s.OnFinish(sum); err != nil {
			return err
		}
	}
	return nil
}

func parseList(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseBools(s string) ([]bool, error) {
	parts := strings.Split(s, ",")
	out := make([]bool, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseBool(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func printGains(flockRes, dcubeRes *experiment.SweepResult) error {
	fmt.Println("== Full-network gains (paper: FlockLab >=6x latency / 7x radio; DCube 9x / 10x) ==")
	for _, entry := range []struct {
		name string
		res  *experiment.SweepResult
	}{
		{"flocklab", flockRes},
		{"dcube", dcubeRes},
	} {
		if entry.res == nil {
			continue
		}
		lat, radio, err := entry.res.FullNetworkGains()
		if err != nil {
			return err
		}
		fmt.Printf("%-10s latency %.2fx   radio-on %.2fx\n", entry.name, lat, radio)
	}
	fmt.Println()
	return nil
}

func indexAfterFirstLine(s string) int {
	for i, c := range s {
		if c == '\n' {
			return i + 1
		}
	}
	return -1
}
