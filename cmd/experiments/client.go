package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"iotmpc/internal/experiment"
	"iotmpc/internal/store"
)

// This file is the -server client: instead of executing a matrix locally,
// the CLI submits it to a sweepd v1 job API, polls the job to completion,
// and streams the results back through the same output sinks. With -out
// jsonl the bytes are copied straight from the HTTP response, so the
// artifact is byte-identical to a local run's. The `jobs` and `cancel`
// subcommands expose the rest of the v1 surface: filtered job listing and
// cancellation.

// pollInterval is how often the client re-reads the job while waiting.
const pollInterval = 150 * time.Millisecond

// apiError decodes the service's typed error envelope
// {"error":{"code","field","message"}} into a readable "field: message"
// error, falling back to the pre-v1 {"error": "..."} string shape so the
// client still degrades gracefully against an old daemon.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var envelope struct {
		Error json.RawMessage `json:"error"`
	}
	if json.Unmarshal(body, &envelope) == nil && len(envelope.Error) > 0 {
		var typed struct {
			Code    string `json:"code"`
			Field   string `json:"field"`
			Message string `json:"message"`
		}
		if json.Unmarshal(envelope.Error, &typed) == nil && typed.Message != "" {
			if typed.Field != "" {
				return fmt.Errorf("server: %s: %s (HTTP %d, %s)", typed.Field, typed.Message, resp.StatusCode, typed.Code)
			}
			return fmt.Errorf("server: %s (HTTP %d, %s)", typed.Message, resp.StatusCode, typed.Code)
		}
		var legacy string
		if json.Unmarshal(envelope.Error, &legacy) == nil && legacy != "" {
			return fmt.Errorf("server: %s (HTTP %d)", legacy, resp.StatusCode)
		}
	}
	return fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
}

// submitJob POSTs the matrix spec and returns the created job record.
func submitJob(ctx context.Context, base string, m experiment.Matrix) (store.Job, error) {
	var job store.Job
	spec, err := json.Marshal(m)
	if err != nil {
		return job, err
	}
	resp, err := transientRetry.do(ctx, http.DefaultClient, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", bytes.NewReader(spec))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
	if err != nil {
		return job, fmt.Errorf("submit to %s: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return job, apiError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		return job, fmt.Errorf("decode job: %w", err)
	}
	return job, nil
}

// getJob reads one job record.
func getJob(ctx context.Context, base, id string) (store.Job, error) {
	var job store.Job
	resp, err := transientRetry.do(ctx, http.DefaultClient, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+id, nil)
	})
	if err != nil {
		return job, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return job, apiError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		return job, fmt.Errorf("decode job: %w", err)
	}
	return job, nil
}

// runServerMatrix submits the matrix, waits for the job, and streams the
// results through the -out sink.
func runServerMatrix(ctx context.Context, mf matrixFlags, m experiment.Matrix) error {
	base := strings.TrimSuffix(mf.server, "/")
	job, err := submitJob(ctx, base, m)
	if err != nil {
		return err
	}
	if mf.progress {
		fmt.Fprintf(os.Stderr, "submitted job %s (%d cells) to %s\n", job.ID, job.Cells, base)
	}
	job, err = waitForJob(ctx, base, job.ID, mf.progress)
	if err != nil {
		return err
	}
	return streamResults(ctx, base, job, mf, m)
}

// waitForJob polls until the job reaches a terminal state. An interrupt
// while waiting does NOT cancel the job — it keeps running on the server,
// and the results stay fetchable.
func waitForJob(ctx context.Context, base, id string, progress bool) (store.Job, error) {
	ticker := time.NewTicker(pollInterval)
	defer ticker.Stop()
	lastCompleted := -1
	for {
		job, err := getJob(ctx, base, id)
		if err != nil {
			if ctx.Err() != nil {
				return job, fmt.Errorf("interrupted: job %s continues on the server; its results stay fetchable at %s/v1/jobs/%s/results", id, base, id)
			}
			return job, err
		}
		if progress && job.Completed != lastCompleted {
			lastCompleted = job.Completed
			fmt.Fprintf(os.Stderr, "job %s: %s, %d/%d cells\n", job.ID, job.State, job.Completed, job.Cells)
		}
		switch job.State {
		case store.Done:
			return job, nil
		case store.Failed:
			return job, fmt.Errorf("job %s failed: %s", job.ID, job.Error)
		case store.Canceled:
			return job, fmt.Errorf("job %s canceled: %s (its partial results stay fetchable at %s/v1/jobs/%s/results)", job.ID, job.Error, base, id)
		}
		select {
		case <-ctx.Done():
			return job, fmt.Errorf("interrupted: job %s continues on the server; its results stay fetchable at %s/v1/jobs/%s/results", id, base, id)
		case <-ticker.C:
		}
	}
}

// streamResults fetches the finished job's JSONL and renders it in the
// requested format. JSONL is a raw byte copy of the response — the server
// streams exactly the bytes a local `-out jsonl` run prints; table and CSV
// decode each row and drive the ordinary sinks.
func streamResults(ctx context.Context, base string, job store.Job, mf matrixFlags, m experiment.Matrix) error {
	resp, err := transientRetry.do(ctx, http.DefaultClient, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+job.ID+"/results", nil)
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	format, err := outputFormat(mf)
	if err != nil {
		return err
	}
	if format == "jsonl" {
		_, err := io.Copy(os.Stdout, resp.Body)
		return err
	}
	sink, err := outputSink(format)
	if err != nil {
		return err
	}
	scenarios, err := m.Scenarios()
	if err != nil {
		return err
	}
	if err := sink.OnStart(experiment.Plan{Scenarios: scenarios, CacheHits: job.CacheHits}); err != nil {
		return err
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	rows := 0
	for sc.Scan() {
		var r experiment.ScenarioResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			return fmt.Errorf("decode result row %d: %w", rows, err)
		}
		if err := sink.OnResult(r); err != nil {
			return err
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return sink.OnFinish(experiment.RunSummary{
		Cells:     job.Cells,
		CacheHits: job.CacheHits,
		Computed:  job.Computed,
		Resumed:   job.Resumed,
	})
}

// cancelJob DELETEs the job: 200 means it was killed (or already canceled)
// on the spot, 202 means a running job is draining toward canceled.
func cancelJob(ctx context.Context, base, id string) (store.Job, bool, error) {
	var job store.Job
	resp, err := transientRetry.do(ctx, http.DefaultClient, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodDelete, base+"/v1/jobs/"+id, nil)
	})
	if err != nil {
		return job, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return job, false, apiError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		return job, false, fmt.Errorf("decode job: %w", err)
	}
	return job, resp.StatusCode == http.StatusAccepted, nil
}

// jobPage mirrors the GET /v1/jobs response body.
type jobPage struct {
	Jobs      []store.Job `json:"jobs"`
	NextAfter string      `json:"nextAfter"`
}

// listJobs fetches one page of GET /v1/jobs?state&limit&after.
func listJobs(ctx context.Context, base, state string, limit int, after string) (jobPage, error) {
	var page jobPage
	u, err := url.Parse(base + "/v1/jobs")
	if err != nil {
		return page, err
	}
	q := u.Query()
	if state != "" {
		q.Set("state", state)
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if after != "" {
		q.Set("after", after)
	}
	u.RawQuery = q.Encode()
	resp, err := transientRetry.do(ctx, http.DefaultClient, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	})
	if err != nil {
		return page, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return page, apiError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return page, fmt.Errorf("decode job list: %w", err)
	}
	return page, nil
}

// runJobsCmd is `experiments jobs -server URL [-state S] [-limit N]
// [-after ID]`: a filtered, paginated job listing printed one line per job.
func runJobsCmd(args []string) error {
	fs := flag.NewFlagSet("experiments jobs", flag.ContinueOnError)
	var (
		server = fs.String("server", "", "sweepd base URL (required)")
		state  = fs.String("state", "", "filter: queued, running, done, failed, canceled")
		limit  = fs.Int("limit", 0, "page size (server default 100)")
		after  = fs.String("after", "", "resume listing after this job ID")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *server == "" {
		return fmt.Errorf("jobs needs -server (the sweepd base URL)")
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("jobs takes no positional arguments (got %q)", fs.Arg(0))
	}
	page, err := listJobs(context.Background(), strings.TrimSuffix(*server, "/"), *state, *limit, *after)
	if err != nil {
		return err
	}
	for _, job := range page.Jobs {
		line := fmt.Sprintf("%s  %-8s  %d/%d cells", job.ID, job.State, job.Completed, job.Cells)
		if job.Error != "" {
			line += "  " + job.Error
		}
		fmt.Println(line)
	}
	if page.NextAfter != "" {
		fmt.Fprintf(os.Stderr, "more: rerun with -after %s\n", page.NextAfter)
	}
	return nil
}

// runCancelCmd is `experiments cancel -server URL JOB_ID`: cancel a queued
// or running job and report where it landed.
func runCancelCmd(args []string) error {
	fs := flag.NewFlagSet("experiments cancel", flag.ContinueOnError)
	server := fs.String("server", "", "sweepd base URL (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *server == "" {
		return fmt.Errorf("cancel needs -server (the sweepd base URL)")
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("cancel takes exactly one job ID (got %d arguments)", fs.NArg())
	}
	base := strings.TrimSuffix(*server, "/")
	id := fs.Arg(0)
	job, draining, err := cancelJob(context.Background(), base, id)
	if err != nil {
		return err
	}
	if draining {
		fmt.Printf("job %s: cancellation requested, draining (watch %s/v1/jobs/%s)\n", job.ID, base, job.ID)
		return nil
	}
	fmt.Printf("job %s: %s\n", job.ID, job.State)
	return nil
}
