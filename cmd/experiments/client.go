package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"iotmpc/internal/experiment"
	"iotmpc/internal/store"
)

// This file is the -server client: instead of executing a matrix locally,
// the CLI submits it to a sweepd job API, polls the job to completion, and
// streams the results back through the same output sinks. With -out jsonl
// the bytes are copied straight from the HTTP response, so the artifact is
// byte-identical to a local run's.

// pollInterval is how often the client re-reads the job while waiting.
const pollInterval = 150 * time.Millisecond

// apiError decodes the service's {"error": ...} body into a readable error.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("server: %s (HTTP %d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
}

// submitJob POSTs the matrix spec and returns the created job record.
func submitJob(ctx context.Context, base string, m experiment.Matrix) (store.Job, error) {
	var job store.Job
	spec, err := json.Marshal(m)
	if err != nil {
		return job, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/jobs", bytes.NewReader(spec))
	if err != nil {
		return job, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return job, fmt.Errorf("submit to %s: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return job, apiError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		return job, fmt.Errorf("decode job: %w", err)
	}
	return job, nil
}

// getJob reads one job record.
func getJob(ctx context.Context, base, id string) (store.Job, error) {
	var job store.Job
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/jobs/"+id, nil)
	if err != nil {
		return job, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return job, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return job, apiError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		return job, fmt.Errorf("decode job: %w", err)
	}
	return job, nil
}

// runServerMatrix submits the matrix, waits for the job, and streams the
// results through the -out sink.
func runServerMatrix(ctx context.Context, mf matrixFlags, m experiment.Matrix) error {
	base := strings.TrimSuffix(mf.server, "/")
	job, err := submitJob(ctx, base, m)
	if err != nil {
		return err
	}
	if mf.progress {
		fmt.Fprintf(os.Stderr, "submitted job %s (%d cells) to %s\n", job.ID, job.Cells, base)
	}
	job, err = waitForJob(ctx, base, job.ID, mf.progress)
	if err != nil {
		return err
	}
	return streamResults(ctx, base, job, mf, m)
}

// waitForJob polls until the job reaches a terminal state. An interrupt
// while waiting does NOT cancel the job — it keeps running on the server,
// and the results stay fetchable.
func waitForJob(ctx context.Context, base, id string, progress bool) (store.Job, error) {
	ticker := time.NewTicker(pollInterval)
	defer ticker.Stop()
	lastCompleted := -1
	for {
		job, err := getJob(ctx, base, id)
		if err != nil {
			if ctx.Err() != nil {
				return job, fmt.Errorf("interrupted: job %s continues on the server; its results stay fetchable at %s/jobs/%s/results", id, base, id)
			}
			return job, err
		}
		if progress && job.Completed != lastCompleted {
			lastCompleted = job.Completed
			fmt.Fprintf(os.Stderr, "job %s: %s, %d/%d cells\n", job.ID, job.State, job.Completed, job.Cells)
		}
		switch job.State {
		case store.Done:
			return job, nil
		case store.Failed:
			return job, fmt.Errorf("job %s failed: %s", job.ID, job.Error)
		}
		select {
		case <-ctx.Done():
			return job, fmt.Errorf("interrupted: job %s continues on the server; its results stay fetchable at %s/jobs/%s/results", id, base, id)
		case <-ticker.C:
		}
	}
}

// streamResults fetches the finished job's JSONL and renders it in the
// requested format. JSONL is a raw byte copy of the response — the server
// streams exactly the bytes a local `-out jsonl` run prints; table and CSV
// decode each row and drive the ordinary sinks.
func streamResults(ctx context.Context, base string, job store.Job, mf matrixFlags, m experiment.Matrix) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/jobs/"+job.ID+"/results", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	format, err := outputFormat(mf)
	if err != nil {
		return err
	}
	if format == "jsonl" {
		_, err := io.Copy(os.Stdout, resp.Body)
		return err
	}
	sink, err := outputSink(format)
	if err != nil {
		return err
	}
	scenarios, err := m.Scenarios()
	if err != nil {
		return err
	}
	if err := sink.OnStart(experiment.Plan{Scenarios: scenarios, CacheHits: job.CacheHits}); err != nil {
		return err
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	rows := 0
	for sc.Scan() {
		var r experiment.ScenarioResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			return fmt.Errorf("decode result row %d: %w", rows, err)
		}
		if err := sink.OnResult(r); err != nil {
			return err
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return sink.OnFinish(experiment.RunSummary{
		Cells:     job.Cells,
		CacheHits: job.CacheHits,
		Computed:  job.Computed,
		Resumed:   job.Resumed,
	})
}
