package main

import (
	"context"
	"io"
	"math/rand/v2"
	"net/http"
	"time"
)

// Transient failures — a connection refused while sweepd restarts, a reset
// mid-response, a 5xx from an overloaded proxy — should not kill a sweep
// run that would succeed a second later. Every -server HTTP call goes
// through retryPolicy.do, which retries exactly those failures with
// bounded exponential backoff and jitter. Deliberate server answers (4xx)
// and caller cancellation pass through untouched: a 400 will not improve
// with repetition, and ^C means stop, not try harder.

// retryPolicy bounds and paces the retries. The function fields exist so
// tests can pin the jitter and skip the sleeps; zero-value fields fall
// back to the real implementations.
type retryPolicy struct {
	attempts int           // total tries, including the first
	base     time.Duration // backoff before the first retry; doubles per retry
	max      time.Duration // backoff cap
	jitter   func(time.Duration) time.Duration
	sleep    func(context.Context, time.Duration) error
	notify   func(err error, delay time.Duration) // observes each retry decision
}

// transientRetry is the policy all client calls share: 4 tries over ~1.5s
// of backoff (200ms, 400ms, 800ms, each halved-to-full by jitter) — long
// enough to ride out a sweepd restart, short enough that a genuinely dead
// server fails the command promptly.
var transientRetry = retryPolicy{
	attempts: 4,
	base:     200 * time.Millisecond,
	max:      2 * time.Second,
}

// halfJitter spreads a delay uniformly over [d/2, d] so clients that
// failed together do not retry together.
func halfJitter(d time.Duration) time.Duration {
	return d/2 + rand.N(d/2+1)
}

func ctxSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// do issues the request until it gets a non-retryable answer or the
// attempt budget runs out. build constructs a fresh request per attempt —
// a body reader is consumed by the attempt that fails, so it cannot be
// reused. The terminal attempt's outcome is returned verbatim: a 5xx
// response flows to the caller's apiError path, a transport error to its
// %w wrap.
func (p retryPolicy) do(ctx context.Context, client *http.Client, build func() (*http.Request, error)) (*http.Response, error) {
	delay := p.base
	for attempt := 1; ; attempt++ {
		req, err := build()
		if err != nil {
			return nil, err
		}
		resp, err := client.Do(req)
		if err == nil && resp.StatusCode < 500 {
			return resp, nil
		}
		if attempt >= p.attempts || ctx.Err() != nil {
			return resp, err
		}
		if resp != nil {
			// Drain so the connection can be reused for the retry.
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
		}
		d := delay
		if j := p.jitter; j != nil {
			d = j(d)
		} else {
			d = halfJitter(d)
		}
		if p.notify != nil {
			p.notify(err, d)
		}
		sleep := p.sleep
		if sleep == nil {
			sleep = ctxSleep
		}
		if err := sleep(ctx, d); err != nil {
			return nil, err
		}
		if delay *= 2; delay > p.max {
			delay = p.max
		}
	}
}
