package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunUnknownPanel(t *testing.T) {
	if err := run([]string{"-panel", "fig9z"}); err == nil {
		t.Error("unknown panel accepted")
	}
}

func TestRunSinglePanelTinyIters(t *testing.T) {
	if err := run([]string{"-panel", "fig1a", "-iters", "1"}); err != nil {
		t.Fatalf("fig1a: %v", err)
	}
}

func TestRunCSVMode(t *testing.T) {
	if err := run([]string{"-panel", "fig1a", "-iters", "1", "-csv"}); err != nil {
		t.Fatalf("csv: %v", err)
	}
}

func TestRunGainsPanel(t *testing.T) {
	if err := run([]string{"-panel", "gains", "-iters", "1"}); err != nil {
		t.Fatalf("gains: %v", err)
	}
}

func TestRunBaselinePanel(t *testing.T) {
	if err := run([]string{"-panel", "baseline", "-iters", "1"}); err != nil {
		t.Fatalf("baseline: %v", err)
	}
}

func TestRunScalabilityPanel(t *testing.T) {
	if testing.Short() {
		t.Skip("scalability sweep bootstraps four network sizes")
	}
	if err := run([]string{"-panel", "scalability", "-iters", "1"}); err != nil {
		t.Fatalf("scalability: %v", err)
	}
}

func TestRunCoveragePanel(t *testing.T) {
	if err := run([]string{"-panel", "coverage", "-iters", "1"}); err != nil {
		t.Fatalf("coverage: %v", err)
	}
}

func TestRunCSVSinglePanelDCube(t *testing.T) {
	if testing.Short() {
		t.Skip("dcube sweep")
	}
	if err := run([]string{"-panel", "fig1c", "-iters", "1", "-csv"}); err != nil {
		t.Fatalf("fig1c csv: %v", err)
	}
}

func TestIndexAfterFirstLine(t *testing.T) {
	if got := indexAfterFirstLine("a\nb"); got != 2 {
		t.Errorf("got %d, want 2", got)
	}
	if got := indexAfterFirstLine("abc"); got != -1 {
		t.Errorf("no newline: got %d, want -1", got)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("flag parse error not propagated")
	}
}

func TestRunMatrixPanel(t *testing.T) {
	if err := run([]string{"-panel", "matrix", "-nodes", "8", "-loss", "0.0", "-iters", "1"}); err != nil {
		t.Fatalf("matrix: %v", err)
	}
}

func TestRunMatrixOutputFormats(t *testing.T) {
	for _, format := range []string{"table", "csv", "jsonl"} {
		args := []string{"-panel", "matrix", "-nodes", "8", "-loss", "0.0", "-iters", "1", "-out", format}
		if err := run(args); err != nil {
			t.Fatalf("-out %s: %v", format, err)
		}
	}
	if err := run([]string{"-panel", "matrix", "-nodes", "8", "-iters", "1", "-out", "xml"}); err == nil {
		t.Error("unknown -out format accepted")
	}
	if err := run([]string{"-panel", "matrix", "-nodes", "8", "-iters", "1", "-csv", "-out", "jsonl"}); err == nil {
		t.Error("conflicting -csv and -out accepted")
	}
}

func TestRunMatrixNewAxes(t *testing.T) {
	err := run([]string{"-panel", "matrix", "-nodes", "10", "-loss", "0.0", "-iters", "1",
		"-ntx", "0,4", "-slack", "0,1", "-fail", "0,0.1", "-verifiable", "false,true"})
	if err != nil {
		t.Fatalf("axis flags: %v", err)
	}
}

func TestRunMatrixCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-panel", "matrix", "-nodes", "8", "-loss", "0.0", "-iters", "1",
		"-cache", dir, "-progress"}
	if err := run(args); err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if err := run(args); err != nil {
		t.Fatalf("warm run: %v", err)
	}
}

func TestRunMatrixFlagsRejectedOnFixedPanels(t *testing.T) {
	for _, args := range [][]string{
		{"-panel", "fig1a", "-iters", "1", "-cache", "/tmp/x"},
		{"-panel", "fig1a", "-iters", "1", "-out", "jsonl"},
		{"-panel", "fig1a", "-iters", "1", "-progress"},
		{"-panel", "fig1a", "-iters", "1", "-fail", "0.1"},
		{"-panel", "fig1a", "-iters", "1", "-verifiable", "true"},
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v: matrix-only flag accepted on a fixed panel", args)
		}
	}
}

func TestRunProfilingFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	err := run([]string{"-panel", "matrix", "-nodes", "8", "-loss", "0.0", "-iters", "1",
		"-cpuprofile", cpu, "-memprofile", mem})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if info.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
	// An unwritable CPU profile path is a startup error, not a crash.
	if err := run([]string{"-panel", "matrix", "-nodes", "8", "-iters", "1",
		"-cpuprofile", filepath.Join(dir, "no", "such", "dir", "x.prof")}); err == nil {
		t.Fatal("unwritable -cpuprofile accepted")
	}
}

func TestRunShardedMatrixAndMerge(t *testing.T) {
	dir := t.TempDir()
	base := []string{"-panel", "matrix", "-nodes", "8,10", "-loss", "0.0", "-iters", "1", "-cache", dir}
	// Merging before any shard ran is an informative failure, not a panic.
	mergeArgs := []string{"merge", "-nodes", "8,10", "-loss", "0.0", "-iters", "1",
		"-cache", dir, "-shards", "2", "-out", "jsonl"}
	if err := run(mergeArgs); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("premature merge: err = %v, want missing-cells error", err)
	}
	for shard := 0; shard < 2; shard++ {
		if err := run(append(base, "-shard", fmt.Sprintf("%d/2", shard))); err != nil {
			t.Fatalf("shard %d/2: %v", shard, err)
		}
	}
	if err := run(mergeArgs); err != nil {
		t.Fatalf("merge: %v", err)
	}
	// The merge left the matrix manifest: the unsharded rerun is served whole.
	if err := run(append(base, "-progress")); err != nil {
		t.Fatalf("post-merge unsharded run: %v", err)
	}
}

func TestRunShardWithStealRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-panel", "matrix", "-nodes", "8,10", "-loss", "0.0", "-iters", "1",
		"-cache", dir, "-shard", "0/2", "-steal"}); err != nil {
		t.Fatalf("stealing shard: %v", err)
	}
	// The thief filled the whole cache: a shardless merge assembles it.
	if err := run([]string{"merge", "-nodes", "8,10", "-loss", "0.0", "-iters", "1", "-cache", dir}); err != nil {
		t.Fatalf("merge after steal: %v", err)
	}
}

func TestRunShardFlagValidation(t *testing.T) {
	dir := t.TempDir()
	for _, args := range [][]string{
		{"-panel", "matrix", "-nodes", "8", "-iters", "1", "-shard", "3"},             // not i/N
		{"-panel", "matrix", "-nodes", "8", "-iters", "1", "-shard", "2/2"},           // out of range
		{"-panel", "matrix", "-nodes", "8", "-iters", "1", "-shard", "x/2"},           // non-numeric
		{"-panel", "matrix", "-nodes", "8", "-iters", "1", "-shard", "0/0"},           // zero shards
		{"-panel", "matrix", "-nodes", "8", "-iters", "1", "-steal"},                  // steal without shard
		{"-panel", "matrix", "-nodes", "8", "-iters", "1", "-shard", "0/2", "-steal"}, // steal without cache
		{"-panel", "fig1a", "-iters", "1", "-shard", "0/2"},                           // sharding a fixed panel
		{"merge", "-nodes", "8", "-iters", "1"},                                       // merge without cache
		{"merge", "-nodes", "8", "-iters", "1", "-cache", dir, "-shards", "-1"},       // negative shard count
		{"merge", "-nodes", "8", "-iters", "1", "-cache", dir, "-shard", "0/2"},       // run-only flag on merge
		{"merge", "-nodes", "8", "-iters", "1", "-cache", dir, "-steal"},              // run-only flag on merge
		{"merge", "-nodes", "8", "-iters", "1", "-cache", dir, "-panel", "matrix"},    // panel on merge
		{"merge", "-nodes", "8", "-iters", "1", "-cache", dir, "-workers", "2"},       // run-only flag on merge
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
