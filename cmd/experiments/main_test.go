package main

import "testing"

func TestRunUnknownPanel(t *testing.T) {
	if err := run([]string{"-panel", "fig9z"}); err == nil {
		t.Error("unknown panel accepted")
	}
}

func TestRunSinglePanelTinyIters(t *testing.T) {
	if err := run([]string{"-panel", "fig1a", "-iters", "1"}); err != nil {
		t.Fatalf("fig1a: %v", err)
	}
}

func TestRunCSVMode(t *testing.T) {
	if err := run([]string{"-panel", "fig1a", "-iters", "1", "-csv"}); err != nil {
		t.Fatalf("csv: %v", err)
	}
}

func TestRunGainsPanel(t *testing.T) {
	if err := run([]string{"-panel", "gains", "-iters", "1"}); err != nil {
		t.Fatalf("gains: %v", err)
	}
}

func TestRunBaselinePanel(t *testing.T) {
	if err := run([]string{"-panel", "baseline", "-iters", "1"}); err != nil {
		t.Fatalf("baseline: %v", err)
	}
}

func TestRunScalabilityPanel(t *testing.T) {
	if testing.Short() {
		t.Skip("scalability sweep bootstraps four network sizes")
	}
	if err := run([]string{"-panel", "scalability", "-iters", "1"}); err != nil {
		t.Fatalf("scalability: %v", err)
	}
}

func TestRunCoveragePanel(t *testing.T) {
	if err := run([]string{"-panel", "coverage", "-iters", "1"}); err != nil {
		t.Fatalf("coverage: %v", err)
	}
}

func TestRunCSVSinglePanelDCube(t *testing.T) {
	if testing.Short() {
		t.Skip("dcube sweep")
	}
	if err := run([]string{"-panel", "fig1c", "-iters", "1", "-csv"}); err != nil {
		t.Fatalf("fig1c csv: %v", err)
	}
}

func TestIndexAfterFirstLine(t *testing.T) {
	if got := indexAfterFirstLine("a\nb"); got != 2 {
		t.Errorf("got %d, want 2", got)
	}
	if got := indexAfterFirstLine("abc"); got != -1 {
		t.Errorf("no newline: got %d, want -1", got)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("flag parse error not propagated")
	}
}
