package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunUnknownPanel(t *testing.T) {
	if err := run([]string{"-panel", "fig9z"}); err == nil {
		t.Error("unknown panel accepted")
	}
}

func TestRunSinglePanelTinyIters(t *testing.T) {
	if err := run([]string{"-panel", "fig1a", "-iters", "1"}); err != nil {
		t.Fatalf("fig1a: %v", err)
	}
}

func TestRunCSVMode(t *testing.T) {
	if err := run([]string{"-panel", "fig1a", "-iters", "1", "-csv"}); err != nil {
		t.Fatalf("csv: %v", err)
	}
}

func TestRunGainsPanel(t *testing.T) {
	if err := run([]string{"-panel", "gains", "-iters", "1"}); err != nil {
		t.Fatalf("gains: %v", err)
	}
}

func TestRunBaselinePanel(t *testing.T) {
	if err := run([]string{"-panel", "baseline", "-iters", "1"}); err != nil {
		t.Fatalf("baseline: %v", err)
	}
}

func TestRunScalabilityPanel(t *testing.T) {
	if testing.Short() {
		t.Skip("scalability sweep bootstraps four network sizes")
	}
	if err := run([]string{"-panel", "scalability", "-iters", "1"}); err != nil {
		t.Fatalf("scalability: %v", err)
	}
}

func TestRunCoveragePanel(t *testing.T) {
	if err := run([]string{"-panel", "coverage", "-iters", "1"}); err != nil {
		t.Fatalf("coverage: %v", err)
	}
}

func TestRunCSVSinglePanelDCube(t *testing.T) {
	if testing.Short() {
		t.Skip("dcube sweep")
	}
	if err := run([]string{"-panel", "fig1c", "-iters", "1", "-csv"}); err != nil {
		t.Fatalf("fig1c csv: %v", err)
	}
}

func TestIndexAfterFirstLine(t *testing.T) {
	if got := indexAfterFirstLine("a\nb"); got != 2 {
		t.Errorf("got %d, want 2", got)
	}
	if got := indexAfterFirstLine("abc"); got != -1 {
		t.Errorf("no newline: got %d, want -1", got)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("flag parse error not propagated")
	}
}

func TestRunMatrixPanel(t *testing.T) {
	if err := run([]string{"-panel", "matrix", "-nodes", "8", "-loss", "0.0", "-iters", "1"}); err != nil {
		t.Fatalf("matrix: %v", err)
	}
}

func TestRunMatrixOutputFormats(t *testing.T) {
	for _, format := range []string{"table", "csv", "jsonl"} {
		args := []string{"-panel", "matrix", "-nodes", "8", "-loss", "0.0", "-iters", "1", "-out", format}
		if err := run(args); err != nil {
			t.Fatalf("-out %s: %v", format, err)
		}
	}
	if err := run([]string{"-panel", "matrix", "-nodes", "8", "-iters", "1", "-out", "xml"}); err == nil {
		t.Error("unknown -out format accepted")
	}
	if err := run([]string{"-panel", "matrix", "-nodes", "8", "-iters", "1", "-csv", "-out", "jsonl"}); err == nil {
		t.Error("conflicting -csv and -out accepted")
	}
}

func TestRunMatrixNewAxes(t *testing.T) {
	err := run([]string{"-panel", "matrix", "-nodes", "10", "-loss", "0.0", "-iters", "1",
		"-ntx", "0,4", "-slack", "0,1", "-fail", "0,0.1", "-verifiable", "false,true"})
	if err != nil {
		t.Fatalf("axis flags: %v", err)
	}
}

func TestRunMatrixCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-panel", "matrix", "-nodes", "8", "-loss", "0.0", "-iters", "1",
		"-cache", dir, "-progress"}
	if err := run(args); err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if err := run(args); err != nil {
		t.Fatalf("warm run: %v", err)
	}
}

func TestRunMatrixFlagsRejectedOnFixedPanels(t *testing.T) {
	for _, args := range [][]string{
		{"-panel", "fig1a", "-iters", "1", "-cache", "/tmp/x"},
		{"-panel", "fig1a", "-iters", "1", "-out", "jsonl"},
		{"-panel", "fig1a", "-iters", "1", "-progress"},
		{"-panel", "fig1a", "-iters", "1", "-fail", "0.1"},
		{"-panel", "fig1a", "-iters", "1", "-verifiable", "true"},
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v: matrix-only flag accepted on a fixed panel", args)
		}
	}
}

func TestRunProfilingFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	err := run([]string{"-panel", "matrix", "-nodes", "8", "-loss", "0.0", "-iters", "1",
		"-cpuprofile", cpu, "-memprofile", mem})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if info.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
	// An unwritable CPU profile path is a startup error, not a crash.
	if err := run([]string{"-panel", "matrix", "-nodes", "8", "-iters", "1",
		"-cpuprofile", filepath.Join(dir, "no", "such", "dir", "x.prof")}); err == nil {
		t.Fatal("unwritable -cpuprofile accepted")
	}
}
