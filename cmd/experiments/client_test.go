package main

import (
	"bytes"
	"context"
	"io"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"iotmpc/internal/experiment"
	"iotmpc/internal/service"
	"iotmpc/internal/store"
)

// captureStdout runs fn with os.Stdout redirected into a buffer.
func captureStdout(t *testing.T, fn func() error) ([]byte, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	done := make(chan []byte)
	go func() {
		buf, _ := io.ReadAll(r)
		done <- buf
	}()
	runErr := fn()
	w.Close()
	out := <-done
	return out, runErr
}

// startTestService runs a sweep service over temp dirs and returns its URL.
func startTestService(t *testing.T) string {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(service.Config{Store: st, CacheDir: t.TempDir()})
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	svc.Start()
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
		st.Close()
	})
	return ts.URL
}

// TestServerSubmitJSONLByteIdentity: `-server` with `-out jsonl` must print
// exactly the bytes a local run of the same matrix prints.
func TestServerSubmitJSONLByteIdentity(t *testing.T) {
	url := startTestService(t)
	args := []string{"-panel", "matrix", "-nodes", "8,10", "-loss", "0.0,0.3",
		"-iters", "2", "-seed", "5", "-out", "jsonl"}
	want, err := captureStdout(t, func() error { return run(args) })
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	got, err := captureStdout(t, func() error { return run(append(args, "-server", url)) })
	if err != nil {
		t.Fatalf("server run: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("server JSONL differs from local:\n got: %s\nwant: %s", got, want)
	}
}

// TestServerSubmitTableAndCSV: the decoded formats render without error and
// produce the same number of rows as the matrix has cells.
func TestServerSubmitTableAndCSV(t *testing.T) {
	url := startTestService(t)
	for format, wantLines := range map[string]int{"table": 2 + 4, "csv": 1 + 4} {
		out, err := captureStdout(t, func() error {
			return run([]string{"-panel", "matrix", "-nodes", "8", "-loss", "0.0,0.3",
				"-iters", "1", "-out", format, "-server", url})
		})
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if got := strings.Count(string(out), "\n"); got != wantLines {
			t.Errorf("%s: %d lines, want %d:\n%s", format, got, wantLines, out)
		}
	}
}

func TestServerRejectsLocalExecutionFlags(t *testing.T) {
	for _, extra := range [][]string{
		{"-cache", "/tmp/x"},
		{"-workers", "4"},
		{"-lanes", "8"},
		{"-shard", "0/2"},
	} {
		args := append([]string{"-panel", "matrix", "-server", "http://localhost:1"}, extra...)
		err := run(args)
		if err == nil || !strings.Contains(err.Error(), extra[0]) {
			t.Errorf("%v: err %v, want complaint about %s", extra, err, extra[0])
		}
	}
}

func TestServerRejectedSpecSurfaces(t *testing.T) {
	url := startTestService(t)
	// 4 nodes is below the simulator's minimum — the server's 400 must come
	// back as a readable error naming the field.
	err := run([]string{"-panel", "matrix", "-nodes", "4", "-iters", "1", "-server", url})
	if err == nil || !strings.Contains(err.Error(), "nodeCounts") {
		t.Fatalf("err %v, want server-side validation error naming nodeCounts", err)
	}
}

// TestJobsAndCancelSubcommands drives the daemon-management surface end to
// end: submit, list (with state filter and pagination), cancel, list again.
func TestJobsAndCancelSubcommands(t *testing.T) {
	url := startTestService(t)
	// Two identical queued... actually done-quickly jobs via the matrix path.
	submit := func() {
		t.Helper()
		if _, err := captureStdout(t, func() error {
			return run([]string{"-panel", "matrix", "-nodes", "8", "-loss", "0.0",
				"-iters", "1", "-out", "jsonl", "-server", url})
		}); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	submit()
	submit()

	out, err := captureStdout(t, func() error { return run([]string{"jobs", "-server", url}) })
	if err != nil {
		t.Fatalf("jobs: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], "done") {
		t.Fatalf("jobs output:\n%s", out)
	}
	id := strings.Fields(lines[0])[0]

	// State filter: nothing queued, both done.
	out, err = captureStdout(t, func() error { return run([]string{"jobs", "-server", url, "-state", "queued"}) })
	if err != nil || strings.TrimSpace(string(out)) != "" {
		t.Fatalf("queued filter: err %v out %q", err, out)
	}
	out, err = captureStdout(t, func() error { return run([]string{"jobs", "-server", url, "-limit", "1", "-after", id}) })
	if err != nil || len(strings.Split(strings.TrimSpace(string(out)), "\n")) != 1 {
		t.Fatalf("pagination: err %v out %q", err, out)
	}
	// Bad filter surfaces the envelope's field.
	err = run([]string{"jobs", "-server", url, "-state", "bogus"})
	if err == nil || !strings.Contains(err.Error(), "state") {
		t.Fatalf("bogus state: err %v, want error naming the state field", err)
	}

	// Cancel: a done job is a conflict; a fresh queued-or-running one lands
	// in canceled (the service is fast, so accept either the immediate kill
	// or the drain message).
	err = run([]string{"cancel", "-server", url, id})
	if err == nil || !strings.Contains(err.Error(), "done") {
		t.Fatalf("cancel done job: err %v, want conflict mentioning done", err)
	}
	if err := run([]string{"cancel", "-server", url}); err == nil {
		t.Fatal("cancel without job ID accepted")
	}
	if err := run([]string{"jobs"}); err == nil || !strings.Contains(err.Error(), "-server") {
		t.Fatalf("jobs without -server: err %v", err)
	}
}

// TestCancelQueuedViaCLI: cancel against a stopped scheduler kills the
// queued job on the spot and `jobs -state canceled` reports it.
func TestCancelQueuedViaCLI(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(service.Config{Store: st, CacheDir: t.TempDir()})
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler()) // scheduler never started
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
		st.Close()
	})
	job, err := submitJob(context.Background(), ts.URL, experiment.Matrix{
		NodeCounts: []int{8}, LossRates: []float64{0}, Iterations: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := captureStdout(t, func() error { return run([]string{"cancel", "-server", ts.URL, job.ID}) })
	if err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	if !strings.Contains(string(out), "canceled") {
		t.Fatalf("cancel output %q", out)
	}
	out, err = captureStdout(t, func() error { return run([]string{"jobs", "-server", ts.URL, "-state", "canceled"}) })
	if err != nil || !strings.Contains(string(out), job.ID) {
		t.Fatalf("canceled listing: err %v out %q", err, out)
	}
}

// TestStatsFlag: -stats prints the cache footprint and runs nothing.
func TestStatsFlag(t *testing.T) {
	if err := run([]string{"-stats"}); err == nil || !strings.Contains(err.Error(), "-cache") {
		t.Fatalf("-stats without -cache: err %v", err)
	}
	dir := t.TempDir()
	if err := run([]string{"-panel", "matrix", "-nodes", "8", "-loss", "0.0",
		"-iters", "1", "-out", "jsonl", "-cache", dir}); err != nil {
		t.Fatalf("seed cache: %v", err)
	}
	out, err := captureStdout(t, func() error { return run([]string{"-stats", "-cache", dir}) })
	if err != nil {
		t.Fatalf("-stats: %v", err)
	}
	// 2 cells (S3+S4) + 1 matrix manifest.
	if !strings.Contains(string(out), "3 entries") || !strings.Contains(string(out), "0 orphaned") {
		t.Fatalf("stats output %q", out)
	}
}

// TestInterruptReportsProgress: a canceled context must surface as the
// "N/M cells completed" interrupt error, not a bare sweep failure.
func TestInterruptReportsProgress(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mf := matrixFlags{
		nodes: "8,10", degrees: "0", loss: "0.0,0.3", phys: "logdist",
		ntx: "0", slack: "0", fail: "0", verifiable: "false", veclen: "0",
		iters: 1, seed: 1, out: "jsonl",
	}
	out, err := captureStdout(t, func() error { return runMatrix(ctx, mf) })
	if err == nil || !strings.Contains(err.Error(), "cells completed") {
		t.Fatalf("err %v, want interrupt report", err)
	}
	if !strings.Contains(err.Error(), "/8 ") && !strings.HasSuffix(err.Error(), "/8 cells completed") {
		t.Errorf("interrupt report %q does not name the 8-cell matrix", err)
	}
	// Whatever did complete before the cancel was flushed as valid JSONL.
	for _, line := range bytes.Split(bytes.TrimSpace(out), []byte("\n")) {
		if len(line) > 0 && line[0] != '{' {
			t.Errorf("non-JSONL line in interrupted output: %q", line)
		}
	}
}

// TestInterruptedSweepResumesFromCache: cells completed before an interrupt
// are served from the cache on the rerun.
func TestInterruptedSweepResumesFromCache(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-panel", "matrix", "-nodes", "8,10", "-loss", "0.0,0.3",
		"-iters", "2", "-out", "jsonl", "-cache", dir}
	want, err := captureStdout(t, func() error { return run(args) })
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	got, err := captureStdout(t, func() error { return run(args) })
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("warm rerun bytes differ")
	}
	// The experiment package's own determinism tests cover the cache hits in
	// depth; here the point is the CLI wiring keeps the context path intact.
	if _, err := experiment.NewRunner(experiment.WithCache(dir)).Run(experiment.Matrix{
		NodeCounts: []int{8, 10}, LossRates: []float64{0, 0.3}, Iterations: 2, Seed: 1,
	}); err != nil {
		t.Fatalf("runner over the CLI's cache: %v", err)
	}
}
