package main

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"iotmpc/internal/experiment"
)

// instant is a test policy that keeps the real decision logic but spends
// no wall-clock time: identity jitter, no-op sleep, and a delay recorder.
func instant(attempts int) (*retryPolicy, *[]time.Duration) {
	delays := &[]time.Duration{}
	p := &retryPolicy{
		attempts: attempts,
		base:     200 * time.Millisecond,
		max:      2 * time.Second,
		jitter:   func(d time.Duration) time.Duration { return d },
		sleep:    func(context.Context, time.Duration) error { return nil },
		notify:   func(_ error, d time.Duration) { *delays = append(*delays, d) },
	}
	return p, delays
}

func get(t *testing.T, p *retryPolicy, url string) (*http.Response, error) {
	t.Helper()
	return p.do(context.Background(), http.DefaultClient, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, url, nil)
	})
}

// TestRetryRecoversFrom5xx: a server that 503s twice before answering is a
// blip, not a failure — the third try lands.
func TestRetryRecoversFrom5xx(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "catching my breath", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	p, delays := instant(4)
	resp, err := get(t, p, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after retries", resp.StatusCode)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3", got)
	}
	// Backoff doubled between the two retries.
	if want := []time.Duration{200 * time.Millisecond, 400 * time.Millisecond}; len(*delays) != 2 || (*delays)[0] != want[0] || (*delays)[1] != want[1] {
		t.Fatalf("delays %v, want %v", *delays, want)
	}
}

// TestRetryRecoversFromConnectionReset: the server slams the TCP
// connection shut on the first two requests — a transport-level error, the
// connection-refused/reset class — and the client rides it out.
func TestRetryRecoversFromConnectionReset(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			conn, _, err := w.(http.Hijacker).Hijack()
			if err != nil {
				t.Errorf("hijack: %v", err)
				return
			}
			conn.Close()
			return
		}
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	p, _ := instant(4)
	resp, err := get(t, p, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hits.Load() != 3 {
		t.Fatalf("status %d after %d requests, want 200 after 3", resp.StatusCode, hits.Load())
	}
}

// TestRetryPassesThrough4xx: a deliberate server answer is not transient —
// one request, straight back to the caller.
func TestRetryPassesThrough4xx(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "no such job", http.StatusNotFound)
	}))
	defer ts.Close()

	p, _ := instant(4)
	resp, err := get(t, p, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || hits.Load() != 1 {
		t.Fatalf("status %d after %d requests, want one un-retried 404", resp.StatusCode, hits.Load())
	}
}

// TestRetryExhaustsBudget: a server that never recovers gets exactly
// `attempts` tries, and the terminal 5xx is returned for the caller's
// apiError path rather than swallowed.
func TestRetryExhaustsBudget(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "down", http.StatusBadGateway)
	}))
	defer ts.Close()

	p, delays := instant(4)
	resp, err := get(t, p, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway || hits.Load() != 4 {
		t.Fatalf("status %d after %d requests, want 502 after 4", resp.StatusCode, hits.Load())
	}
	if want := []time.Duration{200 * time.Millisecond, 400 * time.Millisecond, 800 * time.Millisecond}; len(*delays) != 3 ||
		(*delays)[0] != want[0] || (*delays)[1] != want[1] || (*delays)[2] != want[2] {
		t.Fatalf("delays %v, want %v", *delays, want)
	}
}

// TestRetryBackoffCaps: the doubling stops at max.
func TestRetryBackoffCaps(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts.Close()

	p, delays := instant(8)
	p.max = 500 * time.Millisecond
	resp, err := get(t, p, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for i, d := range *delays {
		if d > p.max {
			t.Fatalf("delay %d is %v, above the %v cap (all: %v)", i, d, p.max, *delays)
		}
	}
	if last := (*delays)[len(*delays)-1]; last != p.max {
		t.Fatalf("final delay %v never reached the %v cap", last, p.max)
	}
}

// TestRetryStopsOnCancel: cancellation during backoff aborts immediately —
// no further requests, context error out.
func TestRetryStopsOnCancel(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	p := &retryPolicy{
		attempts: 4,
		base:     10 * time.Second, // real sleep: only cancellation can end it quickly
		max:      10 * time.Second,
		notify:   func(error, time.Duration) { cancel() },
	}
	start := time.Now()
	_, err := p.do(ctx, http.DefaultClient, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests after cancel, want 1", hits.Load())
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v — the backoff sleep ignored it", elapsed)
	}
}

// TestHalfJitterBounds: jitter keeps the delay in [d/2, d].
func TestHalfJitterBounds(t *testing.T) {
	const d = 400 * time.Millisecond
	for i := 0; i < 256; i++ {
		if j := halfJitter(d); j < d/2 || j > d {
			t.Fatalf("halfJitter(%v) = %v, outside [%v, %v]", d, j, d/2, d)
		}
	}
}

// TestSubmitJobRetriesAcrossBlip drives the real submitJob call site: the
// POST body must be rebuilt per attempt, so the request that finally lands
// carries the full spec even though earlier attempts consumed theirs.
func TestSubmitJobRetriesAcrossBlip(t *testing.T) {
	old := transientRetry
	transientRetry.base = time.Millisecond
	transientRetry.max = 2 * time.Millisecond
	defer func() { transientRetry = old }()

	var hits atomic.Int32
	var lastBody atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := make([]byte, r.ContentLength)
		r.Body.Read(body)
		lastBody.Store(string(body))
		if hits.Add(1) <= 2 {
			conn, _, _ := w.(http.Hijacker).Hijack()
			conn.Close()
			return
		}
		w.WriteHeader(http.StatusCreated)
		w.Write([]byte(`{"id":"j000042","cells":1}`))
	}))
	defer ts.Close()

	job, err := submitJob(context.Background(), ts.URL, experiment.Matrix{
		NodeCounts: []int{8}, LossRates: []float64{0}, Iterations: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if job.ID != "j000042" {
		t.Fatalf("job %+v", job)
	}
	if hits.Load() != 3 {
		t.Fatalf("server saw %d requests, want 3", hits.Load())
	}
	if body, _ := lastBody.Load().(string); body == "" || body[0] != '{' {
		t.Fatalf("retried POST body %q — not rebuilt for the retry", body)
	}
}
