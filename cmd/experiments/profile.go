package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// startProfiles enables the optional pprof outputs (-cpuprofile /
// -memprofile): CPU sampling starts immediately, and the returned stop
// function — safe to call exactly once, never nil — ends sampling and
// snapshots the heap after a final GC, so hot-path work is measurable
// with `go tool pprof` without recompiling the binary.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			}
		}
		if memPath == "" {
			return
		}
		memFile, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			return
		}
		runtime.GC() // materialize up-to-date allocation statistics
		if err := pprof.WriteHeapProfile(memFile); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
		}
		if err := memFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
		}
	}, nil
}
