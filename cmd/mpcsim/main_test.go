package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPickTestbed(t *testing.T) {
	tests := []struct {
		name    string
		nodes   int
		wantErr bool
	}{
		{"flocklab", 26, false},
		{"FLOCKLAB", 26, false},
		{"dcube", 45, false},
		{"grid", 20, false},
		{"line", 10, false},
		{"mars", 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			top, err := pickTestbed(tt.name)
			if tt.wantErr {
				if err == nil {
					t.Error("want error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if top.NumNodes() != tt.nodes {
				t.Errorf("nodes = %d, want %d", top.NumNodes(), tt.nodes)
			}
		})
	}
}

func TestPickProtocol(t *testing.T) {
	if p, err := pickProtocol("S3"); err != nil || p.String() != "S3" {
		t.Errorf("S3: %v %v", p, err)
	}
	if p, err := pickProtocol("s4"); err != nil || p.String() != "S4" {
		t.Errorf("s4: %v %v", p, err)
	}
	if _, err := pickProtocol("s5"); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestRunSmallConfiguration(t *testing.T) {
	err := run([]string{"-testbed", "grid", "-protocol", "s4", "-sources", "8",
		"-degree", "3", "-iters", "2"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-testbed", "nope"},
		{"-protocol", "nope"},
		{"-sources", "999"},
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Error("flag parse error not propagated")
	}
}

func TestRunHEProtocol(t *testing.T) {
	if err := run([]string{"-testbed", "grid", "-protocol", "he", "-sources", "6", "-iters", "1"}); err != nil {
		t.Fatalf("he: %v", err)
	}
}

func TestRunTraceMode(t *testing.T) {
	err := run([]string{"-testbed", "grid", "-protocol", "s4", "-sources", "8",
		"-degree", "3", "-iters", "1", "-trace"})
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
}

func TestRunCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-testbed", "grid", "-protocol", "s4", "-sources", "8",
		"-degree", "3", "-iters", "2", "-cache", dir, "-progress"}
	if err := run(args); err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if err := run(args); err != nil {
		t.Fatalf("warm run: %v", err)
	}
}

func TestRunOutputFormats(t *testing.T) {
	for _, format := range []string{"csv", "jsonl"} {
		args := []string{"-testbed", "grid", "-protocol", "s4", "-sources", "8",
			"-degree", "3", "-iters", "1", "-out", format}
		if err := run(args); err != nil {
			t.Fatalf("-out %s: %v", format, err)
		}
	}
	if err := run([]string{"-testbed", "grid", "-iters", "1", "-out", "xml"}); err == nil {
		t.Error("unknown -out format accepted")
	}
}

func TestRunnerFlagsIncompatibleWithDebugPaths(t *testing.T) {
	for _, args := range [][]string{
		{"-testbed", "grid", "-iters", "1", "-v", "-cache", "/tmp/x"},
		{"-testbed", "grid", "-iters", "1", "-trace", "-out", "jsonl"},
		{"-testbed", "grid", "-protocol", "he", "-iters", "1", "-progress"},
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v: incompatible flag combination accepted", args)
		}
	}
}

func TestRunVerboseOutput(t *testing.T) {
	// Verbose mode exercises the per-iteration printing path.
	if err := run([]string{"-testbed", "line", "-protocol", "s3", "-sources", "4",
		"-degree", "2", "-iters", "1", "-v"}); err != nil {
		if !strings.Contains(err.Error(), "bootstrap") {
			t.Fatalf("run -v: %v", err)
		}
	}
}

func TestRunProfilingFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	err := run([]string{"-testbed", "grid", "-iters", "1",
		"-cpuprofile", cpu, "-memprofile", mem})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if info.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
}
