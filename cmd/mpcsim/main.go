// Command mpcsim runs privacy-preserving aggregation rounds (S3 or S4) on a
// simulated testbed and prints latency / radio-on-time / correctness metrics.
//
// The S3/S4 summary path runs as a single-cell sweep on the experiment
// Runner, which is what gives it `-cache` (content-addressed result reuse),
// `-progress`, and `-out csv|jsonl` for free; `-v` and `-trace` use a direct
// loop that exposes per-iteration details the Runner's summaries fold away.
//
// Examples:
//
//	mpcsim -testbed flocklab -protocol s4 -iters 50
//	mpcsim -testbed dcube -protocol s3 -sources 12 -seed 7
//	mpcsim -testbed grid -protocol s4 -degree 4 -ntx 4
//	mpcsim -testbed dcube -iters 2000 -workers 0    # fan trials over all cores
//	mpcsim -testbed grid -phy unitdisk:40           # idealized radio backend
//	mpcsim -testbed line -phy trace:testbed10       # replay a recorded 10-node PRR trace
//	mpcsim -testbed dcube -iters 2000 -cache ~/.iotmpc-cache   # repeat runs are instant
//	mpcsim -testbed flocklab -out jsonl | jq .latencyMs.p95
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"iotmpc/internal/core"
	"iotmpc/internal/experiment"
	"iotmpc/internal/hepda"
	"iotmpc/internal/metrics"
	"iotmpc/internal/phy"
	"iotmpc/internal/sim"
	"iotmpc/internal/topology"
	"iotmpc/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mpcsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mpcsim", flag.ContinueOnError)
	var (
		testbedName = fs.String("testbed", "flocklab", "testbed: flocklab, dcube, grid, line")
		protoName   = fs.String("protocol", "s4", "protocol: s3, s4, or he (Paillier baseline)")
		sources     = fs.Int("sources", 0, "number of source nodes (0: all nodes)")
		degree      = fs.Int("degree", 0, "polynomial degree k (0: n/3)")
		ntx         = fs.Int("ntx", 0, "S4 sharing NTX (0: 6)")
		slack       = fs.Int("slack", 1, "extra destinations beyond k+1 (S4 fault tolerance)")
		veclen      = fs.Int("veclen", 0,
			"per-source reading-vector length L (0: scalar; L seals one 8·L-byte vector + one MIC per destination)")
		iters   = fs.Int("iters", 20, "Monte-Carlo iterations")
		workers = fs.Int("workers", 1, "iteration worker goroutines (0: GOMAXPROCS)")
		lanes   = fs.Int("lanes", 0,
			"bit-sliced trial batch width 1..64 (0: default 64; 1: scalar reference path; results are identical for any width)")
		seed = fs.Int64("seed", 1, "randomness seed")
		loss = fs.Float64("loss", experiment.DefaultLossRate,
			"interference burst probability in [0,1)")
		phySpec = fs.String("phy", "logdist",
			"radio backend: logdist, unitdisk[:R[:G]], or trace:<name-or-file>")
		verbose   = fs.Bool("v", false, "print per-iteration results")
		dumpTrace = fs.Bool("trace", false, "print the first iteration's event trace as JSON")
		cacheDir  = fs.String("cache", "",
			"content-addressed result cache directory (a repeated run is served without simulating)")
		progress = fs.Bool("progress", false, "narrate run progress on stderr")
		out      = fs.String("out", "",
			"machine output on stdout instead of the human summary: csv, jsonl")
		cpuProfile = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to `file`")
		memProfile = fs.String("memprofile", "", "write a pprof heap profile to `file` at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *iters < 0 {
		return fmt.Errorf("negative -iters %d", *iters)
	}
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProfiles()

	testbed, err := pickTestbed(*testbedName)
	if err != nil {
		return err
	}
	n := testbed.NumNodes()
	srcCount := *sources
	if srcCount == 0 {
		srcCount = n
	}
	srcs, err := experiment.SpreadSources(n, srcCount)
	if err != nil {
		return err
	}

	// The HE and -v/-trace paths build their own core/hepda config and need
	// the backend factory in hand; the default Runner path hands the spec
	// string to RunScenarios, which parses (and, for traces, loads) it
	// exactly once itself.
	parseBackend := func() (phy.Factory, error) {
		backend, err := experiment.ParseBackend(*phySpec)
		if err != nil {
			return nil, fmt.Errorf("-phy: %w", err)
		}
		return backend, nil
	}

	lanesSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "lanes" {
			lanesSet = true
		}
	})
	runnerFlags := *cacheDir != "" || *progress || *out != "" || lanesSet
	if strings.EqualFold(*protoName, "he") {
		if runnerFlags {
			return fmt.Errorf("-cache/-progress/-out/-lanes do not apply to the HE baseline")
		}
		backend, err := parseBackend()
		if err != nil {
			return err
		}
		return runHE(testbed, backend, srcs, *veclen, *iters, *seed, *loss, *verbose)
	}
	proto, err := pickProtocol(*protoName)
	if err != nil {
		return err
	}

	if *verbose || *dumpTrace {
		if runnerFlags {
			return fmt.Errorf("-v/-trace use the direct loop; they cannot combine with -cache/-progress/-out/-lanes")
		}
		backend, err := parseBackend()
		if err != nil {
			return err
		}
		return runDirect(testbed, backend, proto, srcs, *degree, *ntx, *slack, *veclen,
			*iters, *workers, *seed, *loss, *verbose, *dumpTrace)
	}

	// The default path: one hand-built scenario cell through the Runner —
	// same engine as cmd/experiments, so caching, progress narration, and
	// machine output formats come from the same sinks.
	sc := experiment.Scenario{
		Testbed:     strings.ToLower(*testbedName),
		Backend:     *phySpec,
		Nodes:       n,
		SourceCount: *sources,
		Degree:      *degree,
		LossRate:    *loss,
		Protocol:    proto,
		NTXSharing:  *ntx,
		DestSlack:   *slack,
		VectorLen:   *veclen,
		Iterations:  *iters,
		Seed:        *seed,
	}
	var sinks []experiment.Sink
	switch *out {
	case "":
	case "csv":
		sinks = append(sinks, &experiment.CSVSink{W: os.Stdout})
	case "jsonl":
		sinks = append(sinks, &experiment.JSONLSink{W: os.Stdout})
	default:
		return fmt.Errorf("unknown -out format %q (want csv, jsonl)", *out)
	}
	if *progress {
		sinks = append(sinks, &experiment.ProgressSink{W: os.Stderr})
	}
	opts := []experiment.Option{
		experiment.WithTrialWorkers(*workers),
		experiment.WithLanes(*lanes),
		experiment.WithSinks(sinks...),
	}
	if *cacheDir != "" {
		opts = append(opts, experiment.WithCache(*cacheDir))
	}
	results, err := experiment.NewRunner(opts...).RunScenarios([]experiment.Scenario{sc})
	if err != nil {
		return err
	}
	if *out != "" {
		return nil // the sink already wrote stdout
	}
	r := results[0]
	cachedNote := ""
	if r.Cached {
		cachedNote = " (served from cache)"
	}
	// Report the settings core actually simulated with, via its own
	// defaulting rules rather than a reimplementation of them.
	norm, err := core.Config{
		Topology:   testbed,
		Protocol:   proto,
		Sources:    srcs,
		Degree:     *degree,
		NTXSharing: *ntx,
		DestSlack:  *slack,
		VectorLen:  *veclen,
	}.Normalized()
	if err != nil {
		return err
	}
	vecNote := ""
	if norm.VectorLen > 0 {
		vecNote = fmt.Sprintf(" veclen=%d", norm.VectorLen)
	}
	fmt.Printf("testbed=%s nodes=%d protocol=%v sources=%d degree=%d ntx(S4)=%d loss=%.2f%s%s\n",
		testbed.Name, n, proto, srcCount, norm.Degree, norm.NTXSharing, *loss, vecNote, cachedNote)
	printSummary(r.LatencyMS, r.RadioOnMS)
	fmt.Printf("success: %.2f%% of node-rounds obtained the correct aggregate (%d/%d rounds failed outright)\n",
		r.SuccessRate*100, r.FailedRounds, *iters)
	return nil
}

func printSummary(lat, radio metrics.Summary) {
	fmt.Printf("latency  (ms): mean=%.1f median=%.1f p95=%.1f ±%.1f\n",
		lat.Mean, lat.Median, lat.P95, lat.CI95)
	fmt.Printf("radio-on (ms): mean=%.1f median=%.1f p95=%.1f ±%.1f\n",
		radio.Mean, radio.Median, radio.P95, radio.CI95)
}

// runDirect is the per-iteration debug path (-v / -trace): it keeps the
// bootstrap in hand so it can print the normalized configuration and the
// first iteration's event trace, and prints every trial as it lands.
func runDirect(testbed topology.Topology, backend phy.Factory, proto core.Protocol,
	srcs []int, degree, ntx, slack, veclen, iters, workers int, seed int64, loss float64,
	verbose, dumpTrace bool) error {
	params := phy.DefaultParams()
	params.InterferenceBurstProb = loss
	cfg := core.Config{
		Topology:    testbed,
		PHY:         params,
		Backend:     backend,
		Protocol:    proto,
		Sources:     srcs,
		Degree:      degree,
		NTXSharing:  ntx,
		DestSlack:   slack,
		VectorLen:   veclen,
		ChannelSeed: seed,
	}
	boot, err := core.RunBootstrap(cfg)
	if err != nil {
		return err
	}
	n := testbed.NumNodes()
	norm := boot.Config()
	vecNote := ""
	if norm.VectorLen > 0 {
		vecNote = fmt.Sprintf(" veclen=%d", norm.VectorLen)
	}
	fmt.Printf("testbed=%s nodes=%d protocol=%v sources=%d degree=%d ntx(S4)=%d ntxFull(S3)=%d%s\n",
		testbed.Name, n, proto, len(srcs), norm.Degree, norm.NTXSharing, boot.NTXFull, vecNote)
	if proto == core.S4 {
		fmt.Printf("destination set (|D|=%d): %v\n", len(boot.Dests), boot.Dests)
	}

	// Trials are independent (per-trial RNG streams, immutable bootstrap), so
	// they fan across the worker pool; the fold only needs four scalars per
	// trial, kept at the trial's index and folded in trial order so the
	// output is identical for any -workers (and memory stays O(iters), not
	// O(iters × nodes)).
	type trialStats struct {
		meanLatency time.Duration
		meanRadioOn time.Duration
		correct     int
		nodes       int
	}
	rounds := make([]trialStats, iters)
	var firstTrace *trace.Recorder
	if dumpTrace && iters > 0 {
		firstTrace = &trace.Recorder{}
	}
	err = sim.ParallelFor(iters, workers, func(trial int) error {
		var rec *trace.Recorder
		if trial == 0 {
			rec = firstTrace
		}
		res, err := core.RunRoundTraced(boot, uint64(trial), nil, rec)
		if err != nil {
			return err
		}
		rounds[trial] = trialStats{
			meanLatency: res.MeanLatency,
			meanRadioOn: res.MeanRadioOn,
			correct:     res.CorrectNodes,
			nodes:       len(res.NodeOK),
		}
		return nil
	})
	if err != nil {
		return err
	}
	if firstTrace != nil {
		raw, err := firstTrace.JSON()
		if err != nil {
			return err
		}
		fmt.Printf("trace (%s):\n%s\n", firstTrace.Summary(), raw)
	}

	// Fold exactly like the Runner path (experiment.runScenario): latency
	// over successful rounds only, radio-on over all rounds — so -v and the
	// default path report the same statistics for the same trials.
	var lat, radio metrics.Stream
	okNodes, totalNodes, failedRounds := 0, 0, 0
	for trial, res := range rounds {
		if res.correct > 0 {
			lat.AddDuration(res.meanLatency)
		} else {
			failedRounds++
		}
		radio.AddDuration(res.meanRadioOn)
		okNodes += res.correct
		totalNodes += res.nodes
		if verbose {
			fmt.Printf("  iter %3d: latency=%v radio-on=%v correct=%d/%d\n",
				trial, res.meanLatency, res.meanRadioOn, res.correct, n)
		}
	}

	var latSum metrics.Summary
	if lat.Len() > 0 {
		if latSum, err = lat.Summarize(); err != nil {
			return err
		}
	}
	radioSum, err := radio.Summarize()
	if err != nil {
		return err
	}
	printSummary(latSum, radioSum)
	fmt.Printf("success: %.2f%% of node-rounds obtained the correct aggregate (%d/%d rounds failed outright)\n",
		100*float64(okNodes)/float64(totalNodes), failedRounds, iters)
	return nil
}

// runHE executes the Paillier baseline instead of an SSS variant. It honors
// -loss the same way the SSS paths do, so HE-vs-S4 comparisons at a given
// interference level are apples to apples.
func runHE(testbed topology.Topology, backend phy.Factory, sources []int, veclen, iters int, seed int64, loss float64, verbose bool) error {
	params := phy.DefaultParams()
	params.InterferenceBurstProb = loss
	cfg := hepda.Config{
		Topology:    testbed,
		PHY:         params,
		Backend:     backend,
		Sources:     sources,
		VectorLen:   veclen,
		ChannelSeed: seed,
	}
	vecNote := ""
	if veclen > 0 {
		vecNote = fmt.Sprintf(" veclen=%d", veclen)
	}
	fmt.Printf("testbed=%s nodes=%d protocol=HE (Paillier 2048-bit model) sources=%d%s\n",
		testbed.Name, testbed.NumNodes(), len(sources), vecNote)
	var lat, radio metrics.Stream
	correct := 0
	for trial := 0; trial < iters; trial++ {
		res, err := hepda.RunRound(cfg, uint64(trial))
		if err != nil {
			return err
		}
		lat.AddDuration(res.MeanLatency)
		radio.AddDuration(res.MeanRadioOn)
		if res.Correct {
			correct++
		}
		if verbose {
			fmt.Printf("  iter %3d: latency=%v radio-on=%v delivery=%.1f%%\n",
				trial, res.MeanLatency, res.MeanRadioOn, res.DeliveryRate*100)
		}
	}
	latSum, err := lat.Summarize()
	if err != nil {
		return err
	}
	radioSum, err := radio.Summarize()
	if err != nil {
		return err
	}
	printSummary(latSum, radioSum)
	fmt.Printf("success: %d/%d rounds decrypted the exact delivered sum\n", correct, iters)
	return nil
}

// pickTestbed resolves the -testbed flag; kept as a thin alias of the
// experiment layer's registry so both CLIs name the same deployments.
func pickTestbed(name string) (topology.Topology, error) {
	return experiment.NamedTestbed(name)
}

func pickProtocol(name string) (core.Protocol, error) {
	switch strings.ToLower(name) {
	case "s3":
		return core.S3, nil
	case "s4":
		return core.S4, nil
	default:
		return 0, fmt.Errorf("unknown protocol %q", name)
	}
}
