// Command mpcsim runs privacy-preserving aggregation rounds (S3 or S4) on a
// simulated testbed and prints latency / radio-on-time / correctness metrics.
//
// Examples:
//
//	mpcsim -testbed flocklab -protocol s4 -iters 50
//	mpcsim -testbed dcube -protocol s3 -sources 12 -seed 7
//	mpcsim -testbed grid -protocol s4 -degree 4 -ntx 4
//	mpcsim -testbed dcube -iters 2000 -workers 0    # fan trials over all cores
//	mpcsim -testbed grid -phy unitdisk:40           # idealized radio backend
//	mpcsim -testbed line -phy trace:testbed10       # replay a recorded 10-node PRR trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"iotmpc/internal/core"
	"iotmpc/internal/experiment"
	"iotmpc/internal/hepda"
	"iotmpc/internal/metrics"
	"iotmpc/internal/phy"
	"iotmpc/internal/sim"
	"iotmpc/internal/topology"
	"iotmpc/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mpcsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mpcsim", flag.ContinueOnError)
	var (
		testbedName = fs.String("testbed", "flocklab", "testbed: flocklab, dcube, grid, line")
		protoName   = fs.String("protocol", "s4", "protocol: s3, s4, or he (Paillier baseline)")
		sources     = fs.Int("sources", 0, "number of source nodes (0: all nodes)")
		degree      = fs.Int("degree", 0, "polynomial degree k (0: n/3)")
		ntx         = fs.Int("ntx", 0, "S4 sharing NTX (0: 6)")
		slack       = fs.Int("slack", 1, "extra destinations beyond k+1 (S4 fault tolerance)")
		iters       = fs.Int("iters", 20, "Monte-Carlo iterations")
		workers     = fs.Int("workers", 1, "iteration worker goroutines (0: GOMAXPROCS)")
		seed        = fs.Int64("seed", 1, "randomness seed")
		phySpec     = fs.String("phy", "logdist",
			"radio backend: logdist, unitdisk[:R[:G]], or trace:<name-or-file>")
		verbose   = fs.Bool("v", false, "print per-iteration results")
		dumpTrace = fs.Bool("trace", false, "print the first iteration's event trace as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *iters < 0 {
		return fmt.Errorf("negative -iters %d", *iters)
	}

	testbed, err := pickTestbed(*testbedName)
	if err != nil {
		return err
	}
	backend, err := experiment.ParseBackend(*phySpec)
	if err != nil {
		return fmt.Errorf("-phy: %w", err)
	}
	n := testbed.NumNodes()
	srcCount := *sources
	if srcCount == 0 {
		srcCount = n
	}
	srcs, err := experiment.SpreadSources(n, srcCount)
	if err != nil {
		return err
	}

	if strings.EqualFold(*protoName, "he") {
		return runHE(testbed, backend, srcs, *iters, *seed, *verbose)
	}
	proto, err := pickProtocol(*protoName)
	if err != nil {
		return err
	}

	cfg := core.Config{
		Topology:    testbed,
		Backend:     backend,
		Protocol:    proto,
		Sources:     srcs,
		Degree:      *degree,
		NTXSharing:  *ntx,
		DestSlack:   *slack,
		ChannelSeed: *seed,
	}
	boot, err := core.RunBootstrap(cfg)
	if err != nil {
		return err
	}
	norm := boot.Config()
	fmt.Printf("testbed=%s nodes=%d protocol=%v sources=%d degree=%d ntx(S4)=%d ntxFull(S3)=%d\n",
		testbed.Name, n, proto, srcCount, norm.Degree, norm.NTXSharing, boot.NTXFull)
	if proto == core.S4 {
		fmt.Printf("destination set (|D|=%d): %v\n", len(boot.Dests), boot.Dests)
	}

	// Trials are independent (per-trial RNG streams, immutable bootstrap), so
	// they fan across the worker pool; the fold only needs four scalars per
	// trial, kept at the trial's index and folded in trial order so the
	// output is identical for any -workers (and memory stays O(iters), not
	// O(iters × nodes)).
	type trialStats struct {
		meanLatency time.Duration
		meanRadioOn time.Duration
		correct     int
		nodes       int
	}
	rounds := make([]trialStats, *iters)
	var firstTrace *trace.Recorder
	if *dumpTrace && *iters > 0 {
		firstTrace = &trace.Recorder{}
	}
	err = sim.ParallelFor(*iters, *workers, func(trial int) error {
		var rec *trace.Recorder
		if trial == 0 {
			rec = firstTrace
		}
		res, err := core.RunRoundTraced(boot, uint64(trial), nil, rec)
		if err != nil {
			return err
		}
		rounds[trial] = trialStats{
			meanLatency: res.MeanLatency,
			meanRadioOn: res.MeanRadioOn,
			correct:     res.CorrectNodes,
			nodes:       len(res.NodeOK),
		}
		return nil
	})
	if err != nil {
		return err
	}
	if firstTrace != nil {
		raw, err := firstTrace.JSON()
		if err != nil {
			return err
		}
		fmt.Printf("trace (%s):\n%s\n", firstTrace.Summary(), raw)
	}

	var lat, radio metrics.Series
	okNodes, totalNodes := 0, 0
	for trial, res := range rounds {
		lat.AddDuration(res.meanLatency)
		radio.AddDuration(res.meanRadioOn)
		okNodes += res.correct
		totalNodes += res.nodes
		if *verbose {
			fmt.Printf("  iter %3d: latency=%v radio-on=%v correct=%d/%d\n",
				trial, res.meanLatency, res.meanRadioOn, res.correct, n)
		}
	}

	latSum, err := lat.Summarize()
	if err != nil {
		return err
	}
	radioSum, err := radio.Summarize()
	if err != nil {
		return err
	}
	fmt.Printf("latency  (ms): mean=%.1f median=%.1f p95=%.1f ±%.1f\n",
		latSum.Mean, latSum.Median, latSum.P95, latSum.CI95)
	fmt.Printf("radio-on (ms): mean=%.1f median=%.1f p95=%.1f ±%.1f\n",
		radioSum.Mean, radioSum.Median, radioSum.P95, radioSum.CI95)
	fmt.Printf("success: %.2f%% of node-rounds obtained the correct aggregate\n",
		100*float64(okNodes)/float64(totalNodes))
	return nil
}

// runHE executes the Paillier baseline instead of an SSS variant.
func runHE(testbed topology.Topology, backend phy.Factory, sources []int, iters int, seed int64, verbose bool) error {
	cfg := hepda.Config{
		Topology:    testbed,
		Backend:     backend,
		Sources:     sources,
		ChannelSeed: seed,
	}
	fmt.Printf("testbed=%s nodes=%d protocol=HE (Paillier 2048-bit model) sources=%d\n",
		testbed.Name, testbed.NumNodes(), len(sources))
	var lat, radio metrics.Series
	correct := 0
	for trial := 0; trial < iters; trial++ {
		res, err := hepda.RunRound(cfg, uint64(trial))
		if err != nil {
			return err
		}
		lat.AddDuration(res.MeanLatency)
		radio.AddDuration(res.MeanRadioOn)
		if res.Correct {
			correct++
		}
		if verbose {
			fmt.Printf("  iter %3d: latency=%v radio-on=%v delivery=%.1f%%\n",
				trial, res.MeanLatency, res.MeanRadioOn, res.DeliveryRate*100)
		}
	}
	latSum, err := lat.Summarize()
	if err != nil {
		return err
	}
	radioSum, err := radio.Summarize()
	if err != nil {
		return err
	}
	fmt.Printf("latency  (ms): mean=%.1f median=%.1f p95=%.1f ±%.1f\n",
		latSum.Mean, latSum.Median, latSum.P95, latSum.CI95)
	fmt.Printf("radio-on (ms): mean=%.1f median=%.1f p95=%.1f ±%.1f\n",
		radioSum.Mean, radioSum.Median, radioSum.P95, radioSum.CI95)
	fmt.Printf("success: %d/%d rounds decrypted the exact delivered sum\n", correct, iters)
	return nil
}

func pickTestbed(name string) (topology.Topology, error) {
	switch strings.ToLower(name) {
	case "flocklab":
		return topology.FlockLab(), nil
	case "dcube":
		return topology.DCube(), nil
	case "grid":
		return topology.Grid(4, 5, 30)
	case "line":
		return topology.Line(10, 35)
	default:
		return topology.Topology{}, fmt.Errorf("unknown testbed %q", name)
	}
}

func pickProtocol(name string) (core.Protocol, error) {
	switch strings.ToLower(name) {
	case "s3":
		return core.S3, nil
	case "s4":
		return core.S4, nil
	default:
		return 0, fmt.Errorf("unknown protocol %q", name)
	}
}
