package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"

	"iotmpc/internal/store"
)

func TestRunRequiresDirs(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no flags", nil, "-cache"},
		{"cache only", []string{"-cache", t.TempDir()}, "-store"},
		{"store only", []string{"-store", t.TempDir()}, "-cache"},
		{"bad flag", []string{"-bogus"}, "bogus"},
		{"join needs cache", []string{"-join", "http://coord:8080"}, "-cache"},
		{"join excludes coordinator",
			[]string{"-join", "http://coord:8080", "-cache", t.TempDir(), "-coordinator"},
			"mutually exclusive"},
		{"join excludes store",
			[]string{"-join", "http://coord:8080", "-cache", t.TempDir(), "-store", t.TempDir()},
			"worker keeps no store"},
		{"chaos needs join",
			[]string{"-cache", t.TempDir(), "-store", t.TempDir(), "-chaos", "hbdrop=0.5"},
			"-join"},
		{"bad chaos spec",
			[]string{"-join", "http://coord:8080", "-cache", t.TempDir(), "-chaos", "explode=1"},
			"chaos"},
		{"negative lease",
			[]string{"-cache", t.TempDir(), "-store", t.TempDir(), "-lease", "-1s"},
			"-lease"},
		{"negative max-attempts",
			[]string{"-cache", t.TempDir(), "-store", t.TempDir(), "-max-attempts", "-1"},
			"-max-attempts"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err %v, want mention of %s", err, tc.want)
			}
		})
	}
}

func TestRunBadListenAddr(t *testing.T) {
	err := run([]string{"-cache", t.TempDir(), "-store", t.TempDir(), "-addr", "512.0.0.1:http"})
	if err == nil {
		t.Fatal("unlistenable address accepted")
	}
}

func TestRunRejectsNegativeRetention(t *testing.T) {
	for _, extra := range [][]string{
		{"-retain-jobs", "-1"},
		{"-retain-age", "-1h"},
	} {
		args := append([]string{"-cache", t.TempDir(), "-store", t.TempDir()}, extra...)
		if err := run(args); err == nil || !strings.Contains(err.Error(), "-retain") {
			t.Errorf("%v: err %v, want retention complaint", extra, err)
		}
	}
}

// TestBootGCPrunesTerminalJobs: a store seeded with two finished jobs boots
// under -retain-jobs 1 and comes up with only the newer one (visible via
// /v1/healthz and /v1/jobs), the pruned job's exclusive row swept.
func TestBootGCPrunesTerminalJobs(t *testing.T) {
	guard := make(chan os.Signal, 1)
	signal.Notify(guard, syscall.SIGTERM)
	defer signal.Stop(guard)

	storeDir := t.TempDir()
	st, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		job, err := st.CreateJob(json.RawMessage(`["seeded, not a matrix"]`), 1)
		if err != nil {
			t.Fatal(err)
		}
		key := fmt.Sprintf("row-%d", i)
		if err := st.SetJobKeys(job.ID, []string{key}); err != nil {
			t.Fatal(err)
		}
		if err := st.PutRow(key, []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
		if _, err := st.UpdateJob(job.ID, true, func(j *store.Job) { j.State = store.Running }); err != nil {
			t.Fatal(err)
		}
		if _, err := st.UpdateJob(job.ID, true, func(j *store.Job) { j.State = store.Done }); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	runDone := make(chan error, 1)
	go func() {
		runDone <- run([]string{"-addr", addr, "-cache", t.TempDir(), "-store", storeDir,
			"-retain-jobs", "1"})
	}()

	base := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	var health struct {
		Jobs      map[string]int `json:"jobs"`
		StoreRows int            `json:"storeRows"`
	}
	for {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&health)
			resp.Body.Close()
			if err == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never came up")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if health.Jobs["done"] != 1 || health.StoreRows != 1 {
		t.Errorf("after boot GC: %+v, want 1 done job and 1 row", health)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("drain returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
}

// TestRunServesAndDrainsOnSIGTERM boots the daemon on a free port, drives
// one job through the HTTP API, and checks SIGTERM drains it cleanly.
func TestRunServesAndDrainsOnSIGTERM(t *testing.T) {
	// Disarm the default SIGTERM death for this process before the daemon
	// goroutine races to register its own handler.
	guard := make(chan os.Signal, 1)
	signal.Notify(guard, syscall.SIGTERM)
	defer signal.Stop(guard)

	// Find a free port; the tiny window between Close and the daemon's
	// Listen is acceptable in a test.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	runDone := make(chan error, 1)
	go func() {
		runDone <- run([]string{"-addr", addr, "-cache", t.TempDir(), "-store", t.TempDir()})
	}()

	base := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for {
		if resp, err := http.Get(base + "/healthz"); err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never came up")
		}
		time.Sleep(20 * time.Millisecond)
	}

	resp, err := http.Post(base+"/jobs", "application/json",
		strings.NewReader(`{"nodeCounts":[8],"lossRates":[0.0],"iterations":1,"seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for {
		resp, err := http.Get(fmt.Sprintf("%s/jobs/%s", base, job.ID))
		if err != nil {
			t.Fatal(err)
		}
		var got struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got.State == "done" {
			break
		}
		if got.State == "failed" {
			t.Fatalf("job failed: %s", got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(20 * time.Millisecond)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("drain returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
}
