// Command sweepd serves the sweep job API: an HTTP daemon that accepts
// scenario-matrix specs (POST /v1/jobs), executes them concurrently on a
// shared worker pool that interleaves cells fairly across jobs (a 1-cell
// job submitted behind a 10k-cell sweep finishes in seconds), persists
// every result row in a durable store, and streams results and live
// progress back to clients. Jobs can be listed (GET /v1/jobs), canceled
// (DELETE /v1/jobs/{id}), and old terminal jobs garbage-collected by a
// retention policy.
//
//	sweepd -addr :8080 -cache /var/lib/sweepd/cache -store /var/lib/sweepd/store \
//	       -retain-jobs 1000 -retain-age 720h
//
// All jobs share one content-addressed result cache, so a matrix any job
// (or any CLI run sharing the directory) has computed before costs nothing
// to run again. SIGINT/SIGTERM drains gracefully: in-flight cells finish,
// running jobs are re-queued as resumable, and a restarted sweepd picks
// them up computing only the cells the previous process never finished.
//
// A sweep can also fan out across machines. One sweepd runs as the
// coordinator and any number of others join it as workers:
//
//	sweepd -coordinator -addr :8080 -cache /shared/cache -store /var/lib/sweepd/store
//	sweepd -join http://coord:8080 -name worker-1 -cache /shared/cache
//
// The coordinator partitions each job into shards, leases them to workers
// over heartbeats, re-queues a shard (with exponential backoff) when its
// worker's lease expires, and merges the rows workers stream back — the
// job's result stream stays byte-identical to a solo run. -chaos injects
// worker-side faults (heartbeat drops, delays, mid-shard crashes) for
// testing the fault-tolerance machinery.
//
// Submit from the experiments CLI with
//
//	experiments -panel matrix -nodes 15,25 -server http://localhost:8080 -out jsonl
//
// or with curl:
//
//	curl -d '{"nodeCounts":[15,25],"iterations":50,"seed":1}' localhost:8080/v1/jobs
//
// The pre-v1 unversioned paths (/jobs, /healthz, ...) remain as deprecated
// aliases for one release.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"iotmpc/internal/service"
	"iotmpc/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
}

// shutdownGrace bounds how long draining waits for open HTTP responses
// (a slow /events subscriber must not hold the process hostage).
const shutdownGrace = 10 * time.Second

func run(args []string) error {
	fs := flag.NewFlagSet("sweepd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		cacheDir   = fs.String("cache", "", "content-addressed result cache directory shared by every job (required)")
		storeDir   = fs.String("store", "", "durable job/result store directory (required unless -join)")
		workers    = fs.Int("workers", 0, "cell workers shared by all active jobs (0: GOMAXPROCS)")
		lanes      = fs.Int("lanes", 0, "bit-sliced trial batch width 1..64 (0: default 64; results are identical for any width)")
		maxActive  = fs.Int("max-active-jobs", 0, "jobs holding Runners at once; cells interleave fairly across them (0: default 4)")
		retainJobs = fs.Int("retain-jobs", 0, "keep at most N terminal jobs; older ones and their unreferenced rows are pruned at checkpoint (0: keep all)")
		retainAge  = fs.Duration("retain-age", 0, "prune terminal jobs not updated within this duration, e.g. 720h (0: keep forever)")

		coordinator = fs.Bool("coordinator", false, "dispatch jobs to joined workers instead of executing locally")
		join        = fs.String("join", "", "run as a worker for the coordinator at this URL instead of serving HTTP")
		name        = fs.String("name", "", "worker name reported to the coordinator (default: host:pid; -join only)")
		lease       = fs.Duration("lease", 0, "worker lease TTL; a worker silent this long forfeits its shards (0: default 15s; -coordinator only)")
		maxAttempts = fs.Int("max-attempts", 0, "grants per shard before the job fails with a shard error (0: default 5; -coordinator only)")
		chaosSpec   = fs.String("chaos", "", `inject worker faults, e.g. "hbdrop=0.5,delay=200ms,crash=0.02" (-join only)`)
		chaosSeed   = fs.Int64("chaos-seed", 1, "seed for the -chaos injection schedule")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cacheDir == "" {
		return fmt.Errorf("-cache is required (the shared result corpus)")
	}
	if *join != "" {
		if *coordinator {
			return fmt.Errorf("-join and -coordinator are mutually exclusive (a worker executes, a coordinator dispatches)")
		}
		if *storeDir != "" {
			return fmt.Errorf("-store is a coordinator/server concern; a -join worker keeps no store")
		}
		return runWorker(*join, *name, *cacheDir, *workers, *lanes, *chaosSpec, *chaosSeed)
	}
	if *chaosSpec != "" {
		return fmt.Errorf("-chaos injects worker faults and needs -join")
	}
	if *storeDir == "" {
		return fmt.Errorf("-store is required (jobs and results must survive restarts)")
	}
	if *retainJobs < 0 || *retainAge < 0 {
		return fmt.Errorf("-retain-jobs and -retain-age must be >= 0")
	}
	if *lease < 0 {
		return fmt.Errorf("-lease must be >= 0")
	}
	if *maxAttempts < 0 {
		return fmt.Errorf("-max-attempts must be >= 0")
	}

	st, err := store.Open(*storeDir)
	if err != nil {
		return err
	}
	defer st.Close()
	st.Retention = store.RetentionPolicy{MaxJobs: *retainJobs, MaxAge: *retainAge}

	svc, err := service.New(service.Config{
		Store:            st,
		CacheDir:         *cacheDir,
		Workers:          *workers,
		Lanes:            *lanes,
		MaxActiveJobs:    *maxActive,
		Coordinator:      *coordinator,
		LeaseTTL:         *lease,
		MaxShardAttempts: *maxAttempts,
	})
	if err != nil {
		return err
	}
	// One deterministic GC at boot — after service.New, which backfills row
	// keys onto jobs from before the retention schema, so shared-row
	// accounting is complete before anything is swept. Steady-state pruning
	// then rides every store checkpoint.
	if jobs, rows, err := st.GC(); err != nil {
		return err
	} else if jobs > 0 {
		fmt.Fprintf(os.Stderr, "sweepd: retention pruned %d terminal jobs, swept %d rows\n", jobs, rows)
	}

	// Listen before starting the scheduler so a bad -addr fails fast with
	// nothing to drain.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	svc.Start()
	role := "local execution"
	if *coordinator {
		role = "coordinator"
	}
	fmt.Fprintf(os.Stderr, "sweepd: listening on %s (%s, store %s, cache %s)\n", ln.Addr(), role, *storeDir, *cacheDir)

	httpSrv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		// Drain order matters: stop accepting requests first, then cancel the
		// scheduler (the in-flight job is re-queued as resumable), and only
		// then — via the deferred Close — checkpoint and close the store.
		fmt.Fprintln(os.Stderr, "sweepd: draining (in-flight job will be re-queued as resumable)")
		shutCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if httpSrv.Shutdown(shutCtx) != nil {
			// An SSE subscriber never goes idle, so Shutdown can only time
			// out on it; force-close the lingering streams.
			httpSrv.Close()
		}
		svc.Close()
		return nil
	case err := <-serveErr:
		svc.Close()
		return err
	}
}

// runWorker is the -join path: no HTTP listener, no store — just a Worker
// heartbeating against the coordinator and executing the shards it is
// granted, until SIGINT/SIGTERM. In-flight shards are abandoned on exit
// (their completed cells are in the cache); the coordinator's lease expiry
// re-queues them.
func runWorker(coordURL, name, cacheDir string, workers, lanes int, chaosSpec string, chaosSeed int64) error {
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	var chaos *service.Chaos
	if chaosSpec != "" {
		var err error
		if chaos, err = service.ParseChaos(chaosSpec, chaosSeed); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "sweepd: chaos enabled: %s (seed %d)\n", chaosSpec, chaosSeed)
	}
	w, err := service.NewWorker(service.WorkerConfig{
		Coordinator: coordURL,
		Name:        name,
		CacheDir:    cacheDir,
		Workers:     workers,
		Lanes:       lanes,
		Chaos:       chaos,
		Log:         os.Stderr,
	})
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "sweepd: worker %q joining %s (cache %s)\n", name, coordURL, cacheDir)
	return w.Run(ctx)
}
