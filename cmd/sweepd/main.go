// Command sweepd serves the sweep job API: an HTTP daemon that accepts
// scenario-matrix specs (POST /jobs), executes them one at a time on the
// experiment Runner, persists every result row in a durable store, and
// streams results and live progress back to clients.
//
//	sweepd -addr :8080 -cache /var/lib/sweepd/cache -store /var/lib/sweepd/store
//
// All jobs share one content-addressed result cache, so a matrix any job
// (or any CLI run sharing the directory) has computed before costs nothing
// to run again. SIGINT/SIGTERM drains gracefully: in-flight cells finish,
// the running job is re-queued as resumable, and a restarted sweepd picks
// it up computing only the cells the previous process never finished.
//
// Submit from the experiments CLI with
//
//	experiments -panel matrix -nodes 15,25 -server http://localhost:8080 -out jsonl
//
// or with curl:
//
//	curl -d '{"nodeCounts":[15,25],"iterations":50,"seed":1}' localhost:8080/jobs
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"iotmpc/internal/service"
	"iotmpc/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
}

// shutdownGrace bounds how long draining waits for open HTTP responses
// (a slow /events subscriber must not hold the process hostage).
const shutdownGrace = 10 * time.Second

func run(args []string) error {
	fs := flag.NewFlagSet("sweepd", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		cacheDir = fs.String("cache", "", "content-addressed result cache directory shared by every job (required)")
		storeDir = fs.String("store", "", "durable job/result store directory (required)")
		workers  = fs.Int("workers", 0, "worker goroutines per job's Runner (0: GOMAXPROCS)")
		lanes    = fs.Int("lanes", 0, "bit-sliced trial batch width 1..64 (0: default 64; results are identical for any width)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cacheDir == "" {
		return fmt.Errorf("-cache is required (the shared result corpus)")
	}
	if *storeDir == "" {
		return fmt.Errorf("-store is required (jobs and results must survive restarts)")
	}

	st, err := store.Open(*storeDir)
	if err != nil {
		return err
	}
	defer st.Close()

	svc, err := service.New(service.Config{
		Store:    st,
		CacheDir: *cacheDir,
		Workers:  *workers,
		Lanes:    *lanes,
	})
	if err != nil {
		return err
	}

	// Listen before starting the scheduler so a bad -addr fails fast with
	// nothing to drain.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	svc.Start()
	fmt.Fprintf(os.Stderr, "sweepd: listening on %s (store %s, cache %s)\n", ln.Addr(), *storeDir, *cacheDir)

	httpSrv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		// Drain order matters: stop accepting requests first, then cancel the
		// scheduler (the in-flight job is re-queued as resumable), and only
		// then — via the deferred Close — checkpoint and close the store.
		fmt.Fprintln(os.Stderr, "sweepd: draining (in-flight job will be re-queued as resumable)")
		shutCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if httpSrv.Shutdown(shutCtx) != nil {
			// An SSE subscriber never goes idle, so Shutdown can only time
			// out on it; force-close the lingering streams.
			httpSrv.Close()
		}
		svc.Close()
		return nil
	case err := <-serveErr:
		svc.Close()
		return err
	}
}
