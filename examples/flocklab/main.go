// FlockLab scenario: reproduce the paper's FlockLab comparison — S3 (naive
// SSS over MiniCast) vs S4 (scalable) on the 26-node testbed model, with the
// paper's parameters (degree ⌊n/3⌋, NTX 6, AES-128-encrypted sharing phase).
package main

import (
	"fmt"
	"log"

	"iotmpc/internal/core"
	"iotmpc/internal/experiment"
	"iotmpc/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	testbed := topology.FlockLab()
	n := testbed.NumNodes()
	sources, err := experiment.SpreadSources(n, n)
	if err != nil {
		return err
	}

	fmt.Printf("FlockLab model: %d nRF52840-class nodes, degree k=%d\n\n", n, n/3)
	for _, proto := range []core.Protocol{core.S3, core.S4} {
		cfg := core.Config{
			Topology:    testbed,
			Protocol:    proto,
			Sources:     sources,
			NTXSharing:  6, // the paper's FlockLab value
			DestSlack:   1,
			ChannelSeed: 1,
		}
		boot, err := core.RunBootstrap(cfg)
		if err != nil {
			return err
		}
		res, err := core.RunRound(boot, 0)
		if err != nil {
			return err
		}
		fmt.Printf("%v: NTX=%d sharing-chain=%d sub-slots\n",
			proto, res.NTXUsed, res.SharingChainLen)
		fmt.Printf("    latency %v   radio-on %v   correct %d/%d\n\n",
			res.MeanLatency, res.MeanRadioOn, res.CorrectNodes, n)
	}
	return nil
}
