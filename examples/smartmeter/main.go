// Smart metering: the motivating workload from the paper's introduction.
// A neighborhood of smart meters reports aggregate consumption every period
// without any meter (or the utility) learning an individual household's
// reading. Runs several metering periods and tracks the energy cost of the
// protocol itself via the radio-charge model.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"iotmpc/internal/core"
	"iotmpc/internal/phy"
	"iotmpc/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 16 meters along two suburban streets.
	meters, err := topology.Grid(2, 8, 32)
	if err != nil {
		return err
	}
	meters.Name = "suburb"
	n := meters.NumNodes()

	sources := make([]int, n)
	for i := range sources {
		sources[i] = i
	}
	cfg := core.Config{
		Topology:    meters,
		Protocol:    core.S4,
		Sources:     sources,
		Degree:      5, // 5-household collusion threshold
		NTXSharing:  6,
		DestSlack:   2,
		ChannelSeed: 3,
	}
	boot, err := core.RunBootstrap(cfg)
	if err != nil {
		return err
	}

	params := phy.DefaultParams()
	readings := rand.New(rand.NewSource(11))
	fmt.Printf("%d smart meters, collusion threshold %d, %d metering periods\n\n",
		n, cfg.Degree, 4)
	for period := uint64(0); period < 4; period++ {
		// This period's consumption per household, in watt-hours.
		values := make(map[int]uint64, n)
		for _, meter := range sources {
			values[meter] = 200 + uint64(readings.Intn(1300))
		}
		res, err := core.RunRoundWithSecrets(boot, period, values)
		if err != nil {
			return err
		}
		// Per-period protocol energy at the worst-off meter (battery
		// lifetime is set by the busiest node).
		var maxOn = res.RadioOn[0]
		for _, on := range res.RadioOn[1:] {
			if on > maxOn {
				maxOn = on
			}
		}
		charge := params.ChargeMicroCoulombs(0, maxOn) // conservative: all-rx rate
		fmt.Printf("period %d: neighborhood consumption %v Wh  (correct at %d/%d meters,"+
			" latency %v, worst-node charge %.0f µC)\n",
			period, res.Expected, res.CorrectNodes, n, res.MeanLatency, charge)
	}
	fmt.Println("\nno individual reading ever left a meter unencrypted ✓")
	return nil
}
