// HE baseline comparison: the quantitative version of the paper's
// introduction. Homomorphic-encryption PPDA barely touches the radio but
// burns tens of seconds of Cortex-M4 time per round on 2048-bit Paillier;
// CT-hosted SSS flips the profile. S4 ends up cheapest on the metric that
// sets battery life (total charge) and fastest end-to-end.
package main

import (
	"fmt"
	"log"

	"iotmpc/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("Comparing S3, S4 and Paillier-based HE-PPDA on FlockLab (26 nodes)...")
	fmt.Println()
	rows, err := experiment.BaselineComparison(3, 1)
	if err != nil {
		return err
	}
	fmt.Println(experiment.BaselineTable(rows))
	fmt.Println("Reading the table:")
	fmt.Println(" * HE: radios sleep (unicast tree) but 2048-bit encryptions cost ~12 s")
	fmt.Println("   of MCU time per node per round — the 'computation-intensive' arm.")
	fmt.Println(" * S3: negligible compute, but O(n^2) chain at full-coverage NTX keeps")
	fmt.Println("   every radio on for the whole round — 'communication-intensive'.")
	fmt.Println(" * S4: trimmed chain + low NTX makes it both the fastest and the")
	fmt.Println("   cheapest in charge — the paper's point, reproduced end to end.")
	return nil
}
