// Quickstart: ten IoT nodes privately compute the sum of their secrets using
// the scalable SSS-over-CT protocol (S4) on a synthetic deployment. No node
// ever sees another node's secret; every node ends up with the sum.
package main

import (
	"fmt"
	"log"

	"iotmpc/internal/core"
	"iotmpc/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 10-node deployment scattered over a 100 m × 60 m site.
	testbed, err := topology.RandomGeometric(10, 100, 60, 42)
	if err != nil {
		return err
	}

	cfg := core.Config{
		Topology:    testbed,
		Protocol:    core.S4,
		Sources:     []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, // everyone contributes
		Degree:      3,                                   // up to 3 colluding nodes learn nothing
		NTXSharing:  6,
		DestSlack:   2,
		ChannelSeed: 7,
	}

	// Bootstrapping: probe the radio environment, pick share destinations.
	boot, err := core.RunBootstrap(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("bootstrapped: %d nodes, destinations %v\n",
		testbed.NumNodes(), boot.Dests)

	// One aggregation round: share → locally sum → re-share → interpolate.
	res, err := core.RunRound(boot, 0)
	if err != nil {
		return err
	}

	fmt.Printf("plaintext sum (ground truth): %v\n", res.Expected)
	fmt.Printf("nodes with correct aggregate: %d/%d\n",
		res.CorrectNodes, testbed.NumNodes())
	fmt.Printf("mean latency: %v   mean radio-on time: %v\n",
		res.MeanLatency, res.MeanRadioOn)
	return nil
}
