// D-Cube scenario: the paper's larger testbed — 45 nodes, NTX 5 for S4 —
// where the scalable protocol's advantage is biggest (the paper reports 9×
// faster aggregation and 10× less radio-on time).
package main

import (
	"fmt"
	"log"

	"iotmpc/internal/core"
	"iotmpc/internal/experiment"
	"iotmpc/internal/metrics"
	"iotmpc/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	testbed := topology.DCube()
	n := testbed.NumNodes()
	sources, err := experiment.SpreadSources(n, n)
	if err != nil {
		return err
	}

	fmt.Printf("D-Cube model: %d nodes, degree k=%d, S4 NTX=5\n\n", n, n/3)
	results := make(map[core.Protocol]*core.RoundResult, 2)
	for _, proto := range []core.Protocol{core.S3, core.S4} {
		cfg := core.Config{
			Topology:    testbed,
			Protocol:    proto,
			Sources:     sources,
			NTXSharing:  5, // the paper's D-Cube value
			DestSlack:   1,
			ChannelSeed: 1,
		}
		boot, err := core.RunBootstrap(cfg)
		if err != nil {
			return err
		}
		res, err := core.RunRound(boot, 0)
		if err != nil {
			return err
		}
		results[proto] = res
		fmt.Printf("%v: latency %v   radio-on %v   correct %d/%d\n",
			proto, res.MeanLatency, res.MeanRadioOn, res.CorrectNodes, n)
	}

	latRatio, err := metrics.Ratio(
		results[core.S3].MeanLatency.Seconds(),
		results[core.S4].MeanLatency.Seconds())
	if err != nil {
		return err
	}
	radioRatio, err := metrics.Ratio(
		results[core.S3].MeanRadioOn.Seconds(),
		results[core.S4].MeanRadioOn.Seconds())
	if err != nil {
		return err
	}
	fmt.Printf("\nS4 is %.1fx faster and uses %.1fx less radio-on time (paper: 9x / 10x)\n",
		latRatio, radioRatio)
	return nil
}
