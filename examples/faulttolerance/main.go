// Fault tolerance: S4's low-degree polynomial means any k+1 public-point sums
// reconstruct the aggregate. With slack destinations (|D| > k+1), the round
// survives crashed share-holders — the property the paper highlights as a
// bonus of using k < n. This example crashes two destination nodes after
// commissioning and shows aggregation still succeeding at every live node.
package main

import (
	"fmt"
	"log"

	"iotmpc/internal/core"
	"iotmpc/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	testbed := topology.FlockLab()
	n := testbed.NumNodes()

	// Sources: half the network (so some destinations are free to crash).
	sources := make([]int, 0, n/2)
	for i := 0; i < n; i += 2 {
		sources = append(sources, i)
	}

	base := core.Config{
		Topology:    testbed,
		Protocol:    core.S4,
		Sources:     sources,
		NTXSharing:  6,
		DestSlack:   3, // |D| = k+1+3: up to 3 destinations may vanish
		ChannelSeed: 1,
	}
	boot, err := core.RunBootstrap(base)
	if err != nil {
		return err
	}
	fmt.Printf("destination set (|D|=%d, k+1=%d needed): %v\n",
		len(boot.Dests), boot.Config().Degree+1, boot.Dests)

	// Crash two non-source destinations after commissioning.
	failed := make([]bool, n)
	crashed := make([]int, 0, 2)
	for _, d := range boot.Dests {
		if d == base.Initiator || isSource(sources, d) {
			continue
		}
		failed[d] = true
		crashed = append(crashed, d)
		if len(crashed) == 2 {
			break
		}
	}
	fmt.Printf("crashing destination nodes: %v\n\n", crashed)

	faulty := base
	faulty.Failed = failed
	bootFaulty, err := core.RunBootstrap(faulty)
	if err != nil {
		return err
	}
	res, err := core.RunRound(bootFaulty, 0)
	if err != nil {
		return err
	}

	live, liveOK := 0, 0
	for i := 0; i < n; i++ {
		if failed[i] {
			continue
		}
		live++
		if res.NodeOK[i] {
			liveOK++
		}
	}
	fmt.Printf("live nodes with correct aggregate: %d/%d\n", liveOK, live)
	fmt.Printf("expected sum %v — reconstruction used any %d of the %d surviving sums\n",
		res.Expected, boot.Config().Degree+1, res.ReconChainLen)
	if liveOK == live {
		fmt.Println("aggregation survived the crashes ✓")
	}
	return nil
}

func isSource(sources []int, node int) bool {
	for _, s := range sources {
		if s == node {
			return true
		}
	}
	return false
}
