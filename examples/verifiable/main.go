// Verifiable sharing: hardening the paper's semi-honest model. With Feldman
// commitments riding the sharing chain, a destination can verify every share
// it decrypts before absorbing it into its public-point sum — a malicious
// source can no longer silently poison the aggregate. The commitments are
// additively homomorphic, so even the SUMS re-shared in the reconstruction
// phase remain verifiable.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"iotmpc/internal/field"
	"iotmpc/internal/shamir"
	"iotmpc/internal/vss"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(7))
	const nodes, degree, sources = 10, 3, 4
	points := shamir.PublicPoints(nodes)

	fmt.Printf("%d nodes, degree %d, %d sources dealing verifiably\n\n", nodes, degree, sources)

	sums := make([]field.Element, nodes)
	commits := make([]*vss.Commitment, 0, sources)
	var total field.Element
	for s := 0; s < sources; s++ {
		secret := field.New(uint64(100 * (s + 1)))
		total = total.Add(secret)
		shares, commit, err := vss.Deal(secret, degree, points, rng)
		if err != nil {
			return err
		}
		commits = append(commits, commit)

		// Every destination verifies before absorbing.
		for j, share := range shares {
			if err := vss.Verify(share, commit); err != nil {
				return fmt.Errorf("source %d share %d rejected: %w", s, j, err)
			}
			sums[j] = sums[j].Add(share.Value)
		}
		fmt.Printf("source %d: %d shares dealt and verified (+%dB commitments on the chain)\n",
			s, nodes, commit.Bytes())
	}

	// A malicious source tries to slip in a corrupted share.
	evilShares, evilCommit, err := vss.Deal(field.New(666), degree, points, rng)
	if err != nil {
		return err
	}
	forged := evilShares[2]
	forged.Value = forged.Value.Add(field.One) // off-polynomial by 1
	if err := vss.Verify(forged, evilCommit); errors.Is(err, vss.ErrVerifyFailed) {
		fmt.Println("\nforged share detected and rejected ✓")
	} else {
		return fmt.Errorf("forged share slipped through: %v", err)
	}

	// Reconstruction-phase verification: sums check out against the
	// aggregated commitment, then reconstruct.
	aggCommit, err := vss.AggregateCommitments(commits)
	if err != nil {
		return err
	}
	for j := 0; j < degree+1; j++ {
		if err := vss.Verify(vss.Share{X: points[j], Value: sums[j]}, aggCommit); err != nil {
			return fmt.Errorf("sum %d failed aggregated verification: %w", j, err)
		}
	}
	sumShares := make([]shamir.Share, degree+1)
	for j := range sumShares {
		sumShares[j] = shamir.Share{X: points[j], Value: sums[j]}
	}
	got, err := shamir.Reconstruct(sumShares, degree)
	if err != nil {
		return err
	}
	fmt.Printf("verified aggregate: %v (expected %v) ✓\n", got, total)
	return nil
}
