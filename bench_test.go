// Benchmarks and claim-checks that regenerate the paper's evaluation.
//
// One benchmark per figure panel:
//
//	BenchmarkFig1a_FlockLabLatency   Fig 1(i)(a)
//	BenchmarkFig1b_FlockLabRadioOn   Fig 1(i)(b)
//	BenchmarkFig1c_DCubeLatency      Fig 1(ii)(c)
//	BenchmarkFig1d_DCubeRadioOn      Fig 1(ii)(d)
//
// plus ablation benches for the design choices DESIGN.md calls out and
// TestPaperClaim_* checks for the in-text headline numbers. Benchmarks report
// the figure's metric (simulated milliseconds per round) as a custom metric;
// wall-clock ns/op measures the simulator, not the protocol.
package iotmpc_test

import (
	"fmt"
	"sync"
	"testing"

	"iotmpc/internal/core"
	"iotmpc/internal/experiment"
	"iotmpc/internal/hepda"
	"iotmpc/internal/topology"
)

// bootCache avoids re-probing the same configuration across benchmarks.
var bootCache sync.Map

func cachedBootstrap(tb testing.TB, cfg core.Config) *core.Bootstrap {
	tb.Helper()
	key := fmt.Sprintf("%s|%v|%d|%d|%d|%d|%v",
		cfg.Topology.Name, cfg.Protocol, len(cfg.Sources), cfg.Degree,
		cfg.NTXSharing, cfg.DestSlack, cfg.NoEarlyOff)
	if v, ok := bootCache.Load(key); ok {
		boot, ok := v.(*core.Bootstrap)
		if !ok {
			tb.Fatalf("bootstrap cache corrupted for %s", key)
		}
		return boot
	}
	boot, err := core.RunBootstrap(cfg)
	if err != nil {
		tb.Fatalf("bootstrap: %v", err)
	}
	bootCache.Store(key, boot)
	return boot
}

func sweepConfig(tb testing.TB, testbed topology.Topology, proto core.Protocol, sources, ntx int) core.Config {
	tb.Helper()
	srcs, err := experiment.SpreadSources(testbed.NumNodes(), sources)
	if err != nil {
		tb.Fatal(err)
	}
	return core.Config{
		Topology:    testbed,
		Protocol:    proto,
		Sources:     srcs,
		NTXSharing:  ntx,
		DestSlack:   1,
		ChannelSeed: 1,
	}
}

// benchPanel runs one figure panel: for every (protocol, source count) cell
// it executes b.N rounds and reports the figure's metric.
func benchPanel(b *testing.B, testbed topology.Topology, counts []int, ntx int, metric experiment.Metric) {
	for _, proto := range []core.Protocol{core.S3, core.S4} {
		for _, s := range counts {
			name := fmt.Sprintf("%v/sources=%d", proto, s)
			b.Run(name, func(b *testing.B) {
				boot := cachedBootstrap(b, sweepConfig(b, testbed, proto, s, ntx))
				var totalMS float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := core.RunRound(boot, uint64(i))
					if err != nil {
						b.Fatal(err)
					}
					switch metric {
					case experiment.RadioOn:
						totalMS += res.MeanRadioOn.Seconds() * 1e3
					default:
						totalMS += res.MeanLatency.Seconds() * 1e3
					}
				}
				b.ReportMetric(totalMS/float64(b.N), "sim-ms/round")
			})
		}
	}
}

// BenchmarkFig1a_FlockLabLatency regenerates Fig 1(i)(a): latency on the
// 26-node FlockLab model across source counts.
func BenchmarkFig1a_FlockLabLatency(b *testing.B) {
	benchPanel(b, topology.FlockLab(), []int{3, 6, 10, 24}, 6, experiment.Latency)
}

// BenchmarkFig1b_FlockLabRadioOn regenerates Fig 1(i)(b): radio-on time on
// FlockLab.
func BenchmarkFig1b_FlockLabRadioOn(b *testing.B) {
	benchPanel(b, topology.FlockLab(), []int{3, 6, 10, 24}, 6, experiment.RadioOn)
}

// BenchmarkFig1c_DCubeLatency regenerates Fig 1(ii)(c): latency on the
// 45-node D-Cube model.
func BenchmarkFig1c_DCubeLatency(b *testing.B) {
	benchPanel(b, topology.DCube(), []int{5, 7, 12, 45}, 5, experiment.Latency)
}

// BenchmarkFig1d_DCubeRadioOn regenerates Fig 1(ii)(d): radio-on time on
// D-Cube.
func BenchmarkFig1d_DCubeRadioOn(b *testing.B) {
	benchPanel(b, topology.DCube(), []int{5, 7, 12, 45}, 5, experiment.RadioOn)
}

// BenchmarkAblationNTX sweeps S4's sharing NTX on FlockLab: lower NTX is
// faster until delivery reliability collapses (bootstrap rejects it).
func BenchmarkAblationNTX(b *testing.B) {
	for _, ntx := range []int{4, 5, 6, 8, 10} {
		b.Run(fmt.Sprintf("ntx=%d", ntx), func(b *testing.B) {
			cfg := sweepConfig(b, topology.FlockLab(), core.S4, 26, ntx)
			boot, err := core.RunBootstrap(cfg)
			if err != nil {
				b.Skipf("NTX=%d infeasible: %v", ntx, err)
			}
			var totalMS, success float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.RunRound(boot, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				totalMS += res.MeanLatency.Seconds() * 1e3
				success += float64(res.CorrectNodes) / 26
			}
			b.ReportMetric(totalMS/float64(b.N), "sim-ms/round")
			b.ReportMetric(100*success/float64(b.N), "success-%")
		})
	}
}

// BenchmarkAblationDegree sweeps the polynomial degree on FlockLab: the
// paper notes that an even lower degree would improve S4 further.
func BenchmarkAblationDegree(b *testing.B) {
	for _, degree := range []int{4, 8, 12, 16} {
		b.Run(fmt.Sprintf("k=%d", degree), func(b *testing.B) {
			cfg := sweepConfig(b, topology.FlockLab(), core.S4, 26, 6)
			cfg.Degree = degree
			boot, err := core.RunBootstrap(cfg)
			if err != nil {
				b.Skipf("degree=%d infeasible: %v", degree, err)
			}
			var totalMS float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.RunRound(boot, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				totalMS += res.MeanLatency.Seconds() * 1e3
			}
			b.ReportMetric(totalMS/float64(b.N), "sim-ms/round")
		})
	}
}

// BenchmarkAblationDutyCycle compares S4 radio-on time with and without the
// early radio-off in the reconstruction phase.
func BenchmarkAblationDutyCycle(b *testing.B) {
	for _, noEarlyOff := range []bool{false, true} {
		name := "early-off"
		if noEarlyOff {
			name = "always-on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := sweepConfig(b, topology.FlockLab(), core.S4, 26, 6)
			cfg.NoEarlyOff = noEarlyOff
			boot := cachedBootstrap(b, cfg)
			var totalMS float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.RunRound(boot, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				totalMS += res.MeanRadioOn.Seconds() * 1e3
			}
			b.ReportMetric(totalMS/float64(b.N), "sim-radio-ms/round")
		})
	}
}

// BenchmarkAblationVerification quantifies the cost of the Feldman-VSS
// verifiable mode (commitment chain + verification CPU) on S4.
func BenchmarkAblationVerification(b *testing.B) {
	for _, verifiable := range []bool{false, true} {
		name := "plain"
		if verifiable {
			name = "verifiable"
		}
		b.Run(name, func(b *testing.B) {
			cfg := sweepConfig(b, topology.FlockLab(), core.S4, 26, 6)
			cfg.Verifiable = verifiable
			boot, err := core.RunBootstrap(cfg)
			if err != nil {
				b.Fatal(err)
			}
			var totalMS float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.RunRound(boot, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				totalMS += res.MeanLatency.Seconds() * 1e3
			}
			b.ReportMetric(totalMS/float64(b.N), "sim-ms/round")
		})
	}
}

// BenchmarkBaselineHEvsSSS runs the introduction's three-way comparison:
// HE-based PPDA vs S3 vs S4 on the full FlockLab network, reporting each
// protocol's simulated latency per round.
func BenchmarkBaselineHEvsSSS(b *testing.B) {
	for _, proto := range []core.Protocol{core.S3, core.S4} {
		b.Run(proto.String(), func(b *testing.B) {
			boot := cachedBootstrap(b, sweepConfig(b, topology.FlockLab(), proto, 26, 6))
			var totalMS float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.RunRound(boot, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				totalMS += res.MeanLatency.Seconds() * 1e3
			}
			b.ReportMetric(totalMS/float64(b.N), "sim-ms/round")
		})
	}
	b.Run("HE", func(b *testing.B) {
		sources := make([]int, 26)
		for i := range sources {
			sources[i] = i
		}
		cfg := hepda.Config{
			Topology:    topology.FlockLab(),
			Sources:     sources,
			ChannelSeed: 1,
		}
		var totalMS float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := hepda.RunRound(cfg, uint64(i))
			if err != nil {
				b.Fatal(err)
			}
			totalMS += res.MeanLatency.Seconds() * 1e3
		}
		b.ReportMetric(totalMS/float64(b.N), "sim-ms/round")
	})
}

// paperClaim checks the in-text headline ratios at the full-network point.
func paperClaim(t *testing.T, testbed topology.Topology, ntx int,
	wantLatencyLo, wantLatencyHi, wantRadioLo, wantRadioHi float64) {
	t.Helper()
	n := testbed.NumNodes()
	var lat, radio [2]float64
	for i, proto := range []core.Protocol{core.S3, core.S4} {
		boot := cachedBootstrap(t, sweepConfig(t, testbed, proto, n, ntx))
		const trials = 5
		for trial := uint64(0); trial < trials; trial++ {
			res, err := core.RunRound(boot, trial)
			if err != nil {
				t.Fatal(err)
			}
			if res.CorrectNodes < n-1 {
				t.Errorf("%v trial %d: only %d/%d nodes correct", proto, trial, res.CorrectNodes, n)
			}
			lat[i] += res.MeanLatency.Seconds()
			radio[i] += res.MeanRadioOn.Seconds()
		}
	}
	latRatio := lat[0] / lat[1]
	radioRatio := radio[0] / radio[1]
	t.Logf("%s: latency gain %.2fx, radio gain %.2fx", testbed.Name, latRatio, radioRatio)
	if latRatio < wantLatencyLo || latRatio > wantLatencyHi {
		t.Errorf("latency gain %.2fx outside the paper-shape band [%.1f, %.1f]",
			latRatio, wantLatencyLo, wantLatencyHi)
	}
	if radioRatio < wantRadioLo || radioRatio > wantRadioHi {
		t.Errorf("radio gain %.2fx outside the paper-shape band [%.1f, %.1f]",
			radioRatio, wantRadioLo, wantRadioHi)
	}
}

// TestPaperClaim_FlockLabGains checks the paper's "at least 6× faster, 7×
// lesser radio-on time" FlockLab claim, with tolerance for the simulated
// substrate (see EXPERIMENTS.md).
func TestPaperClaim_FlockLabGains(t *testing.T) {
	paperClaim(t, topology.FlockLab(), 6, 4, 8, 4, 9)
}

// TestPaperClaim_DCubeGains checks the paper's "9× faster, 10× lesser
// radio-on time" D-Cube claim.
func TestPaperClaim_DCubeGains(t *testing.T) {
	if testing.Short() {
		t.Skip("full D-Cube S3 rounds are slow")
	}
	paperClaim(t, topology.DCube(), 5, 6.5, 11, 6.5, 12)
}

// TestPaperClaim_MagnitudeBand checks that absolute latencies fall in the
// 10³–10⁵ ms band the paper's log-scale figure spans.
func TestPaperClaim_MagnitudeBand(t *testing.T) {
	for _, entry := range []struct {
		testbed topology.Topology
		ntx     int
	}{
		{topology.FlockLab(), 6},
		{topology.DCube(), 5},
	} {
		for _, proto := range []core.Protocol{core.S3, core.S4} {
			boot := cachedBootstrap(t, sweepConfig(t, entry.testbed, proto, entry.testbed.NumNodes(), entry.ntx))
			res, err := core.RunRound(boot, 0)
			if err != nil {
				t.Fatal(err)
			}
			ms := res.MeanLatency.Seconds() * 1e3
			if ms < 1e2 || ms > 1e6 {
				t.Errorf("%s/%v: latency %.0f ms outside the paper's magnitude band",
					entry.testbed.Name, proto, ms)
			}
		}
	}
}
