package metrics

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestStreamExactModeMatchesSeries is the compatibility bar: while under the
// exact limit, a Stream's summary must be bit-identical to the buffered
// Series it replaces — this is what keeps paper-default sweeps byte-stable
// across the runner redesign.
func TestStreamExactModeMatchesSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var st Stream
	var se Series
	for i := 0; i < 2000; i++ {
		v := rng.NormFloat64()*25 + 180
		st.Add(v)
		se.Add(v)
	}
	if !st.Exact() {
		t.Fatal("2000 samples spilled below the default exact limit")
	}
	got, err := st.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	want, err := se.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("exact-mode summary diverged from Series:\n got %+v\nwant %+v", got, want)
	}
}

// rankError measures sketch quality the way sketches are specified: the
// fraction of samples at or below the estimate, versus the target quantile.
// Unlike value error, it is meaningful on gapped (bimodal) distributions.
func rankError(samples []float64, estimate, q float64) float64 {
	atOrBelow := 0
	for _, v := range samples {
		if v <= estimate {
			atOrBelow++
		}
	}
	return math.Abs(float64(atOrBelow)/float64(len(samples)) - q)
}

// streamOver folds samples into a sketch-mode stream (limit 1) and returns
// its summary plus the exact Series summary for comparison.
func streamOver(t *testing.T, samples []float64) (sketch, exact Summary) {
	t.Helper()
	var st Stream
	st.SetExactLimit(1)
	var se Series
	for _, v := range samples {
		st.Add(v)
		se.Add(v)
	}
	if st.Exact() {
		t.Fatal("stream did not switch to sketch mode")
	}
	var err error
	if sketch, err = st.Summarize(); err != nil {
		t.Fatal(err)
	}
	if exact, err = se.Summarize(); err != nil {
		t.Fatal(err)
	}
	return sketch, exact
}

// checkAgreement enforces the documented sketch tolerances against the exact
// summary: mean within 1e-9 relative (Welford is exact up to FP noise), CI95
// within 1e-6 relative, min/max exact, and quantile estimates within 0.03
// rank error.
func checkAgreement(t *testing.T, name string, samples []float64, sketch, exact Summary) {
	t.Helper()
	relErr := func(got, want float64) float64 {
		if want == 0 {
			return math.Abs(got)
		}
		return math.Abs(got-want) / math.Abs(want)
	}
	if sketch.N != exact.N {
		t.Errorf("%s: N = %d, want %d", name, sketch.N, exact.N)
	}
	if relErr(sketch.Mean, exact.Mean) > 1e-9 {
		t.Errorf("%s: mean %v vs exact %v", name, sketch.Mean, exact.Mean)
	}
	if relErr(sketch.CI95, exact.CI95) > 1e-6 {
		t.Errorf("%s: ci95 %v vs exact %v", name, sketch.CI95, exact.CI95)
	}
	if sketch.Min != exact.Min || sketch.Max != exact.Max {
		t.Errorf("%s: min/max %v/%v vs exact %v/%v",
			name, sketch.Min, sketch.Max, exact.Min, exact.Max)
	}
	if re := rankError(samples, sketch.Median, 0.5); re > 0.03 {
		t.Errorf("%s: median %v rank error %.4f > 0.03 (exact median %v)",
			name, sketch.Median, re, exact.Median)
	}
	if re := rankError(samples, sketch.P95, 0.95); re > 0.03 {
		t.Errorf("%s: p95 %v rank error %.4f > 0.03 (exact p95 %v)",
			name, sketch.P95, re, exact.P95)
	}
}

func TestStreamSketchBimodal(t *testing.T) {
	// Two well-separated modes — the adversarial case for interpolating
	// estimators, since the median sits in a sample-free gap.
	rng := rand.New(rand.NewSource(7))
	samples := make([]float64, 20000)
	for i := range samples {
		if rng.Intn(2) == 0 {
			samples[i] = rng.NormFloat64() + 10
		} else {
			samples[i] = rng.NormFloat64() + 100
		}
	}
	sketch, exact := streamOver(t, samples)
	checkAgreement(t, "bimodal", samples, sketch, exact)
}

func TestStreamSketchHeavyTail(t *testing.T) {
	// Lognormal with sigma 2: the p95 sits far from the body and the max is
	// orders of magnitude beyond it.
	rng := rand.New(rand.NewSource(11))
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = math.Exp(rng.NormFloat64() * 2)
	}
	sketch, exact := streamOver(t, samples)
	checkAgreement(t, "heavy-tail", samples, sketch, exact)
}

func TestStreamSketchConstant(t *testing.T) {
	samples := make([]float64, 5000)
	for i := range samples {
		samples[i] = 42.5
	}
	sketch, exact := streamOver(t, samples)
	if sketch != exact {
		t.Fatalf("constant distribution must be exact in sketch mode:\n got %+v\nwant %+v",
			sketch, exact)
	}
}

func TestStreamTinyCounts(t *testing.T) {
	// Below five samples the sketches hold samples verbatim, so even a
	// sketch-mode stream reports exact quantiles.
	var st Stream
	st.SetExactLimit(1)
	for _, v := range []float64{3, 1, 2} {
		st.Add(v)
	}
	sum, err := st.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Median != 2 || sum.Min != 1 || sum.Max != 3 {
		t.Fatalf("tiny stream summary: %+v", sum)
	}
}

func TestStreamEmptyAndDurations(t *testing.T) {
	var st Stream
	if _, err := st.Summarize(); err == nil {
		t.Fatal("empty stream summarized without error")
	}
	if _, err := st.Mean(); err == nil {
		t.Fatal("empty stream mean without error")
	}
	st.AddDuration(1500 * time.Millisecond)
	m, err := st.Mean()
	if err != nil || m != 1500 {
		t.Fatalf("duration fold: %v %v", m, err)
	}
}

func TestStreamSketchSingleSampleCI(t *testing.T) {
	// A spilled stream with one sample must report CI95 0, not NaN (the
	// n-1 divisor needs the same n>=2 guard the exact path has).
	var st Stream
	st.SetExactLimit(0)
	st.Add(7)
	sum, err := st.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if st.Exact() {
		t.Fatal("limit 0 stream still exact")
	}
	if sum.CI95 != 0 || math.IsNaN(sum.CI95) {
		t.Fatalf("one-sample CI95 = %v, want 0", sum.CI95)
	}
	if sum.Mean != 7 || sum.Median != 7 || sum.Min != 7 || sum.Max != 7 {
		t.Fatalf("one-sample summary: %+v", sum)
	}
}

func TestStreamSwitchoverReflectsFullHistory(t *testing.T) {
	// Min/max/mean after the spill must cover pre-spill samples too.
	var st Stream
	st.SetExactLimit(10)
	for i := 1; i <= 100; i++ {
		st.Add(float64(i))
	}
	if st.Exact() {
		t.Fatal("limit 10 did not spill at 100 samples")
	}
	sum, err := st.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Min != 1 || sum.Max != 100 {
		t.Fatalf("min/max lost across switchover: %+v", sum)
	}
	if math.Abs(sum.Mean-50.5) > 1e-12 {
		t.Fatalf("mean %v, want 50.5", sum.Mean)
	}
}
