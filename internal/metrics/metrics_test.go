package metrics

import (
	"errors"
	"math"
	"testing"
	"time"
)

func seriesOf(vals ...float64) *Series {
	var s Series
	for _, v := range vals {
		s.Add(v)
	}
	return &s
}

func TestMean(t *testing.T) {
	s := seriesOf(1, 2, 3, 4)
	got, err := s.Mean()
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.5 {
		t.Errorf("Mean = %f, want 2.5", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	var s Series
	if _, err := s.Mean(); !errors.Is(err, ErrNoSamples) {
		t.Errorf("error = %v, want ErrNoSamples", err)
	}
}

func TestStdDev(t *testing.T) {
	s := seriesOf(2, 4, 4, 4, 5, 5, 7, 9)
	got, err := s.StdDev()
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDev = %f, want %f", got, want)
	}
	one := seriesOf(5)
	if _, err := one.StdDev(); !errors.Is(err, ErrNoSamples) {
		t.Errorf("single sample: %v, want ErrNoSamples", err)
	}
}

func TestQuantile(t *testing.T) {
	s := seriesOf(10, 20, 30, 40, 50)
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 10},
		{0.25, 20},
		{0.5, 30},
		{0.75, 40},
		{1, 50},
		{0.125, 15}, // interpolated
	}
	for _, tt := range tests {
		got, err := s.Quantile(tt.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%f) = %f, want %f", tt.q, got, tt.want)
		}
	}
}

func TestQuantileErrors(t *testing.T) {
	var empty Series
	if _, err := empty.Quantile(0.5); !errors.Is(err, ErrNoSamples) {
		t.Errorf("empty: %v, want ErrNoSamples", err)
	}
	s := seriesOf(1)
	if _, err := s.Quantile(1.5); !errors.Is(err, ErrBadQuantile) {
		t.Errorf("q>1: %v, want ErrBadQuantile", err)
	}
	if _, err := s.Quantile(-0.1); !errors.Is(err, ErrBadQuantile) {
		t.Errorf("q<0: %v, want ErrBadQuantile", err)
	}
}

func TestQuantileSingleSample(t *testing.T) {
	s := seriesOf(7)
	got, err := s.Quantile(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("Quantile on singleton = %f, want 7", got)
	}
}

func TestAddDurationUsesMilliseconds(t *testing.T) {
	var s Series
	s.AddDuration(1500 * time.Millisecond)
	got, err := s.Mean()
	if err != nil {
		t.Fatal(err)
	}
	if got != 1500 {
		t.Errorf("duration sample = %f ms, want 1500", got)
	}
}

func TestAddAfterQuantileKeepsOrder(t *testing.T) {
	s := seriesOf(3, 1)
	if _, err := s.Median(); err != nil {
		t.Fatal(err)
	}
	s.Add(2)
	med, err := s.Median()
	if err != nil {
		t.Fatal(err)
	}
	if med != 2 {
		t.Errorf("median after late Add = %f, want 2", med)
	}
}

func TestSummarize(t *testing.T) {
	s := seriesOf(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	sum, err := s.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if sum.N != 10 || sum.Mean != 5.5 || sum.Min != 1 || sum.Max != 10 {
		t.Errorf("Summary = %+v", sum)
	}
	if sum.CI95 <= 0 {
		t.Errorf("CI95 = %f, want > 0", sum.CI95)
	}
	var empty Series
	if _, err := empty.Summarize(); !errors.Is(err, ErrNoSamples) {
		t.Errorf("empty Summarize: %v, want ErrNoSamples", err)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := seriesOf(4)
	sum, err := s.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if sum.CI95 != 0 {
		t.Errorf("singleton CI95 = %f, want 0", sum.CI95)
	}
}

func TestRatio(t *testing.T) {
	r, err := Ratio(12, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r != 6 {
		t.Errorf("Ratio = %f, want 6", r)
	}
	if _, err := Ratio(1, 0); err == nil {
		t.Error("Ratio by zero: want error")
	}
}
