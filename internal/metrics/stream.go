package metrics

import (
	"math"
	"sort"
	"time"
)

// Stream folds samples online in bounded memory, replacing Series in the
// experiment hot path. Small runs stay exact; big runs switch to sketches:
//
//   - While the sample count is at most the exact limit, every sample is
//     buffered in an embedded Series and Summarize delegates to it, so the
//     summary is bit-identical to what the buffered Series would report —
//     this keeps paper-default sweeps byte-compatible with earlier runners.
//   - Past the limit the buffer is released and the Stream serves summaries
//     from its online state: Welford mean/variance, exact min/max, and P²
//     quantile sketches for the median and P95. Memory is O(1) from then on
//     regardless of the iteration count.
//
// The switchover is the documented DefaultExactLimit (overridable per Stream
// via SetExactLimit before the first sample). Welford and the sketches are
// fed from the first sample, so the post-switchover state reflects the full
// history, not just the overflow.
//
// The zero value is ready to use.
type Stream struct {
	limit   int  // 0 selects DefaultExactLimit
	spilled bool // buffer released; sketch mode

	exact Series // buffered samples while n <= limit

	n        int
	mean, m2 float64 // Welford accumulators
	min, max float64

	p50, p95 p2Sketch
}

// DefaultExactLimit is the sample count up to which a Stream buffers samples
// and reports exact summaries (identical to Series). Past it, summaries come
// from the online sketches. 4096 float64s is 32 KiB — far above the paper's
// 2000-iteration cells, so default sweeps stay exact; the sketch mode is for
// the "as many iterations as you like" regime.
const DefaultExactLimit = 4096

// SetExactLimit overrides the exact/sketch switchover for this Stream. It
// must be called before the first Add; limit < 1 forces sketch mode from the
// first overflow check (the first sample still seeds min/max and sketches).
func (s *Stream) SetExactLimit(limit int) {
	if s.n == 0 {
		s.limit = limit
		if limit < 1 {
			s.limit = -1
		}
	}
}

func (s *Stream) exactLimit() int {
	if s.limit == 0 {
		return DefaultExactLimit
	}
	return s.limit
}

// Add folds one sample into the stream.
func (s *Stream) Add(v float64) {
	if s.n == 0 {
		s.min, s.max = v, v
		s.p50.init(0.5)
		s.p95.init(0.95)
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.n++
	// Welford: numerically stable single-pass mean/variance.
	d := v - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (v - s.mean)
	s.p50.add(v)
	s.p95.add(v)

	if !s.spilled {
		s.exact.Add(v)
		if s.n > s.exactLimit() {
			s.spilled = true
			s.exact = Series{} // release the buffer; sketches carry on
		}
	}
}

// AddDuration folds a duration sample in milliseconds — the unit the paper's
// figures use.
func (s *Stream) AddDuration(d time.Duration) {
	s.Add(float64(d) / float64(time.Millisecond))
}

// Len returns the number of samples folded so far.
func (s *Stream) Len() int { return s.n }

// Exact reports whether the stream is still in exact (buffered) mode.
func (s *Stream) Exact() bool { return !s.spilled }

// Mean returns the running mean.
func (s *Stream) Mean() (float64, error) {
	if s.n == 0 {
		return 0, ErrNoSamples
	}
	if !s.spilled {
		return s.exact.Mean()
	}
	return s.mean, nil
}

// StdDev returns the sample standard deviation (n-1 denominator).
func (s *Stream) StdDev() (float64, error) {
	if s.n < 2 {
		return 0, ErrNoSamples
	}
	if !s.spilled {
		return s.exact.StdDev()
	}
	return math.Sqrt(s.m2 / float64(s.n-1)), nil
}

// Summarize reports the stream's Summary: exact (identical to Series) while
// in buffered mode, sketch-backed after the switchover.
func (s *Stream) Summarize() (Summary, error) {
	if s.n == 0 {
		return Summary{}, ErrNoSamples
	}
	if !s.spilled {
		return s.exact.Summarize()
	}
	ci := 0.0
	if s.n >= 2 {
		sd := math.Sqrt(s.m2 / float64(s.n-1))
		ci = 1.96 * sd / math.Sqrt(float64(s.n))
	}
	return Summary{
		N:      s.n,
		Mean:   s.mean,
		Median: s.p50.quantile(),
		P95:    s.p95.quantile(),
		Min:    s.min,
		Max:    s.max,
		CI95:   ci,
	}, nil
}

// p2Sketch is the P² (Jain & Chlamtac 1985) single-quantile estimator: five
// markers whose heights approximate the p-quantile without storing samples.
// Until five samples arrive it holds them verbatim and reports the exact
// interpolated quantile, so tiny streams degrade gracefully.
type p2Sketch struct {
	p     float64
	count int
	q     [5]float64 // marker heights (first 5 samples verbatim until primed)
	pos   [5]float64 // marker positions
	want  [5]float64 // desired positions
	inc   [5]float64 // desired-position increments
}

func (k *p2Sketch) init(p float64) {
	*k = p2Sketch{p: p}
}

func (k *p2Sketch) add(x float64) {
	if k.count < 5 {
		k.q[k.count] = x
		k.count++
		if k.count == 5 {
			sort.Float64s(k.q[:])
			p := k.p
			k.pos = [5]float64{1, 2, 3, 4, 5}
			k.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
			k.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
		}
		return
	}
	k.count++

	// Locate the cell and clamp the extremes.
	var cell int
	switch {
	case x < k.q[0]:
		k.q[0] = x
		cell = 0
	case x >= k.q[4]:
		if x > k.q[4] {
			k.q[4] = x
		}
		cell = 3
	default:
		for cell = 0; cell < 3; cell++ {
			if x < k.q[cell+1] {
				break
			}
		}
	}
	for i := cell + 1; i < 5; i++ {
		k.pos[i]++
	}
	for i := 0; i < 5; i++ {
		k.want[i] += k.inc[i]
	}

	// Nudge interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := k.want[i] - k.pos[i]
		if (d >= 1 && k.pos[i+1]-k.pos[i] > 1) || (d <= -1 && k.pos[i-1]-k.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			if h := k.parabolic(i, sign); k.q[i-1] < h && h < k.q[i+1] {
				k.q[i] = h
			} else {
				k.q[i] = k.linear(i, sign)
			}
			k.pos[i] += sign
		}
	}
}

// parabolic is P²'s piecewise-parabolic height adjustment for marker i.
func (k *p2Sketch) parabolic(i int, sign float64) float64 {
	up := (k.pos[i] - k.pos[i-1] + sign) * (k.q[i+1] - k.q[i]) / (k.pos[i+1] - k.pos[i])
	down := (k.pos[i+1] - k.pos[i] - sign) * (k.q[i] - k.q[i-1]) / (k.pos[i] - k.pos[i-1])
	return k.q[i] + sign/(k.pos[i+1]-k.pos[i-1])*(up+down)
}

// linear is the fallback height adjustment when the parabola would cross a
// neighboring marker.
func (k *p2Sketch) linear(i int, sign float64) float64 {
	j := i + int(sign)
	return k.q[i] + sign*(k.q[j]-k.q[i])/(k.pos[j]-k.pos[i])
}

// quantile reports the current estimate: exact over the held samples while
// fewer than five have arrived, the center marker height afterwards.
func (k *p2Sketch) quantile() float64 {
	if k.count == 0 {
		return 0
	}
	if k.count < 5 {
		held := append([]float64(nil), k.q[:k.count]...)
		sort.Float64s(held)
		if len(held) == 1 {
			return held[0]
		}
		pos := k.p * float64(len(held)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		if lo == hi {
			return held[lo]
		}
		frac := pos - float64(lo)
		return held[lo]*(1-frac) + held[hi]*frac
	}
	return k.q[2]
}
