// Package metrics provides the small statistics toolkit the experiment
// harness uses to summarize latency and radio-on-time samples across
// Monte-Carlo repetitions: mean, median, arbitrary percentiles, and normal
// confidence intervals.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// Errors returned by the package.
var (
	// ErrNoSamples is returned when a statistic needs at least one sample.
	ErrNoSamples = errors.New("metrics: no samples")
	// ErrBadQuantile is returned for quantiles outside [0,1].
	ErrBadQuantile = errors.New("metrics: quantile out of range")
)

// Series accumulates float64 samples. The zero value is ready to use.
type Series struct {
	samples []float64
	sorted  bool
}

// Add appends a sample.
func (s *Series) Add(v float64) {
	s.samples = append(s.samples, v)
	s.sorted = false
}

// AddDuration appends a duration sample in milliseconds — the unit the
// paper's figures use.
func (s *Series) AddDuration(d time.Duration) {
	s.Add(float64(d) / float64(time.Millisecond))
}

// Len returns the sample count.
func (s *Series) Len() int { return len(s.samples) }

// Mean returns the arithmetic mean.
func (s *Series) Mean() (float64, error) {
	if len(s.samples) == 0 {
		return 0, ErrNoSamples
	}
	total := 0.0
	for _, v := range s.samples {
		total += v
	}
	return total / float64(len(s.samples)), nil
}

// StdDev returns the sample standard deviation (n-1 denominator).
func (s *Series) StdDev() (float64, error) {
	if len(s.samples) < 2 {
		return 0, ErrNoSamples
	}
	mean, err := s.Mean()
	if err != nil {
		return 0, err
	}
	ss := 0.0
	for _, v := range s.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(s.samples)-1)), nil
}

// Quantile returns the q-th sample quantile (linear interpolation).
func (s *Series) Quantile(q float64) (float64, error) {
	if len(s.samples) == 0 {
		return 0, ErrNoSamples
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("%w: %f", ErrBadQuantile, q)
	}
	s.ensureSorted()
	if len(s.samples) == 1 {
		return s.samples[0], nil
	}
	pos := q * float64(len(s.samples)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.samples[lo], nil
	}
	frac := pos - float64(lo)
	return s.samples[lo]*(1-frac) + s.samples[hi]*frac, nil
}

// Median returns the 50th percentile.
func (s *Series) Median() (float64, error) { return s.Quantile(0.5) }

// Min returns the smallest sample.
func (s *Series) Min() (float64, error) { return s.Quantile(0) }

// Max returns the largest sample.
func (s *Series) Max() (float64, error) { return s.Quantile(1) }

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean.
func (s *Series) CI95() (float64, error) {
	sd, err := s.StdDev()
	if err != nil {
		return 0, err
	}
	return 1.96 * sd / math.Sqrt(float64(len(s.samples))), nil
}

// Summary bundles the statistics reported in experiment tables.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Median float64 `json:"median"`
	P95    float64 `json:"p95"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	CI95   float64 `json:"ci95"`
}

// Summarize computes a Summary over the series.
func (s *Series) Summarize() (Summary, error) {
	mean, err := s.Mean()
	if err != nil {
		return Summary{}, err
	}
	median, err := s.Median()
	if err != nil {
		return Summary{}, err
	}
	p95, err := s.Quantile(0.95)
	if err != nil {
		return Summary{}, err
	}
	minV, err := s.Min()
	if err != nil {
		return Summary{}, err
	}
	maxV, err := s.Max()
	if err != nil {
		return Summary{}, err
	}
	ci := 0.0
	if s.Len() >= 2 {
		ci, err = s.CI95()
		if err != nil {
			return Summary{}, err
		}
	}
	return Summary{
		N:      s.Len(),
		Mean:   mean,
		Median: median,
		P95:    p95,
		Min:    minV,
		Max:    maxV,
		CI95:   ci,
	}, nil
}

func (s *Series) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
}

// Ratio returns a/b, the speedup/saving factor used in the paper's headline
// claims ("6× faster", "7× lesser radio-on time").
func Ratio(a, b float64) (float64, error) {
	if b == 0 {
		return 0, errors.New("metrics: ratio denominator is zero")
	}
	return a / b, nil
}
