package seckey

import (
	"fmt"
	"testing"

	"iotmpc/internal/field"
)

func BenchmarkSealShare(b *testing.B) {
	s := NewStore(MasterFromSeed(1))
	key, err := s.PairKey(1, 2)
	if err != nil {
		b.Fatal(err)
	}
	ctx := PacketContext{Round: 1, Sender: 1, Receiver: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Slot = uint32(i)
		if _, err := SealShare(key, ctx, field.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpenShare(b *testing.B) {
	s := NewStore(MasterFromSeed(1))
	key, err := s.PairKey(1, 2)
	if err != nil {
		b.Fatal(err)
	}
	ctx := PacketContext{Round: 1, Sender: 1, Receiver: 2, Slot: 9}
	sealed, err := SealShare(key, ctx, field.New(77))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OpenShare(key, ctx, sealed); err != nil {
			b.Fatal(err)
		}
	}
}

// Vector sealing benchmarks, exported to CI as BENCH_seal.json: the win to
// track is SealVector(L) staying far below L×SealShare — one cipher setup,
// one CMAC pass, and one tag regardless of L.

// benchVectorLens are the vector lengths the CI sealing bench sweeps: 1 is
// the scalar-equivalent case, 4 a typical multi-sensor reading, and 16
// shows the curve past the protocol's 14-element frame bound (seckey
// itself has no frame limit).
var benchVectorLens = []int{1, 4, 16}

func benchValues(l int) []field.Element {
	values := make([]field.Element, l)
	for i := range values {
		values[i] = field.New(uint64(i) * 0x9e3779b9)
	}
	return values
}

func BenchmarkSealVector(b *testing.B) {
	s := NewStore(MasterFromSeed(1))
	key, err := s.PairKey(1, 2)
	if err != nil {
		b.Fatal(err)
	}
	for _, l := range benchVectorLens {
		b.Run(fmt.Sprintf("L=%d", l), func(b *testing.B) {
			values := benchValues(l)
			ctx := PacketContext{Round: 1, Sender: 1, Receiver: 2}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx.Slot = uint32(i)
				if _, err := SealVector(key, ctx, values); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkOpenVector(b *testing.B) {
	s := NewStore(MasterFromSeed(1))
	key, err := s.PairKey(1, 2)
	if err != nil {
		b.Fatal(err)
	}
	for _, l := range benchVectorLens {
		b.Run(fmt.Sprintf("L=%d", l), func(b *testing.B) {
			ctx := PacketContext{Round: 1, Sender: 1, Receiver: 2, Slot: 9}
			sealed, err := SealVector(key, ctx, benchValues(l))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := OpenVector(key, ctx, l, sealed); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSealScalarTimes is the straw man SealVector replaces: sealing an
// L-element reading as L independent scalar packets (L cipher setups, L CMAC
// passes, L tags). Divide by BenchmarkSealVector at the same L for the
// per-round batching factor.
func BenchmarkSealScalarTimes(b *testing.B) {
	s := NewStore(MasterFromSeed(1))
	key, err := s.PairKey(1, 2)
	if err != nil {
		b.Fatal(err)
	}
	for _, l := range benchVectorLens {
		b.Run(fmt.Sprintf("L=%d", l), func(b *testing.B) {
			values := benchValues(l)
			ctx := PacketContext{Round: 1, Sender: 1, Receiver: 2}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for k, v := range values {
					ctx.Slot = uint32(i*len(values) + k)
					if _, err := SealShare(key, ctx, v); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkPairKeyDerivation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewStore(MasterFromSeed(uint64(i)))
		if _, err := s.PairKey(i%40, (i+1)%40+1); err != nil {
			b.Fatal(err)
		}
	}
}
