package seckey

import (
	"testing"

	"iotmpc/internal/field"
)

func BenchmarkSealShare(b *testing.B) {
	s := NewStore(MasterFromSeed(1))
	key, err := s.PairKey(1, 2)
	if err != nil {
		b.Fatal(err)
	}
	ctx := PacketContext{Round: 1, Sender: 1, Receiver: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Slot = uint32(i)
		if _, err := SealShare(key, ctx, field.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpenShare(b *testing.B) {
	s := NewStore(MasterFromSeed(1))
	key, err := s.PairKey(1, 2)
	if err != nil {
		b.Fatal(err)
	}
	ctx := PacketContext{Round: 1, Sender: 1, Receiver: 2, Slot: 9}
	sealed, err := SealShare(key, ctx, field.New(77))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OpenShare(key, ctx, sealed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPairKeyDerivation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewStore(MasterFromSeed(uint64(i)))
		if _, err := s.PairKey(i%40, (i+1)%40+1); err != nil {
			b.Fatal(err)
		}
	}
}
