package seckey

import (
	"errors"
	"testing"

	"iotmpc/internal/field"
)

// Fuzz harness for the vector open path — the one place attacker-controlled
// bytes enter the protocol stack. The invariants under fuzzing:
//
//  1. no packet may panic OpenVector — truncated, tampered, or
//     wrong-length-context packets return ErrShortPacket or ErrAuthFailed;
//  2. a packet that OpenVector accepts must be byte-identical to what
//     SealVector produces for the recovered values in the same context
//     (sealing is deterministic, so forgery of a "different" packet for
//     the same plaintext cannot slip through the truncated MIC unnoticed).
//
// CI runs this in seed-corpus mode (go test -run Fuzz), which replays the
// f.Add seeds below plus any crashers checked into testdata/fuzz as
// regression tests; local exploration uses go test -fuzz=FuzzOpenVector.

// fuzzKey fixes the key for the fuzz corpus: the adversary model is a
// network attacker without the pairwise key, so the key is not a fuzz input.
func fuzzKey() Key {
	s := NewStore(MasterFromSeed(0xF022))
	k, err := s.PairKey(1, 2)
	if err != nil {
		panic(err)
	}
	return k
}

func FuzzOpenVector(f *testing.F) {
	key := fuzzKey()
	ctx := PacketContext{Round: 7, Sender: 1, Receiver: 2, Slot: 3}
	// Valid packets at several lengths, plus classic corruptions:
	// truncation, bit flips in payload and tag, and length confusion.
	for _, l := range []int{1, 2, 4, 8, 14} {
		values := make([]field.Element, l)
		for i := range values {
			values[i] = field.New(uint64(i) * 0x9e3779b9)
		}
		sealed, err := SealVector(key, ctx, values)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(uint32(7), uint16(1), uint16(2), uint32(3), uint16(l), sealed)
		f.Add(uint32(7), uint16(1), uint16(2), uint32(3), uint16(l), sealed[:len(sealed)-1])
		f.Add(uint32(7), uint16(1), uint16(2), uint32(3), uint16(l+1), sealed)
		tampered := append([]byte(nil), sealed...)
		tampered[0] ^= 0x80
		f.Add(uint32(7), uint16(1), uint16(2), uint32(3), uint16(l), tampered)
		tagFlip := append([]byte(nil), sealed...)
		tagFlip[len(tagFlip)-1] ^= 0x01
		f.Add(uint32(7), uint16(1), uint16(2), uint32(3), uint16(l), tagFlip)
		f.Add(uint32(8), uint16(1), uint16(2), uint32(3), uint16(l), sealed) // wrong round
	}
	f.Add(uint32(0), uint16(0), uint16(0), uint32(0), uint16(0), []byte{})
	f.Add(uint32(0), uint16(0), uint16(0), uint32(0), uint16(14), []byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, round uint32, sender, receiver uint16, slot uint32, vecLen uint16, packet []byte) {
		// Keep the claimed length within what a frame could carry; the
		// explicit out-of-range rejection has its own unit test.
		l := int(vecLen % 64)
		c := PacketContext{Round: round, Sender: sender, Receiver: receiver, Slot: slot}
		values, err := OpenVector(key, c, l, packet) // must never panic
		if err != nil {
			if !errors.Is(err, ErrShortPacket) && !errors.Is(err, ErrAuthFailed) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if len(values) != l {
			t.Fatalf("accepted packet opened to %d values, want %d", len(values), l)
		}
		resealed, err := SealVector(key, c, values)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < SealedVectorSize(l); i++ {
			if packet[i] != resealed[i] {
				t.Fatalf("accepted packet byte %d = %#x differs from canonical sealing %#x",
					i, packet[i], resealed[i])
			}
		}
	})
}
