// Package seckey provides the secure-channel substrate the paper assumes is
// established "during the bootstrapping phase": pairwise AES-128 keys between
// every pair of nodes, plus authenticated encryption of share packets
// (AES-128-CTR for confidentiality, AES-CMAC for integrity — both built on
// the single AES-128 primitive the nRF52840 accelerates in hardware).
//
// Key derivation is deterministic from a network master secret, mirroring the
// common commissioning model where a network key is installed at deployment
// and per-link keys are derived rather than exchanged.
package seckey

import (
	"crypto/aes"
	"encoding/binary"
	"errors"
	"fmt"
)

// KeySize is the AES-128 key size in bytes.
const KeySize = 16

// Key is a pairwise AES-128 key.
type Key [KeySize]byte

// Errors returned by the package.
var (
	// ErrSelfPair is returned when a node asks for a key with itself.
	ErrSelfPair = errors.New("seckey: no pairwise key with self")
	// ErrBadNodeID is returned for negative node IDs.
	ErrBadNodeID = errors.New("seckey: invalid node id")
)

// Store derives and caches pairwise keys for a network commissioned with a
// shared master secret. Store is not safe for concurrent use; each simulated
// node owns its own Store (as a real node owns its key RAM).
type Store struct {
	master Key
	cache  map[pairKey]Key
}

type pairKey struct{ lo, hi int }

// NewStore creates a key store from a 16-byte master secret.
func NewStore(master Key) *Store {
	return &Store{
		master: master,
		cache:  make(map[pairKey]Key),
	}
}

// MasterFromSeed expands an arbitrary seed value into a master key; used by
// simulations to commission a whole network deterministically.
func MasterFromSeed(seed uint64) Key {
	var k Key
	binary.LittleEndian.PutUint64(k[:8], seed)
	binary.LittleEndian.PutUint64(k[8:], seed^0x9e3779b97f4a7c15)
	return k
}

// PairKey returns the AES-128 key shared by nodes a and b. Derivation is
// symmetric (PairKey(a,b) == PairKey(b,a)): the key is the AES encryption,
// under the master key, of a block encoding the ordered pair (min, max).
func (s *Store) PairKey(a, b int) (Key, error) {
	if a < 0 || b < 0 {
		return Key{}, fmt.Errorf("%w: (%d,%d)", ErrBadNodeID, a, b)
	}
	if a == b {
		return Key{}, fmt.Errorf("%w: node %d", ErrSelfPair, a)
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	ck := pairKey{lo: lo, hi: hi}
	if k, ok := s.cache[ck]; ok {
		return k, nil
	}
	block, err := aes.NewCipher(s.master[:])
	if err != nil {
		// Unreachable: master is always 16 bytes.
		return Key{}, fmt.Errorf("derive cipher: %w", err)
	}
	var in, out [aes.BlockSize]byte
	binary.LittleEndian.PutUint64(in[:8], uint64(lo))
	binary.LittleEndian.PutUint64(in[8:], uint64(hi))
	block.Encrypt(out[:], in[:])
	var k Key
	copy(k[:], out[:])
	s.cache[ck] = k
	return k, nil
}
