package seckey

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"

	"iotmpc/internal/field"
)

// Share-packet wire format (sharing phase of SSS over MiniCast):
//
//	byte 0..8L-1     ciphertext of L 8-byte little-endian share values
//	byte 8L..8L+3    truncated AES-CMAC tag (4 bytes, 802.15.4 MIC-32 style)
//
// Scalar packets (SealShare/OpenShare) are the L=1 layout; vector packets
// (SealVector/OpenVector) pack a whole shamir.ShareVector under one CTR
// keystream and ONE MIC, so an L-sensor reading costs a single tag and a
// single header instead of L of each.
//
// The nonce for CTR mode is derived from (round, sender, receiver, slot,
// vector length) so every sub-slot of every round keys a unique keystream
// without shipping a nonce on air — both endpoints know the TDMA schedule
// and the deployment's configured vector length. Because the MIC covers the
// nonce, a packet truncated or opened under the wrong vector length fails
// authentication instead of decrypting to garbage.

// TagSize is the truncated MIC length in bytes (MIC-32, as in 802.15.4
// security level 5 which pairs encryption with a 4-byte MIC).
const TagSize = 4

// SealedShareSize is the on-air size of an encrypted share value.
const SealedShareSize = 8 + TagSize

// MaxVectorElems bounds the element count of a sealed vector: the length is
// bound into the packet context as a uint16.
const MaxVectorElems = 1<<16 - 1

// SealedVectorSize is the on-air size of an encrypted share vector of l
// elements: the packed 8·l-byte payload plus one MIC for the whole vector.
func SealedVectorSize(l int) int { return 8*l + TagSize }

// Errors returned by packet sealing.
var (
	// ErrAuthFailed is returned when the MIC does not verify.
	ErrAuthFailed = errors.New("seckey: packet authentication failed")
	// ErrShortPacket is returned for truncated ciphertext.
	ErrShortPacket = errors.New("seckey: packet too short")
	// ErrBadVectorLen is returned for vector lengths outside
	// [0, MaxVectorElems] — a caller bug, not a wire-corruption condition.
	ErrBadVectorLen = errors.New("seckey: invalid vector length")
)

// PacketContext binds a sealed share to its position in the protocol so a
// ciphertext replayed in another slot or round fails authentication.
type PacketContext struct {
	Round    uint32
	Sender   uint16
	Receiver uint16
	Slot     uint32
	// VecLen is the element count of a sealed share vector. Scalar packets
	// leave it zero; SealVector/OpenVector set it themselves, which binds
	// the expected length into the nonce (and therefore the MIC).
	VecLen uint16
}

func (c PacketContext) nonce() [aes.BlockSize]byte {
	var n [aes.BlockSize]byte
	binary.LittleEndian.PutUint32(n[0:], c.Round)
	binary.LittleEndian.PutUint16(n[4:], c.Sender)
	binary.LittleEndian.PutUint16(n[6:], c.Receiver)
	binary.LittleEndian.PutUint32(n[8:], c.Slot)
	binary.LittleEndian.PutUint16(n[12:], c.VecLen)
	return n
}

// SealShare encrypts and authenticates one share value under the pairwise
// key, bound to ctx.
func SealShare(key Key, ctx PacketContext, value field.Element) ([]byte, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("seal cipher: %w", err)
	}
	var plain [8]byte
	binary.LittleEndian.PutUint64(plain[:], value.Uint64())

	nonce := ctx.nonce()
	out := make([]byte, SealedShareSize)
	ctr := cipher.NewCTR(block, nonce[:])
	ctr.XORKeyStream(out[:8], plain[:])

	mac, err := cmacOverPacket(key, ctx, out[:8])
	if err != nil {
		return nil, err
	}
	copy(out[8:], mac[:TagSize])
	return out, nil
}

// OpenShare verifies and decrypts a sealed share.
func OpenShare(key Key, ctx PacketContext, sealed []byte) (field.Element, error) {
	if len(sealed) < SealedShareSize {
		return 0, fmt.Errorf("%w: %d bytes", ErrShortPacket, len(sealed))
	}
	mac, err := cmacOverPacket(key, ctx, sealed[:8])
	if err != nil {
		return 0, err
	}
	if !tagEqual(mac[:TagSize], sealed[8:SealedShareSize]) {
		return 0, ErrAuthFailed
	}
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return 0, fmt.Errorf("open cipher: %w", err)
	}
	nonce := ctx.nonce()
	var plain [8]byte
	ctr := cipher.NewCTR(block, nonce[:])
	ctr.XORKeyStream(plain[:], sealed[:8])
	return field.New(binary.LittleEndian.Uint64(plain[:])), nil
}

// SealVector encrypts and authenticates a whole share vector under the
// pairwise key: one CTR keystream over the packed 8·L-byte payload and a
// single truncated CMAC tag for the vector. ctx.VecLen is overwritten with
// len(values), binding the length into the nonce and MIC.
func SealVector(key Key, ctx PacketContext, values []field.Element) ([]byte, error) {
	l := len(values)
	if l > MaxVectorElems {
		return nil, fmt.Errorf("%w: %d elements", ErrBadVectorLen, l)
	}
	ctx.VecLen = uint16(l)
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("seal cipher: %w", err)
	}
	plain := make([]byte, 8*l)
	for i, v := range values {
		binary.LittleEndian.PutUint64(plain[8*i:], v.Uint64())
	}
	nonce := ctx.nonce()
	out := make([]byte, SealedVectorSize(l))
	ctr := cipher.NewCTR(block, nonce[:])
	ctr.XORKeyStream(out[:8*l], plain)

	mac, err := cmacOverPacket(key, ctx, out[:8*l])
	if err != nil {
		return nil, err
	}
	copy(out[8*l:], mac[:TagSize])
	return out, nil
}

// OpenVector verifies and decrypts a sealed share vector of exactly vecLen
// elements. A truncated packet returns ErrShortPacket; a tampered packet, or
// one sealed under a different length, slot, or round, returns ErrAuthFailed.
func OpenVector(key Key, ctx PacketContext, vecLen int, sealed []byte) ([]field.Element, error) {
	if vecLen < 0 || vecLen > MaxVectorElems {
		return nil, fmt.Errorf("%w: %d elements", ErrBadVectorLen, vecLen)
	}
	ctx.VecLen = uint16(vecLen)
	ct := 8 * vecLen
	if len(sealed) < SealedVectorSize(vecLen) {
		return nil, fmt.Errorf("%w: %d bytes for %d elements", ErrShortPacket, len(sealed), vecLen)
	}
	mac, err := cmacOverPacket(key, ctx, sealed[:ct])
	if err != nil {
		return nil, err
	}
	if !tagEqual(mac[:TagSize], sealed[ct:ct+TagSize]) {
		return nil, ErrAuthFailed
	}
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("open cipher: %w", err)
	}
	nonce := ctx.nonce()
	plain := make([]byte, ct)
	ctr := cipher.NewCTR(block, nonce[:])
	ctr.XORKeyStream(plain, sealed[:ct])
	values := make([]field.Element, vecLen)
	for i := range values {
		values[i] = field.New(binary.LittleEndian.Uint64(plain[8*i:]))
	}
	return values, nil
}

// cmacOverPacket authenticates ciphertext together with the packet context
// (the associated data), so replays across slots/rounds are rejected.
func cmacOverPacket(key Key, ctx PacketContext, ct []byte) ([aes.BlockSize]byte, error) {
	nonce := ctx.nonce()
	msg := make([]byte, 0, aes.BlockSize+len(ct))
	msg = append(msg, nonce[:]...)
	msg = append(msg, ct...)
	mac, err := cmac(key, msg)
	if err != nil {
		return mac, fmt.Errorf("cmac: %w", err)
	}
	return mac, nil
}
