package seckey

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"

	"iotmpc/internal/field"
)

// Share-packet wire format (sharing phase of SSS over MiniCast):
//
//	byte 0..7   ciphertext of the 8-byte little-endian share value
//	byte 8..11  truncated AES-CMAC tag (4 bytes, 802.15.4 MIC-32 style)
//
// The nonce for CTR mode is derived from (round, sender, receiver, slot) so
// every sub-slot of every round keys a unique keystream without shipping a
// nonce on air — both endpoints know the TDMA schedule.

// TagSize is the truncated MIC length in bytes (MIC-32, as in 802.15.4
// security level 5 which pairs encryption with a 4-byte MIC).
const TagSize = 4

// SealedShareSize is the on-air size of an encrypted share value.
const SealedShareSize = 8 + TagSize

// Errors returned by packet sealing.
var (
	// ErrAuthFailed is returned when the MIC does not verify.
	ErrAuthFailed = errors.New("seckey: packet authentication failed")
	// ErrShortPacket is returned for truncated ciphertext.
	ErrShortPacket = errors.New("seckey: packet too short")
)

// PacketContext binds a sealed share to its position in the protocol so a
// ciphertext replayed in another slot or round fails authentication.
type PacketContext struct {
	Round    uint32
	Sender   uint16
	Receiver uint16
	Slot     uint32
}

func (c PacketContext) nonce() [aes.BlockSize]byte {
	var n [aes.BlockSize]byte
	binary.LittleEndian.PutUint32(n[0:], c.Round)
	binary.LittleEndian.PutUint16(n[4:], c.Sender)
	binary.LittleEndian.PutUint16(n[6:], c.Receiver)
	binary.LittleEndian.PutUint32(n[8:], c.Slot)
	return n
}

// SealShare encrypts and authenticates one share value under the pairwise
// key, bound to ctx.
func SealShare(key Key, ctx PacketContext, value field.Element) ([]byte, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("seal cipher: %w", err)
	}
	var plain [8]byte
	binary.LittleEndian.PutUint64(plain[:], value.Uint64())

	nonce := ctx.nonce()
	out := make([]byte, SealedShareSize)
	ctr := cipher.NewCTR(block, nonce[:])
	ctr.XORKeyStream(out[:8], plain[:])

	mac, err := cmacOverPacket(key, ctx, out[:8])
	if err != nil {
		return nil, err
	}
	copy(out[8:], mac[:TagSize])
	return out, nil
}

// OpenShare verifies and decrypts a sealed share.
func OpenShare(key Key, ctx PacketContext, sealed []byte) (field.Element, error) {
	if len(sealed) < SealedShareSize {
		return 0, fmt.Errorf("%w: %d bytes", ErrShortPacket, len(sealed))
	}
	mac, err := cmacOverPacket(key, ctx, sealed[:8])
	if err != nil {
		return 0, err
	}
	if !tagEqual(mac[:TagSize], sealed[8:SealedShareSize]) {
		return 0, ErrAuthFailed
	}
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return 0, fmt.Errorf("open cipher: %w", err)
	}
	nonce := ctx.nonce()
	var plain [8]byte
	ctr := cipher.NewCTR(block, nonce[:])
	ctr.XORKeyStream(plain[:], sealed[:8])
	return field.New(binary.LittleEndian.Uint64(plain[:])), nil
}

// cmacOverPacket authenticates ciphertext together with the packet context
// (the associated data), so replays across slots/rounds are rejected.
func cmacOverPacket(key Key, ctx PacketContext, ct []byte) ([aes.BlockSize]byte, error) {
	nonce := ctx.nonce()
	msg := make([]byte, 0, aes.BlockSize+len(ct))
	msg = append(msg, nonce[:]...)
	msg = append(msg, ct...)
	mac, err := cmac(key, msg)
	if err != nil {
		return mac, fmt.Errorf("cmac: %w", err)
	}
	return mac, nil
}
