package seckey

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/subtle"
)

// AES-CMAC (RFC 4493): message authentication built solely on the AES block
// cipher, matching what a constrained node with an AES peripheral would use
// instead of HMAC-SHA256.

// cmacSubkeys derives the two CMAC subkeys K1, K2 from the block cipher.
func cmacSubkeys(b cipher.Block) (k1, k2 [aes.BlockSize]byte) {
	var l [aes.BlockSize]byte
	b.Encrypt(l[:], l[:])
	k1 = dbl(l)
	k2 = dbl(k1)
	return k1, k2
}

// dbl doubles a value in GF(2^128) with the CMAC reduction constant 0x87.
func dbl(in [aes.BlockSize]byte) [aes.BlockSize]byte {
	var out [aes.BlockSize]byte
	var carry byte
	for i := aes.BlockSize - 1; i >= 0; i-- {
		out[i] = in[i]<<1 | carry
		carry = in[i] >> 7
	}
	if carry != 0 {
		out[aes.BlockSize-1] ^= 0x87
	}
	return out
}

// cmac computes the full 16-byte AES-CMAC of msg under key.
func cmac(key Key, msg []byte) ([aes.BlockSize]byte, error) {
	var mac [aes.BlockSize]byte
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return mac, err
	}
	k1, k2 := cmacSubkeys(block)

	n := len(msg) / aes.BlockSize
	rem := len(msg) % aes.BlockSize
	full := rem == 0 && len(msg) > 0

	var last [aes.BlockSize]byte
	if full {
		copy(last[:], msg[len(msg)-aes.BlockSize:])
		for i := range last {
			last[i] ^= k1[i]
		}
		n--
	} else {
		copy(last[:], msg[n*aes.BlockSize:])
		last[rem] = 0x80
		for i := range last {
			last[i] ^= k2[i]
		}
	}

	var x [aes.BlockSize]byte
	for i := 0; i < n; i++ {
		for j := 0; j < aes.BlockSize; j++ {
			x[j] ^= msg[i*aes.BlockSize+j]
		}
		block.Encrypt(x[:], x[:])
	}
	for j := 0; j < aes.BlockSize; j++ {
		x[j] ^= last[j]
	}
	block.Encrypt(mac[:], x[:])
	return mac, nil
}

// tagEqual compares MAC tags in constant time.
func tagEqual(a, b []byte) bool {
	return subtle.ConstantTimeCompare(a, b) == 1
}
