package seckey

import (
	"bytes"
	"crypto/aes"
	"encoding/hex"
	"errors"
	"testing"

	"iotmpc/internal/field"
)

func TestPairKeySymmetric(t *testing.T) {
	s := NewStore(MasterFromSeed(42))
	k1, err := s.PairKey(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := s.PairKey(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("PairKey not symmetric")
	}
}

func TestPairKeyDistinctPairs(t *testing.T) {
	s := NewStore(MasterFromSeed(42))
	seen := make(map[Key]struct{})
	for a := 0; a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			k, err := s.PairKey(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if _, dup := seen[k]; dup {
				t.Fatalf("duplicate key for pair (%d,%d)", a, b)
			}
			seen[k] = struct{}{}
		}
	}
}

func TestPairKeyAcrossStoresMatches(t *testing.T) {
	// Two nodes commissioned with the same master derive the same pair key —
	// this is what makes the "assumed shared during bootstrapping" channel work.
	a := NewStore(MasterFromSeed(9))
	b := NewStore(MasterFromSeed(9))
	ka, err := a.PairKey(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.PairKey(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Error("stores with same master disagree on pair key")
	}
}

func TestPairKeyDifferentMasters(t *testing.T) {
	a := NewStore(MasterFromSeed(1))
	b := NewStore(MasterFromSeed(2))
	ka, _ := a.PairKey(1, 2)
	kb, _ := b.PairKey(1, 2)
	if ka == kb {
		t.Error("different masters produced identical pair keys")
	}
}

func TestPairKeyErrors(t *testing.T) {
	s := NewStore(MasterFromSeed(1))
	if _, err := s.PairKey(4, 4); !errors.Is(err, ErrSelfPair) {
		t.Errorf("self pair: error = %v, want ErrSelfPair", err)
	}
	if _, err := s.PairKey(-1, 2); !errors.Is(err, ErrBadNodeID) {
		t.Errorf("negative id: error = %v, want ErrBadNodeID", err)
	}
}

func TestCMACRFC4493Vectors(t *testing.T) {
	// RFC 4493 test vectors for AES-128-CMAC.
	keyBytes, _ := hex.DecodeString("2b7e151628aed2a6abf7158809cf4f3c")
	var key Key
	copy(key[:], keyBytes)

	msg16, _ := hex.DecodeString("6bc1bee22e409f96e93d7e117393172a")
	msg40, _ := hex.DecodeString("6bc1bee22e409f96e93d7e117393172a" +
		"ae2d8a571e03ac9c9eb76fac45af8e51" + "30c81c46a35ce411")

	tests := []struct {
		name string
		msg  []byte
		want string
	}{
		{"empty", nil, "bb1d6929e95937287fa37d129b756746"},
		{"16 bytes", msg16, "070a16b46b4d4144f79bdd9dd04a287c"},
		{"40 bytes", msg40, "dfa66747de9ae63030ca32611497c827"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := cmac(key, tt.msg)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := hex.DecodeString(tt.want)
			if !bytes.Equal(got[:], want) {
				t.Errorf("cmac = %x, want %s", got, tt.want)
			}
		})
	}
}

func TestDblKnownBehavior(t *testing.T) {
	// Doubling a block with MSB clear is a plain left shift.
	var in [aes.BlockSize]byte
	in[aes.BlockSize-1] = 0x01
	out := dbl(in)
	if out[aes.BlockSize-1] != 0x02 {
		t.Errorf("dbl(...01) last byte = %#x, want 0x02", out[aes.BlockSize-1])
	}
	// With MSB set, reduction constant 0x87 folds in.
	in = [aes.BlockSize]byte{}
	in[0] = 0x80
	out = dbl(in)
	if out[aes.BlockSize-1] != 0x87 {
		t.Errorf("dbl(80...) last byte = %#x, want 0x87", out[aes.BlockSize-1])
	}
}

func TestSealOpenRoundtrip(t *testing.T) {
	s := NewStore(MasterFromSeed(7))
	key, err := s.PairKey(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	ctx := PacketContext{Round: 1, Sender: 2, Receiver: 5, Slot: 17}
	value := field.New(9999999999)
	sealed, err := SealShare(key, ctx, value)
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) != SealedShareSize {
		t.Fatalf("sealed size = %d, want %d", len(sealed), SealedShareSize)
	}
	got, err := OpenShare(key, ctx, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if got != value {
		t.Errorf("opened %v, want %v", got, value)
	}
}

func TestOpenRejectsWrongKey(t *testing.T) {
	s := NewStore(MasterFromSeed(7))
	right, _ := s.PairKey(1, 2)
	wrong, _ := s.PairKey(1, 3)
	ctx := PacketContext{Round: 1, Sender: 1, Receiver: 2, Slot: 0}
	sealed, err := SealShare(right, ctx, field.New(123))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenShare(wrong, ctx, sealed); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("wrong key: error = %v, want ErrAuthFailed", err)
	}
}

func TestOpenRejectsReplayAcrossContext(t *testing.T) {
	s := NewStore(MasterFromSeed(7))
	key, _ := s.PairKey(1, 2)
	ctx := PacketContext{Round: 5, Sender: 1, Receiver: 2, Slot: 3}
	sealed, err := SealShare(key, ctx, field.New(42))
	if err != nil {
		t.Fatal(err)
	}
	replays := []PacketContext{
		{Round: 6, Sender: 1, Receiver: 2, Slot: 3}, // next round
		{Round: 5, Sender: 1, Receiver: 2, Slot: 4}, // different slot
		{Round: 5, Sender: 2, Receiver: 1, Slot: 3}, // reflected
	}
	for i, rctx := range replays {
		if _, err := OpenShare(key, rctx, sealed); !errors.Is(err, ErrAuthFailed) {
			t.Errorf("replay %d: error = %v, want ErrAuthFailed", i, err)
		}
	}
}

func TestOpenRejectsTamperedCiphertext(t *testing.T) {
	s := NewStore(MasterFromSeed(7))
	key, _ := s.PairKey(1, 2)
	ctx := PacketContext{Round: 1, Sender: 1, Receiver: 2}
	sealed, err := SealShare(key, ctx, field.New(42))
	if err != nil {
		t.Fatal(err)
	}
	for i := range sealed {
		tampered := append([]byte(nil), sealed...)
		tampered[i] ^= 0x01
		if _, err := OpenShare(key, ctx, tampered); !errors.Is(err, ErrAuthFailed) {
			t.Errorf("tamper byte %d: error = %v, want ErrAuthFailed", i, err)
		}
	}
}

func TestOpenShortPacket(t *testing.T) {
	s := NewStore(MasterFromSeed(7))
	key, _ := s.PairKey(1, 2)
	if _, err := OpenShare(key, PacketContext{}, []byte{1, 2, 3}); !errors.Is(err, ErrShortPacket) {
		t.Errorf("error = %v, want ErrShortPacket", err)
	}
}

func TestSealOpenVectorRoundtrip(t *testing.T) {
	s := NewStore(MasterFromSeed(7))
	key, err := s.PairKey(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	ctx := PacketContext{Round: 1, Sender: 2, Receiver: 5, Slot: 17}
	for _, l := range []int{0, 1, 4, 14, 16, 100} {
		values := make([]field.Element, l)
		for i := range values {
			values[i] = field.New(uint64(i)*1000000007 + 7)
		}
		sealed, err := SealVector(key, ctx, values)
		if err != nil {
			t.Fatalf("L=%d: %v", l, err)
		}
		if len(sealed) != SealedVectorSize(l) {
			t.Fatalf("L=%d: sealed size = %d, want 8·L+TagSize = %d", l, len(sealed), SealedVectorSize(l))
		}
		got, err := OpenVector(key, ctx, l, sealed)
		if err != nil {
			t.Fatalf("L=%d: %v", l, err)
		}
		if len(got) != l {
			t.Fatalf("L=%d: opened %d values", l, len(got))
		}
		for i := range got {
			if got[i] != values[i] {
				t.Errorf("L=%d: value %d = %v, want %v", l, i, got[i], values[i])
			}
		}
	}
}

func TestOpenVectorRejectsTamper(t *testing.T) {
	s := NewStore(MasterFromSeed(7))
	key, _ := s.PairKey(1, 2)
	ctx := PacketContext{Round: 3, Sender: 1, Receiver: 2, Slot: 9}
	values := []field.Element{field.New(1), field.New(2), field.New(3), field.New(4)}
	sealed, err := SealVector(key, ctx, values)
	if err != nil {
		t.Fatal(err)
	}
	// One MIC covers the whole vector: flipping ANY bit of ANY element (or
	// of the tag) must reject the entire packet.
	for i := range sealed {
		tampered := append([]byte(nil), sealed...)
		tampered[i] ^= 0x01
		if _, err := OpenVector(key, ctx, 4, tampered); !errors.Is(err, ErrAuthFailed) {
			t.Errorf("tamper byte %d: error = %v, want ErrAuthFailed", i, err)
		}
	}
}

func TestOpenVectorRejectsWrongLengthContext(t *testing.T) {
	// The vector length is bound into the packet context: a packet sealed
	// for L elements must not open as any other length, even when the
	// ciphertext is long enough — truncation/extension attacks surface as
	// authentication failures, never as silently reshaped vectors.
	s := NewStore(MasterFromSeed(7))
	key, _ := s.PairKey(1, 2)
	ctx := PacketContext{Round: 3, Sender: 1, Receiver: 2, Slot: 9}
	values := make([]field.Element, 8)
	for i := range values {
		values[i] = field.New(uint64(i))
	}
	sealed, err := SealVector(key, ctx, values)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []int{0, 1, 4, 7} {
		if _, err := OpenVector(key, ctx, l, sealed); !errors.Is(err, ErrAuthFailed) {
			t.Errorf("open as L=%d: error = %v, want ErrAuthFailed", l, err)
		}
	}
	if _, err := OpenVector(key, ctx, 9, sealed); !errors.Is(err, ErrShortPacket) {
		t.Errorf("open as L=9: error = %v, want ErrShortPacket", err)
	}
	if _, err := OpenVector(key, ctx, 8, sealed[:len(sealed)-1]); !errors.Is(err, ErrShortPacket) {
		t.Errorf("truncated: error = %v, want ErrShortPacket", err)
	}
}

func TestOpenVectorRejectsReplayAcrossContext(t *testing.T) {
	s := NewStore(MasterFromSeed(7))
	key, _ := s.PairKey(1, 2)
	ctx := PacketContext{Round: 5, Sender: 1, Receiver: 2, Slot: 3}
	sealed, err := SealVector(key, ctx, []field.Element{field.New(42), field.New(43)})
	if err != nil {
		t.Fatal(err)
	}
	replays := []PacketContext{
		{Round: 6, Sender: 1, Receiver: 2, Slot: 3}, // next round
		{Round: 5, Sender: 1, Receiver: 2, Slot: 4}, // different slot
		{Round: 5, Sender: 2, Receiver: 1, Slot: 3}, // reflected
	}
	for i, rctx := range replays {
		if _, err := OpenVector(key, rctx, 2, sealed); !errors.Is(err, ErrAuthFailed) {
			t.Errorf("replay %d: error = %v, want ErrAuthFailed", i, err)
		}
	}
}

func TestVectorScalarDomainSeparation(t *testing.T) {
	// A scalar packet (VecLen 0 in the nonce) and a 1-element vector packet
	// are different wire objects: neither opens as the other.
	s := NewStore(MasterFromSeed(7))
	key, _ := s.PairKey(1, 2)
	ctx := PacketContext{Round: 1, Sender: 1, Receiver: 2, Slot: 5}
	scalar, err := SealShare(key, ctx, field.New(77))
	if err != nil {
		t.Fatal(err)
	}
	vector, err := SealVector(key, ctx, []field.Element{field.New(77)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenVector(key, ctx, 1, scalar); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("scalar as vector: error = %v, want ErrAuthFailed", err)
	}
	if _, err := OpenShare(key, ctx, vector); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("vector as scalar: error = %v, want ErrAuthFailed", err)
	}
}

func TestOpenVectorBadLengths(t *testing.T) {
	s := NewStore(MasterFromSeed(7))
	key, _ := s.PairKey(1, 2)
	if _, err := OpenVector(key, PacketContext{}, -1, make([]byte, 64)); !errors.Is(err, ErrBadVectorLen) {
		t.Errorf("negative: error = %v, want ErrBadVectorLen", err)
	}
	if _, err := OpenVector(key, PacketContext{}, MaxVectorElems+1, nil); !errors.Is(err, ErrBadVectorLen) {
		t.Errorf("huge: error = %v, want ErrBadVectorLen", err)
	}
	if _, err := SealVector(key, PacketContext{}, make([]field.Element, MaxVectorElems+1)); !errors.Is(err, ErrBadVectorLen) {
		t.Errorf("seal huge: error = %v, want ErrBadVectorLen", err)
	}
}

func TestCiphertextHidesValue(t *testing.T) {
	// Same value sealed in two contexts must produce different ciphertexts
	// (unique keystream per slot).
	s := NewStore(MasterFromSeed(7))
	key, _ := s.PairKey(1, 2)
	v := field.New(5)
	a, err := SealShare(key, PacketContext{Slot: 0, Sender: 1, Receiver: 2}, v)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SealShare(key, PacketContext{Slot: 1, Sender: 1, Receiver: 2}, v)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a[:8], b[:8]) {
		t.Error("identical keystream across slots")
	}
}
