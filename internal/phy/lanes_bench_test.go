package phy_test

import (
	"math/rand"
	"testing"

	"iotmpc/internal/phy"
	"iotmpc/internal/topology"
	"iotmpc/internal/trace"
)

// Bit-sliced kernel benchmarks: every variant performs the same logical work
// — 64 independent trial receptions of one concurrent transmitter set — so
// ns/op is directly ns per 64 trials and the scalar/lanes ratio is the
// bit-slicing speedup. CI exports these to BENCH_bitslice.json and gates
// Lanes64 at >= 4x over Scalar on the unit-disk tables, where certain links
// let lane masks replace per-trial draws outright. The logdist and trace
// variants ride along ungated: logdist draws per lane by construction, so
// its ratio hovers near 1x and documents the kernel's worst case.

func benchLaneTable(b *testing.B, kind string, tb topology.Topology) *phy.LinkTable {
	b.Helper()
	switch kind {
	case "unitdisk":
		u, err := phy.NewUnitDisk(phy.IdealParams(), tb.Positions, 40, 0)
		if err != nil {
			b.Fatal(err)
		}
		return u.LinkTable()
	case "logdist":
		ch, err := phy.NewLogDistance(phy.DefaultParams(), tb.Positions, 1)
		if err != nil {
			b.Fatal(err)
		}
		return ch.LinkTable()
	case "trace":
		replay, err := trace.NewChannel(phy.DefaultParams(), mixedTrace(tb.NumNodes()))
		if err != nil {
			b.Fatal(err)
		}
		return replay.LinkTable()
	default:
		b.Fatalf("unknown table kind %q", kind)
		return nil
	}
}

func benchLaneRNGs(lanes int) []*rand.Rand {
	rngs := make([]*rand.Rand, lanes)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(int64(i + 1)))
	}
	return rngs
}

// benchMask runs 64 trials per iteration in groups of `lanes` kernel calls
// (lanes=1 is the scalar reference via ReceiveConcurrentFast).
func benchMask(b *testing.B, kind string, tb topology.Topology, lanes int) {
	table := benchLaneTable(b, kind, tb)
	n := tb.NumNodes()
	txs := []int{1, 2, 5, 9}
	txLanes := []uint64{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}
	rngs := benchLaneRNGs(64)
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rx := i % n
		if lanes == 1 {
			for l := 0; l < 64; l++ {
				if table.ReceiveConcurrentFast(rx, txs, rngs[l]) {
					sink++
				}
			}
			continue
		}
		width := uint64(1)<<lanes - 1
		for g := 0; g < 64; g += lanes {
			sink += table.ReceiveConcurrentMask(rx, txs, txLanes, width, rngs[g:g+lanes])
		}
	}
	benchSink = sink
}

var benchSink uint64

func BenchmarkBitsliceScalarFlockLab(b *testing.B) { benchMask(b, "unitdisk", topology.FlockLab(), 1) }
func BenchmarkBitsliceLanes8FlockLab(b *testing.B) { benchMask(b, "unitdisk", topology.FlockLab(), 8) }
func BenchmarkBitsliceLanes64FlockLab(b *testing.B) {
	benchMask(b, "unitdisk", topology.FlockLab(), 64)
}

func BenchmarkBitsliceScalarDCube(b *testing.B)  { benchMask(b, "unitdisk", topology.DCube(), 1) }
func BenchmarkBitsliceLanes8DCube(b *testing.B)  { benchMask(b, "unitdisk", topology.DCube(), 8) }
func BenchmarkBitsliceLanes64DCube(b *testing.B) { benchMask(b, "unitdisk", topology.DCube(), 64) }

// Ungated worst/typical-case variants.

func BenchmarkBitsliceScalarLogdistFlockLab(b *testing.B) {
	benchMask(b, "logdist", topology.FlockLab(), 1)
}

func BenchmarkBitsliceLanes64LogdistFlockLab(b *testing.B) {
	benchMask(b, "logdist", topology.FlockLab(), 64)
}

func BenchmarkBitsliceScalarTraceFlockLab(b *testing.B) {
	benchMask(b, "trace", topology.FlockLab(), 1)
}

func BenchmarkBitsliceLanes64TraceFlockLab(b *testing.B) {
	benchMask(b, "trace", topology.FlockLab(), 64)
}
