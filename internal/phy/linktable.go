package phy

import (
	"math"
	"math/rand"
)

// tableMode selects how a LinkTable combines concurrent same-packet
// transmitters into one reception draw. Each mode replicates — draw for
// draw — the ReceiveConcurrentFast semantics of the backend it snapshots,
// so switching a protocol loop from the Radio interface to its table
// changes nothing about the simulated outcome, only the cost of reaching
// it.
type tableMode uint8

const (
	// tableLogDistance: best mean RSSI over the transmitters, one beating
	// draw, one fading draw, then the RSSI→PRR sigmoid (LogDistance).
	tableLogDistance tableMode = iota
	// tableBestPRR: a single Bernoulli draw on the best transmitter link
	// (UnitDisk — idealized CT, concurrency never hurts, never boosts).
	tableBestPRR
	// tableUnionPRR: a single Bernoulli draw on the union probability
	// 1 − Π(1 − PRRᵢ) of independent links (trace replay).
	tableUnionPRR
)

// LinkTable is an immutable, flat snapshot of a Radio's link model — the
// batched form of the per-link queries the flood kernel makes millions of
// times per scenario. It holds the n×n link matrices receiver-major
// (entry rx·n+tx), so a reception loop that fixes rx and scans a
// transmitter list walks one cache-resident row instead of chasing n row
// pointers, and its draw methods are direct calls with no interface
// dispatch and no error returns.
//
// The contract that makes the swap safe is exactness: for the same
// *rand.Rand state, ReceiveConcurrentFast consumes the same draws in the
// same order and returns the same outcome as the backend method it
// shadows (pinned by the equivalence tests in this package and
// internal/trace). Certain links (PRR exactly 0 or 1) keep the
// backend-wide rule of consuming no randomness.
//
// Tables are built once per Radio (backends cache them behind a
// sync.Once) and are safe for concurrent readers; indices must be valid
// node numbers — the hot path deliberately carries no range checks.
type LinkTable struct {
	n    int
	mode tableMode

	// rssi[rx*n+tx] is the mean received power at rx from tx in dBm
	// (tableLogDistance only; nil otherwise).
	rssi []float64
	// prr[rx*n+tx] is the long-run reception ratio of the link tx→rx,
	// with the diagonal forced to 0 (a node never receives itself).
	prr []float64
	// certain[rx*n+tx] reports prr exactly 0 or 1: a lone draw on the
	// link consumes no randomness.
	certain []bool

	// Frozen LogDistance draw parameters (tableLogDistance only).
	fadingSigmaDB  float64
	ctBeatingLoss  float64
	ctGainDB       float64
	sensitivityDBm float64
	prrMidpointDBm float64
	prrWidthDB     float64
	// log2[k] = math.Log2(k) for 0 <= k <= n: the CT gain per
	// transmitter count, tabulated once instead of recomputed per draw
	// (bitwise-identical — the table holds the function's own outputs).
	log2 []float64
}

// newLogDistanceTable snapshots the log-distance backend: the RSSI matrix
// (rssi[tx][rx], transposed into receiver-major order) plus the sigmoid
// and per-packet-draw parameters.
func newLogDistanceTable(params Params, rssi [][]float64) *LinkTable {
	n := len(rssi)
	t := &LinkTable{
		n:              n,
		mode:           tableLogDistance,
		rssi:           make([]float64, n*n),
		prr:            make([]float64, n*n),
		certain:        make([]bool, n*n),
		fadingSigmaDB:  params.FadingSigmaDB,
		ctBeatingLoss:  params.CTBeatingLoss,
		ctGainDB:       params.CTGainDB,
		sensitivityDBm: params.SensitivityDBm,
		prrMidpointDBm: params.PRRMidpointDBm,
		prrWidthDB:     params.PRRWidthDB,
	}
	for tx := 0; tx < n; tx++ {
		for rx := 0; rx < n; rx++ {
			i := rx*n + tx
			t.rssi[i] = rssi[tx][rx]
			t.prr[i] = t.prrFromRSSI(rssi[tx][rx])
			t.certain[i] = t.prr[i] <= 0 || t.prr[i] >= 1
		}
	}
	t.log2 = make([]float64, n+1)
	for k := 1; k <= n; k++ {
		t.log2[k] = math.Log2(float64(k))
	}
	return t
}

// prrTable builds a PRR-only table; prr is [tx][rx] and is transposed,
// with the diagonal forced to 0.
func prrTable(mode tableMode, prr [][]float64) *LinkTable {
	n := len(prr)
	t := &LinkTable{
		n:       n,
		mode:    mode,
		prr:     make([]float64, n*n),
		certain: make([]bool, n*n),
	}
	for tx := 0; tx < n; tx++ {
		for rx := 0; rx < n; rx++ {
			p := prr[tx][rx]
			if tx == rx {
				p = 0
			}
			i := rx*n + tx
			t.prr[i] = p
			t.certain[i] = p <= 0 || p >= 1
		}
	}
	return t
}

// BestPRRTable builds a table whose concurrent receptions draw once on
// the best transmitter link — the UnitDisk semantics. prr is indexed
// [tx][rx]; the diagonal is forced to 0.
func BestPRRTable(prr [][]float64) *LinkTable { return prrTable(tableBestPRR, prr) }

// UnionPRRTable builds a table whose concurrent receptions draw once on
// the union probability of independent links — the trace-replay
// semantics. prr is indexed [tx][rx]; the diagonal is forced to 0.
func UnionPRRTable(prr [][]float64) *LinkTable { return prrTable(tableUnionPRR, prr) }

// NumNodes returns the number of nodes in the snapshot.
func (t *LinkTable) NumNodes() int { return t.n }

// PRR returns the long-run reception ratio of the directed link tx→rx —
// the same value the snapshotted Radio's PRR reports, without the error
// return.
func (t *LinkTable) PRR(tx, rx int) float64 { return t.prr[rx*t.n+tx] }

// Certain reports whether the link tx→rx has PRR exactly 0 or 1, so a
// lone reception draw on it consumes no randomness.
func (t *LinkTable) Certain(tx, rx int) bool { return t.certain[rx*t.n+tx] }

func (t *LinkTable) prrFromRSSI(rssi float64) float64 {
	if rssi < t.sensitivityDBm {
		return 0
	}
	return 1 / (1 + math.Exp(-(rssi-t.prrMidpointDBm)/t.prrWidthDB))
}

// ReceiveConcurrentFast draws one reception attempt at rx when every node
// in transmitters sends the same packet in the same synchronized slot. It
// is draw-for-draw identical to the snapshotted backend's
// ReceiveConcurrentFast: same RNG consumption order, same outcome, at
// table-lookup cost.
func (t *LinkTable) ReceiveConcurrentFast(rx int, transmitters []int, rng *rand.Rand) bool {
	if len(transmitters) == 0 {
		return false
	}
	row := t.prr[rx*t.n : (rx+1)*t.n]
	switch t.mode {
	case tableLogDistance:
		rssiRow := t.rssi[rx*t.n : (rx+1)*t.n]
		best := math.Inf(-1)
		for _, tx := range transmitters {
			if tx == rx {
				return false // a transmitting node cannot receive in the same slot
			}
			if r := rssiRow[tx]; r > best {
				best = r
			}
		}
		if len(transmitters) >= 2 && rng.Float64() < t.ctBeatingLoss {
			return false // beating corrupted the superposition
		}
		var log2Count float64
		if len(transmitters) < len(t.log2) {
			log2Count = t.log2[len(transmitters)]
		} else { // defensive: a caller-supplied list with duplicates
			log2Count = math.Log2(float64(len(transmitters)))
		}
		faded := best + rng.NormFloat64()*t.fadingSigmaDB + t.ctGainDB*log2Count
		return rng.Float64() < t.prrFromRSSI(faded)
	case tableBestPRR:
		best := 0.0
		for _, tx := range transmitters {
			if tx == rx {
				return false
			}
			if p := row[tx]; p > best {
				best = p
			}
		}
		return Draw(best, rng)
	default: // tableUnionPRR
		miss := 1.0
		for _, tx := range transmitters {
			if tx == rx {
				return false
			}
			miss *= 1 - row[tx]
		}
		return Draw(1-miss, rng)
	}
}

// HopDistancesInto fills dist (length NumNodes) with the minimum hop
// count from src to every node over links with PRR >= threshold;
// unreachable nodes get -1. It produces exactly the values of the
// package-level HopDistances over the snapshotted Radio, with no
// allocation: the caller owns dist (typically arena-borrowed).
func (t *LinkTable) HopDistancesInto(dist []int, src int, threshold float64) {
	n := t.n
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	// Level-synchronous expansion: pass `level` promotes every unreached
	// node adjacent to a level-`level` node. Hop distances are unique, so
	// this matches the BFS the Radio-generic query runs.
	for level := 0; ; level++ {
		advanced := false
		for u := 0; u < n; u++ {
			if dist[u] != level {
				continue
			}
			for v := 0; v < n; v++ {
				if v == u || dist[v] >= 0 {
					continue
				}
				if t.prr[v*n+u] >= threshold {
					dist[v] = level + 1
					advanced = true
				}
			}
		}
		if !advanced {
			return
		}
	}
}

// HopDistances is HopDistancesInto with a freshly allocated result.
func (t *LinkTable) HopDistances(src int, threshold float64) []int {
	dist := make([]int, t.n)
	t.HopDistancesInto(dist, src, threshold)
	return dist
}
