// Package phy models the physical layer of an nRF52840-class IoT radio
// running IEEE 802.15.4 at 250 kbit/s — the platform the paper evaluates on.
// It provides:
//
//   - frame airtime computation (the unit everything in a TDMA chain is
//     measured in),
//   - the Radio interface — the swappable radio backend every protocol
//     layer runs on — with two implementations here: LogDistance (the
//     log-distance path-loss link model with deterministic per-link
//     shadowing and per-packet fading the paper evaluates under) and
//     UnitDisk (idealized in-radius reception for exact property tests);
//     internal/trace adds a third that replays recorded PRR matrices,
//   - a reception model for concurrent transmissions (the constructive
//     interference / capture effect that makes Glossy-style CT work),
//   - radio current figures for converting radio-on time into charge.
//
// The model intentionally computes latency and radio-on time from first
// principles (bytes × bitrate × slots × retransmissions), so the figures the
// benchmarks report emerge from the protocol structure rather than from
// constants copied out of the paper.
package phy

import (
	"errors"
	"fmt"
	"time"
)

// Errors returned by the package.
var (
	// ErrPayloadTooLarge is returned when a frame exceeds the 802.15.4 PSDU.
	ErrPayloadTooLarge = errors.New("phy: payload exceeds maximum PSDU")
	// ErrBadParams is returned for non-physical parameter values.
	ErrBadParams = errors.New("phy: invalid parameters")
)

// MaxPSDU is the maximum 802.15.4 PHY service data unit in bytes.
const MaxPSDU = 127

// Params collects every tunable of the PHY model. Zero value is not usable;
// start from DefaultParams.
type Params struct {
	// BitrateBps is the on-air bitrate (802.15.4 @ 2.4 GHz: 250 kbit/s).
	BitrateBps int
	// PHYOverheadBytes counts preamble (4) + SFD (1) + PHR (1).
	PHYOverheadBytes int
	// TxPowerDBm is the transmit power (nRF52840 default 0 dBm).
	TxPowerDBm float64
	// RefLossDB is the path loss at 1 m (2.4 GHz free space ≈ 40 dB).
	RefLossDB float64
	// PathLossExponent is the log-distance exponent (indoor ≈ 3.0).
	PathLossExponent float64
	// ShadowingSigmaDB is the per-link log-normal shadowing deviation,
	// sampled once per link (static environment).
	ShadowingSigmaDB float64
	// FadingSigmaDB is the per-packet fading deviation.
	FadingSigmaDB float64
	// SensitivityDBm is the receiver sensitivity floor.
	SensitivityDBm float64
	// PRRMidpointDBm is the RSSI at which packet reception is 50%.
	PRRMidpointDBm float64
	// PRRWidthDB controls the steepness of the RSSI→PRR sigmoid.
	PRRWidthDB float64
	// CTGainDB is the power gain credited per doubling of synchronized
	// transmitters of the same packet (constructive interference).
	CTGainDB float64
	// CTBeatingLoss is the probability that a slot with two or more
	// concurrent transmitters is corrupted by beating (carrier frequency
	// offsets periodically cancel the superimposed signals — the known
	// reliability ceiling of CT with IEEE 802.15.4 radios).
	CTBeatingLoss float64
	// CaptureThresholdDB is the power margin the strongest of several
	// different packets needs over the rest to be captured.
	CaptureThresholdDB float64
	// InterferenceBurstProb is the probability that ambient 2.4 GHz
	// interference (WiFi/Bluetooth bursts, which both FlockLab and D-Cube
	// document) blocks a node's receiver for the duration of one TDMA phase.
	// Bursts last tens of milliseconds — chain-transmission scale — which is
	// why they are drawn per phase rather than per slot.
	InterferenceBurstProb float64
	// SlotGuard is the software/turnaround gap between consecutive
	// sub-slots in a TDMA chain.
	SlotGuard time.Duration
	// TxCurrentMA and RxCurrentMA convert radio-on time to charge
	// (nRF52840 at 0 dBm with DC/DC regulator).
	TxCurrentMA float64
	RxCurrentMA float64
}

// DefaultParams returns the nRF52840/802.15.4 parameterization used by all
// experiments unless overridden.
func DefaultParams() Params {
	return Params{
		BitrateBps:            250_000,
		PHYOverheadBytes:      6,
		TxPowerDBm:            0,
		RefLossDB:             40,
		PathLossExponent:      3.0,
		ShadowingSigmaDB:      2.5,
		FadingSigmaDB:         2.5,
		SensitivityDBm:        -100,
		PRRMidpointDBm:        -93,
		PRRWidthDB:            2.5,
		CTGainDB:              1.2,
		CTBeatingLoss:         0.15,
		CaptureThresholdDB:    3.0,
		InterferenceBurstProb: 0.2,
		SlotGuard:             100 * time.Microsecond,
		TxCurrentMA:           6.4,
		RxCurrentMA:           6.2,
	}
}

// Validate rejects non-physical parameter combinations early, so protocol
// code never has to second-guess the model.
func (p Params) Validate() error {
	switch {
	case p.BitrateBps <= 0:
		return fmt.Errorf("%w: bitrate %d", ErrBadParams, p.BitrateBps)
	case p.PHYOverheadBytes < 0:
		return fmt.Errorf("%w: negative PHY overhead", ErrBadParams)
	case p.PathLossExponent <= 0:
		return fmt.Errorf("%w: path-loss exponent %f", ErrBadParams, p.PathLossExponent)
	case p.PRRWidthDB <= 0:
		return fmt.Errorf("%w: PRR width %f", ErrBadParams, p.PRRWidthDB)
	case p.CTBeatingLoss < 0 || p.CTBeatingLoss >= 1:
		return fmt.Errorf("%w: CT beating loss %f", ErrBadParams, p.CTBeatingLoss)
	case p.InterferenceBurstProb < 0 || p.InterferenceBurstProb >= 1:
		return fmt.Errorf("%w: interference burst prob %f", ErrBadParams, p.InterferenceBurstProb)
	case p.SlotGuard < 0:
		return fmt.Errorf("%w: negative slot guard", ErrBadParams)
	}
	return nil
}

// Airtime returns the on-air duration of a frame with the given PSDU payload
// size in bytes.
func (p Params) Airtime(payloadBytes int) (time.Duration, error) {
	if payloadBytes < 0 || payloadBytes > MaxPSDU {
		return 0, fmt.Errorf("%w: %d bytes", ErrPayloadTooLarge, payloadBytes)
	}
	totalBits := (p.PHYOverheadBytes + payloadBytes) * 8
	ns := int64(totalBits) * int64(time.Second) / int64(p.BitrateBps)
	return time.Duration(ns), nil
}

// SlotDuration is the TDMA sub-slot length for a frame of the given payload:
// airtime plus the guard interval.
func (p Params) SlotDuration(payloadBytes int) (time.Duration, error) {
	air, err := p.Airtime(payloadBytes)
	if err != nil {
		return 0, err
	}
	return air + p.SlotGuard, nil
}

// ChargeMicroCoulombs converts radio-on time split into tx/rx portions into
// electric charge, the energy-proxy metric papers in this space report
// alongside radio-on time.
func (p Params) ChargeMicroCoulombs(tx, rx time.Duration) float64 {
	return p.TxCurrentMA*tx.Seconds()*1e3 + p.RxCurrentMA*rx.Seconds()*1e3
}
