package phy

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// UnitDisk is the idealized radio backend: a transmission is received with
// probability 1 inside the communication radius and 0 outside, with an
// optional "gray zone" ring in which the reception probability ramps
// linearly from 1 down to 0. With a zero-width gray zone every reception
// draw is deterministic and consumes no randomness, which is what exact
// protocol-invariant tests (flooding coverage, component isolation) assert
// against; the gray zone restores a controlled amount of stochastic loss
// when a test wants "almost ideal".
//
// UnitDisk intentionally has no fading, no constructive-interference gain
// and no beating loss: concurrent same-packet transmissions succeed iff the
// best incoming link would, and colliding different packets are never
// captured unless exactly one transmitter is in range. Note that the
// ambient-interference burst model (Params.InterferenceBurstProb) is drawn
// by the protocol layers, not the backend — pass IdealParams (or zero the
// field) to make UnitDisk executions fully deterministic.
type UnitDisk struct {
	params    Params
	positions []Position
	radius    float64
	gray      float64

	tableOnce sync.Once
	table     *LinkTable
}

var _ Radio = (*UnitDisk)(nil)

// NewUnitDisk builds the idealized environment. radius is the guaranteed
// communication range in meters; grayWidth (>= 0) is the width of the
// probabilistic ring beyond it.
func NewUnitDisk(params Params, positions []Position, radius, grayWidth float64) (*UnitDisk, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(positions) == 0 {
		return nil, ErrNoNodes
	}
	if radius <= 0 || math.IsNaN(radius) {
		return nil, fmt.Errorf("%w: unit-disk radius %f", ErrBadParams, radius)
	}
	if grayWidth < 0 || math.IsNaN(grayWidth) {
		return nil, fmt.Errorf("%w: gray-zone width %f", ErrBadParams, grayWidth)
	}
	pos := make([]Position, len(positions))
	copy(pos, positions)
	return &UnitDisk{params: params, positions: pos, radius: radius, gray: grayWidth}, nil
}

// UnitDiskRadius derives the natural disk radius for a parameterization: the
// distance at which the log-distance model's mean RSSI crosses the 50%-PRR
// midpoint. It makes unit-disk and log-distance runs of the same deployment
// comparable: links the statistical model rates "good" are inside the disk.
func UnitDiskRadius(params Params) float64 {
	return math.Pow(10, (params.TxPowerDBm-params.RefLossDB-params.PRRMidpointDBm)/
		(10*params.PathLossExponent))
}

// UnitDiskFactory returns a Factory building UnitDisk backends. radius <= 0
// selects UnitDiskRadius(params); grayWidth < 0 is rejected at build time.
// The seed is ignored — the model has no frozen randomness.
func UnitDiskFactory(radius, grayWidth float64) Factory {
	return func(params Params, positions []Position, _ int64) (Radio, error) {
		r := radius
		if r <= 0 {
			r = UnitDiskRadius(params)
		}
		return NewUnitDisk(params, positions, r, grayWidth)
	}
}

// NumNodes returns the number of nodes in the environment.
func (u *UnitDisk) NumNodes() int { return len(u.positions) }

// Params returns the PHY parameterization of the backend.
func (u *UnitDisk) Params() Params { return u.params }

// Radius returns the guaranteed communication range in meters.
func (u *UnitDisk) Radius() float64 { return u.radius }

// GrayWidth returns the width of the probabilistic ring beyond the radius.
func (u *UnitDisk) GrayWidth() float64 { return u.gray }

// MeanRSSI synthesizes a deterministic received power from the log-distance
// path-loss law without shadowing — informational only; reception is
// governed purely by the disk geometry.
func (u *UnitDisk) MeanRSSI(tx, rx int) (float64, error) {
	if err := checkIndex(tx, rx, len(u.positions)); err != nil {
		return 0, err
	}
	if tx == rx {
		return math.Inf(-1), nil
	}
	d := u.positions[tx].Distance(u.positions[rx])
	if d < 0.1 {
		d = 0.1
	}
	return u.params.TxPowerDBm - u.params.RefLossDB -
		10*u.params.PathLossExponent*math.Log10(d), nil
}

// PRR returns 1 inside the radius, 0 beyond the gray zone, and the linear
// ramp in between. A node never receives itself.
func (u *UnitDisk) PRR(tx, rx int) (float64, error) {
	if err := checkIndex(tx, rx, len(u.positions)); err != nil {
		return 0, err
	}
	return u.prr(tx, rx), nil
}

func (u *UnitDisk) prr(tx, rx int) float64 {
	if tx == rx {
		return 0
	}
	d := u.positions[tx].Distance(u.positions[rx])
	switch {
	case d <= u.radius:
		return 1
	case u.gray > 0 && d < u.radius+u.gray:
		return (u.radius + u.gray - d) / u.gray
	default:
		return 0
	}
}

// ReceiveSingle draws one reception attempt for a lone transmission tx→rx.
func (u *UnitDisk) ReceiveSingle(tx, rx int, rng *rand.Rand) (bool, error) {
	if err := checkIndex(tx, rx, len(u.positions)); err != nil {
		return false, err
	}
	return Draw(u.prr(tx, rx), rng), nil
}

// ReceiveConcurrent draws one reception attempt at rx for synchronized
// same-packet transmitters: success iff the best incoming link succeeds
// (idealized CT — concurrency never hurts, never boosts).
func (u *UnitDisk) ReceiveConcurrent(rx int, transmitters []int, rng *rand.Rand) (bool, error) {
	return u.receiveBest(rx, transmitters, rng)
}

// ReceiveConcurrentFast is identical to ReceiveConcurrent: the ideal model
// has no per-transmitter fading to shortcut.
func (u *UnitDisk) ReceiveConcurrentFast(rx int, transmitters []int, rng *rand.Rand) (bool, error) {
	return u.receiveBest(rx, transmitters, rng)
}

func (u *UnitDisk) receiveBest(rx int, transmitters []int, rng *rand.Rand) (bool, error) {
	if len(transmitters) == 0 {
		return false, nil
	}
	best := 0.0
	for _, tx := range transmitters {
		if err := checkIndex(tx, rx, len(u.positions)); err != nil {
			return false, err
		}
		if tx == rx {
			return false, nil // a transmitting node cannot receive in the same slot
		}
		if p := u.prr(tx, rx); p > best {
			best = p
		}
	}
	return Draw(best, rng), nil
}

// LinkTable returns the flat snapshot of the disk geometry: every pairwise
// PRR evaluated once, so flood loops look links up instead of recomputing
// Euclidean distances per draw. Built lazily once.
func (u *UnitDisk) LinkTable() *LinkTable {
	u.tableOnce.Do(func() {
		n := len(u.positions)
		prr := make([][]float64, n)
		for tx := 0; tx < n; tx++ {
			prr[tx] = make([]float64, n)
			for rx := 0; rx < n; rx++ {
				prr[tx][rx] = u.prr(tx, rx)
			}
		}
		u.table = BestPRRTable(prr)
	})
	return u.table
}

// ReceiveCapture implements the idealized collision rule: a packet is
// captured iff exactly one transmitter is within reception range (PRR > 0)
// of rx and its link draw succeeds; two or more in-range transmitters of
// different packets always destroy each other (equal idealized powers leave
// no capture margin).
func (u *UnitDisk) ReceiveCapture(rx int, transmitters []int, rng *rand.Rand) (int, error) {
	if len(transmitters) == 0 {
		return -1, nil
	}
	inRange, p := -1, 0.0
	for i, tx := range transmitters {
		if err := checkIndex(tx, rx, len(u.positions)); err != nil {
			return -1, err
		}
		if tx == rx {
			return -1, nil
		}
		if q := u.prr(tx, rx); q > 0 {
			if inRange >= 0 {
				return -1, nil // collision of two audible packets: no capture
			}
			inRange, p = i, q
		}
	}
	if inRange >= 0 && Draw(p, rng) {
		return inRange, nil
	}
	return -1, nil
}
