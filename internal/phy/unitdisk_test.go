package phy

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// lineDisk builds an n-node line with the given spacing wrapped in a hard
// unit disk of the given radius.
func lineDisk(t *testing.T, n int, spacing, radius, gray float64) *UnitDisk {
	t.Helper()
	pos := make([]Position, n)
	for i := range pos {
		pos[i] = Position{X: float64(i) * spacing}
	}
	u, err := NewUnitDisk(IdealParams(), pos, radius, gray)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestUnitDiskPRRExact(t *testing.T) {
	// Spacing 10, radius 15: only adjacent nodes are connected, exactly.
	u := lineDisk(t, 5, 10, 15, 0)
	for tx := 0; tx < 5; tx++ {
		for rx := 0; rx < 5; rx++ {
			prr, err := u.PRR(tx, rx)
			if err != nil {
				t.Fatal(err)
			}
			want := 0.0
			if tx != rx && abs(tx-rx) == 1 {
				want = 1.0
			}
			if prr != want {
				t.Fatalf("PRR(%d,%d) = %v, want %v", tx, rx, prr, want)
			}
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestUnitDiskGrayZoneRamp(t *testing.T) {
	// Radius 10, gray 10: distance 10 → 1, 15 → 0.5, 20+ → 0.
	pos := []Position{{X: 0}, {X: 10}, {X: 15}, {X: 20}, {X: 25}}
	u, err := NewUnitDisk(IdealParams(), pos, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range map[int]float64{1: 1, 2: 0.5, 3: 0, 4: 0} {
		prr, err := u.PRR(0, i)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(prr-want) > 1e-12 {
			t.Fatalf("PRR(0,%d) = %v, want %v", i, prr, want)
		}
	}
	// The ramp is monotone non-increasing in distance.
	prev := 1.1
	for d := 0.0; d <= 25; d += 0.5 {
		u2, err := NewUnitDisk(IdealParams(), []Position{{}, {X: d}}, 10, 10)
		if err != nil {
			t.Fatal(err)
		}
		prr, err := u2.PRR(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if prr > prev {
			t.Fatalf("PRR not monotone at distance %v: %v > %v", d, prr, prev)
		}
		prev = prr
	}
}

func TestUnitDiskSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pos := make([]Position, 12)
	for i := range pos {
		pos[i] = Position{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	u, err := NewUnitDisk(IdealParams(), pos, 30, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pos {
		for j := range pos {
			a, _ := u.PRR(i, j)
			b, _ := u.PRR(j, i)
			if a != b {
				t.Fatalf("asymmetric PRR(%d,%d)=%v vs %v", i, j, a, b)
			}
		}
	}
}

// TestUnitDiskHardDiskConsumesNoRandomness passes a nil RNG: every certain
// outcome (PRR 0 or 1) must be decided without a draw, so a hard disk is
// fully deterministic.
func TestUnitDiskHardDiskConsumesNoRandomness(t *testing.T) {
	u := lineDisk(t, 4, 10, 15, 0)
	ok, err := u.ReceiveSingle(0, 1, nil)
	if err != nil || !ok {
		t.Fatalf("in-range single reception: %v %v", ok, err)
	}
	ok, err = u.ReceiveSingle(0, 3, nil)
	if err != nil || ok {
		t.Fatalf("out-of-range single reception: %v %v", ok, err)
	}
	ok, err = u.ReceiveConcurrentFast(2, []int{1, 3}, nil)
	if err != nil || !ok {
		t.Fatalf("concurrent in-range reception: %v %v", ok, err)
	}
	ok, err = u.ReceiveConcurrent(0, []int{2, 3}, nil)
	if err != nil || ok {
		t.Fatalf("concurrent out-of-range reception: %v %v", ok, err)
	}
	got, err := u.ReceiveCapture(0, []int{1}, nil)
	if err != nil || got != 0 {
		t.Fatalf("single-transmitter capture: %v %v", got, err)
	}
}

func TestUnitDiskCaptureCollision(t *testing.T) {
	// Nodes 1 and 2 are both in range of 0 with different packets: the
	// idealized model never captures.
	u := lineDisk(t, 3, 10, 25, 0)
	got, err := u.ReceiveCapture(0, []int{1, 2}, nil)
	if err != nil || got != -1 {
		t.Fatalf("two audible packets captured: %v %v", got, err)
	}
	// Node 3 of a longer line is out of range of 0; only node 1 is audible.
	u = lineDisk(t, 4, 10, 15, 0)
	got, err = u.ReceiveCapture(0, []int{1, 3}, nil)
	if err != nil || got != 0 {
		t.Fatalf("lone audible packet not captured: %v %v", got, err)
	}
}

func TestUnitDiskGraphQueries(t *testing.T) {
	// Adjacent-only line: hop distance from 0 is exactly the index.
	u := lineDisk(t, 6, 10, 15, 0)
	dist, err := HopDistances(u, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range dist {
		if d != i {
			t.Fatalf("hop distance of node %d = %d, want %d", i, d, i)
		}
	}
	diam, connected, err := Diameter(u, 0.5)
	if err != nil || !connected || diam != 5 {
		t.Fatalf("diameter %d connected=%v err=%v, want 5 true nil", diam, connected, err)
	}
	nbrs, err := Neighbors(u, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != 2 || nbrs[0] != 1 || nbrs[1] != 3 {
		t.Fatalf("neighbors of 2 = %v, want [1 3]", nbrs)
	}
}

func TestUnitDiskValidation(t *testing.T) {
	pos := []Position{{}, {X: 1}}
	if _, err := NewUnitDisk(IdealParams(), nil, 10, 0); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("no nodes: %v", err)
	}
	if _, err := NewUnitDisk(IdealParams(), pos, 0, 0); !errors.Is(err, ErrBadParams) {
		t.Fatalf("zero radius: %v", err)
	}
	if _, err := NewUnitDisk(IdealParams(), pos, -5, 0); !errors.Is(err, ErrBadParams) {
		t.Fatalf("negative radius: %v", err)
	}
	if _, err := NewUnitDisk(IdealParams(), pos, 10, -1); !errors.Is(err, ErrBadParams) {
		t.Fatalf("negative gray width: %v", err)
	}
	u, err := NewUnitDisk(IdealParams(), pos, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.PRR(0, 7); !errors.Is(err, ErrNodeIndex) {
		t.Fatalf("out-of-range index: %v", err)
	}
	if _, err := u.ReceiveSingle(-1, 0, nil); !errors.Is(err, ErrNodeIndex) {
		t.Fatalf("negative index: %v", err)
	}
}

func TestUnitDiskFactoryDerivesRadius(t *testing.T) {
	params := IdealParams()
	want := UnitDiskRadius(params)
	if want <= 0 {
		t.Fatalf("derived radius %v", want)
	}
	r, err := UnitDiskFactory(0, 0)(params, []Position{{}, {X: want / 2}}, 99)
	if err != nil {
		t.Fatal(err)
	}
	u := r.(*UnitDisk)
	if u.Radius() != want {
		t.Fatalf("factory radius %v, want derived %v", u.Radius(), want)
	}
	// The derived radius is where the log-distance mean RSSI crosses the
	// 50%-PRR midpoint.
	rssi := params.TxPowerDBm - params.RefLossDB -
		10*params.PathLossExponent*math.Log10(want)
	if math.Abs(rssi-params.PRRMidpointDBm) > 1e-9 {
		t.Fatalf("RSSI at derived radius = %v, want midpoint %v", rssi, params.PRRMidpointDBm)
	}
}

// TestRadioConformance exercises shared Radio semantics across all phy
// backends: self-reception never succeeds, transmitting nodes cannot
// receive, and the PRR diagonal is 0.
func TestRadioConformance(t *testing.T) {
	pos := []Position{{X: 0}, {X: 10}, {X: 20}}
	ld, err := NewLogDistance(DefaultParams(), pos, 1)
	if err != nil {
		t.Fatal(err)
	}
	ud, err := NewUnitDisk(IdealParams(), pos, 15, 5)
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]Radio{"logdist": ld, "unitdisk": ud} {
		rng := rand.New(rand.NewSource(3))
		if n := r.NumNodes(); n != 3 {
			t.Fatalf("%s: NumNodes %d", name, n)
		}
		if prr, err := r.PRR(1, 1); err != nil || prr != 0 {
			t.Fatalf("%s: self PRR %v %v", name, prr, err)
		}
		if ok, err := r.ReceiveConcurrentFast(1, []int{1, 0}, rng); err != nil || ok {
			t.Fatalf("%s: transmitter received its own slot: %v %v", name, ok, err)
		}
		if ok, err := r.ReceiveConcurrent(0, nil, rng); err != nil || ok {
			t.Fatalf("%s: reception with no transmitters: %v %v", name, ok, err)
		}
	}
}
