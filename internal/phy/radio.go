package phy

import "math/rand"

// Radio is the pluggable radio backend every protocol layer runs on. It
// captures exactly what consumers use: the static link statistics (PRR,
// mean RSSI), per-packet reception draws driven by an injected *rand.Rand
// (so trials stay reproducible), and the PHY parameterization that fixes
// frame airtimes and radio currents.
//
// Three backends ship with the repository:
//
//   - LogDistance (this package) — the statistical model the paper's
//     evaluation uses (log-distance path loss, frozen shadowing, per-packet
//     fading); NewChannel builds it.
//   - UnitDisk (this package) — idealized reception inside a radius, zero
//     outside, with an optional gray zone; deterministic where PRR is 0 or
//     1, which is what exact protocol-invariant tests need.
//   - trace.Channel (internal/trace) — replays a recorded per-link PRR
//     matrix loaded from CSV/JSON (e.g. a testbed link-quality snapshot).
//
// Connectivity-graph queries (Neighbors, HopDistances, Diameter) are
// package-level functions over any Radio, derived from PRR, so backends
// only implement the link model.
type Radio interface {
	// NumNodes returns the number of nodes in the environment.
	NumNodes() int
	// Params returns the PHY parameterization (airtimes, currents, guard).
	Params() Params
	// MeanRSSI returns the average received power at rx for a transmission
	// from tx, in dBm. Backends without a physical power model synthesize a
	// value consistent with their PRR (it is informational: protocol code
	// keys off PRR and reception draws).
	MeanRSSI(tx, rx int) (float64, error)
	// PRR returns the long-run packet reception ratio of the directed link
	// tx→rx.
	PRR(tx, rx int) (float64, error)
	// ReceiveSingle draws one reception attempt for a lone transmission
	// tx→rx.
	ReceiveSingle(tx, rx int, rng *rand.Rand) (bool, error)
	// ReceiveConcurrent draws one reception attempt at rx when every node in
	// transmitters sends the SAME packet in the same synchronized slot (the
	// Glossy/MiniCast constructive-interference situation).
	ReceiveConcurrent(rx int, transmitters []int, rng *rand.Rand) (bool, error)
	// ReceiveConcurrentFast is the hot-path variant of ReceiveConcurrent
	// whose cost is independent of the transmitter count; the TDMA chain
	// simulation draws millions of these per round.
	ReceiveConcurrentFast(rx int, transmitters []int, rng *rand.Rand) (bool, error)
	// ReceiveCapture draws a reception attempt at rx when the transmitters
	// carry DIFFERENT packets (a collision); it returns the index into
	// transmitters of the captured sender, or -1.
	ReceiveCapture(rx int, transmitters []int, rng *rand.Rand) (int, error)
	// LinkTable returns the backend's flat link snapshot — the batched
	// form of the queries above that the flood kernel runs on. The table's
	// ReceiveConcurrentFast is draw-for-draw identical to the method above
	// (same RNG consumption, same outcomes) at table-lookup cost. Backends
	// build the snapshot lazily once and return the same table thereafter;
	// it is safe for concurrent readers.
	LinkTable() *LinkTable
}

// Factory builds a Radio over node positions. It is the hook that makes the
// backend a first-class scenario axis: protocol configurations carry a
// Factory (nil selecting LogDistanceFactory), and the experiment layer maps
// backend spec strings ("logdist", "unitdisk", "trace:<file>") to factories.
// seed freezes any frozen randomness of the model (e.g. the shadowing
// realization); backends without one ignore it.
type Factory func(params Params, positions []Position, seed int64) (Radio, error)

// LogDistanceFactory is the default Factory: the paper's log-distance +
// shadowing statistical channel.
func LogDistanceFactory(params Params, positions []Position, seed int64) (Radio, error) {
	return NewLogDistance(params, positions, seed)
}

// Build constructs a Radio with the given factory, nil selecting
// LogDistanceFactory. It is the single defaulting site every configuration
// layer (core, hepda) shares.
func Build(factory Factory, params Params, positions []Position, seed int64) (Radio, error) {
	if factory == nil {
		factory = LogDistanceFactory
	}
	return factory(params, positions, seed)
}

// Draw realizes a reception attempt at probability p. Certain outcomes
// (p <= 0 or p >= 1) are decided without consuming randomness — the
// backend-wide contract that keeps ideal (UnitDisk) and replayed
// (trace.Channel) runs deterministic wherever their links are certain.
func Draw(p float64, rng *rand.Rand) bool {
	switch {
	case p >= 1:
		return true
	case p <= 0:
		return false
	default:
		return rng.Float64() < p
	}
}

// IdealParams returns DefaultParams with every stochastic loss knob zeroed
// (fading, CT beating, ambient interference bursts). Combined with the
// UnitDisk backend this yields fully deterministic protocol executions —
// the setting exact property tests run under.
func IdealParams() Params {
	p := DefaultParams()
	p.FadingSigmaDB = 0
	p.CTBeatingLoss = 0
	p.InterferenceBurstProb = 0
	return p
}

// Neighbors returns every node whose link PRR from node i meets the
// threshold, in ascending index order. This is what bootstrapping uses to
// learn "which neighbor is reachable".
func Neighbors(r Radio, i int, prrThreshold float64) ([]int, error) {
	n := r.NumNodes()
	if i < 0 || i >= n {
		return nil, indexError(i, i, n)
	}
	var out []int
	for j := 0; j < n; j++ {
		if j == i {
			continue
		}
		prr, err := r.PRR(i, j)
		if err != nil {
			return nil, err
		}
		if prr >= prrThreshold {
			out = append(out, j)
		}
	}
	return out, nil
}

// HopDistances returns the minimum hop count from src to every node over the
// connectivity graph induced by links with PRR >= prrThreshold. Unreachable
// nodes get -1. Used to derive network diameter and full-coverage NTX.
func HopDistances(r Radio, src int, prrThreshold float64) ([]int, error) {
	n := r.NumNodes()
	if src < 0 || src >= n {
		return nil, indexError(src, src, n)
	}
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := 0; v < n; v++ {
			if v == u || dist[v] >= 0 {
				continue
			}
			prr, err := r.PRR(u, v)
			if err != nil {
				return nil, err
			}
			if prr >= prrThreshold {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist, nil
}

// Diameter returns the maximum finite hop distance between any pair under
// the PRR threshold, and whether the graph is connected.
func Diameter(r Radio, prrThreshold float64) (int, bool, error) {
	n := r.NumNodes()
	diameter := 0
	connected := true
	for src := 0; src < n; src++ {
		dist, err := HopDistances(r, src, prrThreshold)
		if err != nil {
			return 0, false, err
		}
		for _, d := range dist {
			if d < 0 {
				connected = false
				continue
			}
			if d > diameter {
				diameter = d
			}
		}
	}
	return diameter, connected, nil
}
