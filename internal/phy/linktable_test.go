package phy_test

import (
	"math/rand"
	"testing"

	"iotmpc/internal/phy"
)

// The LinkTable contract is exactness: for the same RNG state, the table's
// draws must consume the same randomness in the same order and return the
// same outcomes as the Radio method they shadow. These tests drive paired
// RNGs through long interleaved call sequences and then compare both the
// outcomes and the RNG states (via a follow-up draw), so a single skipped
// or extra draw anywhere in the sequence fails.

// assertTableMatchesRadio cross-checks table-vs-interface on many
// transmitter sets, then confirms the paired RNG streams stayed aligned.
func assertTableMatchesRadio(t *testing.T, r phy.Radio) {
	t.Helper()
	n := r.NumNodes()
	table := r.LinkTable()
	if table.NumNodes() != n {
		t.Fatalf("table has %d nodes, radio %d", table.NumNodes(), n)
	}
	if r.LinkTable() != table {
		t.Fatal("LinkTable not cached: second call returned a different snapshot")
	}

	// Static link statistics agree everywhere (including the diagonal).
	for tx := 0; tx < n; tx++ {
		for rx := 0; rx < n; rx++ {
			want, err := r.PRR(tx, rx)
			if err != nil {
				t.Fatal(err)
			}
			if got := table.PRR(tx, rx); got != want {
				t.Fatalf("PRR(%d,%d): table %v, radio %v", tx, rx, got, want)
			}
			if got, want := table.Certain(tx, rx), want <= 0 || want >= 1; got != want {
				t.Fatalf("Certain(%d,%d) = %v, want %v", tx, rx, got, want)
			}
		}
	}

	// Hop distances agree for a spread of thresholds and sources.
	for _, threshold := range []float64{0.3, 0.5, 0.9} {
		for src := 0; src < n; src += 3 {
			want, err := phy.HopDistances(r, src, threshold)
			if err != nil {
				t.Fatal(err)
			}
			got := table.HopDistances(src, threshold)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("HopDistances(src=%d, th=%.1f)[%d]: table %d, radio %d",
						src, threshold, i, got[i], want[i])
				}
			}
		}
	}

	// Reception draws: identical outcomes on identical RNG streams, across
	// single transmitters, concurrent sets, sets including the receiver,
	// and empty sets.
	direct := rand.New(rand.NewSource(42))
	tabled := rand.New(rand.NewSource(42))
	pick := rand.New(rand.NewSource(7))
	set := make([]int, 0, n)
	for trial := 0; trial < 4000; trial++ {
		rx := pick.Intn(n)
		set = set[:0]
		for node := 0; node < n; node++ {
			if pick.Intn(n) < 3 {
				set = append(set, node)
			}
		}
		want, err := r.ReceiveConcurrentFast(rx, set, direct)
		if err != nil {
			t.Fatal(err)
		}
		if got := table.ReceiveConcurrentFast(rx, set, tabled); got != want {
			t.Fatalf("trial %d: rx=%d txers=%v: table %v, radio %v", trial, rx, set, got, want)
		}
	}
	if direct.Int63() != tabled.Int63() {
		t.Fatal("RNG streams diverged: the table consumed different randomness than the radio")
	}
}

func TestLinkTableMatchesLogDistance(t *testing.T) {
	ch, err := phy.NewLogDistance(phy.DefaultParams(), benchPositions(20), 5)
	if err != nil {
		t.Fatal(err)
	}
	assertTableMatchesRadio(t, ch)
}

func TestLinkTableMatchesUnitDisk(t *testing.T) {
	// The gray zone makes some links probabilistic (draws consume
	// randomness) while others stay certain (draws must not) — both paths
	// have to agree with the geometry-computing original.
	hard, err := phy.NewUnitDisk(phy.IdealParams(), benchPositions(20), 40, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertTableMatchesRadio(t, hard)

	gray, err := phy.NewUnitDisk(phy.DefaultParams(), benchPositions(20), 30, 25)
	if err != nil {
		t.Fatal(err)
	}
	assertTableMatchesRadio(t, gray)
}

func TestLinkTableCertainDrawsConsumeNoRandomness(t *testing.T) {
	// Hard unit disk: every link PRR is 0 or 1, so a full sweep of draws
	// must leave the RNG untouched.
	u, err := phy.NewUnitDisk(phy.IdealParams(), benchPositions(16), 40, 0)
	if err != nil {
		t.Fatal(err)
	}
	table := u.LinkTable()
	rng := rand.New(rand.NewSource(9))
	before := rng.Int63()
	rng = rand.New(rand.NewSource(9))
	for rx := 0; rx < 16; rx++ {
		table.ReceiveConcurrentFast(rx, []int{(rx + 1) % 16, (rx + 2) % 16}, rng)
	}
	if rng.Int63() != before {
		t.Fatal("certain draws consumed randomness")
	}
}
