package phy

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// Position is a node location in meters.
type Position struct {
	X float64
	Y float64
}

// Distance returns the Euclidean distance to other.
func (p Position) Distance(other Position) float64 {
	dx := p.X - other.X
	dy := p.Y - other.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Errors returned by channel construction and queries.
var (
	// ErrNoNodes is returned when a channel is built without nodes.
	ErrNoNodes = errors.New("phy: no nodes")
	// ErrNodeIndex is returned for out-of-range node indices.
	ErrNodeIndex = errors.New("phy: node index out of range")
)

// LogDistance is the statistical radio backend the paper's evaluation uses:
// pairwise mean RSSI from log-distance path loss plus frozen shadowing, and
// the derived packet reception ratios. Per-packet randomness (fading,
// reception draws) is injected by callers through an explicit *rand.Rand so
// trials are reproducible.
type LogDistance struct {
	params    Params
	positions []Position
	// rssi[i][j] is the mean received power at j when i transmits.
	rssi [][]float64

	tableOnce sync.Once
	table     *LinkTable
}

// Channel is the historical name of the LogDistance backend; it predates the
// Radio interface and remains as an alias because most construction sites
// (topology.Topology.Channel, tests, examples) still speak in terms of "the
// channel".
type Channel = LogDistance

var _ Radio = (*LogDistance)(nil)

// NewChannel builds a LogDistance environment. seed freezes the shadowing
// realization; two channels built with the same inputs are identical.
func NewChannel(params Params, positions []Position, seed int64) (*Channel, error) {
	return NewLogDistance(params, positions, seed)
}

// NewLogDistance builds the log-distance + shadowing environment. seed
// freezes the shadowing realization; two backends built with the same inputs
// are identical.
func NewLogDistance(params Params, positions []Position, seed int64) (*LogDistance, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(positions) == 0 {
		return nil, ErrNoNodes
	}
	n := len(positions)
	pos := make([]Position, n)
	copy(pos, positions)

	rng := rand.New(rand.NewSource(seed))
	rssi := make([][]float64, n)
	for i := range rssi {
		rssi[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := pos[i].Distance(pos[j])
			if d < 0.1 {
				d = 0.1 // clamp: co-located testbed nodes still have some separation
			}
			loss := params.RefLossDB + 10*params.PathLossExponent*math.Log10(d)
			shadow := rng.NormFloat64() * params.ShadowingSigmaDB
			p := params.TxPowerDBm - loss - shadow
			// Shadowing is reciprocal: same obstruction both ways.
			rssi[i][j] = p
			rssi[j][i] = p
		}
		rssi[i][i] = math.Inf(-1) // a node never receives itself
	}
	return &Channel{params: params, positions: pos, rssi: rssi}, nil
}

// NumNodes returns the number of nodes in the environment.
func (c *Channel) NumNodes() int { return len(c.positions) }

// Params returns the PHY parameterization of the channel.
func (c *Channel) Params() Params { return c.params }

// MeanRSSI returns the average received power at rx for a transmission from
// tx, in dBm.
func (c *Channel) MeanRSSI(tx, rx int) (float64, error) {
	if err := c.checkIndex(tx, rx); err != nil {
		return 0, err
	}
	return c.rssi[tx][rx], nil
}

// PRR returns the long-run packet reception ratio of the directed link
// tx→rx under the RSSI→PRR sigmoid (no fading draw; fading is averaged out).
func (c *Channel) PRR(tx, rx int) (float64, error) {
	if err := c.checkIndex(tx, rx); err != nil {
		return 0, err
	}
	return c.prrFromRSSI(c.rssi[tx][rx]), nil
}

func (c *Channel) prrFromRSSI(rssi float64) float64 {
	if rssi < c.params.SensitivityDBm {
		return 0
	}
	return 1 / (1 + math.Exp(-(rssi-c.params.PRRMidpointDBm)/c.params.PRRWidthDB))
}

// ReceiveSingle draws one reception attempt for a lone transmission tx→rx,
// applying per-packet fading.
func (c *Channel) ReceiveSingle(tx, rx int, rng *rand.Rand) (bool, error) {
	if err := c.checkIndex(tx, rx); err != nil {
		return false, err
	}
	faded := c.rssi[tx][rx] + rng.NormFloat64()*c.params.FadingSigmaDB
	return rng.Float64() < c.prrFromRSSI(faded), nil
}

// ReceiveConcurrent draws one reception attempt at rx when every node in
// transmitters sends the SAME packet in the same synchronized slot — the
// Glossy/MiniCast situation. Constructive interference is modeled as the
// strongest incoming signal plus CTGainDB per doubling of transmitter count
// (a standard first-order model for CT reliability gain).
func (c *Channel) ReceiveConcurrent(rx int, transmitters []int, rng *rand.Rand) (bool, error) {
	if len(transmitters) == 0 {
		return false, nil
	}
	best := math.Inf(-1)
	for _, tx := range transmitters {
		if err := c.checkIndex(tx, rx); err != nil {
			return false, err
		}
		if tx == rx {
			return false, nil // a transmitting node cannot receive in the same slot
		}
		faded := c.rssi[tx][rx] + rng.NormFloat64()*c.params.FadingSigmaDB
		if faded > best {
			best = faded
		}
	}
	if len(transmitters) >= 2 && rng.Float64() < c.params.CTBeatingLoss {
		return false, nil // beating corrupted the superposition
	}
	ctBoost := c.params.CTGainDB * math.Log2(float64(len(transmitters)))
	return rng.Float64() < c.prrFromRSSI(best+ctBoost), nil
}

// ReceiveConcurrentFast is the hot-path variant of ReceiveConcurrent used by
// the TDMA chain simulation, which draws millions of sub-slot receptions per
// round. It applies one fading draw to the strongest mean link instead of one
// per transmitter; for the small fading sigma of a static testbed the
// difference is second-order, and it makes the cost independent of the
// transmitter count.
func (c *Channel) ReceiveConcurrentFast(rx int, transmitters []int, rng *rand.Rand) (bool, error) {
	if len(transmitters) == 0 {
		return false, nil
	}
	best := math.Inf(-1)
	for _, tx := range transmitters {
		if err := c.checkIndex(tx, rx); err != nil {
			return false, err
		}
		if tx == rx {
			return false, nil
		}
		if r := c.rssi[tx][rx]; r > best {
			best = r
		}
	}
	if len(transmitters) >= 2 && rng.Float64() < c.params.CTBeatingLoss {
		return false, nil // beating corrupted the superposition
	}
	faded := best + rng.NormFloat64()*c.params.FadingSigmaDB +
		c.params.CTGainDB*math.Log2(float64(len(transmitters)))
	return rng.Float64() < c.prrFromRSSI(faded), nil
}

// LinkTable returns the flat snapshot of the log-distance link model (mean
// RSSI plus the derived PRR per directed link). Built lazily once; floods
// sharing the channel across goroutines all see the same table.
func (c *Channel) LinkTable() *LinkTable {
	c.tableOnce.Do(func() { c.table = newLogDistanceTable(c.params, c.rssi) })
	return c.table
}

// ReceiveCapture draws a reception attempt at rx when the transmitters carry
// DIFFERENT packets (a collision). The strongest signal is captured iff it
// exceeds the aggregate of the rest by CaptureThresholdDB; the function
// returns the index into transmitters of the captured sender, or -1.
func (c *Channel) ReceiveCapture(rx int, transmitters []int, rng *rand.Rand) (int, error) {
	if len(transmitters) == 0 {
		return -1, nil
	}
	powers := make([]float64, len(transmitters))
	bestIdx, best := -1, math.Inf(-1)
	for i, tx := range transmitters {
		if err := c.checkIndex(tx, rx); err != nil {
			return -1, err
		}
		if tx == rx {
			return -1, nil
		}
		powers[i] = c.rssi[tx][rx] + rng.NormFloat64()*c.params.FadingSigmaDB
		if powers[i] > best {
			best, bestIdx = powers[i], i
		}
	}
	// Sum interference in linear (mW) domain.
	var interfMW float64
	for i, p := range powers {
		if i == bestIdx {
			continue
		}
		interfMW += math.Pow(10, p/10)
	}
	if interfMW > 0 {
		sir := best - 10*math.Log10(interfMW)
		if sir < c.params.CaptureThresholdDB {
			return -1, nil
		}
	}
	if rng.Float64() < c.prrFromRSSI(best) {
		return bestIdx, nil
	}
	return -1, nil
}

// Neighbors returns every node whose link PRR from node i meets the
// threshold, in ascending index order (the package-level Neighbors over this
// backend).
func (c *Channel) Neighbors(i int, prrThreshold float64) ([]int, error) {
	return Neighbors(c, i, prrThreshold)
}

// HopDistances returns the minimum hop count from src to every node over the
// connectivity graph induced by links with PRR >= prrThreshold (the
// package-level HopDistances over this backend).
func (c *Channel) HopDistances(src int, prrThreshold float64) ([]int, error) {
	return HopDistances(c, src, prrThreshold)
}

// Diameter returns the maximum finite hop distance between any pair under
// the PRR threshold, and whether the graph is connected (the package-level
// Diameter over this backend).
func (c *Channel) Diameter(prrThreshold float64) (int, bool, error) {
	return Diameter(c, prrThreshold)
}

func (c *Channel) checkIndex(a, b int) error {
	return checkIndex(a, b, len(c.positions))
}

func checkIndex(a, b, n int) error {
	if a < 0 || a >= n || b < 0 || b >= n {
		return indexError(a, b, n)
	}
	return nil
}

func indexError(a, b, n int) error {
	return fmt.Errorf("%w: (%d,%d) with %d nodes", ErrNodeIndex, a, b, n)
}
