package phy_test

import (
	"math/bits"
	"math/rand"
	"testing"

	"iotmpc/internal/phy"
	"iotmpc/internal/trace"
)

// mixedTrace builds a link trace with an even blend of certain (PRR 0/1)
// and probabilistic entries, so union-mode draws exercise both the bitset
// fast path and the folded miss products.
func mixedTrace(n int) *trace.LinkTrace {
	tr := &trace.LinkTrace{Name: "mixed", Nodes: n, PRR: make([][]float64, n)}
	rng := rand.New(rand.NewSource(6))
	for i := range tr.PRR {
		tr.PRR[i] = make([]float64, n)
		for j := range tr.PRR[i] {
			if i == j {
				continue
			}
			switch rng.Intn(4) {
			case 0: // stays 0: certainly dead link
			case 1:
				tr.PRR[i][j] = 1 // certainly perfect link
			default:
				tr.PRR[i][j] = rng.Float64()
			}
		}
	}
	return tr
}

// laneTables builds one LinkTable per reception model: the log-distance
// channel (every draw probabilistic), gray-zone and hard unit disks (mixed
// and fully certain links), and a trace union table (certain PRR-0/1 entries
// interleaved with probabilistic union products).
func laneTables(t testing.TB) map[string]*phy.LinkTable {
	t.Helper()
	logdist, err := phy.NewLogDistance(phy.DefaultParams(), benchPositions(20), 5)
	if err != nil {
		t.Fatal(err)
	}
	gray, err := phy.NewUnitDisk(phy.DefaultParams(), benchPositions(20), 30, 25)
	if err != nil {
		t.Fatal(err)
	}
	hard, err := phy.NewUnitDisk(phy.IdealParams(), benchPositions(20), 40, 0)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := trace.NewChannel(phy.DefaultParams(), benchTrace(20))
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := trace.NewChannel(phy.DefaultParams(), mixedTrace(20))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*phy.LinkTable{
		"logdist":       logdist.LinkTable(),
		"unitdisk-gray": gray.LinkTable(),
		"unitdisk-hard": hard.LinkTable(),
		"trace-union":   replay.LinkTable(),
		"trace-mixed":   mixed.LinkTable(),
	}
}

// TestReceiveConcurrentMaskMatchesScalar pins the bit-sliced kernel to its
// per-lane contract: bit l of the mask equals ReceiveConcurrentFast on lane
// l's transmitter subset, with identical RNG consumption on lane l's private
// stream — checked over thousands of random transmitter sets and lane masks,
// then sealed with a follow-up draw on every lane.
func TestReceiveConcurrentMaskMatchesScalar(t *testing.T) {
	for name, table := range laneTables(t) {
		t.Run(name, func(t *testing.T) {
			const n, lanes = 20, 64
			scalarRNG := make([]*rand.Rand, lanes)
			laneRNG := make([]*rand.Rand, lanes)
			for l := range laneRNG {
				seed := int64(1000 + l)
				scalarRNG[l] = rand.New(rand.NewSource(seed))
				laneRNG[l] = rand.New(rand.NewSource(seed))
			}
			pick := rand.New(rand.NewSource(7))
			txs := make([]int, 0, n)
			txLanes := make([]uint64, 0, n)
			laneSet := make([]int, 0, n)
			for trial := 0; trial < 2000; trial++ {
				rx := pick.Intn(n)
				txs, txLanes = txs[:0], txLanes[:0]
				for node := 0; node < n; node++ {
					if pick.Intn(n) < 3 {
						txs = append(txs, node)
						txLanes = append(txLanes, pick.Uint64())
					}
				}
				active := pick.Uint64()
				got := table.ReceiveConcurrentMask(rx, txs, txLanes, active, laneRNG)
				if got&^active != 0 {
					t.Fatalf("trial %d: mask %#x outside active %#x", trial, got, active)
				}
				for l := 0; l < lanes; l++ {
					bit := uint64(1) << l
					if active&bit == 0 {
						continue // inactive lanes draw nothing at all
					}
					laneSet = laneSet[:0]
					for i, tx := range txs {
						if txLanes[i]&bit != 0 {
							laneSet = append(laneSet, tx)
						}
					}
					want := table.ReceiveConcurrentFast(rx, laneSet, scalarRNG[l])
					if (got&bit != 0) != want {
						t.Fatalf("trial %d lane %d: rx=%d set=%v: mask %v, scalar %v",
							trial, l, rx, laneSet, got&bit != 0, want)
					}
				}
			}
			for l := 0; l < lanes; l++ {
				if scalarRNG[l].Int63() != laneRNG[l].Int63() {
					t.Fatalf("lane %d RNG stream diverged from its scalar twin", l)
				}
			}
		})
	}
}

// TestReceiveConcurrentMaskCertainZeroDraws: on a hard unit disk every link
// is certain, so a full sweep must resolve all 64 lanes with pure bitset
// algebra. The rngs slice is all nil — any draw would panic.
func TestReceiveConcurrentMaskCertainZeroDraws(t *testing.T) {
	u, err := phy.NewUnitDisk(phy.IdealParams(), benchPositions(16), 40, 0)
	if err != nil {
		t.Fatal(err)
	}
	table := u.LinkTable()
	noDraws := make([]*rand.Rand, 64) // nil streams: drawing would panic
	check := rand.New(rand.NewSource(3))
	for rx := 0; rx < 16; rx++ {
		txs := []int{(rx + 1) % 16, (rx + 5) % 16, rx} // includes rx itself
		txLanes := []uint64{check.Uint64(), check.Uint64(), check.Uint64()}
		got := table.ReceiveConcurrentMask(rx, txs, txLanes, ^uint64(0), noDraws)
		// Cross-check each lane against the scalar path (also draw-free).
		for l := 0; l < 64; l++ {
			bit := uint64(1) << l
			set := make([]int, 0, 3)
			for i, tx := range txs {
				if txLanes[i]&bit != 0 {
					set = append(set, tx)
				}
			}
			if want := table.ReceiveConcurrentFast(rx, set, nil); (got&bit != 0) != want {
				t.Fatalf("rx=%d lane %d: mask %v, scalar %v", rx, l, got&bit != 0, want)
			}
		}
	}
}

// FuzzReceiveConcurrentMask fuzzes the kernel's structural invariants on a
// trace union table (the mode with the richest certain/uncertain mix):
//
//   - lane independence: relabeling the lanes (permuting which bit position
//     a trial world occupies, together with its RNG) permutes the result
//     mask identically — no lane's outcome depends on its neighbors;
//   - certain-only lanes burn zero RNG draws;
//   - a flood built on the kernel has monotone coverage: the per-node
//     coverage popcount never decreases across slots, and no inactive lane
//     ever receives.
func FuzzReceiveConcurrentMask(f *testing.F) {
	f.Add(int64(1), uint8(3), uint16(0x35), uint64(0xdeadbeef), uint64(1))
	f.Add(int64(9), uint8(0), uint16(0xffff), ^uint64(0), uint64(77))
	f.Fuzz(func(t *testing.T, seed int64, rxRaw uint8, txBits uint16, active uint64, rot uint64) {
		const n, lanes = 12, 64
		replay, err := trace.NewChannel(phy.DefaultParams(), mixedTrace(n))
		if err != nil {
			t.Fatal(err)
		}
		table := replay.LinkTable()
		rx := int(rxRaw) % n
		pick := rand.New(rand.NewSource(seed))
		txs := make([]int, 0, n)
		txLanes := make([]uint64, 0, n)
		for node := 0; node < n; node++ {
			if txBits&(1<<node) != 0 {
				txs = append(txs, node)
				txLanes = append(txLanes, pick.Uint64())
			}
		}

		// Lane relabeling: rotate every lane mask by r bits and rotate the
		// RNG assignment the same way. The result must be the rotated mask.
		r := int(rot % lanes)
		baseRNG := make([]*rand.Rand, lanes)
		rotRNG := make([]*rand.Rand, lanes)
		for l := 0; l < lanes; l++ {
			baseRNG[l] = rand.New(rand.NewSource(seed + int64(l)))
			rotRNG[(l+r)%lanes] = rand.New(rand.NewSource(seed + int64(l)))
		}
		rotLanes := make([]uint64, len(txLanes))
		for i := range txLanes {
			rotLanes[i] = bits.RotateLeft64(txLanes[i], r)
		}
		base := table.ReceiveConcurrentMask(rx, txs, txLanes, active, baseRNG)
		rotated := table.ReceiveConcurrentMask(rx, txs, rotLanes, bits.RotateLeft64(active, r), rotRNG)
		if rotated != bits.RotateLeft64(base, r) {
			t.Fatalf("lane relabeling changed outcomes: base %#x, rotated %#x (r=%d)", base, rotated, r)
		}
		if base&^active != 0 {
			t.Fatalf("inactive lane received: mask %#x, active %#x", base, active)
		}

		// Certain-only lanes burn zero draws: restrict every lane to
		// certain links (PRR 0 or 1) and hand the kernel nil RNGs.
		certLanes := make([]uint64, len(txs))
		for i, tx := range txs {
			if table.Certain(tx, rx) {
				certLanes[i] = txLanes[i]
			}
		}
		table.ReceiveConcurrentMask(rx, txs, certLanes, active, make([]*rand.Rand, lanes))

		// Monotone coverage: flood rx-side coverage through repeated slots;
		// undecided lanes shrink, coverage popcount never decreases.
		if len(txs) == 0 {
			return
		}
		coverage := uint64(0)
		prev := 0
		floodRNG := make([]*rand.Rand, lanes)
		for l := range floodRNG {
			floodRNG[l] = rand.New(rand.NewSource(seed ^ int64(l*7919)))
		}
		for slot := 0; slot < 8; slot++ {
			rcv := table.ReceiveConcurrentMask(rx, txs, txLanes, active&^coverage, floodRNG)
			if rcv&coverage != 0 {
				t.Fatalf("slot %d: already-covered lane received again", slot)
			}
			coverage |= rcv
			if pc := bits.OnesCount64(coverage); pc < prev {
				t.Fatalf("slot %d: coverage popcount fell from %d to %d", slot, prev, pc)
			} else {
				prev = pc
			}
		}
	})
}
