package phy_test

import (
	"math/rand"
	"testing"

	"iotmpc/internal/phy"
	"iotmpc/internal/trace"
)

// Backend dispatch benchmarks: ReceiveConcurrentFast is the chain
// simulation's hot path (millions of draws per round), and since the Radio
// refactor every call goes through the interface. These benches track the
// per-draw cost of each backend — and therefore the dispatch overhead —
// side by side. CI's bench smoke records them in BENCH_phy.json.

func benchPositions(n int) []phy.Position {
	rng := rand.New(rand.NewSource(1))
	pos := make([]phy.Position, n)
	for i := range pos {
		pos[i] = phy.Position{X: rng.Float64() * 100, Y: rng.Float64() * 80}
	}
	return pos
}

func benchTrace(n int) *trace.LinkTrace {
	tr := &trace.LinkTrace{Name: "bench", Nodes: n, PRR: make([][]float64, n)}
	rng := rand.New(rand.NewSource(2))
	for i := range tr.PRR {
		tr.PRR[i] = make([]float64, n)
		for j := range tr.PRR[i] {
			if i != j {
				tr.PRR[i][j] = rng.Float64()
			}
		}
	}
	return tr
}

func BenchmarkBackendReceiveConcurrentFast(b *testing.B) {
	const n = 24
	pos := benchPositions(n)
	logdist, err := phy.NewLogDistance(phy.DefaultParams(), pos, 1)
	if err != nil {
		b.Fatal(err)
	}
	unitdisk, err := phy.NewUnitDisk(phy.DefaultParams(), pos, 40, 10)
	if err != nil {
		b.Fatal(err)
	}
	replay, err := trace.NewChannel(phy.DefaultParams(), benchTrace(n))
	if err != nil {
		b.Fatal(err)
	}
	transmitters := []int{1, 2, 3, 4}
	for _, bc := range []struct {
		name  string
		radio phy.Radio
	}{
		{"logdist", logdist},
		{"unitdisk", unitdisk},
		{"trace", replay},
	} {
		b.Run(bc.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bc.radio.ReceiveConcurrentFast(i%n, transmitters, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLinkTableReceiveConcurrentFast is the flood kernel's actual hot
// path since the LinkTable refactor: the same draw as the interface bench
// above, served from the flat snapshot with no dispatch and no error
// returns. The gap between the two is what the table buys per draw.
func BenchmarkLinkTableReceiveConcurrentFast(b *testing.B) {
	const n = 24
	pos := benchPositions(n)
	logdist, err := phy.NewLogDistance(phy.DefaultParams(), pos, 1)
	if err != nil {
		b.Fatal(err)
	}
	unitdisk, err := phy.NewUnitDisk(phy.DefaultParams(), pos, 40, 10)
	if err != nil {
		b.Fatal(err)
	}
	replay, err := trace.NewChannel(phy.DefaultParams(), benchTrace(n))
	if err != nil {
		b.Fatal(err)
	}
	transmitters := []int{1, 2, 3, 4}
	for _, bc := range []struct {
		name  string
		radio phy.Radio
	}{
		{"logdist", logdist},
		{"unitdisk", unitdisk},
		{"trace", replay},
	} {
		b.Run(bc.name, func(b *testing.B) {
			table := bc.radio.LinkTable()
			rng := rand.New(rand.NewSource(3))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				table.ReceiveConcurrentFast(i%n, transmitters, rng)
			}
		})
	}
}

// BenchmarkUnitDiskPRR isolates the pure geometry query of the idealized
// backend (no RNG), the floor of what any backend dispatch can cost.
func BenchmarkUnitDiskPRR(b *testing.B) {
	const n = 24
	unitdisk, err := phy.NewUnitDisk(phy.DefaultParams(), benchPositions(n), 40, 10)
	if err != nil {
		b.Fatal(err)
	}
	var r phy.Radio = unitdisk
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.PRR(i%n, (i+1)%n); err != nil {
			b.Fatal(err)
		}
	}
}
