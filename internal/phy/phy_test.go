package phy

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestAirtime(t *testing.T) {
	p := DefaultParams()
	tests := []struct {
		name    string
		payload int
		want    time.Duration
	}{
		// 250 kbit/s = 32 µs per byte; 6 bytes PHY overhead.
		{"empty payload", 0, 192 * time.Microsecond},
		{"one byte", 1, 224 * time.Microsecond},
		{"32 bytes", 32, (6 + 32) * 32 * time.Microsecond},
		{"max PSDU", MaxPSDU, (6 + 127) * 32 * time.Microsecond},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := p.Airtime(tt.payload)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("Airtime(%d) = %v, want %v", tt.payload, got, tt.want)
			}
		})
	}
}

func TestAirtimeErrors(t *testing.T) {
	p := DefaultParams()
	for _, payload := range []int{-1, MaxPSDU + 1} {
		if _, err := p.Airtime(payload); !errors.Is(err, ErrPayloadTooLarge) {
			t.Errorf("Airtime(%d) error = %v, want ErrPayloadTooLarge", payload, err)
		}
	}
}

func TestSlotDuration(t *testing.T) {
	p := DefaultParams()
	slot, err := p.SlotDuration(10)
	if err != nil {
		t.Fatal(err)
	}
	air, _ := p.Airtime(10)
	if slot != air+p.SlotGuard {
		t.Errorf("SlotDuration = %v, want airtime+guard = %v", slot, air+p.SlotGuard)
	}
}

func TestValidate(t *testing.T) {
	good := DefaultParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero bitrate", func(p *Params) { p.BitrateBps = 0 }},
		{"negative overhead", func(p *Params) { p.PHYOverheadBytes = -1 }},
		{"zero exponent", func(p *Params) { p.PathLossExponent = 0 }},
		{"zero prr width", func(p *Params) { p.PRRWidthDB = 0 }},
		{"negative guard", func(p *Params) { p.SlotGuard = -time.Microsecond }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultParams()
			tt.mutate(&p)
			if err := p.Validate(); !errors.Is(err, ErrBadParams) {
				t.Errorf("error = %v, want ErrBadParams", err)
			}
		})
	}
}

func TestChargeMicroCoulombs(t *testing.T) {
	p := DefaultParams()
	got := p.ChargeMicroCoulombs(time.Second, 0)
	if math.Abs(got-p.TxCurrentMA*1e3) > 1e-9 {
		t.Errorf("1s tx charge = %f µC, want %f", got, p.TxCurrentMA*1e3)
	}
}

func linePositions(n int, spacing float64) []Position {
	pos := make([]Position, n)
	for i := range pos {
		pos[i] = Position{X: float64(i) * spacing}
	}
	return pos
}

func TestNewChannelDeterministic(t *testing.T) {
	pos := linePositions(5, 10)
	a, err := NewChannel(DefaultParams(), pos, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewChannel(DefaultParams(), pos, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i == j {
				continue
			}
			ra, _ := a.MeanRSSI(i, j)
			rb, _ := b.MeanRSSI(i, j)
			if ra != rb {
				t.Fatalf("same seed, different RSSI at (%d,%d)", i, j)
			}
		}
	}
}

func TestChannelReciprocity(t *testing.T) {
	c, err := NewChannel(DefaultParams(), linePositions(6, 8), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			a, _ := c.MeanRSSI(i, j)
			b, _ := c.MeanRSSI(j, i)
			if a != b {
				t.Fatalf("link (%d,%d) not reciprocal", i, j)
			}
		}
	}
}

func TestRSSIDecreasesWithDistance(t *testing.T) {
	// Disable shadowing so monotonicity is exact.
	p := DefaultParams()
	p.ShadowingSigmaDB = 0
	c, err := NewChannel(p, linePositions(10, 5), 1)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for j := 1; j < 10; j++ {
		r, err := c.MeanRSSI(0, j)
		if err != nil {
			t.Fatal(err)
		}
		if r >= prev {
			t.Fatalf("RSSI not monotone: node %d has %f >= %f", j, r, prev)
		}
		prev = r
	}
}

func TestPRRProperties(t *testing.T) {
	p := DefaultParams()
	p.ShadowingSigmaDB = 0
	c, err := NewChannel(p, linePositions(2, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	prr, err := c.PRR(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if prr < 0.99 {
		t.Errorf("1 m link PRR = %f, want ≈1", prr)
	}
	// Below sensitivity → exactly zero.
	if got := c.prrFromRSSI(p.SensitivityDBm - 1); got != 0 {
		t.Errorf("below-sensitivity PRR = %f, want 0", got)
	}
}

func TestReceiveSingleExtremes(t *testing.T) {
	p := DefaultParams()
	p.ShadowingSigmaDB = 0
	p.FadingSigmaDB = 0
	// Nodes 1 m apart: guaranteed reception. 10 km apart: none.
	c, err := NewChannel(p, []Position{{0, 0}, {1, 0}, {10000, 0}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	okCount := 0
	for i := 0; i < 100; i++ {
		ok, err := c.ReceiveSingle(0, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			okCount++
		}
	}
	if okCount < 99 {
		t.Errorf("strong link delivered %d/100", okCount)
	}
	for i := 0; i < 100; i++ {
		ok, err := c.ReceiveSingle(0, 2, rng)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatal("10 km link delivered a packet")
		}
	}
}

func TestReceiveConcurrentBoostsMarginalLink(t *testing.T) {
	// Put rx at a distance where a single tx struggles, then add synchronized
	// transmitters: reception rate must improve (constructive interference).
	p := DefaultParams()
	p.ShadowingSigmaDB = 0
	positions := []Position{
		{0, 0}, {1, 0}, {2, 0}, {3, 0}, // transmitters
		{62, 0}, // marginal receiver
	}
	c, err := NewChannel(p, positions, 1)
	if err != nil {
		t.Fatal(err)
	}
	countSuccesses := func(txers []int, seed int64) int {
		rng := rand.New(rand.NewSource(seed))
		n := 0
		for i := 0; i < 3000; i++ {
			ok, err := c.ReceiveConcurrent(4, txers, rng)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				n++
			}
		}
		return n
	}
	single := countSuccesses([]int{0}, 7)
	quad := countSuccesses([]int{0, 1, 2, 3}, 7)
	if quad <= single {
		t.Errorf("CT did not help: single=%d quad=%d", single, quad)
	}
}

func TestReceiveConcurrentTransmitterCannotReceive(t *testing.T) {
	c, err := NewChannel(DefaultParams(), linePositions(3, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	ok, err := c.ReceiveConcurrent(1, []int{0, 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("node received while transmitting in the same slot")
	}
}

func TestReceiveConcurrentEmpty(t *testing.T) {
	c, err := NewChannel(DefaultParams(), linePositions(2, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := c.ReceiveConcurrent(0, nil, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("reception with no transmitters")
	}
}

func TestReceiveCapture(t *testing.T) {
	p := DefaultParams()
	p.ShadowingSigmaDB = 0
	p.FadingSigmaDB = 0
	// tx0 very close to rx, tx1 far: tx0 should capture.
	c, err := NewChannel(p, []Position{{0, 0}, {100, 0}, {1, 0}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	winner, err := c.ReceiveCapture(2, []int{0, 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if winner != 0 {
		t.Errorf("capture winner = %d, want 0", winner)
	}
}

func TestReceiveCaptureSymmetricCollision(t *testing.T) {
	p := DefaultParams()
	p.ShadowingSigmaDB = 0
	p.FadingSigmaDB = 0
	// Two equidistant transmitters: SIR = 0 dB < threshold → collision.
	c, err := NewChannel(p, []Position{{-5, 0}, {5, 0}, {0, 0}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	winner, err := c.ReceiveCapture(2, []int{0, 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if winner != -1 {
		t.Errorf("symmetric collision captured %d, want -1", winner)
	}
}

func TestNeighbors(t *testing.T) {
	p := DefaultParams()
	p.ShadowingSigmaDB = 0
	c, err := NewChannel(p, linePositions(5, 30), 1)
	if err != nil {
		t.Fatal(err)
	}
	// At 30 m spacing with exponent 3: adjacent nodes are comfortably in
	// range, distance-2 (60 m) marginal, distance-3 out.
	nbrs, err := c.Neighbors(0, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) == 0 {
		t.Fatal("no neighbors at 30 m")
	}
	for _, n := range nbrs {
		if n == 0 {
			t.Error("node is its own neighbor")
		}
	}
}

func TestHopDistancesAndDiameter(t *testing.T) {
	p := DefaultParams()
	p.ShadowingSigmaDB = 0
	c, err := NewChannel(p, linePositions(6, 35), 1)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := c.HopDistances(0, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if dist[0] != 0 {
		t.Errorf("dist to self = %d", dist[0])
	}
	// Distances must be non-decreasing along the line.
	for i := 1; i < len(dist); i++ {
		if dist[i] < dist[i-1] {
			t.Errorf("hop distance not monotone along line: %v", dist)
		}
	}
	diam, connected, err := c.Diameter(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !connected {
		t.Fatal("line topology disconnected at 35 m spacing")
	}
	if diam < 2 {
		t.Errorf("diameter = %d, want multi-hop (>=2)", diam)
	}
}

func TestChannelIndexErrors(t *testing.T) {
	c, err := NewChannel(DefaultParams(), linePositions(3, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.MeanRSSI(0, 3); !errors.Is(err, ErrNodeIndex) {
		t.Errorf("MeanRSSI: %v, want ErrNodeIndex", err)
	}
	if _, err := c.PRR(-1, 0); !errors.Is(err, ErrNodeIndex) {
		t.Errorf("PRR: %v, want ErrNodeIndex", err)
	}
	if _, err := c.HopDistances(5, 0.5); !errors.Is(err, ErrNodeIndex) {
		t.Errorf("HopDistances: %v, want ErrNodeIndex", err)
	}
}

func TestNewChannelErrors(t *testing.T) {
	if _, err := NewChannel(DefaultParams(), nil, 1); !errors.Is(err, ErrNoNodes) {
		t.Errorf("empty: %v, want ErrNoNodes", err)
	}
	bad := DefaultParams()
	bad.BitrateBps = 0
	if _, err := NewChannel(bad, linePositions(2, 1), 1); !errors.Is(err, ErrBadParams) {
		t.Errorf("bad params: %v, want ErrBadParams", err)
	}
}

func TestChannelAccessors(t *testing.T) {
	p := DefaultParams()
	c, err := NewChannel(p, linePositions(4, 10), 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() != 4 {
		t.Errorf("NumNodes = %d, want 4", c.NumNodes())
	}
	if got := c.Params(); got != p {
		t.Error("Params does not round-trip")
	}
}

func TestReceiveConcurrentFastMatchesSlowOnExtremes(t *testing.T) {
	p := DefaultParams()
	p.ShadowingSigmaDB = 0
	p.FadingSigmaDB = 0
	p.CTBeatingLoss = 0
	c, err := NewChannel(p, []Position{{0, 0}, {1, 0}, {10000, 0}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	// Strong link: always received.
	for i := 0; i < 50; i++ {
		ok, err := c.ReceiveConcurrentFast(1, []int{0}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("fast path dropped a guaranteed packet")
		}
	}
	// Out-of-range link: never received.
	for i := 0; i < 50; i++ {
		ok, err := c.ReceiveConcurrentFast(2, []int{0}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatal("fast path delivered over 10 km")
		}
	}
	// Transmitter cannot receive; empty set yields nothing.
	if ok, _ := c.ReceiveConcurrentFast(0, []int{0, 1}, rng); ok {
		t.Error("transmitting node received")
	}
	if ok, _ := c.ReceiveConcurrentFast(0, nil, rng); ok {
		t.Error("reception with no transmitters")
	}
	if _, err := c.ReceiveConcurrentFast(0, []int{9}, rng); !errors.Is(err, ErrNodeIndex) {
		t.Errorf("bad index: %v, want ErrNodeIndex", err)
	}
}

func TestBeatingLossReducesCTReliability(t *testing.T) {
	base := DefaultParams()
	base.ShadowingSigmaDB = 0
	base.FadingSigmaDB = 0
	count := func(beating float64) int {
		p := base
		p.CTBeatingLoss = beating
		c, err := NewChannel(p, []Position{{0, 0}, {2, 0}, {1, 0}}, 1)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		got := 0
		for i := 0; i < 2000; i++ {
			ok, err := c.ReceiveConcurrentFast(2, []int{0, 1}, rng)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				got++
			}
		}
		return got
	}
	clean := count(0)
	noisy := count(0.3)
	if noisy >= clean {
		t.Errorf("beating loss did not reduce receptions: clean=%d noisy=%d", clean, noisy)
	}
	if noisy < 1200 || noisy > 1600 {
		t.Errorf("30%% beating loss gave %d/2000 receptions, want ≈1400", noisy)
	}
}

func TestPositionDistance(t *testing.T) {
	a := Position{0, 0}
	b := Position{3, 4}
	if got := a.Distance(b); got != 5 {
		t.Errorf("Distance = %f, want 5", got)
	}
}
