package phy

import (
	"math"
	"math/bits"
	"math/rand"
)

// MaxLanes is the trial-lane capacity of the bit-sliced draw kernels: one
// uint64 lane mask packs up to 64 independent Monte-Carlo worlds.
const MaxLanes = 64

// ReceiveConcurrentMask is the bit-sliced form of ReceiveConcurrentFast: it
// draws one reception attempt at rx for up to 64 independent trial lanes at
// once and returns the lane mask of successful receptions.
//
// txs lists the candidate transmitters (ascending, as the protocol loops
// build them); txLanes[i] is the lane mask in which txs[i] actually
// transmits, so lane l's transmitter set is {txs[i] : txLanes[i] bit l}.
// active masks the lanes that want a draw at all; rngs[l] is lane l's
// private randomness stream.
//
// The contract is per-lane exactness: bit l of the result equals
// ReceiveConcurrentFast(rx, transmitters-of-lane-l, rngs[l]) with identical
// RNG consumption on rngs[l] — same draws, same order, no draws for lanes
// whose scalar call would not draw (inactive lanes, empty transmitter sets,
// sets containing rx itself, and certain links). Because every lane owns
// its RNG, the cross-lane processing order inside the kernel is free, and
// the win is that certain links — every link of a hard unit disk, the
// PRR-0/1 entries of a trace — resolve for all 64 lanes with pure bitset
// algebra and zero randomness.
func (t *LinkTable) ReceiveConcurrentMask(rx int, txs []int, txLanes []uint64, active uint64, rngs []*rand.Rand) uint64 {
	if active == 0 || len(txs) == 0 {
		return 0
	}
	n := t.n
	row := t.prr[rx*n : (rx+1)*n]

	// One pass over the candidate list classifies every lane: `self` lanes
	// include rx among their transmitters (scalar: immediate false, no
	// draws), `any` lanes have at least one transmitter.
	var self, any uint64
	for i, tx := range txs {
		if tx == rx {
			self |= txLanes[i]
		} else {
			any |= txLanes[i]
		}
	}
	elig := active & any &^ self
	if elig == 0 {
		return 0
	}

	var out uint64
	switch t.mode {
	case tableLogDistance:
		// Every eligible lane draws (beating only at >= 2 transmitters,
		// then fading, then the sigmoid), so the lanes are walked one by
		// one; the transmitter scan per lane mirrors the scalar loop.
		rssiRow := t.rssi[rx*n : (rx+1)*n]
		for need := elig; need != 0; {
			l := bits.TrailingZeros64(need)
			bit := uint64(1) << l
			need &^= bit
			rng := rngs[l]
			count := 0
			best := math.Inf(-1)
			for i := range txs {
				// rx itself cannot carry this bit: self lanes are not
				// eligible.
				if txLanes[i]&bit == 0 {
					continue
				}
				count++
				if r := rssiRow[txs[i]]; r > best {
					best = r
				}
			}
			if count >= 2 && rng.Float64() < t.ctBeatingLoss {
				continue // beating corrupted the superposition
			}
			var log2Count float64
			if count < len(t.log2) {
				log2Count = t.log2[count]
			} else { // defensive: a caller-supplied list with duplicates
				log2Count = math.Log2(float64(count))
			}
			faded := best + rng.NormFloat64()*t.fadingSigmaDB + t.ctGainDB*log2Count
			if rng.Float64() < t.prrFromRSSI(faded) {
				out |= bit
			}
		}
	case tableBestPRR:
		// Lanes with a PRR-1 transmitter succeed with no draw (Draw(1));
		// lanes whose best link is uncertain draw once on it; lanes with
		// only PRR-0 links fail with no draw (Draw(0)) and never enter the
		// per-lane loop — on a hard unit disk the whole call is bitset
		// algebra.
		var sure, uncertain uint64
		for i, tx := range txs {
			if tx == rx {
				continue
			}
			if p := row[tx]; p >= 1 {
				sure |= txLanes[i]
			} else if p > 0 {
				uncertain |= txLanes[i]
			}
		}
		out = elig & sure
		for need := elig &^ sure & uncertain; need != 0; {
			l := bits.TrailingZeros64(need)
			bit := uint64(1) << l
			need &^= bit
			best := 0.0
			for i := range txs {
				if txLanes[i]&bit == 0 {
					continue
				}
				if p := row[txs[i]]; p > best {
					best = p
				}
			}
			// best < 1 here (no sure link in this lane), so this is exactly
			// Draw(best): no draw at 0, one Float64 otherwise.
			if best > 0 && rngs[l].Float64() < best {
				out |= bit
			}
		}
	default: // tableUnionPRR
		// A PRR-1 transmitter zeroes the miss product (union 1, no draw);
		// PRR-0 factors are exact ×1.0 identities and are skipped, which
		// leaves the remaining product folded in transmitter-list order —
		// bit-for-bit the scalar float sequence.
		var sure, uncertain uint64
		for i, tx := range txs {
			if tx == rx {
				continue
			}
			if p := row[tx]; p >= 1 {
				sure |= txLanes[i]
			} else if p > 0 {
				uncertain |= txLanes[i]
			}
		}
		out = elig & sure
		for need := elig &^ sure & uncertain; need != 0; {
			l := bits.TrailingZeros64(need)
			bit := uint64(1) << l
			need &^= bit
			miss := 1.0
			for i := range txs {
				if txLanes[i]&bit == 0 {
					continue
				}
				if p := row[txs[i]]; p > 0 && p < 1 {
					miss *= 1 - p
				}
			}
			// Replicate Draw's branches exactly: 1-miss can round to 1.0
			// (success without a draw) or, when every factor rounded to
			// 1.0, stay at 0 (failure without a draw).
			switch p := 1 - miss; {
			case p >= 1:
				out |= bit
			case p <= 0:
			default:
				if rngs[l].Float64() < p {
					out |= bit
				}
			}
		}
		// Lanes outside `uncertain` with no sure link hold only PRR-0
		// transmitters: Draw(0), failure, no randomness — already 0 in out.
	}
	return out
}
