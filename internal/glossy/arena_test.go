package glossy

import (
	"math/rand"
	"reflect"
	"testing"

	"iotmpc/internal/phy"
	"iotmpc/internal/sim"
	"iotmpc/internal/topology"
	"iotmpc/internal/trace"
)

// floodBackends builds one radio per backend family over the FlockLab
// deployment (the trace backend gets a synthetic PRR matrix of matching
// size), so arena equivalence is exercised against all three reception
// models — including the trace union products whose floating-point result
// depends on transmitter order.
func floodBackends(t *testing.T) map[string]phy.Radio {
	t.Helper()
	tb := topology.FlockLab()
	logdist, err := tb.Channel(phy.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	unitdisk, err := phy.NewUnitDisk(phy.DefaultParams(), tb.Positions, 35, 20)
	if err != nil {
		t.Fatal(err)
	}
	n := tb.NumNodes()
	lt := &trace.LinkTrace{Name: "synthetic", Nodes: n, PRR: make([][]float64, n)}
	rng := rand.New(rand.NewSource(4))
	for i := range lt.PRR {
		lt.PRR[i] = make([]float64, n)
		for j := range lt.PRR[i] {
			if i != j {
				lt.PRR[i][j] = rng.Float64()
			}
		}
	}
	replay, err := trace.NewChannel(phy.DefaultParams(), lt)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]phy.Radio{"logdist": logdist, "unitdisk": unitdisk, "trace": replay}
}

// TestRunArenaMatchesRun pins the arena path bit-for-bit to the allocating
// path, across backends and consecutive reused floods: same RNG stream in,
// same Result out, and the two RNGs still aligned afterwards.
func TestRunArenaMatchesRun(t *testing.T) {
	for name, radio := range floodBackends(t) {
		t.Run(name, func(t *testing.T) {
			cfg := Config{Channel: radio, Initiator: 0, NTX: 4, PayloadBytes: 16}
			plain := rand.New(rand.NewSource(99))
			arenaRNG := rand.New(rand.NewSource(99))
			var arena sim.Arena
			var reused *Result
			for flood := 0; flood < 25; flood++ {
				want, err := Run(cfg, plain, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				arena.Reset()
				reused, err = RunArena(cfg, arenaRNG, nil, nil, &arena, reused)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, reused) {
					t.Fatalf("flood %d: arena result diverged\nwant %+v\ngot  %+v", flood, want, reused)
				}
			}
			if plain.Int63() != arenaRNG.Int63() {
				t.Fatal("RNG streams diverged between Run and RunArena")
			}
		})
	}
}

// TestWarmFloodZeroAlloc is the perf contract of the arena path: once the
// arena and the reused Result are warm, a flood performs zero heap
// allocations. CI additionally gates the benchmark's allocs/op at 0.
func TestWarmFloodZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is not meaningful under the race detector")
	}
	ch, err := topology.FlockLab().Channel(phy.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Channel: ch, Initiator: 0, NTX: 6, PayloadBytes: 16}
	rng := rand.New(rand.NewSource(1))
	var arena sim.Arena
	res, err := RunArena(cfg, rng, nil, nil, &arena, nil) // warm-up borrow
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		arena.Reset()
		if _, err := RunArena(cfg, rng, nil, nil, &arena, res); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm flood allocates %.1f objects per run, want 0", allocs)
	}
}
