package glossy

import (
	"errors"
	"math/rand"
	"testing"

	"iotmpc/internal/phy"
	"iotmpc/internal/sim"
	"iotmpc/internal/topology"
)

func flockChannel(t *testing.T) *phy.Channel {
	t.Helper()
	ch, err := topology.FlockLab().Channel(phy.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestFloodReachesWholeNetworkAtHighNTX(t *testing.T) {
	ch := flockChannel(t)
	cfg := Config{Channel: ch, Initiator: 0, NTX: 8, PayloadBytes: 16}
	rng := rand.New(rand.NewSource(1))
	covered := 0
	const trials = 50
	for i := 0; i < trials; i++ {
		res, err := Run(cfg, rng, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Coverage() == 1 {
			covered++
		}
	}
	if covered < trials*9/10 {
		t.Errorf("full coverage in %d/%d trials, want >= 90%%", covered, trials)
	}
}

func TestFloodLatencyGrowsWithHops(t *testing.T) {
	// On a line, first-reception latency must be monotone in hop distance
	// (averaged over trials).
	p := phy.DefaultParams()
	p.ShadowingSigmaDB = 0
	p.FadingSigmaDB = 1
	top, err := topology.Line(6, 35)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := top.Channel(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Channel: ch, Initiator: 0, NTX: 6, PayloadBytes: 16}
	rng := rand.New(rand.NewSource(2))
	sum := make([]float64, 6)
	const trials = 200
	for i := 0; i < trials; i++ {
		res, err := Run(cfg, rng, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for j, lat := range res.Latency {
			if lat < 0 {
				t.Fatalf("trial %d: node %d unreachable", i, j)
			}
			sum[j] += lat.Seconds()
		}
	}
	for j := 2; j < 6; j++ {
		if sum[j] <= sum[j-1] {
			t.Errorf("mean latency not increasing along line: node %d %.6f <= node %d %.6f",
				j, sum[j]/trials, j-1, sum[j-1]/trials)
		}
	}
}

func TestCoverageGrowsWithNTX(t *testing.T) {
	ch := flockChannel(t)
	coverage := func(ntx int) float64 {
		rng := rand.New(rand.NewSource(3))
		total := 0.0
		const trials = 100
		for i := 0; i < trials; i++ {
			res, err := Run(Config{Channel: ch, Initiator: 0, NTX: ntx, PayloadBytes: 16}, rng, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			total += res.Coverage()
		}
		return total / trials
	}
	c1 := coverage(1)
	c4 := coverage(4)
	if c4 < c1 {
		t.Errorf("coverage decreased with NTX: NTX=1 %.3f, NTX=4 %.3f", c1, c4)
	}
	if c4 < 0.95 {
		t.Errorf("NTX=4 coverage = %.3f, want near-full on FlockLab", c4)
	}
}

func TestFloodAccountsRadioTime(t *testing.T) {
	ch := flockChannel(t)
	ledger := sim.NewRadioLedger(ch.NumNodes())
	engine := sim.NewEngine()
	rng := rand.New(rand.NewSource(4))
	res, err := Run(Config{Channel: ch, Initiator: 0, NTX: 4, PayloadBytes: 16}, rng, ledger, engine)
	if err != nil {
		t.Fatal(err)
	}
	if engine.Now() != res.Duration {
		t.Errorf("engine clock %v, want flood duration %v", engine.Now(), res.Duration)
	}
	if ledger.TxTime(0) == 0 {
		t.Error("initiator has zero tx time")
	}
	for i := 0; i < ch.NumNodes(); i++ {
		if ledger.OnTime(i) == 0 {
			t.Errorf("node %d has zero radio-on time", i)
		}
		if ledger.OnTime(i) > res.Duration {
			t.Errorf("node %d on-time %v exceeds flood duration %v", i, ledger.OnTime(i), res.Duration)
		}
	}
}

func TestFloodDeterministicGivenSeed(t *testing.T) {
	ch := flockChannel(t)
	run := func() *Result {
		rng := rand.New(rand.NewSource(42))
		res, err := Run(Config{Channel: ch, Initiator: 0, NTX: 3, PayloadBytes: 16}, rng, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Slots != b.Slots {
		t.Fatalf("same seed, different slot counts: %d vs %d", a.Slots, b.Slots)
	}
	for i := range a.FirstRxSlot {
		if a.FirstRxSlot[i] != b.FirstRxSlot[i] {
			t.Fatalf("same seed, node %d differs", i)
		}
	}
}

func TestFloodTerminates(t *testing.T) {
	// Even with an unreachable node the flood must terminate once every
	// reached node exhausts NTX.
	p := phy.DefaultParams()
	p.ShadowingSigmaDB = 0
	ch, err := phy.NewChannel(p, []phy.Position{{X: 0}, {X: 10}, {X: 100000}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	res, err := Run(Config{Channel: ch, Initiator: 0, NTX: 3, PayloadBytes: 16}, rng, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Received[2] {
		t.Error("unreachable node received")
	}
	if res.Latency[2] != -1 {
		t.Error("unreachable node has latency")
	}
	if res.Slots >= 4*3*3 {
		t.Errorf("flood hit the safety bound: %d slots", res.Slots)
	}
}

func TestConfigValidation(t *testing.T) {
	ch := flockChannel(t)
	rng := rand.New(rand.NewSource(1))
	tests := []struct {
		name string
		cfg  Config
	}{
		{"nil channel", Config{Initiator: 0, NTX: 1}},
		{"bad initiator", Config{Channel: ch, Initiator: -1, NTX: 1}},
		{"initiator out of range", Config{Channel: ch, Initiator: 99, NTX: 1}},
		{"zero ntx", Config{Channel: ch, Initiator: 0, NTX: 0}},
		{"payload too big", Config{Channel: ch, Initiator: 0, NTX: 1, PayloadBytes: 200}},
		{"negative max slots", Config{Channel: ch, Initiator: 0, NTX: 1, MaxSlots: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Run(tt.cfg, rng, nil, nil); !errors.Is(err, ErrBadConfig) {
				t.Errorf("error = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestResultInitiator(t *testing.T) {
	ch := flockChannel(t)
	rng := rand.New(rand.NewSource(6))
	res, err := Run(Config{Channel: ch, Initiator: 3, NTX: 2, PayloadBytes: 8}, rng, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Initiator() != 3 {
		t.Errorf("Initiator = %d, want 3", res.Initiator())
	}
	if !res.Received[3] || res.Latency[3] != 0 {
		t.Error("initiator must hold the packet at time zero")
	}
}
