package glossy

import (
	"math/rand"
	"testing"

	"iotmpc/internal/phy"
	"iotmpc/internal/topology"
)

func BenchmarkFloodFlockLab(b *testing.B) {
	ch, err := topology.FlockLab().Channel(phy.DefaultParams(), 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	cfg := Config{Channel: ch, Initiator: 0, NTX: 6, PayloadBytes: 16}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, rng, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFloodDCube(b *testing.B) {
	ch, err := topology.DCube().Channel(phy.DefaultParams(), 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	cfg := Config{Channel: ch, Initiator: 0, NTX: 6, PayloadBytes: 16}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, rng, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}
