package glossy

import (
	"math/rand"
	"testing"

	"iotmpc/internal/phy"
	"iotmpc/internal/sim"
	"iotmpc/internal/topology"
)

// Flood benchmarks at real testbed sizes (FlockLab 26 nodes, D-Cube 48).
// The plain variants allocate per flood (the historical API); the Arena
// variants are the warm hot path the scenario engine runs on — CI exports
// both to BENCH_flood.json and gates the Arena variants at 0 allocs/op.

func benchChannel(b *testing.B, tb topology.Topology) *phy.Channel {
	b.Helper()
	ch, err := tb.Channel(phy.DefaultParams(), 1)
	if err != nil {
		b.Fatal(err)
	}
	return ch
}

func benchFlood(b *testing.B, tb topology.Topology) {
	ch := benchChannel(b, tb)
	rng := rand.New(rand.NewSource(1))
	cfg := Config{Channel: ch, Initiator: 0, NTX: 6, PayloadBytes: 16}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, rng, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFloodArena(b *testing.B, tb topology.Topology) {
	ch := benchChannel(b, tb)
	rng := rand.New(rand.NewSource(1))
	cfg := Config{Channel: ch, Initiator: 0, NTX: 6, PayloadBytes: 16}
	var arena sim.Arena
	res, err := RunArena(cfg, rng, nil, nil, &arena, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arena.Reset()
		if res, err = RunArena(cfg, rng, nil, nil, &arena, res); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFloodFlockLab(b *testing.B) { benchFlood(b, topology.FlockLab()) }

func BenchmarkFloodDCube(b *testing.B) { benchFlood(b, topology.DCube()) }

func BenchmarkFloodArenaFlockLab(b *testing.B) { benchFloodArena(b, topology.FlockLab()) }

func BenchmarkFloodArenaDCube(b *testing.B) { benchFloodArena(b, topology.DCube()) }
