package glossy

import (
	"fmt"
	"math/bits"
	"math/rand"
	"time"

	"iotmpc/internal/phy"
	"iotmpc/internal/sim"
)

// RunLanes executes up to 64 independent floods of the same configuration
// at once, one per bit lane: coverage, the slot buckets, and the undecided-
// receiver state are uint64 lane masks, so certain links (a hard unit disk,
// PRR-0/1 trace entries) resolve for every lane with a handful of bitset
// operations instead of 64 scalar draws.
//
// rngs[l] is lane l's private randomness stream, and the contract is
// per-lane exactness: res[l] is bit-identical to Run(cfg, rngs[l], ...) for
// the same starting RNG state, with identical RNG consumption — each lane's
// stream is touched exactly when its scalar flood would touch it, so any
// partition of a trial batch into lane groups produces the same per-trial
// results. ledgers (optional, per lane; nil entries skip crediting) receive
// the same radio-time credits the scalar path books. Engines are not
// advanced here: callers advance per-lane engines by each Result.Duration
// (sim.Engine state never feeds back into flood outcomes).
//
// All scratch and result buffers are borrowed from the arena, and res (nil:
// allocate) is overwritten in place, so a warm call — same arena, same res,
// Reset between calls — performs zero heap allocations.
func RunLanes(cfg Config, lanes int, rngs []*rand.Rand, ledgers []*sim.RadioLedger,
	a *sim.Arena, res []*Result) ([]*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if lanes < 1 || lanes > phy.MaxLanes {
		return nil, fmt.Errorf("%w: %d lanes (want 1..%d)", ErrBadConfig, lanes, phy.MaxLanes)
	}
	if len(rngs) < lanes {
		return nil, fmt.Errorf("%w: %d rngs for %d lanes", ErrBadConfig, len(rngs), lanes)
	}
	if ledgers != nil && len(ledgers) < lanes {
		return nil, fmt.Errorf("%w: %d ledgers for %d lanes", ErrBadConfig, len(ledgers), lanes)
	}
	if res == nil {
		res = make([]*Result, lanes)
	} else if len(res) < lanes {
		return nil, fmt.Errorf("%w: %d result slots for %d lanes", ErrBadConfig, len(res), lanes)
	}
	ch := cfg.Channel
	n := ch.NumNodes()
	params := ch.Params()
	slotLen, err := params.SlotDuration(cfg.PayloadBytes)
	if err != nil {
		return nil, err
	}
	maxSlots := cfg.MaxSlots
	if maxSlots == 0 {
		maxSlots = 4 * cfg.NTX * n
	}
	table := ch.LinkTable()
	burstProb := params.InterferenceBurstProb
	L := lanes
	allLanes := ^uint64(0) >> (64 - L)

	// Per-(node,lane) state is node-major with stride L; per-node lane
	// masks replace the scalar path's bucket lists and undecided list.
	receivedMask := a.Uint64s(n)
	firstRx := a.Ints(n * L)
	txCount := a.Ints(n * L)
	doneSlot := a.Ints(n * L)
	for i := range doneSlot {
		doneSlot[i] = -1
	}
	scheduled := a.Ints(L)
	endSlot := a.Ints(L)
	for l := 0; l < L; l++ {
		scheduled[l] = 1 // the initiator
		endSlot[l] = maxSlots
	}
	// cur/next1/next2 are the scalar path's three rotating slot buckets,
	// as lane masks per node: Glossy only ever schedules a node for slot+1
	// (first reception) or slot+2 (relay alternation). Scanning them in
	// node order yields the ascending transmitter lists the scalar merge
	// maintained — order is load-bearing for trace union products.
	cur := a.Uint64s(n)
	next1 := a.Uint64s(n)
	next2 := a.Uint64s(n)
	txs := a.Ints(n)
	txLanes := a.Uint64s(n)

	receivedMask[cfg.Initiator] = allLanes
	cur[cfg.Initiator] = allLanes

	liveMask := allLanes
	slot := 0
	for ; slot < maxSlots; slot++ {
		if liveMask == 0 {
			break
		}
		// Gather this slot's transmitters (ascending by construction).
		ntx := 0
		var slotLanes uint64
		for node := 0; node < n; node++ {
			if m := cur[node]; m != 0 {
				txs[ntx] = node
				txLanes[ntx] = m
				ntx++
				slotLanes |= m
			}
		}
		if slotLanes == 0 {
			// Idle alternation slot in every live lane: no draws anywhere.
			cur, next1, next2 = next1, next2, cur
			continue
		}
		// Receptions: lanes idle this slot (no bit in slotLanes) and lanes
		// where rx already holds the packet draw nothing — exactly the
		// scalar skip set.
		for rx := 0; rx < n; rx++ {
			und := slotLanes &^ receivedMask[rx]
			if und == 0 {
				continue
			}
			act := und
			if burstProb > 0 {
				for m := und; m != 0; {
					l := bits.TrailingZeros64(m)
					bit := uint64(1) << l
					m &^= bit
					if rngs[l].Float64() < burstProb {
						act &^= bit // receiver blocked by an interference burst
					}
				}
			}
			rcv := table.ReceiveConcurrentMask(rx, txs[:ntx], txLanes[:ntx], act, rngs)
			if rcv == 0 {
				continue
			}
			for m := rcv; m != 0; {
				l := bits.TrailingZeros64(m)
				m &^= uint64(1) << l
				firstRx[rx*L+l] = slot
				scheduled[l]++
			}
			receivedMask[rx] |= rcv
			next1[rx] |= rcv // Glossy: retransmit in the immediately next slot
		}
		// Account transmissions and schedule follow-ups; zeroing cur as it
		// is consumed readies it for reuse as next2 after the rotation.
		for i := 0; i < ntx; i++ {
			node := txs[i]
			for m := txLanes[i]; m != 0; {
				l := bits.TrailingZeros64(m)
				bit := uint64(1) << l
				m &^= bit
				idx := node*L + l
				txCount[idx]++
				if txCount[idx] < cfg.NTX {
					next2[node] |= bit
				} else {
					doneSlot[idx] = slot // radio off after final transmission
					scheduled[l]--
					if scheduled[l] == 0 {
						endSlot[l] = slot + 1
						liveMask &^= bit
					}
				}
			}
			cur[node] = 0
		}
		cur, next1, next2 = next1, next2, cur
	}

	// Unpack each lane into its scalar-shaped Result.
	txCol := a.Ints(n)
	doneCol := a.Ints(n)
	for l := 0; l < L; l++ {
		r := res[l]
		if r == nil {
			r = &Result{}
			res[l] = r
		}
		*r = Result{
			Received:    a.Bools(n),
			FirstRxSlot: a.Ints(n),
			Latency:     a.Durations(n),
			Slots:       endSlot[l],
			Duration:    time.Duration(endSlot[l]) * slotLen,
			SlotLength:  slotLen,
			initiator:   cfg.Initiator,
		}
		bit := uint64(1) << l
		for i := 0; i < n; i++ {
			if receivedMask[i]&bit != 0 {
				r.Received[i] = true
				r.FirstRxSlot[i] = firstRx[i*L+l]
				r.Latency[i] = time.Duration(firstRx[i*L+l]+1) * slotLen
			} else {
				r.FirstRxSlot[i] = -1
				r.Latency[i] = -1
			}
		}
		r.FirstRxSlot[cfg.Initiator] = 0
		r.Latency[cfg.Initiator] = 0

		if ledgers != nil && ledgers[l] != nil {
			for i := 0; i < n; i++ {
				txCol[i] = txCount[i*L+l]
				doneCol[i] = doneSlot[i*L+l]
			}
			if err := creditRadio(ledgers[l], r, txCol, doneCol, slotLen, endSlot[l]); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}
