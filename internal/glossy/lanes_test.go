package glossy

import (
	"math/rand"
	"reflect"
	"testing"

	"iotmpc/internal/phy"
	"iotmpc/internal/sim"
	"iotmpc/internal/topology"
)

// TestRunLanesMatchesScalar pins the bit-sliced flood to its per-lane
// contract across all three backends and several lane counts: lane l's
// Result and radio ledger are bit-identical to a scalar flood on lane l's
// RNG stream, and every lane's stream stays aligned with its scalar twin —
// so partitioning a trial batch into lane groups of any width is
// deterministic.
func TestRunLanesMatchesScalar(t *testing.T) {
	for name, radio := range floodBackends(t) {
		t.Run(name, func(t *testing.T) {
			n := radio.NumNodes()
			cfg := Config{Channel: radio, Initiator: 0, NTX: 4, PayloadBytes: 16}
			for _, lanes := range []int{1, 2, 7, 64} {
				scalarRNG := make([]*rand.Rand, lanes)
				laneRNG := make([]*rand.Rand, lanes)
				laneLedgers := make([]*sim.RadioLedger, lanes)
				for l := 0; l < lanes; l++ {
					seed := int64(300 + l)
					scalarRNG[l] = rand.New(rand.NewSource(seed))
					laneRNG[l] = rand.New(rand.NewSource(seed))
					laneLedgers[l] = sim.NewRadioLedger(n)
				}
				var arena sim.Arena
				var res []*Result
				// Consecutive floods on the same streams catch drift that a
				// single flood would miss.
				for flood := 0; flood < 5; flood++ {
					arena.Reset()
					var err error
					res, err = RunLanes(cfg, lanes, laneRNG, laneLedgers, &arena, res)
					if err != nil {
						t.Fatal(err)
					}
					for l := 0; l < lanes; l++ {
						scalarLedger := sim.NewRadioLedger(n)
						want, err := Run(cfg, scalarRNG[l], scalarLedger, nil)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(want, res[l]) {
							t.Fatalf("lanes=%d flood %d lane %d diverged\nwant %+v\ngot  %+v",
								lanes, flood, l, want, res[l])
						}
						for node := 0; node < n; node++ {
							if laneLedgers[l].OnTime(node) != scalarLedger.OnTime(node) {
								t.Fatalf("lanes=%d flood %d lane %d node %d: ledger %v != scalar %v",
									lanes, flood, l, node,
									laneLedgers[l].OnTime(node), scalarLedger.OnTime(node))
							}
						}
						// Ledgers accumulate across floods; reset the lane one
						// to keep the per-flood comparison exact.
						laneLedgers[l] = sim.NewRadioLedger(n)
					}
				}
				for l := 0; l < lanes; l++ {
					if scalarRNG[l].Int63() != laneRNG[l].Int63() {
						t.Fatalf("lanes=%d lane %d RNG stream diverged from its scalar twin", lanes, l)
					}
				}
			}
		})
	}
}

// TestRunLanesErrors covers the argument contract.
func TestRunLanesErrors(t *testing.T) {
	ch, err := topology.FlockLab().Channel(phy.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Channel: ch, Initiator: 0, NTX: 4, PayloadBytes: 16}
	rngs := make([]*rand.Rand, 64)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(int64(i)))
	}
	cases := []struct {
		name string
		call func() error
	}{
		{"zero lanes", func() error { _, err := RunLanes(cfg, 0, rngs, nil, nil, nil); return err }},
		{"too many lanes", func() error { _, err := RunLanes(cfg, 65, rngs, nil, nil, nil); return err }},
		{"short rngs", func() error { _, err := RunLanes(cfg, 8, rngs[:4], nil, nil, nil); return err }},
		{"short ledgers", func() error {
			_, err := RunLanes(cfg, 8, rngs, make([]*sim.RadioLedger, 4), nil, nil)
			return err
		}},
		{"short res", func() error { _, err := RunLanes(cfg, 8, rngs, nil, nil, make([]*Result, 4)); return err }},
		{"bad config", func() error { _, err := RunLanes(Config{}, 8, rngs, nil, nil, nil); return err }},
	}
	for _, tc := range cases {
		if tc.call() == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

// TestWarmFloodLanesZeroAlloc is the perf contract of the lane path: once
// the arena and the reused result slots are warm, a 64-lane flood batch
// performs zero heap allocations — same bar the scalar arena path holds.
func TestWarmFloodLanesZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is not meaningful under the race detector")
	}
	ch, err := topology.FlockLab().Channel(phy.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Channel: ch, Initiator: 0, NTX: 6, PayloadBytes: 16}
	rngs := make([]*rand.Rand, 64)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(int64(i)))
	}
	var arena sim.Arena
	res, err := RunLanes(cfg, 64, rngs, nil, &arena, nil) // warm-up borrow
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		arena.Reset()
		if _, err := RunLanes(cfg, 64, rngs, nil, &arena, res); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm lane flood allocates %.1f objects per run, want 0", allocs)
	}
}

// benchFloodLanes runs one full lane batch per iteration and additionally
// reports ns/trial (ns/op divided by the lane count), the number directly
// comparable with BenchmarkFloodArena*.
func benchFloodLanes(b *testing.B, tb topology.Topology, lanes int) {
	ch := benchChannel(b, tb)
	cfg := Config{Channel: ch, Initiator: 0, NTX: 6, PayloadBytes: 16}
	rngs := make([]*rand.Rand, lanes)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(int64(i + 1)))
	}
	var arena sim.Arena
	res, err := RunLanes(cfg, lanes, rngs, nil, &arena, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arena.Reset()
		if res, err = RunLanes(cfg, lanes, rngs, nil, &arena, res); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*lanes), "ns/trial")
}

func BenchmarkFloodLanesArenaFlockLab(b *testing.B) { benchFloodLanes(b, topology.FlockLab(), 64) }

func BenchmarkFloodLanesArenaDCube(b *testing.B) { benchFloodLanes(b, topology.DCube(), 64) }
