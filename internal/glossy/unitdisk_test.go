package glossy

import (
	"math/rand"
	"testing"

	"iotmpc/internal/phy"
	"iotmpc/internal/topology"
)

// Property tests over the idealized unit-disk backend: with certain
// reception and no ambient loss, flooding is fully deterministic, so the
// assertions are exact — 100% coverage on connected topologies, zero
// receptions across disconnected components, and first-reception slots that
// equal hop distances. No tolerance bands.

// floodOverDisk builds a hard unit disk over the topology and floods from
// node 0.
func floodOverDisk(t *testing.T, tb topology.Topology, radius float64, ntx int) (*phy.UnitDisk, *Result) {
	t.Helper()
	u, err := phy.NewUnitDisk(phy.IdealParams(), tb.Positions, radius, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Channel:      u,
		Initiator:    0,
		NTX:          ntx,
		PayloadBytes: 16,
	}, rand.New(rand.NewSource(1)), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return u, res
}

// assertExactFlood checks the deterministic flood invariants: node i
// received iff it is graph-reachable from the initiator, and a node at hop
// distance d first receives in slot d-1 (the initiator transmits in slot 0).
func assertExactFlood(t *testing.T, u *phy.UnitDisk, res *Result) {
	t.Helper()
	dist, err := phy.HopDistances(u, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range dist {
		if reachable := d >= 0; res.Received[i] != reachable {
			t.Fatalf("node %d (hop %d): Received=%v, want %v", i, d, res.Received[i], reachable)
		}
		switch {
		case i == 0:
			if res.FirstRxSlot[i] != 0 {
				t.Fatalf("initiator FirstRxSlot %d", res.FirstRxSlot[i])
			}
		case d < 0:
			if res.FirstRxSlot[i] != -1 || res.Latency[i] != -1 {
				t.Fatalf("unreachable node %d has rx slot %d latency %v",
					i, res.FirstRxSlot[i], res.Latency[i])
			}
		default:
			if res.FirstRxSlot[i] != d-1 {
				t.Fatalf("node %d at hop %d first received in slot %d, want %d",
					i, d, res.FirstRxSlot[i], d-1)
			}
		}
	}
}

func TestUnitDiskFloodConnectedExactCoverage(t *testing.T) {
	// Random geometric deployments across seeds; every reachable node must
	// be covered exactly, for any NTX >= 1 (the ideal channel never loses
	// the first relay opportunity).
	for seed := int64(1); seed <= 8; seed++ {
		tb, err := topology.RandomGeometric(20, 120, 90, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, ntx := range []int{1, 3} {
			u, res := floodOverDisk(t, tb, 45, ntx)
			assertExactFlood(t, u, res)
			if _, connected, err := phy.Diameter(u, 0.5); err != nil {
				t.Fatal(err)
			} else if connected && res.Coverage() != 1 {
				t.Fatalf("seed %d ntx %d: connected topology covered %v, want exactly 1",
					seed, ntx, res.Coverage())
			}
		}
	}
}

func TestUnitDiskFloodLineExactSlots(t *testing.T) {
	// A 12-node line with adjacent-only links: node i receives exactly in
	// slot i-1 and the flood covers everyone.
	tb, err := topology.Line(12, 10)
	if err != nil {
		t.Fatal(err)
	}
	u, res := floodOverDisk(t, tb, 12, 2)
	assertExactFlood(t, u, res)
	if res.Coverage() != 1 {
		t.Fatalf("line coverage %v, want exactly 1", res.Coverage())
	}
}

func TestUnitDiskFloodDisconnectedNeverReceives(t *testing.T) {
	// Two 5-node clusters 1 km apart: the far cluster must never receive,
	// in any of several runs with different RNG seeds and NTX budgets.
	pos := make([]phy.Position, 0, 10)
	for i := 0; i < 5; i++ {
		pos = append(pos, phy.Position{X: float64(i) * 10})
	}
	for i := 0; i < 5; i++ {
		pos = append(pos, phy.Position{X: 1000 + float64(i)*10})
	}
	u, err := phy.NewUnitDisk(phy.IdealParams(), pos, 15, 0)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		for _, ntx := range []int{1, 4} {
			res, err := Run(Config{
				Channel:      u,
				Initiator:    0,
				NTX:          ntx,
				PayloadBytes: 16,
			}, rand.New(rand.NewSource(seed)), nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				if !res.Received[i] {
					t.Fatalf("seed %d ntx %d: near-cluster node %d missed", seed, ntx, i)
				}
			}
			for i := 5; i < 10; i++ {
				if res.Received[i] {
					t.Fatalf("seed %d ntx %d: far-cluster node %d received across the gap",
						seed, ntx, i)
				}
			}
		}
	}
}

// TestUnitDiskFloodGrayZoneStaysDeterministicAtCore verifies that adding a
// gray zone only adds reception (never removes it): every node covered by
// the hard disk is still covered, exactly.
func TestUnitDiskFloodGrayZoneStaysDeterministicAtCore(t *testing.T) {
	tb, err := topology.Line(8, 10)
	if err != nil {
		t.Fatal(err)
	}
	hard, hardRes := floodOverDisk(t, tb, 12, 2)
	assertExactFlood(t, hard, hardRes)
	gray, err := phy.NewUnitDisk(phy.IdealParams(), tb.Positions, 12, 6)
	if err != nil {
		t.Fatal(err)
	}
	grayRes, err := Run(Config{
		Channel:      gray,
		Initiator:    0,
		NTX:          2,
		PayloadBytes: 16,
	}, rand.New(rand.NewSource(7)), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range hardRes.Received {
		if got && !grayRes.Received[i] {
			t.Fatalf("node %d covered by hard disk but not with gray zone", i)
		}
	}
}
