// Package glossy implements the Glossy concurrent-transmission flood
// (Ferrari/Zimmerling et al., IPSN 2011): an initiator transmits a packet;
// every node that receives it retransmits in the immediately following slot,
// perfectly synchronized with every other relay of the same packet, so the
// concurrent transmissions interfere constructively. Each node relays at most
// NTX times and keeps its radio on from the flood start until its last
// transmission (the "radio off at NTX" optimization in the original paper).
//
// Glossy is both the conceptual building block of MiniCast (which intersperses
// many Glossy floods in one TDMA chain) and the network-wide time-sync
// reference that makes slot-level synchronization possible; the simulation
// assumes sync has been established by a Glossy flood at round start.
package glossy

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"iotmpc/internal/phy"
	"iotmpc/internal/sim"
)

// Errors returned by the package.
var (
	// ErrBadConfig is returned for invalid flood configuration.
	ErrBadConfig = errors.New("glossy: invalid configuration")
)

// Config parameterizes one flood.
type Config struct {
	// Channel is the radio backend (any phy.Radio implementation).
	Channel phy.Radio
	// Initiator is the flooding node.
	Initiator int
	// NTX is the per-node retransmission budget.
	NTX int
	// PayloadBytes sizes the flooded frame.
	PayloadBytes int
	// MaxSlots bounds the flood length; 0 selects a safe default of
	// 4 × NTX × number of nodes.
	MaxSlots int
}

func (c Config) validate() error {
	switch {
	case c.Channel == nil:
		return fmt.Errorf("%w: nil channel", ErrBadConfig)
	case c.Initiator < 0 || c.Initiator >= c.Channel.NumNodes():
		return fmt.Errorf("%w: initiator %d", ErrBadConfig, c.Initiator)
	case c.NTX <= 0:
		return fmt.Errorf("%w: NTX %d", ErrBadConfig, c.NTX)
	case c.PayloadBytes < 0 || c.PayloadBytes > phy.MaxPSDU:
		return fmt.Errorf("%w: payload %d", ErrBadConfig, c.PayloadBytes)
	case c.MaxSlots < 0:
		return fmt.Errorf("%w: max slots %d", ErrBadConfig, c.MaxSlots)
	}
	return nil
}

// Result reports one flood execution.
type Result struct {
	// Received[i] reports whether node i got the packet.
	Received []bool
	// FirstRxSlot[i] is the slot of first reception (-1 if never; 0 means
	// the initiator's own slot-0 transmission).
	FirstRxSlot []int
	// Latency[i] is the virtual time from flood start to first reception.
	Latency []time.Duration
	// Slots is the number of slots the flood occupied.
	Slots int
	// Duration is Slots × slot length.
	Duration time.Duration
	// SlotLength is the per-slot duration used.
	SlotLength time.Duration

	initiator int
}

// Coverage returns the fraction of nodes (excluding the initiator) that
// received the packet.
func (r *Result) Coverage() float64 {
	n := len(r.Received)
	if n <= 1 {
		return 1
	}
	got := 0
	for i, ok := range r.Received {
		if i != initiatorIndex(r) && ok {
			got++
		}
	}
	return float64(got) / float64(n-1)
}

func initiatorIndex(r *Result) int { return r.initiator }

// Run executes one flood. The RNG drives fading and reception draws; the
// ledger (optional) is credited with tx/rx time; the engine (optional) has
// its clock advanced by the flood duration.
func Run(cfg Config, rng *rand.Rand, ledger *sim.RadioLedger, engine *sim.Engine) (*Result, error) {
	return RunArena(cfg, rng, ledger, engine, nil, nil)
}

// RunArena is Run with caller-managed buffer reuse: every scratch array and
// Result backing slice is borrowed from the arena (nil: heap-allocate, as
// Run always did), and res (nil: allocate one) is overwritten in place. The
// returned Result aliases arena memory and is valid until the caller's next
// a.Reset(); a warm flood — same arena, same res, Reset between floods —
// performs zero heap allocations. Outcomes are bit-identical to Run for the
// same RNG state: the arena changes where buffers live, never what is drawn.
func RunArena(cfg Config, rng *rand.Rand, ledger *sim.RadioLedger, engine *sim.Engine,
	a *sim.Arena, res *Result) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ch := cfg.Channel
	n := ch.NumNodes()
	params := ch.Params()
	slotLen, err := params.SlotDuration(cfg.PayloadBytes)
	if err != nil {
		return nil, err
	}
	maxSlots := cfg.MaxSlots
	if maxSlots == 0 {
		maxSlots = 4 * cfg.NTX * n
	}
	table := ch.LinkTable()
	burstProb := params.InterferenceBurstProb // invariant for the whole flood

	// All buffer borrows go through the arena, whose getters fall back to
	// plain make() on a nil receiver — one allocation path for both modes.
	if res == nil {
		res = &Result{}
	}
	*res = Result{
		Received:    a.Bools(n),
		FirstRxSlot: a.Ints(n),
		Latency:     a.Durations(n),
		SlotLength:  slotLen,
		initiator:   cfg.Initiator,
	}
	for i := range res.FirstRxSlot {
		res.FirstRxSlot[i] = -1
		res.Latency[i] = -1
	}
	res.Received[cfg.Initiator] = true
	res.FirstRxSlot[cfg.Initiator] = 0
	res.Latency[cfg.Initiator] = 0

	txCount := a.Ints(n)  // transmissions performed
	doneSlot := a.Ints(n) // slot after which the radio turned off (-1: still on)
	for i := range doneSlot {
		doneSlot[i] = -1
	}

	// Slot schedule as three rotating buckets instead of a full-node scan
	// per slot: Glossy only ever schedules a node for slot+1 (first
	// reception) or slot+2 (relay alternation), so `cur` holds this slot's
	// transmitters, `next1`/`next2` the two upcoming slots. `scheduled`
	// counts nodes present in any bucket (each node is in at most one);
	// the flood ends when it reaches zero — every budget exhausted.
	cur := a.Ints(n)[:0]
	next1 := a.Ints(n)[:0]
	next2 := a.Ints(n)[:0]
	merged := a.Ints(n)
	cur = append(cur, cfg.Initiator)
	scheduled := 1
	// A bucket fills as two ascending runs — relays rescheduled two slots
	// ago, then last slot's receivers — so tracking the run boundary turns
	// "sort the transmitters" into a linear merge, or nothing at all when
	// only one run is present. boundCur/boundNext1 are the run-A lengths
	// of cur and next1.
	boundCur, boundNext1 := 1, 0

	// Undecided receivers as an ascending linked list (rxNext[n] is the
	// head sentinel): once a node receives it never draws again, so the
	// reception loop shrinks with coverage instead of re-scanning all n
	// nodes every slot. Iteration order stays ascending — RNG draw order
	// is exactly the old full scan's.
	rxNext := a.Ints(n + 1)
	{
		prev := n
		for rx := 0; rx < n; rx++ {
			if res.Received[rx] {
				continue // the initiator starts decided
			}
			rxNext[prev] = rx
			prev = rx
		}
		rxNext[prev] = -1
	}

	slot := 0
	for ; slot < maxSlots; slot++ {
		if scheduled == 0 {
			break
		}
		if len(cur) == 0 {
			// Glossy's relay schedule alternates tx slots, so idle slots
			// occur; the flood only ends when every budget is exhausted.
			boundCur, boundNext1 = boundNext1, len(next2)
			cur, next1, next2 = next1, next2, cur
			continue
		}
		// Restore the ascending order the old full-node scan produced —
		// transmitter order is load-bearing for backends that fold links
		// in list order (trace union products).
		transmitters := cur
		if boundCur > 0 && boundCur < len(cur) {
			transmitters = mergeRuns(merged[:0], cur[:boundCur], cur[boundCur:])
		}
		// Receptions, over the undecided list only.
		for prev, rx := n, rxNext[n]; rx >= 0; {
			if burstProb > 0 && rng.Float64() < burstProb {
				prev, rx = rx, rxNext[rx]
				continue // receiver blocked by an ambient interference burst
			}
			if table.ReceiveConcurrentFast(rx, transmitters, rng) {
				res.Received[rx] = true
				res.FirstRxSlot[rx] = slot
				res.Latency[rx] = time.Duration(slot+1) * slotLen
				// Glossy: retransmit in the immediately next slot.
				next1 = append(next1, rx)
				scheduled++
				rxNext[prev] = rxNext[rx] // decided: unlink, prev stands
				rx = rxNext[rx]
				continue
			}
			prev, rx = rx, rxNext[rx]
		}
		// Account transmissions and schedule follow-ups: Glossy alternates
		// tx slots (tx, skip, tx, ...) so relays of the same wave stay
		// synchronized.
		for _, tx := range transmitters {
			txCount[tx]++
			if txCount[tx] < cfg.NTX {
				next2 = append(next2, tx)
			} else {
				doneSlot[tx] = slot // radio off after final transmission
				scheduled--
			}
		}
		boundCur, boundNext1 = boundNext1, len(next2)
		cur, next1, next2 = next1, next2, cur[:0]
	}
	res.Slots = slot
	res.Duration = time.Duration(slot) * slotLen

	if ledger != nil {
		if err := creditRadio(ledger, res, txCount, doneSlot, slotLen, slot); err != nil {
			return nil, err
		}
	}
	if engine != nil {
		if err := engine.Advance(res.Duration); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// mergeRuns appends the merge of two ascending, disjoint runs to dst and
// returns it.
func mergeRuns(dst, a, b []int) []int {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			dst = append(dst, a[i])
			i++
		} else {
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// Initiator returns the flood's initiating node.
func (r *Result) Initiator() int { return r.initiator }

// creditRadio converts the flood schedule into per-node tx/rx time: every
// node is listening from slot 0 until it turns off (doneSlot, or flood end if
// it never exhausted NTX), minus the slots it spent transmitting.
func creditRadio(ledger *sim.RadioLedger, res *Result, txCount, doneSlot []int, slotLen time.Duration, totalSlots int) error {
	for i := range txCount {
		onSlots := totalSlots
		if doneSlot[i] >= 0 {
			onSlots = doneSlot[i] + 1
		}
		txSlots := txCount[i]
		rxSlots := onSlots - txSlots
		if rxSlots < 0 {
			rxSlots = 0
		}
		err := ledger.AddBulk(i,
			time.Duration(txSlots)*slotLen,
			time.Duration(rxSlots)*slotLen)
		if err != nil {
			return err
		}
	}
	return nil
}
