// Package glossy implements the Glossy concurrent-transmission flood
// (Ferrari/Zimmerling et al., IPSN 2011): an initiator transmits a packet;
// every node that receives it retransmits in the immediately following slot,
// perfectly synchronized with every other relay of the same packet, so the
// concurrent transmissions interfere constructively. Each node relays at most
// NTX times and keeps its radio on from the flood start until its last
// transmission (the "radio off at NTX" optimization in the original paper).
//
// Glossy is both the conceptual building block of MiniCast (which intersperses
// many Glossy floods in one TDMA chain) and the network-wide time-sync
// reference that makes slot-level synchronization possible; the simulation
// assumes sync has been established by a Glossy flood at round start.
package glossy

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"iotmpc/internal/phy"
	"iotmpc/internal/sim"
)

// Errors returned by the package.
var (
	// ErrBadConfig is returned for invalid flood configuration.
	ErrBadConfig = errors.New("glossy: invalid configuration")
)

// Config parameterizes one flood.
type Config struct {
	// Channel is the radio backend (any phy.Radio implementation).
	Channel phy.Radio
	// Initiator is the flooding node.
	Initiator int
	// NTX is the per-node retransmission budget.
	NTX int
	// PayloadBytes sizes the flooded frame.
	PayloadBytes int
	// MaxSlots bounds the flood length; 0 selects a safe default of
	// 4 × NTX × number of nodes.
	MaxSlots int
}

func (c Config) validate() error {
	switch {
	case c.Channel == nil:
		return fmt.Errorf("%w: nil channel", ErrBadConfig)
	case c.Initiator < 0 || c.Initiator >= c.Channel.NumNodes():
		return fmt.Errorf("%w: initiator %d", ErrBadConfig, c.Initiator)
	case c.NTX <= 0:
		return fmt.Errorf("%w: NTX %d", ErrBadConfig, c.NTX)
	case c.PayloadBytes < 0 || c.PayloadBytes > phy.MaxPSDU:
		return fmt.Errorf("%w: payload %d", ErrBadConfig, c.PayloadBytes)
	case c.MaxSlots < 0:
		return fmt.Errorf("%w: max slots %d", ErrBadConfig, c.MaxSlots)
	}
	return nil
}

// Result reports one flood execution.
type Result struct {
	// Received[i] reports whether node i got the packet.
	Received []bool
	// FirstRxSlot[i] is the slot of first reception (-1 if never; 0 means
	// the initiator's own slot-0 transmission).
	FirstRxSlot []int
	// Latency[i] is the virtual time from flood start to first reception.
	Latency []time.Duration
	// Slots is the number of slots the flood occupied.
	Slots int
	// Duration is Slots × slot length.
	Duration time.Duration
	// SlotLength is the per-slot duration used.
	SlotLength time.Duration

	initiator int
}

// Coverage returns the fraction of nodes (excluding the initiator) that
// received the packet.
func (r *Result) Coverage() float64 {
	n := len(r.Received)
	if n <= 1 {
		return 1
	}
	got := 0
	for i, ok := range r.Received {
		if i != initiatorIndex(r) && ok {
			got++
		}
	}
	return float64(got) / float64(n-1)
}

func initiatorIndex(r *Result) int { return r.initiator }

// Run executes one flood. The RNG drives fading and reception draws; the
// ledger (optional) is credited with tx/rx time; the engine (optional) has
// its clock advanced by the flood duration.
func Run(cfg Config, rng *rand.Rand, ledger *sim.RadioLedger, engine *sim.Engine) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ch := cfg.Channel
	n := ch.NumNodes()
	slotLen, err := ch.Params().SlotDuration(cfg.PayloadBytes)
	if err != nil {
		return nil, err
	}
	maxSlots := cfg.MaxSlots
	if maxSlots == 0 {
		maxSlots = 4 * cfg.NTX * n
	}

	res := &Result{
		Received:    make([]bool, n),
		FirstRxSlot: make([]int, n),
		Latency:     make([]time.Duration, n),
		SlotLength:  slotLen,
		initiator:   cfg.Initiator,
	}
	for i := range res.FirstRxSlot {
		res.FirstRxSlot[i] = -1
		res.Latency[i] = -1
	}
	res.Received[cfg.Initiator] = true
	res.FirstRxSlot[cfg.Initiator] = 0
	res.Latency[cfg.Initiator] = 0

	txCount := make([]int, n)    // transmissions performed
	txNextSlot := make([]int, n) // slot of next scheduled transmission (-1: none)
	doneSlot := make([]int, n)   // slot after which the radio turned off (-1: still on)
	for i := range txNextSlot {
		txNextSlot[i] = -1
		doneSlot[i] = -1
	}
	txNextSlot[cfg.Initiator] = 0

	var transmitters []int
	slot := 0
	for ; slot < maxSlots; slot++ {
		transmitters = transmitters[:0]
		pending := false
		for i := 0; i < n; i++ {
			if txNextSlot[i] < 0 || txCount[i] >= cfg.NTX {
				continue
			}
			pending = true
			if txNextSlot[i] == slot {
				transmitters = append(transmitters, i)
			}
		}
		if !pending {
			break
		}
		if len(transmitters) == 0 {
			// Glossy's relay schedule alternates tx slots, so idle slots
			// occur; the flood only ends when every budget is exhausted.
			continue
		}
		// Receptions.
		burstProb := ch.Params().InterferenceBurstProb
		for rx := 0; rx < n; rx++ {
			if res.Received[rx] || doneSlot[rx] >= 0 {
				continue
			}
			if burstProb > 0 && rng.Float64() < burstProb {
				continue // receiver blocked by an ambient interference burst
			}
			ok, err := ch.ReceiveConcurrentFast(rx, transmitters, rng)
			if err != nil {
				return nil, err
			}
			if ok {
				res.Received[rx] = true
				res.FirstRxSlot[rx] = slot
				res.Latency[rx] = time.Duration(slot+1) * slotLen
				// Glossy: retransmit in the immediately next slot.
				txNextSlot[rx] = slot + 1
			}
		}
		// Account transmissions and schedule follow-ups: Glossy alternates
		// tx slots (tx, skip, tx, ...) so relays of the same wave stay
		// synchronized.
		for _, tx := range transmitters {
			txCount[tx]++
			if txCount[tx] < cfg.NTX {
				txNextSlot[tx] = slot + 2
			} else {
				txNextSlot[tx] = -1
				doneSlot[tx] = slot // radio off after final transmission
			}
		}
	}
	res.Slots = slot
	res.Duration = time.Duration(slot) * slotLen

	if ledger != nil {
		if err := creditRadio(ledger, res, txCount, doneSlot, slotLen, slot); err != nil {
			return nil, err
		}
	}
	if engine != nil {
		if err := engine.Advance(res.Duration); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Initiator returns the flood's initiating node.
func (r *Result) Initiator() int { return r.initiator }

// creditRadio converts the flood schedule into per-node tx/rx time: every
// node is listening from slot 0 until it turns off (doneSlot, or flood end if
// it never exhausted NTX), minus the slots it spent transmitting.
func creditRadio(ledger *sim.RadioLedger, res *Result, txCount, doneSlot []int, slotLen time.Duration, totalSlots int) error {
	for i := range txCount {
		onSlots := totalSlots
		if doneSlot[i] >= 0 {
			onSlots = doneSlot[i] + 1
		}
		txSlots := txCount[i]
		rxSlots := onSlots - txSlots
		if rxSlots < 0 {
			rxSlots = 0
		}
		err := ledger.AddBulk(i,
			time.Duration(txSlots)*slotLen,
			time.Duration(rxSlots)*slotLen)
		if err != nil {
			return err
		}
	}
	return nil
}
