// Package vss implements Feldman verifiable secret sharing (Feldman, FOCS
// 1987) as the hardening path beyond the paper's semi-honest model: the
// dealer publishes commitments to its polynomial coefficients in a
// discrete-log group, and every share holder can verify — without
// interaction — that its share lies on the committed polynomial. A malicious
// source can then no longer poison the aggregation with inconsistent shares;
// the paper's protocol (honest-but-curious) omits this and lists stronger
// adversaries as future work.
//
// Feldman requires the commitment group's order to equal the share field's
// modulus, so the group below is the order-q subgroup (q = 2⁶¹−1, the
// protocol field) of Z*_P for a 512-bit prime P = k·q+1. The 61-bit exponent
// order is far below production DL security — these are *simulation*
// parameters chosen so the layer composes exactly with internal/shamir; the
// construction is what matters for the reproduction. Commitments ride the
// same MiniCast chain as data items (k+1 group elements per source).
package vss

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"iotmpc/internal/field"
)

// Group parameters: P = k·q + 1 is a 512-bit prime with q = 2^61-1 (the
// share field modulus); G = 2^k mod P generates the order-q subgroup.
var (
	groupP, _ = new(big.Int).SetString(
		"fffffffffffffff8000000000000000000000000000000000000000000000000"+
			"000000000000000000000000000000000000000000000017bfffffffffffff43", 16)
	groupG, _ = new(big.Int).SetString(
		"f5f3169cb9fba5d3c8883f55fbb4365b2c44b229eca272af1b623820184e3dbe"+
			"11e08b9c84bd6a44f1d54d2623c2c11ba84ed2bd750d12bc45424db4e8b9c167", 16)
)

// Errors returned by the package.
var (
	// ErrVerifyFailed is returned when a share does not match the dealer's
	// commitments.
	ErrVerifyFailed = errors.New("vss: share verification failed")
	// ErrBadCommitment is returned for malformed commitment vectors.
	ErrBadCommitment = errors.New("vss: invalid commitment")
	// ErrBadParams is returned for invalid dealing parameters.
	ErrBadParams = errors.New("vss: invalid parameters")
)

// Share mirrors shamir.Share; declared locally so the aggregation layer and
// the verification layer stay independently usable.
type Share struct {
	X     field.Element
	Value field.Element
}

// Commitment is the dealer's public commitment vector:
// points[i] = G^{c_i} mod P for polynomial coefficient c_i.
type Commitment struct {
	points []*big.Int
}

// Degree returns the committed polynomial degree.
func (c *Commitment) Degree() int { return len(c.points) - 1 }

// Bytes returns the wire size of the commitment vector — what the sharing
// chain additionally carries per source when verification is enabled.
func (c *Commitment) Bytes() int {
	total := 0
	for _, p := range c.points {
		total += (groupP.BitLen() + 7) / 8
		_ = p
	}
	return total
}

// SecretCommitment returns the dealer's commitment to the secret itself
// (G^{P(0)}), useful for cross-checking aggregates.
func (c *Commitment) SecretCommitment() *big.Int {
	if len(c.points) == 0 {
		return nil
	}
	return new(big.Int).Set(c.points[0])
}

// Deal splits a secret verifiably: it returns the shares together with the
// commitment vector that holders verify against.
func Deal(secret field.Element, degree int, points []field.Element, rng io.Reader) ([]Share, *Commitment, error) {
	if degree < 0 || len(points) < degree+1 {
		return nil, nil, fmt.Errorf("%w: degree %d with %d points", ErrBadParams, degree, len(points))
	}
	for _, x := range points {
		if x.IsZero() {
			return nil, nil, fmt.Errorf("%w: zero public point", ErrBadParams)
		}
	}
	poly, err := field.NewRandomPoly(secret, degree, rng)
	if err != nil {
		return nil, nil, fmt.Errorf("sample polynomial: %w", err)
	}
	commit := &Commitment{points: make([]*big.Int, len(poly))}
	for i, coeff := range poly {
		commit.points[i] = new(big.Int).Exp(groupG, new(big.Int).SetUint64(coeff.Uint64()), groupP)
	}
	shares := make([]Share, len(points))
	for i, x := range points {
		shares[i] = Share{X: x, Value: poly.Eval(x)}
	}
	return shares, commit, nil
}

// Verify checks that the share lies on the dealer's committed polynomial:
//
//	G^{value} == Π points[i]^(x^i mod q)   (mod P)
//
// Because the subgroup order equals the share field modulus q, exponent
// arithmetic mod q matches polynomial arithmetic over GF(q) exactly.
func Verify(s Share, commit *Commitment) error {
	if commit == nil || len(commit.points) == 0 {
		return ErrBadCommitment
	}
	for _, p := range commit.points {
		if p == nil || p.Sign() <= 0 || p.Cmp(groupP) >= 0 {
			return ErrBadCommitment
		}
	}
	lhs := new(big.Int).Exp(groupG, new(big.Int).SetUint64(s.Value.Uint64()), groupP)

	rhs := big.NewInt(1)
	xPow := field.One
	for _, cm := range commit.points {
		term := new(big.Int).Exp(cm, new(big.Int).SetUint64(xPow.Uint64()), groupP)
		rhs.Mul(rhs, term)
		rhs.Mod(rhs, groupP)
		xPow = xPow.Mul(s.X)
	}
	if lhs.Cmp(rhs) != 0 {
		return ErrVerifyFailed
	}
	return nil
}

// AggregateCommitments multiplies per-source commitment vectors
// coefficient-wise, yielding the commitment to the SUM polynomial — so the
// reconstruction phase can verify public-point sums the same way shares are
// verified (Feldman commitments are additively homomorphic).
func AggregateCommitments(commits []*Commitment) (*Commitment, error) {
	if len(commits) == 0 {
		return nil, ErrBadCommitment
	}
	width := len(commits[0].points)
	out := &Commitment{points: make([]*big.Int, width)}
	for i := range out.points {
		out.points[i] = big.NewInt(1)
	}
	for _, c := range commits {
		if c == nil || len(c.points) != width {
			return nil, fmt.Errorf("%w: mismatched vector widths", ErrBadCommitment)
		}
		for i, p := range c.points {
			if p == nil || p.Sign() <= 0 || p.Cmp(groupP) >= 0 {
				return nil, ErrBadCommitment
			}
			out.points[i].Mul(out.points[i], p)
			out.points[i].Mod(out.points[i], groupP)
		}
	}
	return out, nil
}
