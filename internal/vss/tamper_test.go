package vss

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"

	"iotmpc/internal/field"
)

// Tamper-rejection properties beyond per-share edits: a dealer (or relay)
// that alters the published commitment vector, and an aggregator that alters
// sum shares, must both be caught — these are the attacks Feldman VSS exists
// to stop in the stronger-than-semi-honest setting.

func TestVerifyRejectsTamperedCommitmentPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	shares, commit, err := Deal(field.New(777), 3, shamirPoints(6), rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := range commit.points {
		// Multiply coefficient i's commitment by G: still a valid group
		// element, but it commits to c_i + 1 — every honest share must now
		// fail against it.
		tampered := &Commitment{points: make([]*big.Int, len(commit.points))}
		for j, p := range commit.points {
			tampered.points[j] = new(big.Int).Set(p)
		}
		tampered.points[i].Mul(tampered.points[i], groupG)
		tampered.points[i].Mod(tampered.points[i], groupP)
		for s, sh := range shares {
			if err := Verify(sh, tampered); !errors.Is(err, ErrVerifyFailed) {
				t.Fatalf("coefficient %d tampered: share %d verified (err=%v)", i, s, err)
			}
		}
	}
}

func TestAggregateRejectsTamperedSumShare(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const degree, n, sources = 2, 5, 3
	points := shamirPoints(n)
	sums := make([]field.Element, n)
	commits := make([]*Commitment, 0, sources)
	for s := 0; s < sources; s++ {
		shares, commit, err := Deal(field.New(uint64(50+s)), degree, points, rng)
		if err != nil {
			t.Fatal(err)
		}
		commits = append(commits, commit)
		for j := range shares {
			sums[j] = sums[j].Add(shares[j].Value)
		}
	}
	agg, err := AggregateCommitments(commits)
	if err != nil {
		t.Fatal(err)
	}
	// Honest sum shares pass; a one-off edit to any of them fails.
	for j := 0; j < n; j++ {
		good := Share{X: points[j], Value: sums[j]}
		if err := Verify(good, agg); err != nil {
			t.Fatalf("honest sum share %d rejected: %v", j, err)
		}
		bad := good
		bad.Value = bad.Value.Add(field.One)
		if err := Verify(bad, agg); !errors.Is(err, ErrVerifyFailed) {
			t.Errorf("tampered sum share %d verified (err=%v)", j, err)
		}
	}
}

func TestDegreeZeroRoundTrip(t *testing.T) {
	// A constant polynomial: every share carries the secret itself and the
	// single commitment point is the secret commitment.
	rng := rand.New(rand.NewSource(22))
	secret := field.New(31337)
	shares, commit, err := Deal(secret, 0, shamirPoints(4), rng)
	if err != nil {
		t.Fatal(err)
	}
	if commit.Degree() != 0 {
		t.Fatalf("degree = %d, want 0", commit.Degree())
	}
	want := new(big.Int).Exp(groupG, new(big.Int).SetUint64(secret.Uint64()), groupP)
	if commit.SecretCommitment().Cmp(want) != 0 {
		t.Error("secret commitment is not G^secret")
	}
	for i, s := range shares {
		if s.Value != secret {
			t.Errorf("share %d value %v, want the secret %v", i, s.Value, secret)
		}
		if err := Verify(s, commit); err != nil {
			t.Errorf("share %d: %v", i, err)
		}
	}
}

func TestAggregateSingleCommitmentIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	shares, commit, err := Deal(field.New(9), 2, shamirPoints(4), rng)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := AggregateCommitments([]*Commitment{commit})
	if err != nil {
		t.Fatal(err)
	}
	for i := range agg.points {
		if agg.points[i].Cmp(commit.points[i]) != 0 {
			t.Fatalf("point %d changed under single-element aggregation", i)
		}
	}
	for i, s := range shares {
		if err := Verify(s, agg); err != nil {
			t.Errorf("share %d failed against aggregated self: %v", i, err)
		}
	}
}

func TestDealIsDeterministicPerRNG(t *testing.T) {
	// The core lane path re-deals per trial on derived RNG streams; identical
	// streams must yield identical shares AND identical commitment vectors.
	points := shamirPoints(5)
	sharesA, commitA, err := Deal(field.New(5), 2, points, rand.New(rand.NewSource(24)))
	if err != nil {
		t.Fatal(err)
	}
	sharesB, commitB, err := Deal(field.New(5), 2, points, rand.New(rand.NewSource(24)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range sharesA {
		if sharesA[i] != sharesB[i] {
			t.Fatalf("share %d differs across identical RNG streams", i)
		}
	}
	for i := range commitA.points {
		if commitA.points[i].Cmp(commitB.points[i]) != 0 {
			t.Fatalf("commitment point %d differs across identical RNG streams", i)
		}
	}
}
