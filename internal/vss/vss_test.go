package vss

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"

	"iotmpc/internal/field"
	"iotmpc/internal/shamir"
)

func TestGroupParameters(t *testing.T) {
	// P must be prime, G must generate an order-q subgroup for q = 2^61-1.
	if !groupP.ProbablyPrime(40) {
		t.Fatal("P is not prime")
	}
	q := new(big.Int).SetUint64(field.Modulus)
	one := big.NewInt(1)
	if new(big.Int).Exp(groupG, q, groupP).Cmp(one) != 0 {
		t.Fatal("G^q != 1: generator order wrong")
	}
	if groupG.Cmp(one) == 0 {
		t.Fatal("G is trivial")
	}
	// P = k·q + 1 exactly.
	pm1 := new(big.Int).Sub(groupP, one)
	if new(big.Int).Mod(pm1, q).Sign() != 0 {
		t.Fatal("q does not divide P-1")
	}
}

func TestDealVerifyAllShares(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	points := shamirPoints(8)
	shares, commit, err := Deal(field.New(123456), 3, points, rng)
	if err != nil {
		t.Fatal(err)
	}
	if commit.Degree() != 3 {
		t.Errorf("commitment degree = %d, want 3", commit.Degree())
	}
	for i, s := range shares {
		if err := Verify(s, commit); err != nil {
			t.Errorf("share %d failed verification: %v", i, err)
		}
	}
}

func TestVerifyRejectsTamperedShare(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	shares, commit, err := Deal(field.New(42), 2, shamirPoints(5), rng)
	if err != nil {
		t.Fatal(err)
	}
	bad := shares[0]
	bad.Value = bad.Value.Add(field.One)
	if err := Verify(bad, commit); !errors.Is(err, ErrVerifyFailed) {
		t.Errorf("tampered value: %v, want ErrVerifyFailed", err)
	}
	swapped := shares[0]
	swapped.X = shares[1].X // right value, wrong point
	if err := Verify(swapped, commit); !errors.Is(err, ErrVerifyFailed) {
		t.Errorf("swapped point: %v, want ErrVerifyFailed", err)
	}
}

func TestVerifyRejectsForeignCommitment(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sharesA, _, err := Deal(field.New(1), 2, shamirPoints(5), rng)
	if err != nil {
		t.Fatal(err)
	}
	_, commitB, err := Deal(field.New(2), 2, shamirPoints(5), rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(sharesA[0], commitB); !errors.Is(err, ErrVerifyFailed) {
		t.Errorf("foreign commitment: %v, want ErrVerifyFailed", err)
	}
}

func TestVerifyMalformedCommitment(t *testing.T) {
	if err := Verify(Share{}, nil); !errors.Is(err, ErrBadCommitment) {
		t.Errorf("nil: %v, want ErrBadCommitment", err)
	}
	bad := &Commitment{points: []*big.Int{big.NewInt(0)}}
	if err := Verify(Share{}, bad); !errors.Is(err, ErrBadCommitment) {
		t.Errorf("zero element: %v, want ErrBadCommitment", err)
	}
	huge := &Commitment{points: []*big.Int{new(big.Int).Add(groupP, big.NewInt(1))}}
	if err := Verify(Share{}, huge); !errors.Is(err, ErrBadCommitment) {
		t.Errorf("out of range: %v, want ErrBadCommitment", err)
	}
}

func TestDealParamErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, _, err := Deal(field.One, -1, shamirPoints(3), rng); !errors.Is(err, ErrBadParams) {
		t.Errorf("negative degree: %v", err)
	}
	if _, _, err := Deal(field.One, 5, shamirPoints(3), rng); !errors.Is(err, ErrBadParams) {
		t.Errorf("too few points: %v", err)
	}
	zero := []field.Element{field.Zero, field.One}
	if _, _, err := Deal(field.One, 1, zero, rng); !errors.Is(err, ErrBadParams) {
		t.Errorf("zero point: %v", err)
	}
}

func TestAggregateCommitmentsVerifySums(t *testing.T) {
	// The PPDA flow with verification: every source deals verifiably; a
	// destination sums its shares; the sum share must verify against the
	// aggregated commitment vector (Feldman homomorphism).
	rng := rand.New(rand.NewSource(5))
	const degree, n, sources = 2, 6, 4
	points := shamirPoints(n)

	sums := make([]field.Element, n)
	commits := make([]*Commitment, 0, sources)
	var total field.Element
	for s := 0; s < sources; s++ {
		secret := field.New(uint64(1000 + s))
		total = total.Add(secret)
		shares, commit, err := Deal(secret, degree, points, rng)
		if err != nil {
			t.Fatal(err)
		}
		commits = append(commits, commit)
		for j := range shares {
			sums[j] = sums[j].Add(shares[j].Value)
		}
	}
	aggCommit, err := AggregateCommitments(commits)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		sumShare := Share{X: points[j], Value: sums[j]}
		if err := Verify(sumShare, aggCommit); err != nil {
			t.Errorf("sum share %d failed aggregated verification: %v", j, err)
		}
	}
	// The aggregated secret commitment matches G^total.
	want := new(big.Int).Exp(groupG, new(big.Int).SetUint64(total.Uint64()), groupP)
	if aggCommit.SecretCommitment().Cmp(want) != 0 {
		t.Error("aggregated secret commitment mismatch")
	}
}

func TestAggregateCommitmentsErrors(t *testing.T) {
	if _, err := AggregateCommitments(nil); !errors.Is(err, ErrBadCommitment) {
		t.Errorf("empty: %v", err)
	}
	rng := rand.New(rand.NewSource(6))
	_, c2, err := Deal(field.One, 2, shamirPoints(4), rng)
	if err != nil {
		t.Fatal(err)
	}
	_, c3, err := Deal(field.One, 3, shamirPoints(5), rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AggregateCommitments([]*Commitment{c2, c3}); !errors.Is(err, ErrBadCommitment) {
		t.Errorf("width mismatch: %v", err)
	}
}

func TestCommitmentBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	_, commit, err := Deal(field.One, 8, shamirPoints(10), rng)
	if err != nil {
		t.Fatal(err)
	}
	// 9 coefficients × 64 bytes (512-bit group elements).
	if got := commit.Bytes(); got != 9*64 {
		t.Errorf("Bytes = %d, want %d", got, 9*64)
	}
}

func TestVSSSharesInteropWithShamir(t *testing.T) {
	// VSS shares are plain Shamir shares: reconstruction works unchanged.
	rng := rand.New(rand.NewSource(8))
	secret := field.New(987654)
	const degree = 3
	points := shamirPoints(8)
	shares, _, err := Deal(secret, degree, points, rng)
	if err != nil {
		t.Fatal(err)
	}
	converted := make([]shamir.Share, degree+1)
	for i := range converted {
		converted[i] = shamir.Share{X: shares[i].X, Value: shares[i].Value}
	}
	got, err := shamir.Reconstruct(converted, degree)
	if err != nil {
		t.Fatal(err)
	}
	if got != secret {
		t.Errorf("reconstructed %v, want %v", got, secret)
	}
}

func shamirPoints(n int) []field.Element {
	return shamir.PublicPoints(n)
}
