package core

import (
	"errors"
	"testing"
	"time"

	"iotmpc/internal/topology"
	"iotmpc/internal/trace"
)

// bootFor caches bootstraps per protocol to keep the test suite quick.
func bootFor(t *testing.T, cfg Config) *Bootstrap {
	t.Helper()
	boot, err := RunBootstrap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return boot
}

func TestRunRoundNilBootstrap(t *testing.T) {
	if _, err := RunRound(nil, 0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("error = %v, want ErrBadConfig", err)
	}
}

func TestS3RoundAllNodesCorrect(t *testing.T) {
	boot := bootFor(t, flockConfig(S3))
	res, err := RunRound(boot, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := boot.Channel.NumNodes()
	if res.CorrectNodes != n {
		t.Errorf("correct nodes = %d/%d", res.CorrectNodes, n)
	}
	for i := 0; i < n; i++ {
		if !res.NodeOK[i] {
			t.Errorf("node %d failed", i)
			continue
		}
		if res.Aggregate[i] != res.Expected {
			t.Errorf("node %d aggregate %v != expected %v", i, res.Aggregate[i], res.Expected)
		}
		if res.Latency[i] <= 0 {
			t.Errorf("node %d latency %v", i, res.Latency[i])
		}
		if res.RadioOn[i] <= 0 {
			t.Errorf("node %d radio-on %v", i, res.RadioOn[i])
		}
	}
}

func TestS4RoundAllNodesCorrect(t *testing.T) {
	boot := bootFor(t, flockConfig(S4))
	res, err := RunRound(boot, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := boot.Channel.NumNodes()
	if res.CorrectNodes < n-1 { // S4 tolerates rare per-node misses by design
		t.Errorf("correct nodes = %d/%d", res.CorrectNodes, n)
	}
}

func TestS4BeatsS3OnBothMetrics(t *testing.T) {
	s3 := bootFor(t, flockConfig(S3))
	s4 := bootFor(t, flockConfig(S4))
	var s3Lat, s4Lat, s3Radio, s4Radio time.Duration
	const trials = 3
	for trial := uint64(0); trial < trials; trial++ {
		r3, err := RunRound(s3, trial)
		if err != nil {
			t.Fatal(err)
		}
		r4, err := RunRound(s4, trial)
		if err != nil {
			t.Fatal(err)
		}
		s3Lat += r3.MeanLatency
		s4Lat += r4.MeanLatency
		s3Radio += r3.MeanRadioOn
		s4Radio += r4.MeanRadioOn
	}
	if s4Lat*2 >= s3Lat {
		t.Errorf("S4 latency %v not at least 2x better than S3 %v", s4Lat/trials, s3Lat/trials)
	}
	if s4Radio*2 >= s3Radio {
		t.Errorf("S4 radio %v not at least 2x better than S3 %v", s4Radio/trials, s3Radio/trials)
	}
}

func TestRoundDeterministicGivenTrial(t *testing.T) {
	boot := bootFor(t, flockConfig(S4))
	a, err := RunRound(boot, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRound(boot, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Expected != b.Expected || a.MeanLatency != b.MeanLatency || a.MeanRadioOn != b.MeanRadioOn {
		t.Error("same trial produced different results")
	}
	c, err := RunRound(boot, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Expected == c.Expected {
		t.Error("different trials produced identical secrets")
	}
}

func TestPartialSourcesSmallerChain(t *testing.T) {
	few := flockConfig(S3)
	few.Sources = []int{0, 5, 9}
	bootFew := bootFor(t, few)
	resFew, err := RunRound(bootFew, 0)
	if err != nil {
		t.Fatal(err)
	}
	all := bootFor(t, flockConfig(S3))
	resAll, err := RunRound(all, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resFew.SharingChainLen >= resAll.SharingChainLen {
		t.Errorf("3-source chain %d not smaller than 26-source chain %d",
			resFew.SharingChainLen, resAll.SharingChainLen)
	}
	if resFew.CorrectNodes != 26 {
		t.Errorf("partial-source round correct nodes = %d/26", resFew.CorrectNodes)
	}
	if resFew.MeanLatency >= resAll.MeanLatency {
		t.Error("fewer sources should reduce latency")
	}
}

func TestLatencyBounds(t *testing.T) {
	boot := bootFor(t, flockConfig(S4))
	res, err := RunRound(boot, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := res.SharingDuration + res.ReconDuration + time.Second // CPU slack
	for i, lat := range res.Latency {
		if !res.NodeOK[i] {
			continue
		}
		if lat < res.SharingDuration {
			t.Errorf("node %d latency %v below sharing duration %v", i, lat, res.SharingDuration)
		}
		if lat > total {
			t.Errorf("node %d latency %v above phase total %v", i, lat, total)
		}
	}
	if res.MaxLatency < res.MeanLatency {
		t.Error("max latency below mean")
	}
}

func TestS4ChainTrimmedVersusS3(t *testing.T) {
	s3 := bootFor(t, flockConfig(S3))
	s4 := bootFor(t, flockConfig(S4))
	r3, err := RunRound(s3, 0)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunRound(s4, 0)
	if err != nil {
		t.Fatal(err)
	}
	// S3: s·(n-1) sub-slots. S4: s·|D| minus self-deliveries.
	if r3.SharingChainLen != 26*25 {
		t.Errorf("S3 chain = %d, want 650", r3.SharingChainLen)
	}
	if r4.SharingChainLen >= r3.SharingChainLen/2 {
		t.Errorf("S4 chain %d not substantially trimmed vs %d", r4.SharingChainLen, r3.SharingChainLen)
	}
	if r4.ReconChainLen >= r3.ReconChainLen {
		t.Errorf("S4 recon chain %d not smaller than S3 %d", r4.ReconChainLen, r3.ReconChainLen)
	}
	if r3.NTXUsed <= r4.NTXUsed {
		t.Errorf("S3 NTX %d not above S4 NTX %d", r3.NTXUsed, r4.NTXUsed)
	}
}

func TestFaultToleranceWithSlack(t *testing.T) {
	// Kill two destination nodes after commissioning: with slack >= 2 the
	// remaining sums still cover degree+1 points and every live node
	// reconstructs correctly.
	cfg := flockConfig(S4)
	cfg.DestSlack = 3
	boot := bootFor(t, cfg)

	failed := make([]bool, 26)
	killed := 0
	for _, d := range boot.Dests {
		if d == cfg.Initiator || contains(cfg.Sources, d) {
			continue
		}
		failed[d] = true
		killed++
		if killed == 2 {
			break
		}
	}
	if killed == 0 {
		t.Skip("no killable destination (all are sources); topology-dependent")
	}
	cfg2 := cfg
	cfg2.Failed = failed
	// Re-normalize via a fresh bootstrap config is not needed: inject the
	// failure by re-running bootstrap with the same seed and patching cfg.
	cfg2.Sources = removeFailed(cfg.Sources, failed)
	boot2, err := RunBootstrap(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunRound(boot2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 26; i++ {
		if failed[i] {
			if res.NodeOK[i] {
				t.Errorf("failed node %d reported success", i)
			}
			continue
		}
		if !res.NodeOK[i] {
			t.Errorf("live node %d failed despite slack", i)
		}
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func removeFailed(sources []int, failed []bool) []int {
	out := make([]int, 0, len(sources))
	for _, s := range sources {
		if !failed[s] {
			out = append(out, s)
		}
	}
	return out
}

func TestNoEarlyOffIncreasesRadio(t *testing.T) {
	base := flockConfig(S4)
	bootA := bootFor(t, base)
	ablated := base
	ablated.NoEarlyOff = true
	bootB := bootFor(t, ablated)

	ra, err := RunRound(bootA, 0)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := RunRound(bootB, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rb.MeanRadioOn <= ra.MeanRadioOn {
		t.Errorf("disabling early-off should cost radio: with=%v without=%v",
			ra.MeanRadioOn, rb.MeanRadioOn)
	}
}

func TestDCubeRound(t *testing.T) {
	if testing.Short() {
		t.Skip("full DCube round")
	}
	cfg := Config{
		Topology:    topology.DCube(),
		Protocol:    S4,
		Sources:     sourcesUpTo(45),
		NTXSharing:  5,
		DestSlack:   1,
		ChannelSeed: 1,
	}
	boot := bootFor(t, cfg)
	res, err := RunRound(boot, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.CorrectNodes < 44 {
		t.Errorf("DCube correct nodes = %d/45", res.CorrectNodes)
	}
}

func TestRunRoundTracedEmitsEvents(t *testing.T) {
	boot := bootFor(t, flockConfig(S4))
	var rec trace.Recorder
	res, err := RunRoundTraced(boot, 0, nil, &rec)
	if err != nil {
		t.Fatal(err)
	}
	counts := rec.CountByKind()
	if counts[trace.KindShareGen] != 26 {
		t.Errorf("share-gen events = %d, want 26", counts[trace.KindShareGen])
	}
	if counts[trace.KindPhase] != 2 {
		t.Errorf("phase events = %d, want 2 (sharing + reconstruction)", counts[trace.KindPhase])
	}
	if got := counts[trace.KindAggregateOK]; got != res.CorrectNodes {
		t.Errorf("aggregate-ok events = %d, want %d", got, res.CorrectNodes)
	}
	if counts[trace.KindSumComplete]+counts[trace.KindSumIncomplete] != len(boot.Dests) {
		t.Errorf("sum events = %d, want %d destinations",
			counts[trace.KindSumComplete]+counts[trace.KindSumIncomplete], len(boot.Dests))
	}
	if _, err := rec.JSON(); err != nil {
		t.Errorf("JSON: %v", err)
	}
}

func TestVerifiableRound(t *testing.T) {
	cfg := flockConfig(S4)
	cfg.Verifiable = true
	boot := bootFor(t, cfg)
	res, err := RunRound(boot, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.CorrectNodes < 25 {
		t.Errorf("verifiable round correct nodes = %d/26", res.CorrectNodes)
	}
	if res.VerifiedShares == 0 {
		t.Error("no shares were verified")
	}
	total := res.VerifiedShares + res.UnverifiedShares
	if coverage := float64(res.VerifiedShares) / float64(total); coverage < 0.8 {
		t.Errorf("verification coverage %.2f too low", coverage)
	}

	// Verifiability costs latency and radio (the commitment chain).
	plain := bootFor(t, flockConfig(S4))
	base, err := RunRound(plain, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanLatency <= base.MeanLatency {
		t.Error("verifiable round not slower than plain round")
	}
	if res.MeanRadioOn <= base.MeanRadioOn {
		t.Error("verifiable round not costlier in radio")
	}
	if base.VerifiedShares != 0 || base.UnverifiedShares != 0 {
		t.Error("plain round reported verification counters")
	}
}
