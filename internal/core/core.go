// Package core implements the paper's contribution: Shamir Secret Sharing
// hosted on concurrent-transmission data sharing, in two variants.
//
// S3 ("naive SSS over MiniCast"): every source node evaluates its polynomial
// at all n public points and ships one encrypted share to every node, so the
// sharing-phase chain has s·n sub-slots (O(n²) when every node is a source).
// Both phases run at an NTX high enough for full network coverage, derived
// during bootstrapping; a node computes the aggregate only once it holds the
// public-point sums of all n nodes (strict all-to-all).
//
// S4 ("scalable SSS"): a low-degree polynomial (k ≈ ⌊n/3⌋) means only k+1
// share destinations are required. Bootstrapping profiles which nodes are
// reliably reachable from every source at a low NTX and fixes a common
// destination set D (|D| = k+1 plus configurable slack for fault tolerance).
// The sharing chain shrinks to s·|D| sub-slots and runs at the low NTX; in
// the reconstruction phase only D nodes re-share sums, any k+1 of which let
// a node interpolate the aggregate — so nodes stop listening (radio off) as
// soon as they hold k+1 sums.
//
// Every round moves real ciphertext: shares are encrypted with pairwise
// AES-128 keys (sealed/opened via internal/seckey), and the reported
// aggregate is verified against the plaintext sum.
package core

import (
	"errors"
	"fmt"

	"iotmpc/internal/phy"
	"iotmpc/internal/seckey"
	"iotmpc/internal/topology"
)

// Protocol selects the SSS realization.
type Protocol int

// Protocol variants evaluated in the paper.
const (
	// S3 is the naive realization (full chain, full-coverage NTX).
	S3 Protocol = iota + 1
	// S4 is the scalable realization (trimmed chain, low NTX, fault-tolerant
	// reconstruction).
	S4
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case S3:
		return "S3"
	case S4:
		return "S4"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Errors returned by the package.
var (
	// ErrBadConfig is returned for invalid protocol configuration.
	ErrBadConfig = errors.New("core: invalid configuration")
	// ErrBootstrap is returned when bootstrapping cannot satisfy the
	// requested parameters (e.g. not enough commonly reachable destinations).
	ErrBootstrap = errors.New("core: bootstrap infeasible")
)

// Config describes one deployment of the protocol on a testbed.
type Config struct {
	// Topology is the node layout (FlockLab, DCube, or synthetic).
	Topology topology.Topology
	// PHY parameterizes the radio model; zero value selects DefaultParams.
	PHY phy.Params
	// Backend builds the radio model over the topology; nil selects the
	// log-distance + shadowing channel (phy.LogDistanceFactory) the paper
	// evaluates under. Alternatives: phy.UnitDiskFactory for idealized
	// in-radius reception, trace.Factory for replaying a recorded per-link
	// PRR matrix.
	Backend phy.Factory
	// Protocol selects S3 or S4.
	Protocol Protocol
	// Sources lists the node indices contributing secrets. The paper sweeps
	// this ("number of source nodes"); all nodes always participate as share
	// holders and relays.
	Sources []int
	// Degree is the polynomial degree k (collusion threshold). The paper
	// uses ⌊n/3⌋; Degree 0 selects that default.
	Degree int
	// NTXSharing is the sharing/reconstruction NTX for S4 (paper: 6 on
	// FlockLab, 5 on DCube). Ignored by S3, which derives a full-coverage
	// NTX during bootstrapping. 0 selects 6.
	NTXSharing int
	// DestSlack is the number of extra destinations beyond degree+1 kept in
	// S4's common destination set, providing reconstruction fault tolerance.
	DestSlack int
	// Initiator anchors the CT floods (default node 0).
	Initiator int
	// MasterSeed commissions the network key material.
	MasterSeed uint64
	// ChannelSeed freezes the shadowing realization.
	ChannelSeed int64
	// CPU models on-node computation latency; zero value selects
	// DefaultCPUModel.
	CPU CPUModel
	// Failed marks nodes crashed for the whole round (fault injection).
	// Failed nodes neither transmit nor receive; sources must not be failed.
	// Nil means no failures. Bootstrapping ignores failures — they model
	// crashes that happen after commissioning.
	Failed []bool
	// NoEarlyOff disables S4's early radio-off in the reconstruction phase
	// (ablation knob; see DESIGN.md).
	NoEarlyOff bool
	// Secrets optionally fixes each source's secret (e.g. actual sensor
	// readings). Keys must cover every source. Nil draws random secrets per
	// round, which is what the evaluation sweeps use.
	Secrets map[int]uint64
	// Verifiable enables Feldman VSS (internal/vss): sources commit to
	// their polynomials, commitments are flooded in a preliminary MiniCast
	// round, and destinations verify every share before absorbing it. This
	// hardens the semi-honest model at a quantifiable latency/radio cost
	// (see BenchmarkAblationVerification).
	Verifiable bool
	// VectorLen is the per-source reading vector length L (multi-sensor
	// workloads): each source shares L secrets per round and ships ONE
	// sealed vector packet of 8·L bytes + one MIC per destination, instead
	// of L scalar packets. 0 selects the scalar single-reading round (the
	// historical behavior; identical to VectorLen 1 in every reported
	// metric). Bounded by MaxVectorLen so a sub-slot stays one 802.15.4
	// frame.
	VectorLen int
}

// Normalized returns the configuration with defaults filled (degree ⌊n/3⌋,
// NTX 6, CPU model, PHY params) and validation applied — the exact
// parameters a bootstrap of this Config would run with. CLIs use it to
// report effective settings without duplicating the defaulting rules.
func (c Config) Normalized() (Config, error) { return c.normalized() }

// normalized fills defaults and validates.
func (c Config) normalized() (Config, error) {
	n := c.Topology.NumNodes()
	if n < 2 {
		return c, fmt.Errorf("%w: %d nodes", ErrBadConfig, n)
	}
	if c.PHY == (phy.Params{}) {
		c.PHY = phy.DefaultParams()
	}
	if c.Protocol != S3 && c.Protocol != S4 {
		return c, fmt.Errorf("%w: protocol %v", ErrBadConfig, c.Protocol)
	}
	if len(c.Sources) == 0 {
		return c, fmt.Errorf("%w: no sources", ErrBadConfig)
	}
	seen := make(map[int]struct{}, len(c.Sources))
	for _, s := range c.Sources {
		if s < 0 || s >= n {
			return c, fmt.Errorf("%w: source %d out of range", ErrBadConfig, s)
		}
		if _, dup := seen[s]; dup {
			return c, fmt.Errorf("%w: duplicate source %d", ErrBadConfig, s)
		}
		seen[s] = struct{}{}
	}
	if c.Degree == 0 {
		c.Degree = n / 3
	}
	if c.Degree < 1 || c.Degree+1 > n {
		return c, fmt.Errorf("%w: degree %d with %d nodes", ErrBadConfig, c.Degree, n)
	}
	if c.NTXSharing == 0 {
		c.NTXSharing = 6
	}
	if c.NTXSharing < 1 {
		return c, fmt.Errorf("%w: NTX %d", ErrBadConfig, c.NTXSharing)
	}
	if c.DestSlack < 0 {
		return c, fmt.Errorf("%w: negative slack", ErrBadConfig)
	}
	if c.Degree+1+c.DestSlack > n {
		return c, fmt.Errorf("%w: degree+1+slack = %d exceeds %d nodes",
			ErrBadConfig, c.Degree+1+c.DestSlack, n)
	}
	if c.Initiator < 0 || c.Initiator >= n {
		return c, fmt.Errorf("%w: initiator %d", ErrBadConfig, c.Initiator)
	}
	if c.Failed != nil {
		if len(c.Failed) != n {
			return c, fmt.Errorf("%w: Failed has %d entries for %d nodes", ErrBadConfig, len(c.Failed), n)
		}
		for _, s := range c.Sources {
			if c.Failed[s] {
				return c, fmt.Errorf("%w: source %d is marked failed", ErrBadConfig, s)
			}
		}
		if c.Failed[c.Initiator] {
			return c, fmt.Errorf("%w: initiator %d is marked failed", ErrBadConfig, c.Initiator)
		}
	}
	if c.VectorLen < 0 {
		return c, fmt.Errorf("%w: negative vector length %d", ErrBadConfig, c.VectorLen)
	}
	if c.VectorLen > MaxVectorLen {
		return c, fmt.Errorf("%w: vector length %d exceeds %d (8·L+%dB MIC must fit one %dB frame)",
			ErrBadConfig, c.VectorLen, MaxVectorLen, seckey.TagSize, phy.MaxPSDU)
	}
	if c.CPU == (CPUModel{}) {
		c.CPU = DefaultCPUModel()
	}
	if c.Secrets != nil {
		for _, s := range c.Sources {
			if _, ok := c.Secrets[s]; !ok {
				return c, fmt.Errorf("%w: no secret for source %d", ErrBadConfig, s)
			}
		}
	}
	return c, nil
}

// keyStore commissions the network's key material.
func (c Config) keyStore() *seckey.Store {
	return seckey.NewStore(seckey.MasterFromSeed(c.MasterSeed))
}

// buildRadio constructs the configured radio backend over the topology.
func (c Config) buildRadio() (phy.Radio, error) {
	r, err := phy.Build(c.Backend, c.PHY, c.Topology.Positions, c.ChannelSeed)
	if err != nil {
		return nil, fmt.Errorf("core: radio backend for topology %q: %w", c.Topology.Name, err)
	}
	return r, nil
}

// Wire format sizes (bytes) for chain sub-slot payloads: a protocol header
// (round counter, chain position, owner id) plus the value.
const (
	headerBytes = 9
	// commitPayloadBytes carries one 512-bit Feldman commitment coefficient
	// in the verifiable mode's preliminary chain. 64B + header fits one
	// 802.15.4 frame.
	commitPayloadBytes = headerBytes + 64
)

// MaxVectorLen is the largest Config.VectorLen a sharing sub-slot can carry:
// header + 8·L ciphertext + MIC-32 must fit one 802.15.4 PSDU.
const MaxVectorLen = (phy.MaxPSDU - headerBytes - seckey.TagSize) / 8

// sharePayloadBytes is the sharing-phase sub-slot payload for a vecLen-
// element reading vector: header + AES-CTR ciphertext of the packed vector +
// one MIC-32 for the whole vector. vecLen 1 is the historical scalar size.
func sharePayloadBytes(vecLen int) int {
	return headerBytes + seckey.SealedVectorSize(vecLen)
}

// sumPayloadBytes is the reconstruction-phase payload: header + vecLen plain
// 8-byte sums + 2-byte contribution count (reconstruction runs in plaintext,
// as in the paper).
func sumPayloadBytes(vecLen int) int {
	return headerBytes + 8*vecLen + 2
}

// effVectorLen is the round's effective vector length: VectorLen 0 (the
// scalar default) behaves as length 1.
func (c Config) effVectorLen() int {
	if c.VectorLen > 0 {
		return c.VectorLen
	}
	return 1
}
