package core

import (
	"errors"
	"reflect"
	"testing"

	"iotmpc/internal/phy"
	"iotmpc/internal/topology"
	"iotmpc/internal/trace"
)

// laneBackend pairs a radio backend with a round configuration sized for its
// topology, so the lane equivalence suite sweeps all three channel models.
type laneBackend struct {
	name string
	cfg  func(Protocol) Config
}

func laneBackends(t *testing.T) []laneBackend {
	t.Helper()
	lt, err := trace.Bundled("testbed10")
	if err != nil {
		t.Fatal(err)
	}
	grid, err := topology.Grid(2, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	return []laneBackend{
		{name: "logdist", cfg: flockConfig},
		{name: "unitdisk", cfg: func(p Protocol) Config {
			cfg := flockConfig(p)
			cfg.Backend = phy.UnitDiskFactory(35, 20)
			return cfg
		}},
		{name: "trace", cfg: func(p Protocol) Config {
			return Config{
				Topology:    grid,
				Backend:     trace.Factory(lt),
				Protocol:    p,
				Sources:     sourcesUpTo(10),
				Degree:      2,
				NTXSharing:  5,
				DestSlack:   1,
				ChannelSeed: 1,
			}
		}},
	}
}

// TestRunRoundLanesMatchesScalar is the tentpole equivalence test: for every
// backend and protocol, a bit-sliced batch must reproduce the scalar rounds
// field for field — outcomes, latencies, and radio ledgers — for any lane
// count, because every lane owns the trial's derived RNG streams.
func TestRunRoundLanesMatchesScalar(t *testing.T) {
	for _, be := range laneBackends(t) {
		for _, proto := range []Protocol{S3, S4} {
			be, proto := be, proto
			t.Run(be.name+"/"+proto.String(), func(t *testing.T) {
				boot := bootFor(t, be.cfg(proto))
				const base, count = 3, 5
				lanes, err := RunRoundLanes(boot, base, count)
				if err != nil {
					t.Fatal(err)
				}
				for l := 0; l < count; l++ {
					want, err := RunRound(boot, base+uint64(l))
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(lanes[l], want) {
						t.Errorf("lane %d (trial %d) diverges from scalar round", l, base+uint64(l))
					}
				}
			})
		}
	}
}

// TestRunRoundLanesFullWidth packs phy.MaxLanes trials into one batch on the
// cheap trace testbed and checks every lane against its scalar trial.
func TestRunRoundLanesFullWidth(t *testing.T) {
	be := laneBackends(t)[2] // trace backend: 10 nodes
	boot := bootFor(t, be.cfg(S4))
	lanes, err := RunRoundLanes(boot, 0, phy.MaxLanes)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < phy.MaxLanes; l++ {
		want, err := RunRound(boot, uint64(l))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(lanes[l], want) {
			t.Errorf("lane %d diverges from scalar round", l)
		}
	}
}

// TestRunRoundLanesPartitionInvariant checks the load-bearing determinism
// property: splitting a trial range into different lane groupings never
// changes any trial's result, so the experiment layer may batch however the
// worker count falls out.
func TestRunRoundLanesPartitionInvariant(t *testing.T) {
	be := laneBackends(t)[2]
	boot := bootFor(t, be.cfg(S4))
	whole, err := RunRoundLanes(boot, 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	var split []*RoundResult
	for _, part := range []int{5, 3, 4} {
		batch, err := RunRoundLanes(boot, uint64(len(split)), part)
		if err != nil {
			t.Fatal(err)
		}
		split = append(split, batch...)
	}
	if !reflect.DeepEqual(whole, split) {
		t.Error("lane partition changed trial results")
	}
}

// TestRunRoundLanesVerifiable covers the commitment chain: verifiable rounds
// run TWO lane chains (commitments, then shares) and the per-lane
// verification counters must match the scalar rounds.
func TestRunRoundLanesVerifiable(t *testing.T) {
	cfg := flockConfig(S4)
	cfg.Verifiable = true
	boot := bootFor(t, cfg)
	const count = 4
	lanes, err := RunRoundLanes(boot, 0, count)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < count; l++ {
		want, err := RunRound(boot, uint64(l))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(lanes[l], want) {
			t.Errorf("verifiable lane %d diverges from scalar round", l)
		}
		if lanes[l].VerifiedShares == 0 {
			t.Errorf("lane %d verified no shares", l)
		}
	}
}

// TestRunRoundLanesWithFailures covers the failure axis: killed destinations
// must fail identically in lane and scalar execution.
func TestRunRoundLanesWithFailures(t *testing.T) {
	cfg := flockConfig(S4)
	cfg.Sources = sourcesUpTo(12) // leave non-source destinations to kill
	cfg.DestSlack = 3
	boot := bootFor(t, cfg)
	failed := make([]bool, 26)
	killed := 0
	for _, d := range boot.Dests {
		if d == cfg.Initiator || contains(cfg.Sources, d) {
			continue
		}
		failed[d] = true
		if killed++; killed == 2 {
			break
		}
	}
	if killed == 0 {
		t.Skip("no killable destination (all are sources); topology-dependent")
	}
	cfg.Failed = failed
	cfg.Sources = removeFailed(cfg.Sources, failed)
	boot, err := RunBootstrap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lanes, err := RunRoundLanes(boot, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < 3; l++ {
		want, err := RunRound(boot, uint64(l))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(lanes[l], want) {
			t.Errorf("failure-axis lane %d diverges from scalar round", l)
		}
	}
}

func TestRunRoundLanesErrors(t *testing.T) {
	if _, err := RunRoundLanes(nil, 0, 4); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil bootstrap: error = %v, want ErrBadConfig", err)
	}
	boot := bootFor(t, flockConfig(S4))
	for _, count := range []int{0, -1, phy.MaxLanes + 1} {
		if _, err := RunRoundLanes(boot, 0, count); !errors.Is(err, ErrBadConfig) {
			t.Errorf("count %d: error = %v, want ErrBadConfig", count, err)
		}
	}
}

// TestRunRoundLanesSingleLane checks that the count==1 fast path is exactly
// the scalar round.
func TestRunRoundLanesSingleLane(t *testing.T) {
	boot := bootFor(t, flockConfig(S3))
	lanes, err := RunRoundLanes(boot, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunRound(boot, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(lanes) != 1 || !reflect.DeepEqual(lanes[0], want) {
		t.Error("single-lane batch diverges from scalar round")
	}
}
