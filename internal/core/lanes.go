package core

import (
	"fmt"
	"math/rand"

	"iotmpc/internal/minicast"
	"iotmpc/internal/phy"
	"iotmpc/internal/sim"
)

// RunRoundLanes executes count consecutive trials [baseTrial, baseTrial+count)
// of one bootstrap bit-sliced: the commitment and sharing chains run ONCE for
// the whole batch with per-(node,item) possession held as uint64 lane masks
// (minicast.RunLanes), while the per-trial compute prologue and the round
// epilogue — whose work (sealed payloads, holder sets, reconstruction items)
// genuinely differs per trial — run scalar per lane.
//
// Results are bit-identical to calling RunRound(boot, baseTrial+l) for each
// lane: every lane owns the same derived RNG streams the scalar path would
// use (sim.NewRNG(seed, trial*4+1) and trial*4+2), and the lane kernels touch
// lane l's stream exactly when lane l's scalar execution would. Any partition
// of a trial range into lane groups therefore produces the same per-trial
// results, and count==1 routes straight to RunRound.
func RunRoundLanes(boot *Bootstrap, baseTrial uint64, count int) ([]*RoundResult, error) {
	if boot == nil || boot.Channel == nil {
		return nil, fmt.Errorf("%w: nil bootstrap", ErrBadConfig)
	}
	if count < 1 || count > phy.MaxLanes {
		return nil, fmt.Errorf("%w: %d lanes (want 1..%d)", ErrBadConfig, count, phy.MaxLanes)
	}
	if count == 1 {
		res, err := RunRound(boot, baseTrial)
		if err != nil {
			return nil, err
		}
		return []*RoundResult{res}, nil
	}
	cfg := boot.cfg
	ch := boot.Channel
	n := ch.NumNodes()

	// chainArena backs the shared lane chains: their possession masks must
	// stay readable while every lane's epilogue folds. laneArena backs one
	// lane's reconstruction chain at a time and resets between lanes.
	chainArena := roundArenas.Get().(*sim.Arena)
	laneArena := roundArenas.Get().(*sim.Arena)
	defer func() {
		chainArena.Reset()
		roundArenas.Put(chainArena)
		laneArena.Reset()
		roundArenas.Put(laneArena)
	}()

	execs := make([]*roundExec, count)
	radioRNGs := make([]*rand.Rand, count)
	ledgers := make([]*sim.RadioLedger, count)
	for l := 0; l < count; l++ {
		trial := baseTrial + uint64(l)
		secretRNG := sim.NewRNG(cfg.ChannelSeed, trial*4+1)
		radioRNGs[l] = sim.NewRNG(cfg.ChannelSeed, trial*4+2)
		ledgers[l] = sim.NewRadioLedger(n)
		prep, err := prepareShares(boot, cfg, trial, secretRNG, nil)
		if err != nil {
			return nil, err
		}
		execs[l] = &roundExec{
			boot:     boot,
			cfg:      cfg,
			trial:    trial,
			prep:     prep,
			ledger:   ledgers[l],
			radioRNG: radioRNGs[l],
		}
	}
	// The chain item layouts depend only on the bootstrap (sources, degree,
	// vector length, destination schedule), never on the trial, so lane 0's
	// prep describes every lane's chains.
	prep0 := execs[0].prep

	if cfg.Verifiable {
		commitLane, err := minicast.RunLanes(minicast.Config{
			Channel:      ch,
			Initiator:    cfg.Initiator,
			NTX:          prep0.ntx,
			Items:        prep0.commitItems,
			PayloadBytes: commitPayloadBytes,
			Failed:       cfg.Failed,
		}, count, radioRNGs, ledgers, chainArena)
		if err != nil {
			return nil, fmt.Errorf("commitment phase: %w", err)
		}
		for l, e := range execs {
			bit := uint64(1) << l
			e.commitDur = commitLane.Duration
			e.haveCommit = func(dst, idx int) bool { return commitLane.Have(dst, idx)&bit != 0 }
		}
	}

	shareLane, err := minicast.RunLanes(minicast.Config{
		Channel:      ch,
		Initiator:    cfg.Initiator,
		NTX:          prep0.ntx,
		Items:        prep0.shareItems,
		PayloadBytes: sharePayloadBytes(prep0.vecLen),
		Failed:       cfg.Failed,
	}, count, radioRNGs, ledgers, chainArena)
	if err != nil {
		return nil, fmt.Errorf("sharing phase: %w", err)
	}

	out := make([]*RoundResult, count)
	for l, e := range execs {
		bit := uint64(1) << l
		e.shareDur = shareLane.Duration
		e.haveShare = func(dst, idx int) bool { return shareLane.Have(dst, idx)&bit != 0 }
		res, err := e.finish(laneArena)
		laneArena.Reset()
		if err != nil {
			return nil, fmt.Errorf("lane %d (trial %d): %w", l, e.trial, err)
		}
		out[l] = res
	}
	return out, nil
}
