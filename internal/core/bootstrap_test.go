package core

import (
	"errors"
	"testing"

	"iotmpc/internal/topology"
)

func TestBootstrapFlockLabS4(t *testing.T) {
	cfg := flockConfig(S4)
	boot, err := RunBootstrap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	norm := boot.Config()
	wantDests := norm.Degree + 1 + norm.DestSlack
	if len(boot.Dests) != wantDests {
		t.Errorf("dests = %d, want %d", len(boot.Dests), wantDests)
	}
	if boot.NTXFull <= norm.NTXSharing {
		t.Errorf("NTXFull %d not above low NTX %d: the naive protocol must pay more",
			boot.NTXFull, norm.NTXSharing)
	}
	for i, rel := range boot.Reliability {
		if rel < minReliability {
			t.Errorf("dest %d reliability %.2f below %.2f", boot.Dests[i], rel, minReliability)
		}
		if i > 0 && rel > boot.Reliability[i-1] {
			t.Errorf("reliability not sorted descending at %d", i)
		}
	}
	seen := make(map[int]struct{})
	for _, d := range boot.Dests {
		if _, dup := seen[d]; dup {
			t.Errorf("duplicate destination %d", d)
		}
		seen[d] = struct{}{}
	}
}

func TestBootstrapS3SkipsDests(t *testing.T) {
	boot, err := RunBootstrap(flockConfig(S3))
	if err != nil {
		t.Fatal(err)
	}
	if boot.Dests != nil {
		t.Error("S3 bootstrap computed a destination set")
	}
	if boot.NTXFull < boot.Diameter {
		t.Errorf("NTXFull %d below diameter %d", boot.NTXFull, boot.Diameter)
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	a, err := RunBootstrap(flockConfig(S4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBootstrap(flockConfig(S4))
	if err != nil {
		t.Fatal(err)
	}
	if a.NTXFull != b.NTXFull {
		t.Errorf("NTXFull differs: %d vs %d", a.NTXFull, b.NTXFull)
	}
	for i := range a.Dests {
		if a.Dests[i] != b.Dests[i] {
			t.Fatalf("dest %d differs: %d vs %d", i, a.Dests[i], b.Dests[i])
		}
	}
}

func TestBootstrapInfeasibleLowNTX(t *testing.T) {
	// A long line at NTX=1: data reaches only immediate neighbors, so no
	// common destination set covering all sources can exist.
	line, err := topology.Line(20, 35)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Topology:    line,
		Protocol:    S4,
		Sources:     sourcesUpTo(20),
		Degree:      6,
		NTXSharing:  1,
		ChannelSeed: 1,
	}
	if _, err := RunBootstrap(cfg); !errors.Is(err, ErrBootstrap) {
		t.Errorf("error = %v, want ErrBootstrap", err)
	}
}

func TestBootstrapDisconnectedTopology(t *testing.T) {
	// Two nodes 100 km apart cannot form a network.
	far, err := topology.Line(2, 100000)
	if err != nil {
		t.Fatal(err)
	}
	top := topology.Topology{Name: "islands", Positions: far.Positions}
	cfg := Config{
		Topology:    top,
		Protocol:    S3,
		Sources:     []int{0, 1},
		Degree:      1,
		ChannelSeed: 1,
	}
	if _, err := RunBootstrap(cfg); !errors.Is(err, ErrBootstrap) {
		t.Errorf("error = %v, want ErrBootstrap", err)
	}
}

func TestBootstrapDCubeUsesHigherNTXFullThanFlockLab(t *testing.T) {
	if testing.Short() {
		t.Skip("bootstrap probing on both testbeds")
	}
	fl, err := RunBootstrap(flockConfig(S3))
	if err != nil {
		t.Fatal(err)
	}
	dcCfg := Config{
		Topology:    topology.DCube(),
		Protocol:    S3,
		Sources:     sourcesUpTo(45),
		NTXSharing:  5,
		ChannelSeed: 1,
	}
	dc, err := RunBootstrap(dcCfg)
	if err != nil {
		t.Fatal(err)
	}
	if dc.NTXFull <= fl.NTXFull {
		t.Errorf("DCube NTXFull %d <= FlockLab %d; deeper network must need more",
			dc.NTXFull, fl.NTXFull)
	}
}
