package core

import "time"

// CPUModel accounts on-node computation latency. The nRF52840's Cortex-M4
// with the CryptoCell AES peripheral makes per-packet crypto cheap but not
// free; field arithmetic for Lagrange interpolation runs in software. These
// costs are orders of magnitude below the communication times, but modeling
// them keeps the latency metric honest end-to-end.
type CPUModel struct {
	// SealPacket is the cost to encrypt+MAC one share packet.
	SealPacket time.Duration
	// OpenPacket is the cost to verify+decrypt one share packet.
	OpenPacket time.Duration
	// SealElement is the marginal cost per additional 8-byte element when a
	// vector packet is sealed: more CTR keystream and CMAC blocks, but the
	// per-packet setup (subkeys, nonce, tag truncation) is paid once.
	SealElement time.Duration
	// OpenElement is the marginal per-element cost on the open/verify path.
	OpenElement time.Duration
	// FieldMul is the cost of one GF(p) multiplication in software.
	FieldMul time.Duration
	// PolyEvalPerTerm is the per-coefficient cost of a Horner step.
	PolyEvalPerTerm time.Duration
	// VSSExpTerm is the cost of one 512-bit group exponentiation with a
	// 61-bit exponent in software (verifiable mode only).
	VSSExpTerm time.Duration
}

// DefaultCPUModel returns nRF52840-scale figures (hardware AES, 64 MHz M4).
func DefaultCPUModel() CPUModel {
	return CPUModel{
		SealPacket:      8 * time.Microsecond,
		OpenPacket:      8 * time.Microsecond,
		SealElement:     1 * time.Microsecond,
		OpenElement:     1 * time.Microsecond,
		FieldMul:        2 * time.Microsecond,
		PolyEvalPerTerm: 3 * time.Microsecond,
		VSSExpTerm:      3 * time.Millisecond,
	}
}

// SealVectorCost is the cost to seal one vector packet of vecLen elements:
// the per-packet base plus the marginal keystream/CMAC work. At vecLen 1 it
// equals SealPacket exactly, so scalar rounds are costed as before.
func (m CPUModel) SealVectorCost(vecLen int) time.Duration {
	return m.SealPacket + time.Duration(vecLen-1)*m.SealElement
}

// OpenVectorCost is SealVectorCost's verify+decrypt counterpart.
func (m CPUModel) OpenVectorCost(vecLen int) time.Duration {
	return m.OpenPacket + time.Duration(vecLen-1)*m.OpenElement
}

// VSSCommit is a dealer's cost to commit to a degree-k polynomial: one group
// exponentiation per coefficient.
func (m CPUModel) VSSCommit(degree int) time.Duration {
	return time.Duration(degree+1) * m.VSSExpTerm
}

// VSSVerify is a holder's cost to verify one share: degree+2 exponentiations
// (one per commitment term plus the share side).
func (m CPUModel) VSSVerify(degree int) time.Duration {
	return time.Duration(degree+2) * m.VSSExpTerm
}

// ShareGeneration is the cost for a source to evaluate its degree-k
// polynomial at m points and seal m packets.
func (m CPUModel) ShareGeneration(degree, dests int) time.Duration {
	evalCost := time.Duration(degree+1) * m.PolyEvalPerTerm * time.Duration(dests)
	return evalCost + time.Duration(dests)*m.SealPacket
}

// ShareGenerationVec is ShareGeneration for a vecLen-coordinate reading: one
// polynomial evaluation chain per coordinate per destination, but only ONE
// sealed packet per destination. At vecLen 1 it equals ShareGeneration
// exactly.
func (m CPUModel) ShareGenerationVec(degree, dests, vecLen int) time.Duration {
	evalCost := time.Duration(degree+1) * m.PolyEvalPerTerm * time.Duration(dests) * time.Duration(vecLen)
	return evalCost + time.Duration(dests)*m.SealVectorCost(vecLen)
}

// SumAbsorb is the cost for a destination to open and accumulate s shares.
func (m CPUModel) SumAbsorb(shares int) time.Duration {
	return time.Duration(shares) * (m.OpenPacket + m.FieldMul/2)
}

// SumAbsorbVec is the cost for a destination to open s vector packets and
// accumulate s·vecLen share values. At vecLen 1 it equals SumAbsorb exactly.
func (m CPUModel) SumAbsorbVec(shares, vecLen int) time.Duration {
	return time.Duration(shares) * (m.OpenVectorCost(vecLen) + time.Duration(vecLen)*(m.FieldMul/2))
}

// Interpolation is the cost of Lagrange reconstruction from k+1 points:
// O((k+1)²) field multiplications plus one inversion per point, which the
// Fermat ladder makes ~61·2 multiplications each.
func (m CPUModel) Interpolation(points int) time.Duration {
	muls := points*points + points*122
	return time.Duration(muls) * m.FieldMul
}

// InterpolationVec is the cost of reconstructing a vecLen-coordinate
// aggregate: the Lagrange basis (with its inversions) is computed once for
// the point set and applied to every coordinate, so only the O(points²)
// multiply-accumulate scales with the vector length. At vecLen 1 it equals
// Interpolation exactly.
func (m CPUModel) InterpolationVec(points, vecLen int) time.Duration {
	muls := vecLen*points*points + points*122
	return time.Duration(muls) * m.FieldMul
}
