package core

import (
	"errors"
	"testing"

	"iotmpc/internal/topology"
)

func sourcesUpTo(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

func flockConfig(proto Protocol) Config {
	return Config{
		Topology:    topology.FlockLab(),
		Protocol:    proto,
		Sources:     sourcesUpTo(26),
		NTXSharing:  6,
		DestSlack:   1,
		ChannelSeed: 1,
	}
}

func TestProtocolString(t *testing.T) {
	tests := []struct {
		p    Protocol
		want string
	}{
		{S3, "S3"},
		{S4, "S4"},
		{Protocol(9), "Protocol(9)"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.p), got, tt.want)
		}
	}
}

func TestConfigNormalizeDefaults(t *testing.T) {
	cfg := flockConfig(S4)
	cfg.Degree = 0
	cfg.NTXSharing = 0
	norm, err := cfg.normalized()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Degree != 26/3 {
		t.Errorf("default degree = %d, want %d", norm.Degree, 26/3)
	}
	if norm.NTXSharing != 6 {
		t.Errorf("default NTX = %d, want 6", norm.NTXSharing)
	}
	if norm.CPU == (CPUModel{}) {
		t.Error("CPU model not defaulted")
	}
}

func TestConfigNormalizeErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no sources", func(c *Config) { c.Sources = nil }},
		{"source out of range", func(c *Config) { c.Sources = []int{30} }},
		{"duplicate source", func(c *Config) { c.Sources = []int{1, 1} }},
		{"bad protocol", func(c *Config) { c.Protocol = Protocol(0) }},
		{"degree too high", func(c *Config) { c.Degree = 26 }},
		{"negative degree", func(c *Config) { c.Degree = -1 }},
		{"negative ntx", func(c *Config) { c.NTXSharing = -1 }},
		{"negative slack", func(c *Config) { c.DestSlack = -1 }},
		{"slack overflow", func(c *Config) { c.Degree = 20; c.DestSlack = 10 }},
		{"bad initiator", func(c *Config) { c.Initiator = 26 }},
		{"failed wrong size", func(c *Config) { c.Failed = []bool{true} }},
		{"failed source", func(c *Config) {
			c.Failed = make([]bool, 26)
			c.Failed[3] = true
		}},
		{"failed initiator", func(c *Config) {
			c.Sources = []int{5}
			c.Failed = make([]bool, 26)
			c.Failed[0] = true
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := flockConfig(S4)
			tt.mutate(&cfg)
			if _, err := cfg.normalized(); !errors.Is(err, ErrBadConfig) {
				t.Errorf("error = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestCPUModelScaling(t *testing.T) {
	m := DefaultCPUModel()
	if m.ShareGeneration(8, 10) <= m.ShareGeneration(8, 5) {
		t.Error("share generation cost not increasing in destinations")
	}
	if m.SumAbsorb(20) <= m.SumAbsorb(5) {
		t.Error("absorb cost not increasing in shares")
	}
	if m.Interpolation(16) <= m.Interpolation(9) {
		t.Error("interpolation cost not increasing in points")
	}
}
