package core

import (
	"reflect"
	"testing"
	"time"

	"iotmpc/internal/phy"
	"iotmpc/internal/topology"
	"iotmpc/internal/trace"
)

// vectorEquivalenceBackends are the three PHY backends the L=1 equivalence
// claim is asserted on. The trace backend replays a bundled 10-node PRR
// matrix, so it gets its own matching topology.
func vectorEquivalenceBackends(t *testing.T) []struct {
	name    string
	factory phy.Factory
	topo    topology.Topology
	sources int
} {
	t.Helper()
	lt, err := trace.Bundled("testbed10")
	if err != nil {
		t.Fatal(err)
	}
	line10, err := topology.Line(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name    string
		factory phy.Factory
		topo    topology.Topology
		sources int
	}{
		{"logdist", nil, topology.FlockLab(), 26},
		{"unitdisk", phy.UnitDiskFactory(0, 0), topology.FlockLab(), 26},
		{"trace", trace.Factory(lt), line10, 10},
	}
}

// TestVectorLenOneMatchesScalarRound asserts the tentpole compatibility
// contract: an explicit VectorLen 1 round is bit-identical to the scalar
// default (VectorLen 0) — aggregates, latencies, chain lengths, radio-on,
// phase durations, everything in the RoundResult — for both protocols on
// all three PHY backends. The vector machinery must be a strict
// generalization, not a parallel implementation that drifts.
func TestVectorLenOneMatchesScalarRound(t *testing.T) {
	for _, be := range vectorEquivalenceBackends(t) {
		for _, proto := range []Protocol{S3, S4} {
			t.Run(be.name+"/"+proto.String(), func(t *testing.T) {
				cfg := Config{
					Topology:    be.topo,
					Backend:     be.factory,
					Protocol:    proto,
					Sources:     sourcesUpTo(be.sources),
					NTXSharing:  6,
					DestSlack:   1,
					ChannelSeed: 1,
				}
				vecCfg := cfg
				vecCfg.VectorLen = 1
				scalarBoot := bootFor(t, cfg)
				vecBoot := bootFor(t, vecCfg)
				for trial := uint64(0); trial < 2; trial++ {
					scalar, err := RunRound(scalarBoot, trial)
					if err != nil {
						t.Fatal(err)
					}
					vec, err := RunRound(vecBoot, trial)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(scalar, vec) {
						t.Errorf("trial %d: VectorLen=1 round differs from scalar round\nscalar: %+v\nvector: %+v",
							trial, scalar, vec)
					}
				}
			})
		}
	}
}

// TestScalarRoundGoldenValues pins the scalar round to values recorded
// BEFORE the round runner was vectorized (PR 3 state). This is what keeps
// every content-addressed cache entry and derived seed valid across the
// refactor: if any of these numbers moves, the simulation semantics moved.
func TestScalarRoundGoldenValues(t *testing.T) {
	golden := map[Protocol]map[uint64]struct {
		expected    uint64
		meanLatency time.Duration
		maxLatency  time.Duration
		meanRadioOn time.Duration
		shareChain  int
		reconChain  int
		ntx         int
		sharingDur  time.Duration
		reconDur    time.Duration
	}{
		S3: {
			0: {206420139460189345, 37910452000, 38136802000, 39000000000, 650, 26, 12, 37596000000, 1404000000},
			1: {1170534873873267983, 37917305846, 38107102000, 39000000000, 650, 26, 12, 37596000000, 1404000000},
		},
		S4: {
			0: {206420139460189345, 7319544153, 7398308000, 7352884615, 250, 10, 6, 7230000000, 270000000},
			1: {1170534873873267983, 7320097653, 7385933000, 7351153846, 250, 9, 6, 7230000000, 243000000},
		},
	}
	for _, proto := range []Protocol{S3, S4} {
		boot := bootFor(t, flockConfig(proto))
		for trial := uint64(0); trial < 2; trial++ {
			res, err := RunRound(boot, trial)
			if err != nil {
				t.Fatal(err)
			}
			want := golden[proto][trial]
			if res.CorrectNodes != 26 {
				t.Errorf("%v trial %d: correct = %d, want 26", proto, trial, res.CorrectNodes)
			}
			if got := res.Expected.Uint64(); got != want.expected {
				t.Errorf("%v trial %d: expected aggregate = %d, want %d", proto, trial, got, want.expected)
			}
			if res.MeanLatency != want.meanLatency || res.MaxLatency != want.maxLatency {
				t.Errorf("%v trial %d: latency mean/max = %d/%d, want %d/%d",
					proto, trial, res.MeanLatency, res.MaxLatency, want.meanLatency, want.maxLatency)
			}
			if res.MeanRadioOn != want.meanRadioOn {
				t.Errorf("%v trial %d: radio-on = %d, want %d", proto, trial, res.MeanRadioOn, want.meanRadioOn)
			}
			if res.SharingChainLen != want.shareChain || res.ReconChainLen != want.reconChain {
				t.Errorf("%v trial %d: chains = %d/%d, want %d/%d",
					proto, trial, res.SharingChainLen, res.ReconChainLen, want.shareChain, want.reconChain)
			}
			if res.NTXUsed != want.ntx {
				t.Errorf("%v trial %d: ntx = %d, want %d", proto, trial, res.NTXUsed, want.ntx)
			}
			if res.SharingDuration != want.sharingDur || res.ReconDuration != want.reconDur {
				t.Errorf("%v trial %d: durations = %d/%d, want %d/%d",
					proto, trial, res.SharingDuration, res.ReconDuration, want.sharingDur, want.reconDur)
			}
		}
	}
}

// TestVectorRoundMultiSensor checks the vector round proper: every node
// reconstructs the full L-coordinate aggregate, the chain still has one
// sub-slot per (source, destination) — NOT per coordinate — and the sealed
// payload grows to 8·L + one MIC.
func TestVectorRoundMultiSensor(t *testing.T) {
	const vecLen = 8
	cfg := flockConfig(S4)
	cfg.VectorLen = vecLen
	boot := bootFor(t, cfg)
	scalarBoot := bootFor(t, flockConfig(S4))
	res, err := RunRound(boot, 0)
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := RunRound(scalarBoot, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.VectorLen != vecLen {
		t.Fatalf("VectorLen = %d, want %d", res.VectorLen, vecLen)
	}
	if len(res.ExpectedVec) != vecLen {
		t.Fatalf("ExpectedVec has %d coordinates", len(res.ExpectedVec))
	}
	// One sealed vector per (source, destination): the chain must be
	// exactly as long as the scalar chain, an 8x saving over running 8
	// scalar rounds.
	if res.SharingChainLen != scalar.SharingChainLen {
		t.Errorf("sharing chain = %d, want %d (one sub-slot per (src,dst) regardless of L)",
			res.SharingChainLen, scalar.SharingChainLen)
	}
	wantPayload := 9 + 8*vecLen + 4 // header + packed vector + one MIC-32
	if res.SharePayloadBytes != wantPayload {
		t.Errorf("share payload = %dB, want %dB", res.SharePayloadBytes, wantPayload)
	}
	if res.CorrectNodes != 26 {
		t.Fatalf("correct nodes = %d/26", res.CorrectNodes)
	}
	for node, ok := range res.NodeOK {
		if !ok {
			continue
		}
		if !reflect.DeepEqual(res.AggregateVec[node], res.ExpectedVec) {
			t.Errorf("node %d aggregate vector %v != expected %v",
				node, res.AggregateVec[node], res.ExpectedVec)
		}
		if res.Aggregate[node] != res.ExpectedVec[0] {
			t.Errorf("node %d scalar view %v != coordinate 0 %v",
				node, res.Aggregate[node], res.ExpectedVec[0])
		}
	}
	// The batched round must be strictly cheaper than L scalar rounds on
	// the air: latency and radio-on grow sublinearly in L.
	if res.MeanLatency >= time.Duration(vecLen)*scalar.MeanLatency {
		t.Errorf("vector latency %v not below %d× scalar %v", res.MeanLatency, vecLen, scalar.MeanLatency)
	}
	if res.MeanRadioOn >= time.Duration(vecLen)*scalar.MeanRadioOn {
		t.Errorf("vector radio-on %v not below %d× scalar %v", res.MeanRadioOn, vecLen, scalar.MeanRadioOn)
	}
}

// TestVectorRoundVerifiable exercises the per-coordinate Feldman commitment
// path: L·(degree+1) commitment items per source, every absorbed coordinate
// verified when the commitment chain delivered.
func TestVectorRoundVerifiable(t *testing.T) {
	const vecLen = 3
	cfg := flockConfig(S4)
	cfg.Sources = sourcesUpTo(6)
	cfg.VectorLen = vecLen
	cfg.Verifiable = true
	boot := bootFor(t, cfg)
	rec := &trace.Recorder{}
	res, err := RunRoundTraced(boot, 0, nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	if res.CorrectNodes != 26 {
		t.Fatalf("correct nodes = %d/26", res.CorrectNodes)
	}
	if res.VerifiedShares == 0 {
		t.Fatal("no shares verified")
	}
	if res.VerifiedShares%vecLen != 0 || res.UnverifiedShares%vecLen != 0 {
		t.Errorf("verified/unverified = %d/%d, want multiples of %d (coordinates are verified per vector)",
			res.VerifiedShares, res.UnverifiedShares, vecLen)
	}
}

// TestVectorLenValidation pins the frame-budget bound: MaxVectorLen is the
// largest L whose sealed vector still fits one 802.15.4 PSDU next to the
// chain header.
func TestVectorLenValidation(t *testing.T) {
	if MaxVectorLen != 14 {
		t.Fatalf("MaxVectorLen = %d, want 14 for a %dB PSDU", MaxVectorLen, phy.MaxPSDU)
	}
	cfg := flockConfig(S4)
	cfg.VectorLen = MaxVectorLen
	if _, err := cfg.normalized(); err != nil {
		t.Errorf("VectorLen=%d rejected: %v", MaxVectorLen, err)
	}
	for _, bad := range []int{-1, MaxVectorLen + 1} {
		cfg.VectorLen = bad
		if _, err := cfg.normalized(); err == nil {
			t.Errorf("VectorLen=%d accepted", bad)
		}
	}
}
