package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"iotmpc/internal/field"
	"iotmpc/internal/minicast"
	"iotmpc/internal/seckey"
	"iotmpc/internal/shamir"
	"iotmpc/internal/sim"
	"iotmpc/internal/trace"
	"iotmpc/internal/vss"
)

// roundArenas pools the per-round scratch arenas the chain phases borrow
// their buffers from. Trial workers check one out per RunRound call, so a
// scenario's Monte-Carlo loop reuses the same warm buffers round after
// round instead of reallocating every flood's state arrays.
var roundArenas = sync.Pool{New: func() any { return new(sim.Arena) }}

// RoundResult reports one full private-aggregation round.
type RoundResult struct {
	// Expected is the plaintext Σ secrets of the sources (ground truth the
	// simulation can see; the nodes never do). For vector rounds this is
	// coordinate 0; ExpectedVec holds the full vector.
	Expected field.Element
	// ExpectedVec is the expected aggregate for every reading coordinate
	// (length VectorLen).
	ExpectedVec []field.Element
	// Aggregate[i] is node i's reconstructed aggregate (valid iff NodeOK[i]).
	// For vector rounds this is coordinate 0; AggregateVec has the rest.
	Aggregate []field.Element
	// AggregateVec[i] is node i's full reconstructed aggregate vector
	// (valid iff NodeOK[i]).
	AggregateVec [][]field.Element
	// NodeOK[i] reports whether node i obtained a correct aggregate (every
	// coordinate correct, for vector rounds).
	NodeOK []bool
	// CorrectNodes counts nodes with a correct aggregate.
	CorrectNodes int
	// Latency[i] is the end-to-end time until node i held the aggregate
	// (-1 if it failed).
	Latency []time.Duration
	// MeanLatency / MaxLatency summarize Latency over successful nodes.
	MeanLatency time.Duration
	MaxLatency  time.Duration
	// RadioOn[i] is node i's radio-on time across both phases.
	RadioOn []time.Duration
	// MeanRadioOn averages RadioOn over all nodes.
	MeanRadioOn time.Duration
	// Phase diagnostics.
	SharingDuration time.Duration
	ReconDuration   time.Duration
	SharingChainLen int
	ReconChainLen   int
	NTXUsed         int
	// VectorLen is the effective reading-vector length of the round (1 for
	// scalar rounds); SharePayloadBytes is the per-sub-slot payload size of
	// the sharing chain, so SharingChainLen × SharePayloadBytes is the
	// on-air payload volume of one chain pass.
	VectorLen         int
	SharePayloadBytes int
	// VerifiedShares / UnverifiedShares report verifiable-mode coverage in
	// share VALUES (coordinates): values checked against a received
	// commitment vs. absorbed optimistically because the commitment chain
	// missed the destination.
	VerifiedShares   int
	UnverifiedShares int
}

// shareDelivery is one sealed share vector riding a chain sub-slot.
type shareDelivery struct {
	item   minicast.Item
	sealed []byte
}

// RunRound executes one aggregation round. trial selects the randomness
// stream (secrets, fading, reception draws); runs with the same
// (bootstrap, trial) are bit-identical.
func RunRound(boot *Bootstrap, trial uint64) (*RoundResult, error) {
	return RunRoundWithSecrets(boot, trial, nil)
}

// RunRoundWithSecrets is RunRound with per-round source readings (e.g. this
// period's meter values), overriding any secrets fixed in the configuration.
// The map must cover every source. In vector mode the fixed reading becomes
// coordinate 0; the remaining coordinates stay at their per-round random
// draw.
func RunRoundWithSecrets(boot *Bootstrap, trial uint64, secrets map[int]uint64) (*RoundResult, error) {
	return RunRoundTraced(boot, trial, secrets, nil)
}

// sharePrep is everything one trial computes before any packet is on the
// air: the sources' readings, their sealed share deliveries, the chain item
// layouts, and the (lane-independent) destination/NTX schedule. The item
// lists depend only on the bootstrap and the source set, never on the
// trial, which is what lets the lane path run one chain pass for a whole
// trial batch.
type sharePrep struct {
	expected    []field.Element
	deliveries  []shareDelivery
	localShares map[int][]shamir.ShareVector
	commits     map[int][]*vss.Commitment
	shareGenMax time.Duration
	shareItems  []minicast.Item
	commitItems []minicast.Item
	commitOwner []int // commitment chain index → source
	dests       []int
	ntx         int
	vecLen      int
	vecMode     bool
}

// prepareShares runs the on-node compute prologue of one trial: draw the
// readings from secretRNG, split them (Feldman-dealt in verifiable mode),
// seal one vector per (source, destination), and lay out the sharing and
// commitment chains.
func prepareShares(boot *Bootstrap, cfg Config, trial uint64, secretRNG *rand.Rand,
	rec *trace.Recorder) (*sharePrep, error) {
	ch := boot.Channel
	n := ch.NumNodes()
	points := shamir.PublicPoints(n)
	keys := cfg.keyStore()

	p := &sharePrep{
		vecLen: cfg.effVectorLen(),
		// vecMode distinguishes an explicit vector deployment (VectorLen
		// >= 1) from the scalar default only where the OUTPUT must stay
		// byte-stable for historical configurations: trace event details.
		vecMode: cfg.VectorLen > 0,
		ntx:     cfg.NTXSharing,
	}
	// Destinations: all nodes for S3, the bootstrapped common set for S4.
	switch cfg.Protocol {
	case S3:
		p.dests = make([]int, n)
		for i := range p.dests {
			p.dests[i] = i
		}
		p.ntx = boot.NTXFull
	case S4:
		p.dests = boot.Dests
	}
	vecLen := p.vecLen

	p.expected = make([]field.Element, vecLen)
	p.deliveries = make([]shareDelivery, 0, len(cfg.Sources)*len(p.dests))
	// localShares[j] collects share vectors that never ride the chain
	// because the source is its own destination.
	p.localShares = make(map[int][]shamir.ShareVector, len(cfg.Sources))
	// commits[src][k] is source src's Feldman commitment for coordinate k.
	p.commits = make(map[int][]*vss.Commitment, len(cfg.Sources))
	for _, src := range cfg.Sources {
		reading := make([]field.Element, vecLen)
		for k := range reading {
			reading[k] = field.New(secretRNG.Uint64())
		}
		if cfg.Secrets != nil {
			reading[0] = field.New(cfg.Secrets[src])
		}
		for k, secret := range reading {
			p.expected[k] = p.expected[k].Add(secret)
		}
		var out []shamir.ShareVector
		if cfg.Verifiable {
			out = make([]shamir.ShareVector, n)
			for i := range out {
				out[i] = shamir.ShareVector{X: points[i], Values: make([]field.Element, vecLen)}
			}
			cs := make([]*vss.Commitment, vecLen)
			for k, secret := range reading {
				vshares, commit, err := vss.Deal(secret, cfg.Degree, points, secretRNG)
				if err != nil {
					return nil, err
				}
				cs[k] = commit
				for i, vs := range vshares {
					out[i].Values[k] = vs.Value
				}
			}
			p.commits[src] = cs
		} else {
			var err error
			out, err = shamir.SplitVec(reading, cfg.Degree, points, secretRNG)
			if err != nil {
				return nil, err
			}
		}
		genCost := cfg.CPU.ShareGenerationVec(cfg.Degree, len(p.dests), vecLen)
		if cfg.Verifiable {
			genCost += time.Duration(vecLen) * cfg.CPU.VSSCommit(cfg.Degree)
		}
		if genCost > p.shareGenMax {
			p.shareGenMax = genCost
		}
		genDetail := fmt.Sprintf("%d destinations", len(p.dests))
		if p.vecMode {
			genDetail = fmt.Sprintf("%d destinations, veclen=%d", len(p.dests), vecLen)
		}
		rec.Record(genCost, trace.KindShareGen, src, genDetail)
		for _, dst := range p.dests {
			if dst == src {
				p.localShares[dst] = append(p.localShares[dst], out[dst])
				continue
			}
			key, err := keys.PairKey(src, dst)
			if err != nil {
				return nil, err
			}
			ctx := seckey.PacketContext{
				Round:    uint32(trial),
				Sender:   uint16(src),
				Receiver: uint16(dst),
				Slot:     uint32(len(p.deliveries)),
			}
			sealed, err := seckey.SealVector(key, ctx, out[dst].Values)
			if err != nil {
				return nil, err
			}
			p.deliveries = append(p.deliveries, shareDelivery{
				item:   minicast.Item{Owner: src, Dst: dst},
				sealed: sealed,
			})
		}
	}
	p.shareItems = make([]minicast.Item, len(p.deliveries))
	for i, d := range p.deliveries {
		p.shareItems[i] = d.item
	}
	if cfg.Verifiable {
		// One broadcast item per polynomial coefficient per coordinate per
		// source.
		p.commitItems = make([]minicast.Item, 0, len(cfg.Sources)*vecLen*(cfg.Degree+1))
		for _, src := range cfg.Sources {
			for c := 0; c < vecLen*(cfg.Degree+1); c++ {
				p.commitItems = append(p.commitItems, minicast.Item{Owner: src, Dst: -1})
				p.commitOwner = append(p.commitOwner, src)
			}
		}
	}
	return p, nil
}

// roundExec carries one trial's state between the sharing chains and the
// round epilogue. haveShare/haveCommit abstract the chain delivery matrix,
// so the epilogue reads a scalar minicast.Result and a bit-sliced lane mask
// through the same code path.
type roundExec struct {
	boot     *Bootstrap
	cfg      Config
	trial    uint64
	prep     *sharePrep
	rec      *trace.Recorder
	ledger   *sim.RadioLedger
	engine   *sim.Engine
	radioRNG *rand.Rand

	commitDur time.Duration
	shareDur  time.Duration
	// haveShare reports whether the sharing chain delivered item idx to
	// dst; haveCommit is the same for the commitment chain (nil when the
	// round is not verifiable).
	haveShare  func(dst, idx int) bool
	haveCommit func(dst, idx int) bool
}

// hasFullCommitment reports whether dst received every commitment
// coefficient dealt by src in the commitment chain.
func (e *roundExec) hasFullCommitment(dst, src int) bool {
	if e.haveCommit == nil {
		return false
	}
	for idx, owner := range e.prep.commitOwner {
		if owner == src && !e.haveCommit(dst, idx) {
			return false
		}
	}
	return true
}

// finish runs the round epilogue: per-destination aggregation, holder
// selection, the reconstruction chain (drawing from radioRNG), and the
// per-node result fold. The arena backs the reconstruction chain's buffers;
// the returned RoundResult owns its memory.
func (e *roundExec) finish(arena *sim.Arena) (*RoundResult, error) {
	boot, cfg, prep, rec := e.boot, e.cfg, e.prep, e.rec
	ch := boot.Channel
	n := ch.NumNodes()
	keys := cfg.keyStore()
	vecLen := prep.vecLen
	ntx := prep.ntx
	expected := prep.expected
	ledger := e.ledger

	// --- Local aggregation at each destination (coordinate-wise). ---
	sums := make([][]field.Element, n)
	addVec := func(dst int, values []field.Element) error {
		if sums[dst] == nil {
			sums[dst] = make([]field.Element, vecLen)
		}
		return field.AccumulateVec(sums[dst], values)
	}
	contrib := make([]int, n)
	absorbCPU := make([]time.Duration, n)
	var verified, unverified int
	for dst, shares := range prep.localShares {
		for _, sv := range shares {
			if err := addVec(dst, sv.Values); err != nil {
				return nil, err
			}
			contrib[dst]++
		}
	}
	for idx, d := range prep.deliveries {
		dst := d.item.Dst
		if !e.haveShare(dst, idx) {
			continue
		}
		key, err := keys.PairKey(d.item.Owner, dst)
		if err != nil {
			return nil, err
		}
		ctx := seckey.PacketContext{
			Round:    uint32(e.trial),
			Sender:   uint16(d.item.Owner),
			Receiver: uint16(dst),
			Slot:     uint32(idx),
		}
		values, err := seckey.OpenVector(key, ctx, vecLen, d.sealed)
		if err != nil {
			return nil, fmt.Errorf("open share vector %d: %w", idx, err)
		}
		if cfg.Verifiable {
			// Verify against the dealer's commitments when the commitment
			// chain reached this destination; absorb optimistically
			// otherwise (coverage is reported in the result).
			if e.hasFullCommitment(dst, d.item.Owner) {
				for k, v := range values {
					share := vss.Share{X: shamir.PublicPoint(dst), Value: v}
					if vErr := vss.Verify(share, prep.commits[d.item.Owner][k]); vErr != nil {
						// With honest dealers this indicates a protocol bug.
						return nil, fmt.Errorf("verify share %d[%d]: %w", idx, k, vErr)
					}
				}
				verified += vecLen
				absorbCPU[dst] += time.Duration(vecLen) * cfg.CPU.VSSVerify(cfg.Degree)
			} else {
				unverified += vecLen
			}
		}
		if err := addVec(dst, values); err != nil {
			return nil, err
		}
		contrib[dst]++
	}
	for _, dst := range prep.dests {
		absorbCPU[dst] += cfg.CPU.SumAbsorbVec(contrib[dst], vecLen)
	}

	// Only destinations whose sum aggregates EVERY source re-share it; an
	// incomplete sum would poison interpolation. (The sum packet carries a
	// contribution count, so peers can tell.)
	holders := make([]int, 0, len(prep.dests))
	for _, dst := range prep.dests {
		if contrib[dst] == len(cfg.Sources) {
			holders = append(holders, dst)
			rec.Record(prep.shareGenMax+e.commitDur+e.shareDur, trace.KindSumComplete, dst, "")
		} else {
			rec.Record(prep.shareGenMax+e.commitDur+e.shareDur, trace.KindSumIncomplete, dst,
				fmt.Sprintf("%d/%d shares", contrib[dst], len(cfg.Sources)))
		}
	}
	need := cfg.Degree + 1
	if len(holders) < need {
		// The round is unrecoverable network-wide; report total failure.
		return failedRound(expected, n, ledger, e.commitDur+e.shareDur,
			len(prep.shareItems), ntx, vecLen), nil
	}

	// --- Reconstruction phase over MiniCast (plaintext sum vectors). ---
	reconItems := make([]minicast.Item, len(holders))
	for i, h := range holders {
		reconItems[i] = minicast.Item{Owner: h, Dst: -1}
	}
	var stopListen func(int, []bool) bool
	if cfg.Protocol == S4 && !cfg.NoEarlyOff {
		// S4 nodes duty-cycle off once any k+1 sums are in hand.
		stopListen = func(node int, have []bool) bool {
			count := 0
			for _, h := range have {
				if h {
					count++
					if count >= need {
						return true
					}
				}
			}
			return false
		}
	}
	reconRes, err := minicast.RunArena(minicast.Config{
		Channel:      ch,
		Initiator:    cfg.Initiator,
		NTX:          ntx,
		Items:        reconItems,
		PayloadBytes: sumPayloadBytes(vecLen),
		StopListen:   stopListen,
		Failed:       cfg.Failed,
	}, e.radioRNG, ledger, e.engine, arena)
	if err != nil {
		return nil, fmt.Errorf("reconstruction phase: %w", err)
	}
	rec.Record(prep.shareGenMax+e.commitDur+e.shareDur+reconRes.Duration, trace.KindPhase, -1,
		fmt.Sprintf("reconstruction: chain=%d", len(reconItems)))

	// --- Per-node reconstruction and latency. ---
	res := &RoundResult{
		Expected:        expected[0],
		ExpectedVec:     expected,
		Aggregate:       make([]field.Element, n),
		AggregateVec:    make([][]field.Element, n),
		NodeOK:          make([]bool, n),
		Latency:         make([]time.Duration, n),
		RadioOn:         make([]time.Duration, n),
		SharingDuration: e.commitDur + e.shareDur,
		ReconDuration:   reconRes.Duration,
		SharingChainLen: len(prep.shareItems),
		ReconChainLen:   len(reconItems),
		NTXUsed:         ntx,

		VectorLen:         vecLen,
		SharePayloadBytes: sharePayloadBytes(vecLen),

		VerifiedShares:   verified,
		UnverifiedShares: unverified,
	}
	var latSum, latMax time.Duration
	okCount := 0
	for node := 0; node < n; node++ {
		res.RadioOn[node] = ledger.OnTime(node)
		res.Latency[node] = -1

		// Collect the arrival times of the sums this node holds.
		arrivals := make([]time.Duration, 0, len(holders))
		held := make([]shamir.ShareVector, 0, len(holders))
		for i, h := range holders {
			if !reconRes.Have[node][i] {
				continue
			}
			arrivals = append(arrivals, reconRes.RxAt[node][i])
			held = append(held, shamir.ShareVector{X: shamir.PublicPoint(h), Values: sums[h]})
		}
		required := need
		if cfg.Protocol == S3 {
			required = len(holders) // naive: wait for strict all-to-all
		}
		if len(held) < required {
			rec.Record(prep.shareGenMax+e.commitDur+e.shareDur+reconRes.Duration,
				trace.KindAggregateFail, node,
				fmt.Sprintf("%d/%d sums", len(held), required))
			continue
		}
		sort.Slice(arrivals, func(i, j int) bool { return arrivals[i] < arrivals[j] })
		readyAt := arrivals[required-1]

		agg, err := shamir.ReconstructVec(held, cfg.Degree)
		if err != nil {
			return nil, err
		}
		res.Aggregate[node] = agg[0]
		res.AggregateVec[node] = agg
		ok := true
		for k := range agg {
			if agg[k] != expected[k] {
				ok = false // would indicate an incomplete sum slipped through
				break
			}
		}
		if !ok {
			continue
		}
		res.NodeOK[node] = true
		okCount++
		lat := prep.shareGenMax + e.commitDur + e.shareDur + absorbCPU[node] + readyAt +
			cfg.CPU.InterpolationVec(need, vecLen)
		res.Latency[node] = lat
		rec.Record(lat, trace.KindAggregateOK, node, "")
		latSum += lat
		if lat > latMax {
			latMax = lat
		}
	}
	res.CorrectNodes = okCount
	if okCount > 0 {
		res.MeanLatency = latSum / time.Duration(okCount)
		res.MaxLatency = latMax
	}
	var onSum time.Duration
	for node := 0; node < n; node++ {
		onSum += res.RadioOn[node]
	}
	res.MeanRadioOn = onSum / time.Duration(n)
	return res, nil
}

// RunRoundTraced is RunRoundWithSecrets with an optional event recorder; a
// nil recorder is a no-op sink.
//
// The round is vectorized end to end: every source shares a VectorLen-long
// reading vector (shamir.SplitVec — one polynomial per coordinate), ships
// ONE sealed vector per destination (seckey.SealVector — one MIC for the
// whole vector), destinations aggregate share vectors coordinate-wise, and
// reconstruction recovers the full aggregate vector from one cached
// Lagrange basis (shamir.ReconstructVec). Scalar rounds are the L=1
// degenerate case and produce results bit-identical to the historical
// one-share-per-packet path.
func RunRoundTraced(boot *Bootstrap, trial uint64, secrets map[int]uint64, rec *trace.Recorder) (*RoundResult, error) {
	if boot == nil || boot.Channel == nil {
		return nil, fmt.Errorf("%w: nil bootstrap", ErrBadConfig)
	}
	cfg := boot.cfg
	if secrets != nil {
		for _, s := range cfg.Sources {
			if _, ok := secrets[s]; !ok {
				return nil, fmt.Errorf("%w: no secret for source %d", ErrBadConfig, s)
			}
		}
		cfg.Secrets = secrets
	}
	ch := boot.Channel
	n := ch.NumNodes()

	secretRNG := sim.NewRNG(cfg.ChannelSeed, trial*4+1)
	radioRNG := sim.NewRNG(cfg.ChannelSeed, trial*4+2)

	// All three chain phases borrow from one arena; their results must stay
	// readable side by side until the round is folded, so the arena resets
	// once, on the way out.
	arena := roundArenas.Get().(*sim.Arena)
	defer func() {
		arena.Reset()
		roundArenas.Put(arena)
	}()

	prep, err := prepareShares(boot, cfg, trial, secretRNG, rec)
	if err != nil {
		return nil, err
	}

	ledger := sim.NewRadioLedger(n)
	engine := sim.NewEngine()

	// --- Sharing phase over MiniCast. ---
	// Verifiable mode: flood the commitment vectors first (one broadcast
	// item per polynomial coefficient per coordinate per source).
	var commitDur time.Duration
	var commitRes *minicast.Result
	if cfg.Verifiable {
		cRes, cErr := minicast.RunArena(minicast.Config{
			Channel:      ch,
			Initiator:    cfg.Initiator,
			NTX:          prep.ntx,
			Items:        prep.commitItems,
			PayloadBytes: commitPayloadBytes,
			Failed:       cfg.Failed,
		}, radioRNG, ledger, engine, arena)
		if cErr != nil {
			return nil, fmt.Errorf("commitment phase: %w", cErr)
		}
		commitRes = cRes
		commitDur = commitRes.Duration
		rec.Record(prep.shareGenMax+commitDur, trace.KindPhase, -1,
			fmt.Sprintf("commitments: chain=%d", len(prep.commitItems)))
	}

	shareRes, err := minicast.RunArena(minicast.Config{
		Channel:      ch,
		Initiator:    cfg.Initiator,
		NTX:          prep.ntx,
		Items:        prep.shareItems,
		PayloadBytes: sharePayloadBytes(prep.vecLen),
		Failed:       cfg.Failed,
	}, radioRNG, ledger, engine, arena)
	if err != nil {
		return nil, fmt.Errorf("sharing phase: %w", err)
	}
	shareDetail := fmt.Sprintf("sharing: chain=%d ntx=%d", len(prep.shareItems), prep.ntx)
	if prep.vecMode {
		shareDetail = fmt.Sprintf("sharing: chain=%d ntx=%d veclen=%d", len(prep.shareItems), prep.ntx, prep.vecLen)
	}
	rec.Record(prep.shareGenMax+commitDur+shareRes.Duration, trace.KindPhase, -1, shareDetail)

	exec := &roundExec{
		boot:      boot,
		cfg:       cfg,
		trial:     trial,
		prep:      prep,
		rec:       rec,
		ledger:    ledger,
		engine:    engine,
		radioRNG:  radioRNG,
		commitDur: commitDur,
		shareDur:  shareRes.Duration,
		haveShare: func(dst, idx int) bool { return shareRes.Have[dst][idx] },
	}
	if commitRes != nil {
		exec.haveCommit = func(dst, idx int) bool { return commitRes.Have[dst][idx] }
	}
	return exec.finish(arena)
}

// failedRound builds the all-failure result used when too few complete sums
// exist for anyone to reconstruct.
func failedRound(expected []field.Element, n int, ledger *sim.RadioLedger,
	shareDur time.Duration, chainLen, ntx, vecLen int) *RoundResult {
	res := &RoundResult{
		Expected:        expected[0],
		ExpectedVec:     expected,
		Aggregate:       make([]field.Element, n),
		AggregateVec:    make([][]field.Element, n),
		NodeOK:          make([]bool, n),
		Latency:         make([]time.Duration, n),
		RadioOn:         make([]time.Duration, n),
		SharingDuration: shareDur,
		SharingChainLen: chainLen,
		NTXUsed:         ntx,

		VectorLen:         vecLen,
		SharePayloadBytes: sharePayloadBytes(vecLen),
	}
	var onSum time.Duration
	for i := 0; i < n; i++ {
		res.Latency[i] = -1
		res.RadioOn[i] = ledger.OnTime(i)
		onSum += res.RadioOn[i]
	}
	res.MeanRadioOn = onSum / time.Duration(n)
	return res
}
