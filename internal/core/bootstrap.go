package core

import (
	"fmt"
	"sort"

	"iotmpc/internal/minicast"
	"iotmpc/internal/phy"
	"iotmpc/internal/sim"
)

// Bootstrap is the outcome of the protocol's bootstrapping phase. The paper
// assumes "every node takes note of which neighbor is reachable at what NTX
// value" during bootstrapping; we realize that as a sequence of MiniCast
// probe rounds over the real channel model:
//
//   - for S3, probing finds the smallest NTX at which all-to-all sharing
//     achieves full coverage reliably (plus a safety margin) — the
//     full-coverage NTX the naive protocol must run at;
//   - for S4, probing measures per-destination delivery reliability at the
//     configured low NTX and fixes the common destination set D: the
//     degree+1+slack nodes reachable from EVERY source most reliably.
//     D must be common across sources because reconstruction interpolates
//     public-point sums, and a sum is only meaningful if it aggregates the
//     shares of every source.
type Bootstrap struct {
	// Channel is the radio backend probes ran on; rounds reuse it.
	Channel phy.Radio
	// NTXFull is the derived full-coverage NTX used by S3.
	NTXFull int
	// Dests is S4's common destination set, most reliable first.
	Dests []int
	// Reliability[i] is the min-over-sources delivery rate of Dests[i]
	// observed at the probing NTX.
	Reliability []float64
	// Diameter is the hop diameter of the connectivity graph (PRR >= 0.5).
	Diameter int

	cfg Config
}

// Probing constants. More probes sharpen the estimates at bootstrap cost;
// these mirror the short commissioning phase a real deployment would run.
const (
	probesPerNTX     = 24
	probesForDests   = 24
	ntxSearchCeiling = 6 // multiple of (diameter+1) before giving up
	minReliability   = 0.85
)

// RunBootstrap executes the bootstrapping phase for the configuration.
func RunBootstrap(cfg Config) (*Bootstrap, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	ch, err := cfg.buildRadio()
	if err != nil {
		return nil, err
	}
	diam, connected, err := phy.Diameter(ch, 0.5)
	if err != nil {
		return nil, err
	}
	if !connected {
		return nil, fmt.Errorf("%w: topology %q disconnected", ErrBootstrap, cfg.Topology.Name)
	}
	b := &Bootstrap{Channel: ch, Diameter: diam, cfg: cfg}

	if err := b.deriveNTXFull(); err != nil {
		return nil, err
	}
	if cfg.Protocol == S4 {
		if err := b.deriveDests(); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// Config returns the normalized configuration the bootstrap was run for.
func (b *Bootstrap) Config() Config { return b.cfg }

// probeItems is an all-to-all broadcast chain: one item per node.
func probeItems(n int) []minicast.Item {
	items := make([]minicast.Item, n)
	for i := range items {
		items[i] = minicast.Item{Owner: i, Dst: -1}
	}
	return items
}

// deriveNTXFull searches upward from the diameter for the smallest NTX at
// which every probe achieves full all-to-all coverage, then applies the
// naive protocol's conservative sizing: NTXFull = 2×threshold + 2.
//
// The doubling is the point of "naive": S3 must deliver EVERY item to EVERY
// node across entire experiment campaigns (the paper runs 2000 iterations —
// tens of millions of (item, node) deliveries), but the bootstrap threshold
// is estimated from only a dozen probes of the best case. A deployment that
// cannot tolerate tail losses has to over-provision well past the probed
// threshold; doubling is the standard CT-literature margin (Glossy itself is
// typically run at N well above the minimum that floods the testbed). S4's
// entire design is about not needing this margin.
func (b *Bootstrap) deriveNTXFull() error {
	n := b.Channel.NumNodes()
	items := probeItems(n)
	ceiling := ntxSearchCeiling * (b.Diameter + 1)
	// Each probe's result is folded immediately, so one arena serves the
	// whole search, reset between probes.
	var arena sim.Arena
	for ntx := b.Diameter; ntx <= ceiling; ntx++ {
		allFull := true
		for probe := 0; probe < probesPerNTX; probe++ {
			rng := sim.NewRNG(b.cfg.ChannelSeed, uint64(0x0B00+ntx*1000+probe))
			arena.Reset()
			res, err := minicast.RunArena(minicast.Config{
				Channel:      b.Channel,
				Initiator:    b.cfg.Initiator,
				NTX:          ntx,
				Items:        items,
				PayloadBytes: sumPayloadBytes(b.cfg.effVectorLen()),
			}, rng, nil, nil, &arena)
			if err != nil {
				return err
			}
			if res.MeanCoverage() < 1 {
				allFull = false
				break
			}
		}
		if allFull {
			b.NTXFull = 2*ntx + 2
			return nil
		}
	}
	return fmt.Errorf("%w: no full-coverage NTX found below %d", ErrBootstrap, ceiling)
}

// deriveDests measures, at the low sharing NTX, how reliably each node
// receives data originating at each source, and keeps the degree+1+slack
// nodes whose worst-source reliability is highest.
func (b *Bootstrap) deriveDests() error {
	n := b.Channel.NumNodes()
	items := probeItems(n)
	// delivered[src][node] counts probe rounds where node got src's item.
	delivered := make([][]int, n)
	for i := range delivered {
		delivered[i] = make([]int, n)
	}
	var arena sim.Arena
	for probe := 0; probe < probesForDests; probe++ {
		rng := sim.NewRNG(b.cfg.ChannelSeed, uint64(0xDE57+probe))
		arena.Reset()
		res, err := minicast.RunArena(minicast.Config{
			Channel:      b.Channel,
			Initiator:    b.cfg.Initiator,
			NTX:          b.cfg.NTXSharing,
			Items:        items,
			PayloadBytes: sharePayloadBytes(b.cfg.effVectorLen()),
		}, rng, nil, nil, &arena)
		if err != nil {
			return err
		}
		for src := 0; src < n; src++ {
			for node := 0; node < n; node++ {
				if res.Have[node][src] {
					delivered[src][node]++
				}
			}
		}
	}

	type cand struct {
		node int
		rel  float64
	}
	cands := make([]cand, 0, n)
	for node := 0; node < n; node++ {
		worst := 1.0
		for _, src := range b.cfg.Sources {
			rel := float64(delivered[src][node]) / probesForDests
			if src == node {
				rel = 1 // a source trivially "delivers" to itself
			}
			if rel < worst {
				worst = rel
			}
		}
		cands = append(cands, cand{node: node, rel: worst})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].rel != cands[j].rel {
			return cands[i].rel > cands[j].rel
		}
		return cands[i].node < cands[j].node
	})

	want := b.cfg.Degree + 1 + b.cfg.DestSlack
	if len(cands) < want || cands[want-1].rel < minReliability {
		got := 0
		for _, c := range cands {
			if c.rel >= minReliability {
				got++
			}
		}
		return fmt.Errorf("%w: need %d destinations with reliability >= %.2f at NTX=%d, have %d",
			ErrBootstrap, want, minReliability, b.cfg.NTXSharing, got)
	}
	b.Dests = make([]int, want)
	b.Reliability = make([]float64, want)
	for i := 0; i < want; i++ {
		b.Dests[i] = cands[i].node
		b.Reliability[i] = cands[i].rel
	}
	return nil
}
