package timesync

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"iotmpc/internal/phy"
	"iotmpc/internal/topology"
)

func flockChannel(t *testing.T) *phy.Channel {
	t.Helper()
	ch, err := topology.FlockLab().Channel(phy.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func baseConfig(ch *phy.Channel) Config {
	return Config{
		Channel:        ch,
		Initiator:      0,
		NTX:            6,
		ResyncInterval: time.Second,
		Rounds:         10,
	}
}

func TestSyncKeepsErrorWithinGuard(t *testing.T) {
	// The load-bearing claim: with per-round resync at CT-round cadence,
	// sync error stays below the TDMA guard interval, so the slot-
	// synchronous MiniCast abstraction is sound.
	ch := flockChannel(t)
	cfg := baseConfig(ch)
	rep, err := Simulate(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Samples) != 10 {
		t.Fatalf("samples = %d", len(rep.Samples))
	}
	if !rep.WithinGuard() {
		t.Errorf("worst sync error %v exceeds guard %v", rep.WorstError(), rep.GuardInterval)
	}
	for _, s := range rep.Samples {
		if s.Unsynced > 2 {
			t.Errorf("round %d: %d nodes never synced", s.Round, s.Unsynced)
		}
	}
}

func TestErrorGrowsWithResyncInterval(t *testing.T) {
	ch := flockChannel(t)
	worst := func(interval time.Duration) time.Duration {
		cfg := baseConfig(ch)
		cfg.ResyncInterval = interval
		rep, err := Simulate(cfg, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatal(err)
		}
		return rep.WorstError()
	}
	short := worst(time.Second)
	long := worst(30 * time.Second)
	if long <= short {
		t.Errorf("30s interval error %v not above 1s error %v", long, short)
	}
}

func TestDriftCompensationHelps(t *testing.T) {
	ch := flockChannel(t)
	run := func(compensate bool) time.Duration {
		cfg := baseConfig(ch)
		cfg.ResyncInterval = 30 * time.Second
		cfg.Rounds = 20
		cfg.DriftCompensation = compensate
		rep, err := Simulate(cfg, rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatal(err)
		}
		// Judge by the tail (after estimates converge).
		var worstTail time.Duration
		for _, s := range rep.Samples[5:] {
			if s.MaxAbsError > worstTail {
				worstTail = s.MaxAbsError
			}
		}
		return worstTail
	}
	raw := run(false)
	comp := run(true)
	if comp >= raw {
		t.Errorf("drift compensation did not help: with=%v without=%v", comp, raw)
	}
}

func TestExplicitDriftVector(t *testing.T) {
	ch := flockChannel(t)
	cfg := baseConfig(ch)
	drifts := make([]float64, ch.NumNodes())
	for i := range drifts {
		drifts[i] = 0 // perfect crystals
	}
	cfg.DriftPPM = drifts
	cfg.HopJitter = time.Nanosecond
	rep, err := Simulate(cfg, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	// With zero drift and ~ns jitter, error must be tiny.
	if rep.WorstError() > time.Microsecond {
		t.Errorf("zero-drift worst error %v, want < 1µs", rep.WorstError())
	}
}

func TestLargerDriftLargerError(t *testing.T) {
	ch := flockChannel(t)
	worst := func(ppm float64) time.Duration {
		cfg := baseConfig(ch)
		cfg.MaxDriftPPM = ppm
		rep, err := Simulate(cfg, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatal(err)
		}
		return rep.WorstError()
	}
	if worst(100) <= worst(5) {
		t.Error("100 ppm crystals not worse than 5 ppm")
	}
}

func TestConfigValidation(t *testing.T) {
	ch := flockChannel(t)
	rng := rand.New(rand.NewSource(1))
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil channel", func(c *Config) { c.Channel = nil }},
		{"bad initiator", func(c *Config) { c.Initiator = 99 }},
		{"zero ntx", func(c *Config) { c.NTX = 0 }},
		{"zero interval", func(c *Config) { c.ResyncInterval = 0 }},
		{"zero rounds", func(c *Config) { c.Rounds = 0 }},
		{"drift size mismatch", func(c *Config) { c.DriftPPM = []float64{1} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := baseConfig(ch)
			tt.mutate(&cfg)
			if _, err := Simulate(cfg, rng); !errors.Is(err, ErrBadConfig) {
				t.Errorf("error = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestInitiatorIsReference(t *testing.T) {
	ch := flockChannel(t)
	cfg := baseConfig(ch)
	rep, err := Simulate(cfg, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	// The initiator is excluded from error sampling; with 26 nodes the mean
	// is over at most 25.
	for _, s := range rep.Samples {
		if s.Unsynced >= ch.NumNodes() {
			t.Error("unsynced count includes the reference node")
		}
	}
}
