// Package timesync models Glossy-based network time synchronization — the
// mechanism that makes slot-level TDMA (and constructive interference
// itself) possible on testbeds like FlockLab and D-Cube.
//
// Every CT round starts with a Glossy flood carrying the initiator's clock;
// a receiver learns the network time to within a few microseconds because it
// knows exactly which relay slot it heard (per-hop timestamp jitter is
// sub-microsecond in Glossy). Between floods, each node's estimate degrades
// with the drift of its crystal oscillator (tens of ppm); after two or more
// floods a node can estimate its own drift and compensate, leaving only the
// estimation residual.
//
// The package simulates this loop and reports the distribution of sync error
// across nodes over time. Its role in the repository is to *justify* the
// slot-synchronous abstraction used by internal/minicast: with the default
// parameters, worst-case sync error stays well below the 100 µs TDMA guard
// interval, so the chain simulation may treat slots as perfectly aligned.
package timesync

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"iotmpc/internal/glossy"
	"iotmpc/internal/phy"
)

// Errors returned by the package.
var (
	// ErrBadConfig is returned for invalid sync configuration.
	ErrBadConfig = errors.New("timesync: invalid configuration")
)

// Config parameterizes a synchronization simulation.
type Config struct {
	// Channel is the radio backend (any phy.Radio implementation).
	Channel phy.Radio
	// Initiator is the clock reference node.
	Initiator int
	// NTX is the Glossy retransmission budget of sync floods.
	NTX int
	// ResyncInterval is the period between sync floods.
	ResyncInterval time.Duration
	// Rounds is the number of resync periods to simulate.
	Rounds int
	// DriftPPM holds each node's crystal drift in parts per million
	// (positive: the local clock runs fast). Nil samples ±MaxDriftPPM
	// uniformly.
	DriftPPM []float64
	// MaxDriftPPM bounds sampled drift when DriftPPM is nil (default 20,
	// a standard ±20 ppm crystal).
	MaxDriftPPM float64
	// HopJitter is the per-hop timestamp error contributed by one relay
	// (default 500 ns, Glossy-class).
	HopJitter time.Duration
	// DriftCompensation enables two-point drift estimation after the second
	// successful sync (what Glossy-based systems such as LWB/Crystal do).
	DriftCompensation bool
}

func (c Config) validate() error {
	switch {
	case c.Channel == nil:
		return fmt.Errorf("%w: nil channel", ErrBadConfig)
	case c.Initiator < 0 || c.Initiator >= c.Channel.NumNodes():
		return fmt.Errorf("%w: initiator %d", ErrBadConfig, c.Initiator)
	case c.NTX <= 0:
		return fmt.Errorf("%w: NTX %d", ErrBadConfig, c.NTX)
	case c.ResyncInterval <= 0:
		return fmt.Errorf("%w: resync interval %v", ErrBadConfig, c.ResyncInterval)
	case c.Rounds <= 0:
		return fmt.Errorf("%w: rounds %d", ErrBadConfig, c.Rounds)
	case c.DriftPPM != nil && len(c.DriftPPM) != c.Channel.NumNodes():
		return fmt.Errorf("%w: %d drift entries for %d nodes",
			ErrBadConfig, len(c.DriftPPM), c.Channel.NumNodes())
	}
	return nil
}

// nodeState tracks one node's synchronization estimate.
type nodeState struct {
	driftPPM float64 // true crystal drift

	synced        bool
	syncCount     int
	lastSyncAt    time.Duration // true time of last successful sync
	residual      time.Duration // estimate error at the moment of last sync
	driftEstimate float64       // compensated drift (ppm), if estimating
	lastOffsetErr time.Duration // bookkeeping for two-point drift estimation
}

// errorAt returns the node's sync error at true time t.
func (s *nodeState) errorAt(t time.Duration) time.Duration {
	if !s.synced {
		return time.Duration(math.MaxInt64) // never synchronized
	}
	elapsed := t - s.lastSyncAt
	effectiveDrift := s.driftPPM - s.driftEstimate
	driftErr := time.Duration(float64(elapsed) * effectiveDrift / 1e6)
	return s.residual + driftErr
}

// Sample is the network-wide sync error immediately before one resync flood
// (the worst moment of the period).
type Sample struct {
	// Round is the resync period index (1-based).
	Round int
	// MaxAbsError and MeanAbsError summarize |error| over synced nodes.
	MaxAbsError  time.Duration
	MeanAbsError time.Duration
	// Unsynced counts nodes that have never heard a sync flood.
	Unsynced int
}

// Report is a full simulation outcome.
type Report struct {
	// Samples holds one entry per resync period.
	Samples []Sample
	// GuardInterval echoes the PHY's TDMA guard for convenience.
	GuardInterval time.Duration
}

// WorstError returns the largest per-period maximum across the simulation.
func (r *Report) WorstError() time.Duration {
	var worst time.Duration
	for _, s := range r.Samples {
		if s.MaxAbsError > worst {
			worst = s.MaxAbsError
		}
	}
	return worst
}

// WithinGuard reports whether every sampled error stayed below the guard
// interval — the condition under which the slot-synchronous TDMA abstraction
// is sound.
func (r *Report) WithinGuard() bool {
	return r.WorstError() < r.GuardInterval
}

// Simulate runs Rounds resync periods and samples the error right before
// each flood.
func Simulate(cfg Config, rng *rand.Rand) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.Channel.NumNodes()
	maxDrift := cfg.MaxDriftPPM
	if maxDrift == 0 {
		maxDrift = 20
	}
	hopJitter := cfg.HopJitter
	if hopJitter == 0 {
		hopJitter = 500 * time.Nanosecond
	}

	states := make([]nodeState, n)
	for i := range states {
		if cfg.DriftPPM != nil {
			states[i].driftPPM = cfg.DriftPPM[i]
		} else {
			states[i].driftPPM = (rng.Float64()*2 - 1) * maxDrift
		}
	}
	// The initiator IS the reference.
	states[cfg.Initiator].synced = true
	states[cfg.Initiator].driftPPM = 0

	report := &Report{GuardInterval: cfg.Channel.Params().SlotGuard}
	now := time.Duration(0)
	for round := 1; round <= cfg.Rounds; round++ {
		// Sync flood at the start of the period.
		flood, err := glossy.Run(glossy.Config{
			Channel:      cfg.Channel,
			Initiator:    cfg.Initiator,
			NTX:          cfg.NTX,
			PayloadBytes: 12, // timestamp + metadata
		}, rng, nil, nil)
		if err != nil {
			return nil, err
		}
		for i := range states {
			if i == cfg.Initiator || !flood.Received[i] {
				continue
			}
			s := &states[i]
			// Residual after a sync: per-hop jitter accumulated over the
			// relay distance (slot index approximates 2×hops in Glossy's
			// alternating schedule).
			hops := flood.FirstRxSlot[i]/2 + 1
			res := time.Duration(rng.NormFloat64() * float64(hopJitter) * math.Sqrt(float64(hops)))

			if cfg.DriftCompensation && s.syncCount >= 1 {
				// Two-point drift estimate from the error accumulated since
				// the previous sync; the estimate inherits the jitter of
				// both endpoints.
				elapsed := now - s.lastSyncAt
				if elapsed > 0 {
					accumulated := s.errorAt(now) - s.lastOffsetErr
					s.driftEstimate += float64(accumulated) / float64(elapsed) * 1e6
				}
			}
			s.residual = res
			s.lastOffsetErr = res
			s.lastSyncAt = now
			s.synced = true
			s.syncCount++
		}

		// Sample right before the next flood: the worst point of the period.
		now += cfg.ResyncInterval
		sample := Sample{Round: round}
		var sum time.Duration
		synced := 0
		for i := range states {
			if i == cfg.Initiator {
				continue
			}
			if !states[i].synced {
				sample.Unsynced++
				continue
			}
			e := states[i].errorAt(now)
			if e < 0 {
				e = -e
			}
			if e > sample.MaxAbsError {
				sample.MaxAbsError = e
			}
			sum += e
			synced++
		}
		if synced > 0 {
			sample.MeanAbsError = sum / time.Duration(synced)
		}
		report.Samples = append(report.Samples, sample)
	}
	return report, nil
}
