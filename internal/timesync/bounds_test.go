package timesync

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"iotmpc/internal/phy"
	"iotmpc/internal/topology"
)

// Hop-latency bounds: the sync residual model is per-hop Gaussian jitter
// accumulated over the relay distance, so the error must (a) scale with hop
// depth, (b) stay inside an analytic √hops tail bound, and (c) push past the
// TDMA guard when the per-hop jitter says it should. These run on a unit-disk
// line where hop counts are exact geometry, not channel luck.

// lineDisk builds an n-node unit-disk line where each hop reaches only the
// immediate neighbors (spacing 30 m, radius 35 m, no gray zone).
func lineDisk(t *testing.T, n int) *phy.UnitDisk {
	t.Helper()
	top, err := topology.Line(n, 30)
	if err != nil {
		t.Fatal(err)
	}
	u, err := phy.NewUnitDisk(phy.DefaultParams(), top.Positions, 35, 0)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// zeroDriftConfig isolates the hop-jitter term: perfect crystals mean the
// sampled error IS the flood residual.
func zeroDriftConfig(ch phy.Radio, rounds int) Config {
	return Config{
		Channel:        ch,
		Initiator:      0,
		NTX:            3,
		ResyncInterval: time.Second,
		Rounds:         rounds,
		DriftPPM:       make([]float64, ch.NumNodes()),
		HopJitter:      time.Microsecond,
	}
}

func meanOverRounds(t *testing.T, cfg Config, seed int64) time.Duration {
	t.Helper()
	rep, err := Simulate(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	var sum time.Duration
	for _, s := range rep.Samples {
		if s.Unsynced > 0 {
			t.Fatalf("round %d: %d unsynced nodes on a connected line", s.Round, s.Unsynced)
		}
		sum += s.MeanAbsError
	}
	return sum / time.Duration(len(rep.Samples))
}

func TestResidualScalesWithHopDepth(t *testing.T) {
	// A 16-hop line accumulates √hops more jitter than the same number of
	// nodes one hop from the initiator; 60 rounds of averaging makes the
	// ordering deterministic at the fixed seeds.
	const n, rounds = 17, 60
	deep := meanOverRounds(t, zeroDriftConfig(lineDisk(t, n), rounds), 1)

	top, err := topology.Line(n, 30)
	if err != nil {
		t.Fatal(err)
	}
	clique, err := phy.NewUnitDisk(phy.DefaultParams(), top.Positions, 30*float64(n), 0)
	if err != nil {
		t.Fatal(err)
	}
	shallow := meanOverRounds(t, zeroDriftConfig(clique, rounds), 1)
	if deep <= shallow {
		t.Errorf("deep-line mean error %v not above one-hop mean %v", deep, shallow)
	}
	if deep > 10*shallow {
		t.Errorf("deep-line mean error %v implausibly large vs one-hop %v (√hops model broken?)", deep, shallow)
	}
}

func TestHopLatencyTailBound(t *testing.T) {
	// Analytic bound: residual = N(0,1)·jitter·√hops with hops ≤ n, so worst
	// |error| over every node and round stays below 6σ·jitter·√n except with
	// vanishing probability (~500 draws at fixed seed).
	const n, rounds = 12, 40
	cfg := zeroDriftConfig(lineDisk(t, n), rounds)
	rep, err := Simulate(cfg, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	bound := time.Duration(6 * float64(cfg.HopJitter) * math.Sqrt(float64(n)))
	if worst := rep.WorstError(); worst > bound {
		t.Errorf("worst error %v exceeds 6σ hop bound %v", worst, bound)
	}
}

func TestGuardViolationDetected(t *testing.T) {
	// WithinGuard is a real predicate, not a constant: per-hop jitter on the
	// order of the guard interval itself must trip it.
	ch := lineDisk(t, 10)
	cfg := zeroDriftConfig(ch, 10)
	cfg.HopJitter = ch.Params().SlotGuard
	rep, err := Simulate(cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.WithinGuard() {
		t.Errorf("guard-sized hop jitter reported within guard (worst %v, guard %v)",
			rep.WorstError(), rep.GuardInterval)
	}
	// And the default Glossy-class jitter on the same line must not.
	cfg.HopJitter = 0 // default 500 ns
	rep, err = Simulate(cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.WithinGuard() {
		t.Errorf("default jitter exceeds guard on a 9-hop line (worst %v, guard %v)",
			rep.WorstError(), rep.GuardInterval)
	}
}

func TestPartitionedNodeStaysUnsynced(t *testing.T) {
	// A node outside radio range never hears a sync flood: it is reported in
	// Unsynced every round and never pollutes the error maximum.
	top, err := topology.Line(6, 30)
	if err != nil {
		t.Fatal(err)
	}
	top.Positions[5].X += 1000 // strand the last node
	u, err := phy.NewUnitDisk(phy.DefaultParams(), top.Positions, 35, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := zeroDriftConfig(u, 8)
	rep, err := Simulate(cfg, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rep.Samples {
		if s.Unsynced != 1 {
			t.Errorf("round %d: unsynced = %d, want exactly the stranded node", s.Round, s.Unsynced)
		}
		if s.MaxAbsError > time.Millisecond {
			t.Errorf("round %d: stranded node leaked into MaxAbsError (%v)", s.Round, s.MaxAbsError)
		}
	}
}
