package hepda

import (
	"errors"
	"testing"
	"time"

	"iotmpc/internal/core"
	"iotmpc/internal/topology"
)

func flockConfig() Config {
	sources := make([]int, 26)
	for i := range sources {
		sources[i] = i
	}
	return Config{
		Topology:    topology.FlockLab(),
		Sources:     sources,
		ChannelSeed: 1,
	}
}

func TestRoundCorrectAggregate(t *testing.T) {
	res, err := RunRound(flockConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Errorf("aggregate %d != expected %d", res.Aggregate, res.Expected)
	}
	if res.DeliveryRate < 0.9 {
		t.Errorf("delivery rate %.3f", res.DeliveryRate)
	}
	if res.CiphertextBytes != 512 {
		t.Errorf("modeled ciphertext = %dB, want 512 (2048-bit N)", res.CiphertextBytes)
	}
}

func TestVectorRoundPaysPerCoordinate(t *testing.T) {
	// HE has no batched-sealing discount: an L-sensor reading costs L full
	// Paillier encryptions and decryptions, so crypto latency scales
	// linearly in L — the asymmetry the SSS vector round is measured
	// against.
	scalar, err := RunRound(flockConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := flockConfig()
	cfg.VectorLen = 4
	vec, err := RunRound(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Correct {
		t.Fatalf("aggregate vector %v != expected %v", vec.AggregateVec, vec.ExpectedVec)
	}
	if vec.VectorLen != 4 || len(vec.AggregateVec) != 4 || len(vec.ExpectedVec) != 4 {
		t.Fatalf("vector shape: %+v", vec)
	}
	if vec.Aggregate != vec.AggregateVec[0] || vec.Expected != vec.ExpectedVec[0] {
		t.Error("scalar views are not coordinate 0")
	}
	// Crypto dominates latency, and every coordinate pays full price: the
	// vector round's latency must sit near 4× the scalar round's.
	if vec.MeanLatency < 3*scalar.MeanLatency {
		t.Errorf("vector latency %v below 3× scalar %v — HE should not batch", vec.MeanLatency, scalar.MeanLatency)
	}
}

func TestVectorLenValidation(t *testing.T) {
	cfg := flockConfig()
	cfg.VectorLen = -1
	if _, err := RunRound(cfg, 0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative veclen: error = %v, want ErrBadConfig", err)
	}
	cfg.VectorLen = MaxVectorLen + 1
	if _, err := RunRound(cfg, 0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("oversized veclen: error = %v, want ErrBadConfig", err)
	}
}

func TestMaxVectorLenMatchesSSS(t *testing.T) {
	// The HE bound must track the SSS protocol's frame-budget bound so both
	// sides of an HE-vs-SSS comparison accept exactly the same L range;
	// hepda deliberately does not import core at runtime, so this test is
	// what keeps the two constants from drifting apart.
	if MaxVectorLen != core.MaxVectorLen {
		t.Fatalf("hepda.MaxVectorLen = %d, core.MaxVectorLen = %d", MaxVectorLen, core.MaxVectorLen)
	}
}

func TestLatencyDominatedByCrypto(t *testing.T) {
	// The paper's premise: HE latency is computation-bound. Encryption +
	// decryption alone must dominate the radio time.
	res, err := RunRound(flockConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	cryptoFloor := DefaultCostModel2048().Encrypt + DefaultCostModel2048().Decrypt
	if res.MeanLatency < cryptoFloor {
		t.Errorf("latency %v below crypto floor %v", res.MeanLatency, cryptoFloor)
	}
	if res.MeanRadioOn >= res.MeanLatency/10 {
		t.Errorf("radio %v not small vs latency %v: HE should be compute-bound",
			res.MeanRadioOn, res.MeanLatency)
	}
}

func TestSinkPaysDecryption(t *testing.T) {
	cfg := flockConfig()
	res, err := RunRound(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.CPUBusy[cfg.Sink] <= res.CPUBusy[1] {
		t.Error("sink CPU not above a regular node's (decryption missing)")
	}
	for _, src := range cfg.Sources {
		if res.CPUBusy[src] < DefaultCostModel2048().Encrypt {
			t.Errorf("source %d CPU %v below one encryption", src, res.CPUBusy[src])
		}
	}
}

func TestModelKeyBitsScaling(t *testing.T) {
	small := flockConfig()
	small.ModelKeyBits = 1024
	resSmall, err := RunRound(small, 3)
	if err != nil {
		t.Fatal(err)
	}
	big := flockConfig()
	big.ModelKeyBits = 2048
	resBig, err := RunRound(big, 3)
	if err != nil {
		t.Fatal(err)
	}
	if resSmall.MeanLatency >= resBig.MeanLatency {
		t.Error("1024-bit round not faster than 2048-bit")
	}
	if resSmall.CiphertextBytes != 256 {
		t.Errorf("1024-bit ciphertext = %dB, want 256", resSmall.CiphertextBytes)
	}
}

func TestDeterministicPerTrial(t *testing.T) {
	a, err := RunRound(flockConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRound(flockConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Expected != b.Expected || a.MeanLatency != b.MeanLatency {
		t.Error("same trial diverged")
	}
	c, err := RunRound(flockConfig(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if a.Expected == c.Expected {
		t.Error("different trials produced identical readings")
	}
}

func TestConfigErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no sources", func(c *Config) { c.Sources = nil }},
		{"bad source", func(c *Config) { c.Sources = []int{99} }},
		{"bad sink", func(c *Config) { c.Sink = -2 }},
		{"tiny sim key", func(c *Config) { c.SimKeyBits = 64 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := flockConfig()
			tt.mutate(&cfg)
			if _, err := RunRound(cfg, 0); !errors.Is(err, ErrBadConfig) {
				t.Errorf("error = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestCustomCostModel(t *testing.T) {
	cfg := flockConfig()
	cfg.Cost = CostModel{
		Encrypt:   time.Millisecond,
		Decrypt:   time.Millisecond,
		Aggregate: time.Microsecond,
	}
	res, err := RunRound(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	// With a hardware PK accelerator (~ms), latency collapses to radio time.
	if res.MeanLatency > 30*time.Second {
		t.Errorf("accelerated latency %v unexpectedly large", res.MeanLatency)
	}
}
