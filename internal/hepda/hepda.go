// Package hepda implements the baseline the paper argues against:
// Homomorphic-Encryption-based Privacy-Preserving Data Aggregation. Every
// node encrypts its reading under the collector's Paillier public key,
// ciphertexts are aggregated in-network along a convergecast tree
// (multiplication of ciphertexts = addition of plaintexts, so intermediate
// nodes never see readings), the sink decrypts the aggregate, and a Glossy
// flood disseminates the result.
//
// The trade the paper's introduction describes is directly visible here:
// the radio is barely used (short unicast bursts, radios off otherwise) but
// the computation is brutal for a constrained node — one Paillier encryption
// is a full 2048-bit modular exponentiation modulo N², tens of seconds of
// Cortex-M4 time — and the 512-byte ciphertexts fragment into five 802.15.4
// frames per hop. The cost model keeps crypto wall-time honest while the
// actual arithmetic runs on (faster) simulation hardware with a smaller but
// real key.
//
// Privacy model differences vs SSS (documented, not hidden): HE-PPDA needs a
// key-holding collector that learns the aggregate (and must be trusted not
// to decrypt stray individual ciphertexts it overhears before aggregation),
// whereas the SSS protocols are collector-free and tolerate up to k
// colluding nodes information-theoretically.
package hepda

import (
	"errors"
	"fmt"
	"math/big"
	"time"

	"iotmpc/internal/collect"
	"iotmpc/internal/glossy"
	"iotmpc/internal/paillier"
	"iotmpc/internal/phy"
	"iotmpc/internal/sim"
	"iotmpc/internal/topology"
)

// Errors returned by the package.
var (
	// ErrBadConfig is returned for invalid configuration.
	ErrBadConfig = errors.New("hepda: invalid configuration")
)

// MaxVectorLen caps Config.VectorLen at the SSS protocol's frame-budget
// bound, so every L an HE-vs-SSS comparison can ask of one side is valid
// on the other. The HE result flood (8·L+4 B) fits a PSDU at this bound
// with room to spare. The value must equal core.MaxVectorLen — hepda does
// not import core, so TestMaxVectorLenMatchesSSS pins the two together.
const MaxVectorLen = (phy.MaxPSDU - 9 - 4) / 8

// CostModel holds the modeled on-node costs of Paillier operations for the
// security-parameter key (the simulation itself runs a smaller real key for
// speed; metrics use these figures).
type CostModel struct {
	// Encrypt is one encryption: r^N mod N² dominates (g=N+1 trick makes
	// g^m cheap).
	Encrypt time.Duration
	// Decrypt is one decryption (c^λ mod N², CRT-optimized).
	Decrypt time.Duration
	// Aggregate is one ciphertext-ciphertext multiplication mod N².
	Aggregate time.Duration
}

// DefaultCostModel2048 returns software-bignum figures for a 64 MHz
// Cortex-M4 (nRF52840) at the standard 2048-bit modulus: a 4096-bit modular
// exponentiation with 4096-bit exponent costs tens of seconds without a
// public-key accelerator — the "computation-intensive" premise of the paper.
func DefaultCostModel2048() CostModel {
	return CostModel{
		Encrypt:   12 * time.Second,
		Decrypt:   6 * time.Second, // CRT halves the exponentiation work
		Aggregate: 2 * time.Millisecond,
	}
}

// Config describes one HE-PPDA deployment.
type Config struct {
	// Topology is the node layout.
	Topology topology.Topology
	// PHY parameterizes the radio; zero value selects DefaultParams.
	PHY phy.Params
	// Backend builds the radio model over the topology; nil selects the
	// log-distance channel (phy.LogDistanceFactory).
	Backend phy.Factory
	// Sources lists contributing nodes.
	Sources []int
	// Sink is the key-holding collector (default node 0).
	Sink int
	// SimKeyBits is the real key size used by the simulation arithmetic
	// (default 512 — fast but functionally identical).
	SimKeyBits int
	// ModelKeyBits is the security parameter the metrics are charged for
	// (default 2048; sets ciphertext wire size and CPU costs).
	ModelKeyBits int
	// MaxRetries bounds per-frame convergecast retries (default 12).
	MaxRetries int
	// VectorLen is the per-source reading vector length L (0 selects 1).
	// Homomorphic addition works per ciphertext, so an L-sensor reading
	// costs L FULL Paillier encryptions, L ciphertexts on the air per hop,
	// and L decryptions at the sink — there is no one-MIC-per-vector
	// amortization to be had, which is exactly the asymmetry the batched
	// SSS comparison (core.Config.VectorLen) measures against.
	VectorLen int
	// ChannelSeed freezes the radio environment.
	ChannelSeed int64
	// Cost overrides the CPU cost model; zero value selects
	// DefaultCostModel2048 scaled to ModelKeyBits.
	Cost CostModel
}

func (c Config) normalized() (Config, error) {
	n := c.Topology.NumNodes()
	if n < 2 {
		return c, fmt.Errorf("%w: %d nodes", ErrBadConfig, n)
	}
	if len(c.Sources) == 0 {
		return c, fmt.Errorf("%w: no sources", ErrBadConfig)
	}
	for _, s := range c.Sources {
		if s < 0 || s >= n {
			return c, fmt.Errorf("%w: source %d", ErrBadConfig, s)
		}
	}
	if c.Sink < 0 || c.Sink >= n {
		return c, fmt.Errorf("%w: sink %d", ErrBadConfig, c.Sink)
	}
	if c.PHY == (phy.Params{}) {
		c.PHY = phy.DefaultParams()
	}
	if c.SimKeyBits == 0 {
		c.SimKeyBits = 512
	}
	if c.SimKeyBits < 128 {
		return c, fmt.Errorf("%w: sim key %d bits", ErrBadConfig, c.SimKeyBits)
	}
	if c.ModelKeyBits == 0 {
		c.ModelKeyBits = 2048
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 12
	}
	if c.VectorLen < 0 {
		return c, fmt.Errorf("%w: negative vector length %d", ErrBadConfig, c.VectorLen)
	}
	if c.VectorLen == 0 {
		c.VectorLen = 1
	}
	if c.VectorLen > MaxVectorLen {
		return c, fmt.Errorf("%w: vector length %d exceeds %d", ErrBadConfig, c.VectorLen, MaxVectorLen)
	}
	if c.Cost == (CostModel{}) {
		base := DefaultCostModel2048()
		// Modexp scales ~cubically in the modulus size.
		scale := func(d time.Duration) time.Duration {
			r := float64(c.ModelKeyBits) / 2048
			return time.Duration(float64(d) * r * r * r)
		}
		c.Cost = CostModel{
			Encrypt:   scale(base.Encrypt),
			Decrypt:   scale(base.Decrypt),
			Aggregate: scale(base.Aggregate),
		}
	}
	return c, nil
}

// RoundResult reports one HE-PPDA aggregation round.
type RoundResult struct {
	// Expected is the plaintext sum over delivered sources (lost
	// contributions are excluded by protocol design, visible in
	// DeliveryRate). Coordinate 0 for vector rounds; ExpectedVec has all.
	Expected uint64
	// ExpectedVec / AggregateVec are the per-coordinate expected and
	// decrypted sums (length VectorLen).
	ExpectedVec []uint64
	// Aggregate is the sink's decrypted result (coordinate 0).
	Aggregate uint64
	// AggregateVec is the sink's decrypted result for every coordinate.
	AggregateVec []uint64
	// VectorLen is the effective reading-vector length of the round.
	VectorLen int
	// Correct reports Aggregate == Expected on every coordinate.
	Correct bool
	// DeliveryRate is the fraction of sources whose ciphertext reached the
	// sink.
	DeliveryRate float64
	// Latency[i] is when node i learned the aggregate (-1 if the result
	// flood missed it).
	Latency     []time.Duration
	MeanLatency time.Duration
	// RadioOn[i] is per-node radio time; MeanRadioOn averages it.
	RadioOn     []time.Duration
	MeanRadioOn time.Duration
	// CPUBusy[i] is per-node modeled crypto time.
	CPUBusy []time.Duration
	// CiphertextBytes is the modeled on-air ciphertext size.
	CiphertextBytes int
}

// RunRound executes one aggregation round. Trials with the same
// (config, trial) are reproducible.
func RunRound(cfg Config, trial uint64) (*RoundResult, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	ch, err := phy.Build(cfg.Backend, cfg.PHY, cfg.Topology.Positions, cfg.ChannelSeed)
	if err != nil {
		return nil, fmt.Errorf("radio backend for topology %q: %w", cfg.Topology.Name, err)
	}
	n := ch.NumNodes()

	keyRNG := sim.NewRNG(cfg.ChannelSeed, 0xDEAD)
	sk, err := paillier.GenerateKey(cfg.SimKeyBits, keyRNG)
	if err != nil {
		return nil, fmt.Errorf("keygen: %w", err)
	}
	modelCipherBytes := 2 * cfg.ModelKeyBits / 8

	secretRNG := sim.NewRNG(cfg.ChannelSeed, trial*8+1)
	radioRNG := sim.NewRNG(cfg.ChannelSeed, trial*8+2)

	// Readings and encryption (all nodes encrypt in parallel; latency pays
	// the per-node L·Encrypt). A vector reading is L independent Paillier
	// ciphertexts — HE has no cheap way to pack coordinates the way one
	// CMAC covers a whole SSS share vector.
	vecLen := cfg.VectorLen
	readings := make(map[int][]uint64, len(cfg.Sources))
	ciphers := make(map[int][]*big.Int, len(cfg.Sources))
	cpu := make([]time.Duration, n)
	for _, src := range cfg.Sources {
		vs := make([]uint64, vecLen)
		cs := make([]*big.Int, vecLen)
		for k := 0; k < vecLen; k++ {
			v := secretRNG.Uint64() >> 24 // keep sums far below N
			vs[k] = v
			c, err := sk.Encrypt(new(big.Int).SetUint64(v), secretRNG)
			if err != nil {
				return nil, fmt.Errorf("encrypt at %d: %w", src, err)
			}
			cs[k] = c
		}
		readings[src] = vs
		ciphers[src] = cs
		cpu[src] += time.Duration(vecLen) * cfg.Cost.Encrypt
	}

	// Convergecast the ciphertexts with in-network aggregation; every hop
	// moves all L ciphertexts of the subtree's fold.
	tree, err := collect.BuildTree(ch, cfg.Sink, 0.5)
	if err != nil {
		return nil, err
	}
	ledger := sim.NewRadioLedger(n)
	engine := sim.NewEngine()
	colRes, err := collect.Run(collect.Config{
		Channel:      ch,
		Tree:         tree,
		MessageBytes: vecLen * modelCipherBytes,
		MaxRetries:   cfg.MaxRetries,
	}, radioRNG, ledger, engine)
	if err != nil {
		return nil, fmt.Errorf("convergecast: %w", err)
	}

	// Fold delivered ciphertexts per coordinate (the simulation folds at
	// the sink; the in-network folding has identical algebra and its
	// per-hop cost is charged to the forwarding nodes below).
	accs := make([]*big.Int, vecLen)
	for k := range accs {
		if accs[k], err = sk.Encrypt(big.NewInt(0), secretRNG); err != nil {
			return nil, err
		}
	}
	expected := make([]uint64, vecLen)
	delivered, total := 0, 0
	for _, src := range cfg.Sources {
		total++
		if src != cfg.Sink && !colRes.DeliveredToSink[src] {
			continue
		}
		delivered++
		for k := 0; k < vecLen; k++ {
			expected[k] += readings[src][k]
			if accs[k], err = sk.Add(accs[k], ciphers[src][k]); err != nil {
				return nil, err
			}
		}
	}
	// Charge the per-hop aggregation multiplies to every forwarding node.
	for node := 0; node < n; node++ {
		if node != cfg.Sink && colRes.LinkOK[node] {
			cpu[node] += time.Duration(vecLen) * cfg.Cost.Aggregate
		}
	}

	aggregate := make([]uint64, vecLen)
	for k := range accs {
		plain, err := sk.Decrypt(accs[k])
		if err != nil {
			return nil, fmt.Errorf("decrypt: %w", err)
		}
		aggregate[k] = plain.Uint64()
	}
	cpu[cfg.Sink] += time.Duration(vecLen) * cfg.Cost.Decrypt

	// Result dissemination: Glossy flood of the L 8-byte aggregates.
	flood, err := glossy.Run(glossy.Config{
		Channel:      ch,
		Initiator:    cfg.Sink,
		NTX:          6,
		PayloadBytes: 8*vecLen + 4,
	}, radioRNG, ledger, engine)
	if err != nil {
		return nil, fmt.Errorf("result flood: %w", err)
	}

	res := &RoundResult{
		Expected:        expected[0],
		ExpectedVec:     expected,
		Aggregate:       aggregate[0],
		AggregateVec:    aggregate,
		VectorLen:       vecLen,
		DeliveryRate:    float64(delivered) / float64(total),
		Latency:         make([]time.Duration, n),
		RadioOn:         make([]time.Duration, n),
		CPUBusy:         cpu,
		CiphertextBytes: modelCipherBytes,
	}
	res.Correct = true
	for k := range aggregate {
		if aggregate[k] != expected[k] {
			res.Correct = false
			break
		}
	}

	preFlood := time.Duration(vecLen)*cfg.Cost.Encrypt + colRes.Duration +
		time.Duration(vecLen)*cfg.Cost.Decrypt
	var latSum time.Duration
	latCount := 0
	var onSum time.Duration
	for node := 0; node < n; node++ {
		res.RadioOn[node] = ledger.OnTime(node)
		onSum += res.RadioOn[node]
		if !flood.Received[node] {
			res.Latency[node] = -1
			continue
		}
		res.Latency[node] = preFlood + flood.Latency[node]
		latSum += res.Latency[node]
		latCount++
	}
	if latCount > 0 {
		res.MeanLatency = latSum / time.Duration(latCount)
	}
	res.MeanRadioOn = onSum / time.Duration(n)
	return res, nil
}
