// Package collect implements convergecast: tree-based, unicast,
// ACK-and-retransmit data collection toward a sink — the classic transport
// that HE-based PPDA schemes ride on (each node forwards one
// constant-size homomorphic ciphertext to its parent, aggregating in the
// network). It is the communication counterpart of internal/paillier in the
// repository's HE baseline, and the architectural foil to the CT protocols:
// unicast trees keep radios off most of the time but pay per-hop
// serialization, retries, and routing state.
package collect

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"iotmpc/internal/field"
	"iotmpc/internal/phy"
	"iotmpc/internal/sim"
)

// Errors returned by the package.
var (
	// ErrBadConfig is returned for invalid configuration.
	ErrBadConfig = errors.New("collect: invalid configuration")
	// ErrDisconnected is returned when some node has no route to the sink.
	ErrDisconnected = errors.New("collect: node unreachable from sink")
)

// Tree is a routing tree rooted at the sink.
type Tree struct {
	// Sink is the root node.
	Sink int
	// Parent[i] is node i's next hop toward the sink (-1 for the sink).
	Parent []int
	// Depth[i] is the hop distance to the sink.
	Depth []int
}

// BuildTree constructs a shortest-path tree over links with PRR >= threshold,
// breaking ties by link quality (each node picks the best-PRR parent among
// minimal-depth neighbors).
func BuildTree(ch phy.Radio, sink int, threshold float64) (*Tree, error) {
	n := ch.NumNodes()
	if sink < 0 || sink >= n {
		return nil, fmt.Errorf("%w: sink %d", ErrBadConfig, sink)
	}
	// The whole tree derives from link statistics, so it runs on the flat
	// link-table snapshot: one O(n²) scan of precomputed PRRs instead of
	// per-pair interface queries.
	table := ch.LinkTable()
	dist := table.HopDistances(sink, threshold)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	for node := 0; node < n; node++ {
		if node == sink {
			continue
		}
		if dist[node] < 0 {
			return nil, fmt.Errorf("%w: node %d", ErrDisconnected, node)
		}
		bestPRR := -1.0
		for cand := 0; cand < n; cand++ {
			if cand == node || dist[cand] != dist[node]-1 {
				continue
			}
			if prr := table.PRR(node, cand); prr >= threshold && prr > bestPRR {
				bestPRR = prr
				parent[node] = cand
			}
		}
		if parent[node] < 0 {
			return nil, fmt.Errorf("%w: node %d has no parent", ErrDisconnected, node)
		}
	}
	return &Tree{Sink: sink, Parent: parent, Depth: dist}, nil
}

// Config parameterizes one convergecast round.
type Config struct {
	// Channel is the radio backend (any phy.Radio implementation).
	Channel phy.Radio
	// Tree is the routing tree (BuildTree).
	Tree *Tree
	// MessageBytes is the size of each node's upward message (e.g. one
	// Paillier ciphertext); messages larger than a frame are fragmented.
	MessageBytes int
	// MaxRetries bounds per-frame retransmissions (default 8).
	MaxRetries int
	// Participants marks nodes that send; nil means every non-sink node.
	// Non-participants still relay their children's aggregates.
	Participants []bool
}

// frameCapacity is the usable payload per 802.15.4 frame after the
// fragmentation/routing header.
const frameHeaderBytes = 11

func (c Config) validate() error {
	switch {
	case c.Channel == nil:
		return fmt.Errorf("%w: nil channel", ErrBadConfig)
	case c.Tree == nil:
		return fmt.Errorf("%w: nil tree", ErrBadConfig)
	case len(c.Tree.Parent) != c.Channel.NumNodes():
		return fmt.Errorf("%w: tree size mismatch", ErrBadConfig)
	case c.MessageBytes <= 0:
		return fmt.Errorf("%w: message bytes %d", ErrBadConfig, c.MessageBytes)
	case c.MaxRetries < 0:
		return fmt.Errorf("%w: retries %d", ErrBadConfig, c.MaxRetries)
	case c.Participants != nil && len(c.Participants) != c.Channel.NumNodes():
		return fmt.Errorf("%w: participants size mismatch", ErrBadConfig)
	}
	return nil
}

// Result reports one convergecast round.
type Result struct {
	// LinkOK[i] reports whether node i's upward transfer fully succeeded.
	LinkOK []bool
	// DeliveredToSink[i] reports whether node i's contribution reached the
	// sink (its own link and every ancestor link succeeded).
	DeliveredToSink []bool
	// FramesSent counts all frame transmissions including retries.
	FramesSent int
	// Duration is the TDMA round length.
	Duration time.Duration
}

// DeliveryRate is the fraction of non-sink nodes whose contribution reached
// the sink.
func (r *Result) DeliveryRate() float64 {
	n := len(r.DeliveredToSink)
	if n <= 1 {
		return 1
	}
	ok := 0
	for i, d := range r.DeliveredToSink {
		if d {
			ok++
		}
		_ = i
	}
	return float64(ok-1) / float64(n-1) // sink always "delivers" to itself
}

// Run executes one convergecast round: nodes transmit deepest-first (so
// aggregates fold upward within a single round); each message is fragmented
// into frames, each frame retried until ACKed or the budget runs out.
func Run(cfg Config, rng *rand.Rand, ledger *sim.RadioLedger, engine *sim.Engine) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ch := cfg.Channel
	n := ch.NumNodes()
	tree := cfg.Tree
	maxRetries := cfg.MaxRetries
	if maxRetries == 0 {
		maxRetries = 8
	}

	frameCap := phy.MaxPSDU - frameHeaderBytes
	frames := (cfg.MessageBytes + frameCap - 1) / frameCap
	lastFrame := cfg.MessageBytes - (frames-1)*frameCap

	params := ch.Params()
	fullSlot, err := params.SlotDuration(phy.MaxPSDU)
	if err != nil {
		return nil, err
	}
	lastSlot, err := params.SlotDuration(lastFrame + frameHeaderBytes)
	if err != nil {
		return nil, err
	}
	ackSlot, err := params.SlotDuration(3) // short link-layer ACK
	if err != nil {
		return nil, err
	}

	res := &Result{
		LinkOK:          make([]bool, n),
		DeliveredToSink: make([]bool, n),
	}
	res.LinkOK[tree.Sink] = true

	// Deepest-first order.
	order := make([]int, 0, n)
	maxDepth := 0
	for _, d := range tree.Depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	for depth := maxDepth; depth >= 1; depth-- {
		for node := 0; node < n; node++ {
			if tree.Depth[node] == depth {
				order = append(order, node)
			}
		}
	}

	var elapsed time.Duration
	for _, node := range order {
		parent := tree.Parent[node]
		allOK := true
		for f := 0; f < frames; f++ {
			slot := fullSlot
			if f == frames-1 {
				slot = lastSlot
			}
			frameOK := false
			for attempt := 0; attempt <= maxRetries; attempt++ {
				res.FramesSent++
				elapsed += slot + ackSlot
				if ledger != nil {
					// Sender: tx frame, rx ack. Parent: rx frame, tx ack.
					if err := ledger.AddBulk(node, slot, ackSlot); err != nil {
						return nil, err
					}
					if err := ledger.AddBulk(parent, ackSlot, slot); err != nil {
						return nil, err
					}
				}
				ok, err := ch.ReceiveSingle(node, parent, rng)
				if err != nil {
					return nil, err
				}
				// The ACK travels over the same link; fold its loss in.
				if ok {
					ackOK, err := ch.ReceiveSingle(parent, node, rng)
					if err != nil {
						return nil, err
					}
					// A lost ACK causes a redundant retry but the data is
					// through; treat the frame as delivered.
					frameOK = true
					if ackOK {
						break
					}
					continue
				}
			}
			if !frameOK {
				allOK = false
				break
			}
		}
		res.LinkOK[node] = allOK
	}

	// Contribution delivery: every ancestor link must have succeeded.
	for node := 0; node < n; node++ {
		delivered := true
		for cur := node; cur != tree.Sink; cur = tree.Parent[cur] {
			if !res.LinkOK[cur] {
				delivered = false
				break
			}
		}
		res.DeliveredToSink[node] = delivered
	}
	res.Duration = elapsed
	if engine != nil {
		if err := engine.Advance(elapsed); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// AggregateReadings computes the sink's in-network aggregate for a round in
// which every node reports a whole vector of readings (multi-sensor samples
// or a window of values): the element-wise field sum of the vectors of all
// nodes whose contribution reached the sink. Nodes that failed delivery
// contribute nothing, mirroring how a convergecast aggregate silently drops
// lost subtrees. readings[i] is node i's vector; all vectors must share one
// width. The fold runs through the batched field layer (field.AccumulateVec),
// so the per-node cost is a single fused pass regardless of vector width.
func AggregateReadings(res *Result, readings [][]field.Element) ([]field.Element, error) {
	if res == nil {
		return nil, fmt.Errorf("%w: nil result", ErrBadConfig)
	}
	if len(readings) != len(res.DeliveredToSink) {
		return nil, fmt.Errorf("%w: %d reading vectors for %d nodes",
			ErrBadConfig, len(readings), len(res.DeliveredToSink))
	}
	width := -1
	for i, r := range readings {
		if width < 0 {
			width = len(r)
		} else if len(r) != width {
			return nil, fmt.Errorf("%w: reading vector %d has width %d, expected %d",
				ErrBadConfig, i, len(r), width)
		}
	}
	if width < 0 {
		width = 0
	}
	sum := make([]field.Element, width)
	for i, delivered := range res.DeliveredToSink {
		if !delivered {
			continue
		}
		if err := field.AccumulateVec(sum, readings[i]); err != nil {
			return nil, err
		}
	}
	return sum, nil
}
