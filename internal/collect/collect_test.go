package collect

import (
	"errors"
	"math/rand"
	"testing"

	"iotmpc/internal/field"
	"iotmpc/internal/phy"
	"iotmpc/internal/sim"
	"iotmpc/internal/topology"
)

func flockChannel(t *testing.T) *phy.Channel {
	t.Helper()
	ch, err := topology.FlockLab().Channel(phy.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestBuildTreeProperties(t *testing.T) {
	ch := flockChannel(t)
	tree, err := BuildTree(ch, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Parent[0] != -1 || tree.Depth[0] != 0 {
		t.Error("sink must be the root")
	}
	for node := 1; node < ch.NumNodes(); node++ {
		p := tree.Parent[node]
		if p < 0 {
			t.Fatalf("node %d has no parent", node)
		}
		if tree.Depth[p] != tree.Depth[node]-1 {
			t.Errorf("node %d (depth %d) has parent at depth %d",
				node, tree.Depth[node], tree.Depth[p])
		}
	}
}

func TestBuildTreeErrors(t *testing.T) {
	ch := flockChannel(t)
	if _, err := BuildTree(ch, 99, 0.5); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad sink: %v, want ErrBadConfig", err)
	}
	// Impossibly high threshold disconnects everything.
	if _, err := BuildTree(ch, 0, 0.99999); !errors.Is(err, ErrDisconnected) {
		t.Errorf("threshold 1: %v, want ErrDisconnected", err)
	}
}

func TestConvergecastDeliversWithRetries(t *testing.T) {
	ch := flockChannel(t)
	tree, err := BuildTree(ch, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	res, err := Run(Config{
		Channel:      ch,
		Tree:         tree,
		MessageBytes: 512, // a 2048-bit Paillier ciphertext
		MaxRetries:   12,
	}, rng, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rate := res.DeliveryRate(); rate < 0.95 {
		t.Errorf("delivery rate %.3f, want >= 0.95 with 12 retries", rate)
	}
	if res.Duration <= 0 || res.FramesSent == 0 {
		t.Errorf("degenerate result: %+v", res)
	}
}

func TestFragmentationCosts(t *testing.T) {
	ch := flockChannel(t)
	tree, err := BuildTree(ch, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	frames := func(messageBytes int) int {
		rng := rand.New(rand.NewSource(2))
		res, err := Run(Config{
			Channel:      ch,
			Tree:         tree,
			MessageBytes: messageBytes,
			MaxRetries:   12,
		}, rng, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.FramesSent
	}
	small := frames(8)   // plaintext-sized
	large := frames(512) // HE ciphertext
	if large < small*3 {
		t.Errorf("512B messages sent %d frames vs %d for 8B; fragmentation not costed", large, small)
	}
}

func TestAncestorFailureDropsSubtree(t *testing.T) {
	// Build a 3-node line: 0 (sink) - 1 - 2. If link 1->0 fails, node 2's
	// contribution must be reported undelivered even if 2->1 succeeded.
	p := phy.DefaultParams()
	p.ShadowingSigmaDB = 0
	p.FadingSigmaDB = 0
	// Node 1 is barely in range of 0 — force failures by distance.
	ch, err := phy.NewChannel(p, []phy.Position{{X: 0}, {X: 95}, {X: 120}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	tree := &Tree{Sink: 0, Parent: []int{-1, 0, 1}, Depth: []int{0, 1, 2}}
	rng := rand.New(rand.NewSource(3))
	res, err := Run(Config{
		Channel:      ch,
		Tree:         tree,
		MessageBytes: 64,
		MaxRetries:   1,
	}, rng, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.LinkOK[1] && res.DeliveredToSink[2] {
		t.Error("node 2 delivered although its ancestor's link failed")
	}
}

func TestRadioAccountingSparse(t *testing.T) {
	// The defining property of unicast trees: most nodes' radios are OFF
	// most of the time, unlike CT where everyone listens for the full round.
	ch := flockChannel(t)
	tree, err := BuildTree(ch, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ledger := sim.NewRadioLedger(ch.NumNodes())
	engine := sim.NewEngine()
	rng := rand.New(rand.NewSource(4))
	res, err := Run(Config{
		Channel:      ch,
		Tree:         tree,
		MessageBytes: 512,
		MaxRetries:   12,
	}, rng, ledger, engine)
	if err != nil {
		t.Fatal(err)
	}
	if engine.Now() != res.Duration {
		t.Errorf("engine %v != duration %v", engine.Now(), res.Duration)
	}
	// A leaf's on-time must be far below the round duration.
	leaf := -1
	isParent := make([]bool, ch.NumNodes())
	for _, p := range tree.Parent {
		if p >= 0 {
			isParent[p] = true
		}
	}
	for node := 1; node < ch.NumNodes(); node++ {
		if !isParent[node] {
			leaf = node
			break
		}
	}
	if leaf < 0 {
		t.Skip("no leaf found")
	}
	if on := ledger.OnTime(leaf); on >= res.Duration/4 {
		t.Errorf("leaf %d on-time %v not sparse vs duration %v", leaf, on, res.Duration)
	}
}

func TestConfigValidation(t *testing.T) {
	ch := flockChannel(t)
	tree, err := BuildTree(ch, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	tests := []struct {
		name string
		cfg  Config
	}{
		{"nil channel", Config{Tree: tree, MessageBytes: 8}},
		{"nil tree", Config{Channel: ch, MessageBytes: 8}},
		{"zero message", Config{Channel: ch, Tree: tree}},
		{"negative retries", Config{Channel: ch, Tree: tree, MessageBytes: 8, MaxRetries: -1}},
		{"participants mismatch", Config{Channel: ch, Tree: tree, MessageBytes: 8, Participants: []bool{true}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Run(tt.cfg, rng, nil, nil); !errors.Is(err, ErrBadConfig) {
				t.Errorf("error = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestDeterministic(t *testing.T) {
	ch := flockChannel(t)
	tree, err := BuildTree(ch, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Result {
		rng := rand.New(rand.NewSource(77))
		res, err := Run(Config{Channel: ch, Tree: tree, MessageBytes: 128, MaxRetries: 6}, rng, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.FramesSent != b.FramesSent || a.Duration != b.Duration {
		t.Error("same seed diverged")
	}
}

func TestAggregateReadings(t *testing.T) {
	ch := flockChannel(t)
	tree, err := BuildTree(ch, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	n := ch.NumNodes()
	cfg := Config{Channel: ch, Tree: tree, MessageBytes: 32}
	res, err := Run(cfg, rand.New(rand.NewSource(3)), nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	const width = 4
	readings := make([][]field.Element, n)
	for i := range readings {
		readings[i] = make([]field.Element, width)
		for k := range readings[i] {
			readings[i][k] = field.New(uint64(i*width + k + 1))
		}
	}
	got, err := AggregateReadings(res, readings)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]field.Element, width)
	for i, delivered := range res.DeliveredToSink {
		if !delivered {
			continue
		}
		for k := range want {
			want[k] = want[k].Add(readings[i][k])
		}
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("aggregate[%d] = %v, want %v", k, got[k], want[k])
		}
	}
}

func TestAggregateReadingsErrors(t *testing.T) {
	if _, err := AggregateReadings(nil, nil); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nil result: %v", err)
	}
	res := &Result{DeliveredToSink: []bool{true, true}}
	if _, err := AggregateReadings(res, make([][]field.Element, 3)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("size mismatch: %v", err)
	}
	ragged := [][]field.Element{{field.One}, {field.One, field.One}}
	if _, err := AggregateReadings(res, ragged); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("ragged widths: %v", err)
	}
	// Zero-width vectors are a valid degenerate case.
	empty := [][]field.Element{{}, {}}
	sum, err := AggregateReadings(res, empty)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum) != 0 {
		t.Fatalf("zero-width aggregate = %v", sum)
	}
}
