package minicast

import (
	"math/rand"
	"testing"

	"iotmpc/internal/phy"
	"iotmpc/internal/topology"
)

func benchChannel(b *testing.B, top topology.Topology) *phy.Channel {
	b.Helper()
	ch, err := top.Channel(phy.DefaultParams(), 1)
	if err != nil {
		b.Fatal(err)
	}
	return ch
}

// BenchmarkAllToAllFlockLab measures one all-to-all round on the 26-node
// model at S4's NTX.
func BenchmarkAllToAllFlockLab(b *testing.B) {
	ch := benchChannel(b, topology.FlockLab())
	cfg := Config{
		Channel:      ch,
		Initiator:    0,
		NTX:          6,
		Items:        allToAllItems(ch.NumNodes()),
		PayloadBytes: 20,
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, rng, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSharingChainDCube measures the worst-case chain of the paper: the
// naive S3 sharing phase on D-Cube (45×44 sub-slots at full-coverage NTX).
func BenchmarkSharingChainDCube(b *testing.B) {
	ch := benchChannel(b, topology.DCube())
	n := ch.NumNodes()
	items := make([]Item, 0, n*(n-1))
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src != dst {
				items = append(items, Item{Owner: src, Dst: dst})
			}
		}
	}
	cfg := Config{
		Channel:      ch,
		Initiator:    0,
		NTX:          16,
		Items:        items,
		PayloadBytes: 21,
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, rng, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}
