package minicast

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"iotmpc/internal/phy"
	"iotmpc/internal/sim"
	"iotmpc/internal/topology"
)

func flockChannel(t *testing.T) *phy.Channel {
	t.Helper()
	ch, err := topology.FlockLab().Channel(phy.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

// allToAllItems builds one broadcast item per node.
func allToAllItems(n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Owner: i, Dst: -1}
	}
	return items
}

func TestAllToAllFullCoverageAtHighNTX(t *testing.T) {
	ch := flockChannel(t)
	cfg := Config{
		Channel:      ch,
		Initiator:    0,
		NTX:          12,
		Items:        allToAllItems(ch.NumNodes()),
		PayloadBytes: 20,
	}
	rng := rand.New(rand.NewSource(1))
	full := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		res, err := Run(cfg, rng, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.MeanCoverage() == 1 {
			full++
		}
	}
	if full < trials*9/10 {
		t.Errorf("full all-to-all coverage in %d/%d trials at NTX=12", full, trials)
	}
}

func TestCoverageNonlinearInNTX(t *testing.T) {
	// The paper's key observation: a short increase in NTX makes a large
	// amount of data available, while full coverage takes comparatively
	// higher NTX. Verify coverage(NTX) is increasing and concave-ish: the
	// gain from the first half of the NTX range exceeds the gain from the
	// second half.
	ch := flockChannel(t)
	coverage := func(ntx int) float64 {
		rng := rand.New(rand.NewSource(7))
		total := 0.0
		const trials = 10
		for i := 0; i < trials; i++ {
			res, err := Run(Config{
				Channel:      ch,
				Initiator:    0,
				NTX:          ntx,
				Items:        allToAllItems(ch.NumNodes()),
				PayloadBytes: 20,
			}, rng, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			total += res.MeanCoverage()
		}
		return total / trials
	}
	c2, c6, c12 := coverage(2), coverage(6), coverage(12)
	if !(c2 < c6 && c6 <= c12) {
		t.Fatalf("coverage not increasing: c2=%.3f c6=%.3f c12=%.3f", c2, c6, c12)
	}
	if c6 < 0.75 {
		t.Errorf("NTX=6 coverage = %.3f; paper expects most data available at low NTX", c6)
	}
	gainFirst := c6 - c2
	gainSecond := c12 - c6
	if gainSecond >= gainFirst {
		t.Errorf("coverage gain not diminishing: first=%.3f second=%.3f", gainFirst, gainSecond)
	}
}

func TestNearItemsArriveBeforeFarItems(t *testing.T) {
	// On a line with initiator 0, node 5's chain data must reach node 1
	// later than node 2's data reaches node 1 (perimeter effect).
	p := phy.DefaultParams()
	p.ShadowingSigmaDB = 0
	p.FadingSigmaDB = 1
	top, err := topology.Line(6, 35)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := top.Channel(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	var sumNear, sumFar float64
	const trials = 50
	for i := 0; i < trials; i++ {
		res, err := Run(Config{
			Channel:      ch,
			Initiator:    0,
			NTX:          8,
			Items:        allToAllItems(6),
			PayloadBytes: 20,
		}, rng, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.RxAt[1][2] < 0 || res.RxAt[1][5] < 0 {
			t.Fatalf("trial %d: item not delivered on line at NTX=8", i)
		}
		sumNear += res.RxAt[1][2].Seconds()
		sumFar += res.RxAt[1][5].Seconds()
	}
	if sumFar <= sumNear {
		t.Errorf("far item mean arrival %.4fs <= near item %.4fs", sumFar/trials, sumNear/trials)
	}
}

func TestDurationFormula(t *testing.T) {
	ch := flockChannel(t)
	items := allToAllItems(5)
	rng := rand.New(rand.NewSource(3))
	res, err := Run(Config{
		Channel:      ch,
		Initiator:    0,
		NTX:          3,
		Items:        items,
		PayloadBytes: 20,
	}, rng, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	slot, err := ch.Params().SlotDuration(20)
	if err != nil {
		t.Fatal(err)
	}
	wantPhase := time.Duration(len(items)) * slot
	if res.PhaseLen != wantPhase {
		t.Errorf("PhaseLen = %v, want %v", res.PhaseLen, wantPhase)
	}
	want := 3 * time.Duration(res.Levels) * wantPhase
	if res.Duration != want {
		t.Errorf("Duration = %v, want %v", res.Duration, want)
	}
}

func TestListenFilterBlocksReception(t *testing.T) {
	ch := flockChannel(t)
	n := ch.NumNodes()
	// Node 7 refuses to listen to anything: it must end with only its own item.
	cfg := Config{
		Channel:      ch,
		Initiator:    0,
		NTX:          10,
		Items:        allToAllItems(n),
		PayloadBytes: 20,
		ListenFilter: func(node int, it Item) bool { return node != 7 },
	}
	rng := rand.New(rand.NewSource(4))
	res, err := Run(cfg, rng, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if i == 7 {
			if !res.Have[7][7] {
				t.Error("node 7 lost its own item")
			}
			continue
		}
		if res.Have[7][i] {
			t.Errorf("filtered node received item %d", i)
		}
	}
}

func TestStopListenFreezesAndRecordsTime(t *testing.T) {
	ch := flockChannel(t)
	n := ch.NumNodes()
	// Node 9 stops after holding 5 items.
	cfg := Config{
		Channel:      ch,
		Initiator:    0,
		NTX:          12,
		Items:        allToAllItems(n),
		PayloadBytes: 20,
		StopListen: func(node int, have []bool) bool {
			if node != 9 {
				return false
			}
			count := 0
			for _, h := range have {
				if h {
					count++
				}
			}
			return count >= 5
		},
	}
	rng := rand.New(rand.NewSource(5))
	res, err := Run(cfg, rng, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.StoppedAt[9] < 0 {
		t.Fatal("node 9 never stopped")
	}
	held := 0
	for _, h := range res.Have[9] {
		if h {
			held++
		}
	}
	// It can only have gained items up to the phase boundary after the 5th.
	if held >= n {
		t.Errorf("stopped node still collected everything (%d items)", held)
	}
	for i := 0; i < n; i++ {
		if i != 9 && res.StoppedAt[i] >= 0 {
			t.Errorf("node %d stopped unexpectedly", i)
		}
	}
}

func TestFailedNodesNeitherSendNorReceive(t *testing.T) {
	ch := flockChannel(t)
	n := ch.NumNodes()
	failed := make([]bool, n)
	failed[3] = true
	cfg := Config{
		Channel:      ch,
		Initiator:    0,
		NTX:          12,
		Items:        allToAllItems(n),
		PayloadBytes: 20,
		Failed:       failed,
	}
	rng := rand.New(rand.NewSource(6))
	res, err := Run(cfg, rng, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Failed node received nothing beyond its own item.
	for i := 0; i < n; i++ {
		if i != 3 && res.Have[3][i] {
			t.Errorf("failed node holds item %d", i)
		}
	}
	// Its item never spread.
	for node := 0; node < n; node++ {
		if node != 3 && res.Have[node][3] {
			t.Errorf("node %d holds failed node's item", node)
		}
	}
}

func TestRadioAccounting(t *testing.T) {
	ch := flockChannel(t)
	n := ch.NumNodes()
	ledger := sim.NewRadioLedger(n)
	engine := sim.NewEngine()
	rng := rand.New(rand.NewSource(7))
	res, err := Run(Config{
		Channel:      ch,
		Initiator:    0,
		NTX:          4,
		Items:        allToAllItems(n),
		PayloadBytes: 20,
	}, rng, ledger, engine)
	if err != nil {
		t.Fatal(err)
	}
	if engine.Now() != res.Duration {
		t.Errorf("engine clock %v != duration %v", engine.Now(), res.Duration)
	}
	for i := 0; i < n; i++ {
		on := ledger.OnTime(i)
		if on == 0 {
			t.Errorf("node %d radio never on", i)
		}
		if on > res.Duration {
			t.Errorf("node %d on-time %v exceeds duration %v", i, on, res.Duration)
		}
		if ledger.TxTime(i) == 0 {
			t.Errorf("node %d never transmitted (all nodes own an item)", i)
		}
	}
}

func TestDutyCycledListenerSpendsLessRadio(t *testing.T) {
	ch := flockChannel(t)
	n := ch.NumNodes()
	run := func(filter func(int, Item) bool) time.Duration {
		ledger := sim.NewRadioLedger(n)
		rng := rand.New(rand.NewSource(8))
		_, err := Run(Config{
			Channel:      ch,
			Initiator:    0,
			NTX:          6,
			Items:        allToAllItems(n),
			PayloadBytes: 20,
			ListenFilter: filter,
		}, rng, ledger, nil)
		if err != nil {
			t.Fatal(err)
		}
		return ledger.OnTime(11)
	}
	full := run(nil)
	half := run(func(node int, it Item) bool {
		if node != 11 {
			return true
		}
		return it.Owner%2 == 0 // node 11 listens to half the sub-slots
	})
	if half >= full {
		t.Errorf("duty-cycled on-time %v >= full %v", half, full)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	ch := flockChannel(t)
	run := func() *Result {
		rng := rand.New(rand.NewSource(99))
		res, err := Run(Config{
			Channel:      ch,
			Initiator:    0,
			NTX:          5,
			Items:        allToAllItems(ch.NumNodes()),
			PayloadBytes: 20,
		}, rng, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for node := range a.Have {
		for item := range a.Have[node] {
			if a.Have[node][item] != b.Have[node][item] ||
				a.RxAt[node][item] != b.RxAt[node][item] {
				t.Fatalf("same seed diverged at node %d item %d", node, item)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	ch := flockChannel(t)
	items := allToAllItems(ch.NumNodes())
	rng := rand.New(rand.NewSource(1))
	tests := []struct {
		name string
		cfg  Config
	}{
		{"nil channel", Config{NTX: 1, Items: items}},
		{"bad initiator", Config{Channel: ch, Initiator: 99, NTX: 1, Items: items}},
		{"zero ntx", Config{Channel: ch, NTX: 0, Items: items}},
		{"empty chain", Config{Channel: ch, NTX: 1}},
		{"payload too big", Config{Channel: ch, NTX: 1, Items: items, PayloadBytes: 200}},
		{"bad owner", Config{Channel: ch, NTX: 1, Items: []Item{{Owner: -1}}}},
		{"bad dst", Config{Channel: ch, NTX: 1, Items: []Item{{Owner: 0, Dst: 99}}}},
		{"failed size mismatch", Config{Channel: ch, NTX: 1, Items: items, Failed: []bool{true}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Run(tt.cfg, rng, nil, nil); !errors.Is(err, ErrBadConfig) {
				t.Errorf("error = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestOwnersHoldOwnItemsAtTimeZero(t *testing.T) {
	ch := flockChannel(t)
	rng := rand.New(rand.NewSource(11))
	res, err := Run(Config{
		Channel:      ch,
		Initiator:    0,
		NTX:          1,
		Items:        allToAllItems(ch.NumNodes()),
		PayloadBytes: 20,
	}, rng, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Have {
		if !res.Have[i][i] || res.RxAt[i][i] != 0 {
			t.Errorf("node %d does not hold its own item at t=0", i)
		}
	}
}

func TestMultiItemPerOwnerChain(t *testing.T) {
	// Sharing-phase style chain: node 2 sends distinct items to nodes 0..3.
	ch := flockChannel(t)
	items := []Item{
		{Owner: 2, Dst: 0},
		{Owner: 2, Dst: 1},
		{Owner: 2, Dst: 3},
		{Owner: 2, Dst: 4},
	}
	rng := rand.New(rand.NewSource(12))
	res, err := Run(Config{
		Channel:      ch,
		Initiator:    0,
		NTX:          10,
		Items:        items,
		PayloadBytes: 25,
	}, rng, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range items {
		if !res.Have[items[i].Dst][i] {
			t.Errorf("destination %d missing its item %d", items[i].Dst, i)
		}
	}
}
