package minicast

import (
	"fmt"
	"math/rand"
	"time"

	"iotmpc/internal/phy"
	"iotmpc/internal/sim"
)

// LaneResult is the bit-sliced form of Result: possession is a lane mask
// per (node, item) instead of one bool matrix per trial. The schedule
// fields (Waves, Levels, ChainLen, durations) are lane-independent — the
// TDMA schedule is fixed by the topology, never by reception randomness.
type LaneResult struct {
	// HaveMask[node*ChainLen+item] is the lane mask in which the node
	// holds the item at round end.
	HaveMask []uint64
	// Waves, Levels and ChainLen describe the executed schedule.
	Waves    int
	Levels   int
	ChainLen int
	// SlotLen is the per-sub-slot duration, PhaseLen = ChainLen × SlotLen,
	// Duration = Waves × Levels × PhaseLen.
	SlotLen  time.Duration
	PhaseLen time.Duration
	Duration time.Duration
}

// Have returns the lane mask in which node holds item.
func (r *LaneResult) Have(node, item int) uint64 {
	return r.HaveMask[node*r.ChainLen+item]
}

// RunLanes executes up to 64 independent MiniCast rounds of the same
// configuration at once, one per bit lane, with possession and the
// wave-start relay snapshot held as uint64 lane masks. rngs[l] is lane l's
// private randomness stream; the contract is per-lane exactness: lane l of
// the returned masks matches Run(cfg, rngs[l], ...) bit for bit, with
// identical RNG consumption per lane, so any partition of a trial batch
// into lane groups is deterministic. ledgers (optional, per lane; nil
// entries skip crediting) receive the same per-phase radio credits the
// scalar path books.
//
// StopListen is not supported (it would make the per-phase draw schedule
// lane-dependent in a way only the reconstruction phase uses; core runs
// that phase scalar per lane) and ListenFilter must be pure — it is
// evaluated once per (node, item) instead of once per phase. Engines are
// not advanced here: Duration is deterministic, callers advance per-lane
// engines themselves. Buffers are arena-borrowed; the result is valid
// until the caller's next arena Reset.
func RunLanes(cfg Config, lanes int, rngs []*rand.Rand, ledgers []*sim.RadioLedger,
	a *sim.Arena) (*LaneResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.StopListen != nil {
		return nil, fmt.Errorf("%w: StopListen is unsupported in lane execution", ErrBadConfig)
	}
	if lanes < 1 || lanes > phy.MaxLanes {
		return nil, fmt.Errorf("%w: %d lanes (want 1..%d)", ErrBadConfig, lanes, phy.MaxLanes)
	}
	if len(rngs) < lanes {
		return nil, fmt.Errorf("%w: %d rngs for %d lanes", ErrBadConfig, len(rngs), lanes)
	}
	if ledgers != nil && len(ledgers) < lanes {
		return nil, fmt.Errorf("%w: %d ledgers for %d lanes", ErrBadConfig, len(ledgers), lanes)
	}
	ch := cfg.Channel
	n := ch.NumNodes()
	cl := len(cfg.Items)
	params := ch.Params()
	slotLen, err := params.SlotDuration(cfg.PayloadBytes)
	if err != nil {
		return nil, err
	}
	burstProb := params.InterferenceBurstProb
	table := ch.LinkTable()
	threshold := cfg.LevelThreshold
	if threshold == 0 {
		threshold = 0.5
	}
	levelOf, levels := hopLevels(table, cfg.Initiator, threshold, a)
	numLevels := len(levels)
	phaseLen := time.Duration(cl) * slotLen
	L := lanes
	allLanes := ^uint64(0) >> (64 - L)

	haveMask := a.Uint64s(n * cl)
	// relayMask is the wave-start possession snapshot: a node fills a chain
	// sub-slot only with data it held when the wave began (rxWave < wave in
	// the scalar loop), so data moves at most one hop per wave.
	relayMask := a.Uint64s(n * cl)
	for i, it := range cfg.Items {
		haveMask[it.Owner*cl+i] = allLanes
	}

	// listenable[node*cl+item] precomputes the (pure) listen filter;
	// listenSlots feeds the per-phase radio accounting, as in the scalar
	// path.
	var listenable []bool
	listenSlots := a.Ints(n)
	if cfg.ListenFilter != nil {
		listenable = a.Bools(n * cl)
		for node := 0; node < n; node++ {
			for i, it := range cfg.Items {
				if cfg.ListenFilter(node, it) {
					listenable[node*cl+i] = true
					listenSlots[node]++
				}
			}
		}
	} else {
		for node := 0; node < n; node++ {
			listenSlots[node] = cl
		}
	}

	jammedMask := a.Uint64s(n)
	txs := a.Ints(n)
	txLanes := a.Uint64s(n)
	stopped := a.Bools(n) // all false: StopListen is unsupported here
	txElig := a.Ints(n)   // per-lane scratch for creditPhase

	for wave := 0; wave < cfg.NTX; wave++ {
		copy(relayMask, haveMask)
		for ℓ := 0; ℓ < numLevels; ℓ++ {
			// Ambient interference bursts block whole phases per (node,
			// lane); every lane draws for every node, like every scalar
			// trial does.
			if burstProb > 0 {
				for node := 0; node < n; node++ {
					var jm uint64
					for l := 0; l < L; l++ {
						if rngs[l].Float64() < burstProb {
							jm |= uint64(1) << l
						}
					}
					jammedMask[node] = jm
				}
			}
			levelNodes := levels[ℓ]
			for itemIdx := range cfg.Items {
				// Transmitters in ascending node order (levels are built
				// ascending) — order is load-bearing for trace union
				// products.
				ntx := 0
				var union uint64
				for _, node := range levelNodes {
					if isFailed(cfg, node) {
						continue
					}
					if m := relayMask[node*cl+itemIdx]; m != 0 {
						txs[ntx] = node
						txLanes[ntx] = m
						ntx++
						union |= m
					}
				}
				if union == 0 {
					continue // nobody at this level can transmit in any lane
				}
				for rx := 0; rx < n; rx++ {
					if isFailed(cfg, rx) {
						continue
					}
					if listenable != nil && !listenable[rx*cl+itemIdx] {
						continue
					}
					act := allLanes &^ haveMask[rx*cl+itemIdx] &^ jammedMask[rx]
					if act == 0 {
						continue
					}
					rcv := table.ReceiveConcurrentMask(rx, txs[:ntx], txLanes[:ntx], act, rngs)
					haveMask[rx*cl+itemIdx] |= rcv
				}
			}

			// Radio accounting for the phase, per lane: the transmit-
			// eligible snapshot is exactly the wave-start relay mask.
			if ledgers != nil {
				for l := 0; l < L; l++ {
					if ledgers[l] == nil {
						continue
					}
					bit := uint64(1) << l
					for _, node := range levelNodes {
						cnt := 0
						row := relayMask[node*cl : (node+1)*cl]
						for i := range row {
							if row[i]&bit != 0 {
								cnt++
							}
						}
						txElig[node] = cnt
					}
					if err := creditPhase(ledgers[l], cfg, levelOf, ℓ, txElig,
						listenSlots, stopped, slotLen, cl); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	return &LaneResult{
		HaveMask: haveMask,
		Waves:    cfg.NTX,
		Levels:   numLevels,
		ChainLen: cl,
		SlotLen:  slotLen,
		PhaseLen: phaseLen,
		Duration: time.Duration(cfg.NTX) * time.Duration(numLevels) * phaseLen,
	}, nil
}
