package minicast

import (
	"math/rand"
	"testing"

	"iotmpc/internal/phy"
	"iotmpc/internal/topology"
)

// TestUnitDiskAllToAllExactAtDiameterWaves pins the wave-propagation
// invariant on the idealized backend: with certain reception, an item
// spreads exactly one radio hop per wave, so an all-to-all chain reaches
// full coverage — exactly — after diameter waves, and a line topology is
// NOT fully covered one wave earlier (items from one end cannot have
// reached the other).
func TestUnitDiskAllToAllExactAtDiameterWaves(t *testing.T) {
	tb, err := topology.Line(7, 10)
	if err != nil {
		t.Fatal(err)
	}
	u, err := phy.NewUnitDisk(phy.IdealParams(), tb.Positions, 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	diam, connected, err := phy.Diameter(u, 0.5)
	if err != nil || !connected {
		t.Fatalf("diameter %d connected=%v err=%v", diam, connected, err)
	}
	items := make([]Item, u.NumNodes())
	for i := range items {
		items[i] = Item{Owner: i, Dst: -1}
	}
	run := func(ntx int) *Result {
		res, err := Run(Config{
			Channel:      u,
			Initiator:    0,
			NTX:          ntx,
			Items:        items,
			PayloadBytes: 16,
		}, rand.New(rand.NewSource(1)), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if cov := run(diam).MeanCoverage(); cov != 1 {
		t.Fatalf("NTX=diameter=%d coverage %v, want exactly 1", diam, cov)
	}
	if cov := run(diam - 1).MeanCoverage(); cov >= 1 {
		t.Fatalf("NTX=%d (diameter-1) coverage %v, want < 1 on a line", diam-1, cov)
	}
}
