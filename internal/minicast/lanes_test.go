package minicast

import (
	"errors"
	"math/rand"
	"testing"

	"iotmpc/internal/phy"
	"iotmpc/internal/sim"
	"iotmpc/internal/topology"
	"iotmpc/internal/trace"
)

// laneRadios builds one radio per backend family over FlockLab (the trace
// backend gets a synthetic PRR matrix with a blend of certain and
// probabilistic links, the mix the bit-sliced kernel optimizes for).
func laneRadios(t *testing.T) map[string]phy.Radio {
	t.Helper()
	tb := topology.FlockLab()
	logdist, err := tb.Channel(phy.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	unitdisk, err := phy.NewUnitDisk(phy.DefaultParams(), tb.Positions, 35, 20)
	if err != nil {
		t.Fatal(err)
	}
	n := tb.NumNodes()
	lt := &trace.LinkTrace{Name: "synthetic", Nodes: n, PRR: make([][]float64, n)}
	rng := rand.New(rand.NewSource(4))
	for i := range lt.PRR {
		lt.PRR[i] = make([]float64, n)
		for j := range lt.PRR[i] {
			if i == j {
				continue
			}
			switch rng.Intn(4) {
			case 0: // dead link
			case 1:
				lt.PRR[i][j] = 1
			default:
				lt.PRR[i][j] = rng.Float64()
			}
		}
	}
	replay, err := trace.NewChannel(phy.DefaultParams(), lt)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]phy.Radio{"logdist": logdist, "unitdisk": unitdisk, "trace": replay}
}

// assertLanesMatchScalar runs the lane batch and one scalar round per lane
// on paired RNG streams, comparing possession, radio credits, and RNG
// alignment.
func assertLanesMatchScalar(t *testing.T, cfg Config, lanes int) {
	t.Helper()
	n := cfg.Channel.NumNodes()
	scalarRNG := make([]*rand.Rand, lanes)
	laneRNG := make([]*rand.Rand, lanes)
	ledgers := make([]*sim.RadioLedger, lanes)
	for l := 0; l < lanes; l++ {
		seed := int64(500 + l)
		scalarRNG[l] = rand.New(rand.NewSource(seed))
		laneRNG[l] = rand.New(rand.NewSource(seed))
		ledgers[l] = sim.NewRadioLedger(n)
	}
	var arena sim.Arena
	got, err := RunLanes(cfg, lanes, laneRNG, ledgers, &arena)
	if err != nil {
		t.Fatal(err)
	}
	if got.ChainLen != len(cfg.Items) || got.Levels <= 0 {
		t.Fatalf("bad schedule: %+v", got)
	}
	for l := 0; l < lanes; l++ {
		wantLedger := sim.NewRadioLedger(n)
		want, err := Run(cfg, scalarRNG[l], wantLedger, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.Waves != want.Waves || got.Levels != want.Levels ||
			got.SlotLen != want.SlotLen || got.PhaseLen != want.PhaseLen ||
			got.Duration != want.Duration {
			t.Fatalf("lane %d: schedule diverged: lanes %+v scalar %+v", l, got, want)
		}
		bit := uint64(1) << l
		for node := 0; node < n; node++ {
			for item := range cfg.Items {
				if (got.Have(node, item)&bit != 0) != want.Have[node][item] {
					t.Fatalf("lane %d: Have(%d,%d) = %v, scalar %v",
						l, node, item, got.Have(node, item)&bit != 0, want.Have[node][item])
				}
			}
			if ledgers[l].OnTime(node) != wantLedger.OnTime(node) {
				t.Fatalf("lane %d node %d: radio credit %v != scalar %v",
					l, node, ledgers[l].OnTime(node), wantLedger.OnTime(node))
			}
		}
		if scalarRNG[l].Int63() != laneRNG[l].Int63() {
			t.Fatalf("lane %d RNG stream diverged from its scalar twin", l)
		}
	}
}

// TestMinicastRunLanesMatchesScalar covers the chain across backends and
// lane counts, on a broadcast all-to-all chain.
func TestMinicastRunLanesMatchesScalar(t *testing.T) {
	for name, radio := range laneRadios(t) {
		t.Run(name, func(t *testing.T) {
			n := radio.NumNodes()
			cfg := Config{
				Channel:      radio,
				Initiator:    0,
				NTX:          3,
				Items:        allToAllItems(n),
				PayloadBytes: 16,
			}
			for _, lanes := range []int{1, 3, 64} {
				assertLanesMatchScalar(t, cfg, lanes)
			}
		})
	}
}

// TestMinicastRunLanesWithFailures: failed nodes neither send nor receive,
// identically per lane.
func TestMinicastRunLanesWithFailures(t *testing.T) {
	ch := flockChannel(t)
	n := ch.NumNodes()
	failed := make([]bool, n)
	failed[3], failed[17] = true, true
	cfg := Config{
		Channel:      ch,
		Initiator:    0,
		NTX:          3,
		Items:        allToAllItems(n),
		PayloadBytes: 16,
		Failed:       failed,
	}
	assertLanesMatchScalar(t, cfg, 16)
}

// TestMinicastRunLanesListenFilter: a pure destination filter is honored in
// every lane and keeps the radio accounting aligned.
func TestMinicastRunLanesListenFilter(t *testing.T) {
	ch := flockChannel(t)
	n := ch.NumNodes()
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Owner: i, Dst: (i + 1) % n}
	}
	cfg := Config{
		Channel:      ch,
		Initiator:    0,
		NTX:          3,
		Items:        items,
		PayloadBytes: 16,
		ListenFilter: func(node int, it Item) bool { return it.Dst == -1 || it.Dst == node },
	}
	assertLanesMatchScalar(t, cfg, 8)
}

// TestMinicastRunLanesRejectsStopListen: duty-cycle predicates make the
// per-phase draw schedule lane-dependent; the lane path must refuse them
// loudly instead of silently diverging.
func TestMinicastRunLanesRejectsStopListen(t *testing.T) {
	ch := flockChannel(t)
	cfg := Config{
		Channel:      ch,
		Initiator:    0,
		NTX:          3,
		Items:        allToAllItems(ch.NumNodes()),
		PayloadBytes: 16,
		StopListen:   func(node int, have []bool) bool { return false },
	}
	rngs := []*rand.Rand{rand.New(rand.NewSource(1))}
	if _, err := RunLanes(cfg, 1, rngs, nil, nil); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("error = %v, want ErrBadConfig", err)
	}
}

func TestMinicastRunLanesErrors(t *testing.T) {
	ch := flockChannel(t)
	cfg := Config{Channel: ch, Initiator: 0, NTX: 3, Items: allToAllItems(ch.NumNodes()), PayloadBytes: 16}
	rngs := make([]*rand.Rand, 64)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(int64(i)))
	}
	if _, err := RunLanes(cfg, 0, rngs, nil, nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero lanes: error = %v", err)
	}
	if _, err := RunLanes(cfg, 65, rngs, nil, nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("too many lanes: error = %v", err)
	}
	if _, err := RunLanes(cfg, 8, rngs[:2], nil, nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("short rngs: error = %v", err)
	}
	if _, err := RunLanes(cfg, 8, rngs, make([]*sim.RadioLedger, 2), nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("short ledgers: error = %v", err)
	}
	if _, err := RunLanes(Config{}, 8, rngs, nil, nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad config: error = %v", err)
	}
}
