// Package minicast implements MiniCast (Saha et al., DCOSS 2017): efficient
// many-to-many data sharing built on synchronous transmission and TDMA.
//
// MiniCast generalizes a Glossy flood from one packet to a *chain* of
// packets: the chain has one sub-slot per data item, and every node that
// relays the chain fills in the sub-slots for the items it currently holds.
// The relay schedule is TDMA by hop level: the initiator transmits the chain,
// then its first-hop neighbors transmit the chain concurrently (constructive
// interference, as in Glossy), then the second hop, and so on. One pass of
// the chain through all levels is a "wave"; the parameter NTX is the number
// of waves each node transmits the full chain.
//
// Data diffuses outward within a wave (level ℓ hears level ℓ-1 earlier in
// the same wave) and inward by one level per wave, so:
//
//   - items from a node h hops away need roughly h waves to arrive, and
//   - all-to-all coverage needs NTX on the order of the network diameter,
//     with margin for packet loss,
//
// which is exactly the non-linear NTX/coverage trade-off the paper's S4
// exploits: a small NTX already delivers the items of nearby nodes while
// full coverage costs disproportionately more.
package minicast

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"iotmpc/internal/phy"
	"iotmpc/internal/sim"
)

// Errors returned by the package.
var (
	// ErrBadConfig is returned for invalid chain configuration.
	ErrBadConfig = errors.New("minicast: invalid configuration")
)

// Item is one sub-slot payload of the chain.
type Item struct {
	// Owner is the node that injects the item.
	Owner int
	// Dst is the destination node for point-to-point items (encrypted
	// shares); -1 marks broadcast items (public-point sums). Dst is metadata
	// for listen filters — every node may relay any item.
	Dst int
}

// Config parameterizes one MiniCast dissemination round.
type Config struct {
	// Channel is the radio backend (any phy.Radio implementation).
	Channel phy.Radio
	// Initiator starts the chain and anchors the TDMA level schedule.
	Initiator int
	// NTX is the number of chain waves.
	NTX int
	// Items is the chain, in sub-slot order.
	Items []Item
	// PayloadBytes sizes each sub-slot frame.
	PayloadBytes int
	// LevelThreshold is the link PRR used to derive hop levels (default 0.5).
	LevelThreshold float64
	// ListenFilter, when non-nil, lets a node skip listening during specific
	// sub-slots (radio duty-cycling). Nodes that skip a sub-slot can never
	// relay that item, so filters trade energy for dissemination reach.
	ListenFilter func(node int, it Item) bool
	// StopListen, when non-nil, is evaluated per node before every phase;
	// once true the node stops listening for the rest of the round (it still
	// honors its transmit phases). have is the node's item bitmap and must
	// not be mutated.
	StopListen func(node int, have []bool) bool
	// Failed marks crashed nodes: they neither transmit nor receive.
	// Nil means no failures.
	Failed []bool
}

func (c Config) validate() error {
	switch {
	case c.Channel == nil:
		return fmt.Errorf("%w: nil channel", ErrBadConfig)
	case c.Initiator < 0 || c.Initiator >= c.Channel.NumNodes():
		return fmt.Errorf("%w: initiator %d", ErrBadConfig, c.Initiator)
	case c.NTX <= 0:
		return fmt.Errorf("%w: NTX %d", ErrBadConfig, c.NTX)
	case len(c.Items) == 0:
		return fmt.Errorf("%w: empty chain", ErrBadConfig)
	case c.PayloadBytes < 0 || c.PayloadBytes > phy.MaxPSDU:
		return fmt.Errorf("%w: payload %d", ErrBadConfig, c.PayloadBytes)
	case c.Failed != nil && len(c.Failed) != c.Channel.NumNodes():
		return fmt.Errorf("%w: Failed has %d entries for %d nodes",
			ErrBadConfig, len(c.Failed), c.Channel.NumNodes())
	}
	for i, it := range c.Items {
		if it.Owner < 0 || it.Owner >= c.Channel.NumNodes() {
			return fmt.Errorf("%w: item %d owner %d", ErrBadConfig, i, it.Owner)
		}
		if it.Dst < -1 || it.Dst >= c.Channel.NumNodes() {
			return fmt.Errorf("%w: item %d dst %d", ErrBadConfig, i, it.Dst)
		}
	}
	return nil
}

// Result reports one dissemination round.
type Result struct {
	// Have[node][item] reports possession at round end.
	Have [][]bool
	// RxAt[node][item] is the virtual time (from round start) the node first
	// held the item; 0 for items the node owns, -1 if never received.
	RxAt [][]time.Duration
	// StoppedAt[node] is when StopListen fired for the node (-1: never).
	StoppedAt []time.Duration
	// Waves, Levels and ChainLen describe the executed schedule.
	Waves    int
	Levels   int
	ChainLen int
	// SlotLen is the per-sub-slot duration, PhaseLen = ChainLen × SlotLen,
	// Duration = Waves × Levels × PhaseLen.
	SlotLen  time.Duration
	PhaseLen time.Duration
	Duration time.Duration
}

// CoverageOf returns the fraction of non-owner, non-failed nodes holding the
// item at round end.
func (r *Result) CoverageOf(item int) float64 {
	n := len(r.Have)
	if n <= 1 {
		return 1
	}
	got, eligible := 0, 0
	for node := 0; node < n; node++ {
		if r.RxAt[node][item] == 0 { // owner
			continue
		}
		eligible++
		if r.Have[node][item] {
			got++
		}
	}
	if eligible == 0 {
		return 1
	}
	return float64(got) / float64(eligible)
}

// MeanCoverage averages CoverageOf over all items.
func (r *Result) MeanCoverage() float64 {
	if r.ChainLen == 0 {
		return 0
	}
	total := 0.0
	for i := 0; i < r.ChainLen; i++ {
		total += r.CoverageOf(i)
	}
	return total / float64(r.ChainLen)
}

// Run executes one MiniCast round. The RNG drives reception draws; ledger
// (optional) accumulates radio time; engine (optional) advances by Duration.
func Run(cfg Config, rng *rand.Rand, ledger *sim.RadioLedger, engine *sim.Engine) (*Result, error) {
	return RunArena(cfg, rng, ledger, engine, nil)
}

// RunArena is Run with every per-round buffer — the n×chainLen possession
// and arrival matrices, wave counters, level partitions, scratch lists —
// borrowed from the arena (nil: heap-allocate, as Run always did). The
// returned Result aliases arena memory and is valid until the caller's next
// a.Reset(); core.RunRound holds one arena across its chain phases and
// resets it once per round. Outcomes are bit-identical to Run for the same
// RNG state.
func RunArena(cfg Config, rng *rand.Rand, ledger *sim.RadioLedger, engine *sim.Engine,
	a *sim.Arena) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ch := cfg.Channel
	n := ch.NumNodes()
	chainLen := len(cfg.Items)

	params := ch.Params()
	slotLen, err := params.SlotDuration(cfg.PayloadBytes)
	if err != nil {
		return nil, err
	}
	burstProb := params.InterferenceBurstProb // invariant for the whole round
	table := ch.LinkTable()
	threshold := cfg.LevelThreshold
	if threshold == 0 {
		threshold = 0.5
	}

	levelOf, levels := hopLevels(table, cfg.Initiator, threshold, a)
	numLevels := len(levels)
	phaseLen := time.Duration(chainLen) * slotLen

	// The two n×chainLen result matrices and the wave tracker share one
	// flat backing each, sliced into rows: three allocations instead of 3n.
	// All borrows go through the arena, whose getters fall back to plain
	// make() on a nil receiver — one allocation path for both modes.
	haveFlat := a.Bools(n * chainLen)
	have := a.BoolRows(n)
	rxFlat := a.Durations(n * chainLen)
	rxAt := a.DurationRows(n)
	waveFlat := a.Int32s(n * chainLen)
	rxWave := a.Int32Rows(n)
	for node := 0; node < n; node++ {
		have[node] = haveFlat[node*chainLen : (node+1)*chainLen]
		rxAt[node] = rxFlat[node*chainLen : (node+1)*chainLen]
		rxWave[node] = waveFlat[node*chainLen : (node+1)*chainLen]
	}
	stoppedAt := a.Durations(n)

	res := &Result{
		Have:      have,
		RxAt:      rxAt,
		StoppedAt: stoppedAt,
		Waves:     cfg.NTX,
		Levels:    numLevels,
		ChainLen:  chainLen,
		SlotLen:   slotLen,
		PhaseLen:  phaseLen,
		Duration:  time.Duration(cfg.NTX) * time.Duration(numLevels) * phaseLen,
	}
	for node := 0; node < n; node++ {
		for i := range res.RxAt[node] {
			res.RxAt[node][i] = -1
		}
		res.StoppedAt[node] = -1
	}
	// Owners hold their items from the start (failed owners hold them too,
	// but will never transmit).
	for i, it := range cfg.Items {
		res.Have[it.Owner][i] = true
		res.RxAt[it.Owner][i] = 0
	}

	// rxWave[node][item] is the wave in which the node obtained the item;
	// an item received in wave w is relayed from wave w+1 on (a node fills a
	// chain sub-slot only with data it held when its transmission turn came,
	// so data moves at most one hop per wave). Owners hold from wave -1.
	notHeld := int32(cfg.NTX) + 1 // sentinel: not held
	for node := 0; node < n; node++ {
		for i := range rxWave[node] {
			rxWave[node][i] = notHeld
		}
	}
	for i, it := range cfg.Items {
		rxWave[it.Owner][i] = -1
	}

	// holdersAtLevel[ℓ][item] counts level-ℓ nodes holding the item; lets a
	// phase skip sub-slots with nothing to transmit.
	holdersFlat := a.Ints(numLevels * chainLen)
	holdersAtLevel := a.IntRows(numLevels)
	for ℓ := range holdersAtLevel {
		holdersAtLevel[ℓ] = holdersFlat[ℓ*chainLen : (ℓ+1)*chainLen]
	}
	for i, it := range cfg.Items {
		if ℓ := levelOf[it.Owner]; ℓ >= 0 {
			holdersAtLevel[ℓ][i]++
		}
	}
	// listenSlots[node] counts sub-slots the node's filter admits.
	listenSlots := a.Ints(n)
	for node := 0; node < n; node++ {
		if cfg.ListenFilter == nil {
			listenSlots[node] = chainLen
			continue
		}
		for _, it := range cfg.Items {
			if cfg.ListenFilter(node, it) {
				listenSlots[node]++
			}
		}
	}
	stopped := a.Bools(n)
	jammed := a.Bools(n)
	// txEligible[node] snapshots, per phase, how many items a level node may
	// transmit (for radio accounting); written for every level node before
	// creditPhase reads it, so no per-phase clearing is needed.
	txEligible := a.Ints(n)

	txers := a.Ints(n)[:0]
	for wave := 0; wave < cfg.NTX; wave++ {
		for ℓ := 0; ℓ < numLevels; ℓ++ {
			phaseStart := (time.Duration(wave)*time.Duration(numLevels) + time.Duration(ℓ)) * phaseLen

			// Evaluate stop predicates at phase boundaries.
			if cfg.StopListen != nil {
				for node := 0; node < n; node++ {
					if stopped[node] || isFailed(cfg, node) {
						continue
					}
					if cfg.StopListen(node, res.Have[node]) {
						stopped[node] = true
						res.StoppedAt[node] = phaseStart
					}
				}
			}

			// Ambient interference bursts block whole phases per node.
			for node := 0; node < n; node++ {
				jammed[node] = burstProb > 0 && rng.Float64() < burstProb
			}

			levelNodes := levels[ℓ]
			// Snapshot per-node transmit-eligible item counts before the
			// phase mutates holdings (for radio accounting).
			for _, node := range levelNodes {
				count := 0
				for i := range cfg.Items {
					if rxWave[node][i] < int32(wave) {
						count++
					}
				}
				txEligible[node] = count
			}
			for itemIdx, it := range cfg.Items {
				if holdersAtLevel[ℓ][itemIdx] == 0 {
					continue // nobody at this level can transmit the item
				}
				txers = txers[:0]
				for _, node := range levelNodes {
					if rxWave[node][itemIdx] < int32(wave) && !isFailed(cfg, node) {
						txers = append(txers, node)
					}
				}
				if len(txers) == 0 {
					continue
				}
				rxTime := phaseStart + time.Duration(itemIdx+1)*slotLen
				for rx := 0; rx < n; rx++ {
					if res.Have[rx][itemIdx] || stopped[rx] || jammed[rx] || isFailed(cfg, rx) {
						continue
					}
					if cfg.ListenFilter != nil && !cfg.ListenFilter(rx, it) {
						continue
					}
					// A same-level node not holding the item listens too.
					if !table.ReceiveConcurrentFast(rx, txers, rng) {
						continue
					}
					res.Have[rx][itemIdx] = true
					res.RxAt[rx][itemIdx] = rxTime
					rxWave[rx][itemIdx] = int32(wave)
					if lv := levelOf[rx]; lv >= 0 {
						holdersAtLevel[lv][itemIdx]++
					}
				}
			}

			// Radio accounting for the phase.
			if ledger != nil {
				if err := creditPhase(ledger, cfg, levelOf, ℓ, txEligible, listenSlots, stopped, slotLen, chainLen); err != nil {
					return nil, err
				}
			}
		}
	}

	if engine != nil {
		if err := engine.Advance(res.Duration); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func isFailed(cfg Config, node int) bool {
	return cfg.Failed != nil && cfg.Failed[node]
}

// creditPhase charges each node's radio for one phase: transmitting nodes pay
// tx for the sub-slots they fill and rx for the remainder (they listen for
// items they lack); listening nodes pay rx for the sub-slots their filter
// admits; stopped and failed nodes pay nothing beyond their own tx duties.
func creditPhase(ledger *sim.RadioLedger, cfg Config, levelOf []int, phase int,
	txEligible []int, listenSlots []int, stopped []bool, slotLen time.Duration, chainLen int) error {
	for node := range levelOf {
		if isFailed(cfg, node) {
			continue
		}
		var txSlots, rxSlots int
		if levelOf[node] == phase {
			txSlots = txEligible[node]
			if !stopped[node] {
				rxSlots = chainLen - txSlots
			}
		} else if !stopped[node] {
			rxSlots = listenSlots[node]
		}
		if rxSlots < 0 {
			rxSlots = 0
		}
		err := ledger.AddBulk(node,
			time.Duration(txSlots)*slotLen,
			time.Duration(rxSlots)*slotLen)
		if err != nil {
			return err
		}
	}
	return nil
}

// hopLevels partitions nodes into TDMA levels by hop distance from the
// initiator (link-table lookups, arena-borrowed buffers). Unreachable nodes
// get level -1 and never transmit. Level membership is in ascending node
// order, exactly as the historical per-level appends produced.
func hopLevels(table *phy.LinkTable, initiator int, threshold float64, a *sim.Arena) ([]int, [][]int) {
	n := table.NumNodes()
	dist := a.Ints(n)
	table.HopDistancesInto(dist, initiator, threshold)
	maxLevel := 0
	for _, d := range dist {
		if d > maxLevel {
			maxLevel = d
		}
	}
	counts := a.Ints(maxLevel + 1)
	reachable := 0
	for _, d := range dist {
		if d >= 0 {
			counts[d]++
			reachable++
		}
	}
	// One flat member array carved into per-level windows.
	flat := a.Ints(reachable)
	levels := a.IntRows(maxLevel + 1)
	off := 0
	for ℓ := range levels {
		levels[ℓ] = flat[off : off : off+counts[ℓ]]
		off += counts[ℓ]
	}
	for node, d := range dist {
		if d < 0 {
			continue
		}
		levels[d] = append(levels[d], node)
	}
	return dist, levels
}
