package minicast

import (
	"math/rand"
	"testing"
	"time"

	"iotmpc/internal/phy"
	"iotmpc/internal/topology"
)

// runOn runs an all-to-all round on the given topology/seed.
func runOn(t *testing.T, top topology.Topology, ntx int, seed int64) *Result {
	t.Helper()
	ch, err := top.Channel(phy.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Channel:      ch,
		Initiator:    0,
		NTX:          ntx,
		Items:        allToAllItems(ch.NumNodes()),
		PayloadBytes: 20,
	}, rand.New(rand.NewSource(seed)), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestInvariantHaveIffRxAt: possession and timestamps must agree.
func TestInvariantHaveIffRxAt(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		res := runOn(t, topology.FlockLab(), 4, seed)
		for node := range res.Have {
			for item := range res.Have[node] {
				has := res.Have[node][item]
				stamped := res.RxAt[node][item] >= 0
				if has != stamped {
					t.Fatalf("seed %d node %d item %d: Have=%v but RxAt=%v",
						seed, node, item, has, res.RxAt[node][item])
				}
			}
		}
	}
}

// TestInvariantRxAtWithinDuration: no reception after the round ends.
func TestInvariantRxAtWithinDuration(t *testing.T) {
	res := runOn(t, topology.FlockLab(), 6, 1)
	for node := range res.RxAt {
		for item, at := range res.RxAt[node] {
			if at > res.Duration {
				t.Fatalf("node %d item %d received at %v after round end %v",
					node, item, at, res.Duration)
			}
		}
	}
}

// TestInvariantCoverageMonotoneInNTX: with the same channel, more waves can
// only help (on average across seeds).
func TestInvariantCoverageMonotoneInNTX(t *testing.T) {
	mean := func(ntx int) float64 {
		total := 0.0
		const trials = 8
		for seed := int64(0); seed < trials; seed++ {
			total += runOn(t, topology.FlockLab(), ntx, seed).MeanCoverage()
		}
		return total / trials
	}
	prev := 0.0
	for _, ntx := range []int{1, 2, 4, 8} {
		cov := mean(ntx)
		if cov+0.02 < prev { // small tolerance for Monte-Carlo noise
			t.Fatalf("coverage decreased at NTX=%d: %.3f < %.3f", ntx, cov, prev)
		}
		prev = cov
	}
}

// TestInvariantOneHopPerWave: an item cannot outrun the TDMA schedule — a
// node at graph distance d from the owner cannot hold the item before wave
// d-1 (waves are 0-indexed; the owner's level transmits once per wave).
func TestInvariantOneHopPerWave(t *testing.T) {
	p := phy.DefaultParams()
	p.ShadowingSigmaDB = 0
	p.FadingSigmaDB = 1
	top, err := topology.Line(7, 35)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := top.Channel(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Channel:      ch,
		Initiator:    0,
		NTX:          10,
		Items:        allToAllItems(7),
		PayloadBytes: 20,
	}, rand.New(rand.NewSource(3)), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	waveLen := res.PhaseLen * time.Duration(res.Levels)
	// Item owned by node 6; node 0 is 6 hops away. It cannot arrive before
	// wave 5 starts (5 full waves of inward movement).
	if at := res.RxAt[0][6]; at >= 0 && at < 5*waveLen {
		t.Errorf("item traveled 6 hops by %v (< 5 waves of %v): schedule violated", at, waveLen)
	}
}
