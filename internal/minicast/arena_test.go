package minicast

import (
	"math/rand"
	"reflect"
	"testing"

	"iotmpc/internal/phy"
	"iotmpc/internal/sim"
	"iotmpc/internal/topology"
)

// TestRunArenaMatchesRun pins the arena path bit-for-bit to the allocating
// path across reused rounds: same RNG stream in, same Result out (including
// the ledger credits), RNGs still aligned afterwards.
func TestRunArenaMatchesRun(t *testing.T) {
	tb := topology.FlockLab()
	ch, err := tb.Channel(phy.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	n := tb.NumNodes()
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Owner: i, Dst: -1}
	}
	cfg := Config{Channel: ch, Initiator: 0, NTX: 3, Items: items, PayloadBytes: 16}

	plain := rand.New(rand.NewSource(77))
	arenaRNG := rand.New(rand.NewSource(77))
	var arena sim.Arena
	for round := 0; round < 10; round++ {
		wantLedger := sim.NewRadioLedger(n)
		want, err := Run(cfg, plain, wantLedger, nil)
		if err != nil {
			t.Fatal(err)
		}
		gotLedger := sim.NewRadioLedger(n)
		arena.Reset()
		got, err := RunArena(cfg, arenaRNG, gotLedger, nil, &arena)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("round %d: arena result diverged", round)
		}
		for node := 0; node < n; node++ {
			if wantLedger.OnTime(node) != gotLedger.OnTime(node) {
				t.Fatalf("round %d: node %d radio credit diverged", round, node)
			}
		}
	}
	if plain.Int63() != arenaRNG.Int63() {
		t.Fatal("RNG streams diverged between Run and RunArena")
	}
}
