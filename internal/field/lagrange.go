package field

import (
	"errors"
	"fmt"
)

// Point is an (x, y) evaluation of a polynomial, i.e. a Shamir share in the
// algebraic sense: y = P(x).
type Point struct {
	X Element
	Y Element
}

// Errors returned by interpolation.
var (
	// ErrDuplicateX is returned when two interpolation points share an x
	// coordinate; the interpolating polynomial would be ill-defined.
	ErrDuplicateX = errors.New("field: duplicate x coordinate")
	// ErrNoPoints is returned when interpolation is attempted on an empty set.
	ErrNoPoints = errors.New("field: no interpolation points")
)

// InterpolateAt evaluates, at target x0, the unique polynomial of degree
// < len(points) passing through the given points, using the Lagrange form:
//
//	P(x0) = Σᵢ yᵢ · Πⱼ≠ᵢ (x0 - xⱼ)/(xᵢ - xⱼ)
//
// This is the reconstruction step of SSS: with x0 = 0 it recovers the secret
// (or the aggregated secret when the yᵢ are sums of shares).
func InterpolateAt(points []Point, x0 Element) (Element, error) {
	if len(points) == 0 {
		return 0, ErrNoPoints
	}
	if err := checkDistinctX(points); err != nil {
		return 0, err
	}
	var acc Element
	for i, pi := range points {
		num := One
		den := One
		for j, pj := range points {
			if j == i {
				continue
			}
			num = num.Mul(x0.Sub(pj.X))
			den = den.Mul(pi.X.Sub(pj.X))
		}
		invDen, err := den.Inv()
		if err != nil {
			// Unreachable given distinct x's, but surface it defensively.
			return 0, fmt.Errorf("lagrange denominator: %w", err)
		}
		acc = acc.Add(pi.Y.Mul(num).Mul(invDen))
	}
	return acc, nil
}

// InterpolateAtZero is InterpolateAt with x0 = 0; kept as a named entry point
// because reconstruction-at-zero is the single hottest call in the protocol.
func InterpolateAtZero(points []Point) (Element, error) {
	return InterpolateAt(points, Zero)
}

// LagrangeCoefficientsAtZero precomputes the weights λᵢ such that
// P(0) = Σ λᵢ·yᵢ for the given x coordinates. Callers that reconstruct many
// polynomials over the same point set (every aggregation round does) can pay
// the inversions once. All denominators are inverted together via
// BatchInvert, so the whole coefficient vector costs a single field
// inversion regardless of the set size.
func LagrangeCoefficientsAtZero(xs []Element) ([]Element, error) {
	if len(xs) == 0 {
		return nil, ErrNoPoints
	}
	seen := make(map[Element]struct{}, len(xs))
	for _, x := range xs {
		if _, dup := seen[x]; dup {
			return nil, fmt.Errorf("%w: x=%v", ErrDuplicateX, x)
		}
		seen[x] = struct{}{}
	}
	nums := make([]Element, len(xs))
	dens := make([]Element, len(xs))
	for i, xi := range xs {
		num := One
		den := One
		for j, xj := range xs {
			if j == i {
				continue
			}
			num = num.Mul(xj.Neg())
			den = den.Mul(xi.Sub(xj))
		}
		nums[i] = num
		dens[i] = den
	}
	invDens, err := BatchInvert(dens)
	if err != nil {
		// A zero denominator means xᵢ = xⱼ for some pair, caught above;
		// surface it defensively anyway.
		return nil, fmt.Errorf("lagrange denominators: %w", err)
	}
	coeffs, err := MulVec(nums, invDens)
	if err != nil {
		return nil, err // unreachable: lengths match by construction
	}
	return coeffs, nil
}

// Interpolate returns the full coefficient vector of the unique polynomial of
// degree < len(points) through the points (Newton's divided differences would
// also work; we build Lagrange basis polynomials explicitly since point sets
// in this system are small, ≤ n ≤ 45).
func Interpolate(points []Point) (Poly, error) {
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	if err := checkDistinctX(points); err != nil {
		return nil, err
	}
	result := make(Poly, len(points))
	for i, pi := range points {
		// basis_i(x) = Πⱼ≠ᵢ (x - xⱼ) / (xᵢ - xⱼ)
		basis := Poly{One}
		den := One
		for j, pj := range points {
			if j == i {
				continue
			}
			basis = mulLinear(basis, pj.X.Neg()) // multiply by (x - xⱼ)
			den = den.Mul(pi.X.Sub(pj.X))
		}
		invDen, err := den.Inv()
		if err != nil {
			return nil, fmt.Errorf("basis %d denominator: %w", i, err)
		}
		scaled := basis.Scale(pi.Y.Mul(invDen))
		result = result.Add(scaled)
	}
	// Add may have grown result by padding; trim back to len(points).
	return result[:len(points)], nil
}

// mulLinear multiplies p by the monic linear factor (x + c).
func mulLinear(p Poly, c Element) Poly {
	out := make(Poly, len(p)+1)
	for i, v := range p {
		out[i] = out[i].Add(v.Mul(c))
		out[i+1] = out[i+1].Add(v)
	}
	return out
}

func checkDistinctX(points []Point) error {
	seen := make(map[Element]struct{}, len(points))
	for _, pt := range points {
		if _, dup := seen[pt.X]; dup {
			return fmt.Errorf("%w: x=%v", ErrDuplicateX, pt.X)
		}
		seen[pt.X] = struct{}{}
	}
	return nil
}
