package field

import (
	"errors"
	"fmt"
	"io"
)

// Poly is a polynomial over GF(p) stored as coefficients in ascending order:
// Poly{c0, c1, c2} represents c0 + c1·x + c2·x².
//
// Shamir Secret Sharing hides the secret in the constant term c0 = P(0); the
// remaining coefficients are sampled uniformly at random.
type Poly []Element

// Errors returned by polynomial routines.
var (
	// ErrEmptyPoly is returned when an operation needs at least one coefficient.
	ErrEmptyPoly = errors.New("field: empty polynomial")
	// ErrDegree is returned for invalid degree arguments.
	ErrDegree = errors.New("field: invalid degree")
)

// NewRandomPoly samples a degree-k polynomial with the given constant term
// (the secret) and uniformly random higher coefficients drawn from rng.
// The leading coefficient is resampled until non-zero so the polynomial has
// exact degree k; otherwise a lower effective degree would silently weaken
// the collusion threshold accounting.
func NewRandomPoly(secret Element, degree int, rng io.Reader) (Poly, error) {
	if degree < 0 {
		return nil, fmt.Errorf("%w: %d", ErrDegree, degree)
	}
	p := make(Poly, degree+1)
	p[0] = secret
	for i := 1; i <= degree; i++ {
		e, err := randomElement(rng)
		if err != nil {
			return nil, fmt.Errorf("sample coefficient %d: %w", i, err)
		}
		p[i] = e
	}
	// Force exact degree (only relevant for degree >= 1).
	for degree >= 1 && p[degree].IsZero() {
		e, err := randomElement(rng)
		if err != nil {
			return nil, fmt.Errorf("resample leading coefficient: %w", err)
		}
		p[degree] = e
	}
	return p, nil
}

// randomElement draws a uniform field element by rejection sampling 64-bit
// words down to the 61-bit canonical range.
func randomElement(rng io.Reader) (Element, error) {
	var buf [8]byte
	for {
		if _, err := io.ReadFull(rng, buf[:]); err != nil {
			return 0, err
		}
		v := uint64(buf[0]) | uint64(buf[1])<<8 | uint64(buf[2])<<16 | uint64(buf[3])<<24 |
			uint64(buf[4])<<32 | uint64(buf[5])<<40 | uint64(buf[6])<<48 | uint64(buf[7])<<56
		v >>= 3 // keep 61 bits
		if v < Modulus {
			return Element(v), nil
		}
	}
}

// Degree returns the index of the highest coefficient slot. It does not trim
// leading zeros: a Poly built for threshold k reports k even if the random
// draw produced a zero leading coefficient (NewRandomPoly prevents that).
func (p Poly) Degree() int { return len(p) - 1 }

// Eval evaluates the polynomial at x using Horner's rule.
func (p Poly) Eval(x Element) Element {
	if len(p) == 0 {
		return Zero
	}
	acc := p[len(p)-1]
	for i := len(p) - 2; i >= 0; i-- {
		acc = acc.Mul(x).Add(p[i])
	}
	return acc
}

// EvalMany evaluates the polynomial at every point in xs.
func (p Poly) EvalMany(xs []Element) []Element {
	out := make([]Element, len(xs))
	for i, x := range xs {
		out[i] = p.Eval(x)
	}
	return out
}

// Add returns p + q, padding the shorter polynomial with zeros.
func (p Poly) Add(q Poly) Poly {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	out := make(Poly, n)
	for i := range out {
		var a, b Element
		if i < len(p) {
			a = p[i]
		}
		if i < len(q) {
			b = q[i]
		}
		out[i] = a.Add(b)
	}
	return out
}

// Scale returns c·p.
func (p Poly) Scale(c Element) Poly {
	out := make(Poly, len(p))
	for i, v := range p {
		out[i] = v.Mul(c)
	}
	return out
}

// Clone returns an independent copy so callers can mutate freely.
func (p Poly) Clone() Poly {
	out := make(Poly, len(p))
	copy(out, p)
	return out
}

// Constant returns the constant term P(0), i.e. the secret in SSS.
func (p Poly) Constant() Element {
	if len(p) == 0 {
		return Zero
	}
	return p[0]
}
