package field

import (
	"errors"
	"math/rand"
	"testing"
)

func TestNewRandomPoly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	secret := New(12345)
	p, err := NewRandomPoly(secret, 5, rng)
	if err != nil {
		t.Fatalf("NewRandomPoly error = %v", err)
	}
	if p.Degree() != 5 {
		t.Errorf("Degree = %d, want 5", p.Degree())
	}
	if p.Constant() != secret {
		t.Errorf("Constant = %v, want %v", p.Constant(), secret)
	}
	if p.Eval(Zero) != secret {
		t.Errorf("Eval(0) = %v, want %v", p.Eval(Zero), secret)
	}
	if p[5].IsZero() {
		t.Error("leading coefficient is zero; exact degree not enforced")
	}
}

func TestNewRandomPolyDegreeZero(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p, err := NewRandomPoly(New(7), 0, rng)
	if err != nil {
		t.Fatalf("NewRandomPoly error = %v", err)
	}
	if len(p) != 1 || p[0] != New(7) {
		t.Errorf("degree-0 poly = %v, want [7]", p)
	}
}

func TestNewRandomPolyNegativeDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := NewRandomPoly(One, -1, rng); !errors.Is(err, ErrDegree) {
		t.Errorf("error = %v, want ErrDegree", err)
	}
}

func TestEvalHorner(t *testing.T) {
	// p(x) = 3 + 2x + x²; p(5) = 3 + 10 + 25 = 38.
	p := Poly{New(3), New(2), New(1)}
	if got := p.Eval(New(5)); got != New(38) {
		t.Errorf("Eval(5) = %v, want 38", got)
	}
	if got := p.Eval(Zero); got != New(3) {
		t.Errorf("Eval(0) = %v, want 3", got)
	}
}

func TestEvalEmpty(t *testing.T) {
	var p Poly
	if got := p.Eval(New(9)); got != Zero {
		t.Errorf("empty Eval = %v, want 0", got)
	}
}

func TestEvalMany(t *testing.T) {
	p := Poly{New(1), New(1)} // 1 + x
	got := p.EvalMany([]Element{New(0), New(1), New(2)})
	want := []Element{New(1), New(2), New(3)}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("EvalMany[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPolyAdd(t *testing.T) {
	p := Poly{New(1), New(2)}
	q := Poly{New(3), New(4), New(5)}
	sum := p.Add(q)
	want := Poly{New(4), New(6), New(5)}
	if len(sum) != len(want) {
		t.Fatalf("Add length = %d, want %d", len(sum), len(want))
	}
	for i := range want {
		if sum[i] != want[i] {
			t.Errorf("Add[%d] = %v, want %v", i, sum[i], want[i])
		}
	}
}

func TestPolyAddIsPointwise(t *testing.T) {
	// (p+q)(x) == p(x)+q(x) — the additive homomorphism SSS aggregation uses.
	rng := rand.New(rand.NewSource(4))
	p, err := NewRandomPoly(New(10), 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewRandomPoly(New(20), 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	sum := p.Add(q)
	for i := uint64(1); i <= 10; i++ {
		x := New(i)
		if sum.Eval(x) != p.Eval(x).Add(q.Eval(x)) {
			t.Fatalf("pointwise add fails at x=%d", i)
		}
	}
	if sum.Constant() != New(30) {
		t.Errorf("sum secret = %v, want 30", sum.Constant())
	}
}

func TestPolyScale(t *testing.T) {
	p := Poly{New(1), New(2)}
	s := p.Scale(New(3))
	if s[0] != New(3) || s[1] != New(6) {
		t.Errorf("Scale = %v, want [3 6]", s)
	}
}

func TestPolyClone(t *testing.T) {
	p := Poly{New(1), New(2)}
	c := p.Clone()
	c[0] = New(99)
	if p[0] != New(1) {
		t.Error("Clone aliases original storage")
	}
}

func TestRandomElementUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		e, err := randomElement(rng)
		if err != nil {
			t.Fatalf("randomElement error = %v", err)
		}
		if uint64(e) >= Modulus {
			t.Fatalf("randomElement out of range: %v", e)
		}
	}
}
