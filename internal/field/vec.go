package field

import (
	"errors"
	"fmt"
)

// Vectorized arithmetic. The protocol's hot paths operate on whole vectors of
// readings at once — every source shares a vector of sensor values, every
// destination sums vectors of shares, and reconstruction recovers a vector of
// aggregates. Processing them through these batch entry points keeps the
// per-element overhead (bounds checks, call dispatch, error plumbing) out of
// the inner loops and gives the compiler straight-line code to unroll.

// Errors returned by vector operations.
var (
	// ErrLenMismatch is returned when two vectors of different lengths are
	// combined element-wise.
	ErrLenMismatch = errors.New("field: vector length mismatch")
	// ErrZeroInBatch is returned by BatchInvert when an input element is zero.
	ErrZeroInBatch = errors.New("field: zero element in batch inversion")
)

// AddVec returns the element-wise sum a + b. Empty inputs yield an empty
// (non-nil) vector.
func AddVec(a, b []Element) ([]Element, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("%w: %d vs %d", ErrLenMismatch, len(a), len(b))
	}
	out := make([]Element, len(a))
	for i := range a {
		out[i] = a[i].Add(b[i])
	}
	return out, nil
}

// SubVec returns the element-wise difference a - b.
func SubVec(a, b []Element) ([]Element, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("%w: %d vs %d", ErrLenMismatch, len(a), len(b))
	}
	out := make([]Element, len(a))
	for i := range a {
		out[i] = a[i].Sub(b[i])
	}
	return out, nil
}

// MulVec returns the element-wise (Hadamard) product a ∘ b.
func MulVec(a, b []Element) ([]Element, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("%w: %d vs %d", ErrLenMismatch, len(a), len(b))
	}
	out := make([]Element, len(a))
	for i := range a {
		out[i] = a[i].Mul(b[i])
	}
	return out, nil
}

// ScalarMulVec returns c·a.
func ScalarMulVec(c Element, a []Element) []Element {
	out := make([]Element, len(a))
	for i := range a {
		out[i] = c.Mul(a[i])
	}
	return out
}

// AccumulateVec adds src into dst in place (dst[i] += src[i]). This is the
// aggregation inner loop: a destination folding received share vectors into
// its running sum without allocating per contribution.
func AccumulateVec(dst, src []Element) error {
	if len(dst) != len(src) {
		return fmt.Errorf("%w: %d vs %d", ErrLenMismatch, len(dst), len(src))
	}
	for i := range dst {
		dst[i] = dst[i].Add(src[i])
	}
	return nil
}

// MulAccVec adds c·src into dst in place (dst[i] += c·src[i]) — the fused
// step of Lagrange reconstruction over vectors: Σᵢ λᵢ·yᵢ accumulated one
// share vector at a time.
func MulAccVec(dst []Element, c Element, src []Element) error {
	if len(dst) != len(src) {
		return fmt.Errorf("%w: %d vs %d", ErrLenMismatch, len(dst), len(src))
	}
	for i := range dst {
		dst[i] = dst[i].Add(c.Mul(src[i]))
	}
	return nil
}

// BatchInvert inverts every element of xs using Montgomery's trick: one
// field inversion plus 3(n-1) multiplications instead of n inversions.
// With Inv costing ~60 multiplications (square-and-multiply over a 61-bit
// exponent), the batch is ~20x cheaper for the share-set sizes this system
// reconstructs over.
//
// Any zero input aborts the whole batch with ErrZeroInBatch (reporting the
// offending index); a zero would otherwise poison every partial product.
func BatchInvert(xs []Element) ([]Element, error) {
	out := make([]Element, len(xs))
	if len(xs) == 0 {
		return out, nil
	}
	// Forward pass: prefix products. out[i] = x₀·x₁·…·xᵢ₋₁ (out[0] = 1).
	acc := One
	for i, x := range xs {
		if x.IsZero() {
			return nil, fmt.Errorf("%w: index %d", ErrZeroInBatch, i)
		}
		out[i] = acc
		acc = acc.Mul(x)
	}
	// One inversion of the total product.
	inv, err := acc.Inv()
	if err != nil {
		return nil, err // unreachable: zeros were rejected above
	}
	// Backward pass: peel one factor at a time.
	// inv = (x₀·…·xᵢ)⁻¹ entering iteration i, so prefix·inv = xᵢ⁻¹.
	for i := len(xs) - 1; i >= 0; i-- {
		out[i] = out[i].Mul(inv)
		inv = inv.Mul(xs[i])
	}
	return out, nil
}
