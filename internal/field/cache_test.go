package field

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

func TestBasisCacheHitsAndMisses(t *testing.T) {
	c := NewBasisCache()
	xs := []Element{New(1), New(2), New(3)}

	first, err := c.CoefficientsAtZero(xs)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 1 {
		t.Fatalf("after first call: hits=%d misses=%d, want 0/1", hits, misses)
	}
	second, err := c.CoefficientsAtZero(xs)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("after second call: hits=%d misses=%d, want 1/1", hits, misses)
	}
	// A warm hit returns the canonical cached slice, not a recomputation.
	if &first[0] != &second[0] {
		t.Fatal("cache hit returned a different slice")
	}

	// A different set — including a permutation of the same elements — is a
	// distinct entry, because coefficients are positional.
	if _, err := c.CoefficientsAtZero([]Element{New(3), New(2), New(1)}); err != nil {
		t.Fatal(err)
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 2 {
		t.Fatalf("after permuted set: hits=%d misses=%d, want 1/2", hits, misses)
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
}

func TestBasisCacheMatchesUncached(t *testing.T) {
	c := NewBasisCache()
	xs := []Element{New(2), New(5), New(11), New(17)}
	want, err := LagrangeCoefficientsAtZero(xs)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ { // miss then hit
		got, err := c.CoefficientsAtZero(xs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: coeff[%d] = %v, want %v", round, i, got[i], want[i])
			}
		}
	}
}

func TestBasisCacheErrors(t *testing.T) {
	c := NewBasisCache()
	if _, err := c.CoefficientsAtZero(nil); !errors.Is(err, ErrNoPoints) {
		t.Fatalf("empty set: %v", err)
	}
	if _, err := c.CoefficientsAtZero([]Element{New(4), New(4)}); !errors.Is(err, ErrDuplicateX) {
		t.Fatalf("duplicate x: %v", err)
	}
	// Failed computations must not be cached.
	if c.Len() != 0 {
		t.Fatalf("error results were cached: %d entries", c.Len())
	}
}

func TestInterpolateAtZeroCachedMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		p, err := NewRandomPoly(randomCanonical(rng), 6, rng)
		if err != nil {
			t.Fatal(err)
		}
		points := make([]Point, 7)
		for i := range points {
			x := New(uint64(i + 1))
			points[i] = Point{X: x, Y: p.Eval(x)}
		}
		want, err := InterpolateAtZero(points)
		if err != nil {
			t.Fatal(err)
		}
		got, err := InterpolateAtZeroCached(points)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: cached %v, direct %v", trial, got, want)
		}
	}
	if _, err := InterpolateAtZeroCached(nil); !errors.Is(err, ErrNoPoints) {
		t.Fatalf("empty points: %v", err)
	}
}

func TestBasisCacheConcurrent(t *testing.T) {
	c := NewBasisCache()
	want, err := LagrangeCoefficientsAtZero([]Element{New(1), New(2), New(3), New(4)})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				xs := []Element{New(1), New(2), New(3), New(4)}
				got, err := c.CoefficientsAtZero(xs)
				if err != nil {
					t.Error(err)
					return
				}
				for k := range want {
					if got[k] != want[k] {
						t.Errorf("goroutine %d: coeff[%d] = %v, want %v", g, k, got[k], want[k])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if hits, misses := c.Stats(); hits+misses != 8*200 {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, 8*200)
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", c.Len())
	}
}
