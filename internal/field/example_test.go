package field_test

import (
	"fmt"

	"iotmpc/internal/field"
)

// Batch arithmetic moves whole vectors of readings through the field in one
// call — the shape the sharing and aggregation hot paths use.
func ExampleAddVec() {
	temps := []field.Element{field.New(21), field.New(23), field.New(19)}
	humid := []field.Element{field.New(40), field.New(38), field.New(45)}
	sum, err := field.AddVec(temps, humid)
	if err != nil {
		panic(err)
	}
	fmt.Println(sum)
	// Output: [61 61 64]
}

// BatchInvert inverts a whole vector with a single field inversion
// (Montgomery's trick) — the step that makes computing a Lagrange basis
// cheap enough to do per reconstruction set.
func ExampleBatchInvert() {
	xs := []field.Element{field.New(2), field.New(3), field.New(5)}
	invs, err := field.BatchInvert(xs)
	if err != nil {
		panic(err)
	}
	for i := range xs {
		fmt.Println(xs[i].Mul(invs[i]))
	}
	// Output:
	// 1
	// 1
	// 1
}

// ScalarMulVec scales a share vector by a Lagrange coefficient — one term of
// a vectorized reconstruction Σ λᵢ·yᵢ.
func ExampleScalarMulVec() {
	readings := []field.Element{field.New(10), field.New(20)}
	fmt.Println(field.ScalarMulVec(field.New(3), readings))
	// Output: [30 60]
}
