package field

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewReduces(t *testing.T) {
	tests := []struct {
		name string
		in   uint64
		want Element
	}{
		{"zero", 0, 0},
		{"one", 1, 1},
		{"modulus maps to zero", Modulus, 0},
		{"modulus+1 maps to one", Modulus + 1, 1},
		{"max uint64", ^uint64(0), Element(reduce(^uint64(0)))},
		{"below modulus unchanged", Modulus - 1, Element(Modulus - 1)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := New(tt.in); got != tt.want {
				t.Errorf("New(%d) = %v, want %v", tt.in, got, tt.want)
			}
			if got := New(tt.in); uint64(got) >= Modulus {
				t.Errorf("New(%d) = %v not canonical", tt.in, got)
			}
		})
	}
}

func TestFromInt64(t *testing.T) {
	tests := []struct {
		name string
		in   int64
		want Element
	}{
		{"zero", 0, 0},
		{"positive", 42, 42},
		{"negative is additive inverse", -1, Element(Modulus - 1)},
		{"negative 100", -100, Element(Modulus - 100)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := FromInt64(tt.in); got != tt.want {
				t.Errorf("FromInt64(%d) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestFromInt64Roundtrip(t *testing.T) {
	// x + (-x) must cancel.
	for _, v := range []int64{1, 7, 1 << 40, 123456789} {
		if got := FromInt64(v).Add(FromInt64(-v)); got != Zero {
			t.Errorf("FromInt64(%d)+FromInt64(-%d) = %v, want 0", v, v, got)
		}
	}
}

func TestParse(t *testing.T) {
	if _, err := Parse(Modulus); !errors.Is(err, ErrNotCanonical) {
		t.Errorf("Parse(Modulus) error = %v, want ErrNotCanonical", err)
	}
	got, err := Parse(Modulus - 1)
	if err != nil {
		t.Fatalf("Parse(Modulus-1) error = %v", err)
	}
	if got != Element(Modulus-1) {
		t.Errorf("Parse(Modulus-1) = %v", got)
	}
}

func TestAddSubNeg(t *testing.T) {
	a := New(Modulus - 2)
	b := New(5)
	if got := a.Add(b); got != New(3) {
		t.Errorf("wraparound add = %v, want 3", got)
	}
	if got := b.Sub(a); got != New(7) {
		t.Errorf("wraparound sub = %v, want 7", got)
	}
	if got := a.Add(a.Neg()); got != Zero {
		t.Errorf("a + (-a) = %v, want 0", got)
	}
	if got := Zero.Neg(); got != Zero {
		t.Errorf("-0 = %v, want 0", got)
	}
}

func TestMulKnownValues(t *testing.T) {
	tests := []struct {
		a, b, want uint64
	}{
		{0, 12345, 0},
		{1, 12345, 12345},
		{2, Modulus - 1, Modulus - 2}, // 2(p-1) = 2p-2 ≡ p-2
		{3, 3, 9},
		{1 << 30, 1 << 31, 1 << 61 % Modulus}, // 2^61 ≡ 1
	}
	for _, tt := range tests {
		if got := New(tt.a).Mul(New(tt.b)); got != New(tt.want) {
			t.Errorf("%d*%d = %v, want %v", tt.a, tt.b, got, New(tt.want))
		}
	}
}

func TestMersenneIdentity(t *testing.T) {
	// 2^61 ≡ 1 (mod 2^61-1): the core fact reduce128 relies on.
	two := New(2)
	if got := two.Exp(61); got != One {
		t.Errorf("2^61 = %v, want 1", got)
	}
}

func TestInv(t *testing.T) {
	if _, err := Zero.Inv(); !errors.Is(err, ErrDivByZero) {
		t.Errorf("Inv(0) error = %v, want ErrDivByZero", err)
	}
	for _, v := range []uint64{1, 2, 3, 1 << 45, Modulus - 1} {
		e := New(v)
		inv, err := e.Inv()
		if err != nil {
			t.Fatalf("Inv(%d) error = %v", v, err)
		}
		if got := e.Mul(inv); got != One {
			t.Errorf("%d * %d⁻¹ = %v, want 1", v, v, got)
		}
	}
}

func TestDiv(t *testing.T) {
	if _, err := One.Div(Zero); !errors.Is(err, ErrDivByZero) {
		t.Errorf("Div by zero error = %v, want ErrDivByZero", err)
	}
	got, err := New(84).Div(New(2))
	if err != nil {
		t.Fatalf("Div error = %v", err)
	}
	if got != New(42) {
		t.Errorf("84/2 = %v, want 42", got)
	}
}

func TestExp(t *testing.T) {
	tests := []struct {
		base, exp uint64
		want      Element
	}{
		{5, 0, One},
		{5, 1, New(5)},
		{5, 3, New(125)},
		{0, 0, One}, // convention: 0^0 = 1
		{0, 5, Zero},
	}
	for _, tt := range tests {
		if got := New(tt.base).Exp(tt.exp); got != tt.want {
			t.Errorf("%d^%d = %v, want %v", tt.base, tt.exp, got, tt.want)
		}
	}
}

func TestFermat(t *testing.T) {
	// a^(p-1) == 1 for a != 0.
	for _, v := range []uint64{2, 97, 1 << 50} {
		if got := New(v).Exp(Modulus - 1); got != One {
			t.Errorf("%d^(p-1) = %v, want 1", v, got)
		}
	}
}

func TestSum(t *testing.T) {
	if got := Sum(nil); got != Zero {
		t.Errorf("Sum(nil) = %v, want 0", got)
	}
	if got := Sum([]Element{New(1), New(2), New(3)}); got != New(6) {
		t.Errorf("Sum = %v, want 6", got)
	}
	// Wraparound.
	if got := Sum([]Element{New(Modulus - 1), New(2)}); got != One {
		t.Errorf("wrap Sum = %v, want 1", got)
	}
}

func TestDot(t *testing.T) {
	got, err := Dot([]Element{New(1), New(2)}, []Element{New(3), New(4)})
	if err != nil {
		t.Fatalf("Dot error = %v", err)
	}
	if got != New(11) {
		t.Errorf("Dot = %v, want 11", got)
	}
	if _, err := Dot([]Element{One}, nil); err == nil {
		t.Error("Dot length mismatch: want error, got nil")
	}
}

// randomCanonical draws a canonical element for property tests.
func randomCanonical(r *rand.Rand) Element {
	for {
		v := r.Uint64() >> 3
		if v < Modulus {
			return Element(v)
		}
	}
}

func TestPropAddCommutative(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b := randomCanonical(r), randomCanonical(r)
		if a.Add(b) != b.Add(a) {
			t.Fatalf("add not commutative: %v, %v", a, b)
		}
	}
}

func TestPropMulCommutativeAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		a, b, c := randomCanonical(r), randomCanonical(r), randomCanonical(r)
		if a.Mul(b) != b.Mul(a) {
			t.Fatalf("mul not commutative: %v, %v", a, b)
		}
		if a.Mul(b).Mul(c) != a.Mul(b.Mul(c)) {
			t.Fatalf("mul not associative: %v, %v, %v", a, b, c)
		}
	}
}

func TestPropDistributive(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		a, b, c := randomCanonical(r), randomCanonical(r), randomCanonical(r)
		lhs := a.Mul(b.Add(c))
		rhs := a.Mul(b).Add(a.Mul(c))
		if lhs != rhs {
			t.Fatalf("distributivity fails: a=%v b=%v c=%v lhs=%v rhs=%v", a, b, c, lhs, rhs)
		}
	}
}

func TestPropSubAddInverse(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		a, b := randomCanonical(r), randomCanonical(r)
		if a.Sub(b).Add(b) != a {
			t.Fatalf("(a-b)+b != a for a=%v b=%v", a, b)
		}
	}
}

func TestPropInvRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		a := randomCanonical(r)
		if a.IsZero() {
			continue
		}
		inv, err := a.Inv()
		if err != nil {
			t.Fatalf("Inv(%v) error: %v", a, err)
		}
		if a.Mul(inv) != One {
			t.Fatalf("a·a⁻¹ != 1 for a=%v", a)
		}
	}
}

func TestPropQuickMulMatchesBigIntStyle(t *testing.T) {
	// Cross-check Mul against a shift-and-add ladder that never overflows.
	slowMul := func(a, b Element) Element {
		var acc Element
		for b > 0 {
			if b&1 == 1 {
				acc = acc.Add(a)
			}
			a = a.Double()
			b >>= 1
		}
		return acc
	}
	f := func(x, y uint64) bool {
		a, b := New(x), New(y)
		return a.Mul(b) == slowMul(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
