package field

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// BasisCache memoizes Lagrange basis coefficients at zero, keyed by the
// evaluation-point set. Every reconstruction in an aggregation round — and
// every round of a Monte-Carlo sweep — interpolates over the same handful of
// public-point subsets, so after warm-up a reconstruction is just a dot
// product: no inversions, no basis products.
//
// The cache is safe for concurrent use; the parallel scenario runner hits it
// from every worker goroutine.
type BasisCache struct {
	mu      sync.RWMutex
	entries map[string][]Element
	hits    atomic.Uint64
	misses  atomic.Uint64
}

// maxCacheEntries bounds the cache. Point sets are tiny (≤ n ≤ 45 elements)
// and real workloads touch a few dozen distinct sets, so the bound exists
// only to keep pathological callers from growing the map without limit.
const maxCacheEntries = 4096

// NewBasisCache returns an empty cache.
func NewBasisCache() *BasisCache {
	return &BasisCache{entries: make(map[string][]Element)}
}

// cacheKey serializes a point set. Element order matters: coefficients are
// positional, so [1,2] and [2,1] are distinct entries.
func cacheKey(xs []Element) string {
	buf := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(x))
	}
	return string(buf)
}

// CoefficientsAtZero returns the Lagrange weights λᵢ with P(0) = Σ λᵢ·yᵢ for
// the given x coordinates, computing and caching them on first sight of the
// set. The returned slice is shared with the cache and MUST be treated as
// read-only; callers only ever feed it to Dot/MulAccVec, which is the point.
func (c *BasisCache) CoefficientsAtZero(xs []Element) ([]Element, error) {
	key := cacheKey(xs)
	c.mu.RLock()
	coeffs, ok := c.entries[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return coeffs, nil
	}
	// Compute outside the lock; duplicate work on a race is harmless (both
	// goroutines derive the same coefficients).
	coeffs, err := LagrangeCoefficientsAtZero(xs)
	if err != nil {
		return nil, err
	}
	c.misses.Add(1)
	c.mu.Lock()
	if existing, ok := c.entries[key]; ok {
		coeffs = existing // lost the race; keep the canonical slice
	} else {
		if len(c.entries) >= maxCacheEntries {
			// Evict an arbitrary entry rather than grow without bound.
			for k := range c.entries {
				delete(c.entries, k)
				break
			}
		}
		c.entries[key] = coeffs
	}
	c.mu.Unlock()
	return coeffs, nil
}

// Stats returns the cumulative hit and miss counts.
func (c *BasisCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of cached point sets.
func (c *BasisCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// zeroBasis is the process-wide cache behind CachedCoefficientsAtZero.
var zeroBasis = NewBasisCache()

// CachedCoefficientsAtZero is CoefficientsAtZero on a shared process-wide
// cache — the entry point the Shamir hot path uses.
func CachedCoefficientsAtZero(xs []Element) ([]Element, error) {
	return zeroBasis.CoefficientsAtZero(xs)
}

// InterpolateAtZeroCached reconstructs P(0) through the shared coefficient
// cache: a warm call is one dot product. It is the drop-in fast path for
// InterpolateAtZero when many polynomials share an evaluation-point set.
func InterpolateAtZeroCached(points []Point) (Element, error) {
	if len(points) == 0 {
		return 0, ErrNoPoints
	}
	xs := make([]Element, len(points))
	ys := make([]Element, len(points))
	for i, pt := range points {
		xs[i] = pt.X
		ys[i] = pt.Y
	}
	coeffs, err := CachedCoefficientsAtZero(xs)
	if err != nil {
		return 0, err
	}
	return Dot(coeffs, ys)
}
