package field

import (
	"math/rand"
	"testing"
)

func benchElements(n int) []Element {
	rng := rand.New(rand.NewSource(1))
	out := make([]Element, n)
	for i := range out {
		out[i] = randomCanonical(rng)
	}
	return out
}

func BenchmarkMul(b *testing.B) {
	xs := benchElements(1024)
	b.ResetTimer()
	var acc Element
	for i := 0; i < b.N; i++ {
		acc = acc.Add(xs[i%1024].Mul(xs[(i+1)%1024]))
	}
	_ = acc
}

func BenchmarkInv(b *testing.B) {
	xs := benchElements(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xs[i%1024].Inv(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPolyEval(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	for _, degree := range []int{8, 15} {
		p, err := NewRandomPoly(New(1), degree, rng)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(map[int]string{8: "k=8(flocklab)", 15: "k=15(dcube)"}[degree], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = p.Eval(New(uint64(i + 1)))
			}
		})
	}
}

func BenchmarkInterpolateAtZero(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for _, k := range []int{8, 15} {
		p, err := NewRandomPoly(New(12345), k, rng)
		if err != nil {
			b.Fatal(err)
		}
		points := make([]Point, k+1)
		for i := range points {
			x := New(uint64(i + 1))
			points[i] = Point{X: x, Y: p.Eval(x)}
		}
		b.Run(map[int]string{8: "k=8(flocklab)", 15: "k=15(dcube)"}[k], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := InterpolateAtZero(points); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
