package field

import (
	"math/rand"
	"testing"
)

func benchElements(n int) []Element {
	rng := rand.New(rand.NewSource(1))
	out := make([]Element, n)
	for i := range out {
		out[i] = randomCanonical(rng)
	}
	return out
}

func BenchmarkMul(b *testing.B) {
	xs := benchElements(1024)
	b.ResetTimer()
	var acc Element
	for i := 0; i < b.N; i++ {
		acc = acc.Add(xs[i%1024].Mul(xs[(i+1)%1024]))
	}
	_ = acc
}

func BenchmarkInv(b *testing.B) {
	xs := benchElements(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xs[i%1024].Inv(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPolyEval(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	for _, degree := range []int{8, 15} {
		p, err := NewRandomPoly(New(1), degree, rng)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(map[int]string{8: "k=8(flocklab)", 15: "k=15(dcube)"}[degree], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = p.Eval(New(uint64(i + 1)))
			}
		})
	}
}

func BenchmarkInterpolateAtZero(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for _, k := range []int{8, 15} {
		p, err := NewRandomPoly(New(12345), k, rng)
		if err != nil {
			b.Fatal(err)
		}
		points := make([]Point, k+1)
		for i := range points {
			x := New(uint64(i + 1))
			points[i] = Point{X: x, Y: p.Eval(x)}
		}
		b.Run(map[int]string{8: "k=8(flocklab)", 15: "k=15(dcube)"}[k], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := InterpolateAtZero(points); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Scalar-vs-batched comparisons. The batch entry points exist to beat these
// scalar loops; run with -bench 'Vec|BatchInvert|Lagrange' to confirm.

func BenchmarkAddScalarLoop(b *testing.B) {
	// Scalar baseline for AddVec: build the result vector element by element,
	// allocating the destination as AddVec's contract does.
	xs := benchElements(1024)
	ys := benchElements(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := make([]Element, len(xs))
		for j := range xs {
			out[j] = xs[j].Add(ys[j])
		}
		_ = out
	}
}

func BenchmarkAddVec(b *testing.B) {
	xs := benchElements(1024)
	ys := benchElements(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AddVec(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccumulateVec(b *testing.B) {
	// The allocation-free aggregation inner loop (dst += src).
	xs := benchElements(1024)
	dst := make([]Element, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := AccumulateVec(dst, xs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInvertScalarLoop(b *testing.B) {
	xs := benchElements(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range xs {
			if _, err := x.Inv(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkBatchInvert(b *testing.B) {
	xs := benchElements(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BatchInvert(xs); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPoints(k int) []Point {
	rng := rand.New(rand.NewSource(3))
	p, err := NewRandomPoly(New(12345), k, rng)
	if err != nil {
		panic(err)
	}
	points := make([]Point, k+1)
	for i := range points {
		x := New(uint64(i + 1))
		points[i] = Point{X: x, Y: p.Eval(x)}
	}
	return points
}

func BenchmarkInterpolateAtZeroUncached(b *testing.B) {
	points := benchPoints(15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := InterpolateAtZero(points); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpolateAtZeroCached(b *testing.B) {
	points := benchPoints(15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := InterpolateAtZeroCached(points); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLagrangeCoefficientsAtZero(b *testing.B) {
	xs := make([]Element, 16)
	for i := range xs {
		xs[i] = New(uint64(i + 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LagrangeCoefficientsAtZero(xs); err != nil {
			b.Fatal(err)
		}
	}
}
