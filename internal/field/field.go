// Package field implements arithmetic over the prime field GF(p) with
// p = 2^61 - 1 (a Mersenne prime), together with polynomial evaluation and
// Lagrange interpolation. It is the algebraic substrate for Shamir Secret
// Sharing: secrets, shares and public points are all field elements.
//
// The Mersenne prime 2^61-1 was chosen because products of two 61-bit values
// fit in 128 bits (available via math/bits.Mul64) and reduction modulo a
// Mersenne prime needs only shifts and adds, so every operation is branch-light
// and constant-time-ish — appropriate for the resource-constrained IoT setting
// the paper targets while still leaving 61 bits of headroom for aggregating
// thousands of sensor readings without wrap-around ambiguity.
package field

import (
	"errors"
	"fmt"
	"math/bits"
)

// Modulus is the field prime p = 2^61 - 1.
const Modulus uint64 = (1 << 61) - 1

// Element is a field element in the canonical range [0, Modulus).
type Element uint64

// Common constants.
const (
	// Zero is the additive identity.
	Zero Element = 0
	// One is the multiplicative identity.
	One Element = 1
)

// Errors returned by field operations.
var (
	// ErrDivByZero is returned when inverting or dividing by zero.
	ErrDivByZero = errors.New("field: division by zero")
	// ErrNotCanonical is returned when parsing a value >= Modulus.
	ErrNotCanonical = errors.New("field: value out of canonical range")
)

// New reduces an arbitrary uint64 into the field.
func New(v uint64) Element {
	return Element(reduce(v))
}

// FromInt64 maps a signed integer into the field; negative values map to
// their additive inverses, which lets callers aggregate signed sensor
// readings (e.g. temperature deltas) without special cases.
func FromInt64(v int64) Element {
	if v >= 0 {
		return New(uint64(v))
	}
	return New(uint64(-v)).Neg()
}

// Parse validates that v is already canonical and converts it.
func Parse(v uint64) (Element, error) {
	if v >= Modulus {
		return 0, fmt.Errorf("%w: %d", ErrNotCanonical, v)
	}
	return Element(v), nil
}

// reduce folds a uint64 into [0, Modulus) using the Mersenne structure:
// x mod (2^61-1) == (x >> 61) + (x & Modulus), applied until canonical.
func reduce(x uint64) uint64 {
	x = (x >> 61) + (x & Modulus)
	if x >= Modulus {
		x -= Modulus
	}
	return x
}

// reduce128 folds a 128-bit product (hi, lo) into [0, Modulus).
// Write the product as hi*2^64 + lo. Since 2^64 = 8*2^61 ≡ 8 (mod p),
// hi*2^64 + lo ≡ 8*hi + lo. We fold in two passes to stay in range.
func reduce128(hi, lo uint64) uint64 {
	// lo = a*2^61 + b with b < 2^61  =>  lo ≡ a + b.
	a := lo >> 61
	b := lo & Modulus
	// hi < 2^58 for products of two canonical (<2^61) elements, so
	// 8*hi < 2^61 and the sum below cannot overflow 64 bits.
	s := (hi << 3) + a + b
	return reduce(s)
}

// Uint64 returns the canonical representative.
func (e Element) Uint64() uint64 { return uint64(e) }

// IsZero reports whether e is the additive identity.
func (e Element) IsZero() bool { return e == 0 }

// Add returns e + o (mod p).
func (e Element) Add(o Element) Element {
	s := uint64(e) + uint64(o) // < 2^62, no overflow
	if s >= Modulus {
		s -= Modulus
	}
	return Element(s)
}

// Sub returns e - o (mod p).
func (e Element) Sub(o Element) Element {
	if e >= o {
		return e - o
	}
	return e + Element(Modulus) - o
}

// Neg returns -e (mod p).
func (e Element) Neg() Element {
	if e == 0 {
		return 0
	}
	return Element(Modulus) - e
}

// Mul returns e * o (mod p).
func (e Element) Mul(o Element) Element {
	hi, lo := bits.Mul64(uint64(e), uint64(o))
	return Element(reduce128(hi, lo))
}

// Square returns e² (mod p).
func (e Element) Square() Element { return e.Mul(e) }

// Double returns 2e (mod p).
func (e Element) Double() Element { return e.Add(e) }

// Exp returns e^k (mod p) by square-and-multiply.
func (e Element) Exp(k uint64) Element {
	result := One
	base := e
	for k > 0 {
		if k&1 == 1 {
			result = result.Mul(base)
		}
		base = base.Square()
		k >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse e^(p-2) via Fermat's little theorem.
func (e Element) Inv() (Element, error) {
	if e == 0 {
		return 0, ErrDivByZero
	}
	return e.Exp(Modulus - 2), nil
}

// Div returns e / o (mod p).
func (e Element) Div(o Element) (Element, error) {
	inv, err := o.Inv()
	if err != nil {
		return 0, err
	}
	return e.Mul(inv), nil
}

// String implements fmt.Stringer.
func (e Element) String() string {
	return fmt.Sprintf("%d", uint64(e))
}

// Sum adds a slice of elements. A nil or empty slice sums to Zero, which is
// what the aggregation pipeline relies on for absent contributions.
func Sum(elems []Element) Element {
	var acc Element
	for _, e := range elems {
		acc = acc.Add(e)
	}
	return acc
}

// Dot returns the inner product Σ aᵢ·bᵢ. The two slices must have equal
// length; extra entries in the longer slice would silently change the result,
// so mismatch is an error.
func Dot(a, b []Element) (Element, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("field: dot length mismatch %d vs %d", len(a), len(b))
	}
	var acc Element
	for i := range a {
		acc = acc.Add(a[i].Mul(b[i]))
	}
	return acc, nil
}
