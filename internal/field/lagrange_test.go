package field

import (
	"errors"
	"math/rand"
	"testing"
)

func TestInterpolateAtZeroRecoversSecret(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	secret := New(987654321)
	p, err := NewRandomPoly(secret, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	points := make([]Point, 4)
	for i := range points {
		x := New(uint64(i + 1))
		points[i] = Point{X: x, Y: p.Eval(x)}
	}
	got, err := InterpolateAtZero(points)
	if err != nil {
		t.Fatalf("InterpolateAtZero error = %v", err)
	}
	if got != secret {
		t.Errorf("recovered = %v, want %v", got, secret)
	}
}

func TestInterpolateAnySubsetOfKPlus1(t *testing.T) {
	// Degree-k polynomial is recoverable from ANY k+1 of n points — the
	// fault-tolerance property S4 exploits.
	rng := rand.New(rand.NewSource(2))
	const k, n = 4, 10
	secret := New(5555)
	p, err := NewRandomPoly(secret, k, rng)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]Point, n)
	for i := range all {
		x := New(uint64(i + 1))
		all[i] = Point{X: x, Y: p.Eval(x)}
	}
	// Try several random (k+1)-subsets.
	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(n)[:k+1]
		subset := make([]Point, k+1)
		for i, idx := range perm {
			subset[i] = all[idx]
		}
		got, err := InterpolateAtZero(subset)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got != secret {
			t.Fatalf("trial %d: recovered %v, want %v", trial, got, secret)
		}
	}
}

func TestInterpolateTooFewPointsWrongSecret(t *testing.T) {
	// With only k points of a degree-k polynomial the secret is information-
	// theoretically hidden; interpolation of fewer points must (generically)
	// NOT return the secret. This is the privacy property.
	rng := rand.New(rand.NewSource(3))
	const k = 5
	secret := New(424242)
	p, err := NewRandomPoly(secret, k, rng)
	if err != nil {
		t.Fatal(err)
	}
	points := make([]Point, k) // one fewer than needed
	for i := range points {
		x := New(uint64(i + 1))
		points[i] = Point{X: x, Y: p.Eval(x)}
	}
	got, err := InterpolateAtZero(points)
	if err != nil {
		t.Fatal(err)
	}
	if got == secret {
		t.Error("k points recovered a degree-k secret; collusion threshold broken")
	}
}

func TestInterpolateErrors(t *testing.T) {
	if _, err := InterpolateAtZero(nil); !errors.Is(err, ErrNoPoints) {
		t.Errorf("empty: error = %v, want ErrNoPoints", err)
	}
	dup := []Point{{X: One, Y: One}, {X: One, Y: New(2)}}
	if _, err := InterpolateAtZero(dup); !errors.Is(err, ErrDuplicateX) {
		t.Errorf("dup: error = %v, want ErrDuplicateX", err)
	}
}

func TestInterpolateAtArbitraryPoint(t *testing.T) {
	p := Poly{New(7), New(0), New(1)} // 7 + x²
	points := []Point{
		{X: New(1), Y: p.Eval(New(1))},
		{X: New(2), Y: p.Eval(New(2))},
		{X: New(3), Y: p.Eval(New(3))},
	}
	got, err := InterpolateAt(points, New(10))
	if err != nil {
		t.Fatal(err)
	}
	if got != New(107) {
		t.Errorf("P(10) = %v, want 107", got)
	}
}

func TestLagrangeCoefficientsAtZero(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p, err := NewRandomPoly(New(31337), 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	xs := []Element{New(2), New(5), New(7), New(11)}
	coeffs, err := LagrangeCoefficientsAtZero(xs)
	if err != nil {
		t.Fatal(err)
	}
	ys := p.EvalMany(xs)
	got, err := Dot(coeffs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if got != New(31337) {
		t.Errorf("Σλy = %v, want 31337", got)
	}
}

func TestLagrangeCoefficientsErrors(t *testing.T) {
	if _, err := LagrangeCoefficientsAtZero(nil); !errors.Is(err, ErrNoPoints) {
		t.Errorf("empty: %v, want ErrNoPoints", err)
	}
	if _, err := LagrangeCoefficientsAtZero([]Element{One, One}); !errors.Is(err, ErrDuplicateX) {
		t.Errorf("dup: %v, want ErrDuplicateX", err)
	}
}

func TestInterpolateFullPolynomial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	orig, err := NewRandomPoly(New(99), 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	points := make([]Point, 5)
	for i := range points {
		x := New(uint64(i + 3))
		points[i] = Point{X: x, Y: orig.Eval(x)}
	}
	rec, err := Interpolate(points)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != len(orig) {
		t.Fatalf("recovered degree %d, want %d", rec.Degree(), orig.Degree())
	}
	for i := range orig {
		if rec[i] != orig[i] {
			t.Errorf("coefficient %d = %v, want %v", i, rec[i], orig[i])
		}
	}
}

func TestInterpolateFullErrors(t *testing.T) {
	if _, err := Interpolate(nil); !errors.Is(err, ErrNoPoints) {
		t.Errorf("empty: %v", err)
	}
	dup := []Point{{X: New(3), Y: One}, {X: New(3), Y: New(2)}}
	if _, err := Interpolate(dup); !errors.Is(err, ErrDuplicateX) {
		t.Errorf("dup: %v", err)
	}
}

func TestPropInterpolateRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		deg := rng.Intn(8)
		secret := randomCanonical(rng)
		p, err := NewRandomPoly(secret, deg, rng)
		if err != nil {
			t.Fatal(err)
		}
		points := make([]Point, deg+1)
		used := map[Element]struct{}{}
		for i := range points {
			var x Element
			for {
				x = New(uint64(rng.Intn(1000) + 1))
				if _, dup := used[x]; !dup {
					break
				}
			}
			used[x] = struct{}{}
			points[i] = Point{X: x, Y: p.Eval(x)}
		}
		got, err := InterpolateAtZero(points)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got != secret {
			t.Fatalf("trial %d: got %v want %v", trial, got, secret)
		}
	}
}
