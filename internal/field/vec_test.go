package field

import (
	"errors"
	"math/rand"
	"testing"
)

func TestVecOpsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := make([]Element, 257)
	b := make([]Element, 257)
	for i := range a {
		a[i] = randomCanonical(rng)
		b[i] = randomCanonical(rng)
	}

	sum, err := AddVec(a, b)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := SubVec(a, b)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := MulVec(a, b)
	if err != nil {
		t.Fatal(err)
	}
	c := randomCanonical(rng)
	scaled := ScalarMulVec(c, a)
	for i := range a {
		if sum[i] != a[i].Add(b[i]) {
			t.Fatalf("AddVec[%d] = %v, want %v", i, sum[i], a[i].Add(b[i]))
		}
		if diff[i] != a[i].Sub(b[i]) {
			t.Fatalf("SubVec[%d] = %v, want %v", i, diff[i], a[i].Sub(b[i]))
		}
		if prod[i] != a[i].Mul(b[i]) {
			t.Fatalf("MulVec[%d] = %v, want %v", i, prod[i], a[i].Mul(b[i]))
		}
		if scaled[i] != c.Mul(a[i]) {
			t.Fatalf("ScalarMulVec[%d] = %v, want %v", i, scaled[i], c.Mul(a[i]))
		}
	}
}

func TestVecOpsEmpty(t *testing.T) {
	for name, fn := range map[string]func(a, b []Element) ([]Element, error){
		"AddVec": AddVec, "SubVec": SubVec, "MulVec": MulVec,
	} {
		out, err := fn([]Element{}, nil)
		if err != nil {
			t.Fatalf("%s on empty: %v", name, err)
		}
		if out == nil || len(out) != 0 {
			t.Fatalf("%s on empty: got %v, want empty non-nil", name, out)
		}
	}
	if out := ScalarMulVec(One, nil); len(out) != 0 {
		t.Fatalf("ScalarMulVec on nil: got %v", out)
	}
	if err := AccumulateVec(nil, nil); err != nil {
		t.Fatalf("AccumulateVec on nil: %v", err)
	}
	out, err := BatchInvert(nil)
	if err != nil {
		t.Fatalf("BatchInvert on nil: %v", err)
	}
	if len(out) != 0 {
		t.Fatalf("BatchInvert on nil: got %v", out)
	}
}

func TestVecOpsLengthMismatch(t *testing.T) {
	a := []Element{One, One}
	b := []Element{One}
	if _, err := AddVec(a, b); !errors.Is(err, ErrLenMismatch) {
		t.Fatalf("AddVec mismatch: %v", err)
	}
	if _, err := SubVec(a, b); !errors.Is(err, ErrLenMismatch) {
		t.Fatalf("SubVec mismatch: %v", err)
	}
	if _, err := MulVec(a, b); !errors.Is(err, ErrLenMismatch) {
		t.Fatalf("MulVec mismatch: %v", err)
	}
	if err := AccumulateVec(a, b); !errors.Is(err, ErrLenMismatch) {
		t.Fatalf("AccumulateVec mismatch: %v", err)
	}
	if err := MulAccVec(a, One, b); !errors.Is(err, ErrLenMismatch) {
		t.Fatalf("MulAccVec mismatch: %v", err)
	}
}

func TestAccumulateAndMulAcc(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	dst := make([]Element, 64)
	src := make([]Element, 64)
	want := make([]Element, 64)
	for i := range dst {
		dst[i] = randomCanonical(rng)
		src[i] = randomCanonical(rng)
		want[i] = dst[i]
	}
	c := randomCanonical(rng)
	if err := AccumulateVec(dst, src); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		want[i] = want[i].Add(src[i])
		if dst[i] != want[i] {
			t.Fatalf("AccumulateVec[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
	if err := MulAccVec(dst, c, src); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		want[i] = want[i].Add(c.Mul(src[i]))
		if dst[i] != want[i] {
			t.Fatalf("MulAccVec[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestBatchInvertMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 2, 3, 17, 128} {
		xs := make([]Element, n)
		for i := range xs {
			for xs[i].IsZero() {
				xs[i] = randomCanonical(rng)
			}
		}
		invs, err := BatchInvert(xs)
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range xs {
			want, err := x.Inv()
			if err != nil {
				t.Fatal(err)
			}
			if invs[i] != want {
				t.Fatalf("n=%d: BatchInvert[%d] = %v, want %v", n, i, invs[i], want)
			}
			if got := x.Mul(invs[i]); got != One {
				t.Fatalf("n=%d: x·x⁻¹ = %v", n, got)
			}
		}
	}
}

func TestBatchInvertZeroElement(t *testing.T) {
	xs := []Element{New(3), Zero, New(7)}
	if _, err := BatchInvert(xs); !errors.Is(err, ErrZeroInBatch) {
		t.Fatalf("expected ErrZeroInBatch, got %v", err)
	}
	// The input must be untouched so callers can diagnose.
	if xs[0] != New(3) || xs[1] != Zero || xs[2] != New(7) {
		t.Fatalf("input mutated: %v", xs)
	}
	// Zero in the first and last positions too.
	if _, err := BatchInvert([]Element{Zero}); !errors.Is(err, ErrZeroInBatch) {
		t.Fatalf("expected ErrZeroInBatch, got %v", err)
	}
	if _, err := BatchInvert([]Element{One, Zero}); !errors.Is(err, ErrZeroInBatch) {
		t.Fatalf("expected ErrZeroInBatch, got %v", err)
	}
}
