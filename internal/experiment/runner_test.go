package experiment

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"iotmpc/internal/core"
	"iotmpc/internal/sim"
)

// recordingSink captures the full sink stream for assertions.
type recordingSink struct {
	plan    Plan
	results []ScenarioResult
	summary RunSummary
	started int
	ended   int
}

func (r *recordingSink) OnStart(p Plan) error {
	r.started++
	r.plan = p
	return nil
}

func (r *recordingSink) OnResult(res ScenarioResult) error {
	r.results = append(r.results, res)
	return nil
}

func (r *recordingSink) OnFinish(s RunSummary) error {
	r.ended++
	r.summary = s
	return nil
}

func runnerMatrix() Matrix {
	return Matrix{
		NodeCounts: []int{10, 14},
		LossRates:  []float64{0.1, 0.3},
		Protocols:  []core.Protocol{core.S4},
		Iterations: 3,
		Seed:       7,
	}
}

// stripCached clears the runtime cache flag so cached and computed runs can
// be compared value-for-value.
func stripCached(results []ScenarioResult) []ScenarioResult {
	out := append([]ScenarioResult(nil), results...)
	for i := range out {
		out[i].Cached = false
	}
	return out
}

func TestRunnerSinkOrderingAcrossWorkerCounts(t *testing.T) {
	var baseline []ScenarioResult
	for _, workers := range []int{1, 3, 8} {
		sink := &recordingSink{}
		results, err := NewRunner(WithWorkers(workers), WithSinks(sink)).Run(runnerMatrix())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if sink.started != 1 || sink.ended != 1 {
			t.Fatalf("workers=%d: OnStart/OnFinish called %d/%d times", workers, sink.started, sink.ended)
		}
		// The emitted stream is exactly the result slice, in index order.
		if !reflect.DeepEqual(sink.results, results) {
			t.Fatalf("workers=%d: sink stream diverged from returned results", workers)
		}
		for i, r := range sink.results {
			if r.Scenario.Index != i {
				t.Fatalf("workers=%d: emission %d carries index %d", workers, i, r.Scenario.Index)
			}
		}
		if baseline == nil {
			baseline = results
		} else if !reflect.DeepEqual(baseline, results) {
			t.Fatalf("workers=%d: results differ from workers=1", workers)
		}
	}
}

func TestRunnerTrialWorkersDeterminism(t *testing.T) {
	// Trial-level fan-out (cmd/mpcsim's knob) must not change a single bit.
	m := Matrix{
		NodeCounts: []int{10},
		Protocols:  []core.Protocol{core.S4},
		Iterations: 6,
		Seed:       3,
	}
	seq, err := NewRunner(WithTrialWorkers(1)).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewRunner(WithTrialWorkers(4)).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("trial workers changed results")
	}
}

func TestRunnerCacheColdThenWarm(t *testing.T) {
	dir := t.TempDir()
	m := runnerMatrix()

	cold := &recordingSink{}
	first, err := NewRunner(WithCache(dir), WithSinks(cold)).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if cold.summary.CacheHits != 0 || cold.summary.Computed != len(first) {
		t.Fatalf("cold run summary: %+v", cold.summary)
	}

	warm := &recordingSink{}
	second, err := NewRunner(WithCache(dir), WithSinks(warm)).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	// The acceptance bar: a repeated sweep is served entirely from cache —
	// zero cells computed, hence zero core.RunRound calls.
	if warm.summary.Computed != 0 || warm.summary.CacheHits != len(second) {
		t.Fatalf("warm run summary: %+v", warm.summary)
	}
	if warm.plan.CacheHits != len(second) {
		t.Fatalf("warm plan advertised %d hits, want %d", warm.plan.CacheHits, len(second))
	}
	for _, r := range second {
		if !r.Cached {
			t.Fatalf("warm cell %d not flagged cached", r.Scenario.Index)
		}
	}
	if !reflect.DeepEqual(first, stripCached(second)) {
		t.Fatal("cached results differ from computed results")
	}

	// An uncached run agrees too (cache must be value-transparent).
	plain, err := RunMatrix(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, first) {
		t.Fatal("cache-enabled run diverged from plain RunMatrix")
	}
}

func TestRunnerCacheInvalidation(t *testing.T) {
	m := Matrix{
		NodeCounts: []int{10},
		Protocols:  []core.Protocol{core.S4},
		Iterations: 2,
		Seed:       7,
	}
	scenarios, err := m.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	baseKey, err := ScenarioCacheKey(scenarios[0])
	if err != nil {
		t.Fatal(err)
	}

	// Changed seed → different cell address.
	reseeded := scenarios[0]
	reseeded.Seed = sim.DeriveSeed(99, 0)
	reseededKey, err := ScenarioCacheKey(reseeded)
	if err != nil {
		t.Fatal(err)
	}
	if reseededKey == baseKey {
		t.Fatal("seed change did not change the cache key")
	}

	// Any swept axis → different cell address.
	verifiable := scenarios[0]
	verifiable.Verifiable = true
	verifiableKey, err := ScenarioCacheKey(verifiable)
	if err != nil {
		t.Fatal(err)
	}
	if verifiableKey == baseKey {
		t.Fatal("verifiable change did not change the cache key")
	}
}

func TestRunnerCacheVersionBumpRecomputes(t *testing.T) {
	// A version bump is simulated by relocating entries under keys derived
	// from a different stamp: the runner must treat every cell as a miss.
	dir := t.TempDir()
	m := Matrix{
		NodeCounts: []int{10},
		Protocols:  []core.Protocol{core.S4},
		Iterations: 2,
		Seed:       7,
	}
	if _, err := NewRunner(WithCache(dir)).Run(m); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := os.Rename(filepath.Join(dir, e.Name()),
			filepath.Join(dir, "stale-"+e.Name())); err != nil {
			t.Fatal(err)
		}
	}
	sink := &recordingSink{}
	if _, err := NewRunner(WithCache(dir), WithSinks(sink)).Run(m); err != nil {
		t.Fatal(err)
	}
	if sink.summary.CacheHits != 0 {
		t.Fatalf("stale entries served as hits: %+v", sink.summary)
	}
}

func TestRunnerCacheCorruptEntryFallsBack(t *testing.T) {
	dir := t.TempDir()
	m := Matrix{
		NodeCounts: []int{10},
		Protocols:  []core.Protocol{core.S4},
		Iterations: 2,
		Seed:       7,
	}
	first, err := NewRunner(WithCache(dir)).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// One entry per cell plus the sweep's manifest index.
	if len(entries) != len(first)+1 {
		t.Fatalf("%d cache entries for %d cells (+1 manifest)", len(entries), len(first))
	}
	for _, e := range entries {
		if err := os.WriteFile(filepath.Join(dir, e.Name()), []byte("corrupt"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	sink := &recordingSink{}
	second, err := NewRunner(WithCache(dir), WithSinks(sink)).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if sink.summary.CacheHits != 0 || sink.summary.Computed != len(second) {
		t.Fatalf("corrupt entries not recomputed: %+v", sink.summary)
	}
	if !reflect.DeepEqual(first, stripCached(second)) {
		t.Fatal("recomputed results differ")
	}
	// The recompute repaired the cache: a third run is all hits again.
	third := &recordingSink{}
	if _, err := NewRunner(WithCache(dir), WithSinks(third)).Run(m); err != nil {
		t.Fatal(err)
	}
	if third.summary.Computed != 0 {
		t.Fatalf("cache not repaired: %+v", third.summary)
	}
}

func TestRunnerManifestFastPath(t *testing.T) {
	dir := t.TempDir()
	m := runnerMatrix()
	first, err := NewRunner(WithCache(dir)).Run(m)
	if err != nil {
		t.Fatal(err)
	}

	// The completed sweep left a manifest; a rerun advertises the whole
	// matrix as cached before execution begins.
	warm := &recordingSink{}
	second, err := NewRunner(WithCache(dir), WithSinks(warm)).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.plan.ManifestHit || warm.plan.CacheHits != len(second) {
		t.Fatalf("manifest not hit: plan %+v", warm.plan)
	}
	if !reflect.DeepEqual(first, stripCached(second)) {
		t.Fatal("manifest-served results differ from computed results")
	}

	// The manifest alone carries the results: delete every per-cell entry
	// and the sweep must still be served without recomputing anything —
	// the O(1)-opens warm path for very large matrices.
	scenarios, err := m.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scenarios {
		key, err := ScenarioCacheKey(sc)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Remove(filepath.Join(dir, key+".json")); err != nil {
			t.Fatal(err)
		}
	}
	bare := &recordingSink{}
	third, err := NewRunner(WithCache(dir), WithSinks(bare)).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bare.plan.ManifestHit || bare.summary.Computed != 0 {
		t.Fatalf("cell-less manifest rerun: plan %+v summary %+v", bare.plan, bare.summary)
	}
	if !reflect.DeepEqual(first, stripCached(third)) {
		t.Fatal("cell-less manifest rerun diverged")
	}

	// A different matrix must miss this manifest.
	other := m
	other.Seed++
	miss := &recordingSink{}
	if _, err := NewRunner(WithCache(dir), WithSinks(miss)).Run(other); err != nil {
		t.Fatal(err)
	}
	if miss.plan.ManifestHit || miss.summary.CacheHits != 0 {
		t.Fatalf("reseeded matrix reused a stale manifest: plan %+v summary %+v",
			miss.plan, miss.summary)
	}
}

func TestRunnerPipelinedProbeDeterminism(t *testing.T) {
	// A partially warm cache with no manifest forces the probe pipeline:
	// hits resolve concurrently with computed cells, and the emitted stream
	// must still be exactly the index-ordered results for any worker count.
	dir := t.TempDir()
	m := runnerMatrix()
	baseline, err := NewRunner(WithCache(dir)).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	scenarios, err := m.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	// Drop the manifest and every even-indexed cell: half hits, half
	// recomputes, all probed while the pool runs.
	keys := make([]string, len(scenarios))
	for i, sc := range scenarios {
		if keys[i], err = ScenarioCacheKey(sc); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Remove(filepath.Join(dir, matrixManifestKey(keys)+".json")); err != nil {
		t.Fatal(err)
	}
	dropped := 0
	for i := range scenarios {
		if i%2 == 0 {
			if err := os.Remove(filepath.Join(dir, keys[i]+".json")); err != nil {
				t.Fatal(err)
			}
			dropped++
		}
	}

	for _, workers := range []int{1, 4, 8} {
		// Each run starts from the same half-warm state: strip the manifest
		// (and the even cells) the previous iteration rewrote.
		if workers > 1 {
			if err := os.Remove(filepath.Join(dir, matrixManifestKey(keys)+".json")); err != nil {
				t.Fatal(err)
			}
			for i := range scenarios {
				if i%2 == 0 {
					if err := os.Remove(filepath.Join(dir, keys[i]+".json")); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		sink := &recordingSink{}
		results, err := NewRunner(WithWorkers(workers), WithCache(dir), WithSinks(sink)).Run(m)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if sink.plan.ManifestHit {
			t.Fatalf("workers=%d: unexpected manifest hit", workers)
		}
		if sink.summary.CacheHits != len(scenarios)-dropped || sink.summary.Computed != dropped {
			t.Fatalf("workers=%d: summary %+v, want %d hits / %d computed",
				workers, sink.summary, len(scenarios)-dropped, dropped)
		}
		if !reflect.DeepEqual(sink.results, results) {
			t.Fatalf("workers=%d: sink stream diverged from returned results", workers)
		}
		for i, r := range sink.results {
			if r.Scenario.Index != i {
				t.Fatalf("workers=%d: emission %d carries index %d", workers, i, r.Scenario.Index)
			}
		}
		if !reflect.DeepEqual(baseline, stripCached(results)) {
			t.Fatalf("workers=%d: results differ from cold baseline", workers)
		}
	}
}

func TestRunnerContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: nothing must dispatch
	_, err := NewRunner(WithContext(ctx)).Run(runnerMatrix())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// failingSink aborts the sweep from OnResult.
type failingSink struct{ recordingSink }

func (f *failingSink) OnResult(ScenarioResult) error { return errors.New("sink full") }

func TestRunnerSinkErrorAborts(t *testing.T) {
	_, err := NewRunner(WithSinks(&failingSink{})).Run(runnerMatrix())
	if err == nil || !strings.Contains(err.Error(), "sink full") {
		t.Fatalf("err = %v, want sink error", err)
	}
}

func TestMatrixNewAxesExpansion(t *testing.T) {
	m := Matrix{
		NodeCounts:   []int{10},
		NTXSharings:  []int{0, 4},
		DestSlacks:   []int{0, 2},
		FailureRates: []float64{0, 0.2},
		Verifiable:   []bool{false, true},
		Protocols:    []core.Protocol{core.S4},
		Iterations:   1,
	}
	scenarios, err := m.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 16 {
		t.Fatalf("expanded %d scenarios, want 16", len(scenarios))
	}
	// Verifiable sits just outside protocol; failure outside that; etc.
	if scenarios[0].Verifiable || !scenarios[1].Verifiable {
		t.Fatalf("verifiable ordering: %v %v", scenarios[0].Verifiable, scenarios[1].Verifiable)
	}
	if scenarios[0].FailureRate != 0 || scenarios[2].FailureRate != 0.2 {
		t.Fatalf("failure ordering: %v %v", scenarios[0].FailureRate, scenarios[2].FailureRate)
	}
	if scenarios[0].DestSlack != 0 || scenarios[4].DestSlack != 2 {
		t.Fatalf("slack ordering: %v %v", scenarios[0].DestSlack, scenarios[4].DestSlack)
	}
	if scenarios[0].NTXSharing != 0 || scenarios[8].NTXSharing != 4 {
		t.Fatalf("ntx ordering: %v %v", scenarios[0].NTXSharing, scenarios[8].NTXSharing)
	}
}

func TestMatrixNewAxesValidation(t *testing.T) {
	cases := []Matrix{
		{NodeCounts: []int{10}, NTXSharings: []int{-1}, Iterations: 1},
		{NodeCounts: []int{10}, DestSlacks: []int{-2}, Iterations: 1},
		{NodeCounts: []int{10}, FailureRates: []float64{1.0}, Iterations: 1},
		{NodeCounts: []int{10}, FailureRates: []float64{-0.1}, Iterations: 1},
	}
	for i, m := range cases {
		if _, err := m.Scenarios(); !errors.Is(err, ErrBadSpec) {
			t.Fatalf("case %d: %v", i, err)
		}
	}
}

func TestRunScenarioFailureInjection(t *testing.T) {
	base := Scenario{Nodes: 12, Protocol: core.S4, Iterations: 4, Seed: sim.DeriveSeed(5, 0)}
	faulty := base
	faulty.FailureRate = 0.25

	healthy, err := RunScenario(base)
	if err != nil {
		t.Fatal(err)
	}
	crashed, err := RunScenario(faulty)
	if err != nil {
		t.Fatal(err)
	}
	// Repeatability of the failure draw.
	again, err := RunScenario(faulty)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(crashed, again) {
		t.Fatal("failure injection not deterministic")
	}
	if reflect.DeepEqual(healthy, crashed) {
		t.Fatal("failure rate 0.25 changed nothing")
	}
}

func TestScenarioRolesFailureCountFloor(t *testing.T) {
	// 0.58*50 is 28.999999999999996 in binary floating point; the crash
	// count must still be the documented ⌊0.58·50⌋ = 29.
	failed, sources, err := scenarioRoles(Scenario{FailureRate: 0.58, Seed: 1}, 50)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, f := range failed {
		if f {
			count++
		}
	}
	if count != 29 {
		t.Fatalf("crashed %d nodes, want 29", count)
	}
	if failed[0] {
		t.Fatal("initiator crashed")
	}
	if len(sources) != 50-29 {
		t.Fatalf("%d sources, want %d survivors", len(sources), 50-29)
	}
	for _, s := range sources {
		if failed[s] {
			t.Fatalf("source %d is crashed", s)
		}
	}
}

func TestRunScenarioVerifiableMode(t *testing.T) {
	base := Scenario{Nodes: 10, Protocol: core.S4, Iterations: 2, Seed: sim.DeriveSeed(5, 0)}
	vss := base
	vss.Verifiable = true
	plain, err := RunScenario(base)
	if err != nil {
		t.Fatal(err)
	}
	verified, err := RunScenario(vss)
	if err != nil {
		t.Fatal(err)
	}
	// The commitment chain is pure added airtime: radio-on must grow.
	if verified.RadioOnMS.Mean <= plain.RadioOnMS.Mean {
		t.Fatalf("verifiable radio-on %.2f <= plain %.2f",
			verified.RadioOnMS.Mean, plain.RadioOnMS.Mean)
	}
}

func TestRunScenarioNamedTestbed(t *testing.T) {
	sc := Scenario{Testbed: "flocklab", Protocol: core.S4, SourceCount: 6, Iterations: 2, Seed: 1}
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenario.Nodes != 26 {
		t.Fatalf("flocklab scenario normalized to %d nodes, want 26", res.Scenario.Nodes)
	}
	bad := sc
	bad.Nodes = 7
	if _, err := RunScenario(bad); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("node/testbed mismatch accepted: %v", err)
	}
	bad = sc
	bad.Testbed = "atlantis"
	if _, err := RunScenario(bad); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("unknown testbed accepted: %v", err)
	}
}

func TestMatrixCSVQuotesCommaBackend(t *testing.T) {
	// The encoding/csv satellite: a backend spec containing commas must
	// survive a CSV round trip as one field.
	res := ScenarioResult{Scenario: Scenario{
		Index: 0, Backend: "trace:path,with,commas.csv", Nodes: 10,
		Protocol: core.S4, Iterations: 1,
	}}
	out := MatrixCSV([]ScenarioResult{res})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want 2:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], `"trace:path,with,commas.csv"`) {
		t.Fatalf("backend spec not quoted: %s", lines[1])
	}
	// And it parses back to the schema's field count.
	fields := len(matrixCSVHeader)
	if got := strings.Count(lines[0], ",") + 1; got != fields {
		t.Fatalf("header has %d fields, want %d", got, fields)
	}
}

func TestRunnerManifestWriteErrorTrackedSeparately(t *testing.T) {
	// A directory squatting at the manifest path: Get treats the non-file as
	// a miss (malformed store, not an I/O fault), the sweep runs cold, every
	// CELL write succeeds, and only the final manifest rename fails. The
	// summary must pin the failure on the manifest alone — before the fix it
	// was folded into CacheWriteErrors, misreporting persisted cells as lost.
	dir := t.TempDir()
	m := runnerMatrix()
	scenarios, err := m.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	keys, err := scenarioKeys(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, matrixManifestKey(keys)+".json"), 0o755); err != nil {
		t.Fatal(err)
	}

	var progress strings.Builder
	sink := &recordingSink{}
	results, err := NewRunner(WithCache(dir),
		WithSinks(sink, &ProgressSink{W: &progress})).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if !sink.summary.ManifestWriteError {
		t.Fatalf("manifest write failure not reported: %+v", sink.summary)
	}
	if sink.summary.CacheWriteErrors != 0 {
		t.Fatalf("manifest failure miscounted as cell write errors: %+v", sink.summary)
	}
	if sink.summary.Computed != len(results) {
		t.Fatalf("summary %+v, want all %d cells computed", sink.summary, len(results))
	}
	if !strings.Contains(progress.String(), "completion manifest could not be persisted") {
		t.Fatalf("progress narration missing manifest warning:\n%s", progress.String())
	}
	// Every cell WAS persisted: the rerun probes them all as hits.
	warm := &recordingSink{}
	if _, err := NewRunner(WithCache(dir), WithSinks(warm)).Run(m); err != nil {
		t.Fatal(err)
	}
	if warm.summary.Computed != 0 || warm.plan.ManifestHit {
		t.Fatalf("rerun after manifest failure: plan %+v summary %+v", warm.plan, warm.summary)
	}
}

func TestWorkerResolutionIsLazy(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)

	// Both <= 0 sentinels must read GOMAXPROCS at resolution time, not at
	// option-apply time — cmd/mpcsim constructs the Runner before the
	// runtime is (possibly) retuned.
	runtime.GOMAXPROCS(3)
	r := NewRunner(WithWorkers(0), WithTrialWorkers(0))
	runtime.GOMAXPROCS(2)
	if w, tw := r.resolvedWorkers(); w != 2 || tw != 2 {
		t.Fatalf("resolved %d/%d workers, want 2/2 from run-time GOMAXPROCS", w, tw)
	}
	// Defaults: scenario workers follow GOMAXPROCS, trial workers stay 1.
	if w, tw := NewRunner().resolvedWorkers(); w != 2 || tw != 1 {
		t.Fatalf("default resolution %d/%d, want 2/1", w, tw)
	}
	// Explicit positive values pass through untouched.
	if w, tw := NewRunner(WithWorkers(5), WithTrialWorkers(7)).resolvedWorkers(); w != 5 || tw != 7 {
		t.Fatalf("explicit resolution %d/%d, want 5/7", w, tw)
	}
}

// failAfterNSink errors on the nth OnResult — mid-pool, unlike failingSink
// which dies on the very first emission.
type failAfterNSink struct {
	recordingSink
	failAt int
}

func (f *failAfterNSink) OnResult(r ScenarioResult) error {
	if err := f.recordingSink.OnResult(r); err != nil {
		return err
	}
	if len(f.results) >= f.failAt {
		return errors.New("sink failed mid-sweep")
	}
	return nil
}

func TestRunnerMidSweepSinkFailureDrainsAndSkipsManifest(t *testing.T) {
	dir := t.TempDir()
	m := runnerMatrix()
	scenarios, err := m.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	keys, err := scenarioKeys(scenarios)
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	_, err = NewRunner(WithCache(dir), WithSinks(&failAfterNSink{failAt: 2})).Run(m)
	if err == nil || !strings.Contains(err.Error(), "sink failed mid-sweep") {
		t.Fatalf("err = %v, want mid-sweep sink error", err)
	}

	// The aborted sweep must not leave a completion manifest: a rerun that
	// trusted one would replay the very results the sink never accepted.
	if _, statErr := os.Stat(filepath.Join(dir, matrixManifestKey(keys)+".json")); !os.IsNotExist(statErr) {
		t.Fatalf("aborted sweep left a manifest (stat err = %v)", statErr)
	}

	// And the pool must drain: every prober/dispatcher/worker goroutine
	// exits once the stop channel closes and the collector consumes the
	// remaining completion messages.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after sink failure: %d running, %d before",
				runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRunnerSurfacesCacheReadErrors(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("permission bits do not bind root; the cache package covers the classification with ENOTDIR")
	}
	dir := t.TempDir()
	m := runnerMatrix()
	if _, err := NewRunner(WithCache(dir)).Run(m); err != nil {
		t.Fatal(err)
	}
	scenarios, err := m.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	keys, err := scenarioKeys(scenarios)
	if err != nil {
		t.Fatal(err)
	}

	// An unreadable manifest is an error before execution begins.
	manifestPath := filepath.Join(dir, matrixManifestKey(keys)+".json")
	if err := os.Chmod(manifestPath, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRunner(WithCache(dir)).Run(m); err == nil || !strings.Contains(err.Error(), "read entry") {
		t.Fatalf("unreadable manifest: err = %v, want surfaced read error", err)
	}

	// An unreadable CELL surfaces from the probe pipeline: the prober's
	// error branch must be live, not degrade to an eternal recompute.
	if err := os.Remove(manifestPath); err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(filepath.Join(dir, keys[0]+".json"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRunner(WithCache(dir)).Run(m); err == nil || !strings.Contains(err.Error(), "read entry") {
		t.Fatalf("unreadable cell: err = %v, want surfaced read error", err)
	}
}
