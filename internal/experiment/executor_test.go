package experiment

import (
	"context"
	"reflect"
	"sync"
	"testing"
)

// lifoExecutor is an adversarially unfair executor: it stacks submitted
// tasks and runs them newest-first on a fixed number of goroutines, i.e.
// the exact opposite of the Runner's own index-order dispatch.
type lifoExecutor struct {
	mu      sync.Mutex
	cond    *sync.Cond
	stack   []CellTask
	closed  bool
	workers sync.WaitGroup
}

func newLIFOExecutor(workers int) *lifoExecutor {
	ex := &lifoExecutor{}
	ex.cond = sync.NewCond(&ex.mu)
	for i := 0; i < workers; i++ {
		ex.workers.Add(1)
		go func() {
			defer ex.workers.Done()
			for {
				ex.mu.Lock()
				for len(ex.stack) == 0 && !ex.closed {
					ex.cond.Wait()
				}
				if len(ex.stack) == 0 && ex.closed {
					ex.mu.Unlock()
					return
				}
				task := ex.stack[len(ex.stack)-1]
				ex.stack = ex.stack[:len(ex.stack)-1]
				ex.mu.Unlock()
				task.Run()
			}
		}()
	}
	return ex
}

func (ex *lifoExecutor) Submit(t CellTask) {
	ex.mu.Lock()
	ex.stack = append(ex.stack, t)
	ex.mu.Unlock()
	ex.cond.Signal()
}

func (ex *lifoExecutor) close() {
	ex.mu.Lock()
	ex.closed = true
	ex.mu.Unlock()
	ex.cond.Broadcast()
	ex.workers.Wait()
}

// TestRunnerWithExecutorIdenticalResults: an external executor only decides
// WHEN cells compute — even a LIFO, concurrent one must leave the emitted
// stream (order and values) exactly as the internal pool produces it.
func TestRunnerWithExecutorIdenticalResults(t *testing.T) {
	m := runnerMatrix()
	want, err := NewRunner(WithWorkers(1)).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		ex := newLIFOExecutor(workers)
		sink := &recordingSink{}
		got, err := NewRunner(WithExecutor(ex), WithSinks(sink)).Run(m)
		ex.close()
		if err != nil {
			t.Fatalf("executor workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("executor workers=%d: results differ from internal pool", workers)
		}
		if !reflect.DeepEqual(sink.results, got) {
			t.Fatalf("executor workers=%d: sink stream diverged", workers)
		}
	}
}

// TestRunnerWithExecutorCancellation: tasks still parked in the executor
// when the context dies must degenerate to skips — Run returns the context
// error without deadlocking and without running the remaining cells.
func TestRunnerWithExecutorCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before dispatch: every cell is either skipped or unprobed
	ex := newLIFOExecutor(1)
	defer ex.close()
	_, err := NewRunner(WithExecutor(ex), WithContext(ctx)).Run(runnerMatrix())
	if err == nil {
		t.Fatal("canceled run returned nil error")
	}
}
