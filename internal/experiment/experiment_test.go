package experiment

import (
	"errors"
	"strings"
	"testing"

	"iotmpc/internal/topology"
)

func TestSpreadSources(t *testing.T) {
	got, err := SpreadSources(26, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 8, 17}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("SpreadSources(26,3) = %v, want %v", got, want)
			break
		}
	}
	full, err := SpreadSources(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range full {
		if v != i {
			t.Errorf("full spread[%d] = %d", i, v)
		}
	}
	if _, err := SpreadSources(5, 6); !errors.Is(err, ErrBadSpec) {
		t.Errorf("oversubscribed: %v, want ErrBadSpec", err)
	}
	if _, err := SpreadSources(5, 0); !errors.Is(err, ErrBadSpec) {
		t.Errorf("zero: %v, want ErrBadSpec", err)
	}
}

func TestRunSweepSmallFlockLab(t *testing.T) {
	spec := FlockLabSweep(2, 1)
	spec.SourceCounts = []int{3, 10} // trimmed for test speed
	res, err := RunSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.LatencyRatio <= 1 {
			t.Errorf("s=%d: S4 not faster (ratio %.2f)", row.Sources, row.LatencyRatio)
		}
		if row.RadioRatio <= 1 {
			t.Errorf("s=%d: S4 not cheaper (ratio %.2f)", row.Sources, row.RadioRatio)
		}
		if row.S3.SuccessRate < 0.99 {
			t.Errorf("s=%d: S3 success %.3f", row.Sources, row.S3.SuccessRate)
		}
		if row.S4.SuccessRate < 0.95 {
			t.Errorf("s=%d: S4 success %.3f", row.Sources, row.S4.SuccessRate)
		}
	}
	// Absolute cost grows with source count for both protocols (the figure's
	// visual signature), while the S3/S4 gap stays large throughout.
	if res.Rows[1].S3.LatencyMS.Mean <= res.Rows[0].S3.LatencyMS.Mean {
		t.Error("S3 latency not growing with source count")
	}
	if res.Rows[1].S4.LatencyMS.Mean <= res.Rows[0].S4.LatencyMS.Mean {
		t.Error("S4 latency not growing with source count")
	}
	for _, row := range res.Rows {
		if row.LatencyRatio < 2 {
			t.Errorf("s=%d: latency ratio %.2f below 2", row.Sources, row.LatencyRatio)
		}
	}
}

func TestSweepSpecErrors(t *testing.T) {
	spec := FlockLabSweep(0, 1)
	if _, err := RunSweep(spec); !errors.Is(err, ErrBadSpec) {
		t.Errorf("zero iterations: %v, want ErrBadSpec", err)
	}
	spec = FlockLabSweep(1, 1)
	spec.SourceCounts = nil
	if _, err := RunSweep(spec); !errors.Is(err, ErrBadSpec) {
		t.Errorf("no counts: %v, want ErrBadSpec", err)
	}
}

func TestTableAndCSVRender(t *testing.T) {
	spec := FlockLabSweep(1, 1)
	spec.SourceCounts = []int{3}
	res, err := RunSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	latTable := res.Table(Latency)
	if !strings.Contains(latTable, "flocklab") || !strings.Contains(latTable, "Latency") {
		t.Errorf("latency table malformed:\n%s", latTable)
	}
	radioTable := res.Table(RadioOn)
	if !strings.Contains(radioTable, "Radio-on-time") {
		t.Errorf("radio table malformed:\n%s", radioTable)
	}
	csv := res.CSV()
	if !strings.HasPrefix(csv, "testbed,sources,protocol") {
		t.Errorf("csv header malformed:\n%s", csv)
	}
	lines := strings.Count(strings.TrimSpace(csv), "\n")
	if lines != 2 { // header + S3 + S4
		t.Errorf("csv lines = %d, want 2 data rows", lines)
	}
}

func TestFullNetworkGains(t *testing.T) {
	spec := FlockLabSweep(1, 1)
	spec.SourceCounts = []int{3}
	res, err := RunSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	lat, radio, err := res.FullNetworkGains()
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 1 || radio <= 1 {
		t.Errorf("gains = %.2f / %.2f, want > 1", lat, radio)
	}
	empty := &SweepResult{}
	if _, _, err := empty.FullNetworkGains(); !errors.Is(err, ErrBadSpec) {
		t.Errorf("empty gains: %v, want ErrBadSpec", err)
	}
}

func TestCoverageCurveShape(t *testing.T) {
	pts, err := CoverageCurve(topology.FlockLab(), []int{1, 4, 8}, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if !(pts[0].MeanCoverage < pts[1].MeanCoverage && pts[1].MeanCoverage <= pts[2].MeanCoverage) {
		t.Errorf("coverage not increasing: %+v", pts)
	}
	table := CoverageTable("flocklab", pts)
	if !strings.Contains(table, "NTX") {
		t.Errorf("coverage table malformed:\n%s", table)
	}
}

func TestCoverageCurveErrors(t *testing.T) {
	if _, err := CoverageCurve(topology.FlockLab(), nil, 1, 1); !errors.Is(err, ErrBadSpec) {
		t.Errorf("no ntxs: %v", err)
	}
	if _, err := CoverageCurve(topology.FlockLab(), []int{1}, 0, 1); !errors.Is(err, ErrBadSpec) {
		t.Errorf("zero iters: %v", err)
	}
	if _, err := CoverageCurve(topology.FlockLab(), []int{0}, 1, 1); !errors.Is(err, ErrBadSpec) {
		t.Errorf("bad ntx: %v", err)
	}
}

func TestDCubeSweepSpec(t *testing.T) {
	spec := DCubeSweep(2000, 42)
	if spec.Testbed.NumNodes() != 45 {
		t.Errorf("nodes = %d", spec.Testbed.NumNodes())
	}
	if spec.NTXSharing != 5 {
		t.Errorf("NTX = %d, want 5 (paper)", spec.NTXSharing)
	}
	if spec.SourceCounts[len(spec.SourceCounts)-1] != 45 {
		t.Error("sweep must end at the full network")
	}
}

func TestMetricString(t *testing.T) {
	if Latency.String() != "Latency" || RadioOn.String() != "Radio-on-time" {
		t.Error("metric names wrong")
	}
	if !strings.Contains(Metric(9).String(), "Metric(9)") {
		t.Error("unknown metric rendering")
	}
}
