// Package experiment is the harness that regenerates the paper's evaluation:
// Fig. 1 panels (a)–(d) — latency and radio-on time for S3 vs S4 on FlockLab
// and D-Cube across source-node counts — plus the in-text headline claims and
// the NTX/coverage characterization. Each sweep runs both protocols over the
// same testbed and seed so comparisons are paired.
package experiment

import (
	"errors"
	"fmt"
	"strings"

	"iotmpc/internal/core"
	"iotmpc/internal/metrics"
	"iotmpc/internal/topology"
)

// Errors returned by the harness.
var (
	// ErrBadSpec is returned for invalid sweep parameters.
	ErrBadSpec = errors.New("experiment: invalid spec")
)

// SweepSpec describes one testbed sweep (one column of Fig. 1).
type SweepSpec struct {
	// Name labels the sweep in tables ("flocklab", "dcube").
	Name string
	// Testbed is the node layout.
	Testbed topology.Topology
	// SourceCounts is the x-axis of the figure.
	SourceCounts []int
	// NTXSharing is S4's low NTX (paper: 6 on FlockLab, 5 on D-Cube).
	NTXSharing int
	// DestSlack is S4's extra-destination count.
	DestSlack int
	// Iterations is the Monte-Carlo repetition count per point (paper: 2000).
	Iterations int
	// Seed roots all randomness.
	Seed int64
}

// FlockLabSweep returns the paper's FlockLab configuration
// (Fig. 1(i), panels a and b).
func FlockLabSweep(iterations int, seed int64) SweepSpec {
	return SweepSpec{
		Name:         "flocklab",
		Testbed:      topology.FlockLab(),
		SourceCounts: []int{3, 6, 10, 24},
		NTXSharing:   6,
		DestSlack:    1,
		Iterations:   iterations,
		Seed:         seed,
	}
}

// DCubeSweep returns the paper's D-Cube configuration
// (Fig. 1(ii), panels c and d).
func DCubeSweep(iterations int, seed int64) SweepSpec {
	return SweepSpec{
		Name:         "dcube",
		Testbed:      topology.DCube(),
		SourceCounts: []int{5, 7, 12, 45},
		NTXSharing:   5,
		DestSlack:    1,
		Iterations:   iterations,
		Seed:         seed,
	}
}

// Point is one (source count, protocol) cell of a sweep.
type Point struct {
	Sources      int             `json:"sources"`
	Protocol     string          `json:"protocol"`
	LatencyMS    metrics.Summary `json:"latencyMs"`
	RadioOnMS    metrics.Summary `json:"radioOnMs"`
	SuccessRate  float64         `json:"successRate"`
	NTXUsed      int             `json:"ntxUsed"`
	SharingChain int             `json:"sharingChain"`
}

// Row pairs the S3 and S4 points for one source count.
type Row struct {
	Sources      int     `json:"sources"`
	S3           Point   `json:"s3"`
	S4           Point   `json:"s4"`
	LatencyRatio float64 `json:"latencyRatio"`
	RadioRatio   float64 `json:"radioRatio"`
}

// SweepResult is a completed sweep.
type SweepResult struct {
	Spec SweepSpec `json:"spec"`
	Rows []Row     `json:"rows"`
}

// SpreadSources picks s well-separated node indices from an n-node testbed,
// mirroring how testbed experiments distribute source roles across the
// facility rather than clustering them.
func SpreadSources(n, s int) ([]int, error) {
	if s <= 0 || s > n {
		return nil, fmt.Errorf("%w: %d sources from %d nodes", ErrBadSpec, s, n)
	}
	out := make([]int, s)
	for i := 0; i < s; i++ {
		out[i] = i * n / s
	}
	return out, nil
}

// RunSweep executes the sweep: for every source count, both protocols run
// Iterations rounds over paired randomness.
func RunSweep(spec SweepSpec) (*SweepResult, error) {
	if spec.Iterations <= 0 {
		return nil, fmt.Errorf("%w: iterations %d", ErrBadSpec, spec.Iterations)
	}
	if len(spec.SourceCounts) == 0 {
		return nil, fmt.Errorf("%w: no source counts", ErrBadSpec)
	}
	result := &SweepResult{Spec: spec}
	n := spec.Testbed.NumNodes()
	for _, s := range spec.SourceCounts {
		sources, err := SpreadSources(n, s)
		if err != nil {
			return nil, err
		}
		row := Row{Sources: s}
		for _, proto := range []core.Protocol{core.S3, core.S4} {
			point, err := runPoint(spec, proto, sources)
			if err != nil {
				return nil, fmt.Errorf("%s s=%d %v: %w", spec.Name, s, proto, err)
			}
			if proto == core.S3 {
				row.S3 = point
			} else {
				row.S4 = point
			}
		}
		if row.LatencyRatio, err = metrics.Ratio(row.S3.LatencyMS.Mean, row.S4.LatencyMS.Mean); err != nil {
			return nil, err
		}
		if row.RadioRatio, err = metrics.Ratio(row.S3.RadioOnMS.Mean, row.S4.RadioOnMS.Mean); err != nil {
			return nil, err
		}
		result.Rows = append(result.Rows, row)
	}
	return result, nil
}

func runPoint(spec SweepSpec, proto core.Protocol, sources []int) (Point, error) {
	cfg := core.Config{
		Topology:    spec.Testbed,
		Protocol:    proto,
		Sources:     sources,
		NTXSharing:  spec.NTXSharing,
		DestSlack:   spec.DestSlack,
		ChannelSeed: spec.Seed,
	}
	boot, err := core.RunBootstrap(cfg)
	if err != nil {
		return Point{}, err
	}
	var lat, radio metrics.Stream
	okNodes, totalNodes := 0, 0
	var ntxUsed, chainLen int
	for trial := 0; trial < spec.Iterations; trial++ {
		res, err := core.RunRound(boot, uint64(trial))
		if err != nil {
			return Point{}, err
		}
		if res.CorrectNodes > 0 {
			lat.AddDuration(res.MeanLatency)
		}
		radio.AddDuration(res.MeanRadioOn)
		okNodes += res.CorrectNodes
		totalNodes += len(res.NodeOK)
		ntxUsed = res.NTXUsed
		chainLen = res.SharingChainLen
	}
	latSum, err := lat.Summarize()
	if err != nil {
		return Point{}, fmt.Errorf("latency summary: %w", err)
	}
	radioSum, err := radio.Summarize()
	if err != nil {
		return Point{}, fmt.Errorf("radio summary: %w", err)
	}
	return Point{
		Sources:      len(sources),
		Protocol:     proto.String(),
		LatencyMS:    latSum,
		RadioOnMS:    radioSum,
		SuccessRate:  float64(okNodes) / float64(totalNodes),
		NTXUsed:      ntxUsed,
		SharingChain: chainLen,
	}, nil
}

// Metric selects which panel of a sweep to render.
type Metric int

// Panel metrics.
const (
	// Latency renders panels (a)/(c).
	Latency Metric = iota + 1
	// RadioOn renders panels (b)/(d).
	RadioOn
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case Latency:
		return "Latency"
	case RadioOn:
		return "Radio-on-time"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Table renders one panel as the text analogue of the paper's bar chart:
// milliseconds (log-scale magnitudes in the paper) per source count.
func (r *SweepResult) Table(m Metric) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (ms, mean over %d iterations)\n",
		r.Spec.Name, m, r.Spec.Iterations)
	fmt.Fprintf(&b, "%-8s %14s %14s %8s %10s\n", "sources", "S3", "S4", "ratio", "S4 success")
	for _, row := range r.Rows {
		var s3v, s4v, ratio float64
		switch m {
		case RadioOn:
			s3v, s4v, ratio = row.S3.RadioOnMS.Mean, row.S4.RadioOnMS.Mean, row.RadioRatio
		default:
			s3v, s4v, ratio = row.S3.LatencyMS.Mean, row.S4.LatencyMS.Mean, row.LatencyRatio
		}
		fmt.Fprintf(&b, "%-8d %14.1f %14.1f %7.2fx %9.1f%%\n",
			row.Sources, s3v, s4v, ratio, row.S4.SuccessRate*100)
	}
	return b.String()
}

// CSV renders the sweep as csv with both metrics, one line per
// (sources, protocol).
func (r *SweepResult) CSV() string {
	var b strings.Builder
	b.WriteString("testbed,sources,protocol,latency_ms_mean,latency_ms_ci95,radio_ms_mean,radio_ms_ci95,success_rate,ntx,sharing_chain\n")
	for _, row := range r.Rows {
		for _, p := range []Point{row.S3, row.S4} {
			fmt.Fprintf(&b, "%s,%d,%s,%.3f,%.3f,%.3f,%.3f,%.4f,%d,%d\n",
				r.Spec.Name, p.Sources, p.Protocol,
				p.LatencyMS.Mean, p.LatencyMS.CI95,
				p.RadioOnMS.Mean, p.RadioOnMS.CI95,
				p.SuccessRate, p.NTXUsed, p.SharingChain)
		}
	}
	return b.String()
}

// FullNetworkGains extracts the paper's headline numbers: the S3/S4 ratios at
// the largest source count of the sweep.
func (r *SweepResult) FullNetworkGains() (latency, radio float64, err error) {
	if len(r.Rows) == 0 {
		return 0, 0, fmt.Errorf("%w: empty sweep", ErrBadSpec)
	}
	last := r.Rows[len(r.Rows)-1]
	return last.LatencyRatio, last.RadioRatio, nil
}
