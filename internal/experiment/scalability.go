package experiment

import (
	"fmt"
	"strings"

	"iotmpc/internal/core"
	"iotmpc/internal/metrics"
)

// ScalabilityPoint is one network size in the scalability study: the
// justification for calling S4 "Scalable Shamir Secret Sharing" — its
// advantage over S3 must grow with the network, since S3's chain is O(n²)
// at full-coverage NTX while S4's is O(n·k) at constant low NTX.
type ScalabilityPoint struct {
	Nodes        int     `json:"nodes"`
	S3LatencyMS  float64 `json:"s3LatencyMs"`
	S4LatencyMS  float64 `json:"s4LatencyMs"`
	LatencyRatio float64 `json:"latencyRatio"`
	RadioRatio   float64 `json:"radioRatio"`
}

// ScalabilitySweep runs both protocols on random-geometric deployments of
// increasing size (constant node density, so networks get deeper as they
// grow) with every node contributing a secret and degree n/3.
func ScalabilitySweep(sizes []int, iterations int, seed int64) ([]ScalabilityPoint, error) {
	if iterations <= 0 || len(sizes) == 0 {
		return nil, fmt.Errorf("%w: %d iterations over %d sizes", ErrBadSpec, iterations, len(sizes))
	}
	points := make([]ScalabilityPoint, 0, len(sizes))
	for _, n := range sizes {
		if n < 6 {
			return nil, fmt.Errorf("%w: size %d too small", ErrBadSpec, n)
		}
		testbed, err := officeDeployment(n, seed)
		if err != nil {
			return nil, err
		}
		sources, err := SpreadSources(n, n)
		if err != nil {
			return nil, err
		}

		var lat, radio [2]float64
		for pi, proto := range []core.Protocol{core.S3, core.S4} {
			cfg := core.Config{
				Topology:    testbed,
				Protocol:    proto,
				Sources:     sources,
				NTXSharing:  6,
				DestSlack:   1,
				ChannelSeed: seed,
			}
			boot, err := core.RunBootstrap(cfg)
			if err != nil {
				return nil, fmt.Errorf("n=%d %v: %w", n, proto, err)
			}
			var latSum, radioSum float64
			for trial := 0; trial < iterations; trial++ {
				res, err := core.RunRound(boot, uint64(trial))
				if err != nil {
					return nil, err
				}
				latSum += res.MeanLatency.Seconds() * 1e3
				radioSum += res.MeanRadioOn.Seconds() * 1e3
			}
			lat[pi] = latSum / float64(iterations)
			radio[pi] = radioSum / float64(iterations)
		}
		latRatio, err := metrics.Ratio(lat[0], lat[1])
		if err != nil {
			return nil, err
		}
		radioRatio, err := metrics.Ratio(radio[0], radio[1])
		if err != nil {
			return nil, err
		}
		points = append(points, ScalabilityPoint{
			Nodes:        n,
			S3LatencyMS:  lat[0],
			S4LatencyMS:  lat[1],
			LatencyRatio: latRatio,
			RadioRatio:   radioRatio,
		})
	}
	return points, nil
}

// ScalabilityTable renders the study.
func ScalabilityTable(points []ScalabilityPoint) string {
	var b strings.Builder
	b.WriteString("Scalability — S3 vs S4 on growing random-geometric networks\n")
	fmt.Fprintf(&b, "%-7s %14s %14s %10s %10s\n",
		"nodes", "S3 (ms)", "S4 (ms)", "lat ratio", "radio ratio")
	for _, p := range points {
		fmt.Fprintf(&b, "%-7d %14.1f %14.1f %9.2fx %9.2fx\n",
			p.Nodes, p.S3LatencyMS, p.S4LatencyMS, p.LatencyRatio, p.RadioRatio)
	}
	return b.String()
}
