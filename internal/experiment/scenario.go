package experiment

import (
	"fmt"
	"math"
	"time"

	"iotmpc/internal/core"
	"iotmpc/internal/metrics"
	"iotmpc/internal/phy"
	"iotmpc/internal/sim"
	"iotmpc/internal/topology"
)

// The scenario engine sweeps the protocol over a declarative parameter
// matrix — backend × network size × threshold × loss rate × NTX × slack ×
// failure rate × verifiable mode × protocol — and fans the resulting
// scenarios across a worker pool (see Runner). Each scenario is fully
// self-contained (own topology, own bootstrap, own RNG streams rooted in a
// per-scenario seed derived from the matrix seed and the scenario's index),
// so a parallel run produces byte-identical results to a sequential one:
// the worker count is a throughput knob, never a semantics knob.

// officeDensity is the node density (nodes per m²) used when synthesizing
// deployments of a requested size: ~26 nodes in a 60×48 m office, matching
// the FlockLab-like setting of the scalability study. Constant density means
// bigger networks get physically deeper, which is what stresses multi-hop
// protocols.
const officeDensity = 0.009

// officeDeployment synthesizes an n-node random-geometric testbed at
// officeDensity over a 1.6:1 rectangle — the shared deployment model of the
// scenario engine and the scalability study.
func officeDeployment(n int, seed int64) (topology.Topology, error) {
	area := float64(n) / officeDensity
	w := math.Sqrt(area * 1.6)
	h := area / w
	return topology.RandomGeometric(n, w, h, seed)
}

// probeLayout synthesizes the office-deployment node positions backend
// validation probes run against. Probing with a realistic spread layout
// (rather than n nodes piled at the origin, which makes every pair
// zero-distance and lets a degenerate unit-disk or trace backend pass) means
// expansion-time validation sees geometry of the same character the
// scenarios themselves will. The probe seed is fixed: validation must not
// depend on the matrix seed.
func probeLayout(n int) ([]phy.Position, error) {
	tb, err := officeDeployment(n, 0)
	if err != nil {
		return nil, err
	}
	return tb.Positions, nil
}

// DefaultLossRate is the loss axis default when Matrix.LossRates is nil: a
// moderate per-phase ambient interference burst probability representative
// of an office 2.4 GHz environment (both FlockLab and D-Cube document WiFi/
// Bluetooth bursts of this order). It is the loss axis's own documented
// default — scenarios sweep it independently of whatever the PHY model's
// parameter defaults happen to be.
const DefaultLossRate = 0.2

// failureSeedStream is the RNG stream (off Scenario.Seed) that draws which
// nodes crash under failure injection. It is distinct from the streams the
// topology and channel layers consume, so adding failures never perturbs the
// deployment or shadowing realization of an otherwise-identical scenario.
const failureSeedStream = 0xFA17ED

// Scenario is one fully-specified cell of a sweep matrix.
type Scenario struct {
	// Index is the scenario's position in the expanded matrix; results are
	// reported in this order regardless of execution interleaving.
	Index int `json:"index"`
	// Backend is the radio-model spec (see ParseBackend); "" selects
	// DefaultBackend, the log-distance channel.
	Backend string `json:"backend,omitempty"`
	// Testbed optionally names a fixed deployment (see NamedTestbed:
	// flocklab, dcube, grid, line) instead of the synthesized office layout.
	// When set, Nodes must be 0 or match the testbed's size. This is how
	// cmd/mpcsim routes single-testbed runs through the Runner.
	Testbed string `json:"testbed,omitempty"`
	// Nodes is the deployment size (random-geometric at officeDensity when
	// Testbed is empty).
	Nodes int `json:"nodes"`
	// SourceCount is the number of source nodes, spread across the alive
	// nodes; 0 selects all alive nodes (the matrix default).
	SourceCount int `json:"sources,omitempty"`
	// Degree is the polynomial degree k; 0 selects the paper's ⌊n/3⌋.
	Degree int `json:"degree"`
	// LossRate is the per-phase interference burst probability in [0, 1) —
	// the knob that degrades the radio environment beyond the default model.
	LossRate float64 `json:"lossRate"`
	// Protocol selects S3 or S4.
	Protocol core.Protocol `json:"protocol"`
	// NTXSharing is S4's sharing/reconstruction NTX (0 selects 6).
	NTXSharing int `json:"ntxSharing"`
	// DestSlack is S4's extra-destination count.
	DestSlack int `json:"destSlack"`
	// FailureRate is the fraction of nodes crashed for every round of the
	// scenario, in [0, 1). ⌊rate·n⌋ nodes (never the initiator) are drawn
	// from a dedicated RNG stream off Seed; crashed nodes neither transmit
	// nor receive, and sources are spread over the survivors.
	FailureRate float64 `json:"failureRate,omitempty"`
	// Verifiable enables Feldman-VSS share verification (core.Config
	// .Verifiable): commitments flooded in a preliminary chain, every share
	// checked before it is absorbed.
	Verifiable bool `json:"verifiable,omitempty"`
	// VectorLen is the per-source reading-vector length L (core.Config
	// .VectorLen): each source shares L readings per round inside ONE
	// sealed vector packet per destination. 0 selects the historical
	// scalar round; omitempty keeps pre-vector scenario encodings — and
	// therefore their cache keys — unchanged.
	VectorLen int `json:"vectorLen,omitempty"`
	// Iterations is the Monte-Carlo repetition count.
	Iterations int `json:"iterations"`
	// Seed roots every random choice of the scenario (topology, shadowing,
	// secrets, fading, failure draw). Derived deterministically from the
	// matrix seed.
	Seed int64 `json:"seed"`
}

// Matrix declares a sweep as per-axis value lists; Scenarios expands the
// cross product. Nil axes select defaults, so the zero value plus NodeCounts
// and Iterations is a runnable spec.
//
// The JSON encoding is the sweep service's wire format: POST /jobs accepts
// exactly these field names, and Validate reports violations against them so
// API rejections point at the offending field.
type Matrix struct {
	// Backends is the radio-model axis (specs per ParseBackend); nil selects
	// {DefaultBackend}.
	Backends []string `json:"backends,omitempty"`
	// NodeCounts is the network-size axis (each >= 6). Required.
	NodeCounts []int `json:"nodeCounts"`
	// Degrees is the threshold axis; nil selects {0} (= ⌊n/3⌋).
	Degrees []int `json:"degrees,omitempty"`
	// LossRates is the interference axis; nil selects the default PHY burst
	// probability. Values must lie in [0, 1).
	LossRates []float64 `json:"lossRates,omitempty"`
	// NTXSharings is S4's sharing/reconstruction NTX axis; nil selects {0}
	// (= the protocol default, 6).
	NTXSharings []int `json:"ntxSharings,omitempty"`
	// DestSlacks is S4's extra-destination axis; nil selects {0}.
	DestSlacks []int `json:"destSlacks,omitempty"`
	// FailureRates is the crash-injection axis (fraction of nodes failed per
	// scenario, in [0, 1)); nil selects {0} (no failures).
	FailureRates []float64 `json:"failureRates,omitempty"`
	// Verifiable is the VSS-mode axis; nil selects {false}. {false, true}
	// sweeps the verification overhead head-to-head.
	Verifiable []bool `json:"verifiable,omitempty"`
	// VectorLens is the reading-vector-length axis; nil selects {0} (the
	// scalar round). Values must lie in [0, core.MaxVectorLen].
	VectorLens []int `json:"vectorLens,omitempty"`
	// Protocols is the protocol axis; nil selects {S3, S4}.
	Protocols []core.Protocol `json:"protocols,omitempty"`
	// Iterations is the Monte-Carlo repetition count per scenario. Required.
	Iterations int `json:"iterations"`
	// Seed roots the whole sweep; per-scenario seeds are derived from it.
	Seed int64 `json:"seed"`
}

// Validate checks a matrix as an API submission: every violated constraint
// is reported against the JSON field name that carries it, so a service can
// turn the error straight into an actionable 400 instead of letting a bad
// spec panic (or ErrBadSpec) deep inside the Runner. It deliberately skips
// the backend probe simulation Scenarios performs — Validate is the cheap
// front door; expansion still re-checks everything it always did.
func (m Matrix) Validate() error {
	if len(m.NodeCounts) == 0 {
		return fmt.Errorf("%w: nodeCounts: required (at least one network size)", ErrBadSpec)
	}
	for _, n := range m.NodeCounts {
		if n < 6 {
			return fmt.Errorf("%w: nodeCounts: %d too few (need >= 6)", ErrBadSpec, n)
		}
	}
	if m.Iterations <= 0 {
		return fmt.Errorf("%w: iterations: %d (need >= 1)", ErrBadSpec, m.Iterations)
	}
	for _, b := range m.Backends {
		if _, err := ParseBackend(b); err != nil {
			return fmt.Errorf("%w: backends: %q: %v", ErrBadSpec, b, err)
		}
	}
	for _, lr := range m.LossRates {
		if lr < 0 || lr >= 1 {
			return fmt.Errorf("%w: lossRates: %v outside [0,1)", ErrBadSpec, lr)
		}
	}
	for _, d := range m.Degrees {
		if d < 0 {
			return fmt.Errorf("%w: degrees: %d negative", ErrBadSpec, d)
		}
	}
	for _, ntx := range m.NTXSharings {
		if ntx < 0 {
			return fmt.Errorf("%w: ntxSharings: %d negative", ErrBadSpec, ntx)
		}
	}
	for _, slack := range m.DestSlacks {
		if slack < 0 {
			return fmt.Errorf("%w: destSlacks: %d negative", ErrBadSpec, slack)
		}
	}
	for _, fr := range m.FailureRates {
		if fr < 0 || fr >= 1 {
			return fmt.Errorf("%w: failureRates: %v outside [0,1)", ErrBadSpec, fr)
		}
	}
	for _, vl := range m.VectorLens {
		if vl < 0 || vl > core.MaxVectorLen {
			return fmt.Errorf("%w: vectorLens: %d outside [0,%d]", ErrBadSpec, vl, core.MaxVectorLen)
		}
	}
	for _, p := range m.Protocols {
		if p != core.S3 && p != core.S4 {
			return fmt.Errorf("%w: protocols: unknown protocol %d (S3=%d, S4=%d)",
				ErrBadSpec, int(p), int(core.S3), int(core.S4))
		}
	}
	return nil
}

// Scenarios expands the matrix into the ordered scenario list. Expansion
// order is backend → nodes → degree → loss rate → NTX → slack → failure rate
// → verifiable → vector length → protocol (protocol innermost, so paired protocol
// comparisons sit adjacent in reports; backend outermost, so a single-
// backend matrix keeps the indices — and therefore the derived seeds — it
// had before the backend axis existed). Every axis added since then defaults
// to a single value, so matrices that don't sweep it keep their pre-existing
// index order and derived seeds. Each scenario's seed is
// sim.DeriveSeed(matrix seed, index): reordering or extending an axis
// re-seeds affected scenarios, but a given (matrix, index) pair is stable
// across runs and worker counts.
func (m Matrix) Scenarios() ([]Scenario, error) {
	if len(m.NodeCounts) == 0 {
		return nil, fmt.Errorf("%w: no node counts", ErrBadSpec)
	}
	if m.Iterations <= 0 {
		return nil, fmt.Errorf("%w: iterations %d", ErrBadSpec, m.Iterations)
	}
	backends := m.Backends
	if len(backends) == 0 {
		backends = []string{DefaultBackend}
	}
	degrees := m.Degrees
	if len(degrees) == 0 {
		degrees = []int{0}
	}
	lossRates := m.LossRates
	if len(lossRates) == 0 {
		lossRates = []float64{DefaultLossRate}
	}
	ntxValues := m.NTXSharings
	if len(ntxValues) == 0 {
		ntxValues = []int{0}
	}
	slacks := m.DestSlacks
	if len(slacks) == 0 {
		slacks = []int{0}
	}
	failureRates := m.FailureRates
	if len(failureRates) == 0 {
		failureRates = []float64{0}
	}
	verifiables := m.Verifiable
	if len(verifiables) == 0 {
		verifiables = []bool{false}
	}
	vectorLens := m.VectorLens
	if len(vectorLens) == 0 {
		vectorLens = []int{0}
	}
	protocols := m.Protocols
	if len(protocols) == 0 {
		protocols = []core.Protocol{core.S3, core.S4}
	}
	for _, n := range m.NodeCounts {
		if n < 6 {
			return nil, fmt.Errorf("%w: %d nodes too few (need >= 6)", ErrBadSpec, n)
		}
	}
	for _, lr := range lossRates {
		if lr < 0 || lr >= 1 {
			return nil, fmt.Errorf("%w: loss rate %f outside [0,1)", ErrBadSpec, lr)
		}
	}
	for _, ntx := range ntxValues {
		if ntx < 0 {
			return nil, fmt.Errorf("%w: NTX %d negative", ErrBadSpec, ntx)
		}
	}
	for _, slack := range slacks {
		if slack < 0 {
			return nil, fmt.Errorf("%w: destination slack %d negative", ErrBadSpec, slack)
		}
	}
	for _, fr := range failureRates {
		if fr < 0 || fr >= 1 {
			return nil, fmt.Errorf("%w: failure rate %f outside [0,1)", ErrBadSpec, fr)
		}
	}
	for _, vl := range vectorLens {
		if vl < 0 || vl > core.MaxVectorLen {
			return nil, fmt.Errorf("%w: vector length %d outside [0,%d]", ErrBadSpec, vl, core.MaxVectorLen)
		}
	}
	// Probe layouts depend only on the node count; synthesize each once even
	// when several backends probe against it.
	layouts := make(map[int][]phy.Position, len(m.NodeCounts))
	for _, b := range backends {
		// Catch typos, unreadable trace files, and backend/axis conflicts
		// (e.g. a trace whose fixed node count a NodeCounts entry cannot
		// satisfy) at expansion time, before any simulation work is spent.
		factory, err := ParseBackend(b)
		if err != nil {
			return nil, err
		}
		if factory == nil {
			continue
		}
		for _, n := range m.NodeCounts {
			// Probe with a synthesized spread layout, not n zero positions:
			// all nodes at the origin make every link zero-distance, which a
			// degenerate backend configuration can pass while behaving
			// uselessly on the real deployment.
			layout, ok := layouts[n]
			if !ok {
				if layout, err = probeLayout(n); err != nil {
					return nil, err
				}
				layouts[n] = layout
			}
			if _, err := factory(phy.DefaultParams(), layout, 0); err != nil {
				return nil, fmt.Errorf("%w: backend %q with %d nodes: %v", ErrBadSpec, b, n, err)
			}
		}
	}

	size := len(backends) * len(m.NodeCounts) * len(degrees) * len(lossRates) *
		len(ntxValues) * len(slacks) * len(failureRates) * len(verifiables) *
		len(vectorLens) * len(protocols)
	out := make([]Scenario, 0, size)
	for _, backend := range backends {
		for _, nodes := range m.NodeCounts {
			for _, degree := range degrees {
				for _, lr := range lossRates {
					for _, ntx := range ntxValues {
						for _, slack := range slacks {
							for _, fr := range failureRates {
								for _, verifiable := range verifiables {
									for _, vl := range vectorLens {
										for _, proto := range protocols {
											idx := len(out)
											out = append(out, Scenario{
												Index:       idx,
												Backend:     backend,
												Nodes:       nodes,
												Degree:      degree,
												LossRate:    lr,
												Protocol:    proto,
												NTXSharing:  ntx,
												DestSlack:   slack,
												FailureRate: fr,
												Verifiable:  verifiable,
												VectorLen:   vl,
												Iterations:  m.Iterations,
												Seed:        sim.DeriveSeed(m.Seed, uint64(idx)),
											})
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

// ScenarioResult is one scenario's aggregated metrics.
type ScenarioResult struct {
	Scenario Scenario `json:"scenario"`
	// LatencyMS summarizes mean end-to-end latency over successful rounds.
	LatencyMS metrics.Summary `json:"latencyMs"`
	// RadioOnMS summarizes mean per-node radio-on time over all rounds.
	RadioOnMS metrics.Summary `json:"radioOnMs"`
	// SuccessRate is the fraction of node-rounds with a correct aggregate.
	SuccessRate float64 `json:"successRate"`
	// FailedRounds counts rounds in which no node reconstructed at all.
	FailedRounds int `json:"failedRounds"`
	// SharingChainLen is the sharing-phase chain length in sub-slots —
	// constant across a scenario's trials (it depends only on the bootstrap
	// and the source set), captured from trial 0. One sealed vector per
	// (source, destination) ride these sub-slots, so the length does NOT
	// grow with VectorLen; that is the batched-sealing win the CI size gate
	// asserts. omitempty: entries cached before the field existed stay
	// decodable and re-encodable unchanged.
	SharingChainLen int `json:"sharingChainLen,omitempty"`
	// ShareAirBytes is the on-air payload volume of one sharing-chain pass:
	// SharingChainLen × the per-sub-slot payload (header + 8·L + one MIC).
	ShareAirBytes int `json:"shareAirBytes,omitempty"`

	// Cached is set by the Runner when the result was served from the result
	// cache rather than computed. Runtime metadata: excluded from JSON, so
	// persisted entries and JSONL output are identical either way.
	Cached bool `json:"-"`
}

// RunScenario executes one scenario sequentially: synthesize the deployment,
// bootstrap once, then run the Monte-Carlo trials. All randomness descends
// from Scenario.Seed, so repeated calls are bit-identical.
func RunScenario(sc Scenario) (ScenarioResult, error) {
	backend, err := ParseBackend(sc.Backend)
	if err != nil {
		return ScenarioResult{}, err
	}
	return runScenario(sc, backend, 1, 1)
}

// scenarioDeployment resolves the scenario's topology: a named fixed testbed
// when Testbed is set, the synthesized office layout otherwise.
func scenarioDeployment(sc Scenario) (topology.Topology, error) {
	if sc.Testbed != "" {
		tb, err := NamedTestbed(sc.Testbed)
		if err != nil {
			return topology.Topology{}, err
		}
		if sc.Nodes != 0 && sc.Nodes != tb.NumNodes() {
			return topology.Topology{}, fmt.Errorf("%w: testbed %q has %d nodes, scenario says %d",
				ErrBadSpec, sc.Testbed, tb.NumNodes(), sc.Nodes)
		}
		return tb, nil
	}
	if sc.Nodes < 6 {
		return topology.Topology{}, fmt.Errorf("%w: %d nodes", ErrBadSpec, sc.Nodes)
	}
	return officeDeployment(sc.Nodes, sc.Seed)
}

// scenarioRoles draws the failure mask and source set: ⌊rate·n⌋ crashed
// nodes from the scenario's failure stream (the initiator, node 0, never
// crashes), and SourceCount sources (0 = all) spread across the survivors.
func scenarioRoles(sc Scenario, n int) (failed []bool, sources []int, err error) {
	if sc.FailureRate < 0 || sc.FailureRate >= 1 {
		return nil, nil, fmt.Errorf("%w: failure rate %f outside [0,1)", ErrBadSpec, sc.FailureRate)
	}
	alive := make([]int, 0, n)
	// Floor with an epsilon so exactly-representable products (0.58·50 = 29)
	// don't truncate one short of the documented ⌊rate·n⌋.
	if crash := int(math.Floor(sc.FailureRate*float64(n) + 1e-9)); crash > 0 {
		failed = make([]bool, n)
		rng := sim.NewRNG(sc.Seed, failureSeedStream)
		for _, idx := range rng.Perm(n) {
			if crash == 0 {
				break
			}
			if idx == 0 {
				continue // the initiator must stay up
			}
			failed[idx] = true
			crash--
		}
		for i := 0; i < n; i++ {
			if !failed[i] {
				alive = append(alive, i)
			}
		}
	} else {
		for i := 0; i < n; i++ {
			alive = append(alive, i)
		}
	}
	srcCount := sc.SourceCount
	if srcCount == 0 {
		srcCount = len(alive)
	}
	spread, err := SpreadSources(len(alive), srcCount)
	if err != nil {
		return nil, nil, err
	}
	sources = make([]int, len(spread))
	for i, idx := range spread {
		sources[i] = alive[idx]
	}
	return failed, sources, nil
}

// trialBlock is how many Monte-Carlo trials are dispatched per fan-out batch
// when trial-level parallelism is on: large enough to amortize pool
// overhead, small enough to keep the per-scenario stats buffer trivial.
const trialBlock = 256

// runScenario is RunScenario with the backend factory already resolved (so
// matrix sweeps resolve each distinct spec — and parse each trace file —
// once instead of once per cell), an explicit trial-level worker count, and a
// lane count for bit-sliced trial batching. Trials are independent given the
// immutable bootstrap, so blocks of them fan across trialWorkers; per-trial
// stats land at their trial's index and fold into the streams in trial order,
// which keeps the result bit-identical to a sequential run for any worker
// count. laneCount > 1 dispatches trials in core.RunRoundLanes batches of
// that width; lane execution is bit-identical to scalar execution for every
// lane partition, so laneCount is a pure throughput knob — it never changes
// results or cache keys.
func runScenario(sc Scenario, backend phy.Factory, trialWorkers, laneCount int) (ScenarioResult, error) {
	if sc.Iterations <= 0 {
		return ScenarioResult{}, fmt.Errorf("%w: iterations %d", ErrBadSpec, sc.Iterations)
	}
	testbed, err := scenarioDeployment(sc)
	if err != nil {
		return ScenarioResult{}, err
	}
	n := testbed.NumNodes()
	sc.Nodes = n // normalize 0 under a named testbed, for reporting
	failed, sources, err := scenarioRoles(sc, n)
	if err != nil {
		return ScenarioResult{}, err
	}
	params := phy.DefaultParams()
	params.InterferenceBurstProb = sc.LossRate
	cfg := core.Config{
		Topology:    testbed,
		PHY:         params,
		Backend:     backend,
		Protocol:    sc.Protocol,
		Sources:     sources,
		Degree:      sc.Degree,
		NTXSharing:  sc.NTXSharing,
		DestSlack:   sc.DestSlack,
		Failed:      failed,
		Verifiable:  sc.Verifiable,
		VectorLen:   sc.VectorLen,
		ChannelSeed: sc.Seed,
	}
	boot, err := core.RunBootstrap(cfg)
	if err != nil {
		return ScenarioResult{}, fmt.Errorf("scenario %d (n=%d %v loss=%.2f): %w",
			sc.Index, sc.Nodes, sc.Protocol, sc.LossRate, err)
	}

	type trialStats struct {
		meanLatency time.Duration
		meanRadioOn time.Duration
		correct     int
		nodes       int
	}
	var lat, radio metrics.Stream
	okNodes, totalNodes, failedRounds := 0, 0, 0
	// Chain geometry is a function of (bootstrap, sources), not of the
	// trial, so trial 0's values describe the whole scenario. Written by
	// exactly one worker (the one that draws trial 0), read after the pool
	// joins.
	chainLen, chainPayload := 0, 0
	if laneCount < 1 {
		laneCount = 1
	} else if laneCount > phy.MaxLanes {
		laneCount = phy.MaxLanes
	}
	land := func(i int, res *core.RoundResult, block []trialStats) {
		if i == 0 {
			chainLen = res.SharingChainLen
			chainPayload = res.SharePayloadBytes
		}
		block[i%trialBlock] = trialStats{
			meanLatency: res.MeanLatency,
			meanRadioOn: res.MeanRadioOn,
			correct:     res.CorrectNodes,
			nodes:       len(res.NodeOK),
		}
	}
	block := make([]trialStats, trialBlock)
	for base := 0; base < sc.Iterations; base += trialBlock {
		count := sc.Iterations - base
		if count > trialBlock {
			count = trialBlock
		}
		var err error
		if laneCount == 1 {
			err = sim.ParallelFor(count, trialWorkers, func(i int) error {
				res, err := core.RunRound(boot, uint64(base+i))
				if err != nil {
					return err
				}
				land(base+i, res, block)
				return nil
			})
		} else {
			// Bit-sliced dispatch: each work unit is one lane batch of up to
			// laneCount consecutive trials. Lane results are bit-identical to
			// scalar trials, so the stats land at the same indices with the
			// same values for any lane width.
			groups := (count + laneCount - 1) / laneCount
			err = sim.ParallelFor(groups, trialWorkers, func(g int) error {
				lo := g * laneCount
				size := count - lo
				if size > laneCount {
					size = laneCount
				}
				results, err := core.RunRoundLanes(boot, uint64(base+lo), size)
				if err != nil {
					return err
				}
				for i, res := range results {
					land(base+lo+i, res, block)
				}
				return nil
			})
		}
		if err != nil {
			return ScenarioResult{}, err
		}
		// Fold in trial order: the streams' contents are then independent of
		// the worker count and identical to a sequential run.
		for i := 0; i < count; i++ {
			if block[i].correct > 0 {
				lat.AddDuration(block[i].meanLatency)
			} else {
				failedRounds++
			}
			radio.AddDuration(block[i].meanRadioOn)
			okNodes += block[i].correct
			totalNodes += block[i].nodes
		}
	}
	out := ScenarioResult{
		Scenario:        sc,
		SuccessRate:     float64(okNodes) / float64(totalNodes),
		FailedRounds:    failedRounds,
		SharingChainLen: chainLen,
		ShareAirBytes:   chainLen * chainPayload,
	}
	if lat.Len() > 0 {
		if out.LatencyMS, err = lat.Summarize(); err != nil {
			return ScenarioResult{}, fmt.Errorf("latency summary: %w", err)
		}
	}
	if out.RadioOnMS, err = radio.Summarize(); err != nil {
		return ScenarioResult{}, fmt.Errorf("radio summary: %w", err)
	}
	return out, nil
}

// backendLabel names a scenario's radio backend in reports.
func backendLabel(sc Scenario) string {
	if sc.Backend == "" {
		return DefaultBackend
	}
	return sc.Backend
}
