package experiment

import (
	"fmt"
	"math"
	"strings"

	"iotmpc/internal/core"
	"iotmpc/internal/metrics"
	"iotmpc/internal/phy"
	"iotmpc/internal/sim"
	"iotmpc/internal/topology"
)

// The scenario engine sweeps the protocol over a declarative parameter
// matrix — network size × threshold × loss rate × protocol — and fans the
// resulting scenarios across a worker pool. Each scenario is fully
// self-contained (own topology, own bootstrap, own RNG streams rooted in a
// per-scenario seed derived from the matrix seed and the scenario's index),
// so a parallel run produces byte-identical results to a sequential one:
// the worker count is a throughput knob, never a semantics knob.

// officeDensity is the node density (nodes per m²) used when synthesizing
// deployments of a requested size: ~26 nodes in a 60×48 m office, matching
// the FlockLab-like setting of the scalability study. Constant density means
// bigger networks get physically deeper, which is what stresses multi-hop
// protocols.
const officeDensity = 0.009

// officeDeployment synthesizes an n-node random-geometric testbed at
// officeDensity over a 1.6:1 rectangle — the shared deployment model of the
// scenario engine and the scalability study.
func officeDeployment(n int, seed int64) (topology.Topology, error) {
	area := float64(n) / officeDensity
	w := math.Sqrt(area * 1.6)
	h := area / w
	return topology.RandomGeometric(n, w, h, seed)
}

// DefaultLossRate is the loss axis default when Matrix.LossRates is nil: a
// moderate per-phase ambient interference burst probability representative
// of an office 2.4 GHz environment (both FlockLab and D-Cube document WiFi/
// Bluetooth bursts of this order). It is the loss axis's own documented
// default — scenarios sweep it independently of whatever the PHY model's
// parameter defaults happen to be.
const DefaultLossRate = 0.2

// Scenario is one fully-specified cell of a sweep matrix.
type Scenario struct {
	// Index is the scenario's position in the expanded matrix; results are
	// reported in this order regardless of execution interleaving.
	Index int `json:"index"`
	// Backend is the radio-model spec (see ParseBackend); "" selects
	// DefaultBackend, the log-distance channel.
	Backend string `json:"backend,omitempty"`
	// Nodes is the deployment size (random-geometric at officeDensity).
	Nodes int `json:"nodes"`
	// Degree is the polynomial degree k; 0 selects the paper's ⌊n/3⌋.
	Degree int `json:"degree"`
	// LossRate is the per-phase interference burst probability in [0, 1) —
	// the knob that degrades the radio environment beyond the default model.
	LossRate float64 `json:"lossRate"`
	// Protocol selects S3 or S4.
	Protocol core.Protocol `json:"protocol"`
	// NTXSharing is S4's sharing/reconstruction NTX (0 selects 6).
	NTXSharing int `json:"ntxSharing"`
	// DestSlack is S4's extra-destination count.
	DestSlack int `json:"destSlack"`
	// Iterations is the Monte-Carlo repetition count.
	Iterations int `json:"iterations"`
	// Seed roots every random choice of the scenario (topology, shadowing,
	// secrets, fading). Derived deterministically from the matrix seed.
	Seed int64 `json:"seed"`
}

// Matrix declares a sweep as per-axis value lists; Scenarios expands the
// cross product. Nil axes select defaults, so the zero value plus NodeCounts
// and Iterations is a runnable spec.
type Matrix struct {
	// Backends is the radio-model axis (specs per ParseBackend); nil selects
	// {DefaultBackend}.
	Backends []string
	// NodeCounts is the network-size axis (each >= 6). Required.
	NodeCounts []int
	// Degrees is the threshold axis; nil selects {0} (= ⌊n/3⌋).
	Degrees []int
	// LossRates is the interference axis; nil selects the default PHY burst
	// probability. Values must lie in [0, 1).
	LossRates []float64
	// Protocols is the protocol axis; nil selects {S3, S4}.
	Protocols []core.Protocol
	// NTXSharing and DestSlack apply to every scenario (0 → defaults).
	NTXSharing int
	DestSlack  int
	// Iterations is the Monte-Carlo repetition count per scenario. Required.
	Iterations int
	// Seed roots the whole sweep; per-scenario seeds are derived from it.
	Seed int64
}

// Scenarios expands the matrix into the ordered scenario list. Expansion
// order is backend → nodes → degree → loss rate → protocol (protocol
// innermost, so paired protocol comparisons sit adjacent in reports; backend
// outermost, so a single-backend matrix keeps the indices — and therefore
// the derived seeds — it had before the backend axis existed). Each
// scenario's seed is sim.DeriveSeed(matrix seed, index): reordering or
// extending an axis re-seeds affected scenarios, but a given (matrix, index)
// pair is stable across runs and worker counts.
func (m Matrix) Scenarios() ([]Scenario, error) {
	if len(m.NodeCounts) == 0 {
		return nil, fmt.Errorf("%w: no node counts", ErrBadSpec)
	}
	if m.Iterations <= 0 {
		return nil, fmt.Errorf("%w: iterations %d", ErrBadSpec, m.Iterations)
	}
	backends := m.Backends
	if len(backends) == 0 {
		backends = []string{DefaultBackend}
	}
	degrees := m.Degrees
	if len(degrees) == 0 {
		degrees = []int{0}
	}
	lossRates := m.LossRates
	if len(lossRates) == 0 {
		lossRates = []float64{DefaultLossRate}
	}
	protocols := m.Protocols
	if len(protocols) == 0 {
		protocols = []core.Protocol{core.S3, core.S4}
	}
	for _, n := range m.NodeCounts {
		if n < 6 {
			return nil, fmt.Errorf("%w: %d nodes too few (need >= 6)", ErrBadSpec, n)
		}
	}
	for _, lr := range lossRates {
		if lr < 0 || lr >= 1 {
			return nil, fmt.Errorf("%w: loss rate %f outside [0,1)", ErrBadSpec, lr)
		}
	}
	for _, b := range backends {
		// Catch typos, unreadable trace files, and backend/axis conflicts
		// (e.g. a trace whose fixed node count a NodeCounts entry cannot
		// satisfy) at expansion time, before any simulation work is spent.
		factory, err := ParseBackend(b)
		if err != nil {
			return nil, err
		}
		if factory == nil {
			continue
		}
		for _, n := range m.NodeCounts {
			if _, err := factory(phy.DefaultParams(), make([]phy.Position, n), 0); err != nil {
				return nil, fmt.Errorf("%w: backend %q with %d nodes: %v", ErrBadSpec, b, n, err)
			}
		}
	}

	out := make([]Scenario, 0, len(backends)*len(m.NodeCounts)*len(degrees)*len(lossRates)*len(protocols))
	for _, backend := range backends {
		for _, nodes := range m.NodeCounts {
			for _, degree := range degrees {
				for _, lr := range lossRates {
					for _, proto := range protocols {
						idx := len(out)
						out = append(out, Scenario{
							Index:      idx,
							Backend:    backend,
							Nodes:      nodes,
							Degree:     degree,
							LossRate:   lr,
							Protocol:   proto,
							NTXSharing: m.NTXSharing,
							DestSlack:  m.DestSlack,
							Iterations: m.Iterations,
							Seed:       sim.DeriveSeed(m.Seed, uint64(idx)),
						})
					}
				}
			}
		}
	}
	return out, nil
}

// ScenarioResult is one scenario's aggregated metrics.
type ScenarioResult struct {
	Scenario Scenario `json:"scenario"`
	// LatencyMS summarizes mean end-to-end latency over successful rounds.
	LatencyMS metrics.Summary `json:"latencyMs"`
	// RadioOnMS summarizes mean per-node radio-on time over all rounds.
	RadioOnMS metrics.Summary `json:"radioOnMs"`
	// SuccessRate is the fraction of node-rounds with a correct aggregate.
	SuccessRate float64 `json:"successRate"`
	// FailedRounds counts rounds in which no node reconstructed at all.
	FailedRounds int `json:"failedRounds"`
}

// RunScenario executes one scenario sequentially: synthesize the deployment,
// bootstrap once, then run the Monte-Carlo trials. All randomness descends
// from Scenario.Seed, so repeated calls are bit-identical.
func RunScenario(sc Scenario) (ScenarioResult, error) {
	backend, err := ParseBackend(sc.Backend)
	if err != nil {
		return ScenarioResult{}, err
	}
	return runScenario(sc, backend)
}

// runScenario is RunScenario with the backend factory already resolved, so
// matrix sweeps resolve each distinct spec (and parse each trace file) once
// instead of once per cell.
func runScenario(sc Scenario, backend phy.Factory) (ScenarioResult, error) {
	if sc.Nodes < 6 {
		return ScenarioResult{}, fmt.Errorf("%w: %d nodes", ErrBadSpec, sc.Nodes)
	}
	if sc.Iterations <= 0 {
		return ScenarioResult{}, fmt.Errorf("%w: iterations %d", ErrBadSpec, sc.Iterations)
	}
	testbed, err := officeDeployment(sc.Nodes, sc.Seed)
	if err != nil {
		return ScenarioResult{}, err
	}
	sources, err := SpreadSources(sc.Nodes, sc.Nodes)
	if err != nil {
		return ScenarioResult{}, err
	}
	params := phy.DefaultParams()
	params.InterferenceBurstProb = sc.LossRate
	cfg := core.Config{
		Topology:    testbed,
		PHY:         params,
		Backend:     backend,
		Protocol:    sc.Protocol,
		Sources:     sources,
		Degree:      sc.Degree,
		NTXSharing:  sc.NTXSharing,
		DestSlack:   sc.DestSlack,
		ChannelSeed: sc.Seed,
	}
	boot, err := core.RunBootstrap(cfg)
	if err != nil {
		return ScenarioResult{}, fmt.Errorf("scenario %d (n=%d %v loss=%.2f): %w",
			sc.Index, sc.Nodes, sc.Protocol, sc.LossRate, err)
	}

	var lat, radio metrics.Series
	okNodes, totalNodes, failedRounds := 0, 0, 0
	for trial := 0; trial < sc.Iterations; trial++ {
		res, err := core.RunRound(boot, uint64(trial))
		if err != nil {
			return ScenarioResult{}, err
		}
		if res.CorrectNodes > 0 {
			lat.AddDuration(res.MeanLatency)
		} else {
			failedRounds++
		}
		radio.AddDuration(res.MeanRadioOn)
		okNodes += res.CorrectNodes
		totalNodes += len(res.NodeOK)
	}
	out := ScenarioResult{
		Scenario:     sc,
		SuccessRate:  float64(okNodes) / float64(totalNodes),
		FailedRounds: failedRounds,
	}
	if lat.Len() > 0 {
		if out.LatencyMS, err = lat.Summarize(); err != nil {
			return ScenarioResult{}, fmt.Errorf("latency summary: %w", err)
		}
	}
	if out.RadioOnMS, err = radio.Summarize(); err != nil {
		return ScenarioResult{}, fmt.Errorf("radio summary: %w", err)
	}
	return out, nil
}

// RunMatrix expands the matrix and fans the scenarios across a worker pool
// (workers <= 0 selects GOMAXPROCS). Results land at their scenario's index,
// so the output — down to the last float — is identical for any worker
// count, including 1.
func RunMatrix(m Matrix, workers int) ([]ScenarioResult, error) {
	scenarios, err := m.Scenarios()
	if err != nil {
		return nil, err
	}
	// Resolve each distinct backend spec once (trace files parse once per
	// sweep, not once per cell); the map is read-only once workers start.
	factories := make(map[string]phy.Factory)
	for _, sc := range scenarios {
		if _, ok := factories[sc.Backend]; !ok {
			f, err := ParseBackend(sc.Backend)
			if err != nil {
				return nil, err
			}
			factories[sc.Backend] = f
		}
	}
	results := make([]ScenarioResult, len(scenarios))
	err = sim.ParallelFor(len(scenarios), workers, func(i int) error {
		res, err := runScenario(scenarios[i], factories[scenarios[i].Backend])
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// backendLabel names a scenario's radio backend in reports.
func backendLabel(sc Scenario) string {
	if sc.Backend == "" {
		return DefaultBackend
	}
	return sc.Backend
}

// MatrixTable renders a sweep as an aligned text table.
func MatrixTable(results []ScenarioResult) string {
	var b strings.Builder
	b.WriteString("Scenario matrix — backend × nodes × degree × loss × protocol\n")
	fmt.Fprintf(&b, "%-5s %-10s %-6s %-7s %-6s %-6s %14s %14s %10s %7s\n",
		"idx", "phy", "nodes", "degree", "loss", "proto", "latency (ms)", "radio-on (ms)", "success", "failed")
	for _, r := range results {
		sc := r.Scenario
		fmt.Fprintf(&b, "%-5d %-10s %-6d %-7d %-6.2f %-6s %14.1f %14.1f %9.1f%% %7d\n",
			sc.Index, backendLabel(sc), sc.Nodes, sc.Degree, sc.LossRate, sc.Protocol,
			r.LatencyMS.Mean, r.RadioOnMS.Mean, r.SuccessRate*100, r.FailedRounds)
	}
	return b.String()
}

// MatrixCSV renders a sweep as CSV, one line per scenario.
func MatrixCSV(results []ScenarioResult) string {
	var b strings.Builder
	b.WriteString("index,backend,nodes,degree,loss_rate,protocol,latency_ms_mean,latency_ms_ci95,radio_ms_mean,radio_ms_ci95,success_rate,failed_rounds\n")
	for _, r := range results {
		sc := r.Scenario
		fmt.Fprintf(&b, "%d,%s,%d,%d,%.3f,%s,%.3f,%.3f,%.3f,%.3f,%.4f,%d\n",
			sc.Index, backendLabel(sc), sc.Nodes, sc.Degree, sc.LossRate, sc.Protocol,
			r.LatencyMS.Mean, r.LatencyMS.CI95,
			r.RadioOnMS.Mean, r.RadioOnMS.CI95,
			r.SuccessRate, r.FailedRounds)
	}
	return b.String()
}
