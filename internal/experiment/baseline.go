package experiment

import (
	"fmt"
	"strings"
	"time"

	"iotmpc/internal/core"
	"iotmpc/internal/hepda"
	"iotmpc/internal/metrics"
	"iotmpc/internal/phy"
	"iotmpc/internal/topology"
)

// BaselineRow is one protocol's cost profile in the three-way comparison the
// paper's introduction frames: HE-based PPDA (computation-intensive) vs
// naive collaborative SSS (communication-intensive) vs the paper's S4.
type BaselineRow struct {
	Protocol string `json:"protocol"`
	// LatencyMS is mean end-to-end latency.
	LatencyMS metrics.Summary `json:"latencyMs"`
	// RadioOnMS is mean per-node radio-on time.
	RadioOnMS metrics.Summary `json:"radioOnMs"`
	// CPUBusyMS is mean per-node modeled crypto/compute time.
	CPUBusyMS float64 `json:"cpuBusyMs"`
	// ChargeMC estimates per-node charge in millicoulombs: radio at the rx
	// current plus CPU at the MCU run current — the battery-lifetime proxy.
	ChargeMC float64 `json:"chargeMc"`
}

// BaselineComparison runs S3, S4 and HE-PPDA on the full FlockLab network
// and returns one row per protocol.
func BaselineComparison(iterations int, seed int64) ([]BaselineRow, error) {
	if iterations <= 0 {
		return nil, fmt.Errorf("%w: iterations %d", ErrBadSpec, iterations)
	}
	testbed := topology.FlockLab()
	n := testbed.NumNodes()
	sources, err := SpreadSources(n, n)
	if err != nil {
		return nil, err
	}
	params := phy.DefaultParams()
	const mcuCurrentMA = 6.3 // nRF52840 CPU running from flash

	rows := make([]BaselineRow, 0, 3)
	for _, proto := range []core.Protocol{core.S3, core.S4} {
		cfg := core.Config{
			Topology:    testbed,
			Protocol:    proto,
			Sources:     sources,
			NTXSharing:  6,
			DestSlack:   1,
			ChannelSeed: seed,
		}
		boot, err := core.RunBootstrap(cfg)
		if err != nil {
			return nil, err
		}
		var lat, radio metrics.Stream
		var cpuSum, chargeSum float64
		for trial := 0; trial < iterations; trial++ {
			res, err := core.RunRound(boot, uint64(trial))
			if err != nil {
				return nil, err
			}
			lat.AddDuration(res.MeanLatency)
			radio.AddDuration(res.MeanRadioOn)
			// SSS compute is microseconds; charge is radio-dominated.
			cpu := boot.Config().CPU.Interpolation(boot.Config().Degree + 1)
			cpuSum += cpu.Seconds() * 1e3
			chargeSum += params.ChargeMicroCoulombs(0, res.MeanRadioOn)/1e3 +
				mcuCurrentMA*cpu.Seconds()
		}
		row, err := summarizeBaseline(proto.String(), &lat, &radio,
			cpuSum/float64(iterations), chargeSum/float64(iterations))
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}

	heCfg := hepda.Config{
		Topology:    testbed,
		Sources:     sources,
		ChannelSeed: seed,
	}
	var lat, radio metrics.Stream
	var cpuSum, chargeSum float64
	for trial := 0; trial < iterations; trial++ {
		res, err := hepda.RunRound(heCfg, uint64(trial))
		if err != nil {
			return nil, err
		}
		lat.AddDuration(res.MeanLatency)
		radio.AddDuration(res.MeanRadioOn)
		var cpuTotal time.Duration
		for _, c := range res.CPUBusy {
			cpuTotal += c
		}
		cpuMean := cpuTotal / time.Duration(n)
		cpuSum += cpuMean.Seconds() * 1e3
		chargeSum += params.ChargeMicroCoulombs(0, res.MeanRadioOn)/1e3 +
			mcuCurrentMA*cpuMean.Seconds()
	}
	row, err := summarizeBaseline("HE", &lat, &radio,
		cpuSum/float64(iterations), chargeSum/float64(iterations))
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)
	return rows, nil
}

func summarizeBaseline(name string, lat, radio *metrics.Stream, cpuMS, chargeMC float64) (BaselineRow, error) {
	latSum, err := lat.Summarize()
	if err != nil {
		return BaselineRow{}, err
	}
	radioSum, err := radio.Summarize()
	if err != nil {
		return BaselineRow{}, err
	}
	return BaselineRow{
		Protocol:  name,
		LatencyMS: latSum,
		RadioOnMS: radioSum,
		CPUBusyMS: cpuMS,
		ChargeMC:  chargeMC,
	}, nil
}

// BaselineTable renders the comparison.
func BaselineTable(rows []BaselineRow) string {
	var b strings.Builder
	b.WriteString("FlockLab full network — S3 vs S4 vs HE-PPDA (per-node means)\n")
	fmt.Fprintf(&b, "%-6s %14s %14s %12s %12s\n",
		"proto", "latency (ms)", "radio-on (ms)", "CPU (ms)", "charge (mC)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %14.1f %14.1f %12.1f %12.2f\n",
			r.Protocol, r.LatencyMS.Mean, r.RadioOnMS.Mean, r.CPUBusyMS, r.ChargeMC)
	}
	return b.String()
}
