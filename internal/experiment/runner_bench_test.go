package experiment

import (
	"math/rand"
	"testing"

	"iotmpc/internal/core"
	"iotmpc/internal/metrics"
)

// The runner benchmarks back BENCH_runner.json in CI: cold-vs-warm sweep
// cost shows what the content-addressed cache buys, and the fold benchmarks
// contrast the bounded-memory Stream with the buffered Series it replaced.

func benchMatrix() Matrix {
	return Matrix{
		NodeCounts: []int{10},
		LossRates:  []float64{0.1, 0.3},
		Protocols:  []core.Protocol{core.S4},
		Iterations: 2,
		Seed:       11,
	}
}

// BenchmarkRunnerColdSweep measures a full sweep with an empty cache every
// iteration: expansion + bootstrap + rounds + cache writes.
func BenchmarkRunnerColdSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		b.StartTimer()
		if _, err := NewRunner(WithCache(dir)).Run(benchMatrix()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunnerWarmCache measures the same sweep served entirely from
// cache — the repeated-sweep cost the redesign optimizes for.
func BenchmarkRunnerWarmCache(b *testing.B) {
	dir := b.TempDir()
	if _, err := NewRunner(WithCache(dir)).Run(benchMatrix()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewRunner(WithCache(dir)).Run(benchMatrix()); err != nil {
			b.Fatal(err)
		}
	}
}

const foldSamples = 100_000

// BenchmarkStreamFold folds a paper-scale-plus sample count into the online
// Stream (sketch mode past the exact limit): allocations stay O(1).
func BenchmarkStreamFold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(1))
		var s metrics.Stream
		for j := 0; j < foldSamples; j++ {
			s.Add(rng.NormFloat64()*20 + 150)
		}
		if _, err := s.Summarize(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSeriesFold is the buffered baseline the Stream replaces: O(n)
// memory plus a sort per summary.
func BenchmarkSeriesFold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(1))
		var s metrics.Series
		for j := 0; j < foldSamples; j++ {
			s.Add(rng.NormFloat64()*20 + 150)
		}
		if _, err := s.Summarize(); err != nil {
			b.Fatal(err)
		}
	}
}
