package experiment

import (
	"math"
	"reflect"
	"testing"

	"iotmpc/internal/core"
)

// TestRunnerLaneWidthDeterminism is the sweep-level lane contract: every lane
// width emits byte-identical results — width 1 IS the historical scalar
// reference path, so this also pins the cache-key-relevant output stable
// across the bit-sliced rollout (no ResultCacheVersion bump needed).
func TestRunnerLaneWidthDeterminism(t *testing.T) {
	// 70 iterations: crosses one full 64-lane group into a 6-wide remainder,
	// and splits unevenly at widths 5 and 64.
	m := Matrix{
		NodeCounts: []int{10},
		LossRates:  []float64{0.1},
		Protocols:  []core.Protocol{core.S3, core.S4},
		Iterations: 70,
		Seed:       11,
	}
	scalar, err := NewRunner(WithLanes(1)).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, lanes := range []int{5, 64} {
		got, err := NewRunner(WithLanes(lanes)).Run(m)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(scalar, got) {
			t.Fatalf("lanes=%d changed sweep results", lanes)
		}
	}
	// The zero-option Runner defaults to DefaultLaneCount and must agree too.
	def, err := NewRunner().Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scalar, def) {
		t.Fatal("default lane width changed sweep results")
	}
}

// TestRunScenarioMatchesLaneRunner pins the public sequential entry point
// (always scalar, the PR-5 reference) against the lane-batched Runner on the
// same cells.
func TestRunScenarioMatchesLaneRunner(t *testing.T) {
	m := Matrix{
		NodeCounts: []int{10},
		Protocols:  []core.Protocol{core.S4},
		Iterations: 70,
		Seed:       5,
	}
	scenarios, err := m.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	batched, err := NewRunner(WithLanes(64)).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range scenarios {
		want, err := RunScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, batched[i]) {
			t.Fatalf("cell %d: lane-batched result diverged from RunScenario", i)
		}
	}
}

// TestLaneAggregatesWithinConfidenceBounds is the statistical safety net
// behind the bit-exact tests: even judged only as estimators, the 64-lane
// aggregate metrics must fall within the scalar run's Welford-derived 95%
// confidence interval on the same seeds. (Bit-exactness makes the distance
// zero; this test is what would still hold — and still run — if the lane
// path ever legitimately re-ordered draws.)
func TestLaneAggregatesWithinConfidenceBounds(t *testing.T) {
	sc := Scenario{
		Nodes:      10,
		Protocol:   core.S4,
		LossRate:   0.2,
		Iterations: 128,
		Seed:       21,
	}
	scalar, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	backend, err := ParseBackend(sc.Backend)
	if err != nil {
		t.Fatal(err)
	}
	lanes, err := runScenario(sc, backend, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, ref, got struct{ Mean, CI95 float64 }, n int) {
		// Welford-accumulated mean ± CI95 from the scalar run; guard against
		// a degenerate zero-width interval with a small relative floor.
		bound := ref.CI95 + 1e-9*math.Abs(ref.Mean)
		if diff := math.Abs(got.Mean - ref.Mean); diff > bound {
			t.Errorf("%s: lane mean %.6f outside scalar mean %.6f ± %.6f (n=%d)",
				name, got.Mean, ref.Mean, bound, n)
		}
	}
	check("latency",
		struct{ Mean, CI95 float64 }{scalar.LatencyMS.Mean, scalar.LatencyMS.CI95},
		struct{ Mean, CI95 float64 }{lanes.LatencyMS.Mean, lanes.LatencyMS.CI95},
		scalar.LatencyMS.N)
	check("radio-on",
		struct{ Mean, CI95 float64 }{scalar.RadioOnMS.Mean, scalar.RadioOnMS.CI95},
		struct{ Mean, CI95 float64 }{lanes.RadioOnMS.Mean, lanes.RadioOnMS.CI95},
		scalar.RadioOnMS.N)
	if scalar.SuccessRate != lanes.SuccessRate {
		t.Errorf("success rate diverged: scalar %.6f lanes %.6f", scalar.SuccessRate, lanes.SuccessRate)
	}
}

// TestWithLanesClamping: out-of-range widths select safe values instead of
// erroring mid-sweep.
func TestWithLanesClamping(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-3, DefaultLaneCount},
		{0, DefaultLaneCount},
		{1, 1},
		{64, 64},
		{900, 64},
	} {
		r := NewRunner(WithLanes(tc.in))
		if r.lanes != tc.want {
			t.Errorf("WithLanes(%d): lanes = %d, want %d", tc.in, r.lanes, tc.want)
		}
	}
}
