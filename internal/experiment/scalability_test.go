package experiment

import (
	"errors"
	"strings"
	"testing"
)

func TestScalabilityGainGrowsWithNetworkSize(t *testing.T) {
	points, err := ScalabilitySweep([]int{15, 40}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	small, large := points[0], points[1]
	if large.LatencyRatio <= small.LatencyRatio {
		t.Errorf("S4 advantage not growing: n=%d %.2fx vs n=%d %.2fx",
			small.Nodes, small.LatencyRatio, large.Nodes, large.LatencyRatio)
	}
	for _, p := range points {
		if p.LatencyRatio <= 1 || p.RadioRatio <= 1 {
			t.Errorf("n=%d: S4 not winning (%.2fx, %.2fx)", p.Nodes, p.LatencyRatio, p.RadioRatio)
		}
	}
}

func TestScalabilitySweepErrors(t *testing.T) {
	if _, err := ScalabilitySweep(nil, 1, 1); !errors.Is(err, ErrBadSpec) {
		t.Errorf("no sizes: %v, want ErrBadSpec", err)
	}
	if _, err := ScalabilitySweep([]int{20}, 0, 1); !errors.Is(err, ErrBadSpec) {
		t.Errorf("zero iterations: %v, want ErrBadSpec", err)
	}
	if _, err := ScalabilitySweep([]int{3}, 1, 1); !errors.Is(err, ErrBadSpec) {
		t.Errorf("tiny size: %v, want ErrBadSpec", err)
	}
}

func TestScalabilityTable(t *testing.T) {
	out := ScalabilityTable([]ScalabilityPoint{{Nodes: 20, LatencyRatio: 3}})
	if !strings.Contains(out, "20") || !strings.Contains(out, "Scalability") {
		t.Errorf("table malformed:\n%s", out)
	}
}
