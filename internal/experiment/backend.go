package experiment

import (
	"fmt"
	"math"
	"path/filepath"
	"strconv"
	"strings"

	"iotmpc/internal/phy"
	"iotmpc/internal/trace"
)

// Backend specs name the radio model a scenario runs on, as compact strings
// so they serialize into Scenario JSON and parse from CLI flags
// (-phy logdist,unitdisk,trace:<file>):
//
//	logdist                  the log-distance + shadowing channel (default)
//	unitdisk                 idealized disk, radius derived from the PHY
//	                         params (phy.UnitDiskRadius)
//	unitdisk:R               explicit radius R in meters
//	unitdisk:R:G             radius R with a gray zone of width G
//	trace:NAME               replay a bundled link trace (trace.Bundled)
//	trace:PATH.csv|.json     replay a link trace loaded from disk
//
// For unitdisk, R may be 0 to keep the derived radius while setting G.

// DefaultBackend is the backend spec selected when a scenario leaves the
// field empty: the paper's statistical channel.
const DefaultBackend = "logdist"

// traceIsFile reports whether a trace spec argument references a file on
// disk, as opposed to a bundled trace name. It is the single
// disk-vs-bundled rule shared by ParseBackend (what to load) and the
// runner's cache keying (what to digest) — if they disagreed, editing a
// trace file would stop invalidating its cached cells.
func traceIsFile(arg string) bool {
	ext := strings.ToLower(filepath.Ext(arg))
	return ext == ".csv" || ext == ".json" || strings.ContainsAny(arg, `/\`)
}

// ParseBackend resolves a backend spec to a radio factory. A nil factory
// (for the default log-distance spec) tells core to use its own default.
func ParseBackend(spec string) (phy.Factory, error) {
	kind, arg, _ := strings.Cut(spec, ":")
	switch kind {
	case "", DefaultBackend:
		if arg != "" {
			return nil, fmt.Errorf("%w: backend %q takes no argument", ErrBadSpec, spec)
		}
		return nil, nil
	case "unitdisk":
		radius, gray := 0.0, 0.0
		if arg != "" {
			rs, gs, hasGray := strings.Cut(arg, ":")
			var err error
			if radius, err = strconv.ParseFloat(rs, 64); err != nil {
				return nil, fmt.Errorf("%w: backend %q: radius: %v", ErrBadSpec, spec, err)
			}
			if hasGray {
				if gray, err = strconv.ParseFloat(gs, 64); err != nil {
					return nil, fmt.Errorf("%w: backend %q: gray width: %v", ErrBadSpec, spec, err)
				}
			}
		}
		// Only R = 0 means "derive from the params"; a negative or NaN value
		// is a typo that must not silently select the derived radius. Gray
		// widths are checked here too so bad specs fail at parse time, not
		// when the first scenario builds its backend.
		if radius < 0 || math.IsNaN(radius) {
			return nil, fmt.Errorf("%w: backend %q: radius %v (0 derives from params)",
				ErrBadSpec, spec, radius)
		}
		if gray < 0 || math.IsNaN(gray) {
			return nil, fmt.Errorf("%w: backend %q: gray width %v", ErrBadSpec, spec, gray)
		}
		return phy.UnitDiskFactory(radius, gray), nil
	case "trace":
		if arg == "" {
			return nil, fmt.Errorf("%w: backend %q: want trace:<name-or-path>", ErrBadSpec, spec)
		}
		// Anything that looks like a file reference loads from disk; bare
		// names resolve against the bundled set, so a typo'd bundled name
		// reports the available traces instead of a file-format error.
		var lt *trace.LinkTrace
		var err error
		if traceIsFile(arg) {
			lt, err = trace.Load(arg)
		} else {
			lt, err = trace.Bundled(arg)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: backend %q: %v", ErrBadSpec, spec, err)
		}
		return trace.Factory(lt), nil
	default:
		return nil, fmt.Errorf("%w: unknown backend %q (want logdist, unitdisk[:R[:G]], or trace:<file>)",
			ErrBadSpec, spec)
	}
}
