package experiment

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"iotmpc/internal/core"
)

func TestMatrixJSONRoundTrip(t *testing.T) {
	m := Matrix{
		Backends:     []string{"logdist", "unitdisk"},
		NodeCounts:   []int{8, 10},
		Degrees:      []int{0, 3},
		LossRates:    []float64{0, 0.3},
		NTXSharings:  []int{0, 4},
		DestSlacks:   []int{0, 1},
		FailureRates: []float64{0, 0.1},
		Verifiable:   []bool{false, true},
		VectorLens:   []int{0, 4},
		Protocols:    []core.Protocol{core.S3, core.S4},
		Iterations:   5,
		Seed:         42,
	}
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Matrix
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(m, back) {
		t.Fatalf("round trip changed the matrix:\n in: %+v\nout: %+v", m, back)
	}
	// The wire names are the API contract: a rename would silently break
	// every stored job spec and every client.
	for _, field := range []string{
		`"backends"`, `"nodeCounts"`, `"degrees"`, `"lossRates"`, `"ntxSharings"`,
		`"destSlacks"`, `"failureRates"`, `"verifiable"`, `"vectorLens"`,
		`"protocols"`, `"iterations"`, `"seed"`,
	} {
		if !strings.Contains(string(raw), field) {
			t.Errorf("encoded matrix missing field %s: %s", field, raw)
		}
	}
}

func TestMatrixJSONOmitsDefaultAxes(t *testing.T) {
	raw, err := json.Marshal(Matrix{NodeCounts: []int{8}, Iterations: 1})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for _, field := range []string{"backends", "degrees", "lossRates", "protocols"} {
		if strings.Contains(string(raw), field) {
			t.Errorf("nil axis %q encoded: %s", field, raw)
		}
	}
}

func TestMatrixValidateAccepts(t *testing.T) {
	m := Matrix{NodeCounts: []int{8}, Iterations: 1}
	if err := m.Validate(); err != nil {
		t.Fatalf("minimal matrix rejected: %v", err)
	}
}

// TestMatrixValidateRejections drives every constraint and asserts the error
// names the offending JSON field — that message becomes an HTTP 400 body.
func TestMatrixValidateRejections(t *testing.T) {
	base := func() Matrix { return Matrix{NodeCounts: []int{8}, Iterations: 1} }
	cases := []struct {
		name    string
		breakIt func(*Matrix)
		field   string
	}{
		{"no node counts", func(m *Matrix) { m.NodeCounts = nil }, "nodeCounts"},
		{"tiny network", func(m *Matrix) { m.NodeCounts = []int{5} }, "nodeCounts"},
		{"zero iterations", func(m *Matrix) { m.Iterations = 0 }, "iterations"},
		{"bad backend", func(m *Matrix) { m.Backends = []string{"warpdrive"} }, "backends"},
		{"loss out of range", func(m *Matrix) { m.LossRates = []float64{1.5} }, "lossRates"},
		{"negative loss", func(m *Matrix) { m.LossRates = []float64{-0.1} }, "lossRates"},
		{"negative degree", func(m *Matrix) { m.Degrees = []int{-1} }, "degrees"},
		{"negative ntx", func(m *Matrix) { m.NTXSharings = []int{-2} }, "ntxSharings"},
		{"negative slack", func(m *Matrix) { m.DestSlacks = []int{-1} }, "destSlacks"},
		{"failure out of range", func(m *Matrix) { m.FailureRates = []float64{1} }, "failureRates"},
		{"vector length out of range", func(m *Matrix) { m.VectorLens = []int{core.MaxVectorLen + 1} }, "vectorLens"},
		{"negative vector length", func(m *Matrix) { m.VectorLens = []int{-1} }, "vectorLens"},
		{"unknown protocol", func(m *Matrix) { m.Protocols = []core.Protocol{9} }, "protocols"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := base()
			tc.breakIt(&m)
			err := m.Validate()
			if err == nil {
				t.Fatal("accepted")
			}
			if !errors.Is(err, ErrBadSpec) {
				t.Errorf("error %v does not wrap ErrBadSpec", err)
			}
			if !strings.Contains(err.Error(), tc.field+":") {
				t.Errorf("error %q does not name field %q", err, tc.field)
			}
		})
	}
}

// TestMatrixValidateAgreesWithScenarios pins that anything Validate accepts,
// Scenarios can expand (for probe-free backends) — the 400-vs-500 boundary
// the service relies on.
func TestMatrixValidateAgreesWithScenarios(t *testing.T) {
	m := Matrix{
		Backends:   []string{"logdist", "unitdisk"},
		NodeCounts: []int{8, 10},
		LossRates:  []float64{0, 0.4},
		Iterations: 2,
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if _, err := m.Scenarios(); err != nil {
		t.Fatalf("scenarios after validate: %v", err)
	}
}

func TestFuncSink(t *testing.T) {
	var starts, results, finishes int
	s := &FuncSink{
		Start:  func(Plan) error { starts++; return nil },
		Result: func(ScenarioResult) error { results++; return nil },
		Finish: func(RunSummary) error { finishes++; return nil },
	}
	if err := renderWith(s, make([]ScenarioResult, 3)); err != nil {
		t.Fatalf("renderWith: %v", err)
	}
	if starts != 1 || results != 3 || finishes != 1 {
		t.Fatalf("callback counts: %d/%d/%d", starts, results, finishes)
	}
	// All-nil callbacks are a valid no-op sink.
	if err := renderWith(&FuncSink{}, make([]ScenarioResult, 1)); err != nil {
		t.Fatalf("nil callbacks: %v", err)
	}
}
