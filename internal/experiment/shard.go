package experiment

import (
	"fmt"

	"iotmpc/internal/cache"
)

// This file is the sharding layer of the sweep engine: one scenario matrix
// executed as N independent shard processes (possibly on N machines sharing
// one cache volume) whose outputs merge back into the exact artifact a
// single unsharded run produces.
//
// The contract that makes this trivial to get right is per-scenario seed
// derivation: every cell's randomness descends from Scenario.Seed, which is
// derived from (matrix seed, index) at expansion time. A cell therefore
// computes the same bytes no matter which shard — or how many shards — runs
// it, so any partition of the index space, any work-stealing interleaving,
// and any crash/resume schedule yields byte-identical merged output.

// ShardSpec selects one shard of a sweep. The zero value means "the whole
// matrix" (Total is normalized to 1); Total > 1 restricts a Runner to the
// Partition range of Shard and switches the completion manifest from the
// matrix manifest to a per-shard manifest (see MergeShards).
type ShardSpec struct {
	// Shard is the 0-based shard index, in [0, Total).
	Shard int
	// Total is the shard count, >= 1. 1 is the unsharded sweep.
	Total int
	// Steal makes the shard keep working after its own range completes:
	// it walks the other shards' cells in reverse index order, computing
	// and caching any cell not yet present. The cache's atomic Put makes a
	// double-computed cell harmless — both writers store identical bytes —
	// so stealing needs no coordination beyond the shared cache directory.
	Steal bool
}

// normalized maps the zero value to the explicit unsharded spec.
func (s ShardSpec) normalized() ShardSpec {
	if s.Total == 0 {
		s.Total = 1
	}
	return s
}

// Validate reports whether the spec denotes a real shard: Total >= 1 and
// Shard in [0, Total).
func (s ShardSpec) Validate() error {
	if s.Total < 1 {
		return fmt.Errorf("%w: shard total %d (need >= 1)", ErrBadSpec, s.Total)
	}
	if s.Shard < 0 || s.Shard >= s.Total {
		return fmt.Errorf("%w: shard %d outside [0,%d)", ErrBadSpec, s.Shard, s.Total)
	}
	return nil
}

// sharded reports whether the spec restricts execution to a proper subset.
func (s ShardSpec) sharded() bool { return s.Total > 1 }

// Range returns the half-open cell-index range [lo, hi) the (normalized)
// spec owns over n cells — Partition without the caller having to normalize
// the zero value first. The dispatch layers on both sides of a distributed
// sweep use it to agree on which rows a shard must produce.
func (s ShardSpec) Range(n int) (lo, hi int) {
	ns := s.normalized()
	return Partition(n, ns.Shard, ns.Total)
}

// Partition returns the half-open cell-index range [lo, hi) owned by shard
// `shard` of `total` over n cells: contiguous ranges in shard order, sizes
// differing by at most one, with the n%total remainder cells going to the
// lowest-numbered shards. Contiguity is deliberate — each shard emits its
// range in index order, so concatenating the shards' output streams in
// shard order reproduces the unsharded stream byte for byte.
//
// The spec must be valid (see ShardSpec.Validate); Partition panics on a
// malformed one, since every caller validates at its boundary.
func Partition(n, shard, total int) (lo, hi int) {
	if err := (ShardSpec{Shard: shard, Total: total}).Validate(); err != nil {
		panic(err)
	}
	if n < 0 {
		panic(fmt.Sprintf("experiment: Partition over %d cells", n))
	}
	base, rem := n/total, n%total
	if shard < rem {
		lo = shard * (base + 1)
		return lo, lo + base + 1
	}
	lo = rem*(base+1) + (shard-rem)*base
	return lo, lo + base
}

// shardManifestVersion stamps per-shard manifest entries. Like the matrix
// manifest, the key is derived from the per-cell keys (which carry
// ResultCacheVersion), so it needs no bump of its own.
const shardManifestVersion = "iotmpc/shard-manifest/v1"

// shardManifestKey is the content address of one shard's completion
// manifest: the digest of every cell key of the WHOLE matrix plus the shard
// coordinates. Hashing all keys — not just the shard's range — means a
// change to any cell anywhere invalidates every shard's manifest together
// with the matrix manifest, and the same matrix sharded two different ways
// never confuses one slicing's manifests for the other's.
func shardManifestKey(keys []string, shard, total int) string {
	payload := make([]byte, 0, len(keys)*65+24)
	for _, k := range keys {
		payload = append(payload, k...)
		payload = append(payload, '\n')
	}
	payload = append(payload, fmt.Sprintf("shard:%d/%d", shard, total)...)
	return cache.Key(shardManifestVersion, payload)
}

// MergeShards assembles a sharded sweep's full result list from the cache
// directory the shards shared, and writes the matrix manifest so the next
// unsharded run of the same matrix is a one-open manifest hit. The merged
// output is byte-identical to a single unsharded run: cells are the same
// content-addressed entries either way.
//
// Sources are consulted cheapest-first: the matrix manifest (a previous
// merge, or an unsharded run), then the shard manifests of a total-shard
// run, then per-cell entries — so a sweep whose shards all completed merges
// in `total` opens, and a sweep that was killed and patched up by reruns or
// work stealing still merges from its cells. total <= 1 skips the
// shard-manifest pass. Cells present nowhere are an error naming how many
// are missing; a merge never computes anything.
func MergeShards(cacheDir string, scenarios []Scenario, total int) ([]ScenarioResult, error) {
	if cacheDir == "" {
		return nil, fmt.Errorf("experiment: merge needs a cache directory")
	}
	store, err := cache.Open(cacheDir)
	if err != nil {
		return nil, err
	}
	n := len(scenarios)
	keys, err := scenarioKeys(scenarios)
	if err != nil {
		return nil, err
	}
	manifestKey := matrixManifestKey(keys)

	results := make([]ScenarioResult, n)
	done := make([]bool, n)
	remaining := n

	var whole []ScenarioResult
	if ok, err := store.Get(manifestKey, &whole); err != nil {
		return nil, err
	} else if ok && len(whole) == n {
		for i := range whole {
			whole[i].Cached = true
		}
		return whole, nil
	}

	for shard := 0; shard < total && remaining > 0; shard++ {
		lo, hi := Partition(n, shard, total)
		if lo == hi {
			continue
		}
		var part []ScenarioResult
		ok, err := store.Get(shardManifestKey(keys, shard, total), &part)
		if err != nil {
			return nil, err
		}
		if !ok || len(part) != hi-lo {
			continue // incomplete shard: its cells fall through to the per-cell pass
		}
		for i, r := range part {
			results[lo+i] = r
			done[lo+i] = true
			remaining--
		}
	}

	missing, firstMissing := 0, -1
	for i := 0; i < n; i++ {
		if done[i] {
			continue
		}
		var res ScenarioResult
		ok, err := store.Get(keys[i], &res)
		if err != nil {
			return nil, err
		}
		if !ok {
			missing++
			if firstMissing < 0 {
				firstMissing = i
			}
			continue
		}
		results[i] = res
		done[i] = true
	}
	if missing > 0 {
		return nil, fmt.Errorf(
			"experiment: merge incomplete: %d of %d cells missing from %s (first missing index %d); rerun the missing shards",
			missing, n, cacheDir, firstMissing)
	}

	// The merge's product: the same matrix manifest a single unsharded run
	// writes, under the same key with the same value bytes. Unlike the
	// Runner's best-effort manifest write, a merge that cannot persist its
	// manifest has failed at its one job.
	if err := store.Put(manifestKey, results); err != nil {
		return nil, err
	}
	for i := range results {
		results[i].Cached = true
	}
	return results, nil
}
