package experiment

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"iotmpc/internal/core"
)

// jsonlOf renders results exactly as JSONLSink streams them, so byte-level
// comparisons between sharded, merged, and unsharded output are possible.
func jsonlOf(t *testing.T, results []ScenarioResult) []byte {
	t.Helper()
	var b strings.Builder
	sink := &JSONLSink{W: &b}
	for _, r := range results {
		if err := sink.OnResult(r); err != nil {
			t.Fatal(err)
		}
	}
	return []byte(b.String())
}

func TestPartitionContiguousWithRemainder(t *testing.T) {
	for _, tc := range []struct{ n, total int }{
		{0, 1}, {0, 3}, {1, 1}, {1, 4}, {4, 3}, {5, 3}, {8, 3},
		{10, 4}, {7, 7}, {3, 5}, {64, 7}, {100, 1},
	} {
		base, rem := tc.n/tc.total, tc.n%tc.total
		prev := 0
		for shard := 0; shard < tc.total; shard++ {
			lo, hi := Partition(tc.n, shard, tc.total)
			if lo != prev {
				t.Fatalf("n=%d total=%d shard %d: range starts at %d, want %d (contiguity)",
					tc.n, tc.total, shard, lo, prev)
			}
			want := base
			if shard < rem {
				want++ // remainder cells go to the lowest-numbered shards
			}
			if hi-lo != want {
				t.Fatalf("n=%d total=%d shard %d: size %d, want %d", tc.n, tc.total, shard, hi-lo, want)
			}
			prev = hi
		}
		if prev != tc.n {
			t.Fatalf("n=%d total=%d: shards cover [0,%d), want [0,%d)", tc.n, tc.total, prev, tc.n)
		}
	}
}

func TestPartitionPanicsOnInvalidSpec(t *testing.T) {
	for _, bad := range [][3]int{{4, -1, 3}, {4, 3, 3}, {4, 0, 0}, {-1, 0, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Partition(%d, %d, %d) did not panic", bad[0], bad[1], bad[2])
				}
			}()
			Partition(bad[0], bad[1], bad[2])
		}()
	}
}

func TestShardSpecValidate(t *testing.T) {
	for _, ok := range []ShardSpec{{0, 1, false}, {0, 3, true}, {2, 3, false}} {
		if err := ok.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", ok, err)
		}
	}
	for _, bad := range []ShardSpec{{0, 0, false}, {0, -1, false}, {-1, 3, false}, {3, 3, false}} {
		if err := bad.Validate(); !errors.Is(err, ErrBadSpec) {
			t.Errorf("%+v: err = %v, want ErrBadSpec", bad, err)
		}
	}
	// The Runner validates the spec too: a bad WithShard is a run error,
	// not a panic.
	if _, err := NewRunner(WithShard(ShardSpec{Shard: 5, Total: 3})).Run(runnerMatrix()); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("runner accepted an invalid shard spec: %v", err)
	}
}

// TestShardedSweepByteIdenticalToUnsharded is the headline contract: for ANY
// shard count, the concatenated shard streams AND the merged sweep are
// byte-identical to a single unsharded run, and the merge leaves the exact
// matrix manifest an unsharded run would have written.
func TestShardedSweepByteIdenticalToUnsharded(t *testing.T) {
	m := runnerMatrix()
	baseline, err := RunMatrix(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	scenarios, err := m.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	n := len(scenarios)
	golden := jsonlOf(t, baseline)

	for _, total := range []int{1, 2, 3, n} {
		dir := t.TempDir()
		var concat []ScenarioResult
		var concatJSONL []byte
		for shard := 0; shard < total; shard++ {
			sink := &recordingSink{}
			got, err := NewRunner(WithCache(dir),
				WithShard(ShardSpec{Shard: shard, Total: total}),
				WithSinks(sink)).Run(m)
			if err != nil {
				t.Fatalf("total=%d shard=%d: %v", total, shard, err)
			}
			lo, hi := Partition(n, shard, total)
			if len(got) != hi-lo {
				t.Fatalf("total=%d shard=%d: returned %d cells, own range is %d", total, shard, len(got), hi-lo)
			}
			if !reflect.DeepEqual(sink.results, got) {
				t.Fatalf("total=%d shard=%d: sink stream diverged from returned results", total, shard)
			}
			for i, r := range got {
				if r.Scenario.Index != lo+i {
					t.Fatalf("total=%d shard=%d: emission %d carries index %d, want %d",
						total, shard, i, r.Scenario.Index, lo+i)
				}
			}
			if sink.summary.Cells != hi-lo || sink.summary.Computed != hi-lo {
				t.Fatalf("total=%d shard=%d: cold summary %+v", total, shard, sink.summary)
			}
			concat = append(concat, got...)
			concatJSONL = append(concatJSONL, jsonlOf(t, got)...)
		}
		if !reflect.DeepEqual(stripCached(concat), baseline) {
			t.Fatalf("total=%d: concatenated shard results differ from unsharded run", total)
		}
		if !bytes.Equal(concatJSONL, golden) {
			t.Fatalf("total=%d: concatenated shard JSONL differs from unsharded JSONL", total)
		}

		merged, err := MergeShards(dir, scenarios, total)
		if err != nil {
			t.Fatalf("total=%d: merge: %v", total, err)
		}
		if !reflect.DeepEqual(stripCached(merged), baseline) {
			t.Fatalf("total=%d: merged results differ from unsharded run", total)
		}
		if !bytes.Equal(jsonlOf(t, merged), golden) {
			t.Fatalf("total=%d: merged JSONL differs from unsharded JSONL", total)
		}
		for _, r := range merged {
			if !r.Cached {
				t.Fatalf("total=%d: merged cell %d not flagged cached", total, r.Scenario.Index)
			}
		}

		// The merge wrote the same matrix manifest a single run writes: an
		// unsharded rerun against this cache is a one-open manifest hit.
		warm := &recordingSink{}
		again, err := NewRunner(WithCache(dir), WithSinks(warm)).Run(m)
		if err != nil {
			t.Fatalf("total=%d: rerun: %v", total, err)
		}
		if !warm.plan.ManifestHit || warm.summary.Computed != 0 {
			t.Fatalf("total=%d: merged manifest not hit by unsharded rerun: plan %+v summary %+v",
				total, warm.plan, warm.summary)
		}
		if !reflect.DeepEqual(stripCached(again), baseline) {
			t.Fatalf("total=%d: manifest-served rerun diverged", total)
		}
	}
}

func TestShardManifestRerunFastPath(t *testing.T) {
	dir := t.TempDir()
	m := runnerMatrix()
	scenarios, err := m.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	spec := ShardSpec{Shard: 1, Total: 3}
	first, err := NewRunner(WithCache(dir), WithShard(spec)).Run(m)
	if err != nil {
		t.Fatal(err)
	}

	// A completed shard's rerun is served from its own manifest.
	warm := &recordingSink{}
	second, err := NewRunner(WithCache(dir), WithShard(spec), WithSinks(warm)).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.plan.ManifestHit || warm.summary.Computed != 0 || warm.summary.Resumed != 0 {
		t.Fatalf("shard rerun: plan %+v summary %+v", warm.plan, warm.summary)
	}
	if !reflect.DeepEqual(first, stripCached(second)) {
		t.Fatal("shard-manifest-served results differ from computed results")
	}

	// The shard manifest alone carries the range: delete every per-cell
	// entry and the rerun must still compute nothing.
	keys, err := scenarioKeys(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := Partition(len(scenarios), spec.Shard, spec.Total)
	for i := lo; i < hi; i++ {
		if err := os.Remove(filepath.Join(dir, keys[i]+".json")); err != nil {
			t.Fatal(err)
		}
	}
	bare := &recordingSink{}
	third, err := NewRunner(WithCache(dir), WithShard(spec), WithSinks(bare)).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bare.plan.ManifestHit || bare.summary.Computed != 0 {
		t.Fatalf("cell-less shard rerun: plan %+v summary %+v", bare.plan, bare.summary)
	}
	if !reflect.DeepEqual(first, stripCached(third)) {
		t.Fatal("cell-less shard rerun diverged")
	}

	// A different slicing of the same matrix must not reuse this manifest.
	other := &recordingSink{}
	if _, err := NewRunner(WithCache(dir),
		WithShard(ShardSpec{Shard: 1, Total: 2}), WithSinks(other)).Run(m); err != nil {
		t.Fatal(err)
	}
	if other.plan.ManifestHit {
		t.Fatalf("shard 1/2 reused shard 1/3's manifest: plan %+v", other.plan)
	}
}

// cancelAfterSink cancels the run's context after a fixed number of
// emissions — a deterministic stand-in for kill -9 mid-sweep.
type cancelAfterSink struct {
	recordingSink
	cancel context.CancelFunc
	after  int
}

func (c *cancelAfterSink) OnResult(r ScenarioResult) error {
	if err := c.recordingSink.OnResult(r); err != nil {
		return err
	}
	if len(c.results) == c.after {
		c.cancel()
	}
	return nil
}

// cacheEntryCount counts per-cell entries in dir (there is no manifest
// after an interrupted run, so every .json file is a cell).
func cacheEntryCount(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	return n
}

// TestShardKilledMidSweepResumes is the crash-safety acceptance test: a
// shard interrupted mid-range leaves its finished cells in the cache and no
// shard manifest; the rerun computes ONLY the missing cells and reports the
// inherited ones as Resumed.
func TestShardKilledMidSweepResumes(t *testing.T) {
	dir := t.TempDir()
	// Six cells so shard 0/2 owns three: with one worker and a cancel at the
	// first emission, at most two own cells can already be in flight and the
	// third is guaranteed to be skipped — the run reliably dies mid-range.
	m := Matrix{
		NodeCounts: []int{10, 12, 14},
		LossRates:  []float64{0.1, 0.3},
		Protocols:  []core.Protocol{core.S4},
		Iterations: 2,
		Seed:       7,
	}
	scenarios, err := m.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	n := len(scenarios)
	spec := ShardSpec{Shard: 0, Total: 2}
	lo, hi := Partition(n, spec.Shard, spec.Total)
	own := hi - lo

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killed := &cancelAfterSink{cancel: cancel, after: 1}
	_, err = NewRunner(WithContext(ctx), WithCache(dir), WithShard(spec),
		WithWorkers(1), WithSinks(killed)).Run(m)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}

	// Whatever finished before the kill is cached; nothing else is, and no
	// manifest was written.
	cached := cacheEntryCount(t, dir)
	if cached < 1 || cached >= own {
		t.Fatalf("interrupted run cached %d cells, want in [1,%d)", cached, own)
	}

	resumedRun := &recordingSink{}
	results, err := NewRunner(WithCache(dir), WithShard(spec), WithSinks(resumedRun)).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	sum := resumedRun.summary
	if sum.Computed != own-cached {
		t.Fatalf("resume computed %d cells, want only the %d missing ones", sum.Computed, own-cached)
	}
	if sum.Resumed != cached || sum.CacheHits != cached {
		t.Fatalf("resume summary %+v, want %d resumed", sum, cached)
	}

	// The resumed shard is indistinguishable from a never-killed one:
	// finish the other shard and the merge matches the unsharded run.
	if _, err := NewRunner(WithCache(dir), WithShard(ShardSpec{Shard: 1, Total: 2})).Run(m); err != nil {
		t.Fatal(err)
	}
	merged, err := MergeShards(dir, scenarios, 2)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := RunMatrix(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripCached(merged), baseline) {
		t.Fatal("post-resume merge differs from unsharded run")
	}
	if !reflect.DeepEqual(stripCached(results), baseline[lo:hi]) {
		t.Fatal("resumed shard results differ from unsharded run")
	}
}

func TestShardWorkStealingCoversLaggingShards(t *testing.T) {
	dir := t.TempDir()
	m := runnerMatrix()
	scenarios, err := m.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	n := len(scenarios)
	lo, hi := Partition(n, 0, 2)
	own := hi - lo

	thief := &recordingSink{}
	got, err := NewRunner(WithCache(dir),
		WithShard(ShardSpec{Shard: 0, Total: 2, Steal: true}),
		WithSinks(thief)).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	// The thief computed the whole matrix but emitted only its own range.
	if thief.summary.Stolen != n-own {
		t.Fatalf("stole %d cells, want %d", thief.summary.Stolen, n-own)
	}
	if len(got) != own || len(thief.results) != own {
		t.Fatalf("thief emitted %d cells, want own range %d", len(thief.results), own)
	}

	// The victim shard finds all its cells pre-computed.
	victim := &recordingSink{}
	if _, err := NewRunner(WithCache(dir),
		WithShard(ShardSpec{Shard: 1, Total: 2}), WithSinks(victim)).Run(m); err != nil {
		t.Fatal(err)
	}
	if victim.summary.Computed != 0 || victim.summary.Resumed != n-own {
		t.Fatalf("victim summary %+v, want 0 computed / %d resumed", victim.summary, n-own)
	}

	merged, err := MergeShards(dir, scenarios, 2)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := RunMatrix(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripCached(merged), baseline) {
		t.Fatal("stolen-and-merged sweep differs from unsharded run")
	}
}

func TestMergeShardsIncompleteFails(t *testing.T) {
	dir := t.TempDir()
	m := runnerMatrix()
	scenarios, err := m.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRunner(WithCache(dir), WithShard(ShardSpec{Shard: 0, Total: 3})).Run(m); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeShards(dir, scenarios, 3); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("merge of an incomplete sweep: err = %v, want missing-cells error", err)
	}
	for shard := 1; shard < 3; shard++ {
		if _, err := NewRunner(WithCache(dir), WithShard(ShardSpec{Shard: shard, Total: 3})).Run(m); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := MergeShards(dir, scenarios, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Merging is idempotent: the second call hits the matrix manifest the
	// first one wrote.
	again, err := MergeShards(dir, scenarios, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged, again) {
		t.Fatal("repeated merge diverged")
	}
	// And a merge told nothing about the shard count still assembles from
	// the per-cell entries (drop the manifest the first merge wrote).
	keys, err := scenarioKeys(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, matrixManifestKey(keys)+".json")); err != nil {
		t.Fatal(err)
	}
	fromCells, err := MergeShards(dir, scenarios, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged, fromCells) {
		t.Fatal("per-cell merge diverged from shard-manifest merge")
	}
}

func TestMergeShardsValidation(t *testing.T) {
	m := runnerMatrix()
	scenarios, err := m.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeShards("", scenarios, 2); err == nil {
		t.Fatal("merge accepted an empty cache directory")
	}
	if _, err := MergeShards(t.TempDir(), scenarios, 2); err == nil {
		t.Fatal("merge of an empty cache succeeded")
	}
}

// TestShardSpecRange: Range is Partition over the normalized spec — the
// zero value owns the whole index space.
func TestShardSpecRange(t *testing.T) {
	if lo, hi := (ShardSpec{}).Range(7); lo != 0 || hi != 7 {
		t.Fatalf("zero spec range [%d,%d), want [0,7)", lo, hi)
	}
	for shard := 0; shard < 3; shard++ {
		wantLo, wantHi := Partition(10, shard, 3)
		lo, hi := ShardSpec{Shard: shard, Total: 3}.Range(10)
		if lo != wantLo || hi != wantHi {
			t.Errorf("shard %d/3 range [%d,%d), want [%d,%d)", shard, lo, hi, wantLo, wantHi)
		}
	}
}
