package experiment

import (
	"errors"
	"strings"
	"testing"
)

func TestBaselineComparisonShape(t *testing.T) {
	rows, err := BaselineComparison(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	byName := make(map[string]BaselineRow, 3)
	for _, r := range rows {
		byName[r.Protocol] = r
	}
	s3, s4, he := byName["S3"], byName["S4"], byName["HE"]

	// The paper's framing, quantified:
	// HE is computation-bound — its CPU time dwarfs both SSS variants'.
	if he.CPUBusyMS < 1000*s4.CPUBusyMS {
		t.Errorf("HE CPU %.1f ms not orders above S4's %.3f ms", he.CPUBusyMS, s4.CPUBusyMS)
	}
	// CT-based SSS is communication-bound — its radio time dwarfs HE's.
	if s3.RadioOnMS.Mean < 10*he.RadioOnMS.Mean {
		t.Errorf("S3 radio %.1f ms not far above HE's %.1f ms", s3.RadioOnMS.Mean, he.RadioOnMS.Mean)
	}
	// S4 beats HE end-to-end on latency (HE pays ~18 s of crypto).
	if s4.LatencyMS.Mean >= he.LatencyMS.Mean {
		t.Errorf("S4 latency %.1f not below HE %.1f", s4.LatencyMS.Mean, he.LatencyMS.Mean)
	}
	// And S4 is the cheapest in battery charge.
	if s4.ChargeMC >= he.ChargeMC || s4.ChargeMC >= s3.ChargeMC {
		t.Errorf("S4 charge %.2f mC not the lowest (S3 %.2f, HE %.2f)",
			s4.ChargeMC, s3.ChargeMC, he.ChargeMC)
	}
}

func TestBaselineComparisonErrors(t *testing.T) {
	if _, err := BaselineComparison(0, 1); !errors.Is(err, ErrBadSpec) {
		t.Errorf("zero iterations: %v, want ErrBadSpec", err)
	}
}

func TestBaselineTable(t *testing.T) {
	rows := []BaselineRow{{Protocol: "S4"}}
	out := BaselineTable(rows)
	if !strings.Contains(out, "S4") || !strings.Contains(out, "charge") {
		t.Errorf("table malformed:\n%s", out)
	}
}
