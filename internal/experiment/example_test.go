package experiment_test

import (
	"fmt"

	"iotmpc/internal/core"
	"iotmpc/internal/experiment"
)

// A Matrix declares a sweep as per-axis value lists; Scenarios expands the
// cross product with a deterministic per-scenario seed. Feed the matrix to
// RunMatrix to execute it across a worker pool.
func ExampleMatrix_Scenarios() {
	m := experiment.Matrix{
		NodeCounts: []int{15, 30},
		LossRates:  []float64{0.0, 0.4},
		Protocols:  []core.Protocol{core.S3, core.S4},
		Iterations: 100,
		Seed:       1,
	}
	scenarios, err := m.Scenarios()
	if err != nil {
		panic(err)
	}
	fmt.Println("scenarios:", len(scenarios))
	first := scenarios[0]
	fmt.Printf("first: n=%d loss=%.1f proto=%v\n", first.Nodes, first.LossRate, first.Protocol)
	last := scenarios[len(scenarios)-1]
	fmt.Printf("last:  n=%d loss=%.1f proto=%v\n", last.Nodes, last.LossRate, last.Protocol)
	fmt.Println("distinct seeds:", scenarios[0].Seed != scenarios[1].Seed)
	// Output:
	// scenarios: 8
	// first: n=15 loss=0.0 proto=S3
	// last:  n=30 loss=0.4 proto=S4
	// distinct seeds: true
}
