package experiment

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file holds the Sink implementations the CLIs compose: a human
// progress narrator (stderr), the aligned text table, CSV via encoding/csv,
// and JSONL. All of them are pure stream consumers — one row out per
// OnResult — so a million-cell sweep renders in constant memory.

// ProgressSink narrates a sweep for a human watching it run: the plan at
// OnStart, one line per completed cell, and a cache-accounting summary at
// OnFinish. Point it at stderr so machine output on stdout stays clean.
type ProgressSink struct {
	W io.Writer

	cells int
	seen  int
}

// OnStart implements Sink. The "(manifest hit)" marker is load-bearing: the
// CI manifest check asserts a warm rerun took the one-open fast path rather
// than probing cells.
func (p *ProgressSink) OnStart(plan Plan) error {
	n := len(plan.Scenarios)
	p.cells = n
	p.seen = 0
	shardNote := ""
	if plan.Shard.Total > 1 {
		lo, hi := Partition(n, plan.Shard.Shard, plan.Shard.Total)
		p.cells = hi - lo
		shardNote = fmt.Sprintf(" (shard %d/%d of %d: cells [%d,%d))",
			plan.Shard.Shard, plan.Shard.Total, n, lo, hi)
	}
	cacheNote := "cache off"
	if plan.CacheDir != "" {
		if plan.ManifestHit {
			cacheNote = fmt.Sprintf("%d cached in %s (manifest hit)", plan.CacheHits, plan.CacheDir)
		} else {
			cacheNote = fmt.Sprintf("cache %s (cell probing overlaps execution)", plan.CacheDir)
		}
	}
	_, err := fmt.Fprintf(p.W, "sweep: %d cells%s, %d workers, %s\n", p.cells, shardNote, plan.Workers, cacheNote)
	return err
}

// OnResult implements Sink.
func (p *ProgressSink) OnResult(r ScenarioResult) error {
	p.seen++
	sc := r.Scenario
	note := ""
	if r.Cached {
		note = " (cached)"
	}
	_, err := fmt.Fprintf(p.W, "[%d/%d] idx=%d %s n=%d deg=%d loss=%.2f %v ok=%.1f%%%s\n",
		p.seen, p.cells, sc.Index, backendLabel(sc), sc.Nodes, sc.Degree,
		sc.LossRate, sc.Protocol, r.SuccessRate*100, note)
	return err
}

// OnFinish implements Sink. The "N cached, M computed" phrasing is load-
// bearing: the CI cache round-trip asserts a warm rerun reports 0 computed.
func (p *ProgressSink) OnFinish(sum RunSummary) error {
	line := fmt.Sprintf("sweep finished: %d cells, %d cached, %d computed",
		sum.Cells, sum.CacheHits, sum.Computed)
	if sum.Resumed > 0 {
		line += fmt.Sprintf(" (%d resumed from an earlier run)", sum.Resumed)
	}
	if sum.Stolen > 0 {
		line += fmt.Sprintf(", %d stolen for lagging shards", sum.Stolen)
	}
	if _, err := fmt.Fprintln(p.W, line); err != nil {
		return err
	}
	if sum.ManifestWriteError {
		if _, err := fmt.Fprintln(p.W,
			"warning: the sweep's completion manifest could not be persisted (the next run probes per-cell entries instead)"); err != nil {
			return err
		}
	}
	if sum.CacheWriteErrors > 0 {
		if _, err := fmt.Fprintf(p.W,
			"warning: %d results could not be persisted to the cache (they will be recomputed next run)\n",
			sum.CacheWriteErrors); err != nil {
			return err
		}
	}
	return nil
}

// TableSink streams a sweep as the aligned text table (header at OnStart,
// one row per result).
type TableSink struct {
	W io.Writer
}

// OnStart implements Sink.
func (t *TableSink) OnStart(Plan) error {
	if _, err := fmt.Fprintln(t.W,
		"Scenario matrix — backend × nodes × degree × loss × ntx × slack × fail × vss × veclen × protocol"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(t.W, "%-5s %-10s %-6s %-7s %-6s %-4s %-6s %-5s %-4s %-6s %-6s %14s %14s %10s %7s\n",
		"idx", "phy", "nodes", "degree", "loss", "ntx", "slack", "fail", "vss", "veclen", "proto",
		"latency (ms)", "radio-on (ms)", "success", "failed")
	return err
}

// OnResult implements Sink.
func (t *TableSink) OnResult(r ScenarioResult) error {
	sc := r.Scenario
	vss := "-"
	if sc.Verifiable {
		vss = "yes"
	}
	_, err := fmt.Fprintf(t.W, "%-5d %-10s %-6d %-7d %-6.2f %-4d %-6d %-5.2f %-4s %-6d %-6s %14.1f %14.1f %9.1f%% %7d\n",
		sc.Index, backendLabel(sc), sc.Nodes, sc.Degree, sc.LossRate,
		sc.NTXSharing, sc.DestSlack, sc.FailureRate, vss, sc.VectorLen, sc.Protocol,
		r.LatencyMS.Mean, r.RadioOnMS.Mean, r.SuccessRate*100, r.FailedRounds)
	return err
}

// OnFinish implements Sink.
func (t *TableSink) OnFinish(RunSummary) error { return nil }

// matrixCSVHeader and matrixCSVRecord define the one CSV schema shared by
// CSVSink and MatrixCSV.
var matrixCSVHeader = []string{
	"index", "backend", "testbed", "nodes", "sources", "degree", "loss_rate", "protocol",
	"ntx_sharing", "dest_slack", "failure_rate", "verifiable", "vector_len",
	"latency_ms_mean", "latency_ms_ci95", "radio_ms_mean", "radio_ms_ci95",
	"success_rate", "failed_rounds",
}

func matrixCSVRecord(r ScenarioResult) []string {
	sc := r.Scenario
	return []string{
		strconv.Itoa(sc.Index),
		backendLabel(sc),
		sc.Testbed,
		strconv.Itoa(sc.Nodes),
		strconv.Itoa(sc.SourceCount),
		strconv.Itoa(sc.Degree),
		fmt.Sprintf("%.3f", sc.LossRate),
		sc.Protocol.String(),
		strconv.Itoa(sc.NTXSharing),
		strconv.Itoa(sc.DestSlack),
		fmt.Sprintf("%.3f", sc.FailureRate),
		strconv.FormatBool(sc.Verifiable),
		strconv.Itoa(sc.VectorLen),
		fmt.Sprintf("%.3f", r.LatencyMS.Mean),
		fmt.Sprintf("%.3f", r.LatencyMS.CI95),
		fmt.Sprintf("%.3f", r.RadioOnMS.Mean),
		fmt.Sprintf("%.3f", r.RadioOnMS.CI95),
		fmt.Sprintf("%.4f", r.SuccessRate),
		strconv.Itoa(r.FailedRounds),
	}
}

// CSVSink streams a sweep as RFC-4180 CSV via encoding/csv, so fields that
// contain commas or quotes — a trace backend spec like
// "trace:path,with,commas" — are quoted instead of corrupting the row.
type CSVSink struct {
	W io.Writer

	w *csv.Writer
}

// OnStart implements Sink.
func (c *CSVSink) OnStart(Plan) error {
	c.w = csv.NewWriter(c.W)
	return c.w.Write(matrixCSVHeader)
}

// OnResult implements Sink. Each record is flushed through to the
// underlying writer immediately: an interrupted sweep (SIGINT on the CLI, a
// draining service) must never drop rows of already-completed cells inside
// the csv writer's buffer.
func (c *CSVSink) OnResult(r ScenarioResult) error {
	if err := c.w.Write(matrixCSVRecord(r)); err != nil {
		return err
	}
	c.w.Flush()
	return c.w.Error()
}

// OnFinish implements Sink.
func (c *CSVSink) OnFinish(RunSummary) error {
	c.w.Flush()
	return c.w.Error()
}

// JSONLSink streams a sweep as JSON Lines: one ScenarioResult object per
// line, parseable incrementally while the sweep is still running.
type JSONLSink struct {
	W io.Writer
}

// OnStart implements Sink.
func (j *JSONLSink) OnStart(Plan) error { return nil }

// OnResult implements Sink.
func (j *JSONLSink) OnResult(r ScenarioResult) error {
	raw, err := json.Marshal(r)
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	_, err = j.W.Write(raw)
	return err
}

// OnFinish implements Sink.
func (j *JSONLSink) OnFinish(RunSummary) error { return nil }

// FuncSink adapts up to three callbacks into a Sink; nil callbacks are
// skipped. It is the one-off-consumer escape hatch: the CLI counts completed
// cells for its interrupt report with one, the service fans progress into
// its SSE hub with another, neither deserving a named type.
type FuncSink struct {
	Start  func(Plan) error
	Result func(ScenarioResult) error
	Finish func(RunSummary) error
}

// OnStart implements Sink.
func (f *FuncSink) OnStart(p Plan) error {
	if f.Start == nil {
		return nil
	}
	return f.Start(p)
}

// OnResult implements Sink.
func (f *FuncSink) OnResult(r ScenarioResult) error {
	if f.Result == nil {
		return nil
	}
	return f.Result(r)
}

// OnFinish implements Sink.
func (f *FuncSink) OnFinish(s RunSummary) error {
	if f.Finish == nil {
		return nil
	}
	return f.Finish(s)
}

// renderWith drives a sink over an already-computed result slice — the batch
// adapters MatrixTable and MatrixCSV are this over a strings.Builder.
func renderWith(s Sink, results []ScenarioResult) error {
	if err := s.OnStart(Plan{Scenarios: scenariosOf(results)}); err != nil {
		return err
	}
	for _, r := range results {
		if err := s.OnResult(r); err != nil {
			return err
		}
	}
	return s.OnFinish(RunSummary{Cells: len(results)})
}

func scenariosOf(results []ScenarioResult) []Scenario {
	out := make([]Scenario, len(results))
	for i, r := range results {
		out[i] = r.Scenario
	}
	return out
}

// MatrixTable renders a sweep as an aligned text table.
func MatrixTable(results []ScenarioResult) string {
	var b strings.Builder
	if err := renderWith(&TableSink{W: &b}, results); err != nil {
		// strings.Builder writes cannot fail; nothing else errors.
		panic(err)
	}
	return b.String()
}

// MatrixCSV renders a sweep as CSV, one record per scenario.
func MatrixCSV(results []ScenarioResult) string {
	var b strings.Builder
	if err := renderWith(&CSVSink{W: &b}, results); err != nil {
		panic(err)
	}
	return b.String()
}
