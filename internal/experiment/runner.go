package experiment

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync/atomic"

	"iotmpc/internal/cache"
	"iotmpc/internal/phy"
)

// Runner is the streaming sweep engine: it executes a Matrix (or an explicit
// scenario list) across a worker pool and emits every ScenarioResult to the
// configured Sinks the moment its cell completes — in deterministic index
// order, so the emitted stream (and the returned slice) is byte-identical
// for any worker count. With a cache directory configured, cells whose
// content address is already stored are served without simulating anything,
// which makes repeated and interrupted sweeps pay only for new work.
//
// RunMatrix remains as a thin compatibility wrapper over a sink-less Runner.
type Runner struct {
	workers      int
	trialWorkers int
	lanes        int
	cacheDir     string
	shard        ShardSpec
	sinks        []Sink
	ctx          context.Context
	executor     Executor
}

// DefaultLaneCount is the trial-lane width Runner sweeps execute with: full
// 64-lane batches. Lane execution is bit-identical to scalar execution for
// any width (pinned by core's equivalence tests), so the default is purely a
// throughput choice and never affects results or cache keys.
const DefaultLaneCount = phy.MaxLanes

// Option configures a Runner.
type Option func(*Runner)

// WithWorkers sets the scenario-level worker count (<= 0 selects
// GOMAXPROCS). Cells fan across these workers; the emitted results do not
// depend on the count.
func WithWorkers(n int) Option { return func(r *Runner) { r.workers = n } }

// WithTrialWorkers sets the trial-level worker count inside each scenario
// (<= 0 selects GOMAXPROCS, default 1). Matrix sweeps parallelize across
// cells and leave this at 1; single-cell callers (cmd/mpcsim) raise it to
// fan Monte-Carlo trials across cores instead. Results are identical for
// any value. Like WithWorkers, the <= 0 sentinel resolves to GOMAXPROCS at
// run time, not here — a GOMAXPROCS change between construction and Run is
// honored by both pools.
func WithTrialWorkers(n int) Option {
	return func(r *Runner) { r.trialWorkers = n }
}

// WithLanes sets the bit-sliced trial batch width, 1..phy.MaxLanes (<= 0
// selects DefaultLaneCount, larger values clamp to phy.MaxLanes). Width 1
// runs every trial scalar — the reference path; wider lanes batch that many
// consecutive trials of a cell into one bit-sliced execution. Emitted
// results are identical for any value.
func WithLanes(n int) Option {
	return func(r *Runner) {
		switch {
		case n <= 0:
			r.lanes = DefaultLaneCount
		case n > phy.MaxLanes:
			r.lanes = phy.MaxLanes
		default:
			r.lanes = n
		}
	}
}

// WithCache enables the content-addressed result cache rooted at dir (see
// ScenarioCacheKey for the address definition).
func WithCache(dir string) Option { return func(r *Runner) { r.cacheDir = dir } }

// WithShard restricts execution to one shard of the sweep: the Partition
// range of spec.Shard out of spec.Total contiguous cell ranges. The shard
// emits exactly its own range to the sinks (in index order, so shard
// streams concatenate into the unsharded stream), writes a per-shard
// manifest on completion, and — with spec.Steal — keeps computing other
// shards' missing cells afterwards. Sharding never changes what any cell
// computes; MergeShards reassembles the byte-identical full sweep. The
// zero spec is the unsharded default.
func WithShard(spec ShardSpec) Option { return func(r *Runner) { r.shard = spec } }

// WithSinks appends result sinks. Sinks are driven from a single goroutine
// in scenario-index order and need no internal locking.
func WithSinks(sinks ...Sink) Option {
	return func(r *Runner) { r.sinks = append(r.sinks, sinks...) }
}

// WithContext attaches a cancellation context: cancelling it stops the
// dispatch of not-yet-started cells (in-flight cells finish) and Run returns
// the context's error.
func WithContext(ctx context.Context) Option { return func(r *Runner) { r.ctx = ctx } }

// CellTask is one pending (cache-missed) cell the Runner hands to an
// external Executor instead of its own worker pool. Index is the cell's
// position in the expanded matrix; Run simulates the cell (or, if the
// Runner has since been canceled or failed, cheaply reports it skipped).
type CellTask struct {
	Index int
	run   func()
}

// Run executes the task. It must be called exactly once, from any
// goroutine; the Runner blocks until every submitted task has run.
func (t CellTask) Run() { t.run() }

// Executor runs cells on behalf of a Runner. Submit must not block beyond
// enqueueing, and the executor must eventually call Run on every submitted
// task exactly once — even after the Runner's context is canceled, when the
// task degenerates to a cheap skip notification. The contract exists for
// schedulers that interleave cells from several concurrent sweeps over one
// shared worker pool (the sweep service's fair scheduler).
type Executor interface {
	Submit(CellTask)
}

// WithExecutor replaces the Runner's internal worker pool with an external
// executor: every cache-missed cell is submitted as a CellTask and the
// executor decides when (and on which worker) it runs. Emission order,
// results, and the cache protocol are unchanged — an executor only
// reorders *when* cells compute, never what they compute, so the emitted
// stream stays byte-identical to an internally-pooled run.
func WithExecutor(ex Executor) Option { return func(r *Runner) { r.executor = ex } }

// NewRunner builds a Runner from options. The zero configuration (no
// options) is RunMatrix's historical behavior: GOMAXPROCS workers, no cache,
// no sinks.
func NewRunner(opts ...Option) *Runner {
	r := &Runner{trialWorkers: 1, lanes: DefaultLaneCount, ctx: context.Background()}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Plan is what sinks learn at OnStart: the fully expanded scenario list and
// how the sweep will execute. CacheHits counts the cells already known to be
// served from the cache when execution begins — the whole matrix on a
// manifest hit; with pipelined per-cell probing the hits are discovered
// while the sweep runs and reported in RunSummary instead.
type Plan struct {
	Scenarios []Scenario
	Workers   int
	CacheDir  string
	CacheHits int
	// ManifestHit reports that the whole sweep was served from its
	// manifest — the matrix manifest, or this shard's manifest on a
	// sharded run — one index file open instead of one stat per cell.
	ManifestHit bool
	// Shard is the (normalized) shard assignment; Total 1 is unsharded.
	// Scenarios always holds the full matrix — the shard's own range is
	// Partition(len(Scenarios), Shard.Shard, Shard.Total).
	Shard ShardSpec
}

// RunSummary is what sinks learn at OnFinish. On a sharded run every count
// covers the shard's own Partition range, except Stolen.
type RunSummary struct {
	Cells     int
	CacheHits int
	Computed  int
	// Resumed counts the cells the probe pipeline found already cached
	// while the sweep ran — work inherited from an earlier (killed or
	// concurrent) invocation instead of recomputed. Whole-sweep manifest
	// hits resolve before execution and are CacheHits but not Resumed.
	Resumed int
	// Stolen counts cells OUTSIDE this shard's range computed by work
	// stealing after the own range finished. Stolen results go to the
	// cache for their owner (and the merge) to pick up; they are never
	// emitted to this shard's sinks.
	Stolen int
	// CacheWriteErrors counts computed cells whose result could not be
	// persisted (full or read-only cache volume). The cache is an
	// optimization, so write failures never abort a sweep — they just mean
	// those cells will be recomputed next time.
	CacheWriteErrors int
	// ManifestWriteError reports that the sweep completed but its
	// completion manifest (matrix or shard) could not be written: the next
	// run falls back to per-cell probing, and a merge falls back to
	// per-cell entries. Cell persistence is accounted separately above.
	ManifestWriteError bool
}

// Sink consumes a sweep as a stream. OnResult is called exactly once per
// scenario, in index order, as soon as that cell (and every cell before it)
// has completed; all three methods are called from one goroutine. A non-nil
// error aborts the sweep.
type Sink interface {
	OnStart(plan Plan) error
	OnResult(r ScenarioResult) error
	OnFinish(sum RunSummary) error
}

// ResultCacheVersion stamps every cache key with the simulation code
// version. Bump it whenever a change alters what any scenario computes
// (protocol logic, PHY models, metric folding) so stale entries become
// misses instead of silently wrong answers.
//
// Deliberately NOT bumped for the batched-sealing release: scalar rounds
// are bit-identical to before (pinned in core's golden test), so every
// pre-existing entry is still a correct answer. Entries written before
// ScenarioResult gained its informational chain-accounting fields
// (SharingChainLen/ShareAirBytes) decode with them zero; those fields
// describe the result, they never feed back into simulation.
const ResultCacheVersion = "iotmpc/scenario-result/v1"

// manifestVersion stamps matrix manifest entries: one cache file indexing a
// whole sweep's results. It needs no bump when ResultCacheVersion bumps —
// the manifest key is derived from the per-cell keys, which already carry
// the result version.
const manifestVersion = "iotmpc/matrix-manifest/v1"

// matrixManifestKey is the content address of a sweep's manifest: the
// digest of every cell key in index order. Any change to any cell — a
// swept value, the derived seed, a trace file's bytes, the code version —
// changes some cell key and therefore misses the old manifest.
func matrixManifestKey(keys []string) string {
	payload := make([]byte, 0, len(keys)*65) // 64 hex digits + separator each
	for _, k := range keys {
		payload = append(payload, k...)
		payload = append(payload, '\n')
	}
	return cache.Key(manifestVersion, payload)
}

// ScenarioCacheKey is the content address of a scenario's result: the
// SHA-256 of ResultCacheVersion plus the scenario's canonical (JSON)
// encoding — every swept field, including the derived seed — plus, for
// trace backends that reference a file on disk, a digest of the file's
// contents, so editing a trace invalidates its cached cells. Bundled traces
// are code and ride on the version stamp.
func ScenarioCacheKey(sc Scenario) (string, error) {
	digest, err := backendContentDigest(sc.Backend)
	if err != nil {
		return "", err
	}
	return scenarioKeyWithDigest(sc, digest)
}

// scenarioKeyWithDigest is ScenarioCacheKey with the backend content digest
// already resolved, so sweeps hash a shared trace file once per distinct
// spec instead of once per cell.
func scenarioKeyWithDigest(sc Scenario, digest string) (string, error) {
	payload, err := json.Marshal(sc)
	if err != nil {
		return "", fmt.Errorf("experiment: encode scenario: %w", err)
	}
	payload = append(payload, digest...)
	return cache.Key(ResultCacheVersion, payload), nil
}

// backendContentDigest hashes the trace file a backend spec references, or
// returns "" for specs that carry no external content (traceIsFile is the
// shared disk-vs-bundled rule).
func backendContentDigest(spec string) (string, error) {
	kind, arg, _ := strings.Cut(spec, ":")
	if kind != "trace" || arg == "" || !traceIsFile(arg) {
		return "", nil
	}
	raw, err := os.ReadFile(arg)
	if err != nil {
		return "", fmt.Errorf("experiment: hash trace %q: %w", arg, err)
	}
	sum := sha256.Sum256(raw)
	return fmt.Sprintf("trace:%x", sum), nil
}

// ScenarioKeys computes every cell's content address in index order —
// scenarioKeys exported for the sweep service, whose result rows are keyed
// by exactly these addresses (dedup across jobs rides on the cache keys).
func ScenarioKeys(scenarios []Scenario) ([]string, error) {
	return scenarioKeys(scenarios)
}

// scenarioKeys computes every cell's content address, hashing each distinct
// trace file once per sweep instead of once per cell. Sharding and merging
// both key the whole matrix — a shard needs every key for its manifests and
// for work stealing, not just its own range's.
func scenarioKeys(scenarios []Scenario) ([]string, error) {
	keys := make([]string, len(scenarios))
	digests := make(map[string]string)
	for i, sc := range scenarios {
		digest, ok := digests[sc.Backend]
		if !ok {
			var err error
			if digest, err = backendContentDigest(sc.Backend); err != nil {
				return nil, err
			}
			digests[sc.Backend] = digest
		}
		key, err := scenarioKeyWithDigest(sc, digest)
		if err != nil {
			return nil, err
		}
		keys[i] = key
	}
	return keys, nil
}

// resolvedWorkers maps the <= 0 "pick for me" sentinels of both worker
// knobs to GOMAXPROCS at run time. Resolving lazily (rather than when the
// option is applied) keeps the two knobs consistent and honors a
// GOMAXPROCS change made between NewRunner and Run.
func (r *Runner) resolvedWorkers() (workers, trialWorkers int) {
	workers, trialWorkers = r.workers, r.trialWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if trialWorkers <= 0 {
		trialWorkers = runtime.GOMAXPROCS(0)
	}
	return workers, trialWorkers
}

// Run expands the matrix and executes it; see RunScenarios.
func (r *Runner) Run(m Matrix) ([]ScenarioResult, error) {
	scenarios, err := m.Scenarios()
	if err != nil {
		return nil, err
	}
	return r.RunScenarios(scenarios)
}

// compMsg reports one cell's completion from the pool or the probe
// pipeline to the collector.
type compMsg struct {
	index   int
	err     error
	skipped bool // not executed: dispatch stopped by cancellation or failure
	cached  bool // served by the probe pipeline from the cell cache
}

// RunScenarios executes an explicit scenario list (normally the output of
// Matrix.Scenarios; cmd/mpcsim passes a single hand-built cell). Results are
// returned — and streamed to the sinks — in list order, independent of
// worker count. The first failing cell's error is returned (deterministic:
// the lowest failing index), and it stops the dispatch of cells that have
// not started yet.
//
// With a cache configured, two mechanisms keep very large matrices from
// paying per-cell cache latency up front:
//
//   - Manifest fast path: a fully completed sweep leaves one manifest
//     entry indexing every cell result under the digest of the cell key
//     list (per-shard on a sharded run). An identical rerun loads the
//     whole sweep from that single file — O(1) opens for 10⁵+ cells —
//     before execution begins.
//   - Probe pipeline: on a manifest miss, a prober walks the cells in
//     index order, serving hits itself and forwarding misses straight to
//     the worker pool, so cache I/O overlaps simulation instead of
//     serially preceding it. A cell cached by an earlier killed run — or
//     by another shard's work stealing — resolves here, which is what
//     makes any interrupted sweep resumable for free; the summary reports
//     such cells as Resumed.
//
// With WithShard only the shard's Partition range executes and is
// returned/emitted; see WithShard and MergeShards.
func (r *Runner) RunScenarios(scenarios []Scenario) ([]ScenarioResult, error) {
	n := len(scenarios)
	spec := r.shard.normalized()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	lo, hi := Partition(n, spec.Shard, spec.Total)

	// Resolve each distinct backend spec once (trace files parse once per
	// sweep, not once per cell); the map is read-only once workers start.
	factories := make(map[string]phy.Factory)
	for _, sc := range scenarios {
		if _, ok := factories[sc.Backend]; !ok {
			f, err := ParseBackend(sc.Backend)
			if err != nil {
				return nil, err
			}
			factories[sc.Backend] = f
		}
	}

	var store *cache.Store
	if r.cacheDir != "" {
		var err error
		if store, err = cache.Open(r.cacheDir); err != nil {
			return nil, err
		}
	}

	results := make([]ScenarioResult, n)
	done := make([]bool, n)
	hits := 0
	manifestHit := false
	var keys []string
	var manifestKey string
	if store != nil {
		// Cell keys are pure hashing over in-memory scenario encodings (plus
		// one trace-file read per distinct spec) — cheap even at 10⁵ cells.
		var err error
		if keys, err = scenarioKeys(scenarios); err != nil {
			return nil, err
		}
		manifestKey = matrixManifestKey(keys)
		var cached []ScenarioResult
		if ok, err := store.Get(manifestKey, &cached); err != nil {
			return nil, err
		} else if ok && len(cached) == n {
			for i := range cached {
				cached[i].Cached = true
				results[i] = cached[i]
				done[i] = true
			}
			hits = hi - lo
			manifestHit = true
		}
		if !manifestHit && spec.sharded() {
			// A completed shard's rerun takes the same one-open fast path
			// through the shard's own manifest.
			var part []ScenarioResult
			if ok, err := store.Get(shardManifestKey(keys, spec.Shard, spec.Total), &part); err != nil {
				return nil, err
			} else if ok && len(part) == hi-lo {
				for i := range part {
					part[i].Cached = true
					results[lo+i] = part[i]
					done[lo+i] = true
				}
				hits = hi - lo
				manifestHit = true
			}
		}
	}

	workers, trialWorkers := r.resolvedWorkers()
	plan := Plan{Scenarios: scenarios, Workers: workers, CacheDir: r.cacheDir,
		CacheHits: hits, ManifestHit: manifestHit, Shard: spec}
	for _, s := range r.sinks {
		if err := s.OnStart(plan); err != nil {
			return nil, err
		}
	}

	var pending []int
	for i := lo; i < hi; i++ {
		if !done[i] {
			pending = append(pending, i)
		}
	}

	// The collector below runs on this goroutine: it drains completion
	// messages, marks cells done, and advances the emission frontier,
	// calling sinks for every completed prefix cell of the shard's own
	// range. Sinks therefore see results in index order no matter how the
	// pool interleaves.
	next := lo
	var sinkErr error
	emit := func() {
		for next < hi && done[next] && sinkErr == nil {
			for _, s := range r.sinks {
				if err := s.OnResult(results[next]); err != nil {
					sinkErr = err
					return
				}
			}
			next++
		}
	}
	emit() // a manifest hit streams the whole range out before any simulation
	if sinkErr != nil {
		// A sink died on the cached prefix (e.g. a closed downstream pipe):
		// abort before starting the pool rather than simulating cells whose
		// output has nowhere to go.
		return nil, sinkErr
	}

	var putErrors atomic.Int64
	resumed := 0
	failed := false
	if len(pending) > 0 {
		if workers > len(pending) {
			workers = len(pending)
		}
		idxCh := make(chan int)
		// Buffered to the sweep size: the prober must keep probing (and
		// resolving hits) while the pool is saturated with a cold prefix,
		// not stall behind the first two outstanding misses.
		missCh := make(chan int, len(pending))
		compCh := make(chan compMsg)
		stop := make(chan struct{})
		var stopOnce func()
		{
			closed := false
			stopOnce = func() {
				if !closed {
					closed = true
					close(stop)
				}
			}
		}
		// runOne is the worker body: simulate the cell, persist it, report.
		runOne := func(i int) {
			sc := scenarios[i]
			res, err := runScenario(sc, factories[sc.Backend], trialWorkers, r.lanes)
			if err == nil {
				results[i] = res
				if store != nil && store.Put(keys[i], res) != nil {
					// The cache is an optimization: a failed write
					// (full disk, read-only dir) must not discard a
					// successfully computed sweep. The cell is simply
					// not reusable next run; the summary counts it.
					putErrors.Add(1)
				}
			}
			compCh <- compMsg{index: i, err: err}
		}
		if r.executor == nil {
			for w := 0; w < workers; w++ {
				go func() {
					for i := range idxCh {
						runOne(i)
					}
				}()
			}
		}
		// Prober: resolves each pending cell against the cache in index
		// order, completing hits itself and handing misses to the
		// dispatcher. Without a store it degenerates to a pass-through, and
		// once the sweep is told to stop it forwards the remainder unprobed
		// so the dispatcher can account for them as skipped.
		go func() {
			defer close(missCh)
			aborted := false
			for _, i := range pending {
				if !aborted {
					select {
					case <-r.ctx.Done():
						aborted = true
					case <-stop:
						aborted = true
					default:
					}
				}
				if store == nil || aborted {
					missCh <- i
					continue
				}
				var res ScenarioResult
				ok, err := store.Get(keys[i], &res)
				switch {
				case err != nil:
					compCh <- compMsg{index: i, err: err}
				case ok:
					res.Cached = true
					results[i] = res
					compCh <- compMsg{index: i, cached: true}
				default:
					missCh <- i
				}
			}
		}()
		// Dispatcher: forwards cache misses to the pool. The stop pre-check
		// matters: a worker parked on idxCh makes both select cases ready,
		// and select's random choice must not dispatch work after the sweep
		// has been told to stop.
		go func() {
			defer close(idxCh)
			stopped := false
			for i := range missCh {
				if !stopped {
					select {
					case <-r.ctx.Done():
						stopped = true
					case <-stop:
						stopped = true
					default:
					}
				}
				if stopped {
					compCh <- compMsg{index: i, skipped: true}
					continue
				}
				if r.executor != nil {
					// External scheduling: hand the cell over and move on.
					// The stop re-check lives inside the task, because an
					// executor may sit on it arbitrarily long while other
					// jobs' cells run.
					r.executor.Submit(CellTask{Index: i, run: func() {
						select {
						case <-r.ctx.Done():
							compCh <- compMsg{index: i, skipped: true}
							return
						case <-stop:
							compCh <- compMsg{index: i, skipped: true}
							return
						default:
						}
						runOne(i)
					}})
					continue
				}
				select {
				case idxCh <- i:
				case <-r.ctx.Done():
					stopped = true
					compCh <- compMsg{index: i, skipped: true}
				case <-stop:
					stopped = true
					compCh <- compMsg{index: i, skipped: true}
				}
			}
		}()

		errAt := make([]error, n)
		for remaining := len(pending); remaining > 0; remaining-- {
			msg := <-compCh
			switch {
			case msg.skipped:
				// never started; nothing to record
			case msg.err != nil:
				errAt[msg.index] = msg.err
				failed = true
				stopOnce()
			default:
				if msg.cached {
					hits++
					resumed++
				}
				done[msg.index] = true
				emit()
				if sinkErr != nil {
					failed = true
					stopOnce()
				}
			}
		}
		if sinkErr != nil {
			return nil, sinkErr
		}
		if failed {
			for _, err := range errAt {
				if err != nil {
					return nil, err
				}
			}
		}
		if err := r.ctx.Err(); err != nil && next < hi {
			return nil, err
		}
	}
	if sinkErr != nil {
		return nil, sinkErr
	}

	// Every own cell resolved: index the sweep under its completion
	// manifest — the matrix manifest unsharded, the shard's own manifest
	// sharded — so the next identical run opens one file instead of probing
	// cells, and a merge assembles from `total` manifests instead of n
	// cells. Like cell writes, a failed manifest write only costs future
	// speed, but it is tracked separately from CacheWriteErrors: every
	// computed cell's result WAS persisted.
	manifestWriteError := false
	if store != nil && !manifestHit && !failed && next == hi {
		if spec.sharded() {
			manifestWriteError = store.Put(shardManifestKey(keys, spec.Shard, spec.Total), results[lo:hi]) != nil
		} else {
			manifestWriteError = store.Put(manifestKey, results) != nil
		}
	}

	// Work stealing: the own range is complete, other shards may be
	// lagging. Walk their cells in reverse index order — away from each
	// owner's forward progress, so thief and owner meet once in the middle
	// instead of racing cell after cell — and compute whatever the cache
	// does not yet hold. A double compute against the owner is harmless:
	// per-scenario seeds make both results identical and the cache's
	// atomic Put makes the duplicate write a no-op overwrite.
	stolen := 0
	if spec.Steal && spec.sharded() && store != nil && !failed && next == hi {
	steal:
		for i := n - 1; i >= 0; i-- {
			if (i >= lo && i < hi) || done[i] {
				continue
			}
			select {
			case <-r.ctx.Done():
				break steal // own work is complete; stop stealing quietly
			default:
			}
			var res ScenarioResult
			ok, err := store.Get(keys[i], &res)
			if err != nil {
				return nil, err
			}
			if ok {
				continue
			}
			sc := scenarios[i]
			out, err := runScenario(sc, factories[sc.Backend], trialWorkers, r.lanes)
			if err != nil {
				return nil, err
			}
			if store.Put(keys[i], out) != nil {
				putErrors.Add(1)
			}
			stolen++
		}
	}

	sum := RunSummary{
		Cells:              hi - lo,
		CacheHits:          hits,
		Computed:           (hi - lo) - hits,
		Resumed:            resumed,
		Stolen:             stolen,
		CacheWriteErrors:   int(putErrors.Load()),
		ManifestWriteError: manifestWriteError,
	}
	for _, s := range r.sinks {
		if err := s.OnFinish(sum); err != nil {
			return nil, err
		}
	}
	return results[lo:hi], nil
}

// RunMatrix expands the matrix and fans the scenarios across a worker pool
// (workers <= 0 selects GOMAXPROCS). It is the historical batch entry
// point, kept as a thin wrapper over Runner: results land at their
// scenario's index, so the output — down to the last float — is identical
// for any worker count, including 1.
func RunMatrix(m Matrix, workers int) ([]ScenarioResult, error) {
	return NewRunner(WithWorkers(workers)).Run(m)
}
