package experiment

import (
	"errors"
	"reflect"
	"testing"

	"iotmpc/internal/core"
	"iotmpc/internal/sim"
)

func TestMatrixExpansion(t *testing.T) {
	m := Matrix{
		NodeCounts: []int{10, 20},
		Degrees:    []int{0, 3},
		LossRates:  []float64{0.0, 0.2, 0.4},
		Protocols:  []core.Protocol{core.S4},
		Iterations: 5,
		Seed:       42,
	}
	scenarios, err := m.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 2*2*3*1 {
		t.Fatalf("expanded %d scenarios, want 12", len(scenarios))
	}
	for i, sc := range scenarios {
		if sc.Index != i {
			t.Fatalf("scenario %d has index %d", i, sc.Index)
		}
		if sc.Seed != sim.DeriveSeed(42, uint64(i)) {
			t.Fatalf("scenario %d seed %d, want DeriveSeed(42,%d)", i, sc.Seed, i)
		}
		if sc.Iterations != 5 {
			t.Fatalf("scenario %d iterations %d", i, sc.Iterations)
		}
	}
	// Protocol is the innermost axis; with one protocol, loss varies fastest.
	if scenarios[0].LossRate != 0.0 || scenarios[1].LossRate != 0.2 || scenarios[2].LossRate != 0.4 {
		t.Fatalf("unexpected loss ordering: %v %v %v",
			scenarios[0].LossRate, scenarios[1].LossRate, scenarios[2].LossRate)
	}
	if scenarios[0].Nodes != 10 || scenarios[6].Nodes != 20 {
		t.Fatalf("unexpected node ordering: %d %d", scenarios[0].Nodes, scenarios[6].Nodes)
	}
}

func TestMatrixDefaults(t *testing.T) {
	m := Matrix{NodeCounts: []int{12}, Iterations: 1}
	scenarios, err := m.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	// Default axes: one degree (n/3), one loss rate (PHY default), S3+S4.
	if len(scenarios) != 2 {
		t.Fatalf("expanded %d scenarios, want 2", len(scenarios))
	}
	if scenarios[0].Protocol != core.S3 || scenarios[1].Protocol != core.S4 {
		t.Fatalf("default protocols: %v %v", scenarios[0].Protocol, scenarios[1].Protocol)
	}
}

func TestMatrixValidation(t *testing.T) {
	cases := []Matrix{
		{Iterations: 1},                       // no node counts
		{NodeCounts: []int{10}},               // no iterations
		{NodeCounts: []int{3}, Iterations: 1}, // too small
		{NodeCounts: []int{10}, LossRates: []float64{1.0}, Iterations: 1},                // loss out of range
		{NodeCounts: []int{10}, LossRates: []float64{-0.25}, Iterations: 1},              // negative loss
		{NodeCounts: []int{10}, VectorLens: []int{-1}, Iterations: 1},                    // negative veclen
		{NodeCounts: []int{10}, VectorLens: []int{core.MaxVectorLen + 1}, Iterations: 1}, // frame overflow
	}
	for i, m := range cases {
		if _, err := m.Scenarios(); !errors.Is(err, ErrBadSpec) {
			t.Fatalf("case %d: %v", i, err)
		}
	}
}

func TestMatrixVectorLenAxis(t *testing.T) {
	m := Matrix{
		NodeCounts: []int{10},
		VectorLens: []int{0, 4, 8},
		Protocols:  []core.Protocol{core.S3, core.S4},
		Iterations: 1,
		Seed:       5,
	}
	scenarios, err := m.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 3*2 {
		t.Fatalf("expanded %d scenarios, want 6", len(scenarios))
	}
	// Protocol stays innermost: each vector length appears as an adjacent
	// S3/S4 pair.
	wantVec := []int{0, 0, 4, 4, 8, 8}
	for i, sc := range scenarios {
		if sc.VectorLen != wantVec[i] {
			t.Fatalf("scenario %d veclen = %d, want %d", i, sc.VectorLen, wantVec[i])
		}
	}
}

func TestMatrixVectorLenDefaultKeepsSeeds(t *testing.T) {
	// A matrix that does not sweep VectorLens must expand to the exact
	// scenarios (indices, seeds, encodings — hence cache keys) it did
	// before the axis existed.
	without, err := testMatrix().Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	withDefault := testMatrix()
	withDefault.VectorLens = []int{0}
	explicit, err := withDefault.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(without, explicit) {
		t.Fatal("explicit VectorLens {0} expands differently from nil")
	}
	for _, sc := range without {
		key, err := ScenarioCacheKey(sc)
		if err != nil {
			t.Fatal(err)
		}
		vecSc := sc
		vecSc.VectorLen = 8
		vecKey, err := ScenarioCacheKey(vecSc)
		if err != nil {
			t.Fatal(err)
		}
		if key == vecKey {
			t.Fatalf("scenario %d: veclen 8 shares a cache key with the scalar cell", sc.Index)
		}
	}
}

func TestRunScenarioVectorChainAccounting(t *testing.T) {
	// The batched-sealing contract the CI gate enforces, asserted at the
	// library layer: same chain length as the scalar round, one sealed
	// packet of 8·L+MIC per (source, destination), air bytes strictly
	// below L scalar chains.
	base := Scenario{Nodes: 12, Protocol: core.S4, Iterations: 2, Seed: 11}
	scalar, err := RunScenario(base)
	if err != nil {
		t.Fatal(err)
	}
	vec := base
	vec.VectorLen = 8
	vecRes, err := RunScenario(vec)
	if err != nil {
		t.Fatal(err)
	}
	if scalar.SharingChainLen == 0 || scalar.ShareAirBytes == 0 {
		t.Fatalf("scalar chain accounting empty: %+v", scalar)
	}
	if vecRes.SharingChainLen != scalar.SharingChainLen {
		t.Errorf("veclen 8 chain = %d, want %d", vecRes.SharingChainLen, scalar.SharingChainLen)
	}
	if vecRes.ShareAirBytes >= 8*scalar.ShareAirBytes {
		t.Errorf("veclen 8 air bytes %d not below 8× scalar %d",
			vecRes.ShareAirBytes, scalar.ShareAirBytes)
	}
	// Exact payload relation: (9+8·8+4) vector bytes per sub-slot vs
	// (9+8+4) scalar bytes.
	if vecRes.ShareAirBytes*21 != scalar.ShareAirBytes*77 {
		t.Errorf("air-byte ratio %d/%d, want exactly 77/21",
			vecRes.ShareAirBytes, scalar.ShareAirBytes)
	}
}

func testMatrix() Matrix {
	return Matrix{
		NodeCounts: []int{10, 14},
		LossRates:  []float64{0.1, 0.3},
		Protocols:  []core.Protocol{core.S4},
		Iterations: 3,
		Seed:       7,
	}
}

func TestRunMatrixParallelMatchesSequential(t *testing.T) {
	// The acceptance bar for the parallel engine: identical results — every
	// float of every summary — for any worker count.
	sequential, err := RunMatrix(testMatrix(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 4} {
		parallel, err := RunMatrix(testMatrix(), workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sequential, parallel) {
			t.Fatalf("workers=%d diverged from sequential run:\nseq: %+v\npar: %+v",
				workers, sequential, parallel)
		}
	}
}

func TestRunMatrixRepeatable(t *testing.T) {
	a, err := RunMatrix(testMatrix(), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMatrix(testMatrix(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same matrix, same seed, different results")
	}
}

func TestRunScenarioLossRateDegradesSuccess(t *testing.T) {
	base := Scenario{Nodes: 12, Protocol: core.S4, Iterations: 8, Seed: sim.DeriveSeed(7, 0)}
	clean := base
	clean.LossRate = 0.0
	noisy := base
	noisy.LossRate = 0.6

	cleanRes, err := RunScenario(clean)
	if err != nil {
		t.Fatal(err)
	}
	noisyRes, err := RunScenario(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if noisyRes.SuccessRate > cleanRes.SuccessRate {
		t.Fatalf("loss 0.6 succeeded more (%.3f) than loss 0.0 (%.3f)",
			noisyRes.SuccessRate, cleanRes.SuccessRate)
	}
}

func TestMatrixRenderers(t *testing.T) {
	results, err := RunMatrix(Matrix{
		NodeCounts: []int{10},
		Protocols:  []core.Protocol{core.S4},
		Iterations: 2,
		Seed:       7,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	table := MatrixTable(results)
	if table == "" || len(table) < 50 {
		t.Fatalf("table too short: %q", table)
	}
	csv := MatrixCSV(results)
	if csv == "" {
		t.Fatal("empty CSV")
	}
	// One header plus one line per scenario.
	lines := 0
	for _, c := range csv {
		if c == '\n' {
			lines++
		}
	}
	if lines != 1+len(results) {
		t.Fatalf("CSV has %d lines, want %d", lines, 1+len(results))
	}
}
