package experiment

import (
	"fmt"
	"strings"

	"iotmpc/internal/minicast"
	"iotmpc/internal/phy"
	"iotmpc/internal/sim"
	"iotmpc/internal/topology"
)

// CoveragePoint is one sample of the MiniCast coverage-vs-NTX curve — the
// characterization behind the paper's Section III observation that coverage
// grows quickly at low NTX and saturates slowly toward full coverage.
type CoveragePoint struct {
	NTX          int     `json:"ntx"`
	MeanCoverage float64 `json:"meanCoverage"`
	FullCoverage float64 `json:"fullCoverageRate"` // fraction of rounds with 100% coverage
}

// CoverageCurve measures all-to-all MiniCast coverage on a testbed for each
// NTX value.
func CoverageCurve(testbed topology.Topology, ntxs []int, iterations int, seed int64) ([]CoveragePoint, error) {
	if iterations <= 0 || len(ntxs) == 0 {
		return nil, fmt.Errorf("%w: iterations %d, %d NTX values", ErrBadSpec, iterations, len(ntxs))
	}
	ch, err := testbed.Channel(phy.DefaultParams(), seed)
	if err != nil {
		return nil, err
	}
	n := ch.NumNodes()
	items := make([]minicast.Item, n)
	for i := range items {
		items[i] = minicast.Item{Owner: i, Dst: -1}
	}
	points := make([]CoveragePoint, 0, len(ntxs))
	for _, ntx := range ntxs {
		if ntx <= 0 {
			return nil, fmt.Errorf("%w: NTX %d", ErrBadSpec, ntx)
		}
		total, full := 0.0, 0
		for it := 0; it < iterations; it++ {
			rng := sim.NewRNG(seed, uint64(0xC0F0+ntx*10000+it))
			res, err := minicast.Run(minicast.Config{
				Channel:      ch,
				Initiator:    0,
				NTX:          ntx,
				Items:        items,
				PayloadBytes: 20,
			}, rng, nil, nil)
			if err != nil {
				return nil, err
			}
			cov := res.MeanCoverage()
			total += cov
			if cov == 1 {
				full++
			}
		}
		points = append(points, CoveragePoint{
			NTX:          ntx,
			MeanCoverage: total / float64(iterations),
			FullCoverage: float64(full) / float64(iterations),
		})
	}
	return points, nil
}

// CoverageTable renders the curve as text.
func CoverageTable(name string, points []CoveragePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — MiniCast all-to-all coverage vs NTX\n", name)
	fmt.Fprintf(&b, "%-6s %14s %18s\n", "NTX", "mean coverage", "full-coverage rate")
	for _, p := range points {
		fmt.Fprintf(&b, "%-6d %13.1f%% %17.1f%%\n", p.NTX, p.MeanCoverage*100, p.FullCoverage*100)
	}
	return b.String()
}
