package experiment

import (
	"fmt"
	"strings"

	"iotmpc/internal/topology"
)

// NamedTestbed resolves the fixed deployments scenarios can name via
// Scenario.Testbed (and cmd/mpcsim via -testbed): the two paper facilities
// plus the synthetic grid and line layouts the CLI has always offered.
// Names are case-insensitive.
func NamedTestbed(name string) (topology.Topology, error) {
	switch strings.ToLower(name) {
	case "flocklab":
		return topology.FlockLab(), nil
	case "dcube":
		return topology.DCube(), nil
	case "grid":
		return topology.Grid(4, 5, 30)
	case "line":
		return topology.Line(10, 35)
	default:
		return topology.Topology{}, fmt.Errorf("%w: unknown testbed %q (want flocklab, dcube, grid, line)",
			ErrBadSpec, name)
	}
}
