package experiment

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"iotmpc/internal/core"
	"iotmpc/internal/phy"
	"iotmpc/internal/trace"
)

func TestParseBackendSpecs(t *testing.T) {
	// Default and explicit log-distance resolve to a nil factory (core's
	// default).
	for _, spec := range []string{"", DefaultBackend} {
		f, err := ParseBackend(spec)
		if err != nil || f != nil {
			t.Fatalf("spec %q: factory %v err %v, want nil nil", spec, f, err)
		}
	}
	params := phy.IdealParams()
	pos := []phy.Position{{}, {X: 10}}

	f, err := ParseBackend("unitdisk")
	if err != nil {
		t.Fatal(err)
	}
	r, err := f(params, pos, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.(*phy.UnitDisk).Radius(); got != phy.UnitDiskRadius(params) {
		t.Fatalf("bare unitdisk radius %v, want derived", got)
	}

	f, err = ParseBackend("unitdisk:25:5")
	if err != nil {
		t.Fatal(err)
	}
	r, err = f(params, pos, 1)
	if err != nil {
		t.Fatal(err)
	}
	u := r.(*phy.UnitDisk)
	if u.Radius() != 25 || u.GrayWidth() != 5 {
		t.Fatalf("unitdisk:25:5 → radius %v gray %v", u.Radius(), u.GrayWidth())
	}

	f, err = ParseBackend("trace:line5")
	if err != nil {
		t.Fatal(err)
	}
	r, err = f(params, make([]phy.Position, 5), 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumNodes() != 5 {
		t.Fatalf("bundled trace nodes %d", r.NumNodes())
	}

	// A trace loaded from disk.
	dir := t.TempDir()
	path := filepath.Join(dir, "two.csv")
	if err := os.WriteFile(path, []byte("nodes,2\n0,1,1\n1,0,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseBackend("trace:" + path); err != nil {
		t.Fatalf("trace from disk: %v", err)
	}
}

func TestParseBackendErrors(t *testing.T) {
	for _, spec := range []string{
		"warp-drive",
		"logdist:3",
		"unitdisk:tiny",
		"unitdisk:10:wide",
		"unitdisk:-40",  // negative radius must not silently derive the default
		"unitdisk:0:-1", // negative gray width fails at parse time
		"unitdisk:NaN",  // NaN radius
		"trace:",
		"trace:/no/such/file.csv",
		"trace:testbed1O", // typo'd bundled name resolves against the bundle
	} {
		if _, err := ParseBackend(spec); !errors.Is(err, ErrBadSpec) {
			t.Errorf("spec %q: error %v, want ErrBadSpec", spec, err)
		}
	}
}

func TestMatrixRejectsUnknownBackendAtExpansion(t *testing.T) {
	m := Matrix{
		Backends:   []string{"logdist", "warp-drive"},
		NodeCounts: []int{10},
		Iterations: 1,
	}
	if _, err := m.Scenarios(); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("unknown backend at expansion: %v", err)
	}
}

// TestMatrixRejectsTraceNodeMismatchAtExpansion: a trace backend's fixed
// node count must be checked against every NodeCounts entry before any
// simulation runs, not discovered mid-sweep.
func TestMatrixRejectsTraceNodeMismatchAtExpansion(t *testing.T) {
	m := Matrix{
		Backends:   []string{"logdist", "trace:testbed10"},
		NodeCounts: []int{10, 15}, // 15 conflicts with the 10-node trace
		Iterations: 1,
	}
	if _, err := m.Scenarios(); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("trace/node-count conflict at expansion: %v", err)
	}
	m.NodeCounts = []int{10}
	if _, err := m.Scenarios(); err != nil {
		t.Fatalf("matching node count rejected: %v", err)
	}
}

func TestMatrixBackendAxisExpansion(t *testing.T) {
	m := Matrix{
		Backends:   []string{"logdist", "unitdisk"},
		NodeCounts: []int{10},
		Protocols:  []core.Protocol{core.S4},
		Iterations: 1,
		Seed:       3,
	}
	scenarios, err := m.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 2 {
		t.Fatalf("expanded %d scenarios, want 2", len(scenarios))
	}
	// Backend is the outermost axis.
	if scenarios[0].Backend != "logdist" || scenarios[1].Backend != "unitdisk" {
		t.Fatalf("backend ordering: %q %q", scenarios[0].Backend, scenarios[1].Backend)
	}
}

// backendMatrix sweeps all three backend families over a 10-node
// deployment (the bundled testbed10 trace fixes the node count).
func backendMatrix() Matrix {
	return Matrix{
		Backends:   []string{"logdist", "unitdisk", "unitdisk:45:10", "trace:testbed10"},
		NodeCounts: []int{10},
		LossRates:  []float64{0.0, 0.2},
		Protocols:  []core.Protocol{core.S4},
		Iterations: 3,
		Seed:       9,
	}
}

// TestRunMatrixBackendDeterministicAcrossWorkers extends the worker-count
// determinism bar to the backend axis: the same matrix — including unit-disk
// and trace-replay cells — yields byte-identical ScenarioResults for 1 and N
// workers.
func TestRunMatrixBackendDeterministicAcrossWorkers(t *testing.T) {
	sequential, err := RunMatrix(backendMatrix(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 4} {
		parallel, err := RunMatrix(backendMatrix(), workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sequential, parallel) {
			t.Fatalf("workers=%d diverged from sequential run on the backend axis", workers)
		}
	}
}

// TestRunScenarioUnitDiskIdealIsLossless pins the idealized backend's
// end-to-end behavior: with no injected loss and an ideal disk covering the
// deployment, every node of every round reconstructs the aggregate.
func TestRunScenarioUnitDiskIdealIsLossless(t *testing.T) {
	res, err := RunScenario(Scenario{
		Backend:    "unitdisk",
		Nodes:      10,
		LossRate:   0.0,
		Protocol:   core.S4,
		Iterations: 4,
		Seed:       11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessRate != 1 {
		t.Fatalf("ideal unit-disk success rate %v, want exactly 1", res.SuccessRate)
	}
	if res.FailedRounds != 0 {
		t.Fatalf("ideal unit-disk failed rounds %d", res.FailedRounds)
	}
}

// TestRunScenarioTraceNodeMismatch: a trace backend pins the node count; a
// scenario sized differently must fail loudly, not truncate.
func TestRunScenarioTraceNodeMismatch(t *testing.T) {
	_, err := RunScenario(Scenario{
		Backend:    "trace:testbed10",
		Nodes:      15,
		Protocol:   core.S4,
		Iterations: 1,
		Seed:       1,
	})
	if !errors.Is(err, trace.ErrBadTrace) {
		t.Fatalf("node mismatch: %v", err)
	}
}
