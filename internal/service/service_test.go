package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"iotmpc/internal/experiment"
	"iotmpc/internal/store"
)

// testMatrix is the suite's standard 4-cell sweep (2 loss rates × S3/S4 at
// 8 nodes): big enough to have a resume story, small enough to simulate in
// milliseconds.
func testMatrix() experiment.Matrix {
	return experiment.Matrix{
		NodeCounts: []int{8},
		LossRates:  []float64{0, 0.3},
		Iterations: 2,
		Seed:       7,
	}
}

// localJSONL runs the matrix on a plain Runner and returns the JSONL bytes
// the CLI would print — the golden the HTTP stream must match exactly.
func localJSONL(t *testing.T, m experiment.Matrix) []byte {
	t.Helper()
	var buf bytes.Buffer
	r := experiment.NewRunner(experiment.WithSinks(&experiment.JSONLSink{W: &buf}))
	if _, err := r.Run(m); err != nil {
		t.Fatalf("local run: %v", err)
	}
	return buf.Bytes()
}

// fixture is one service under test: store + cache in temp dirs, an
// httptest front end, and the scheduler running.
type fixture struct {
	st  *store.Store
	svc *Server
	ts  *httptest.Server
}

func newFixture(t *testing.T, storeDir, cacheDir string, start bool) *fixture {
	t.Helper()
	st, err := store.Open(storeDir)
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	svc, err := New(Config{Store: st, CacheDir: cacheDir})
	if err != nil {
		st.Close()
		t.Fatalf("service: %v", err)
	}
	f := &fixture{st: st, svc: svc, ts: httptest.NewServer(svc.Handler())}
	if start {
		svc.Start()
	}
	t.Cleanup(func() {
		f.ts.Close()
		f.svc.Close()
		f.st.Close()
	})
	return f
}

func (f *fixture) submit(t *testing.T, m experiment.Matrix) store.Job {
	t.Helper()
	spec, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(f.ts.URL+"/jobs", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var job store.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatalf("decode job: %v", err)
	}
	return job
}

func (f *fixture) job(t *testing.T, id string) store.Job {
	t.Helper()
	resp, err := http.Get(f.ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatalf("poll: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("poll: status %d", resp.StatusCode)
	}
	var job store.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatalf("decode job: %v", err)
	}
	return job
}

func (f *fixture) waitDone(t *testing.T, id string) store.Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		job := f.job(t, id)
		switch job.State {
		case store.Done:
			return job
		case store.Failed:
			t.Fatalf("job %s failed: %s", id, job.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return store.Job{}
}

func (f *fixture) results(t *testing.T, id string) []byte {
	t.Helper()
	resp, err := http.Get(f.ts.URL + "/jobs/" + id + "/results")
	if err != nil {
		t.Fatalf("results: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results: status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("results: %v", err)
	}
	return raw
}

// TestJobLifecycle is the core loop: submit → poll → done → stream results,
// with the HTTP JSONL byte-identical to the CLI's for the same matrix.
func TestJobLifecycle(t *testing.T) {
	f := newFixture(t, t.TempDir(), t.TempDir(), true)
	m := testMatrix()
	job := f.submit(t, m)
	if job.State != store.Queued || job.Cells != 4 {
		t.Fatalf("submitted job %+v", job)
	}
	done := f.waitDone(t, job.ID)
	if done.Completed != 4 || done.Computed != 4 || done.CacheHits != 0 {
		t.Fatalf("summary after first run: %+v", done)
	}
	got := f.results(t, job.ID)
	want := localJSONL(t, m)
	if !bytes.Equal(got, want) {
		t.Fatalf("HTTP results differ from CLI JSONL:\n got: %s\nwant: %s", got, want)
	}
}

// TestDuplicateSubmitComputesZero is the dedup acceptance bar: the second
// job over the same matrix must be served entirely from the shared corpus.
func TestDuplicateSubmitComputesZero(t *testing.T) {
	f := newFixture(t, t.TempDir(), t.TempDir(), true)
	m := testMatrix()
	first := f.waitDone(t, f.submit(t, m).ID)
	second := f.waitDone(t, f.submit(t, m).ID)
	if second.Computed != 0 {
		t.Fatalf("second submission computed %d cells, want 0 (%+v)", second.Computed, second)
	}
	if second.CacheHits != second.Cells {
		t.Fatalf("second submission: %d hits of %d cells", second.CacheHits, second.Cells)
	}
	if got, want := f.results(t, second.ID), f.results(t, first.ID); !bytes.Equal(got, want) {
		t.Fatal("dedup'd job streams different bytes")
	}
}

// TestRunnerConfigDoesNotChangeBytes pins the acceptance requirement that
// the streamed results are byte-identical for any worker/lane configuration.
func TestRunnerConfigDoesNotChangeBytes(t *testing.T) {
	m := testMatrix()
	want := localJSONL(t, m)
	for _, cfg := range []Config{
		{Workers: 1, Lanes: 1},
		{Workers: 3, Lanes: 5},
	} {
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store, cfg.CacheDir = st, t.TempDir()
		svc, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(svc.Handler())
		svc.Start()
		f := &fixture{st: st, svc: svc, ts: ts}
		job := f.waitDone(t, f.submit(t, m).ID)
		if got := f.results(t, job.ID); !bytes.Equal(got, want) {
			t.Errorf("workers=%d lanes=%d: bytes differ from CLI", cfg.Workers, cfg.Lanes)
		}
		ts.Close()
		svc.Close()
		st.Close()
	}
}

// TestSubmitValidation asserts bad specs die at the door as 400s that name
// the offending JSON field — never inside the Runner.
func TestSubmitValidation(t *testing.T) {
	f := newFixture(t, t.TempDir(), t.TempDir(), false)
	cases := []struct {
		name, body, wantInError string
	}{
		{"unknown field", `{"nodeCount":[8],"iterations":1}`, "nodeCount"},
		{"missing nodeCounts", `{"iterations":3}`, "nodeCounts"},
		{"tiny network", `{"nodeCounts":[2],"iterations":3}`, "nodeCounts"},
		{"zero iterations", `{"nodeCounts":[8]}`, "iterations"},
		{"bad loss", `{"nodeCounts":[8],"iterations":1,"lossRates":[2.0]}`, "lossRates"},
		{"bad backend", `{"nodeCounts":[8],"iterations":1,"backends":["warp"]}`, "backends"},
		{"not json", `{{{`, "decode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(f.ts.URL+"/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			body, _ := io.ReadAll(resp.Body)
			if !strings.Contains(string(body), tc.wantInError) {
				t.Errorf("error body %s does not mention %q", body, tc.wantInError)
			}
		})
	}
	// Nothing queued by any of the rejects.
	if jobs := f.st.Jobs(); len(jobs) != 0 {
		t.Fatalf("rejected submissions left %d jobs", len(jobs))
	}
}

func TestUnknownJobRoutes(t *testing.T) {
	f := newFixture(t, t.TempDir(), t.TempDir(), false)
	for _, path := range []string{"/jobs/j999999", "/jobs/j999999/results", "/jobs/j999999/events"} {
		resp, err := http.Get(f.ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

// readSSE parses events off a text/event-stream body until it closes or n
// events arrive.
func readSSE(r io.Reader, n int) []sseEvent {
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.name != "":
			events = append(events, cur)
			cur = sseEvent{}
			if len(events) >= n {
				return events
			}
		}
	}
	return events
}

// TestSSELifecycle subscribes before the scheduler starts, so the full
// event stream — initial state, per-cell progress, terminal state — is
// observable; a second subscriber that disconnects immediately (churn) must
// not disturb the first.
func TestSSELifecycle(t *testing.T) {
	f := newFixture(t, t.TempDir(), t.TempDir(), false)
	job := f.submit(t, testMatrix())

	resp, err := http.Get(f.ts.URL + "/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	// Churn: a subscriber that connects and immediately goes away.
	churn, err := http.Get(f.ts.URL + "/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	churn.Body.Close()

	f.svc.Start()

	// Drain to EOF: the handler closes the stream after the terminal state.
	events := readSSE(resp.Body, 100)
	if len(events) < 3 {
		t.Fatalf("got %d events: %+v", len(events), events)
	}
	if events[0].name != "state" {
		t.Fatalf("first event %q, want state snapshot", events[0].name)
	}
	progress := 0
	for _, ev := range events {
		if ev.name == "progress" {
			progress++
			var p progressEvent
			if err := json.Unmarshal([]byte(ev.data), &p); err != nil {
				t.Fatalf("progress payload %q: %v", ev.data, err)
			}
			if p.JobID != job.ID || p.Cells != 4 {
				t.Fatalf("progress %+v", p)
			}
		}
	}
	if progress == 0 {
		t.Fatal("no progress events observed")
	}
	last := events[len(events)-1]
	if last.name != "state" || !strings.Contains(last.data, `"done"`) {
		t.Fatalf("last event %+v, want terminal done state", last)
	}
}

// TestSSEAfterCompletion: subscribing to a finished job yields its terminal
// state immediately and the stream closes.
func TestSSEAfterCompletion(t *testing.T) {
	f := newFixture(t, t.TempDir(), t.TempDir(), true)
	job := f.waitDone(t, f.submit(t, testMatrix()).ID)
	resp, err := http.Get(f.ts.URL + "/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := readSSE(resp.Body, 1) // returns because the body CLOSES
	if len(events) != 1 || events[0].name != "state" || !strings.Contains(events[0].data, `"done"`) {
		t.Fatalf("events for finished job: %+v", events)
	}
}

// TestRestartResumeComputesOnlyMissing is the crash story end to end: a job
// killed mid-run (simulated by a store with the job in state Running and a
// cache holding the cells the dead run finished) must be re-queued on
// service construction and complete by computing ONLY the missing cells.
func TestRestartResumeComputesOnlyMissing(t *testing.T) {
	storeDir, cacheDir := t.TempDir(), t.TempDir()
	m := testMatrix()

	// The "dead run": shard 0/2 of the matrix into the shared cache — cells
	// 0 and 1 persisted, 2 and 3 never computed. Exactly the cache state a
	// run killed halfway leaves behind.
	if _, err := experiment.NewRunner(
		experiment.WithCache(cacheDir),
		experiment.WithShard(experiment.ShardSpec{Shard: 0, Total: 2}),
	).Run(m); err != nil {
		t.Fatalf("seed half the cache: %v", err)
	}

	// The dead run's store state: job accepted and marked Running, never
	// finished.
	st, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := json.Marshal(m)
	job, err := st.CreateJob(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.UpdateJob(job.ID, true, func(j *store.Job) { j.State = store.Running }); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Restart: New must re-queue the orphaned Running job...
	f := newFixture(t, storeDir, cacheDir, false)
	requeued, ok := f.st.Job(job.ID)
	if !ok || requeued.State != store.Queued {
		t.Fatalf("orphaned running job not re-queued: %+v", requeued)
	}
	if !strings.Contains(requeued.Error, "resumable") {
		t.Errorf("re-queued job not marked resumable: %q", requeued.Error)
	}
	// ...and the scheduler must finish it computing only cells 2 and 3.
	f.svc.Start()
	done := f.waitDone(t, job.ID)
	if done.Computed != 2 || done.Resumed != 2 || done.CacheHits != 2 {
		t.Fatalf("resume summary: computed=%d resumed=%d hits=%d, want 2/2/2",
			done.Computed, done.Resumed, done.CacheHits)
	}
	if got, want := f.results(t, job.ID), localJSONL(t, m); !bytes.Equal(got, want) {
		t.Fatal("resumed job's results differ from the CLI JSONL")
	}
}

// TestResultsPrefixWhileIncomplete: a job with persisted rows for a prefix
// of its cells streams exactly that prefix.
func TestResultsPrefixWhileIncomplete(t *testing.T) {
	storeDir, cacheDir := t.TempDir(), t.TempDir()
	m := testMatrix()
	want := localJSONL(t, m)

	st, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := json.Marshal(m)
	job, err := st.CreateJob(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Persist rows for cells 0 and 1 only — cell 2 is the frontier.
	scenarios, err := m.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	keys, err := experiment.ScenarioKeys(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(want, []byte("\n"))
	for i := 0; i < 2; i++ {
		if err := st.PutRow(keys[i], bytes.TrimSuffix(lines[i], []byte("\n"))); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	f := newFixture(t, storeDir, cacheDir, false)
	got := f.results(t, job.ID)
	if wantPrefix := append(append([]byte(nil), lines[0]...), lines[1]...); !bytes.Equal(got, wantPrefix) {
		t.Fatalf("prefix stream:\n got: %s\nwant: %s", got, wantPrefix)
	}
}

// TestDrainMarksInFlightResumable: Close while a job runs re-queues it with
// a resumable note instead of failing or finishing it.
func TestDrainMarksInFlightResumable(t *testing.T) {
	f := newFixture(t, t.TempDir(), t.TempDir(), true)
	// A heavier matrix so Close lands mid-sweep; if the race is lost and the
	// job completes first, the test still passes vacuously on Done — so
	// retry a few times and accept whichever interrupted run we catch.
	m := testMatrix()
	m.Iterations = 400
	m.NodeCounts = []int{14}
	job := f.submit(t, m)
	deadline := time.Now().Add(30 * time.Second)
	for f.job(t, job.ID).State == store.Queued && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	f.svc.Close()
	got, _ := f.st.Job(job.ID)
	switch got.State {
	case store.Queued:
		if !strings.Contains(got.Error, "resumable") {
			t.Errorf("drained job not marked resumable: %+v", got)
		}
	case store.Done:
		// The sweep won the race; nothing to assert about draining.
	default:
		t.Fatalf("drained job in state %s: %+v", got.State, got)
	}
}

func TestHealthz(t *testing.T) {
	f := newFixture(t, t.TempDir(), t.TempDir(), true)
	f.waitDone(t, f.submit(t, testMatrix()).ID)
	resp, err := http.Get(f.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h healthz
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status %q", h.Status)
	}
	// 4 cells were computed and cached: 4 cell entries + 1 matrix manifest.
	if h.Cache.Entries != 5 {
		t.Errorf("cache entries %d, want 5 (4 cells + manifest)", h.Cache.Entries)
	}
	if h.Cache.TotalBytes <= 0 {
		t.Errorf("cache bytes %d", h.Cache.TotalBytes)
	}
	if h.Jobs[store.Done] != 1 {
		t.Errorf("job states %+v", h.Jobs)
	}
	if h.StoreRows != 4 {
		t.Errorf("store rows %d, want 4", h.StoreRows)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{CacheDir: t.TempDir()}); err == nil {
		t.Error("nil store accepted")
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := New(Config{Store: st}); err == nil {
		t.Error("empty cache dir accepted")
	}
}

// TestFailedJobRecordsError: a spec that validates but whose execution
// fails (a trace backend whose file disappears between submit and run)
// lands in Failed with the cause, and the scheduler moves on.
func TestFailedJobRecordsError(t *testing.T) {
	f := newFixture(t, t.TempDir(), t.TempDir(), false)
	// Plant a job whose stored spec is valid JSON of the wrong shape: it
	// persists fine (the HTTP front door would have rejected it, but a
	// corrupted store or an older writer could produce it) and fails when the
	// scheduler decodes it back into a Matrix.
	spec := json.RawMessage(`["not","a","matrix"]`)
	job, err := f.st.CreateJob(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	f.svc.Start()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		got, _ := f.st.Job(job.ID)
		if got.State == store.Failed {
			if !strings.Contains(got.Error, "decode stored spec") {
				t.Fatalf("failure cause %q", got.Error)
			}
			// The scheduler survives: a healthy job still completes.
			f.waitDone(t, f.submit(t, testMatrix()).ID)
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("malformed job never failed")
}
