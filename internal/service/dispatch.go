package service

// This file is the coordinator half of distributed sweeps: a registry of
// worker sweepds holding time-bounded leases, and a per-job dispatch state
// machine that partitions the matrix into shard assignments (the same
// experiment.Partition ranges the CLI's -shard flag uses), hands them to
// workers over heartbeats, and re-queues a shard — with exponential backoff
// plus jitter — whenever the worker holding it goes silent past its lease.
//
// Dispatch is pull-based: a worker's heartbeat both renews its lease and
// returns the worker's complete current assignment list (at most one shard
// at a time), so a lost response, a canceled job, or a withdrawn shard all
// resolve the same way — the next heartbeat's list is the truth and the
// worker reconciles against it. The coordinator never calls into workers,
// which keeps them free to sit behind NAT or come and go at will.
//
// Byte-identity survives distribution for the same reason it survives
// sharded CLI runs: every cell's randomness descends from its per-scenario
// derived seed, so any worker computes the same row bytes, and rows are
// merged by matrix index into the same store the solo path writes. Duplicate
// work — a zombie worker finishing a shard that was re-assigned — lands as
// an idempotent upsert of identical bytes.
//
// Assignments, attempt counts, and lease deadlines persist in the store
// (schema v3), so a coordinator restart resumes dispatch: done shards stay
// done, assigned shards return to pending (their workers must re-register
// anyway), and nothing finished is recomputed.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"iotmpc/internal/experiment"
	"iotmpc/internal/store"
)

// Dispatch defaults: a worker missing leaseTTLDefault of heartbeats loses
// its shards; a shard failing repeatedly waits backoffBase·2^(attempts-1)
// (capped at backoffMax, half-jittered) before re-dispatch; and
// maxShardAttemptsDefault grants without a completion fail the job.
const (
	leaseTTLDefault         = 15 * time.Second
	backoffBaseDefault      = time.Second
	backoffMaxDefault       = 30 * time.Second
	maxShardAttemptsDefault = 5
)

// ShardError is the typed failure a job records when one shard exhausts its
// attempt budget: it names the shard so an operator knows which slice of the
// matrix kept dying (a poisoned cell, or simply not enough live workers).
type ShardError struct {
	Job      string
	Shard    int
	Total    int
	Attempts int
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("shard %d/%d of job %s failed after %d attempts (worker leases expired)",
		e.Shard, e.Total, e.Job, e.Attempts)
}

// workerReg is the POST /v1/workers body.
type workerReg struct {
	Name string `json:"name"`
}

// workerInfo is the registration response: the assigned worker ID and the
// lease the worker must keep renewed (heartbeat comfortably faster than
// this, e.g. every leaseMillis/3).
type workerInfo struct {
	ID          string `json:"id"`
	Name        string `json:"name,omitempty"`
	LeaseMillis int64  `json:"leaseMillis"`
}

// shardGrant is one entry of a heartbeat response: a shard the worker
// currently holds, with everything needed to execute it. Attempt
// disambiguates re-grants of the same shard — a worker treats a changed
// attempt as a fresh execution.
type shardGrant struct {
	Job     string          `json:"job"`
	Shard   int             `json:"shard"`
	Total   int             `json:"total"`
	Attempt int             `json:"attempt"`
	Spec    json.RawMessage `json:"spec"`
}

// heartbeatResponse carries the worker's complete current assignment list;
// a shard the worker is executing that is absent here has been withdrawn.
type heartbeatResponse struct {
	Grants []shardGrant `json:"grants"`
}

// rowsResponse acknowledges a row upload. Stale marks uploads for jobs no
// longer dispatching — accepted and discarded, because a zombie worker's
// rows are identical bytes to whatever already landed.
type rowsResponse struct {
	Accepted int  `json:"accepted"`
	Stale    bool `json:"stale,omitempty"`
}

// shardDoneRequest is the completion report: which attempt finished and the
// worker's run summary for aggregation.
type shardDoneRequest struct {
	Attempt int                   `json:"attempt"`
	Summary experiment.RunSummary `json:"summary"`
}

// shardDoneResponse acknowledges a completion report.
type shardDoneResponse struct {
	Done  bool `json:"done"`
	Stale bool `json:"stale,omitempty"`
}

// workerState is one live registration.
type workerState struct {
	id       string
	name     string
	deadline time.Time // lease: renewed by every heartbeat
}

// dispatchJob is one job's distributed execution state. The assignment list
// is authoritative here and mirrored to the store on every transition;
// rowsPresent tracks which matrix cells have landed so completion reports
// can be verified and progress counters kept truthful.
type dispatchJob struct {
	id    string
	spec  json.RawMessage
	keys  []string // per-cell row keys, index order
	cells int

	assigns     []store.ShardAssignment // nil until the first worker heartbeat fixes the shard total
	rowsPresent []bool
	completed   int
	summary     experiment.RunSummary
	restored    int // shards already done at admit (coordinator restart)

	done     chan struct{} // closed exactly once, with err set first
	err      error         // nil: all shards done; *ShardError: attempt budget exhausted
	finished bool
}

// dispatcher is the coordinator: worker registry plus active dispatch jobs.
// All fields behind mu; handlers and the lease scan share it.
type dispatcher struct {
	store       *store.Store
	leaseTTL    time.Duration
	backoffBase time.Duration
	backoffMax  time.Duration
	maxAttempts int

	mu      sync.Mutex
	seq     int
	workers map[string]*workerState
	jobs    map[string]*dispatchJob
}

func newDispatcher(cfg Config) *dispatcher {
	d := &dispatcher{
		store:       cfg.Store,
		leaseTTL:    cfg.LeaseTTL,
		backoffBase: cfg.ShardBackoffBase,
		backoffMax:  cfg.ShardBackoffMax,
		maxAttempts: cfg.MaxShardAttempts,
		workers:     make(map[string]*workerState),
		jobs:        make(map[string]*dispatchJob),
	}
	if d.leaseTTL <= 0 {
		d.leaseTTL = leaseTTLDefault
	}
	if d.backoffBase <= 0 {
		d.backoffBase = backoffBaseDefault
	}
	if d.backoffMax <= 0 {
		d.backoffMax = backoffMaxDefault
	}
	if d.maxAttempts <= 0 {
		d.maxAttempts = maxShardAttemptsDefault
	}
	return d
}

// backoff is the re-dispatch delay after `attempts` failed grants of one
// shard: exponential from the base, capped, then half-jittered (d/2 + a
// uniform draw of d/2) so a herd of shards freed by one dead worker does
// not re-dispatch in lockstep.
func (d *dispatcher) backoff(attempts int) time.Duration {
	delay := d.backoffBase
	for i := 1; i < attempts && delay < d.backoffMax; i++ {
		delay *= 2
	}
	if delay > d.backoffMax {
		delay = d.backoffMax
	}
	return delay/2 + rand.N(delay/2+1)
}

// admit registers a job for distributed execution, resuming persisted
// assignments if the store has them (coordinator restart): done shards stay
// done — their rows are already in the store — and shards that were assigned
// when the previous coordinator died return to pending with attempts intact
// (their workers' registrations died with the process, so the leases are
// void, but the restart itself is not the shard's fault: no backoff).
func (d *dispatcher) admit(id string, spec json.RawMessage, keys []string) (*dispatchJob, error) {
	dj := &dispatchJob{
		id:          id,
		spec:        spec,
		keys:        keys,
		cells:       len(keys),
		rowsPresent: make([]bool, len(keys)),
		done:        make(chan struct{}),
	}
	for i, key := range keys {
		if _, ok := d.store.Row(key); ok {
			dj.rowsPresent[i] = true
			dj.completed++
		}
	}
	if persisted, ok := d.store.Assignments(id); ok {
		changed := false
		for i := range persisted {
			a := &persisted[i]
			switch a.State {
			case store.ShardDone:
				lo, hi := experiment.ShardSpec{Shard: a.Shard, Total: a.Total}.Range(dj.cells)
				dj.restored++
				dj.summary.CacheHits += hi - lo
				dj.summary.Resumed += hi - lo
			case store.ShardAssigned:
				a.State = store.ShardPending
				a.Worker = ""
				a.LeaseDeadline = 0
				a.NextEligible = 0
				changed = true
			}
		}
		dj.assigns = persisted
		if changed {
			if err := d.store.SetAssignments(id, persisted, true); err != nil {
				return nil, err
			}
		}
	}
	d.mu.Lock()
	d.jobs[id] = dj
	terminal := dj.assigns != nil && dj.allDone()
	if terminal {
		dj.finish(nil)
	}
	d.mu.Unlock()
	return dj, nil
}

// remove forgets a job once its run loop has observed the terminal state.
func (d *dispatcher) remove(id string) {
	d.mu.Lock()
	delete(d.jobs, id)
	d.mu.Unlock()
}

// withdraw pulls a job out of dispatch before completion (cancel or drain):
// assigned shards return to pending immediately — the workers learn from
// their next heartbeat's empty grant list — and the assignment state is
// persisted so a resume re-dispatches exactly the unfinished shards.
func (d *dispatcher) withdraw(id string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	dj := d.jobs[id]
	if dj == nil {
		return
	}
	delete(d.jobs, id)
	changed := false
	for i := range dj.assigns {
		a := &dj.assigns[i]
		if a.State == store.ShardAssigned {
			a.State = store.ShardPending
			a.Worker = ""
			a.LeaseDeadline = 0
			changed = true
		}
	}
	if changed {
		d.store.SetAssignments(id, dj.assigns, true)
	}
}

// allDone reports whether every shard is done. Caller holds d.mu and the
// assignment list is initialized.
func (dj *dispatchJob) allDone() bool {
	for _, a := range dj.assigns {
		if a.State != store.ShardDone {
			return false
		}
	}
	return true
}

// finish records the terminal verdict and wakes the job's run loop. Caller
// holds d.mu; idempotent so a zombie completion racing a failure is safe.
func (dj *dispatchJob) finish(err error) {
	if dj.finished {
		return
	}
	dj.finished = true
	dj.err = err
	close(dj.done)
}

// register admits a worker and returns its identity plus the lease TTL it
// must keep renewed.
func (d *dispatcher) register(name string) workerInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.seq++
	w := &workerState{
		id:       fmt.Sprintf("w%06d", d.seq),
		name:     name,
		deadline: time.Now().Add(d.leaseTTL),
	}
	d.workers[w.id] = w
	return workerInfo{ID: w.id, Name: w.name, LeaseMillis: d.leaseTTL.Milliseconds()}
}

// heartbeat renews a worker's lease and returns its complete grant list,
// assigning one new shard if the worker holds none. ok=false means the
// worker is unknown — expired, or registered with a predecessor coordinator
// — and must re-register.
func (d *dispatcher) heartbeat(workerID string) (grants []shardGrant, ok bool, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	w := d.workers[workerID]
	if w == nil {
		return nil, false, nil
	}
	now := time.Now()
	w.deadline = now.Add(d.leaseTTL)
	grants = []shardGrant{}
	for _, id := range d.jobIDs() {
		dj := d.jobs[id]
		for i := range dj.assigns {
			a := &dj.assigns[i]
			if a.State == store.ShardAssigned && a.Worker == workerID {
				grants = append(grants, shardGrant{
					Job: id, Shard: a.Shard, Total: a.Total, Attempt: a.Attempts, Spec: dj.spec,
				})
			}
		}
	}
	if len(grants) > 0 {
		return grants, true, nil
	}
	// The worker is idle: hand it the oldest job's first eligible pending
	// shard. One shard per worker at a time keeps granularity for re-queue
	// — a dead worker forfeits one shard, not a batch.
	nowMs := now.UnixMilli()
	for _, id := range d.jobIDs() {
		dj := d.jobs[id]
		if dj.finished {
			continue
		}
		if dj.assigns == nil {
			d.initAssignments(dj)
		}
		for i := range dj.assigns {
			a := &dj.assigns[i]
			if a.State != store.ShardPending || a.NextEligible > nowMs {
				continue
			}
			a.State = store.ShardAssigned
			a.Worker = workerID
			a.Attempts++
			a.LeaseDeadline = now.Add(d.leaseTTL).UnixMilli()
			a.Error = ""
			if err := d.store.SetAssignments(id, dj.assigns, false); err != nil {
				return nil, true, err
			}
			grants = append(grants, shardGrant{
				Job: id, Shard: a.Shard, Total: a.Total, Attempt: a.Attempts, Spec: dj.spec,
			})
			return grants, true, nil
		}
	}
	return grants, true, nil
}

// jobIDs returns the active dispatch jobs oldest-first (IDs are sequential),
// so grant order matches the scheduler's admission order. Caller holds d.mu.
func (d *dispatcher) jobIDs() []string {
	ids := make([]string, 0, len(d.jobs))
	for id := range d.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// initAssignments fixes the job's shard total at first grant: one shard per
// live worker, never more shards than cells. Caller holds d.mu and
// guarantees at least one live worker (the heartbeater).
func (d *dispatcher) initAssignments(dj *dispatchJob) {
	total := len(d.workers)
	if total > dj.cells {
		total = dj.cells
	}
	if total < 1 {
		total = 1
	}
	assigns := make([]store.ShardAssignment, total)
	for i := range assigns {
		assigns[i] = store.ShardAssignment{Shard: i, Total: total, State: store.ShardPending}
	}
	dj.assigns = assigns
}

// rows ingests a batch of completed cell rows (JSONL, one ScenarioResult
// per line, exactly the bytes a solo run's sink would persist). Rows merge
// by matrix index into the same store the local path writes; a duplicate —
// two workers racing the same shard — upserts identical bytes, so no
// freshness check is needed or wanted. stale=true means the job is no
// longer dispatching here.
func (d *dispatcher) rows(jobID string, lines [][]byte) (accepted int, stale bool, err error) {
	type indexed struct {
		Scenario struct {
			Index int `json:"index"`
		} `json:"scenario"`
	}
	d.mu.Lock()
	dj := d.jobs[jobID]
	d.mu.Unlock()
	if dj == nil {
		return 0, true, nil
	}
	for _, line := range lines {
		var row indexed
		if err := json.Unmarshal(line, &row); err != nil {
			return accepted, false, fmt.Errorf("row %d: %w", accepted, err)
		}
		i := row.Scenario.Index
		if i < 0 || i >= dj.cells {
			return accepted, false, fmt.Errorf("row index %d outside matrix of %d cells", i, dj.cells)
		}
		if err := d.store.PutRow(dj.keys[i], line); err != nil {
			return accepted, false, err
		}
		accepted++
		d.mu.Lock()
		if !dj.rowsPresent[i] {
			dj.rowsPresent[i] = true
			dj.completed++
		}
		d.mu.Unlock()
	}
	return accepted, false, nil
}

// progress reads the job's merged completion counters for the progress
// event the rows handler publishes.
func (d *dispatcher) progress(jobID string) (completed, cells int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if dj := d.jobs[jobID]; dj != nil {
		return dj.completed, dj.cells
	}
	return 0, 0
}

// shardDone handles a completion report. It is deliberately lax about WHO
// reports: a zombie worker whose lease expired finishing a shard that was
// since re-granted still completes it — the rows are identical bytes either
// way, and first-report-wins aggregation keeps the summary consistent. The
// one hard check is that every row of the shard's range actually landed;
// a report with rows missing (lost uploads) is refused so the worker
// re-flushes and retries.
func (d *dispatcher) shardDone(jobID string, shard int, sum experiment.RunSummary) (resp shardDoneResponse, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	dj := d.jobs[jobID]
	if dj == nil || dj.finished {
		return shardDoneResponse{Stale: true}, nil
	}
	if dj.assigns == nil || shard < 0 || shard >= len(dj.assigns) {
		return resp, fmt.Errorf("no shard %d in job %s", shard, jobID)
	}
	a := &dj.assigns[shard]
	if a.State == store.ShardDone {
		return shardDoneResponse{Done: true}, nil // duplicate report: no-op
	}
	lo, hi := experiment.ShardSpec{Shard: a.Shard, Total: a.Total}.Range(dj.cells)
	for i := lo; i < hi; i++ {
		if !dj.rowsPresent[i] {
			return resp, fmt.Errorf("shard %d reported done but row %d has not landed", shard, i)
		}
	}
	a.State = store.ShardDone
	a.LeaseDeadline = 0
	a.Error = ""
	if err := d.store.SetAssignments(jobID, dj.assigns, true); err != nil {
		return resp, err
	}
	dj.summary.CacheHits += sum.CacheHits
	dj.summary.Computed += sum.Computed
	dj.summary.Resumed += sum.Resumed
	dj.summary.CacheWriteErrors += sum.CacheWriteErrors
	if dj.allDone() {
		dj.summary.Cells = dj.cells
		dj.finish(nil)
	}
	return shardDoneResponse{Done: true}, nil
}

// scan is the lease-expiry pass, run on a timer while the coordinator is
// up: a worker past its deadline is dropped and every shard it held is
// re-queued with backoff — or, at the attempt cap, fails its whole job with
// a ShardError naming the shard.
func (d *dispatcher) scan() {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := time.Now()
	for id, w := range d.workers {
		if w.deadline.After(now) {
			continue
		}
		delete(d.workers, id)
		for jobID, dj := range d.jobs {
			changed := false
			for i := range dj.assigns {
				a := &dj.assigns[i]
				if a.State != store.ShardAssigned || a.Worker != id {
					continue
				}
				changed = true
				a.Worker = ""
				a.LeaseDeadline = 0
				if a.Attempts >= d.maxAttempts {
					a.State = store.ShardPending
					a.Error = fmt.Sprintf("attempt %d lease expired (worker %s); attempt budget exhausted", a.Attempts, id)
					dj.finish(&ShardError{Job: jobID, Shard: a.Shard, Total: a.Total, Attempts: a.Attempts})
					continue
				}
				a.State = store.ShardPending
				delay := d.backoff(a.Attempts)
				a.NextEligible = now.Add(delay).UnixMilli()
				a.Error = fmt.Sprintf("attempt %d lease expired (worker %s); next eligible in %s", a.Attempts, id, delay.Round(time.Millisecond))
			}
			if changed {
				d.store.SetAssignments(jobID, dj.assigns, false)
			}
		}
	}
}

// workerHealth is one registered worker's entry in the healthz body.
type workerHealth struct {
	ID                   string   `json:"id"`
	Name                 string   `json:"name,omitempty"`
	LeaseRemainingMillis int64    `json:"leaseRemainingMillis"`
	Shards               []string `json:"shards,omitempty"` // "job/shard", e.g. "j000001/2"
}

// health snapshots the registry for /v1/healthz: every live worker, its
// remaining lease, and the shards it holds.
func (d *dispatcher) health() (workers []workerHealth, dispatching int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := time.Now()
	workers = []workerHealth{}
	for _, id := range workerIDs(d.workers) {
		w := d.workers[id]
		wh := workerHealth{ID: w.id, Name: w.name, LeaseRemainingMillis: w.deadline.Sub(now).Milliseconds()}
		for _, jobID := range d.jobIDs() {
			for _, a := range d.jobs[jobID].assigns {
				if a.State == store.ShardAssigned && a.Worker == w.id {
					wh.Shards = append(wh.Shards, jobID+"/"+strconv.Itoa(a.Shard))
				}
			}
		}
		workers = append(workers, wh)
	}
	return workers, len(d.jobs)
}

func workerIDs(m map[string]*workerState) []string {
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// --- HTTP surface -----------------------------------------------------------

// requireCoordinator gates the /v1/workers surface: on a plain (local
// execution) sweepd the endpoints exist but answer 409, which tells a
// misdirected worker immediately that it joined the wrong address.
func (s *Server) requireCoordinator(w http.ResponseWriter) bool {
	if s.disp == nil {
		httpError(w, http.StatusConflict, codeConflict, "",
			"this sweepd is not a coordinator (start it with -coordinator)")
		return false
	}
	return true
}

// handleWorkerRegister is POST /v1/workers: admit a worker, return its ID
// and lease TTL.
func (s *Server) handleWorkerRegister(w http.ResponseWriter, r *http.Request) {
	if !s.requireCoordinator(w) {
		return
	}
	var reg workerReg
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes)).Decode(&reg); err != nil {
		httpError(w, http.StatusBadRequest, codeInvalidArgument, "", "decode registration: "+err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, s.disp.register(reg.Name))
}

// handleWorkerHeartbeat is POST /v1/workers/{id}/heartbeat: renew the lease,
// return the worker's complete grant list. 410 means the registration is
// gone — the worker re-registers and starts fresh.
func (s *Server) handleWorkerHeartbeat(w http.ResponseWriter, r *http.Request) {
	if !s.requireCoordinator(w) {
		return
	}
	grants, ok, err := s.disp.heartbeat(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusInternalServerError, codeInternal, "", err.Error())
		return
	}
	if !ok {
		httpError(w, http.StatusGone, codeNotFound, "", "unknown worker lease (expired or lost to a restart); re-register")
		return
	}
	writeJSON(w, http.StatusOK, heartbeatResponse{Grants: grants})
}

// handleShardRows is POST /v1/workers/{id}/shards/{job}/{shard}/rows: ingest
// a JSONL batch of completed cell rows. Uploads are accepted regardless of
// lease state — see dispatcher.rows — and publish merged progress to the
// job's SSE subscribers.
func (s *Server) handleShardRows(w http.ResponseWriter, r *http.Request) {
	if !s.requireCoordinator(w) {
		return
	}
	jobID := r.PathValue("job")
	var lines [][]byte
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxSpecBytes)
	for sc.Scan() {
		if line := sc.Bytes(); len(line) > 0 {
			lines = append(lines, append([]byte(nil), line...))
		}
	}
	if err := sc.Err(); err != nil {
		httpError(w, http.StatusBadRequest, codeInvalidArgument, "", "read rows: "+err.Error())
		return
	}
	accepted, stale, err := s.disp.rows(jobID, lines)
	if err != nil {
		httpError(w, http.StatusBadRequest, codeInvalidArgument, "", err.Error())
		return
	}
	if !stale {
		completed, cells := s.disp.progress(jobID)
		if data, err := json.Marshal(progressEvent{JobID: jobID, Index: -1, Completed: completed, Cells: cells}); err == nil {
			s.hub.publish(jobID, event{name: "progress", data: data})
		}
		s.cfg.Store.UpdateJob(jobID, false, func(j *store.Job) { j.Completed = completed })
	}
	writeJSON(w, http.StatusOK, rowsResponse{Accepted: accepted, Stale: stale})
}

// handleShardDone is POST /v1/workers/{id}/shards/{job}/{shard}/done: mark
// the shard complete once all its rows have landed. 409 with "not landed"
// tells the worker to re-flush its rows and retry.
func (s *Server) handleShardDone(w http.ResponseWriter, r *http.Request) {
	if !s.requireCoordinator(w) {
		return
	}
	shard, err := strconv.Atoi(r.PathValue("shard"))
	if err != nil {
		httpError(w, http.StatusBadRequest, codeInvalidArgument, "shard", "shard index: "+err.Error())
		return
	}
	var req shardDoneRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, codeInvalidArgument, "", "decode report: "+err.Error())
		return
	}
	resp, err := s.disp.shardDone(r.PathValue("job"), shard, req.Summary)
	if err != nil {
		httpError(w, http.StatusConflict, codeConflict, "", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// runJobDispatch executes one claimed job by distributing its shards to
// workers, standing in for the local-Runner path of runJob. It blocks until
// the dispatch state machine reaches a verdict or the job's context is
// canceled; as in runJob, the returned error is a STORE failure.
func (s *Server) runJobDispatch(id string, aj *activeJob, job store.Job, m experiment.Matrix) error {
	scenarios, err := m.Scenarios()
	if err != nil {
		s.unclaim(id)
		return s.finishJob(id, store.Failed, err.Error(), nil)
	}
	keys, err := experiment.ScenarioKeys(scenarios)
	if err != nil {
		s.unclaim(id)
		return s.finishJob(id, store.Failed, err.Error(), nil)
	}
	dj, err := s.disp.admit(id, job.Spec, keys)
	if err != nil {
		s.unclaim(id)
		return err
	}
	select {
	case <-aj.ctx.Done():
		s.disp.withdraw(id)
		sum, _ := s.disp.verdict(dj)
		if s.unclaim(id) {
			return s.finishJob(id, store.Canceled,
				fmt.Sprintf("canceled by client after %d/%d cells", sum.Completed, dj.cells), nil)
		}
		return s.finishJob(id, store.Queued,
			fmt.Sprintf("resumable: interrupted by shutdown after %d/%d cells", sum.Completed, dj.cells), nil)
	case <-dj.done:
		s.disp.remove(id)
		s.unclaim(id)
		sum, verdictErr := s.disp.verdict(dj)
		if verdictErr != nil {
			return s.finishJob(id, store.Failed, verdictErr.Error(), nil)
		}
		summary := sum.Summary
		summary.Cells = dj.cells
		return s.finishJob(id, store.Done, "", &summary)
	}
}

// dispatchVerdict is a locked snapshot of a dispatch job's outcome.
type dispatchVerdict struct {
	Summary   experiment.RunSummary
	Completed int
}

// verdict reads the job's aggregated summary and terminal error under the
// dispatcher lock — in-flight row uploads from zombie workers may still be
// mutating the counters when the run loop wakes.
func (d *dispatcher) verdict(dj *dispatchJob) (dispatchVerdict, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return dispatchVerdict{Summary: dj.summary, Completed: dj.completed}, dj.err
}

// scanLoop drives lease expiry while the coordinator runs.
func (s *Server) scanLoop(every time.Duration) {
	defer s.wg.Done()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-ticker.C:
			s.disp.scan()
		}
	}
}
