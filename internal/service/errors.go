package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"

	"iotmpc/internal/experiment"
)

// apiError is the typed error envelope every handler returns:
//
//	{"error":{"code":"invalid_argument","field":"nodeCounts","message":"..."}}
//
// code is a stable machine-readable class; field names the offending request
// field when one can be identified (spec validation, query parameters), and
// is omitted otherwise.
type apiError struct {
	Code    string `json:"code"`
	Field   string `json:"field,omitempty"`
	Message string `json:"message"`
}

// errorBody wraps apiError under the "error" key.
type errorBody struct {
	Error apiError `json:"error"`
}

// Error codes. The HTTP status carries the transport semantics; the code
// carries the API semantics (a 400 could be a malformed body or a bad query
// parameter — both invalid_argument, distinguished by field).
const (
	codeInvalidArgument = "invalid_argument"
	codeNotFound        = "not_found"
	codeConflict        = "conflict"
	codeInternal        = "internal"
)

// httpError writes the typed error envelope.
func httpError(w http.ResponseWriter, status int, code, field, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: apiError{Code: code, Field: field, Message: msg}})
}

// specField extracts the JSON field a Matrix validation error names.
// Matrix.Validate wraps ErrBadSpec and leads with the field, e.g.
// "experiment: invalid spec: nodeCounts: 4 too few (need >= 6)".
func specField(err error) string {
	if !errors.Is(err, experiment.ErrBadSpec) {
		return ""
	}
	msg := strings.TrimPrefix(err.Error(), experiment.ErrBadSpec.Error()+": ")
	if i := strings.IndexByte(msg, ':'); i > 0 {
		return msg[:i]
	}
	return ""
}

// decodeField extracts the field a JSON decode error points at: the struct
// field of a type mismatch, or the quoted name in the DisallowUnknownFields
// rejection "json: unknown field \"nodecounts\"".
func decodeField(err error) string {
	var ute *json.UnmarshalTypeError
	if errors.As(err, &ute) {
		return ute.Field
	}
	const marker = `unknown field "`
	msg := err.Error()
	if i := strings.Index(msg, marker); i >= 0 {
		rest := msg[i+len(marker):]
		if j := strings.IndexByte(rest, '"'); j >= 0 {
			return rest[:j]
		}
	}
	return ""
}
