package service

import (
	"sync"

	"iotmpc/internal/experiment"
)

// pool is the shared cell-level scheduler: one fixed set of workers serving
// every active job's pending-cell queue under deficit round-robin. Each job's
// Runner hands its cache-miss cells to a jobQueue (an experiment.Executor);
// workers pull one cell at a time, rotating across jobs, so a 1-cell job
// admitted behind a 10k-cell job waits for at most one round of in-flight
// cells instead of the whole sweep. Every cell has unit cost, so DRR with a
// quantum of one cell degenerates to plain round-robin — the deficit counter
// would never exceed one — which is why none is materialized here; the
// rotation IS the deficit schedule.
//
// Fairness never reorders a job's own cells: a queue is strictly FIFO, and
// the Runner's collector still emits results in index order, so interleaving
// is invisible in each job's output stream.
type pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues []*jobQueue // admission order: oldest job first
	cursor int         // round-robin position over queues
	closed bool
	wg     sync.WaitGroup
}

// newPool starts workers goroutines serving the queue set.
func newPool(workers int) *pool {
	if workers < 1 {
		workers = 1
	}
	p := &pool{}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// worker pulls the next cell in round-robin order and runs it. Workers keep
// draining after close — a parked task belongs to a Runner that is still
// waiting for its completion message (cancellation turns the task into a
// cheap skip notification, but it must still run).
func (p *pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		q := p.pick()
		for q == nil {
			if p.closed {
				p.mu.Unlock()
				return
			}
			p.cond.Wait()
			q = p.pick()
		}
		task := q.pending[0]
		q.pending = q.pending[1:]
		p.mu.Unlock()
		task.Run()
	}
}

// pick returns the next queue with pending cells, scanning from the cursor,
// and advances the cursor past it — one cell per job per rotation. Caller
// holds p.mu. Ties (several jobs becoming runnable at once) resolve oldest
// job first because queues holds them in admission order.
func (p *pool) pick() *jobQueue {
	n := len(p.queues)
	for i := 0; i < n; i++ {
		q := p.queues[(p.cursor+i)%n]
		if len(q.pending) > 0 {
			p.cursor = (p.cursor + i + 1) % n
			return q
		}
	}
	return nil
}

// admit registers a job with the scheduler and returns its queue.
func (p *pool) admit(jobID string) *jobQueue {
	p.mu.Lock()
	defer p.mu.Unlock()
	q := &jobQueue{jobID: jobID, pool: p}
	p.queues = append(p.queues, q)
	return q
}

// release removes a job's queue once its Runner has returned. By then every
// submitted task has run (the Runner blocks on their completion messages),
// so the queue is empty.
func (p *pool) release(q *jobQueue) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, o := range p.queues {
		if o == q {
			p.queues = append(p.queues[:i], p.queues[i+1:]...)
			break
		}
	}
	if len(p.queues) > 0 {
		p.cursor %= len(p.queues)
	} else {
		p.cursor = 0
	}
}

// close stops the workers after the remaining tasks drain. Callers must have
// released (or be about to cancel) every active Runner first, since a Runner
// whose tasks never run would block forever.
func (p *pool) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

// jobQueue is one job's pending-cell queue: the experiment.Executor handed
// to that job's Runner. Submit never blocks (the Runner's dispatcher must
// keep moving); cells wait here until the round-robin rotation reaches this
// job.
type jobQueue struct {
	jobID   string
	pool    *pool
	pending []experiment.CellTask // guarded by pool.mu
}

// Submit implements experiment.Executor.
func (q *jobQueue) Submit(t experiment.CellTask) {
	q.pool.mu.Lock()
	q.pending = append(q.pending, t)
	q.pool.mu.Unlock()
	q.pool.cond.Signal()
}
