package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"iotmpc/internal/core"
	"iotmpc/internal/experiment"
	"iotmpc/internal/store"
)

// bigMatrix is a sweep heavy enough that a 1-cell job admitted behind it has
// time to overtake: 8 cells of a 14-node network at 400 iterations each.
func bigMatrix() experiment.Matrix {
	return experiment.Matrix{
		NodeCounts: []int{14},
		LossRates:  []float64{0, 0.1, 0.2, 0.3},
		Iterations: 400,
		Seed:       11,
	}
}

// oneCellMatrix is the smallest possible job: one protocol, one loss rate,
// one iteration.
func oneCellMatrix() experiment.Matrix {
	return experiment.Matrix{
		NodeCounts: []int{8},
		LossRates:  []float64{0},
		Iterations: 1,
		Seed:       1,
		Protocols:  []core.Protocol{core.S4},
	}
}

// newSchedFixture is newFixture with an explicit scheduler Config.
func newSchedFixture(t *testing.T, cfg Config, start bool) *fixture {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	cfg.Store, cfg.CacheDir = st, t.TempDir()
	svc, err := New(cfg)
	if err != nil {
		st.Close()
		t.Fatalf("service: %v", err)
	}
	f := &fixture{st: st, svc: svc, ts: httptest.NewServer(svc.Handler())}
	if start {
		svc.Start()
	}
	t.Cleanup(func() {
		f.ts.Close()
		f.svc.Close()
		f.st.Close()
	})
	return f
}

// waitState polls the store until the job reaches state (or any terminal
// state, which fails the test if it is the wrong one).
func (f *fixture) waitState(t *testing.T, id string, want store.State) store.Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		job, ok := f.st.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if job.State == want {
			return job
		}
		if job.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, job.State, job.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return store.Job{}
}

// TestFairnessSmallJobOvertakesLarge is the tentpole acceptance test: a
// 1-cell job submitted while an 8-cell sweep is mid-flight finishes first,
// and BOTH jobs' result streams are byte-identical to solo CLI runs of the
// same matrices.
func TestFairnessSmallJobOvertakesLarge(t *testing.T) {
	// One pool worker serializes cells, making the round-robin interleave
	// deterministic: after the in-flight big cell, the small job's cell is
	// next.
	f := newSchedFixture(t, Config{Workers: 1, MaxActiveJobs: 2}, true)
	big := f.submit(t, bigMatrix())
	f.waitState(t, big.ID, store.Running)
	small := f.submit(t, oneCellMatrix())

	smallDone := f.waitDone(t, small.ID)
	if smallDone.Completed != 1 {
		t.Fatalf("small job summary: %+v", smallDone)
	}
	if j, _ := f.st.Job(big.ID); j.State != store.Running {
		t.Fatalf("big job already %s when the 1-cell job finished — no overtake happened", j.State)
	}
	bigDone := f.waitDone(t, big.ID)
	if bigDone.Completed != 8 {
		t.Fatalf("big job summary: %+v", bigDone)
	}

	if got, want := f.results(t, small.ID), localJSONL(t, oneCellMatrix()); !bytes.Equal(got, want) {
		t.Fatalf("small job stream differs from solo CLI run:\n got: %s\nwant: %s", got, want)
	}
	if got, want := f.results(t, big.ID), localJSONL(t, bigMatrix()); !bytes.Equal(got, want) {
		t.Fatal("big job stream differs from solo CLI run")
	}
}

// TestConcurrentJobsByteIdentical: several jobs interleaving on a shared
// multi-worker pool each stream exactly the bytes of a solo run — the
// scheduler only decides when cells compute, never what they produce.
func TestConcurrentJobsByteIdentical(t *testing.T) {
	matrices := []experiment.Matrix{
		{NodeCounts: []int{8}, LossRates: []float64{0, 0.3}, Iterations: 2, Seed: 7},
		{NodeCounts: []int{10}, LossRates: []float64{0.1}, Iterations: 3, Seed: 9},
		{NodeCounts: []int{8, 12}, LossRates: []float64{0.2}, Iterations: 2, Seed: 3},
	}
	f := newSchedFixture(t, Config{Workers: 3, MaxActiveJobs: 3}, true)
	var ids []string
	for _, m := range matrices {
		ids = append(ids, f.submit(t, m).ID)
	}
	for i, id := range ids {
		f.waitDone(t, id)
		if got, want := f.results(t, id), localJSONL(t, matrices[i]); !bytes.Equal(got, want) {
			t.Errorf("job %d stream differs from solo CLI run", i)
		}
	}
}

// del issues DELETE /v1/jobs/{id} and returns the response.
func (f *fixture) del(t *testing.T, id string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, f.ts.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestCancelQueuedJob: canceling before the scheduler starts kills the job
// on the spot — 200 with the terminal record, no cells ever computed.
func TestCancelQueuedJob(t *testing.T) {
	f := newFixture(t, t.TempDir(), t.TempDir(), false)
	job := f.submit(t, testMatrix())
	resp := f.del(t, job.ID)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued: status %d", resp.StatusCode)
	}
	var got store.Job
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.State != store.Canceled || !strings.Contains(got.Error, "before start") {
		t.Fatalf("canceled record: %+v", got)
	}
	// Starting the scheduler afterwards must not resurrect it.
	f.svc.Start()
	time.Sleep(50 * time.Millisecond)
	if j, _ := f.st.Job(job.ID); j.State != store.Canceled || j.Completed != 0 {
		t.Fatalf("canceled job after scheduler start: %+v", j)
	}
}

// TestCancelRunningJob: DELETE on a running job answers 202, the job drains
// into the terminal canceled state, and a resubmission of the same matrix
// completes normally (resuming from whatever the canceled run cached).
func TestCancelRunningJob(t *testing.T) {
	f := newSchedFixture(t, Config{Workers: 1}, true)
	job := f.submit(t, bigMatrix())
	f.waitState(t, job.ID, store.Running)
	resp := f.del(t, job.ID)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel running: status %d, want 202", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	var got store.Job
	for time.Now().Before(deadline) {
		got, _ = f.st.Job(job.ID)
		if got.State.Terminal() {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got.State != store.Canceled || !strings.Contains(got.Error, "canceled by client") {
		t.Fatalf("after cancel: %+v", got)
	}
	// Idempotent: canceling again is a 200 echo of the record.
	again := f.del(t, job.ID)
	again.Body.Close()
	if again.StatusCode != http.StatusOK {
		t.Fatalf("re-cancel: status %d, want 200", again.StatusCode)
	}
	// The canceled job's partial results are still a clean prefix, and the
	// same matrix resubmitted runs to completion.
	resub := f.waitDone(t, f.submit(t, bigMatrix()).ID)
	if resub.Completed != 8 {
		t.Fatalf("resubmission summary: %+v", resub)
	}
	if got, want := f.results(t, resub.ID), localJSONL(t, bigMatrix()); !bytes.Equal(got, want) {
		t.Fatal("resubmitted job stream differs from solo CLI run")
	}
}

// TestCancelTerminalConflict: done and failed jobs cannot be canceled — 409
// with a conflict envelope.
func TestCancelTerminalConflict(t *testing.T) {
	f := newFixture(t, t.TempDir(), t.TempDir(), true)
	job := f.waitDone(t, f.submit(t, testMatrix()).ID)
	resp := f.del(t, job.ID)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel done: status %d, want 409", resp.StatusCode)
	}
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error.Code != codeConflict || !strings.Contains(body.Error.Message, "done") {
		t.Fatalf("conflict envelope: %+v", body)
	}
	missing := f.del(t, "j999999")
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel missing: status %d, want 404", missing.StatusCode)
	}
}

// listPage fetches GET /v1/jobs with the given query string.
func (f *fixture) listPage(t *testing.T, query string) (jobPage, int) {
	t.Helper()
	resp, err := http.Get(f.ts.URL + "/v1/jobs" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var page jobPage
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			t.Fatal(err)
		}
	}
	return page, resp.StatusCode
}

// TestListJobsFilterAndPagination covers GET /v1/jobs: creation order,
// state filtering, limit/after paging with nextAfter.
func TestListJobsFilterAndPagination(t *testing.T) {
	f := newFixture(t, t.TempDir(), t.TempDir(), false)
	var ids []string
	for i := 0; i < 3; i++ {
		ids = append(ids, f.submit(t, testMatrix()).ID)
	}
	resp := f.del(t, ids[1])
	resp.Body.Close()

	all, code := f.listPage(t, "")
	if code != http.StatusOK || len(all.Jobs) != 3 || all.NextAfter != "" {
		t.Fatalf("full list: code %d page %+v", code, all)
	}
	for i, j := range all.Jobs {
		if j.ID != ids[i] {
			t.Fatalf("list order: got %s at %d, want %s", j.ID, i, ids[i])
		}
	}

	first, _ := f.listPage(t, "?limit=2")
	if len(first.Jobs) != 2 || first.NextAfter != ids[1] {
		t.Fatalf("page 1: %+v", first)
	}
	rest, _ := f.listPage(t, "?limit=2&after="+first.NextAfter)
	if len(rest.Jobs) != 1 || rest.Jobs[0].ID != ids[2] || rest.NextAfter != "" {
		t.Fatalf("page 2: %+v", rest)
	}

	queued, _ := f.listPage(t, "?state=queued")
	if len(queued.Jobs) != 2 {
		t.Fatalf("queued filter: %+v", queued)
	}
	canceled, _ := f.listPage(t, "?state=canceled")
	if len(canceled.Jobs) != 1 || canceled.Jobs[0].ID != ids[1] {
		t.Fatalf("canceled filter: %+v", canceled)
	}
	if _, code := f.listPage(t, "?state=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bogus state: code %d, want 400", code)
	}
	if _, code := f.listPage(t, "?limit=zero"); code != http.StatusBadRequest {
		t.Fatalf("bad limit: code %d, want 400", code)
	}
}

// TestErrorEnvelopeShape pins the typed error contract: code + field +
// message for a validation reject, on both the v1 path and the legacy alias.
func TestErrorEnvelopeShape(t *testing.T) {
	f := newFixture(t, t.TempDir(), t.TempDir(), false)
	for _, path := range []string{"/v1/jobs", "/jobs"} {
		resp, err := http.Post(f.ts.URL+path, "application/json",
			strings.NewReader(`{"nodeCounts":[2],"iterations":1}`))
		if err != nil {
			t.Fatal(err)
		}
		var body errorBody
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if body.Error.Code != codeInvalidArgument || body.Error.Field != "nodeCounts" || body.Error.Message == "" {
			t.Fatalf("%s: envelope %+v", path, body)
		}
	}
	// Unknown-field rejects name the typoed field.
	resp, err := http.Post(f.ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"nodeCount":[8],"iterations":1}`))
	if err != nil {
		t.Fatal(err)
	}
	var body errorBody
	json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if body.Error.Field != "nodeCount" {
		t.Fatalf("unknown-field envelope: %+v", body)
	}
}

// TestLegacyAliasesDeprecated: the unversioned paths still work but carry
// the Deprecation header; the v1 paths do not.
func TestLegacyAliasesDeprecated(t *testing.T) {
	f := newFixture(t, t.TempDir(), t.TempDir(), true)
	job := f.waitDone(t, f.submit(t, testMatrix()).ID)
	for _, tc := range []struct {
		path       string
		deprecated bool
	}{
		{"/healthz", true},
		{"/jobs/" + job.ID, true},
		{"/jobs/" + job.ID + "/results", true},
		{"/v1/healthz", false},
		{"/v1/jobs/" + job.ID, false},
		{"/v1/jobs/" + job.ID + "/results", false},
	} {
		resp, err := http.Get(f.ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", tc.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Deprecation") == "true"; got != tc.deprecated {
			t.Errorf("%s: Deprecation header %v, want %v", tc.path, got, tc.deprecated)
		}
	}
	// Legacy and v1 streams are the same bytes.
	legacyGet := func(p string) []byte {
		resp, err := http.Get(f.ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return raw
	}
	if !bytes.Equal(legacyGet("/jobs/"+job.ID+"/results"), legacyGet("/v1/jobs/"+job.ID+"/results")) {
		t.Error("legacy and v1 result streams differ")
	}
}
