package service

import (
	"fmt"
	"math/rand/v2"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Chaos is the worker-side fault injector behind sweepd's -chaos flag: the
// controlled way to manufacture exactly the failures the coordinator's
// lease/re-queue machinery must absorb. Probabilities draw from a seeded
// generator so a chaos schedule is reproducible run to run.
type Chaos struct {
	// HeartbeatDrop is the probability a heartbeat tick is silently skipped
	// — the network-partition / packet-loss failure mode. Drop enough in a
	// row and the worker's lease expires under it.
	HeartbeatDrop float64
	// Delay is added before every call to the coordinator — the slow-worker
	// failure mode.
	Delay time.Duration
	// CrashRate is the probability, evaluated after each completed cell,
	// that the worker dies on the spot (exit code 137, as if killed -9) —
	// the mid-shard crash failure mode.
	CrashRate float64

	mu    sync.Mutex
	rng   *rand.Rand
	crash func() // overridable so tests observe the crash instead of dying
}

// ParseChaos parses a -chaos spec: comma-separated key=value pairs from
// hbdrop=P, delay=DUR, crash=P, e.g. "hbdrop=0.5,delay=200ms,crash=0.02".
// The seed fixes the injection schedule.
func ParseChaos(spec string, seed int64) (*Chaos, error) {
	c := &Chaos{
		rng:   rand.New(rand.NewPCG(uint64(seed), 0x9e3779b97f4a7c15)),
		crash: func() { os.Exit(137) },
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("chaos: %q is not key=value", part)
		}
		switch key {
		case "hbdrop", "crash":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("chaos: %s=%q: need a probability in [0,1]", key, val)
			}
			if key == "hbdrop" {
				c.HeartbeatDrop = p
			} else {
				c.CrashRate = p
			}
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("chaos: delay=%q: need a non-negative duration", val)
			}
			c.Delay = d
		default:
			return nil, fmt.Errorf("chaos: unknown key %q (want hbdrop, delay, crash)", key)
		}
	}
	return c, nil
}

// draw samples one uniform [0,1) variate. Nil receiver draws nothing.
func (c *Chaos) draw() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64()
}

// dropHeartbeat reports whether this heartbeat tick should be skipped.
func (c *Chaos) dropHeartbeat() bool {
	if c == nil || c.HeartbeatDrop == 0 {
		return false
	}
	return c.draw() < c.HeartbeatDrop
}

// sleep injects the configured delay before a coordinator call.
func (c *Chaos) sleep() {
	if c != nil && c.Delay > 0 {
		time.Sleep(c.Delay)
	}
}

// maybeCrash kills the worker with probability CrashRate — called after
// each completed cell, i.e. mid-shard.
func (c *Chaos) maybeCrash() {
	if c == nil || c.CrashRate == 0 {
		return
	}
	if c.draw() < c.CrashRate {
		c.crash()
	}
}
