package service

import (
	"encoding/json"
	"fmt"

	"iotmpc/internal/experiment"
	"iotmpc/internal/store"
)

// storeSink is the transport boundary between the Runner and the service:
// an experiment.Sink that persists each completed cell as a result row the
// moment it is emitted, keeps the job's progress counters current, and fans
// progress events out to SSE subscribers. Because the Runner drives sinks in
// strict index order, the rows a job leaves behind replay as exactly the
// JSONL stream a CLI run of the same matrix prints.
type storeSink struct {
	store *store.Store
	hub   *hub
	jobID string

	keys      []string
	cells     int
	completed int
	summary   experiment.RunSummary
}

// progressEvent is the SSE "progress" payload.
type progressEvent struct {
	JobID     string `json:"jobId"`
	Index     int    `json:"index"`
	Completed int    `json:"completed"`
	Cells     int    `json:"cells"`
	Cached    bool   `json:"cached"`
}

// OnStart implements experiment.Sink: resolve every cell's content address
// once (rows are keyed by them) and record the job's cell count.
func (s *storeSink) OnStart(plan experiment.Plan) error {
	keys, err := experiment.ScenarioKeys(plan.Scenarios)
	if err != nil {
		return err
	}
	s.keys = keys
	s.cells = len(plan.Scenarios)
	s.completed = 0
	_, err = s.store.UpdateJob(s.jobID, false, func(j *store.Job) {
		j.Cells = s.cells
		j.Completed = 0
	})
	return err
}

// OnResult implements experiment.Sink: one row per cell, keyed by the
// cell's cache key, holding exactly the bytes a JSONLSink would print.
func (s *storeSink) OnResult(r experiment.ScenarioResult) error {
	raw, err := json.Marshal(r)
	if err != nil {
		return err
	}
	if r.Scenario.Index < 0 || r.Scenario.Index >= len(s.keys) {
		return fmt.Errorf("service: result index %d outside matrix of %d cells",
			r.Scenario.Index, len(s.keys))
	}
	if err := s.store.PutRow(s.keys[r.Scenario.Index], raw); err != nil {
		return err
	}
	s.completed++
	if _, err := s.store.UpdateJob(s.jobID, false, func(j *store.Job) {
		j.Completed = s.completed
	}); err != nil {
		return err
	}
	data, err := json.Marshal(progressEvent{
		JobID:     s.jobID,
		Index:     r.Scenario.Index,
		Completed: s.completed,
		Cells:     s.cells,
		Cached:    r.Cached,
	})
	if err != nil {
		return err
	}
	s.hub.publish(s.jobID, event{name: "progress", data: data})
	return nil
}

// OnFinish implements experiment.Sink: capture the summary so the scheduler
// can fold it into the terminal job record.
func (s *storeSink) OnFinish(sum experiment.RunSummary) error {
	s.summary = sum
	return nil
}
