package service

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// idEvent is one parsed SSE event with its (optional) id line.
type idEvent struct {
	id   uint64
	name string
	data string
}

// readSSEWithIDs parses events (with id lines) until the body closes or n
// events arrive.
func readSSEWithIDs(r io.Reader, n int) []idEvent {
	var events []idEvent
	var cur idEvent
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			cur.id, _ = strconv.ParseUint(strings.TrimPrefix(line, "id: "), 10, 64)
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.name != "":
			events = append(events, cur)
			cur = idEvent{}
			if len(events) >= n {
				return events
			}
		}
	}
	return events
}

func getEvents(t *testing.T, f *fixture, jobID, lastEventID string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, f.ts.URL+"/v1/jobs/"+jobID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	return resp
}

// TestSSEReplayAfterReconnect is the reconnect-after-drop story: a
// subscriber reads part of the stream, drops, and reconnects with
// Last-Event-ID after the job finished — the missed events replay from the
// hub's ring, without duplicating anything already delivered.
func TestSSEReplayAfterReconnect(t *testing.T) {
	f := newFixture(t, t.TempDir(), t.TempDir(), false)
	job := f.submit(t, testMatrix())

	first := getEvents(t, f, job.ID, "")
	f.svc.Start()
	// Read the initial snapshot plus the first few live events, then drop.
	head := readSSEWithIDs(first.Body, 3)
	first.Body.Close()
	if head[0].name != "state" || head[0].id != 0 {
		t.Fatalf("initial snapshot %+v, want unnumbered state", head[0])
	}
	var lastSeen uint64
	for _, ev := range head {
		if ev.id > lastSeen {
			lastSeen = ev.id
		}
	}
	if lastSeen == 0 {
		t.Fatalf("no numbered events before the drop: %+v", head)
	}
	f.waitDone(t, job.ID)

	// Reconnect where we left off: only events AFTER lastSeen replay, and
	// the stream still ends with the terminal state.
	second := getEvents(t, f, job.ID, strconv.FormatUint(lastSeen, 10))
	defer second.Body.Close()
	tail := readSSEWithIDs(second.Body, 100)
	if len(tail) == 0 {
		t.Fatal("nothing replayed")
	}
	progress := 0
	for _, ev := range tail {
		if ev.id != 0 && ev.id <= lastSeen {
			t.Fatalf("replayed already-delivered event %+v", ev)
		}
		if ev.name == "progress" {
			progress++
		}
	}
	if progress == 0 {
		t.Fatal("missed progress events were not replayed")
	}
	last := tail[len(tail)-1]
	if last.name != "state" || !strings.Contains(last.data, `"done"`) {
		t.Fatalf("replayed stream ends with %+v, want terminal state", last)
	}
	// The two reads compose into the full numbered sequence: no id gaps
	// between what the first connection saw and what the second replayed.
	var ids []uint64
	for _, ev := range append(head, tail...) {
		if ev.id != 0 {
			ids = append(ids, ev.id)
		}
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[i-1]+1 {
			t.Fatalf("id sequence has a hole: %v", ids)
		}
	}
}

// TestSSEReplayGapResyncs: a Last-Event-ID the ring cannot bridge (here:
// from a "previous era", beyond anything published) degrades to a fresh
// state snapshot instead of a silent nothing.
func TestSSEReplayGapResyncs(t *testing.T) {
	f := newFixture(t, t.TempDir(), t.TempDir(), true)
	job := f.waitDone(t, f.submit(t, testMatrix()).ID)
	resp := getEvents(t, f, job.ID, "999999")
	defer resp.Body.Close()
	events := readSSEWithIDs(resp.Body, 10)
	if len(events) == 0 {
		t.Fatal("gap reconnect got nothing")
	}
	if events[0].name != "state" || !strings.Contains(events[0].data, `"done"`) {
		t.Fatalf("gap reconnect first event %+v, want fresh terminal snapshot", events[0])
	}
}
