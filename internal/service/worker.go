package service

// This file is the worker half of distributed sweeps: the client a sweepd
// started with -join runs instead of serving HTTP. A Worker registers with
// the coordinator, heartbeats to hold its lease, executes the shards its
// heartbeats grant it on a local experiment.Runner (sharing the exact
// per-scenario-seed determinism of a solo run), streams each completed
// cell's row back as it lands, and reports the shard done once the range is
// complete.
//
// Reconciliation is list-based: every heartbeat response carries the
// worker's complete grant set, so a shard missing from the list — withdrawn
// after this worker's lease briefly lapsed, or its job canceled — has its
// execution context canceled, and a shard with a new attempt number starts
// a fresh execution. A worker that loses its registration (coordinator
// restart, lease expiry during a partition) re-registers under a new
// identity and simply picks up whatever work it is granted next; the cells
// it already computed are in its cache, so a re-granted shard resumes
// instead of recomputing.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"iotmpc/internal/experiment"
)

// WorkerConfig wires a Worker to its coordinator and local execution knobs.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL, e.g. http://host:8080.
	// Required.
	Coordinator string
	// Name labels this worker in the coordinator's registry and healthz.
	Name string
	// CacheDir roots the local result cache. Required. Pointing every
	// worker at one shared directory makes re-granted shards resume from
	// the dead worker's completed cells.
	CacheDir string
	// Workers, TrialWorkers, Lanes configure the local Runner exactly like
	// the server-side knobs of the same names.
	Workers      int
	TrialWorkers int
	Lanes        int
	// HeartbeatEvery overrides the heartbeat cadence; zero selects a third
	// of the lease TTL the coordinator grants at registration.
	HeartbeatEvery time.Duration
	// Chaos optionally injects faults (see ParseChaos); nil injects none.
	Chaos *Chaos
	// Client overrides the HTTP client; nil selects a 30s-timeout default.
	Client *http.Client
	// Log receives operational chatter; nil discards it.
	Log io.Writer
}

// Worker executes shards for one coordinator. Construct with NewWorker and
// drive with Run, which blocks until the context is canceled.
type Worker struct {
	cfg    WorkerConfig
	client *http.Client

	id       string
	leaseTTL time.Duration

	mu    sync.Mutex
	execs map[string]*shardExec // key: job/shard/attempt
}

// shardExec is one in-flight shard execution.
type shardExec struct {
	cancel context.CancelFunc
	done   chan struct{}
}

func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("worker: empty coordinator URL")
	}
	if cfg.CacheDir == "" {
		return nil, fmt.Errorf("worker: empty cache directory")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	return &Worker{cfg: cfg, client: client, execs: make(map[string]*shardExec)}, nil
}

// registerRetryEvery paces registration attempts against a coordinator that
// is not up yet (or briefly unreachable after a restart).
const registerRetryEvery = time.Second

// Run is the worker's main loop: register, then heartbeat until ctx is
// canceled, reconciling shard executions against each response's grant
// list. In-flight executions are canceled (not completed) on exit; their
// partial work is in the cache, so whoever inherits the shard resumes it.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	every := w.cfg.HeartbeatEvery
	if every <= 0 {
		every = w.leaseTTL / 3
	}
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	defer w.cancelAll()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
		}
		if w.cfg.Chaos.dropHeartbeat() {
			fmt.Fprintf(w.cfg.Log, "worker %s: chaos dropped heartbeat\n", w.id)
			continue
		}
		grants, lost, err := w.heartbeat(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			fmt.Fprintf(w.cfg.Log, "worker %s: heartbeat: %v\n", w.id, err)
			continue
		}
		if lost {
			// The coordinator no longer knows this identity: lease expired
			// under us, or the coordinator restarted. Anything we are
			// executing has been (or will be) re-granted elsewhere — stop,
			// re-register, start clean. Completed cells stay in the cache.
			fmt.Fprintf(w.cfg.Log, "worker %s: lease lost; re-registering\n", w.id)
			w.cancelAll()
			if err := w.register(ctx); err != nil {
				return err
			}
			continue
		}
		w.reconcile(ctx, grants)
	}
}

// register obtains a fresh identity, retrying until the coordinator answers
// or ctx is canceled.
func (w *Worker) register(ctx context.Context) error {
	body, _ := json.Marshal(workerReg{Name: w.cfg.Name})
	for {
		w.cfg.Chaos.sleep()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			w.cfg.Coordinator+"/v1/workers", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := w.client.Do(req)
		if err == nil {
			if resp.StatusCode == http.StatusCreated {
				var info workerInfo
				err := json.NewDecoder(resp.Body).Decode(&info)
				resp.Body.Close()
				if err != nil {
					return fmt.Errorf("worker: decode registration: %w", err)
				}
				w.id = info.ID
				w.leaseTTL = time.Duration(info.LeaseMillis) * time.Millisecond
				fmt.Fprintf(w.cfg.Log, "worker %s (%s): registered with %s (lease %s)\n",
					w.id, w.cfg.Name, w.cfg.Coordinator, w.leaseTTL)
				return nil
			}
			raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if resp.StatusCode == http.StatusConflict {
				// Not a coordinator: retrying will never help.
				return fmt.Errorf("worker: %s refused registration: %s", w.cfg.Coordinator, raw)
			}
			fmt.Fprintf(w.cfg.Log, "worker: register: status %d: %s\n", resp.StatusCode, raw)
		} else {
			fmt.Fprintf(w.cfg.Log, "worker: register: %v\n", err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(registerRetryEvery):
		}
	}
}

// heartbeat renews the lease and fetches the grant list. lost=true means
// the coordinator does not recognize this worker anymore.
func (w *Worker) heartbeat(ctx context.Context) (grants []shardGrant, lost bool, err error) {
	w.cfg.Chaos.sleep()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		fmt.Sprintf("%s/v1/workers/%s/heartbeat", w.cfg.Coordinator, w.id), nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var hb heartbeatResponse
		if err := json.NewDecoder(resp.Body).Decode(&hb); err != nil {
			return nil, false, err
		}
		return hb.Grants, false, nil
	case http.StatusGone, http.StatusNotFound:
		return nil, true, nil
	default:
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, false, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
}

// reconcile aligns local executions with the grant list: start what is
// granted and not running, cancel what is running and not granted.
func (w *Worker) reconcile(ctx context.Context, grants []shardGrant) {
	granted := make(map[string]shardGrant, len(grants))
	for _, g := range grants {
		granted[grantKey(g)] = g
	}
	w.mu.Lock()
	var stale []*shardExec
	for key, ex := range w.execs {
		if _, ok := granted[key]; !ok {
			stale = append(stale, ex)
			delete(w.execs, key)
		}
	}
	var start []shardGrant
	for key, g := range granted {
		if _, ok := w.execs[key]; !ok {
			ectx, cancel := context.WithCancel(ctx)
			ex := &shardExec{cancel: cancel, done: make(chan struct{})}
			w.execs[key] = ex
			start = append(start, g)
			go w.runShard(ectx, g, ex)
		}
	}
	w.mu.Unlock()
	for _, ex := range stale {
		ex.cancel()
	}
	for _, g := range start {
		fmt.Fprintf(w.cfg.Log, "worker %s: granted shard %d/%d of %s (attempt %d)\n",
			w.id, g.Shard, g.Total, g.Job, g.Attempt)
	}
}

func grantKey(g shardGrant) string {
	return fmt.Sprintf("%s/%d/%d", g.Job, g.Shard, g.Attempt)
}

// cancelAll stops every in-flight execution and waits for the goroutines.
func (w *Worker) cancelAll() {
	w.mu.Lock()
	execs := w.execs
	w.execs = make(map[string]*shardExec)
	w.mu.Unlock()
	for _, ex := range execs {
		ex.cancel()
	}
	for _, ex := range execs {
		<-ex.done
	}
}

// runShard executes one granted shard and reports it. Failures other than
// cancellation are logged and abandoned — the lease machinery re-queues the
// shard; there is deliberately no failure-report RPC, because a worker that
// can fail loudly is indistinguishable, to the coordinator, from one that
// dies silently, and one recovery path is better than two.
func (w *Worker) runShard(ctx context.Context, g shardGrant, ex *shardExec) {
	defer close(ex.done)
	defer func() {
		w.mu.Lock()
		if w.execs[grantKey(g)] == ex {
			delete(w.execs, grantKey(g))
		}
		w.mu.Unlock()
	}()
	var m experiment.Matrix
	if err := json.Unmarshal(g.Spec, &m); err != nil {
		fmt.Fprintf(w.cfg.Log, "worker %s: shard %s: decode spec: %v\n", w.id, grantKey(g), err)
		return
	}
	up := &uploadSink{worker: w, grant: g, ctx: ctx}
	opts := []experiment.Option{
		experiment.WithCache(w.cfg.CacheDir),
		experiment.WithShard(experiment.ShardSpec{Shard: g.Shard, Total: g.Total}),
		experiment.WithContext(ctx),
		experiment.WithWorkers(w.cfg.Workers),
		experiment.WithLanes(w.cfg.Lanes),
		experiment.WithSinks(up),
	}
	if w.cfg.TrialWorkers > 0 {
		opts = append(opts, experiment.WithTrialWorkers(w.cfg.TrialWorkers))
	}
	if _, err := experiment.NewRunner(opts...).Run(m); err != nil {
		if ctx.Err() == nil {
			fmt.Fprintf(w.cfg.Log, "worker %s: shard %s: %v\n", w.id, grantKey(g), err)
		}
		return
	}
	w.reportDone(ctx, g, up.summary, up)
}

// reportRetryEvery paces done-report retries against upload hiccups.
const reportRetryEvery = 500 * time.Millisecond

// reportDone flushes any rows still pending and posts the completion
// report, retrying until it lands, the coordinator declares it stale, or
// the grant is withdrawn (ctx canceled).
func (w *Worker) reportDone(ctx context.Context, g shardGrant, sum experiment.RunSummary, up *uploadSink) {
	body, err := json.Marshal(shardDoneRequest{Attempt: g.Attempt, Summary: sum})
	if err != nil {
		fmt.Fprintf(w.cfg.Log, "worker %s: shard %s: encode report: %v\n", w.id, grantKey(g), err)
		return
	}
	url := fmt.Sprintf("%s/v1/workers/%s/shards/%s/%d/done", w.cfg.Coordinator, w.id, g.Job, g.Shard)
	for ctx.Err() == nil {
		if err := up.flush(); err != nil {
			fmt.Fprintf(w.cfg.Log, "worker %s: shard %s: flush rows: %v\n", w.id, grantKey(g), err)
		} else {
			w.cfg.Chaos.sleep()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
			if err != nil {
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := w.client.Do(req)
			if err == nil {
				var ack shardDoneResponse
				decErr := json.NewDecoder(resp.Body).Decode(&ack)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK && decErr == nil && (ack.Done || ack.Stale):
					fmt.Fprintf(w.cfg.Log, "worker %s: shard %s done (stale=%v)\n", w.id, grantKey(g), ack.Stale)
					return
				case resp.StatusCode == http.StatusConflict:
					// Rows missing on the coordinator (a lost upload):
					// re-send everything and retry.
					up.rewind()
				}
			} else {
				fmt.Fprintf(w.cfg.Log, "worker %s: shard %s: report: %v\n", w.id, grantKey(g), err)
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(reportRetryEvery):
		}
	}
}

// uploadSink is the worker-side experiment.Sink: it buffers each completed
// cell's row — the exact bytes a solo run's storeSink persists — and
// streams them to the coordinator as they land. An upload failure keeps the
// rows buffered; the next OnResult (or the done report) re-flushes, so a
// flaky link degrades to batching, never to loss.
type uploadSink struct {
	worker *Worker
	grant  shardGrant
	ctx    context.Context

	mu      sync.Mutex
	rows    [][]byte
	sent    int
	summary experiment.RunSummary
}

func (u *uploadSink) OnStart(plan experiment.Plan) error { return nil }

func (u *uploadSink) OnResult(r experiment.ScenarioResult) error {
	raw, err := json.Marshal(r)
	if err != nil {
		return err
	}
	u.mu.Lock()
	u.rows = append(u.rows, raw)
	u.mu.Unlock()
	if err := u.flush(); err != nil {
		fmt.Fprintf(u.worker.cfg.Log, "worker %s: shard %s: upload: %v (buffered)\n",
			u.worker.id, grantKey(u.grant), err)
	}
	u.worker.cfg.Chaos.maybeCrash()
	return nil
}

func (u *uploadSink) OnFinish(sum experiment.RunSummary) error {
	u.summary = sum
	return nil
}

// flush uploads the unsent row suffix as one JSONL batch.
func (u *uploadSink) flush() error {
	u.mu.Lock()
	pending := u.rows[u.sent:]
	mark := len(u.rows)
	u.mu.Unlock()
	if len(pending) == 0 {
		return nil
	}
	var body bytes.Buffer
	for _, row := range pending {
		body.Write(row)
		body.WriteByte('\n')
	}
	u.worker.cfg.Chaos.sleep()
	url := fmt.Sprintf("%s/v1/workers/%s/shards/%s/%d/rows",
		u.worker.cfg.Coordinator, u.worker.id, u.grant.Job, u.grant.Shard)
	req, err := http.NewRequestWithContext(u.ctx, http.MethodPost, url, &body)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := u.worker.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	u.mu.Lock()
	if mark > u.sent {
		u.sent = mark
	}
	u.mu.Unlock()
	return nil
}

// rewind marks every row unsent, forcing the next flush to re-upload the
// whole shard (the coordinator's PutRow is an idempotent upsert, so
// re-sending is always safe).
func (u *uploadSink) rewind() {
	u.mu.Lock()
	u.sent = 0
	u.mu.Unlock()
}
