package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"iotmpc/internal/experiment"
	"iotmpc/internal/store"
)

// coordCfg is the suite's fast-failure coordinator tuning: leases expire in
// fractions of a second and backoff is milliseconds, so every re-queue path
// is exercised in test time.
func coordCfg(st *store.Store, cacheDir string) Config {
	return Config{
		Store:            st,
		CacheDir:         cacheDir,
		Coordinator:      true,
		LeaseTTL:         300 * time.Millisecond,
		LeaseScanEvery:   10 * time.Millisecond,
		ShardBackoffBase: 5 * time.Millisecond,
		ShardBackoffMax:  20 * time.Millisecond,
		MaxShardAttempts: 3,
	}
}

// newCoordFixture is newFixture with the service in coordinator mode.
func newCoordFixture(t *testing.T, storeDir, cacheDir string, mutate func(*Config)) *fixture {
	t.Helper()
	st, err := store.Open(storeDir)
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	cfg := coordCfg(st, cacheDir)
	if mutate != nil {
		mutate(&cfg)
	}
	svc, err := New(cfg)
	if err != nil {
		st.Close()
		t.Fatalf("service: %v", err)
	}
	f := &fixture{st: st, svc: svc, ts: httptest.NewServer(svc.Handler())}
	svc.Start()
	t.Cleanup(func() {
		f.ts.Close()
		f.svc.Close()
		f.st.Close()
	})
	return f
}

// startWorker launches a real Worker against the fixture and returns its
// stop function (idempotent; also registered as cleanup).
func startWorker(t *testing.T, f *fixture, name, cacheDir string, chaos *Chaos) (stop func()) {
	t.Helper()
	w, err := NewWorker(WorkerConfig{
		Coordinator:    f.ts.URL,
		Name:           name,
		CacheDir:       cacheDir,
		HeartbeatEvery: 20 * time.Millisecond,
		Chaos:          chaos,
	})
	if err != nil {
		t.Fatalf("worker %s: %v", name, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := w.Run(ctx); err != nil && ctx.Err() == nil {
			t.Errorf("worker %s: %v", name, err)
		}
	}()
	stop = func() {
		cancel()
		<-done
	}
	t.Cleanup(stop)
	return stop
}

// TestDistributedJobByteIdentical is the tentpole acceptance bar in-process:
// two workers with SEPARATE caches execute a job's shards, stream rows back,
// and the merged result stream is byte-identical to a solo CLI run.
func TestDistributedJobByteIdentical(t *testing.T) {
	f := newCoordFixture(t, t.TempDir(), t.TempDir(), nil)
	startWorker(t, f, "w1", t.TempDir(), nil)
	startWorker(t, f, "w2", t.TempDir(), nil)
	m := testMatrix()
	done := f.waitDone(t, f.submit(t, m).ID)
	if done.Completed != 4 {
		t.Fatalf("completed %d of 4: %+v", done.Completed, done)
	}
	if done.Computed+done.CacheHits != 4 {
		t.Fatalf("computed %d + hits %d != 4 cells", done.Computed, done.CacheHits)
	}
	if got, want := f.results(t, done.ID), localJSONL(t, m); !bytes.Equal(got, want) {
		t.Fatalf("distributed results differ from solo run:\n got: %s\nwant: %s", got, want)
	}
}

// TestDistributedSurvivesWorkerDeath: a worker dies mid-job; its lease
// expires, the shard re-queues to the survivor, and the job completes
// byte-identically.
func TestDistributedSurvivesWorkerDeath(t *testing.T) {
	f := newCoordFixture(t, t.TempDir(), t.TempDir(), nil)
	shared := t.TempDir() // shared cache: the survivor resumes the dead worker's cells
	stop1 := startWorker(t, f, "victim", shared, nil)
	startWorker(t, f, "survivor", shared, nil)
	m := testMatrix()
	m.Iterations = 40 // slow the shards enough that the kill lands mid-job
	job := f.submit(t, m)

	// Kill the victim once dispatch has begun (it may or may not hold a
	// shard at that instant — both interleavings must complete).
	deadline := time.Now().Add(10 * time.Second)
	for f.job(t, job.ID).State == store.Queued && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	stop1()
	done := f.waitDone(t, job.ID)
	if done.Completed != 4 {
		t.Fatalf("completed %d of 4: %+v", done.Completed, done)
	}
	if got, want := f.results(t, job.ID), localJSONL(t, m); !bytes.Equal(got, want) {
		t.Fatal("results after worker death differ from solo run")
	}
}

// --- raw worker driver ------------------------------------------------------
// A hand-driven worker speaking the wire protocol directly, for tests that
// need precise control over when heartbeats stop and what gets uploaded.

func registerRaw(t *testing.T, baseURL, name string) workerInfo {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/workers", "application/json",
		strings.NewReader(fmt.Sprintf(`{"name":%q}`, name)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d", resp.StatusCode)
	}
	var info workerInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

func heartbeatRaw(t *testing.T, baseURL, id string) (grants []shardGrant, status int) {
	t.Helper()
	resp, err := http.Post(fmt.Sprintf("%s/v1/workers/%s/heartbeat", baseURL, id), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode
	}
	var hb heartbeatResponse
	if err := json.NewDecoder(resp.Body).Decode(&hb); err != nil {
		t.Fatal(err)
	}
	return hb.Grants, resp.StatusCode
}

// waitGrant heartbeats until the worker holds at least one shard.
func waitGrant(t *testing.T, baseURL, id string) shardGrant {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		grants, status := heartbeatRaw(t, baseURL, id)
		if status != http.StatusOK {
			t.Fatalf("heartbeat status %d while waiting for a grant", status)
		}
		if len(grants) > 0 {
			return grants[0]
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("no grant arrived")
	return shardGrant{}
}

func uploadRowsRaw(t *testing.T, baseURL, id string, g shardGrant, lines [][]byte) rowsResponse {
	t.Helper()
	var body bytes.Buffer
	for _, l := range lines {
		body.Write(l)
		body.WriteByte('\n')
	}
	resp, err := http.Post(fmt.Sprintf("%s/v1/workers/%s/shards/%s/%d/rows", baseURL, id, g.Job, g.Shard),
		"application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("rows: status %d: %s", resp.StatusCode, raw)
	}
	var ack rowsResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	return ack
}

func reportDoneRaw(t *testing.T, baseURL, id string, g shardGrant) (shardDoneResponse, int) {
	t.Helper()
	body, _ := json.Marshal(shardDoneRequest{Attempt: g.Attempt})
	resp, err := http.Post(fmt.Sprintf("%s/v1/workers/%s/shards/%s/%d/done", baseURL, id, g.Job, g.Shard),
		"application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack shardDoneResponse
	json.NewDecoder(resp.Body).Decode(&ack)
	return ack, resp.StatusCode
}

// rowLines splits the solo-run golden into per-cell row lines.
func rowLines(t *testing.T, m experiment.Matrix) [][]byte {
	t.Helper()
	var lines [][]byte
	for _, l := range bytes.Split(localJSONL(t, m), []byte("\n")) {
		if len(l) > 0 {
			lines = append(lines, l)
		}
	}
	return lines
}

// TestWorkerEndpointsRequireCoordinator: on a plain sweepd the distributed
// surface answers 409, so a misdirected -join fails loudly, not silently.
func TestWorkerEndpointsRequireCoordinator(t *testing.T) {
	f := newFixture(t, t.TempDir(), t.TempDir(), false)
	resp, err := http.Post(f.ts.URL+"/v1/workers", "application/json", strings.NewReader(`{"name":"w"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("register on non-coordinator: status %d, want 409", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "coordinator") {
		t.Fatalf("409 body does not explain the problem: %s", body)
	}
}

// TestHeartbeatAfterExpiry is the first lease race: a worker whose lease
// has already expired (and been scanned away) heartbeats — it must get 410
// and its shard must already be back in the pending pool, re-grantable to
// a new registration.
func TestHeartbeatAfterExpiry(t *testing.T) {
	f := newCoordFixture(t, t.TempDir(), t.TempDir(), nil)
	m := testMatrix()
	job := f.submit(t, m)
	w := registerRaw(t, f.ts.URL, "laggard")
	g := waitGrant(t, f.ts.URL, w.ID)
	if g.Job != job.ID || g.Attempt != 1 {
		t.Fatalf("grant %+v", g)
	}
	// Go silent past the lease — heartbeating while waiting would renew the
	// very lease under test — then heartbeat once, just after expiry.
	time.Sleep(3 * coordCfg(nil, "").LeaseTTL)
	if _, status := heartbeatRaw(t, f.ts.URL, w.ID); status != http.StatusGone {
		t.Fatalf("heartbeat after expiry: status %d, want 410", status)
	}
	// The shard is re-grantable — to a NEW registration, with a bumped
	// attempt counter.
	w2 := registerRaw(t, f.ts.URL, "replacement")
	g2 := waitGrant(t, f.ts.URL, w2.ID)
	if g2.Job != job.ID || g2.Shard != g.Shard {
		t.Fatalf("re-grant %+v, want shard %d of %s", g2, g.Shard, job.ID)
	}
	if g2.Attempt != g.Attempt+1 {
		t.Fatalf("re-grant attempt %d, want %d", g2.Attempt, g.Attempt+1)
	}
	// Assignment state (with the attempt history) is persisted.
	assigns, ok := f.st.Assignments(job.ID)
	if !ok || assigns[g.Shard].Attempts != 2 || assigns[g.Shard].Worker != w2.ID {
		t.Fatalf("persisted assignments: ok=%v %+v", ok, assigns)
	}
}

// TestZombieDuplicateCompletionIdempotent is the second lease race: a
// worker loses its lease mid-shard, the shard is re-executed elsewhere and
// the job finishes — then the zombie reports in. Its uploads and completion
// report must be absorbed without changing the job's terminal record or its
// result bytes.
func TestZombieDuplicateCompletionIdempotent(t *testing.T) {
	f := newCoordFixture(t, t.TempDir(), t.TempDir(), nil)
	m := testMatrix()
	job := f.submit(t, m)
	lines := rowLines(t, m)

	// The zombie-to-be claims the whole matrix (single worker: 1 shard),
	// uploads HALF its rows, then goes silent.
	z := registerRaw(t, f.ts.URL, "zombie")
	g := waitGrant(t, f.ts.URL, z.ID)
	if g.Total != 1 {
		t.Fatalf("grant total %d, want 1 (single registered worker)", g.Total)
	}
	uploadRowsRaw(t, f.ts.URL, z.ID, g, lines[:2])
	// A premature done report must be refused: rows are missing.
	if _, status := reportDoneRaw(t, f.ts.URL, z.ID, g); status != http.StatusConflict {
		t.Fatalf("done with missing rows: status %d, want 409", status)
	}

	// A real worker takes over after the lease expires and finishes the job.
	startWorker(t, f, "heir", t.TempDir(), nil)
	done := f.waitDone(t, job.ID)
	want := localJSONL(t, m)
	if got := f.results(t, job.ID); !bytes.Equal(got, want) {
		t.Fatal("results before zombie differ from solo run")
	}

	// The zombie wakes up and replays its whole shard: rows, then done.
	ack := uploadRowsRaw(t, f.ts.URL, z.ID, g, lines)
	if !ack.Stale {
		t.Fatalf("zombie rows not marked stale: %+v", ack)
	}
	dack, status := reportDoneRaw(t, f.ts.URL, z.ID, g)
	if status != http.StatusOK || !dack.Stale {
		t.Fatalf("zombie done: status %d ack %+v, want stale 200", status, dack)
	}
	after := f.job(t, job.ID)
	if after.State != store.Done || after.Completed != done.Completed || after.Computed != done.Computed {
		t.Fatalf("zombie changed the terminal record: before %+v after %+v", done, after)
	}
	if got := f.results(t, job.ID); !bytes.Equal(got, want) {
		t.Fatal("zombie changed the result bytes")
	}
}

// TestShardAttemptBudget: a shard that keeps losing its lease fails its job
// with the typed ShardError naming the shard, after exactly MaxShardAttempts
// grants.
func TestShardAttemptBudget(t *testing.T) {
	f := newCoordFixture(t, t.TempDir(), t.TempDir(), func(c *Config) { c.MaxShardAttempts = 2 })
	job := f.submit(t, testMatrix())
	// Two generations of workers take the shard and die without computing.
	for attempt := 1; attempt <= 2; attempt++ {
		w := registerRaw(t, f.ts.URL, fmt.Sprintf("flaky-%d", attempt))
		g := waitGrant(t, f.ts.URL, w.ID)
		if g.Attempt != attempt {
			t.Fatalf("generation %d granted attempt %d", attempt, g.Attempt)
		}
		// Abandon: no more heartbeats from this identity.
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		j := f.job(t, job.ID)
		if j.State == store.Failed {
			if !strings.Contains(j.Error, "shard 0/1") || !strings.Contains(j.Error, "after 2 attempts") {
				t.Fatalf("failure error %q does not name the shard and budget", j.Error)
			}
			return
		}
		if j.State == store.Done {
			t.Fatal("job completed despite every worker dying")
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("job never failed")
}

// TestCoordinatorRestartResumesDispatch is the third lease race: the
// coordinator dies mid-dispatch with one shard done and one assigned. The
// restarted coordinator must resume from the persisted assignments — done
// shard untouched, assigned shard re-queued — and finish without
// recomputing the completed range.
func TestCoordinatorRestartResumesDispatch(t *testing.T) {
	storeDir, cacheDir := t.TempDir(), t.TempDir()
	m := testMatrix()
	var jobID string
	var doneShard shardGrant
	{
		f := newCoordFixture(t, storeDir, cacheDir, nil)
		jobID = f.submit(t, m).ID
		// Two raw workers so the matrix splits into two shards.
		w1 := registerRaw(t, f.ts.URL, "w1")
		w2 := registerRaw(t, f.ts.URL, "w2")
		g1 := waitGrant(t, f.ts.URL, w1.ID)
		g2 := waitGrant(t, f.ts.URL, w2.ID)
		if g1.Total != 2 || g2.Total != 2 || g1.Shard == g2.Shard {
			t.Fatalf("grants %+v / %+v, want distinct shards of 2", g1, g2)
		}
		// w1 completes its shard for real (upload golden rows + done).
		lines := rowLines(t, m)
		lo, hi := experiment.ShardSpec{Shard: g1.Shard, Total: 2}.Range(len(lines))
		uploadRowsRaw(t, f.ts.URL, w1.ID, g1, lines[lo:hi])
		if ack, status := reportDoneRaw(t, f.ts.URL, w1.ID, g1); status != http.StatusOK || !ack.Done {
			t.Fatalf("w1 done: status %d ack %+v", status, ack)
		}
		doneShard = g1
		// Coordinator "dies" (drains); w2 still holds its shard.
		f.ts.Close()
		f.svc.Close()
		f.st.Close()
	}
	// The drained job is resumable and its assignments survived.
	{
		st := openStoreT(t, storeDir)
		j, ok := st.Job(jobID)
		if !ok || j.State != store.Queued || !strings.Contains(j.Error, "resumable") {
			t.Fatalf("job after drain: ok=%v %+v", ok, j)
		}
		assigns, ok := st.Assignments(jobID)
		if !ok || len(assigns) != 2 {
			t.Fatalf("assignments after drain: ok=%v %+v", ok, assigns)
		}
		if assigns[doneShard.Shard].State != store.ShardDone {
			t.Fatalf("done shard lost: %+v", assigns)
		}
		st.Close()
	}
	// Restart: a real worker finishes only the unfinished shard.
	f := newCoordFixture(t, storeDir, cacheDir, nil)
	startWorker(t, f, "heir", t.TempDir(), nil)
	done := f.waitDone(t, jobID)
	if done.Completed != 4 {
		t.Fatalf("completed %d of 4 after restart", done.Completed)
	}
	// The done shard's cells were restored, not recomputed: they count as
	// cache hits, and the heir computed at most the other shard's range.
	if done.CacheHits < 2 {
		t.Fatalf("restored shard not counted as hits: %+v", done)
	}
	if done.Computed > 2 {
		t.Fatalf("restart recomputed finished cells: %+v", done)
	}
	if got, want := f.results(t, jobID), localJSONL(t, m); !bytes.Equal(got, want) {
		t.Fatal("results after coordinator restart differ from solo run")
	}
}

func openStoreT(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestHealthzCoordinator: the healthz body exposes queue depth, active
// jobs, and per-worker lease state; a coordinator with dispatching jobs and
// no workers reports itself degraded.
func TestHealthzCoordinator(t *testing.T) {
	f := newCoordFixture(t, t.TempDir(), t.TempDir(), nil)
	job := f.submit(t, testMatrix())
	// Wait until the job is claimed (dispatching, no workers → degraded).
	deadline := time.Now().Add(10 * time.Second)
	for f.job(t, job.ID).State == store.Queued && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	h := getHealthz(t, f)
	if !h.Coordinator || h.Status != "degraded" {
		t.Fatalf("workerless coordinator healthz: %+v", h)
	}
	if h.ActiveJobs != 1 {
		t.Fatalf("activeJobs %d, want 1", h.ActiveJobs)
	}
	// A worker joins and takes the shard: status recovers and the lease
	// state is visible.
	w := registerRaw(t, f.ts.URL, "ward")
	g := waitGrant(t, f.ts.URL, w.ID)
	h = getHealthz(t, f)
	if h.Status != "ok" || len(h.Workers) != 1 {
		t.Fatalf("healthz with worker: %+v", h)
	}
	if h.Workers[0].ID != w.ID || h.Workers[0].LeaseRemainingMillis <= 0 {
		t.Fatalf("worker entry %+v", h.Workers[0])
	}
	wantShard := fmt.Sprintf("%s/%d", g.Job, g.Shard)
	if len(h.Workers[0].Shards) != 1 || h.Workers[0].Shards[0] != wantShard {
		t.Fatalf("worker shards %v, want [%s]", h.Workers[0].Shards, wantShard)
	}
}

func getHealthz(t *testing.T, f *fixture) healthz {
	t.Helper()
	resp, err := http.Get(f.ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthz
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}
