// Package service is the sweep service's HTTP layer: a job API over the
// experiment Runner. POST /jobs accepts a Matrix spec as JSON and queues it;
// a scheduler goroutine drains the queue into the Runner one job at a time,
// with the Sink interface as the transport boundary — a storeSink persists
// every completed cell into the durable store and fans progress out to SSE
// subscribers. Results stream back as JSONL (GET /jobs/{id}/results) in
// deterministic index order, byte-identical to what a CLI run of the same
// matrix prints, and all jobs share one content-addressed result cache, so
// a matrix any job has computed before costs nothing to run again.
//
// Crash safety composes from the layers below: the store re-queues jobs
// that were running when the process died, and the Runner's cache prober
// resumes them computing only the cells the dead run never finished.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"iotmpc/internal/cache"
	"iotmpc/internal/experiment"
	"iotmpc/internal/store"
)

// Config wires a Server to its store, cache, and Runner knobs.
type Config struct {
	// Store is the durable job/result store. Required.
	Store *store.Store
	// CacheDir roots the content-addressed result cache every job shares —
	// the deduplicated corpus. Required.
	CacheDir string
	// Workers, TrialWorkers, and Lanes configure each job's Runner exactly
	// like the CLI flags of the same names (zero selects the defaults).
	Workers      int
	TrialWorkers int
	Lanes        int
}

// maxSpecBytes bounds a POST /jobs body; a matrix spec is a few hundred
// bytes of axis lists, so a megabyte is already generous.
const maxSpecBytes = 1 << 20

// Server is the sweep service: HTTP handlers plus the scheduler goroutine.
// Construct with New, serve Handler, call Start to begin executing jobs,
// and Close to drain (the in-flight job is canceled and re-queued as
// resumable — the store must outlive the Close call).
type Server struct {
	cfg    Config
	cache  *cache.Store
	hub    *hub
	mux    *http.ServeMux
	wake   chan struct{}
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// New builds a Server over an open store: jobs left running by a crashed or
// drained predecessor are re-queued for resume, and everything queued is
// picked up once Start is called.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("service: nil store")
	}
	if cfg.CacheDir == "" {
		return nil, fmt.Errorf("service: empty cache directory (the shared result corpus is required)")
	}
	cacheStore, err := cache.Open(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		cache:  cacheStore,
		hub:    newHub(),
		wake:   make(chan struct{}, 1),
		ctx:    ctx,
		cancel: cancel,
	}
	// Recovery: a job that was Running when the previous process stopped
	// never reached a terminal state. Its completed cells are in the cache,
	// so re-queuing it makes the next execution a resume that computes only
	// the missing cells.
	for _, job := range cfg.Store.Jobs() {
		if job.State == store.Running {
			if _, err := cfg.Store.UpdateJob(job.ID, true, func(j *store.Job) {
				j.State = store.Queued
				j.Error = "resumable: interrupted by restart"
			}); err != nil {
				cancel()
				return nil, err
			}
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /jobs/{id}/results", s.handleResults)
	s.mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Start launches the scheduler goroutine.
func (s *Server) Start() {
	s.wg.Add(1)
	go s.runLoop()
}

// Close drains the service: the in-flight job's Runner context is canceled
// (in-flight cells finish, everything not yet dispatched is skipped), the
// job is re-queued as resumable, and the scheduler exits. The store stays
// open — closing it is the owner's job, after Close returns.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
}

// notify nudges the scheduler; the buffered channel coalesces bursts.
func (s *Server) notify() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// runLoop is the scheduler: oldest queued job first, one at a time — cells
// already fan across the Runner's worker pool, so job-level concurrency
// would only make two sweeps fight over the same cores. Exits when the
// service context is canceled, or on a store write failure (at which point
// no progress can be recorded truthfully, so executing more jobs would lie).
func (s *Server) runLoop() {
	defer s.wg.Done()
	for {
		if s.ctx.Err() != nil {
			return
		}
		id, ok := s.nextQueued()
		if !ok {
			select {
			case <-s.ctx.Done():
				return
			case <-s.wake:
			}
			continue
		}
		if err := s.runJob(id); err != nil {
			return
		}
	}
}

// nextQueued returns the oldest queued job's ID.
func (s *Server) nextQueued() (string, bool) {
	for _, job := range s.cfg.Store.Jobs() {
		if job.State == store.Queued {
			return job.ID, true
		}
	}
	return "", false
}

// runJob executes one job on the Runner. The returned error is a STORE
// failure — job-level failures (bad spec, sweep error) are recorded on the
// job itself and do not stop the scheduler.
func (s *Server) runJob(id string) error {
	job, err := s.cfg.Store.UpdateJob(id, true, func(j *store.Job) {
		j.State = store.Running
		j.Error = ""
	})
	if err != nil {
		return err
	}
	s.publishState(job)

	var m experiment.Matrix
	if err := json.Unmarshal(job.Spec, &m); err != nil {
		return s.finishJob(id, store.Failed, fmt.Sprintf("decode stored spec: %v", err), nil)
	}
	sink := &storeSink{store: s.cfg.Store, hub: s.hub, jobID: id}
	opts := []experiment.Option{
		experiment.WithWorkers(s.cfg.Workers),
		experiment.WithLanes(s.cfg.Lanes),
		experiment.WithCache(s.cfg.CacheDir),
		experiment.WithContext(s.ctx),
		experiment.WithSinks(sink),
	}
	if s.cfg.TrialWorkers > 0 {
		opts = append(opts, experiment.WithTrialWorkers(s.cfg.TrialWorkers))
	}
	_, runErr := experiment.NewRunner(opts...).Run(m)
	switch {
	case runErr == nil:
		return s.finishJob(id, store.Done, "", &sink.summary)
	case s.ctx.Err() != nil && errors.Is(runErr, context.Canceled):
		// Drain, not failure: back to the queue so the next Start — this
		// process's or a successor's — resumes from the cache.
		return s.finishJob(id, store.Queued,
			fmt.Sprintf("resumable: interrupted by shutdown after %d/%d cells", sink.completed, sink.cells), nil)
	default:
		return s.finishJob(id, store.Failed, runErr.Error(), nil)
	}
}

// finishJob records a terminal (or re-queued) state plus the run summary and
// broadcasts it. The non-nil return is a store failure, which stops the
// scheduler.
func (s *Server) finishJob(id string, state store.State, errMsg string, sum *experiment.RunSummary) error {
	job, err := s.cfg.Store.UpdateJob(id, true, func(j *store.Job) {
		j.State = state
		j.Error = errMsg
		if sum != nil {
			j.Completed = sum.Cells
			j.CacheHits = sum.CacheHits
			j.Computed = sum.Computed
			j.Resumed = sum.Resumed
		}
	})
	if err != nil {
		return err
	}
	s.publishState(job)
	return nil
}

// publishState broadcasts the job record as an SSE "state" event.
func (s *Server) publishState(job store.Job) {
	if data, err := json.Marshal(job); err == nil {
		s.hub.publish(job.ID, event{name: "state", data: data})
	}
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// handleSubmit accepts a Matrix spec, validates it, and queues the job.
// Validation failures are 400s that name the offending JSON field — the
// point of Matrix.Validate — and unknown fields are rejected so a typoed
// axis name cannot silently select a default.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	var m experiment.Matrix
	if err := dec.Decode(&m); err != nil {
		httpError(w, http.StatusBadRequest, "decode matrix spec: "+err.Error())
		return
	}
	if err := m.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Expansion probes each backend against each size (typos, unreadable
	// trace files, size conflicts) — still the submitter's fault: 400.
	scenarios, err := m.Scenarios()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	spec, err := json.Marshal(m)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	job, err := s.cfg.Store.CreateJob(spec, len(scenarios))
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.notify()
	writeJSON(w, http.StatusCreated, job)
}

// handleJob returns one job's record: state, progress, summary counters.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.cfg.Store.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// handleResults streams the job's results as JSONL in index order: for each
// cell, the row persisted by the storeSink — exactly the bytes a CLI run
// with -out jsonl prints. A still-running job streams its completed prefix
// (the X-Sweep-State header says which case the client is in).
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	job, ok := s.cfg.Store.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	var m experiment.Matrix
	if err := json.Unmarshal(job.Spec, &m); err != nil {
		httpError(w, http.StatusInternalServerError, "stored spec: "+err.Error())
		return
	}
	scenarios, err := m.Scenarios()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	keys, err := experiment.ScenarioKeys(scenarios)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Sweep-State", string(job.State))
	w.WriteHeader(http.StatusOK)
	for _, key := range keys {
		row, ok := s.cfg.Store.Row(key)
		if !ok {
			// Rows land in index order, so the first gap is the frontier of
			// a job still running (or interrupted): the prefix IS the
			// deterministic stream so far.
			return
		}
		w.Write(row)
		w.Write([]byte{'\n'})
	}
}

// eventsPollInterval is the /events fallback cadence: progress events can be
// dropped for a slow subscriber, so the handler re-reads the job state on a
// timer to guarantee the terminal state is always delivered.
const eventsPollInterval = time.Second

// handleEvents streams a job's lifecycle as server-sent events: an initial
// "state" snapshot, "progress" per completed cell, and a final "state" when
// the job reaches a terminal state (which also ends the stream).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.cfg.Store.Job(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	writeEvent := func(ev event) {
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data)
		flusher.Flush()
	}
	terminal := func(j store.Job) bool {
		return j.State == store.Done || j.State == store.Failed
	}

	// Subscribe BEFORE the initial snapshot: anything published after the
	// snapshot is either in the queue or reflected by the poll.
	sub := s.hub.subscribe(id)
	defer s.hub.unsubscribe(id, sub)
	if data, err := json.Marshal(job); err == nil {
		writeEvent(event{name: "state", data: data})
	}
	if terminal(job) {
		return
	}
	ticker := time.NewTicker(eventsPollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-sub.ch:
			writeEvent(ev)
			if ev.name == "state" {
				if j, ok := s.cfg.Store.Job(id); ok && terminal(j) {
					return
				}
			}
		case <-ticker.C:
			// The drop-on-overflow hub can lose the terminal state event for
			// a slow subscriber; the poll makes delivery inevitable.
			j, ok := s.cfg.Store.Job(id)
			if !ok {
				return
			}
			if terminal(j) {
				if data, err := json.Marshal(j); err == nil {
					writeEvent(event{name: "state", data: data})
				}
				return
			}
		}
	}
}

// healthz is the GET /healthz body.
type healthz struct {
	Status    string              `json:"status"`
	Cache     cache.Stats         `json:"cache"`
	Jobs      map[store.State]int `json:"jobs"`
	StoreRows int                 `json:"storeRows"`
}

// handleHealthz reports liveness plus the cache and store footprint.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	stats, err := s.cache.Stats()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	h := healthz{Status: "ok", Cache: stats, Jobs: make(map[store.State]int), StoreRows: s.cfg.Store.RowCount()}
	for _, job := range s.cfg.Store.Jobs() {
		h.Jobs[job.State]++
	}
	writeJSON(w, http.StatusOK, h)
}
