// Package service is the sweep service's HTTP layer: a versioned job API
// (/v1) over the experiment Runner. POST /v1/jobs accepts a Matrix spec as
// JSON and queues it; the scheduler admits up to MaxActiveJobs jobs at once,
// and their Runners share one worker pool that interleaves cells across jobs
// under deficit round-robin (see scheduler.go) — a 1-cell job submitted
// behind a 10k-cell sweep finishes in seconds instead of hours. The Sink
// interface is the transport boundary: a storeSink persists every completed
// cell into the durable store and fans progress out to SSE subscribers.
// Results stream back as JSONL (GET /v1/jobs/{id}/results) in deterministic
// index order, byte-identical to what a CLI run of the same matrix prints —
// per-scenario derived seeds and index-ordered emission make the
// interleaving invisible. All jobs share one content-addressed result cache,
// so a matrix any job has computed before costs nothing to run again.
//
// Jobs can be canceled (DELETE /v1/jobs/{id}): a queued job dies instantly,
// a running one has its context canceled — in-flight cells finish, parked
// cells degenerate to skips — and lands in the terminal `canceled` state.
// The unversioned paths from the pre-v1 release remain as deprecated
// aliases for one release.
//
// Crash safety composes from the layers below: the store re-queues jobs
// that were running when the process died, and the Runner's cache prober
// resumes them computing only the cells the dead run never finished.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"iotmpc/internal/cache"
	"iotmpc/internal/experiment"
	"iotmpc/internal/store"
)

// Config wires a Server to its store, cache, and Runner knobs.
type Config struct {
	// Store is the durable job/result store. Required.
	Store *store.Store
	// CacheDir roots the content-addressed result cache every job shares —
	// the deduplicated corpus. Required.
	CacheDir string
	// Workers sizes the shared cell pool all active jobs draw from, and
	// TrialWorkers and Lanes configure each job's Runner exactly like the
	// CLI flags of the same names (zero selects the defaults).
	Workers      int
	TrialWorkers int
	Lanes        int
	// MaxActiveJobs caps how many jobs hold Runners at once. More active
	// jobs means fairer latency for short jobs but more memory held per
	// sweep; zero selects 4.
	MaxActiveJobs int
	// Coordinator switches job execution from the local Runner to
	// distributed dispatch: jobs are partitioned into shard assignments and
	// executed by worker sweepds that register over POST /v1/workers (see
	// dispatch.go). The store persists assignments, so a restarted
	// coordinator resumes dispatch without recomputing finished shards.
	Coordinator bool
	// LeaseTTL bounds how long a worker may go silent before its lease
	// expires and its shards are re-queued elsewhere; zero selects 15s.
	// LeaseScanEvery is the expiry-scan cadence; zero selects LeaseTTL/4.
	LeaseTTL       time.Duration
	LeaseScanEvery time.Duration
	// ShardBackoffBase and ShardBackoffMax shape the exponential backoff
	// between attempts of a repeatedly-failing shard (zero: 1s base, 30s
	// cap), and MaxShardAttempts caps grants per shard before the job fails
	// with a ShardError naming the shard (zero: 5).
	ShardBackoffBase time.Duration
	ShardBackoffMax  time.Duration
	MaxShardAttempts int
}

// maxSpecBytes bounds a POST /v1/jobs body; a matrix spec is a few hundred
// bytes of axis lists, so a megabyte is already generous.
const maxSpecBytes = 1 << 20

// defaultMaxActiveJobs is the MaxActiveJobs zero default.
const defaultMaxActiveJobs = 4

// activeJob is the scheduler's handle on a claimed job: the context its
// Runner runs under, and whether a client asked for cancellation (which
// disambiguates context.Canceled from a shutdown drain).
type activeJob struct {
	cancel   context.CancelFunc
	ctx      context.Context
	canceled bool // guarded by Server.jobMu
}

// Server is the sweep service: HTTP handlers plus the scheduler.
// Construct with New, serve Handler, call Start to begin executing jobs,
// and Close to drain (in-flight jobs are canceled and re-queued as
// resumable — the store must outlive the Close call).
type Server struct {
	cfg    Config
	cache  *cache.Store
	hub    *hub
	mux    *http.ServeMux
	pool   *pool
	disp   *dispatcher // non-nil exactly when cfg.Coordinator
	wake   chan struct{}
	slots  chan struct{}
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	jobMu   sync.Mutex
	running map[string]*activeJob
}

// New builds a Server over an open store: jobs left running by a crashed or
// drained predecessor are re-queued for resume, jobs predating the schema-2
// key lists get them backfilled (so GC can account for their rows), and
// everything queued is picked up once Start is called.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("service: nil store")
	}
	if cfg.CacheDir == "" {
		return nil, fmt.Errorf("service: empty cache directory (the shared result corpus is required)")
	}
	cacheStore, err := cache.Open(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	if cfg.MaxActiveJobs <= 0 {
		cfg.MaxActiveJobs = defaultMaxActiveJobs
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		cache:   cacheStore,
		hub:     newHub(),
		pool:    newPool(workers),
		wake:    make(chan struct{}, 1),
		slots:   make(chan struct{}, cfg.MaxActiveJobs),
		ctx:     ctx,
		cancel:  cancel,
		running: make(map[string]*activeJob),
	}
	if cfg.Coordinator {
		s.disp = newDispatcher(cfg)
	}
	for _, job := range cfg.Store.Jobs() {
		// Recovery: a job that was Running when the previous process stopped
		// never reached a terminal state. Its completed cells are in the
		// cache, so re-queuing it makes the next execution a resume that
		// computes only the missing cells.
		if job.State == store.Running {
			if _, err := cfg.Store.UpdateJob(job.ID, true, func(j *store.Job) {
				j.State = store.Queued
				j.Error = "resumable: interrupted by restart"
			}); err != nil {
				cancel()
				s.pool.close()
				return nil, err
			}
		}
		// Backfill: a job created before schema 2 has no recorded row keys,
		// which blocks GC from sweeping any rows (it cannot know what the
		// job references). The keys are a pure function of the stored spec,
		// so recompute them. Best-effort — a spec that no longer expands
		// just stays unrecorded and GC stays conservative.
		if _, ok := cfg.Store.JobKeys(job.ID); !ok {
			var m experiment.Matrix
			if json.Unmarshal(job.Spec, &m) != nil {
				continue
			}
			scenarios, err := m.Scenarios()
			if err != nil {
				continue
			}
			keys, err := experiment.ScenarioKeys(scenarios)
			if err != nil {
				continue
			}
			if err := cfg.Store.SetJobKeys(job.ID, keys); err != nil {
				cancel()
				s.pool.close()
				return nil, err
			}
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleResults)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	// The distributed-dispatch surface. Registered unconditionally so a
	// worker joining a non-coordinator gets a crisp 409 instead of a 404
	// indistinguishable from a typoed path.
	s.mux.HandleFunc("POST /v1/workers", s.handleWorkerRegister)
	s.mux.HandleFunc("POST /v1/workers/{id}/heartbeat", s.handleWorkerHeartbeat)
	s.mux.HandleFunc("POST /v1/workers/{id}/shards/{job}/{shard}/rows", s.handleShardRows)
	s.mux.HandleFunc("POST /v1/workers/{id}/shards/{job}/{shard}/done", s.handleShardDone)
	// The pre-v1 surface: thin aliases kept for one release so existing
	// scripts keep working. They answer with a Deprecation header pointing
	// at the v1 successor.
	legacy := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Deprecation", "true")
			w.Header().Set("Link", `</v1>; rel="successor-version"`)
			h(w, r)
		}
	}
	s.mux.HandleFunc("POST /jobs", legacy(s.handleSubmit))
	s.mux.HandleFunc("GET /jobs/{id}", legacy(s.handleJob))
	s.mux.HandleFunc("GET /jobs/{id}/results", legacy(s.handleResults))
	s.mux.HandleFunc("GET /jobs/{id}/events", legacy(s.handleEvents))
	s.mux.HandleFunc("GET /healthz", legacy(s.handleHealthz))
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Start launches the scheduler goroutine, plus the lease-expiry scan when
// running as a coordinator.
func (s *Server) Start() {
	s.wg.Add(1)
	go s.runLoop()
	if s.disp != nil {
		every := s.cfg.LeaseScanEvery
		if every <= 0 {
			every = s.disp.leaseTTL / 4
		}
		s.wg.Add(1)
		go s.scanLoop(every)
	}
}

// Close drains the service: every in-flight job's Runner context is canceled
// (in-flight cells finish, everything not yet dispatched is skipped), the
// jobs are re-queued as resumable, the scheduler exits, and the shared cell
// pool shuts down. The store stays open — closing it is the owner's job,
// after Close returns.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
	s.pool.close()
}

// notify nudges the scheduler; the buffered channel coalesces bursts.
func (s *Server) notify() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// runLoop is the job-admission half of the scheduler: it claims queued jobs
// oldest-first into the MaxActiveJobs slots and hands each to a goroutine
// that drives its Runner. Cell-level interleaving across the admitted jobs
// is the pool's job (scheduler.go). The slot is acquired BEFORE claiming so
// a job is never marked Running while it cannot actually start.
func (s *Server) runLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case s.slots <- struct{}{}:
		}
		id, ok := s.claimQueued()
		for !ok {
			select {
			case <-s.ctx.Done():
				<-s.slots
				return
			case <-s.wake:
			}
			id, ok = s.claimQueued()
		}
		s.wg.Add(1)
		go func(id string) {
			defer s.wg.Done()
			err := s.runJob(id)
			<-s.slots
			if err != nil {
				// A store write failure means no progress can be recorded
				// truthfully; executing more jobs would lie. Stop scheduling.
				s.cancel()
				return
			}
			s.notify()
		}(id)
	}
}

// claimQueued atomically picks the oldest queued job, marks it Running, and
// registers its cancelable context. jobMu makes the claim atomic with
// respect to DELETE: a job is never both canceled-as-queued and claimed.
func (s *Server) claimQueued() (string, bool) {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	for _, job := range s.cfg.Store.Jobs() {
		if job.State != store.Queued {
			continue
		}
		updated, err := s.cfg.Store.UpdateJob(job.ID, true, func(j *store.Job) {
			j.State = store.Running
			j.Error = ""
		})
		if err != nil {
			continue
		}
		jctx, cancel := context.WithCancel(s.ctx)
		s.running[job.ID] = &activeJob{ctx: jctx, cancel: cancel}
		s.publishState(updated)
		return job.ID, true
	}
	return "", false
}

// runJob executes one claimed job on the shared pool. The returned error is
// a STORE failure — job-level failures (bad spec, sweep error, cancellation)
// are recorded on the job itself and do not stop the scheduler.
func (s *Server) runJob(id string) error {
	s.jobMu.Lock()
	aj := s.running[id]
	s.jobMu.Unlock()
	if aj == nil {
		return fmt.Errorf("service: job %s not claimed", id)
	}
	defer aj.cancel()
	job, ok := s.cfg.Store.Job(id)
	if !ok {
		s.unclaim(id)
		return fmt.Errorf("service: claimed job %s vanished", id)
	}

	var m experiment.Matrix
	if err := json.Unmarshal(job.Spec, &m); err != nil {
		s.unclaim(id)
		return s.finishJob(id, store.Failed, fmt.Sprintf("decode stored spec: %v", err), nil)
	}
	if s.disp != nil {
		return s.runJobDispatch(id, aj, job, m)
	}
	sink := &storeSink{store: s.cfg.Store, hub: s.hub, jobID: id}
	queue := s.pool.admit(id)
	opts := []experiment.Option{
		experiment.WithWorkers(s.cfg.Workers),
		experiment.WithLanes(s.cfg.Lanes),
		experiment.WithCache(s.cfg.CacheDir),
		experiment.WithContext(aj.ctx),
		experiment.WithExecutor(queue),
		experiment.WithSinks(sink),
	}
	if s.cfg.TrialWorkers > 0 {
		opts = append(opts, experiment.WithTrialWorkers(s.cfg.TrialWorkers))
	}
	_, runErr := experiment.NewRunner(opts...).Run(m)
	s.pool.release(queue)
	canceled := s.unclaim(id)
	switch {
	case runErr == nil:
		return s.finishJob(id, store.Done, "", &sink.summary)
	case canceled && errors.Is(runErr, context.Canceled):
		return s.finishJob(id, store.Canceled,
			fmt.Sprintf("canceled by client after %d/%d cells", sink.completed, sink.cells), nil)
	case s.ctx.Err() != nil && errors.Is(runErr, context.Canceled):
		// Drain, not failure: back to the queue so the next Start — this
		// process's or a successor's — resumes from the cache.
		return s.finishJob(id, store.Queued,
			fmt.Sprintf("resumable: interrupted by shutdown after %d/%d cells", sink.completed, sink.cells), nil)
	default:
		return s.finishJob(id, store.Failed, runErr.Error(), nil)
	}
}

// unclaim drops the job's scheduler handle and reports whether a client
// requested cancellation while it ran.
func (s *Server) unclaim(id string) bool {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	aj := s.running[id]
	delete(s.running, id)
	return aj != nil && aj.canceled
}

// finishJob records a terminal (or re-queued) state plus the run summary and
// broadcasts it. The non-nil return is a store failure, which stops the
// scheduler.
func (s *Server) finishJob(id string, state store.State, errMsg string, sum *experiment.RunSummary) error {
	job, err := s.cfg.Store.UpdateJob(id, true, func(j *store.Job) {
		j.State = state
		j.Error = errMsg
		if sum != nil {
			j.Completed = sum.Cells
			j.CacheHits = sum.CacheHits
			j.Computed = sum.Computed
			j.Resumed = sum.Resumed
		}
	})
	if err != nil {
		return err
	}
	s.publishState(job)
	return nil
}

// publishState broadcasts the job record as an SSE "state" event.
func (s *Server) publishState(job store.Job) {
	if data, err := json.Marshal(job); err == nil {
		s.hub.publish(job.ID, event{name: "state", data: data})
	}
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// handleSubmit accepts a Matrix spec, validates it, and queues the job.
// Validation failures are invalid_argument envelopes naming the offending
// JSON field — the point of Matrix.Validate — and unknown fields are
// rejected so a typoed axis name cannot silently select a default. The
// job's row keys are recorded at submission, which is what lets GC sweep
// rows once the last referencing job is pruned.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	var m experiment.Matrix
	if err := dec.Decode(&m); err != nil {
		httpError(w, http.StatusBadRequest, codeInvalidArgument, decodeField(err),
			"decode matrix spec: "+err.Error())
		return
	}
	if err := m.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, codeInvalidArgument, specField(err), err.Error())
		return
	}
	// Expansion probes each backend against each size (typos, unreadable
	// trace files, size conflicts) — still the submitter's fault: 400.
	scenarios, err := m.Scenarios()
	if err != nil {
		httpError(w, http.StatusBadRequest, codeInvalidArgument, specField(err), err.Error())
		return
	}
	keys, err := experiment.ScenarioKeys(scenarios)
	if err != nil {
		httpError(w, http.StatusInternalServerError, codeInternal, "", err.Error())
		return
	}
	spec, err := json.Marshal(m)
	if err != nil {
		httpError(w, http.StatusInternalServerError, codeInternal, "", err.Error())
		return
	}
	job, err := s.cfg.Store.CreateJob(spec, len(scenarios))
	if err != nil {
		httpError(w, http.StatusInternalServerError, codeInternal, "", err.Error())
		return
	}
	if err := s.cfg.Store.SetJobKeys(job.ID, keys); err != nil {
		httpError(w, http.StatusInternalServerError, codeInternal, "", err.Error())
		return
	}
	s.notify()
	writeJSON(w, http.StatusCreated, job)
}

// handleJob returns one job's record: state, progress, summary counters.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.cfg.Store.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, codeNotFound, "", "no such job")
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// handleCancel is DELETE /v1/jobs/{id}: a queued job is canceled on the
// spot (200 with the terminal record); a running job has its Runner context
// canceled and the response is 202 — the record still says running until
// in-flight cells drain, so clients poll or watch /events for the terminal
// state. Canceling an already-canceled job is idempotent; canceling a done
// or failed job is a conflict.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	job, ok := s.cfg.Store.Job(id)
	if !ok {
		httpError(w, http.StatusNotFound, codeNotFound, "", "no such job")
		return
	}
	switch job.State {
	case store.Queued:
		updated, err := s.cfg.Store.UpdateJob(id, true, func(j *store.Job) {
			j.State = store.Canceled
			j.Error = "canceled by client before start"
		})
		if err != nil {
			httpError(w, http.StatusInternalServerError, codeInternal, "", err.Error())
			return
		}
		s.publishState(updated)
		writeJSON(w, http.StatusOK, updated)
	case store.Running:
		if aj, ok := s.running[id]; ok {
			aj.canceled = true
			aj.cancel()
		}
		writeJSON(w, http.StatusAccepted, job)
	case store.Canceled:
		writeJSON(w, http.StatusOK, job)
	default:
		httpError(w, http.StatusConflict, codeConflict, "",
			fmt.Sprintf("job %s already %s", id, job.State))
	}
}

// listLimitDefault and listLimitMax bound GET /v1/jobs pages.
const (
	listLimitDefault = 100
	listLimitMax     = 1000
)

// jobPage is the GET /v1/jobs body: one page of jobs in ID (creation)
// order. nextAfter is present exactly when the page was truncated — pass it
// back as ?after= to continue.
type jobPage struct {
	Jobs      []store.Job `json:"jobs"`
	NextAfter string      `json:"nextAfter,omitempty"`
}

// handleList is GET /v1/jobs?state=...&limit=...&after=...: the job list
// filtered by state, paginated by ID.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var filter store.State
	if v := q.Get("state"); v != "" {
		filter = store.State(v)
		switch filter {
		case store.Queued, store.Running, store.Done, store.Failed, store.Canceled:
		default:
			httpError(w, http.StatusBadRequest, codeInvalidArgument, "state",
				fmt.Sprintf("unknown state %q", v))
			return
		}
	}
	limit := listLimitDefault
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, codeInvalidArgument, "limit",
				fmt.Sprintf("limit %q: need a positive integer", v))
			return
		}
		if n > listLimitMax {
			n = listLimitMax
		}
		limit = n
	}
	after := q.Get("after")
	page := jobPage{Jobs: []store.Job{}}
	for _, job := range s.cfg.Store.Jobs() { // sorted by ID = creation order
		if after != "" && job.ID <= after {
			continue
		}
		if filter != "" && job.State != filter {
			continue
		}
		if len(page.Jobs) == limit {
			page.NextAfter = page.Jobs[limit-1].ID
			break
		}
		page.Jobs = append(page.Jobs, job)
	}
	writeJSON(w, http.StatusOK, page)
}

// handleResults streams the job's results as JSONL in index order: for each
// cell, the row persisted by the storeSink — exactly the bytes a CLI run
// with -out jsonl prints. A still-running job streams its completed prefix
// (the X-Sweep-State header says which case the client is in).
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	job, ok := s.cfg.Store.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, codeNotFound, "", "no such job")
		return
	}
	var m experiment.Matrix
	if err := json.Unmarshal(job.Spec, &m); err != nil {
		httpError(w, http.StatusInternalServerError, codeInternal, "", "stored spec: "+err.Error())
		return
	}
	scenarios, err := m.Scenarios()
	if err != nil {
		httpError(w, http.StatusInternalServerError, codeInternal, "", err.Error())
		return
	}
	keys, err := experiment.ScenarioKeys(scenarios)
	if err != nil {
		httpError(w, http.StatusInternalServerError, codeInternal, "", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Sweep-State", string(job.State))
	w.WriteHeader(http.StatusOK)
	for _, key := range keys {
		row, ok := s.cfg.Store.Row(key)
		if !ok {
			// Rows land in index order, so the first gap is the frontier of
			// a job still running (or interrupted): the prefix IS the
			// deterministic stream so far.
			return
		}
		w.Write(row)
		w.Write([]byte{'\n'})
	}
}

// eventsPollInterval is the /events fallback cadence: progress events can be
// dropped for a slow subscriber, so the handler re-reads the job state on a
// timer to guarantee the terminal state is always delivered.
const eventsPollInterval = time.Second

// handleEvents streams a job's lifecycle as server-sent events: an initial
// "state" snapshot, "progress" per completed cell, and a final "state" when
// the job reaches a terminal state — done, failed, or canceled — which also
// ends the stream. Hub-published events carry "id:" lines; a reconnecting
// client that sends the standard Last-Event-ID header gets the events it
// missed replayed from the hub's ring instead of silently losing them, or —
// when the gap outran the ring — a fresh state snapshot to resynchronize.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.cfg.Store.Job(id)
	if !ok {
		httpError(w, http.StatusNotFound, codeNotFound, "", "no such job")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, codeInternal, "", "streaming unsupported")
		return
	}
	var lastID uint64
	resuming := false
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			lastID, resuming = n, true
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	sent := lastID // highest hub id delivered; dedups replay vs. live queue
	writeEvent := func(ev event) {
		if ev.id > 0 {
			if ev.id <= sent {
				return
			}
			sent = ev.id
			fmt.Fprintf(w, "id: %d\n", ev.id)
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data)
		flusher.Flush()
	}
	snapshot := func(j store.Job) {
		if data, err := json.Marshal(j); err == nil {
			writeEvent(event{name: "state", data: data})
		}
	}

	// Subscribe BEFORE the snapshot/replay: anything published afterwards
	// is either in the queue or reflected by the poll, and the `sent`
	// cursor drops whatever both paths deliver.
	sub := s.hub.subscribe(id)
	defer s.hub.unsubscribe(id, sub)
	if resuming {
		missed, gap := s.hub.replay(id, lastID)
		if gap {
			// Continuity lost (ring outrun, or a coordinator restart reset
			// the sequence): resynchronize with the current state.
			snapshot(job)
		}
		for _, ev := range missed {
			writeEvent(ev)
		}
		if j, ok := s.cfg.Store.Job(id); ok && j.State.Terminal() {
			// The replayed tail may predate the terminal transition; an
			// unconditional snapshot makes its delivery certain (a duplicate
			// state event is an idempotent re-read for the client).
			snapshot(j)
			return
		}
	} else {
		snapshot(job)
		if job.State.Terminal() {
			return
		}
	}
	ticker := time.NewTicker(eventsPollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-sub.ch:
			writeEvent(ev)
			if ev.name == "state" {
				if j, ok := s.cfg.Store.Job(id); ok && j.State.Terminal() {
					return
				}
			}
		case <-ticker.C:
			// The drop-on-overflow hub can lose the terminal state event for
			// a slow subscriber; the poll makes delivery inevitable.
			j, ok := s.cfg.Store.Job(id)
			if !ok {
				return
			}
			if j.State.Terminal() {
				snapshot(j)
				return
			}
		}
	}
}

// healthz is the GET /v1/healthz body. QueuedDepth and ActiveJobs give the
// scheduler's backlog at a glance; Workers (coordinator only) lists every
// live registration with its remaining lease and held shards, so a
// deployment that has lost its workers is visible before jobs start timing
// out — that condition also flips Status to "degraded".
type healthz struct {
	Status      string              `json:"status"`
	Cache       cache.Stats         `json:"cache"`
	Jobs        map[store.State]int `json:"jobs"`
	StoreRows   int                 `json:"storeRows"`
	QueuedDepth int                 `json:"queuedDepth"`
	ActiveJobs  int                 `json:"activeJobs"`
	Workers     []workerHealth      `json:"workers,omitempty"`
	Coordinator bool                `json:"coordinator,omitempty"`
}

// handleHealthz reports liveness plus the cache, store, scheduler, and —
// on a coordinator — worker-registry footprint.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	stats, err := s.cache.Stats()
	if err != nil {
		httpError(w, http.StatusInternalServerError, codeInternal, "", err.Error())
		return
	}
	h := healthz{Status: "ok", Cache: stats, Jobs: make(map[store.State]int), StoreRows: s.cfg.Store.RowCount()}
	for _, job := range s.cfg.Store.Jobs() {
		h.Jobs[job.State]++
	}
	h.QueuedDepth = h.Jobs[store.Queued]
	h.ActiveJobs = h.Jobs[store.Running]
	if s.disp != nil {
		h.Coordinator = true
		workers, dispatching := s.disp.health()
		h.Workers = workers
		if dispatching > 0 && len(workers) == 0 {
			// Jobs are waiting on workers that do not exist: alive, but not
			// making progress.
			h.Status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, h)
}
