package service

import "sync"

// event is one server-sent event: a name ("progress" or "state"), a
// pre-encoded JSON data payload, and the per-job sequence number the hub
// stamps at publish. id 0 marks events generated outside the hub (the
// handler's initial snapshot and poll fallback), which carry no "id:" line
// and do not advance a client's Last-Event-ID.
type event struct {
	name string
	data []byte
	id   uint64
}

// subscriber is one /events connection's queue. The buffer absorbs bursts;
// publish never blocks on a slow reader (see hub.publish).
type subscriber struct {
	ch chan event
}

// subscriberBuffer bounds each subscriber's queue. A manifest-hit job can
// emit its whole matrix in one scheduling quantum, far faster than a TCP
// peer drains — overflow drops progress events for that subscriber rather
// than stalling the sweep (the handler's state poll guarantees the terminal
// state is still observed, and the replay ring lets a reconnecting client
// recover what it missed).
const subscriberBuffer = 64

// replayRing bounds how many published events each job retains for
// Last-Event-ID replay. A reconnect within the last replayRing events
// resumes exactly; older gaps degrade to a fresh state snapshot.
const replayRing = 256

// maxStreams bounds how many jobs' rings the hub retains; beyond it the
// oldest subscriber-less stream is evicted (its future reconnects see a
// gap, which the handler heals with a snapshot).
const maxStreams = 256

// jobStream is one job's fan-out state: live subscribers, the publish
// sequence, and the replay ring.
type jobStream struct {
	subs map[*subscriber]struct{}
	seq  uint64
	ring []event
}

// hub fans job progress out to SSE subscribers and retains a bounded replay
// ring per job. Publishing is fire-and-forget from the scheduler's sink;
// subscribing and unsubscribing happen on handler goroutines as clients
// come and go.
type hub struct {
	mu    sync.Mutex
	jobs  map[string]*jobStream
	order []string // stream creation order, for eviction
}

func newHub() *hub {
	return &hub{jobs: make(map[string]*jobStream)}
}

// stream returns jobID's stream, creating (and evicting, at the cap) as
// needed. Caller holds h.mu.
func (h *hub) stream(jobID string) *jobStream {
	js := h.jobs[jobID]
	if js != nil {
		return js
	}
	js = &jobStream{subs: make(map[*subscriber]struct{})}
	h.jobs[jobID] = js
	h.order = append(h.order, jobID)
	for len(h.order) > maxStreams {
		victim := -1
		for i, id := range h.order {
			if len(h.jobs[id].subs) == 0 {
				victim = i
				break
			}
		}
		if victim < 0 {
			// Every retained stream has a live subscriber — exceed the cap
			// rather than orphan one.
			break
		}
		delete(h.jobs, h.order[victim])
		h.order = append(h.order[:victim], h.order[victim+1:]...)
	}
	return js
}

// subscribe registers a new listener for jobID's events.
func (h *hub) subscribe(jobID string) *subscriber {
	sub := &subscriber{ch: make(chan event, subscriberBuffer)}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.stream(jobID).subs[sub] = struct{}{}
	return sub
}

// unsubscribe removes a listener; safe to call once per subscriber. The
// stream itself is retained — its ring is what a reconnect replays.
func (h *hub) unsubscribe(jobID string, sub *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if js := h.jobs[jobID]; js != nil {
		delete(js.subs, sub)
	}
}

// publish stamps ev with the job's next sequence number, records it in the
// replay ring, and delivers it to every current subscriber — dropping it
// for subscribers whose buffer is full: progress events are advisory, and a
// stalled client must never backpressure the sweep.
func (h *hub) publish(jobID string, ev event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	js := h.stream(jobID)
	js.seq++
	ev.id = js.seq
	js.ring = append(js.ring, ev)
	if len(js.ring) > replayRing {
		js.ring = js.ring[len(js.ring)-replayRing:]
	}
	for sub := range js.subs {
		select {
		case sub.ch <- ev:
		default:
		}
	}
}

// replay returns the events published after lastID that the ring still
// holds. gap=true means continuity cannot be proven — events beyond the
// ring were lost, the stream was evicted, or lastID comes from a previous
// process — and the caller should resynchronize the client with a fresh
// state snapshot before replaying.
func (h *hub) replay(jobID string, lastID uint64) (missed []event, gap bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	js := h.jobs[jobID]
	if js == nil {
		return nil, true
	}
	if lastID > js.seq {
		return nil, true
	}
	for _, ev := range js.ring {
		if ev.id > lastID {
			missed = append(missed, ev)
		}
	}
	switch {
	case len(js.ring) == 0:
		gap = js.seq > lastID
	default:
		gap = js.ring[0].id > lastID+1
	}
	return missed, gap
}
