package service

import "sync"

// event is one server-sent event: a name ("progress" or "state") and a
// pre-encoded JSON data payload.
type event struct {
	name string
	data []byte
}

// subscriber is one /events connection's queue. The buffer absorbs bursts;
// publish never blocks on a slow reader (see hub.publish).
type subscriber struct {
	ch chan event
}

// subscriberBuffer bounds each subscriber's queue. A manifest-hit job can
// emit its whole matrix in one scheduling quantum, far faster than a TCP
// peer drains — overflow drops progress events for that subscriber rather
// than stalling the sweep (the handler's state poll guarantees the terminal
// state is still observed).
const subscriberBuffer = 64

// hub fans job progress out to SSE subscribers. Publishing is fire-and-
// forget from the scheduler's sink; subscribing and unsubscribing happen on
// handler goroutines as clients come and go.
type hub struct {
	mu   sync.Mutex
	subs map[string]map[*subscriber]struct{}
}

func newHub() *hub {
	return &hub{subs: make(map[string]map[*subscriber]struct{})}
}

// subscribe registers a new listener for jobID's events.
func (h *hub) subscribe(jobID string) *subscriber {
	sub := &subscriber{ch: make(chan event, subscriberBuffer)}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.subs[jobID] == nil {
		h.subs[jobID] = make(map[*subscriber]struct{})
	}
	h.subs[jobID][sub] = struct{}{}
	return sub
}

// unsubscribe removes a listener; safe to call once per subscriber.
func (h *hub) unsubscribe(jobID string, sub *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if set := h.subs[jobID]; set != nil {
		delete(set, sub)
		if len(set) == 0 {
			delete(h.subs, jobID)
		}
	}
}

// publish delivers ev to every current subscriber of jobID, dropping it for
// subscribers whose buffer is full: progress events are advisory, and a
// stalled client must never backpressure the sweep.
func (h *hub) publish(jobID string, ev event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for sub := range h.subs[jobID] {
		select {
		case sub.ch <- ev:
		default:
		}
	}
}
