package service

import (
	"bytes"
	"context"
	"testing"
	"time"
)

func TestParseChaos(t *testing.T) {
	c, err := ParseChaos("hbdrop=0.5,delay=200ms,crash=0.02", 7)
	if err != nil {
		t.Fatal(err)
	}
	if c.HeartbeatDrop != 0.5 || c.Delay != 200*time.Millisecond || c.CrashRate != 0.02 {
		t.Fatalf("parsed %+v", c)
	}
	if c, err := ParseChaos("", 1); err != nil || c.HeartbeatDrop != 0 || c.CrashRate != 0 || c.Delay != 0 {
		t.Fatalf("empty spec: %+v %v", c, err)
	}
	for _, bad := range []string{"hbdrop=2", "crash=-1", "delay=fast", "explode=0.5", "hbdrop"} {
		if _, err := ParseChaos(bad, 1); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestChaosScheduleIsSeeded: the same seed draws the same injection
// schedule — what makes a chaos failure reproducible.
func TestChaosScheduleIsSeeded(t *testing.T) {
	draw := func(seed int64) []bool {
		c, _ := ParseChaos("hbdrop=0.5", seed)
		out := make([]bool, 32)
		for i := range out {
			out[i] = c.dropHeartbeat()
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

// TestChaosHeartbeatDropsStillComplete: a worker dropping half its
// heartbeats keeps its lease (the surviving heartbeats renew in time) and
// the job completes byte-identically — graceful degradation, not failure.
func TestChaosHeartbeatDropsStillComplete(t *testing.T) {
	f := newCoordFixture(t, t.TempDir(), t.TempDir(), nil)
	chaos, err := ParseChaos("hbdrop=0.5", 7)
	if err != nil {
		t.Fatal(err)
	}
	startWorker(t, f, "flaky", t.TempDir(), chaos)
	m := testMatrix()
	done := f.waitDone(t, f.submit(t, m).ID)
	if done.Completed != 4 {
		t.Fatalf("completed %d of 4: %+v", done.Completed, done)
	}
	if got, want := f.results(t, done.ID), localJSONL(t, m); !bytes.Equal(got, want) {
		t.Fatal("results under heartbeat drops differ from solo run")
	}
}

// TestChaosCrashMidShard: a worker configured to die after its first
// completed cell (crash=1) takes a shard down with it; the lease expires
// and a healthy worker sharing the cache finishes the job, resuming the
// dead worker's completed cells instead of recomputing them.
func TestChaosCrashMidShard(t *testing.T) {
	f := newCoordFixture(t, t.TempDir(), t.TempDir(), nil)
	shared := t.TempDir()

	// The crash hook normally calls os.Exit(137); in-process it kills the
	// worker's context, which stops heartbeats and executions alike.
	ctx, kill := context.WithCancel(context.Background())
	chaos, err := ParseChaos("crash=1", 7)
	if err != nil {
		t.Fatal(err)
	}
	chaos.crash = kill
	w, err := NewWorker(WorkerConfig{
		Coordinator:    f.ts.URL,
		Name:           "doomed",
		CacheDir:       shared,
		HeartbeatEvery: 20 * time.Millisecond,
		Chaos:          chaos,
	})
	if err != nil {
		t.Fatal(err)
	}
	crashed := make(chan struct{})
	go func() {
		defer close(crashed)
		w.Run(ctx)
	}()
	t.Cleanup(func() { kill(); <-crashed })

	m := testMatrix()
	job := f.submit(t, m)
	// Let the doomed worker take the whole matrix (it is the only worker,
	// so the job dispatches as one shard) and die mid-shard.
	<-crashed

	// A healthy worker on the SAME cache inherits the shard and resumes.
	startWorker(t, f, "healthy", shared, nil)
	done := f.waitDone(t, job.ID)
	if done.Completed != 4 {
		t.Fatalf("completed %d of 4: %+v", done.Completed, done)
	}
	// The doomed worker computed at least its first cell before dying; the
	// heir must inherit it from the shared cache, not recompute it.
	if done.Resumed+done.CacheHits < 1 {
		t.Fatalf("crashed worker's cells recomputed: %+v", done)
	}
	if got, want := f.results(t, job.ID), localJSONL(t, m); !bytes.Equal(got, want) {
		t.Fatal("results after mid-shard crash differ from solo run")
	}
}
