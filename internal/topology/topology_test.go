package topology

import (
	"errors"
	"testing"

	"iotmpc/internal/phy"
)

func TestFlockLabShape(t *testing.T) {
	fl := FlockLab()
	if fl.NumNodes() != 26 {
		t.Fatalf("FlockLab has %d nodes, want 26", fl.NumNodes())
	}
	ch, err := fl.Channel(phy.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	diam, connected, err := ch.Diameter(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if !connected {
		t.Fatal("FlockLab model disconnected at PRR 0.8")
	}
	if diam < 3 || diam > 6 {
		t.Errorf("FlockLab diameter = %d, want 3..6 (multi-hop office scale)", diam)
	}
}

func TestDCubeShape(t *testing.T) {
	dc := DCube()
	if dc.NumNodes() != 45 {
		t.Fatalf("DCube has %d nodes, want 45", dc.NumNodes())
	}
	ch, err := dc.Channel(phy.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	diam, connected, err := ch.Diameter(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if !connected {
		t.Fatal("DCube model disconnected at PRR 0.8")
	}
	if diam < 4 || diam > 9 {
		t.Errorf("DCube diameter = %d, want 4..9 (deeper than FlockLab)", diam)
	}
}

func TestDCubeDeeperThanFlockLab(t *testing.T) {
	p := phy.DefaultParams()
	flCh, err := FlockLab().Channel(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	dcCh, err := DCube().Channel(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	flDiam, _, err := flCh.Diameter(0.8)
	if err != nil {
		t.Fatal(err)
	}
	dcDiam, _, err := dcCh.Diameter(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if dcDiam <= flDiam {
		t.Errorf("DCube diameter %d <= FlockLab %d; want deeper network", dcDiam, flDiam)
	}
}

func TestLine(t *testing.T) {
	l, err := Line(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumNodes() != 5 {
		t.Fatalf("nodes = %d", l.NumNodes())
	}
	if l.Positions[4].X != 40 {
		t.Errorf("last position X = %f, want 40", l.Positions[4].X)
	}
	if _, err := Line(0, 10); !errors.Is(err, ErrBadSize) {
		t.Errorf("Line(0): %v, want ErrBadSize", err)
	}
	if _, err := Line(5, -1); !errors.Is(err, ErrBadSize) {
		t.Errorf("Line(-spacing): %v, want ErrBadSize", err)
	}
}

func TestGrid(t *testing.T) {
	g, err := Grid(3, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 12 {
		t.Fatalf("nodes = %d, want 12", g.NumNodes())
	}
	if g.Positions[11] != (phy.Position{X: 30, Y: 20}) {
		t.Errorf("corner = %+v", g.Positions[11])
	}
	if _, err := Grid(0, 1, 1); !errors.Is(err, ErrBadSize) {
		t.Errorf("Grid(0): %v, want ErrBadSize", err)
	}
}

func TestRandomGeometricDeterministic(t *testing.T) {
	a, err := RandomGeometric(10, 100, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomGeometric(10, 100, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Positions {
		if a.Positions[i] != b.Positions[i] {
			t.Fatal("same seed produced different layouts")
		}
	}
	c, err := RandomGeometric(10, 100, 100, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Positions {
		if a.Positions[i] != c.Positions[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical layouts")
	}
	if _, err := RandomGeometric(0, 1, 1, 1); !errors.Is(err, ErrBadSize) {
		t.Errorf("n=0: %v, want ErrBadSize", err)
	}
}

func TestRandomGeometricInBounds(t *testing.T) {
	top, err := RandomGeometric(50, 80, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range top.Positions {
		if p.X < 0 || p.X > 80 || p.Y < 0 || p.Y > 40 {
			t.Errorf("node %d out of bounds: %+v", i, p)
		}
	}
}

func TestSubset(t *testing.T) {
	fl := FlockLab()
	sub, err := fl.Subset(10)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumNodes() != 10 {
		t.Fatalf("subset nodes = %d", sub.NumNodes())
	}
	// Mutating the subset must not affect the original.
	sub.Positions[0] = phy.Position{X: -1}
	if fl.Positions[0].X == -1 {
		t.Error("Subset aliases parent positions")
	}
	if _, err := fl.Subset(0); !errors.Is(err, ErrBadSize) {
		t.Errorf("Subset(0): %v, want ErrBadSize", err)
	}
	if _, err := fl.Subset(27); !errors.Is(err, ErrBadSize) {
		t.Errorf("Subset(27): %v, want ErrBadSize", err)
	}
}

func TestChannelError(t *testing.T) {
	bad := phy.DefaultParams()
	bad.BitrateBps = 0
	if _, err := FlockLab().Channel(bad, 1); err == nil {
		t.Error("want error for invalid params")
	}
}
