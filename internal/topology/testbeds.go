package topology

import "iotmpc/internal/phy"

// The two public testbeds the paper runs on. Exact node coordinates are not
// published, so the layouts below are synthetic reconstructions that match
// the properties that matter to CT protocols: node count, indoor office
// scale, and multi-hop depth (FlockLab floods complete in a few hops; D-Cube
// is larger and deeper). See DESIGN.md "substitutions".

// FlockLab returns the 26-node model of the FlockLab 2 testbed
// (ETH Zürich office building, nRF52840 targets). The layout spans two
// office wings and yields a network diameter of ~4 hops under the default
// PHY parameters.
func FlockLab() Topology {
	return Topology{
		Name: "flocklab",
		Positions: []phy.Position{
			// Wing A, room cluster around the initiator (node 0).
			{X: 0, Y: 0},
			{X: 28, Y: 6},
			{X: 12, Y: 24},
			{X: 35, Y: 30},
			{X: 5, Y: 45},
			{X: 42, Y: 12},
			{X: 55, Y: 35},
			{X: 30, Y: 52},
			{X: 60, Y: 8},
			// Corridor between wings.
			{X: 75, Y: 28},
			{X: 68, Y: 50},
			{X: 88, Y: 12},
			{X: 95, Y: 40},
			// Wing B.
			{X: 110, Y: 20},
			{X: 105, Y: 52},
			{X: 122, Y: 38},
			{X: 130, Y: 8},
			{X: 138, Y: 30},
			{X: 118, Y: 60},
			{X: 145, Y: 50},
			{X: 152, Y: 18},
			{X: 160, Y: 38},
			{X: 148, Y: 64},
			{X: 170, Y: 26},
			{X: 175, Y: 52},
			{X: 185, Y: 40},
		},
	}
}

// DCube returns the 45-node model of the TU Graz D-Cube testbed
// (nRF52840 boards across several office rooms/floors). The layout is larger
// and deeper than FlockLab, with a diameter of ~6 hops under the default PHY
// parameters.
func DCube() Topology {
	return Topology{
		Name: "dcube",
		Positions: []phy.Position{
			// Room cluster 1 (initiator).
			{X: 0, Y: 0},
			{X: 22, Y: 10},
			{X: 8, Y: 28},
			{X: 30, Y: 34},
			{X: 45, Y: 5},
			{X: 38, Y: 52},
			{X: 15, Y: 50},
			// Room cluster 2.
			{X: 62, Y: 22},
			{X: 58, Y: 48},
			{X: 78, Y: 8},
			{X: 82, Y: 38},
			{X: 70, Y: 62},
			{X: 95, Y: 20},
			{X: 92, Y: 55},
			// Corridor.
			{X: 110, Y: 35},
			{X: 105, Y: 8},
			{X: 118, Y: 62},
			{X: 128, Y: 18},
			{X: 125, Y: 45},
			// Room cluster 3.
			{X: 142, Y: 30},
			{X: 140, Y: 60},
			{X: 155, Y: 10},
			{X: 158, Y: 42},
			{X: 150, Y: 72},
			{X: 172, Y: 25},
			{X: 168, Y: 55},
			{X: 185, Y: 38},
			// Room cluster 4.
			{X: 192, Y: 10},
			{X: 198, Y: 55},
			{X: 205, Y: 28},
			{X: 212, Y: 68},
			{X: 220, Y: 15},
			{X: 218, Y: 45},
			{X: 232, Y: 32},
			{X: 228, Y: 62},
			// Room cluster 5 (far end).
			{X: 245, Y: 20},
			{X: 248, Y: 48},
			{X: 260, Y: 10},
			{X: 262, Y: 38},
			{X: 255, Y: 68},
			{X: 275, Y: 25},
			{X: 272, Y: 55},
			{X: 288, Y: 40},
			{X: 292, Y: 14},
			{X: 300, Y: 30},
		},
	}
}
