// Package topology provides node layouts for the simulated testbeds the
// paper evaluates on (FlockLab with 26 nodes, D-Cube with 45 nodes) plus
// generic generators (line, grid, random geometric) used by tests and
// ablations. A Topology is pure geometry; radio semantics come from
// internal/phy.Channel built on top of it.
package topology

import (
	"errors"
	"fmt"
	"math/rand"

	"iotmpc/internal/phy"
)

// Errors returned by the package.
var (
	// ErrBadSize is returned for non-positive node counts or dimensions.
	ErrBadSize = errors.New("topology: invalid size")
)

// Topology is a named set of node positions. The node at index 0 is the
// conventional initiator/sink of CT floods (FlockLab and D-Cube experiments
// likewise fix an initiator).
type Topology struct {
	// Name identifies the layout in reports and benchmarks.
	Name string
	// Positions holds one entry per node, in meters.
	Positions []phy.Position
}

// NumNodes returns the node count.
func (t Topology) NumNodes() int { return len(t.Positions) }

// Channel builds the radio environment for the layout.
func (t Topology) Channel(params phy.Params, seed int64) (*phy.Channel, error) {
	ch, err := phy.NewChannel(params, t.Positions, seed)
	if err != nil {
		return nil, fmt.Errorf("topology %q: %w", t.Name, err)
	}
	return ch, nil
}

// Line places n nodes on a line with the given spacing; the classic
// worst-case multi-hop chain.
func Line(n int, spacing float64) (Topology, error) {
	if n <= 0 || spacing <= 0 {
		return Topology{}, fmt.Errorf("%w: n=%d spacing=%f", ErrBadSize, n, spacing)
	}
	pos := make([]phy.Position, n)
	for i := range pos {
		pos[i] = phy.Position{X: float64(i) * spacing}
	}
	return Topology{Name: fmt.Sprintf("line-%d", n), Positions: pos}, nil
}

// Grid places nodes on a rows×cols lattice.
func Grid(rows, cols int, spacing float64) (Topology, error) {
	if rows <= 0 || cols <= 0 || spacing <= 0 {
		return Topology{}, fmt.Errorf("%w: %dx%d spacing=%f", ErrBadSize, rows, cols, spacing)
	}
	pos := make([]phy.Position, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pos = append(pos, phy.Position{X: float64(c) * spacing, Y: float64(r) * spacing})
		}
	}
	return Topology{Name: fmt.Sprintf("grid-%dx%d", rows, cols), Positions: pos}, nil
}

// RandomGeometric scatters n nodes uniformly over a w×h rectangle using a
// seeded RNG; used for property tests over many layouts.
func RandomGeometric(n int, w, h float64, seed int64) (Topology, error) {
	if n <= 0 || w <= 0 || h <= 0 {
		return Topology{}, fmt.Errorf("%w: n=%d area=%fx%f", ErrBadSize, n, w, h)
	}
	rng := rand.New(rand.NewSource(seed))
	pos := make([]phy.Position, n)
	for i := range pos {
		pos[i] = phy.Position{X: rng.Float64() * w, Y: rng.Float64() * h}
	}
	return Topology{Name: fmt.Sprintf("rgg-%d", n), Positions: pos}, nil
}

// Subset restricts a topology to the first n nodes. The experiments sweep
// the number of participating nodes this way, mirroring how the paper varies
// the number of source nodes within a fixed testbed.
func (t Topology) Subset(n int) (Topology, error) {
	if n <= 0 || n > len(t.Positions) {
		return Topology{}, fmt.Errorf("%w: subset %d of %d", ErrBadSize, n, len(t.Positions))
	}
	pos := make([]phy.Position, n)
	copy(pos, t.Positions[:n])
	return Topology{Name: fmt.Sprintf("%s[:%d]", t.Name, n), Positions: pos}, nil
}
