package topology

import (
	"testing"

	"iotmpc/internal/phy"
)

// Connectivity invariants of the generated layouts under an idealized
// unit-disk radio, where reachability is pure geometry: these pin the
// generators' spacing semantics (what "spacing" means in meters) rather than
// any channel model.

func unitDisk(t *testing.T, top Topology, radius float64) *phy.UnitDisk {
	t.Helper()
	u, err := phy.NewUnitDisk(phy.DefaultParams(), top.Positions, radius, 0)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestLineConnectivityUnderUnitDisk(t *testing.T) {
	const n, spacing = 8, 10.0
	line, err := Line(n, spacing)
	if err != nil {
		t.Fatal(err)
	}
	// Radius covering exactly one hop: connected with the maximal diameter a
	// connected n-node graph can have.
	diam, connected, err := phy.Diameter(unitDisk(t, line, spacing), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !connected || diam != n-1 {
		t.Errorf("one-hop radius: diameter=%d connected=%v, want %d true", diam, connected, n-1)
	}
	// Radius covering two hops halves the diameter.
	diam, connected, err = phy.Diameter(unitDisk(t, line, 2*spacing), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !connected || diam != (n-1+1)/2 {
		t.Errorf("two-hop radius: diameter=%d connected=%v, want %d true", diam, connected, (n-1+1)/2)
	}
	// Radius below the spacing disconnects every node from every other.
	if _, connected, err = phy.Diameter(unitDisk(t, line, spacing/2), 0.5); err != nil {
		t.Fatal(err)
	}
	if connected {
		t.Error("sub-spacing radius: graph reported connected")
	}
}

func TestGridConnectivityUnderUnitDisk(t *testing.T) {
	const rows, cols, spacing = 4, 6, 10.0
	grid, err := Grid(rows, cols, spacing)
	if err != nil {
		t.Fatal(err)
	}
	// Axis-aligned one-hop radius: the lattice is connected with Manhattan
	// diameter (diagonal neighbors are √2·spacing away, out of range).
	diam, connected, err := phy.Diameter(unitDisk(t, grid, spacing), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if want := (rows - 1) + (cols - 1); !connected || diam != want {
		t.Errorf("grid diameter=%d connected=%v, want %d true", diam, connected, want)
	}
}

func TestRandomGeometricConnectivityMonotone(t *testing.T) {
	// Connectivity under a unit disk is monotone in the radius, and a radius
	// covering the full bounding-box diagonal trivially connects any layout.
	top, err := RandomGeometric(30, 100, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	diam, connected, err := phy.Diameter(unitDisk(t, top, 150), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !connected || diam != 1 {
		t.Errorf("diagonal radius: diameter=%d connected=%v, want 1 true", diam, connected)
	}
	wasConnected := false
	for _, radius := range []float64{5, 15, 30, 60, 150} {
		_, connected, err := phy.Diameter(unitDisk(t, top, radius), 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if wasConnected && !connected {
			t.Fatalf("radius %f disconnected a layout a smaller radius connected", radius)
		}
		wasConnected = connected
	}
	if !wasConnected {
		t.Error("layout never became connected as the radius grew")
	}
}

func TestSubsetPreservesPrefixGeometry(t *testing.T) {
	// Subset(n) is the literal prefix of the parent layout — node i keeps its
	// coordinates, so hop structure among the survivors only ever improves
	// relative to routing through removed relays (never silently relabels).
	parent, err := RandomGeometric(20, 80, 80, 4)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := parent.Subset(12)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range sub.Positions {
		if p != parent.Positions[i] {
			t.Fatalf("subset node %d moved: %+v != %+v", i, p, parent.Positions[i])
		}
	}
	if _, _, err := phy.Diameter(unitDisk(t, sub, 120), 0.5); err != nil {
		t.Fatal(err)
	}
}

func TestSingleRowGridMatchesLine(t *testing.T) {
	line, err := Line(7, 12)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := Grid(1, 7, 12)
	if err != nil {
		t.Fatal(err)
	}
	if grid.NumNodes() != line.NumNodes() {
		t.Fatal("degenerate grid has wrong node count")
	}
	for i := range grid.Positions {
		if grid.Positions[i] != line.Positions[i] {
			t.Errorf("node %d: grid %+v != line %+v", i, grid.Positions[i], line.Positions[i])
		}
	}
}
