// Package paillier implements the Paillier additively-homomorphic
// cryptosystem (Paillier, EUROCRYPT 1999) — the representative of the
// "computation-intensive Homomorphic Encryption" family of PPDA schemes the
// paper positions itself against. It exists so the repository can reproduce
// that comparison quantitatively: internal/hepda builds an HE-based
// aggregation protocol on top of it and the benchmarks pit it against S4.
//
//	Enc(m) = g^m · r^N  mod N²     with g = N+1, random r ∈ Z*_N
//	Enc(a)·Enc(b) = Enc(a+b)       (the homomorphism)
//	Dec(c) = L(c^λ mod N²)·μ mod N with L(x) = (x−1)/N
//
// Not hardened for production use (no constant-time guarantees); it is a
// faithful functional implementation whose costs are modeled separately for
// the constrained-device latency accounting.
package paillier

import (
	"errors"
	"fmt"
	"io"
	"math/big"
)

// Errors returned by the package.
var (
	// ErrKeySize is returned for too-small moduli.
	ErrKeySize = errors.New("paillier: key size too small")
	// ErrMessageRange is returned when a plaintext is outside [0, N).
	ErrMessageRange = errors.New("paillier: message out of range")
	// ErrCiphertextRange is returned when a ciphertext is outside [0, N²).
	ErrCiphertextRange = errors.New("paillier: ciphertext out of range")
)

// PublicKey encrypts and aggregates.
type PublicKey struct {
	// N is the modulus p·q.
	N *big.Int
	// NSquared caches N².
	NSquared *big.Int
}

// PrivateKey decrypts.
type PrivateKey struct {
	PublicKey
	lambda *big.Int // lcm(p-1, q-1)
	mu     *big.Int // (L(g^λ mod N²))⁻¹ mod N
}

// GenerateKey creates a key pair with an N of the given bit length, drawing
// primes from rng (pass a seeded reader for reproducible simulations).
func GenerateKey(bits int, rng io.Reader) (*PrivateKey, error) {
	if bits < 64 {
		return nil, fmt.Errorf("%w: %d bits", ErrKeySize, bits)
	}
	for {
		p, err := samplePrime(rng, bits/2)
		if err != nil {
			return nil, fmt.Errorf("sample p: %w", err)
		}
		q, err := samplePrime(rng, bits-bits/2)
		if err != nil {
			return nil, fmt.Errorf("sample q: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		pm1 := new(big.Int).Sub(p, big.NewInt(1))
		qm1 := new(big.Int).Sub(q, big.NewInt(1))
		gcd := new(big.Int).GCD(nil, nil, pm1, qm1)
		lambda := new(big.Int).Mul(pm1, qm1)
		lambda.Div(lambda, gcd)

		nsq := new(big.Int).Mul(n, n)
		pk := PublicKey{N: n, NSquared: nsq}
		// With g = N+1: g^λ mod N² = 1 + λN, so L(g^λ) = λ and μ = λ⁻¹ mod N.
		mu := new(big.Int).ModInverse(new(big.Int).Mod(lambda, n), n)
		if mu == nil {
			continue // λ not invertible mod N (p | λ); re-draw
		}
		return &PrivateKey{PublicKey: pk, lambda: lambda, mu: mu}, nil
	}
}

// samplePrime draws a probable prime of exactly the given bit length from
// rng. Unlike crypto/rand.Prime it is strictly deterministic in the reader
// (the stdlib version intentionally consumes a random extra byte), which the
// simulation needs for reproducible runs.
func samplePrime(rng io.Reader, bits int) (*big.Int, error) {
	bytes := (bits + 7) / 8
	buf := make([]byte, bytes)
	for {
		if _, err := io.ReadFull(rng, buf); err != nil {
			return nil, err
		}
		p := new(big.Int).SetBytes(buf)
		// Force exact bit length and oddness.
		p.SetBit(p, bits-1, 1)
		p.SetBit(p, 0, 1)
		if p.BitLen() > bits {
			p.Rsh(p, uint(p.BitLen()-bits))
			p.SetBit(p, 0, 1)
		}
		if p.ProbablyPrime(20) {
			return p, nil
		}
	}
}

// CiphertextBytes returns the wire size of one ciphertext (an element of
// Z_{N²}).
func (pk *PublicKey) CiphertextBytes() int {
	return (pk.NSquared.BitLen() + 7) / 8
}

// Encrypt encrypts m ∈ [0, N).
func (pk *PublicKey) Encrypt(m *big.Int, rng io.Reader) (*big.Int, error) {
	if m.Sign() < 0 || m.Cmp(pk.N) >= 0 {
		return nil, fmt.Errorf("%w: %v", ErrMessageRange, m)
	}
	// g = N+1 shortcut: g^m = 1 + mN (mod N²).
	gm := new(big.Int).Mul(m, pk.N)
	gm.Add(gm, big.NewInt(1))
	gm.Mod(gm, pk.NSquared)

	r, err := pk.sampleUnit(rng)
	if err != nil {
		return nil, err
	}
	rn := new(big.Int).Exp(r, pk.N, pk.NSquared)
	c := gm.Mul(gm, rn)
	c.Mod(c, pk.NSquared)
	return c, nil
}

// sampleUnit draws r ∈ [1, N) with gcd(r, N) = 1, deterministically in rng.
func (pk *PublicKey) sampleUnit(rng io.Reader) (*big.Int, error) {
	one := big.NewInt(1)
	gcd := new(big.Int)
	buf := make([]byte, (pk.N.BitLen()+7)/8)
	for {
		if _, err := io.ReadFull(rng, buf); err != nil {
			return nil, fmt.Errorf("sample r: %w", err)
		}
		r := new(big.Int).SetBytes(buf)
		r.Mod(r, pk.N)
		if r.Sign() == 0 {
			continue
		}
		if gcd.GCD(nil, nil, r, pk.N).Cmp(one) == 0 {
			return r, nil
		}
	}
}

// Add homomorphically adds two ciphertexts: Dec(Add(a,b)) = Dec(a)+Dec(b).
func (pk *PublicKey) Add(a, b *big.Int) (*big.Int, error) {
	if err := pk.checkCiphertext(a); err != nil {
		return nil, err
	}
	if err := pk.checkCiphertext(b); err != nil {
		return nil, err
	}
	out := new(big.Int).Mul(a, b)
	out.Mod(out, pk.NSquared)
	return out, nil
}

// AddPlain homomorphically adds a plaintext constant to a ciphertext.
func (pk *PublicKey) AddPlain(c *big.Int, m *big.Int) (*big.Int, error) {
	if err := pk.checkCiphertext(c); err != nil {
		return nil, err
	}
	if m.Sign() < 0 || m.Cmp(pk.N) >= 0 {
		return nil, fmt.Errorf("%w: %v", ErrMessageRange, m)
	}
	gm := new(big.Int).Mul(m, pk.N)
	gm.Add(gm, big.NewInt(1))
	gm.Mod(gm, pk.NSquared)
	out := gm.Mul(gm, c)
	out.Mod(out, pk.NSquared)
	return out, nil
}

func (pk *PublicKey) checkCiphertext(c *big.Int) error {
	if c == nil || c.Sign() < 0 || c.Cmp(pk.NSquared) >= 0 {
		return fmt.Errorf("%w: %v", ErrCiphertextRange, c)
	}
	return nil
}

// Decrypt recovers the plaintext of c.
func (sk *PrivateKey) Decrypt(c *big.Int) (*big.Int, error) {
	if err := sk.checkCiphertext(c); err != nil {
		return nil, err
	}
	x := new(big.Int).Exp(c, sk.lambda, sk.NSquared)
	// L(x) = (x-1)/N
	x.Sub(x, big.NewInt(1))
	x.Div(x, sk.N)
	x.Mul(x, sk.mu)
	x.Mod(x, sk.N)
	return x, nil
}
