package paillier

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"
)

// testKey generates a small (fast) key for tests with deterministic
// randomness.
func testKey(t *testing.T, bits int, seed int64) *PrivateKey {
	t.Helper()
	sk, err := GenerateKey(bits, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

func TestEncryptDecryptRoundtrip(t *testing.T) {
	sk := testKey(t, 256, 1)
	rng := rand.New(rand.NewSource(2))
	for _, m := range []int64{0, 1, 42, 1 << 40} {
		msg := big.NewInt(m)
		c, err := sk.Encrypt(msg, rng)
		if err != nil {
			t.Fatalf("Encrypt(%d): %v", m, err)
		}
		got, err := sk.Decrypt(c)
		if err != nil {
			t.Fatalf("Decrypt: %v", err)
		}
		if got.Cmp(msg) != 0 {
			t.Errorf("roundtrip %d -> %v", m, got)
		}
	}
}

func TestHomomorphicAddition(t *testing.T) {
	sk := testKey(t, 256, 3)
	rng := rand.New(rand.NewSource(4))
	a, err := sk.Encrypt(big.NewInt(1234), rng)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sk.Encrypt(big.NewInt(8766), rng)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := sk.Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(sum)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 10000 {
		t.Errorf("Dec(Enc(1234)·Enc(8766)) = %v, want 10000", got)
	}
}

func TestHomomorphicChainAggregation(t *testing.T) {
	// The in-network aggregation pattern: fold many ciphertexts.
	sk := testKey(t, 256, 5)
	rng := rand.New(rand.NewSource(6))
	var want int64
	acc, err := sk.Encrypt(big.NewInt(0), rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 20; i++ {
		want += i * 100
		c, err := sk.Encrypt(big.NewInt(i*100), rng)
		if err != nil {
			t.Fatal(err)
		}
		acc, err = sk.Add(acc, c)
		if err != nil {
			t.Fatal(err)
		}
	}
	got, err := sk.Decrypt(acc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != want {
		t.Errorf("aggregate = %v, want %d", got, want)
	}
}

func TestAddPlain(t *testing.T) {
	sk := testKey(t, 256, 7)
	rng := rand.New(rand.NewSource(8))
	c, err := sk.Encrypt(big.NewInt(50), rng)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := sk.AddPlain(c, big.NewInt(7))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(c2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 57 {
		t.Errorf("AddPlain = %v, want 57", got)
	}
}

func TestCiphertextRandomized(t *testing.T) {
	sk := testKey(t, 256, 9)
	rng := rand.New(rand.NewSource(10))
	a, err := sk.Encrypt(big.NewInt(5), rng)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sk.Encrypt(big.NewInt(5), rng)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cmp(b) == 0 {
		t.Error("two encryptions of the same plaintext are identical")
	}
}

func TestErrors(t *testing.T) {
	sk := testKey(t, 256, 11)
	rng := rand.New(rand.NewSource(12))

	if _, err := GenerateKey(32, rng); !errors.Is(err, ErrKeySize) {
		t.Errorf("small key: %v, want ErrKeySize", err)
	}
	if _, err := sk.Encrypt(big.NewInt(-1), rng); !errors.Is(err, ErrMessageRange) {
		t.Errorf("negative message: %v, want ErrMessageRange", err)
	}
	if _, err := sk.Encrypt(sk.N, rng); !errors.Is(err, ErrMessageRange) {
		t.Errorf("message = N: %v, want ErrMessageRange", err)
	}
	if _, err := sk.Decrypt(new(big.Int).Neg(big.NewInt(1))); !errors.Is(err, ErrCiphertextRange) {
		t.Errorf("bad ciphertext: %v, want ErrCiphertextRange", err)
	}
	if _, err := sk.Add(big.NewInt(1), sk.NSquared); !errors.Is(err, ErrCiphertextRange) {
		t.Errorf("Add out of range: %v, want ErrCiphertextRange", err)
	}
	if _, err := sk.AddPlain(big.NewInt(1), sk.N); !errors.Is(err, ErrMessageRange) {
		t.Errorf("AddPlain out of range: %v, want ErrMessageRange", err)
	}
}

func TestCiphertextBytes(t *testing.T) {
	sk := testKey(t, 256, 13)
	got := sk.CiphertextBytes()
	if got < 512/8 || got > 512/8+1 {
		t.Errorf("CiphertextBytes = %d, want ~%d (N² of a 256-bit N)", got, 512/8)
	}
}

func TestDeterministicKeyGeneration(t *testing.T) {
	a := testKey(t, 128, 42)
	b := testKey(t, 128, 42)
	if a.N.Cmp(b.N) != 0 {
		t.Error("same seed produced different keys")
	}
}

func TestPropRoundtripRandomMessages(t *testing.T) {
	sk := testKey(t, 192, 14)
	rng := rand.New(rand.NewSource(15))
	for i := 0; i < 25; i++ {
		m := new(big.Int).Rand(rng, sk.N)
		c, err := sk.Encrypt(m, rng)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sk.Decrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(m) != 0 {
			t.Fatalf("roundtrip failed for %v", m)
		}
	}
}
