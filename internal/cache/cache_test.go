package cache

import (
	"os"
	"path/filepath"
	"testing"
)

type payload struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

func TestKeyDistinguishesVersionAndPayload(t *testing.T) {
	base := Key("v1", []byte("scenario-a"))
	if base != Key("v1", []byte("scenario-a")) {
		t.Fatal("key not deterministic")
	}
	if base == Key("v2", []byte("scenario-a")) {
		t.Fatal("version bump did not change the key")
	}
	if base == Key("v1", []byte("scenario-b")) {
		t.Fatal("payload change did not change the key")
	}
	// The separator keeps (version, payload) boundaries unambiguous.
	if Key("ab", []byte("c")) == Key("a", []byte("bc")) {
		t.Fatal("version/payload boundary ambiguous")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("v1", []byte("cell-0"))

	var out payload
	if hit, err := s.Get(key, &out); err != nil || hit {
		t.Fatalf("empty store: hit=%v err=%v", hit, err)
	}
	in := payload{Name: "cell-0", Value: 3.25}
	if err := s.Put(key, in); err != nil {
		t.Fatal(err)
	}
	hit, err := s.Get(key, &out)
	if err != nil || !hit {
		t.Fatalf("after put: hit=%v err=%v", hit, err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("len = %d, %v", n, err)
	}
}

func TestStoreOverwrite(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("v1", []byte("cell"))
	if err := s.Put(key, payload{Value: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key, payload{Value: 2}); err != nil {
		t.Fatal(err)
	}
	var out payload
	if hit, _ := s.Get(key, &out); !hit || out.Value != 2 {
		t.Fatalf("overwrite: hit=%v out=%+v", hit, out)
	}
}

func TestStoreCorruptionIsAMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("v1", []byte("cell"))
	if err := s.Put(key, payload{Name: "x", Value: 9}); err != nil {
		t.Fatal(err)
	}

	corruptions := map[string]func([]byte) []byte{
		"truncated":       func(b []byte) []byte { return b[:len(b)/2] },
		"not json":        func(b []byte) []byte { return []byte("definitely not json") },
		"flipped payload": func(b []byte) []byte { return []byte(string(b[:len(b)-3]) + "1}}") },
	}
	for name, corrupt := range corruptions {
		raw, err := os.ReadFile(s.Path(key))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(s.Path(key), corrupt(raw), 0o644); err != nil {
			t.Fatal(err)
		}
		var out payload
		hit, err := s.Get(key, &out)
		if err != nil {
			t.Fatalf("%s: corruption surfaced as error: %v", name, err)
		}
		if hit {
			t.Fatalf("%s: corrupted entry served as a hit", name)
		}
		// Restore via the normal write path for the next case.
		if err := s.Put(key, payload{Name: "x", Value: 9}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStoreWrongKeyFileIsAMiss(t *testing.T) {
	// An entry copied to another key's path (e.g. a botched manual restore)
	// must not be served under the new key.
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keyA := Key("v1", []byte("a"))
	keyB := Key("v1", []byte("b"))
	if err := s.Put(keyA, payload{Value: 1}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(s.Path(keyA))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.Path(keyB), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if hit, _ := s.Get(keyB, &out); hit {
		t.Fatal("entry served under a key it was not stored for")
	}
}

func TestOpenRejectsEmptyAndCreatesNested(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("empty dir accepted")
	}
	dir := filepath.Join(t.TempDir(), "a", "b")
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("nested dir not created: %v", err)
	}
}
