package cache

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

type payload struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

func TestKeyDistinguishesVersionAndPayload(t *testing.T) {
	base := Key("v1", []byte("scenario-a"))
	if base != Key("v1", []byte("scenario-a")) {
		t.Fatal("key not deterministic")
	}
	if base == Key("v2", []byte("scenario-a")) {
		t.Fatal("version bump did not change the key")
	}
	if base == Key("v1", []byte("scenario-b")) {
		t.Fatal("payload change did not change the key")
	}
	// The separator keeps (version, payload) boundaries unambiguous.
	if Key("ab", []byte("c")) == Key("a", []byte("bc")) {
		t.Fatal("version/payload boundary ambiguous")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("v1", []byte("cell-0"))

	var out payload
	if hit, err := s.Get(key, &out); err != nil || hit {
		t.Fatalf("empty store: hit=%v err=%v", hit, err)
	}
	in := payload{Name: "cell-0", Value: 3.25}
	if err := s.Put(key, in); err != nil {
		t.Fatal(err)
	}
	hit, err := s.Get(key, &out)
	if err != nil || !hit {
		t.Fatalf("after put: hit=%v err=%v", hit, err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("len = %d, %v", n, err)
	}
}

func TestStoreOverwrite(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("v1", []byte("cell"))
	if err := s.Put(key, payload{Value: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key, payload{Value: 2}); err != nil {
		t.Fatal(err)
	}
	var out payload
	if hit, _ := s.Get(key, &out); !hit || out.Value != 2 {
		t.Fatalf("overwrite: hit=%v out=%+v", hit, out)
	}
}

func TestStoreCorruptionIsAMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("v1", []byte("cell"))
	if err := s.Put(key, payload{Name: "x", Value: 9}); err != nil {
		t.Fatal(err)
	}

	corruptions := map[string]func([]byte) []byte{
		"truncated":       func(b []byte) []byte { return b[:len(b)/2] },
		"not json":        func(b []byte) []byte { return []byte("definitely not json") },
		"flipped payload": func(b []byte) []byte { return []byte(string(b[:len(b)-3]) + "1}}") },
	}
	for name, corrupt := range corruptions {
		raw, err := os.ReadFile(s.Path(key))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(s.Path(key), corrupt(raw), 0o644); err != nil {
			t.Fatal(err)
		}
		var out payload
		hit, err := s.Get(key, &out)
		if err != nil {
			t.Fatalf("%s: corruption surfaced as error: %v", name, err)
		}
		if hit {
			t.Fatalf("%s: corrupted entry served as a hit", name)
		}
		// Restore via the normal write path for the next case.
		if err := s.Put(key, payload{Name: "x", Value: 9}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStoreWrongKeyFileIsAMiss(t *testing.T) {
	// An entry copied to another key's path (e.g. a botched manual restore)
	// must not be served under the new key.
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keyA := Key("v1", []byte("a"))
	keyB := Key("v1", []byte("b"))
	if err := s.Put(keyA, payload{Value: 1}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(s.Path(keyA))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.Path(keyB), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if hit, _ := s.Get(keyB, &out); hit {
		t.Fatal("entry served under a key it was not stored for")
	}
}

func TestOpenRejectsEmptyAndCreatesNested(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("empty dir accepted")
	}
	dir := filepath.Join(t.TempDir(), "a", "b")
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("nested dir not created: %v", err)
	}
}

func TestOpenSweepsStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("v1", []byte("survivor"))
	if err := s.Put(key, payload{Value: 1}); err != nil {
		t.Fatal(err)
	}

	// A temp file orphaned by a crashed writer, aged past the threshold.
	stale := filepath.Join(dir, "deadbeef.tmp-1234")
	if err := os.WriteFile(stale, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * staleTempAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	// A fresh temp file — a LIVE concurrent writer between CreateTemp and
	// Rename — must survive the sweep.
	fresh := filepath.Join(dir, "cafef00d.tmp-5678")
	if err := os.WriteFile(fresh, []byte("in flight"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp survived Open (stat err = %v)", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh temp removed — Open raced a live writer: %v", err)
	}
	// Real entries are untouched.
	var out payload
	if hit, err := s.Get(key, &out); err != nil || !hit || out.Value != 1 {
		t.Fatalf("entry damaged by sweep: hit=%v err=%v out=%+v", hit, err, out)
	}
}

func TestStoreConcurrentWritersAndSweeps(t *testing.T) {
	// Concurrent Puts of the same key interleaved with Opens (each running
	// a temp sweep) must never error or corrupt the entry: renames are
	// atomic and the sweep's age threshold keeps it off live temp files.
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("v1", []byte("hot"))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := s.Put(key, payload{Name: "hot", Value: float64(w)}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if _, err := Open(dir); err != nil {
					t.Errorf("opener %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var out payload
	hit, err := s.Get(key, &out)
	if err != nil || !hit {
		t.Fatalf("after concurrent writes: hit=%v err=%v", hit, err)
	}
	if out.Name != "hot" || out.Value < 0 || out.Value > 7 {
		t.Fatalf("entry corrupted: %+v", out)
	}
}

func TestStoreGetClassifiesErrors(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out payload

	// A real I/O fault must surface, not degrade to a miss. A regular file
	// blocking a path component yields ENOTDIR — an error even for root,
	// unlike permission bits.
	if err := os.WriteFile(filepath.Join(dir, "blocker"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("blocker/entry", &out); err == nil {
		t.Fatal("I/O fault (ENOTDIR) degraded to a miss")
	} else if !strings.Contains(err.Error(), "read entry") {
		t.Fatalf("unexpected error shape: %v", err)
	}

	// A directory squatting at an entry path is a malformed store, not an
	// I/O fault: a miss, so the caller recomputes and Put fails loudly.
	if err := os.Mkdir(s.Path("dirkey"), 0o755); err != nil {
		t.Fatal(err)
	}
	if hit, err := s.Get("dirkey", &out); err != nil || hit {
		t.Fatalf("directory at entry path: hit=%v err=%v, want miss", hit, err)
	}

	// Permission denial is the canonical real fault (CI runs unprivileged;
	// root bypasses permission bits, so skip there).
	if os.Geteuid() != 0 {
		key := Key("v1", []byte("locked"))
		if err := s.Put(key, payload{Value: 1}); err != nil {
			t.Fatal(err)
		}
		if err := os.Chmod(s.Path(key), 0); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Get(key, &out); err == nil {
			t.Fatal("permission fault degraded to a miss")
		}
	}
}

func TestStats(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	empty, err := s.Stats()
	if err != nil {
		t.Fatalf("stats on empty store: %v", err)
	}
	if empty != (Stats{}) {
		t.Fatalf("empty store stats %+v", empty)
	}
	if err := s.Put(Key("v1", []byte("a")), payload{Name: "a", Value: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Key("v1", []byte("b")), payload{Name: "b", Value: 2}); err != nil {
		t.Fatal(err)
	}
	// An orphaned Put temp (crashed writer) and a subdirectory: the temp is
	// counted, the directory ignored, neither inflates Entries/TotalBytes.
	if err := os.WriteFile(filepath.Join(dir, "deadbeef.tmp-123"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "subdir"), 0o755); err != nil {
		t.Fatal(err)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Entries != 2 {
		t.Errorf("entries %d, want 2", st.Entries)
	}
	if st.OrphanedTemps != 1 {
		t.Errorf("orphaned temps %d, want 1", st.OrphanedTemps)
	}
	var sum int64
	for _, key := range []string{Key("v1", []byte("a")), Key("v1", []byte("b"))} {
		info, err := os.Stat(s.Path(key))
		if err != nil {
			t.Fatal(err)
		}
		sum += info.Size()
	}
	if st.TotalBytes != sum {
		t.Errorf("total bytes %d, want %d", st.TotalBytes, sum)
	}
}
