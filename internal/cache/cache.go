// Package cache is a content-addressed result store for the experiment
// runner. Entries are JSON values filed under a key derived from the SHA-256
// of a canonical input encoding plus a caller-supplied version stamp, so a
// repeated or interrupted sweep only pays for cells whose inputs (or the
// code producing them) actually changed.
//
// The store is deliberately forgiving about CONTENT on the read path: a
// missing, truncated, or tampered entry is reported as a miss, never as an
// error — the caller's fallback is always "recompute and overwrite". Real
// I/O faults (permission denied on a shared cache volume, EIO) are NOT
// misses: they surface as errors, because silently recomputing a sweep a
// broken volume can never serve again hides an operational problem. Writes
// are atomic (temp file + rename), so a crash mid-Put leaves either the old
// entry or none, and concurrent writers of the same key are safe; temp
// files orphaned by a crash are swept by the next Open.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

// Key derives the content address for a canonical payload under a version
// stamp. Bumping the version invalidates every previously stored entry
// derived from the same payloads — the knob callers turn when the code that
// computes the values changes semantics.
func Key(version string, payload []byte) string {
	h := sha256.New()
	h.Write([]byte(version))
	h.Write([]byte{0}) // keep ("ab","c") and ("a","bc") distinct
	h.Write(payload)
	return hex.EncodeToString(h.Sum(nil))
}

// Store persists JSON values in one directory, one file per key.
type Store struct {
	dir string
}

// staleTempAge is how old an orphaned Put temp file must be before Open
// removes it. A crashed process (e.g. a sweep shard killed mid-run) leaves
// its `<key>.tmp-*` files behind forever; an age threshold reclaims them
// while never racing a live concurrent writer, whose temp exists for
// milliseconds between CreateTemp and Rename.
const staleTempAge = time.Hour

// Open creates (if needed) and opens a store rooted at dir, sweeping any
// stale temp files a crashed writer left behind.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	sweepStaleTemps(dir)
	return &Store{dir: dir}, nil
}

// sweepStaleTemps removes Put temp files older than staleTempAge. Best
// effort: the sweep is garbage collection, so any error (a file removed by
// a concurrent sweep, a permission oddity) is simply skipped.
func sweepStaleTemps(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	cutoff := time.Now().Add(-staleTempAge)
	for _, e := range entries {
		if e.IsDir() || !strings.Contains(e.Name(), ".tmp-") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		if info.ModTime().Before(cutoff) {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the file an entry for key lives at.
func (s *Store) Path(key string) string {
	return filepath.Join(s.dir, key+".json")
}

// envelope is the on-disk entry format. The checksum covers the value bytes,
// so bit rot or manual edits are detected and the entry degrades to a miss
// instead of serving a silently wrong result.
type envelope struct {
	Key      string          `json:"key"`
	Checksum string          `json:"checksum"`
	Value    json.RawMessage `json:"value"`
}

func valueChecksum(value []byte) string {
	sum := sha256.Sum256(value)
	return hex.EncodeToString(sum[:])
}

// Get loads the entry for key into out. It returns (false, nil) when the
// entry is absent or fails any integrity check — corruption is a cache miss,
// not an error, so sweeps always fall back to recomputing. A real I/O fault
// (permission denied, EIO on a failing volume) is an error: the entry may
// exist but cannot be read, and treating that as a permanent miss would
// silently recompute every cell on every run.
func (s *Store) Get(key string, out any) (bool, error) {
	raw, err := os.ReadFile(s.Path(key))
	switch {
	case err == nil:
	case errors.Is(err, fs.ErrNotExist), errors.Is(err, syscall.EISDIR):
		// Absent — or something that is not a regular file squatting where
		// the entry would live, which is a malformed store, not an I/O
		// fault: a miss, and Put's rename will fail loudly if it cannot
		// repair it.
		return false, nil
	default:
		return false, fmt.Errorf("cache: read entry %s: %w", key, err)
	}
	var env envelope
	if json.Unmarshal(raw, &env) != nil {
		return false, nil
	}
	if env.Key != key || valueChecksum(env.Value) != env.Checksum {
		return false, nil
	}
	if json.Unmarshal(env.Value, out) != nil {
		return false, nil
	}
	return true, nil
}

// Put stores v under key, atomically replacing any existing entry.
func (s *Store) Put(key string, v any) error {
	value, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("cache: encode value: %w", err)
	}
	raw, err := json.Marshal(envelope{
		Key:      key,
		Checksum: valueChecksum(value),
		Value:    value,
	})
	if err != nil {
		return fmt.Errorf("cache: encode entry: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, key+".tmp-*")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return fmt.Errorf("cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.Path(key)); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	return nil
}

// Stats summarizes the store's on-disk footprint: how many entries it
// holds, how many bytes they occupy, and how many orphaned Put temp files a
// crashed writer has left behind (the ones a future Open will sweep once
// they age past staleTempAge). Surfaced by the sweep service's /healthz and
// the experiments CLI's -stats flag.
type Stats struct {
	Entries       int   `json:"entries"`
	TotalBytes    int64 `json:"totalBytes"`
	OrphanedTemps int   `json:"orphanedTemps"`
}

// Stats walks the store directory and reports its footprint.
func (s *Store) Stats() (Stats, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return Stats{}, fmt.Errorf("cache: %w", err)
	}
	var st Stats
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.Contains(e.Name(), ".tmp-") {
			st.OrphanedTemps++
			continue
		}
		if filepath.Ext(e.Name()) != ".json" {
			continue
		}
		info, err := e.Info()
		if err != nil {
			// The entry vanished between ReadDir and Stat (a concurrent
			// sweep's Put/sweep); skip it rather than fail diagnostics.
			continue
		}
		st.Entries++
		st.TotalBytes += info.Size()
	}
	return st, nil
}

// Len counts the entries currently stored (diagnostics and tests).
func (s *Store) Len() (int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("cache: %w", err)
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	return n, nil
}
