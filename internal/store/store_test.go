package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openT(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	return s
}

func TestCreateAndGetJob(t *testing.T) {
	s := openT(t, t.TempDir())
	defer s.Close()
	job, err := s.CreateJob(json.RawMessage(`{"nodeCounts":[8]}`), 4)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if job.ID != "j000001" || job.State != Queued || job.Cells != 4 {
		t.Fatalf("unexpected job %+v", job)
	}
	got, ok := s.Job(job.ID)
	if !ok || got.State != Queued {
		t.Fatalf("lookup: ok=%v job=%+v", ok, got)
	}
	if _, ok := s.Job("j999999"); ok {
		t.Error("phantom job found")
	}
}

func TestUpdateJobAndStateMachine(t *testing.T) {
	s := openT(t, t.TempDir())
	defer s.Close()
	job, _ := s.CreateJob(json.RawMessage(`{}`), 2)
	upd, err := s.UpdateJob(job.ID, true, func(j *Job) {
		j.State = Running
		j.ID = "hijack" // must be ignored
	})
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	if upd.ID != job.ID || upd.State != Running {
		t.Fatalf("update result %+v", upd)
	}
	if _, err := s.UpdateJob("j424242", true, func(*Job) {}); err == nil {
		t.Error("update of missing job accepted")
	}
}

func TestReopenReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	job, _ := s.CreateJob(json.RawMessage(`{"iterations":3}`), 2)
	s.UpdateJob(job.ID, false, func(j *Job) { j.Completed = 1 })
	if err := s.PutRow("cafe", []byte(`{"x":1}`)); err != nil {
		t.Fatalf("put row: %v", err)
	}
	// Close WITHOUT checkpointing: drop the handle so reopen must replay
	// the raw WAL, not the snapshot Close would write.
	s.wal.Close()

	r := openT(t, dir)
	defer r.Close()
	got, ok := r.Job(job.ID)
	if !ok || got.Completed != 1 {
		t.Fatalf("replayed job: ok=%v %+v", ok, got)
	}
	row, ok := r.Row("cafe")
	if !ok || string(row) != `{"x":1}` {
		t.Fatalf("replayed row: ok=%v %q", ok, row)
	}
	// The ID sequence continues past replayed jobs instead of reissuing.
	next, _ := r.CreateJob(json.RawMessage(`{}`), 1)
	if next.ID != "j000002" {
		t.Fatalf("sequence after reopen: %s", next.ID)
	}
}

func TestTornWALTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	job, _ := s.CreateJob(json.RawMessage(`{}`), 1)
	s.wal.Close()
	// Simulate a crash mid-append: a partial record with no newline.
	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"job","job":{"id":"j0000`)
	f.Close()

	r := openT(t, dir)
	defer r.Close()
	if _, ok := r.Job(job.ID); !ok {
		t.Fatal("intact record lost with the torn tail")
	}
	// Appending after the truncation must yield a clean, replayable log.
	if _, err := r.CreateJob(json.RawMessage(`{}`), 1); err != nil {
		t.Fatalf("append after torn tail: %v", err)
	}
	r.wal.Close()
	rr := openT(t, dir)
	defer rr.Close()
	if len(rr.Jobs()) != 2 {
		t.Fatalf("after torn-tail recovery want 2 jobs, got %d", len(rr.Jobs()))
	}
}

func TestCorruptMidWALIsError(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.CreateJob(json.RawMessage(`{}`), 1)
	s.wal.Close()
	raw, _ := os.ReadFile(filepath.Join(dir, "wal.log"))
	// Garbage record FOLLOWED by a valid one: not a torn tail, real rot.
	bad := append([]byte("not json at all\n"), raw...)
	os.WriteFile(filepath.Join(dir, "wal.log"), bad, 0o644)
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt mid-log open: %v", err)
	}
}

func TestSnapshotCheckpointAndReload(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.SnapshotEvery = 4
	var lastID string
	for i := 0; i < 6; i++ {
		job, err := s.CreateJob(json.RawMessage(`{}`), 1)
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		lastID = job.ID
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.json")); err != nil {
		t.Fatalf("no snapshot after %d records: %v", 6, err)
	}
	s.wal.Close() // crash-style: snapshot plus post-checkpoint WAL tail

	r := openT(t, dir)
	defer r.Close()
	if got := len(r.Jobs()); got != 6 {
		t.Fatalf("after snapshot reload: %d jobs, want 6", got)
	}
	if _, ok := r.Job(lastID); !ok {
		t.Fatalf("job %s lost across checkpoint", lastID)
	}
}

func TestCloseCheckpointsAndRefusesFurtherWrites(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.CreateJob(json.RawMessage(`{}`), 1)
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := s.CreateJob(json.RawMessage(`{}`), 1); err == nil {
		t.Error("write after close accepted")
	}
	raw, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil || len(raw) != 0 {
		t.Fatalf("wal not truncated by close: err=%v len=%d", err, len(raw))
	}
	r := openT(t, dir)
	defer r.Close()
	if len(r.Jobs()) != 1 {
		t.Fatalf("snapshot-only reload: %d jobs", len(r.Jobs()))
	}
}

func TestRowDedupByKey(t *testing.T) {
	s := openT(t, t.TempDir())
	defer s.Close()
	s.PutRow("k1", []byte(`{"v":1}`))
	s.PutRow("k1", []byte(`{"v":1}`))
	s.PutRow("k2", []byte(`{"v":2}`))
	if n := s.RowCount(); n != 2 {
		t.Fatalf("row count %d, want 2 (k1 deduplicated)", n)
	}
	if err := s.PutRow("", []byte(`{}`)); err == nil {
		t.Error("empty key accepted")
	}
}

func TestLegacySchemaZeroMigration(t *testing.T) {
	dir := t.TempDir()
	// A v0 snapshot: jobs only, no schema stamp, no rows map.
	legacy := `{"jobs":[{"id":"j000007","state":"done","cells":3,"completed":3}]}`
	os.WriteFile(filepath.Join(dir, "snapshot.json"), []byte(legacy), 0o644)
	s := openT(t, dir)
	defer s.Close()
	job, ok := s.Job("j000007")
	if !ok || job.State != Done || job.Cells != 3 {
		t.Fatalf("migrated job: ok=%v %+v", ok, job)
	}
	// The sequence respects migrated IDs.
	next, _ := s.CreateJob(json.RawMessage(`{}`), 1)
	if next.ID != "j000008" {
		t.Fatalf("sequence after migration: %s", next.ID)
	}
	// Close rewrites the snapshot at the current schema.
	s.Close()
	raw, _ := os.ReadFile(filepath.Join(dir, "snapshot.json"))
	var snap struct {
		Schema int `json:"schema"`
	}
	json.Unmarshal(raw, &snap)
	if snap.Schema != SchemaVersion {
		t.Fatalf("rewritten snapshot schema %d, want %d", snap.Schema, SchemaVersion)
	}
}

func TestFutureSchemaRefused(t *testing.T) {
	dir := t.TempDir()
	future := fmt.Sprintf(`{"schema":%d,"jobs":[]}`, SchemaVersion+1)
	os.WriteFile(filepath.Join(dir, "snapshot.json"), []byte(future), 0o644)
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "newer") {
		t.Fatalf("future schema open: %v", err)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("empty dir accepted")
	}
}
