package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func openT(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	return s
}

func TestCreateAndGetJob(t *testing.T) {
	s := openT(t, t.TempDir())
	defer s.Close()
	job, err := s.CreateJob(json.RawMessage(`{"nodeCounts":[8]}`), 4)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if job.ID != "j000001" || job.State != Queued || job.Cells != 4 {
		t.Fatalf("unexpected job %+v", job)
	}
	got, ok := s.Job(job.ID)
	if !ok || got.State != Queued {
		t.Fatalf("lookup: ok=%v job=%+v", ok, got)
	}
	if _, ok := s.Job("j999999"); ok {
		t.Error("phantom job found")
	}
}

func TestUpdateJobAndStateMachine(t *testing.T) {
	s := openT(t, t.TempDir())
	defer s.Close()
	job, _ := s.CreateJob(json.RawMessage(`{}`), 2)
	upd, err := s.UpdateJob(job.ID, true, func(j *Job) {
		j.State = Running
		j.ID = "hijack" // must be ignored
	})
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	if upd.ID != job.ID || upd.State != Running {
		t.Fatalf("update result %+v", upd)
	}
	if _, err := s.UpdateJob("j424242", true, func(*Job) {}); err == nil {
		t.Error("update of missing job accepted")
	}
}

// TestStateMachineRejectsIllegalTransitions: terminal states are final and
// a queued job cannot jump straight to done.
func TestStateMachineRejectsIllegalTransitions(t *testing.T) {
	s := openT(t, t.TempDir())
	defer s.Close()
	set := func(id string, st State) error {
		_, err := s.UpdateJob(id, true, func(j *Job) { j.State = st })
		return err
	}
	job, _ := s.CreateJob(json.RawMessage(`{}`), 1)
	if err := set(job.ID, Done); err == nil {
		t.Error("queued → done accepted")
	}
	if err := set(job.ID, Canceled); err != nil {
		t.Fatalf("queued → canceled: %v", err)
	}
	for _, to := range []State{Running, Queued, Done, Failed} {
		if err := set(job.ID, to); err == nil {
			t.Errorf("canceled → %s accepted", to)
		}
	}
	// Counter updates on a terminal job stay legal (same-state update).
	if _, err := s.UpdateJob(job.ID, false, func(j *Job) { j.Completed = 1 }); err != nil {
		t.Errorf("same-state update rejected: %v", err)
	}
	run, _ := s.CreateJob(json.RawMessage(`{}`), 1)
	if err := set(run.ID, Running); err != nil {
		t.Fatal(err)
	}
	if err := set(run.ID, Queued); err != nil {
		t.Errorf("running → queued (drain/resume) rejected: %v", err)
	}
}

// TestWALReplayCancelRecord: a cancel is durable through the raw WAL, with
// no snapshot involved — the signature of a daemon killed right after
// acknowledging a DELETE.
func TestWALReplayCancelRecord(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	job, _ := s.CreateJob(json.RawMessage(`{}`), 3)
	if _, err := s.UpdateJob(job.ID, true, func(j *Job) {
		j.State = Canceled
		j.Error = "canceled by client"
	}); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	s.wal.Close() // crash-style: no checkpoint, replay must come from the WAL

	r := openT(t, dir)
	defer r.Close()
	got, ok := r.Job(job.ID)
	if !ok || got.State != Canceled || got.Error != "canceled by client" {
		t.Fatalf("replayed cancel: ok=%v %+v", ok, got)
	}
	// Terminality survives replay too.
	if _, err := r.UpdateJob(job.ID, true, func(j *Job) { j.State = Running }); err == nil {
		t.Error("replayed canceled job accepted a restart")
	}
}

func TestReopenReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	job, _ := s.CreateJob(json.RawMessage(`{"iterations":3}`), 2)
	s.UpdateJob(job.ID, false, func(j *Job) { j.Completed = 1 })
	if err := s.PutRow("cafe", []byte(`{"x":1}`)); err != nil {
		t.Fatalf("put row: %v", err)
	}
	// Close WITHOUT checkpointing: drop the handle so reopen must replay
	// the raw WAL, not the snapshot Close would write.
	s.wal.Close()

	r := openT(t, dir)
	defer r.Close()
	got, ok := r.Job(job.ID)
	if !ok || got.Completed != 1 {
		t.Fatalf("replayed job: ok=%v %+v", ok, got)
	}
	row, ok := r.Row("cafe")
	if !ok || string(row) != `{"x":1}` {
		t.Fatalf("replayed row: ok=%v %q", ok, row)
	}
	// The ID sequence continues past replayed jobs instead of reissuing.
	next, _ := r.CreateJob(json.RawMessage(`{}`), 1)
	if next.ID != "j000002" {
		t.Fatalf("sequence after reopen: %s", next.ID)
	}
}

func TestTornWALTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	job, _ := s.CreateJob(json.RawMessage(`{}`), 1)
	s.wal.Close()
	// Simulate a crash mid-append: a partial record with no newline.
	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"job","job":{"id":"j0000`)
	f.Close()

	r := openT(t, dir)
	defer r.Close()
	if _, ok := r.Job(job.ID); !ok {
		t.Fatal("intact record lost with the torn tail")
	}
	// Appending after the truncation must yield a clean, replayable log.
	if _, err := r.CreateJob(json.RawMessage(`{}`), 1); err != nil {
		t.Fatalf("append after torn tail: %v", err)
	}
	r.wal.Close()
	rr := openT(t, dir)
	defer rr.Close()
	if len(rr.Jobs()) != 2 {
		t.Fatalf("after torn-tail recovery want 2 jobs, got %d", len(rr.Jobs()))
	}
}

func TestCorruptMidWALIsError(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.CreateJob(json.RawMessage(`{}`), 1)
	s.wal.Close()
	raw, _ := os.ReadFile(filepath.Join(dir, "wal.log"))
	// Garbage record FOLLOWED by a valid one: not a torn tail, real rot.
	bad := append([]byte("not json at all\n"), raw...)
	os.WriteFile(filepath.Join(dir, "wal.log"), bad, 0o644)
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt mid-log open: %v", err)
	}
}

func TestSnapshotCheckpointAndReload(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.SnapshotEvery = 4
	var lastID string
	for i := 0; i < 6; i++ {
		job, err := s.CreateJob(json.RawMessage(`{}`), 1)
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		lastID = job.ID
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.json")); err != nil {
		t.Fatalf("no snapshot after %d records: %v", 6, err)
	}
	s.wal.Close() // crash-style: snapshot plus post-checkpoint WAL tail

	r := openT(t, dir)
	defer r.Close()
	if got := len(r.Jobs()); got != 6 {
		t.Fatalf("after snapshot reload: %d jobs, want 6", got)
	}
	if _, ok := r.Job(lastID); !ok {
		t.Fatalf("job %s lost across checkpoint", lastID)
	}
}

func TestCloseCheckpointsAndRefusesFurtherWrites(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.CreateJob(json.RawMessage(`{}`), 1)
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := s.CreateJob(json.RawMessage(`{}`), 1); err == nil {
		t.Error("write after close accepted")
	}
	raw, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil || len(raw) != 0 {
		t.Fatalf("wal not truncated by close: err=%v len=%d", err, len(raw))
	}
	r := openT(t, dir)
	defer r.Close()
	if len(r.Jobs()) != 1 {
		t.Fatalf("snapshot-only reload: %d jobs", len(r.Jobs()))
	}
}

func TestRowDedupByKey(t *testing.T) {
	s := openT(t, t.TempDir())
	defer s.Close()
	s.PutRow("k1", []byte(`{"v":1}`))
	s.PutRow("k1", []byte(`{"v":1}`))
	s.PutRow("k2", []byte(`{"v":2}`))
	if n := s.RowCount(); n != 2 {
		t.Fatalf("row count %d, want 2 (k1 deduplicated)", n)
	}
	if err := s.PutRow("", []byte(`{}`)); err == nil {
		t.Error("empty key accepted")
	}
}

func TestLegacySchemaZeroMigration(t *testing.T) {
	dir := t.TempDir()
	// A v0 snapshot: jobs only, no schema stamp, no rows map.
	legacy := `{"jobs":[{"id":"j000007","state":"done","cells":3,"completed":3}]}`
	os.WriteFile(filepath.Join(dir, "snapshot.json"), []byte(legacy), 0o644)
	s := openT(t, dir)
	defer s.Close()
	job, ok := s.Job("j000007")
	if !ok || job.State != Done || job.Cells != 3 {
		t.Fatalf("migrated job: ok=%v %+v", ok, job)
	}
	// The sequence respects migrated IDs.
	next, _ := s.CreateJob(json.RawMessage(`{}`), 1)
	if next.ID != "j000008" {
		t.Fatalf("sequence after migration: %s", next.ID)
	}
	// Close rewrites the snapshot at the current schema.
	s.Close()
	raw, _ := os.ReadFile(filepath.Join(dir, "snapshot.json"))
	var snap struct {
		Schema int `json:"schema"`
	}
	json.Unmarshal(raw, &snap)
	if snap.Schema != SchemaVersion {
		t.Fatalf("rewritten snapshot schema %d, want %d", snap.Schema, SchemaVersion)
	}
}

func TestFutureSchemaRefused(t *testing.T) {
	dir := t.TempDir()
	future := fmt.Sprintf(`{"schema":%d,"jobs":[]}`, SchemaVersion+1)
	os.WriteFile(filepath.Join(dir, "snapshot.json"), []byte(future), 0o644)
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "newer") {
		t.Fatalf("future schema open: %v", err)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("empty dir accepted")
	}
}

// TestSchemaOneMigrationRoundTrip: a v1 snapshot (jobs + rows, no jobKeys)
// opens, serves, and is rewritten at the current schema; the migrated jobs
// have no key lists until someone backfills them.
func TestSchemaOneMigrationRoundTrip(t *testing.T) {
	dir := t.TempDir()
	v1 := `{"schema":1,"jobs":[{"id":"j000003","state":"done","cells":2,"completed":2}],` +
		`"rows":{"k1":{"v":1},"k2":{"v":2}}}`
	os.WriteFile(filepath.Join(dir, "snapshot.json"), []byte(v1), 0o644)
	s := openT(t, dir)
	job, ok := s.Job("j000003")
	if !ok || job.State != Done {
		t.Fatalf("migrated job: ok=%v %+v", ok, job)
	}
	if n := s.RowCount(); n != 2 {
		t.Fatalf("migrated rows: %d, want 2", n)
	}
	if _, ok := s.JobKeys("j000003"); ok {
		t.Fatal("migration invented a key list")
	}
	if err := s.SetJobKeys("j000003", []string{"k1", "k2"}); err != nil {
		t.Fatalf("backfill: %v", err)
	}
	s.Close()

	raw, _ := os.ReadFile(filepath.Join(dir, "snapshot.json"))
	var snap struct {
		Schema  int                 `json:"schema"`
		JobKeys map[string][]string `json:"jobKeys"`
	}
	json.Unmarshal(raw, &snap)
	if snap.Schema != SchemaVersion {
		t.Fatalf("rewritten snapshot schema %d, want %d", snap.Schema, SchemaVersion)
	}
	if got := snap.JobKeys["j000003"]; len(got) != 2 {
		t.Fatalf("backfilled keys not in snapshot: %v", snap.JobKeys)
	}
	r := openT(t, dir)
	defer r.Close()
	if keys, ok := r.JobKeys("j000003"); !ok || len(keys) != 2 {
		t.Fatalf("keys after round-trip: ok=%v %v", ok, keys)
	}
}

// gcFixture builds a store holding three terminal jobs with overlapping row
// references:
//
//	j1 (done):   rows A, S
//	j2 (done):   rows B, S   (S shared with j1)
//	j3 (failed): row  C
//
// plus rows for every key. IDs are created in order, so j1 is oldest.
func gcFixture(t *testing.T, dir string) (*Store, []Job) {
	t.Helper()
	s := openT(t, dir)
	keysOf := [][]string{{"A", "S"}, {"B", "S"}, {"C"}}
	states := []State{Done, Done, Failed}
	jobs := make([]Job, 3)
	for i := range keysOf {
		job, err := s.CreateJob(json.RawMessage(`{}`), len(keysOf[i]))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.SetJobKeys(job.ID, keysOf[i]); err != nil {
			t.Fatal(err)
		}
		for _, k := range keysOf[i] {
			if err := s.PutRow(k, []byte(`{"row":"`+k+`"}`)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.UpdateJob(job.ID, true, func(j *Job) { j.State = Running }); err != nil {
			t.Fatal(err)
		}
		if _, err := s.UpdateJob(job.ID, true, func(j *Job) { j.State = states[i] }); err != nil {
			t.Fatal(err)
		}
		jobs[i] = job
	}
	return s, jobs
}

// TestGCRetainJobsSweepsUnreferencedRows: MaxJobs 2 prunes only the oldest
// terminal job; its exclusive row goes, the row it shared with a surviving
// job stays (refcount-by-mark semantics).
func TestGCRetainJobsSweepsUnreferencedRows(t *testing.T) {
	s, jobs := gcFixture(t, t.TempDir())
	defer s.Close()
	s.Retention = RetentionPolicy{MaxJobs: 2}
	pruned, swept, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if pruned != 1 || swept != 1 {
		t.Fatalf("pruned %d jobs / swept %d rows, want 1/1", pruned, swept)
	}
	if _, ok := s.Job(jobs[0].ID); ok {
		t.Error("oldest terminal job survived MaxJobs 2")
	}
	if _, ok := s.Row("A"); ok {
		t.Error("pruned job's exclusive row A survived")
	}
	if _, ok := s.Row("S"); !ok {
		t.Error("row S shared with a surviving job was swept")
	}
	// Pruning the second sharer releases the last reference to S.
	s.Retention = RetentionPolicy{MaxJobs: 1}
	if _, _, err := s.GC(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Row("S"); ok {
		t.Error("row S survived the last referencing job")
	}
	if _, ok := s.Row("C"); !ok {
		t.Error("retained job's row C was swept")
	}
}

// TestGCPrunesOnlyTerminalJobs: queued and running jobs are untouchable no
// matter how aggressive the policy, and their rows stay marked.
func TestGCPrunesOnlyTerminalJobs(t *testing.T) {
	s, _ := gcFixture(t, t.TempDir())
	defer s.Close()
	queued, _ := s.CreateJob(json.RawMessage(`{}`), 1)
	s.SetJobKeys(queued.ID, []string{"Q"})
	s.PutRow("Q", []byte(`{}`))
	running, _ := s.CreateJob(json.RawMessage(`{}`), 1)
	s.SetJobKeys(running.ID, []string{"R"})
	s.PutRow("R", []byte(`{}`))
	s.UpdateJob(running.ID, true, func(j *Job) { j.State = Running })

	s.Retention = RetentionPolicy{MaxJobs: 1, MaxAge: time.Nanosecond}
	time.Sleep(1100 * time.Millisecond) // Updated has 1s granularity; age everything out
	pruned, _, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if pruned != 3 {
		t.Fatalf("pruned %d, want exactly the 3 terminal jobs", pruned)
	}
	for _, id := range []string{queued.ID, running.ID} {
		if _, ok := s.Job(id); !ok {
			t.Errorf("non-terminal job %s pruned", id)
		}
	}
	for _, k := range []string{"Q", "R"} {
		if _, ok := s.Row(k); !ok {
			t.Errorf("live job's row %s swept", k)
		}
	}
}

// TestGCConservativeWithoutJobKeys: if any surviving job has no recorded
// key list, GC prunes jobs but refuses to sweep rows (it cannot know what
// that job references). Backfilling the keys re-enables sweeping.
func TestGCConservativeWithoutJobKeys(t *testing.T) {
	s, _ := gcFixture(t, t.TempDir())
	defer s.Close()
	// A legacy-style job: terminal, no key list, must be retained.
	legacy, _ := s.CreateJob(json.RawMessage(`{}`), 1)
	s.UpdateJob(legacy.ID, true, func(j *Job) { j.State = Running })
	s.UpdateJob(legacy.ID, true, func(j *Job) { j.State = Done })

	s.Retention = RetentionPolicy{MaxJobs: 2} // keeps legacy (newest) + j3
	pruned, swept, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if pruned != 2 || swept != 0 {
		t.Fatalf("pruned %d / swept %d, want 2 pruned and 0 swept (legacy job blocks sweeping)", pruned, swept)
	}
	if _, ok := s.Row("A"); !ok {
		t.Fatal("row swept while a surviving job's references were unknown")
	}
	if err := s.SetJobKeys(legacy.ID, nil); err != nil {
		t.Fatal(err)
	}
	// Sweeping only runs when a prune happens; tighten the policy so the
	// next GC prunes j3 and, with every surviving job's keys now known,
	// sweeps the orphans left behind by the conservative pass.
	s.Retention = RetentionPolicy{MaxJobs: 1}
	if _, swept, err = s.GC(); err != nil || swept == 0 {
		t.Fatalf("swept %d rows after backfill (err %v), want > 0", swept, err)
	}
}

// TestGCDisabledByZeroPolicy: the zero policy is the pre-GC behavior.
func TestGCDisabledByZeroPolicy(t *testing.T) {
	s, _ := gcFixture(t, t.TempDir())
	defer s.Close()
	pruned, swept, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if pruned != 0 || swept != 0 {
		t.Fatalf("zero policy pruned %d / swept %d", pruned, swept)
	}
	if len(s.Jobs()) != 3 || s.RowCount() != 4 {
		t.Fatalf("zero policy changed state: %d jobs, %d rows", len(s.Jobs()), s.RowCount())
	}
}

// TestGCSurvivesReopen: a pruned store reopens to exactly the pruned state
// (the GC'd snapshot is the durable truth).
func TestGCSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, jobs := gcFixture(t, dir)
	s.Retention = RetentionPolicy{MaxJobs: 1}
	if _, _, err := s.GC(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	r := openT(t, dir)
	defer r.Close()
	if got := len(r.Jobs()); got != 1 {
		t.Fatalf("reopened with %d jobs, want 1", got)
	}
	if _, ok := r.Job(jobs[2].ID); !ok {
		t.Fatal("newest terminal job lost")
	}
	if n := r.RowCount(); n != 1 {
		t.Fatalf("reopened with %d rows, want 1 (C)", n)
	}
}

// TestSchemaTwoMigrationRoundTrip: a v2 snapshot (jobs + rows + jobKeys, no
// assignments) opens, reports "never dispatched" for its jobs, and is
// rewritten at the current schema with any assignments set after migration.
func TestSchemaTwoMigrationRoundTrip(t *testing.T) {
	dir := t.TempDir()
	v2 := `{"schema":2,"jobs":[{"id":"j000005","state":"done","cells":2,"completed":2}],` +
		`"rows":{"k1":{"v":1}},"jobKeys":{"j000005":["k1"]}}`
	os.WriteFile(filepath.Join(dir, "snapshot.json"), []byte(v2), 0o644)
	s := openT(t, dir)
	job, ok := s.Job("j000005")
	if !ok || job.State != Done {
		t.Fatalf("migrated job: ok=%v %+v", ok, job)
	}
	if keys, ok := s.JobKeys("j000005"); !ok || len(keys) != 1 {
		t.Fatalf("migrated keys: ok=%v %v", ok, keys)
	}
	// Migrated jobs were never dispatched under the distributed scheme.
	if _, ok := s.Assignments("j000005"); ok {
		t.Fatal("migration invented shard assignments")
	}
	assigns := []ShardAssignment{
		{Shard: 0, Total: 2, State: ShardDone, Worker: "w1", Attempts: 1},
		{Shard: 1, Total: 2, State: ShardPending, Attempts: 2, NextEligible: 12345},
	}
	if err := s.SetAssignments("j000005", assigns, true); err != nil {
		t.Fatalf("set assignments: %v", err)
	}
	s.Close()

	raw, _ := os.ReadFile(filepath.Join(dir, "snapshot.json"))
	var snap struct {
		Schema      int                          `json:"schema"`
		Assignments map[string][]ShardAssignment `json:"assignments"`
	}
	json.Unmarshal(raw, &snap)
	if snap.Schema != SchemaVersion {
		t.Fatalf("rewritten snapshot schema %d, want %d", snap.Schema, SchemaVersion)
	}
	if got := snap.Assignments["j000005"]; len(got) != 2 || got[1].NextEligible != 12345 {
		t.Fatalf("assignments not in snapshot: %+v", snap.Assignments)
	}
	r := openT(t, dir)
	defer r.Close()
	got, ok := r.Assignments("j000005")
	if !ok || len(got) != 2 || got[0].State != ShardDone || got[0].Worker != "w1" {
		t.Fatalf("assignments after round-trip: ok=%v %+v", ok, got)
	}
}

// TestAssignmentsWALReplay: assignment updates are whole-list replacements
// and durable through the raw WAL — the coordinator-killed-mid-dispatch
// signature. The last write wins on replay.
func TestAssignmentsWALReplay(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	job, _ := s.CreateJob(json.RawMessage(`{}`), 4)
	first := []ShardAssignment{
		{Shard: 0, Total: 2, State: ShardAssigned, Worker: "w1", Attempts: 1, LeaseDeadline: 99},
		{Shard: 1, Total: 2, State: ShardPending},
	}
	if err := s.SetAssignments(job.ID, first, false); err != nil {
		t.Fatalf("set: %v", err)
	}
	second := []ShardAssignment{
		{Shard: 0, Total: 2, State: ShardDone, Worker: "w1", Attempts: 1},
		{Shard: 1, Total: 2, State: ShardAssigned, Worker: "w2", Attempts: 1, LeaseDeadline: 200},
	}
	if err := s.SetAssignments(job.ID, second, true); err != nil {
		t.Fatalf("replace: %v", err)
	}
	// Mutating the caller's slice after the call must not leak into the store.
	second[0].State = ShardPending
	if err := s.SetAssignments("j424242", first, false); err == nil {
		t.Error("assignments for missing job accepted")
	}
	s.wal.Close() // crash-style: replay must come from the WAL

	r := openT(t, dir)
	defer r.Close()
	got, ok := r.Assignments(job.ID)
	if !ok || len(got) != 2 {
		t.Fatalf("replayed assignments: ok=%v %+v", ok, got)
	}
	if got[0].State != ShardDone || got[1].Worker != "w2" || got[1].LeaseDeadline != 200 {
		t.Fatalf("replay lost the last write: %+v", got)
	}
	// Reads hand out copies, not the live slice.
	got[0].State = ShardPending
	again, _ := r.Assignments(job.ID)
	if again[0].State != ShardDone {
		t.Fatal("Assignments returned the live slice")
	}
}

// TestGCPrunesAssignments: a pruned job's shard assignments go with it —
// they are per-job dispatch state, not shared like rows.
func TestGCPrunesAssignments(t *testing.T) {
	dir := t.TempDir()
	s, jobs := gcFixture(t, dir)
	defer s.Close()
	for _, j := range jobs {
		if err := s.SetAssignments(j.ID, []ShardAssignment{{Shard: 0, Total: 1, State: ShardDone}}, false); err != nil {
			t.Fatal(err)
		}
	}
	s.Retention = RetentionPolicy{MaxJobs: 1}
	if _, _, err := s.GC(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Assignments(jobs[0].ID); ok {
		t.Error("pruned job kept its assignments")
	}
	if _, ok := s.Assignments(jobs[2].ID); !ok {
		t.Error("surviving job lost its assignments")
	}
	s.Close()
	r := openT(t, dir)
	defer r.Close()
	if _, ok := r.Assignments(jobs[0].ID); ok {
		t.Error("pruned assignments resurrected on reopen")
	}
}
